// Package fogbuster is a from-scratch reproduction of "Gate Delay Fault
// Test Generation for Non-Scan Circuits" (van Brakel, Gläser, Kerkhoff,
// Vierhaus; ED&TC/DATE 1995): robust gate delay fault ATPG for synchronous
// sequential circuits without scan, coupling the TDgen local two-frame
// generator with the SEMILET/FOGBUSTER sequential engine and the
// FAUSIM/TDsim fault simulators.
//
// The one supported entry point is fogbuster/pkg/atpg: validated
// configuration, context-aware cancellable sessions, an ordered event
// stream, and canonical JSON results. A complete run is four calls:
//
//	c, err := atpg.Benchmark("s27")            // or atpg.LoadBench("circuit.bench")
//	ses, err := atpg.New(c, atpg.Config{})     // errors, never panics, on bad config
//	ses.OnEvent(func(ev atpg.Event) { ... })   // optional live progress / sequences
//	res, err := ses.Run(ctx)                   // partial deterministic Result on cancel
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory; §8 documents the API layer's stability contract) and may
// change shape freely between commits. The simulation substrate shared
// by sim, tdsim, fausim and semilet is the flat CSR topology
// (sim.Topology: structure-of-arrays fanin/fanout edge arrays,
// level-bucketed gate order, fanout-cone bitsets); every evaluator
// exists both as a full levelized walk and as an event-driven
// selective-trace kernel over that topology which re-evaluates only the
// fanout cones of changed sources, bit-identical by contract
// (core.Options.FullEval forces the full walks as the reference
// oracle). Command line tools live under cmd/ and runnable examples
// under examples/, all consuming pkg/atpg exclusively — with the
// sanctioned exceptions listed, with their reasons, in internal/lint's
// exemption table: chiefly cmd/atpgd, the ATPG-as-a-service daemon, a
// thin shell over internal/service (multi-tenant job scheduler,
// content-hash circuit/result caches, HTTP + SSE handlers; DESIGN.md
// §10), which itself consumes the engine only through pkg/atpg. That
// boundary — along with engine-package determinism, scalar/batched
// oracle pairing, mutex/atomic hygiene, and canonical-JSON tag
// discipline — is machine-checked by the house analyzer suite in
// internal/lint, runnable as `go run ./cmd/atpglint ./...` (DESIGN.md
// §13). The benchmarks
// in bench_test.go regenerate every table and figure of the paper's
// evaluation; EXPERIMENTS.md records the measured results against the
// paper's.
package fogbuster
