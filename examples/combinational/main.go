// Combinational: TDgen alone suffices for circuits without state — every
// fault effect is observed at a primary output and no initialization or
// propagation is needed. This example tests c17 and a ripple-carry adder
// (long robustly-sensitizable carry paths) under both the robust model and
// the paper's proposed non-robust relaxation, demonstrating the coverage
// difference the conclusions predict.
package main

import (
	"fmt"

	"fogbuster/internal/bench"
	"fogbuster/internal/core"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

func main() {
	for _, c := range []*netlist.Circuit{bench.NewC17(), bench.RippleCarryAdder(8)} {
		fmt.Println(c.Stats())
		for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
			sum := core.New(c, core.Options{Algebra: alg}).Run()
			fmt.Printf("  %-11s tested=%4d untestable=%3d aborted=%3d patterns=%d (%v)\n",
				alg.Name()+":", sum.Tested, sum.Untestable, sum.Aborted, sum.Patterns, sum.Runtime.Round(1000000))
		}
	}

	// The carry chain of the adder is the classic delay-test target: show
	// the longest robust test explicitly.
	rca := bench.RippleCarryAdder(8)
	sum := core.New(rca, core.Options{DisableFaultSim: true}).Run()
	longest := -1
	for i, r := range sum.Results {
		if r.Seq != nil {
			if longest < 0 || r.Seq.Len() > sum.Results[longest].Seq.Len() {
				longest = i
			}
		}
	}
	if longest >= 0 {
		r := sum.Results[longest]
		fmt.Printf("\nexample: robust two-pattern test for %s through the carry chain\n", r.Fault.Name(rca))
		fmt.Printf("  V1 = %v\n  V2 = %v (fast capture)\n", r.Seq.V1, r.Seq.V2)
	}
}
