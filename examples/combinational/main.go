// Combinational: TDgen alone suffices for circuits without state — every
// fault effect is observed at a primary output and no initialization or
// propagation is needed. This example tests c17 and a ripple-carry adder
// (long robustly-sensitizable carry paths) under both the robust model and
// the paper's proposed non-robust relaxation, demonstrating the coverage
// difference the conclusions predict, and finishes by showing the stable
// JSON encoding of a generated sequence — the machine interface larger
// toolchains consume.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"fogbuster/pkg/atpg"
)

func main() {
	for _, name := range []string{"c17", "rca8"} {
		c, err := atpg.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(c.Stats())
		for _, alg := range atpg.Algebras() {
			res := mustRun(c, atpg.Config{Algebra: alg})
			fmt.Printf("  %-11s tested=%4d untestable=%3d aborted=%3d patterns=%d (%v)\n",
				res.Algebra+":", res.Tested, res.Untestable, res.Aborted, res.Patterns, res.Runtime.Round(1000000))
		}
	}

	// The carry chain of the adder is the classic delay-test target: show
	// the longest robust test explicitly, then its canonical JSON form.
	rca, err := atpg.Benchmark("rca8")
	if err != nil {
		log.Fatal(err)
	}
	res := mustRun(rca, atpg.Config{DisableFaultSim: true})
	var longest *atpg.FaultResult
	for i, r := range res.Faults {
		if r.Seq != nil && (longest == nil || r.Seq.Len() > longest.Seq.Len()) {
			longest = &res.Faults[i]
		}
	}
	if longest != nil {
		fmt.Printf("\nexample: robust two-pattern test for %s through the carry chain\n", longest.Fault)
		fmt.Printf("  V1 = %s\n  V2 = %s (fast capture)\n", longest.Seq.V1, longest.Seq.V2)
		fmt.Println("\ncanonical JSON of that sequence:")
		if err := atpg.EncodeJSON(os.Stdout, longest.Seq); err != nil {
			log.Fatal(err)
		}
	}
}

// mustRun executes one complete session.
func mustRun(c *atpg.Circuit, cfg atpg.Config) *atpg.Result {
	ses, err := atpg.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ses.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}
