// Combinational: TDgen alone suffices for circuits without state — every
// fault effect is observed at a primary output and no initialization or
// propagation is needed. This example tests c17 and a ripple-carry adder
// (long robustly-sensitizable carry paths) under both the robust model and
// the paper's proposed non-robust relaxation, demonstrating the coverage
// difference the conclusions predict.
package main

import (
	"fmt"
	"math/bits"

	"fogbuster/internal/bench"
	"fogbuster/internal/core"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

func main() {
	for _, c := range []*netlist.Circuit{bench.NewC17(), bench.RippleCarryAdder(8)} {
		fmt.Println(c.Stats())
		for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
			sum := core.New(c, core.Options{Algebra: alg}).Run()
			fmt.Printf("  %-11s tested=%4d untestable=%3d aborted=%3d patterns=%d (%v)\n",
				alg.Name()+":", sum.Tested, sum.Untestable, sum.Aborted, sum.Patterns, sum.Runtime.Round(1000000))
		}
	}

	// The carry chain of the adder is the classic delay-test target: show
	// the longest robust test explicitly.
	rca := bench.RippleCarryAdder(8)
	sum := core.New(rca, core.Options{DisableFaultSim: true}).Run()
	longest := -1
	for i, r := range sum.Results {
		if r.Seq != nil {
			if longest < 0 || r.Seq.Len() > sum.Results[longest].Seq.Len() {
				longest = i
			}
		}
	}
	if longest >= 0 {
		r := sum.Results[longest]
		fmt.Printf("\nexample: robust two-pattern test for %s through the carry chain\n", r.Fault.Name(rca))
		fmt.Printf("  V1 = %v\n  V2 = %v (fast capture)\n", r.Seq.V1, r.Seq.V2)
	}

	sensitivity()
}

// sensitivity computes exact per-input observability of c17 with the
// 64-way two-valued machinery: c17's 5 inputs span 32 patterns, so the
// whole truth table fits in one machine word (Eval64), and flipping one
// input across all patterns is a single-seed event-driven update
// (Eval64Cone) that re-evaluates only that input's fanout cone. The
// count of PO bits that change is the number of patterns under which
// the input is observable — a two-valued preview of the cone-kernel
// substrate the fault simulators run on.
func sensitivity() {
	c := bench.NewC17()
	net := sim.NewNet(c)
	vec := make([]sim.Word, len(c.PIs))
	for i := range vec {
		// Bit p of input i holds input i's value under pattern p.
		for p := 0; p < 32; p++ {
			if p&(1<<i) != 0 {
				vec[i] |= sim.Word(1) << p
			}
		}
	}
	const all32 = sim.Word(1)<<32 - 1
	base := net.LoadFrame64(vec, nil)
	net.Eval64(base)
	fmt.Printf("\nc17 input observability over the full truth table (32 patterns/word):\n")
	vals := append([]sim.Word(nil), base...)
	for i, pi := range c.PIs {
		copy(vals, base)
		vals[pi] ^= all32
		net.Eval64Cone(vals, []netlist.NodeID{pi})
		var diff sim.Word
		for _, po := range c.POs {
			diff |= (vals[po] ^ base[po]) & all32
		}
		fmt.Printf("  %-3s observable under %2d/32 patterns\n",
			c.Nodes[c.PIs[i]].Name, bits.OnesCount64(diff))
	}
}
