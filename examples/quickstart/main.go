// Quickstart: run the complete non-scan gate delay fault ATPG flow on the
// ISCAS'89 s27 benchmark through the public fogbuster/pkg/atpg API and
// show generated test sequences in the paper's time-frame model
// (initialization under the slow clock, the two-pattern test with the
// fast capture cycle, then the propagation frames). This is also the CI
// API smoke test: it exercises circuit loading, validated session
// construction, a full context-aware run and the public result types.
package main

import (
	"context"
	"fmt"
	"log"

	"fogbuster/pkg/atpg"
)

func main() {
	c, err := atpg.Benchmark("s27")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", c.Stats())

	ses, err := atpg.New(c, atpg.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ses.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model=%s tested=%d (explicit %d) untestable=%d aborted=%d patterns=%d\n\n",
		res.Algebra, res.Tested, res.Explicit, res.Untestable, res.Aborted, res.Patterns)

	shown := 0
	for _, r := range res.Faults {
		if r.Seq == nil {
			continue
		}
		fmt.Printf("test for %s (observed at PO %d):\n", r.Fault, r.Seq.ObservePO)
		for i, v := range r.Seq.Sync {
			fmt.Printf("  sync[%d]  %s   slow clock\n", i, v)
		}
		fmt.Printf("  V1       %s   slow clock (initial frame)\n", r.Seq.V1)
		fmt.Printf("  V2       %s   FAST clock (test frame)\n", r.Seq.V2)
		for i, v := range r.Seq.Prop {
			fmt.Printf("  prop[%d]  %s   slow clock\n", i, v)
		}
		if r.Seq.Assumed != "" {
			fmt.Printf("  assumed power-up state: %s\n", r.Seq.Assumed)
		}
		fmt.Println()
		if shown++; shown == 3 {
			break
		}
	}
}
