// Quickstart: run the complete non-scan gate delay fault ATPG flow on the
// ISCAS'89 s27 benchmark and show one generated test sequence in the
// paper's time-frame model (initialization under the slow clock, the
// two-pattern test with the fast capture cycle, then the propagation
// frames).
package main

import (
	"fmt"
	"strings"

	"fogbuster/internal/bench"
	"fogbuster/internal/core"
	"fogbuster/internal/sim"
)

func main() {
	c := bench.NewS27()
	fmt.Println("circuit:", c.Stats())

	sum := core.New(c, core.Options{}).Run()
	fmt.Printf("model=%s tested=%d (explicit %d) untestable=%d aborted=%d patterns=%d\n\n",
		sum.Algebra, sum.Tested, sum.Explicit, sum.Untestable, sum.Aborted, sum.Patterns)

	shown := 0
	for _, r := range sum.Results {
		if r.Seq == nil {
			continue
		}
		fmt.Printf("test for %s (observed at PO %d):\n", r.Fault.Name(c), r.Seq.ObservePO)
		for i, v := range r.Seq.Sync {
			fmt.Printf("  sync[%d]  %s   slow clock\n", i, vec(v))
		}
		fmt.Printf("  V1       %s   slow clock (initial frame)\n", vec(r.Seq.V1))
		fmt.Printf("  V2       %s   FAST clock (test frame)\n", vec(r.Seq.V2))
		for i, v := range r.Seq.Prop {
			fmt.Printf("  prop[%d]  %s   slow clock\n", i, vec(v))
		}
		if r.Seq.Assumed != nil && sim.KnownCount(r.Seq.Assumed) > 0 {
			fmt.Printf("  assumed power-up state: %s\n", vec(r.Seq.Assumed))
		}
		fmt.Println()
		if shown++; shown == 3 {
			break
		}
	}
}

func vec(v []sim.V3) string {
	var sb strings.Builder
	for _, b := range v {
		sb.WriteString(b.String())
	}
	return sb.String()
}
