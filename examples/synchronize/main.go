// Synchronize: the initialization problem of non-scan delay testing.
// Every generated test must first drive the machine from power-up into
// the state the two-pattern test requires. This example contrasts the
// two policies the engine offers through the public API — the default
// optimistic initialization (state bits no input sequence can force are
// assumed as power-up values, the 1990s convention the paper's s27
// numbers imply) against strict true synchronizing sequences — and shows
// the synchronizing prefixes and assumed bits of generated tests.
package main

import (
	"context"
	"fmt"
	"log"

	"fogbuster/pkg/atpg"
)

func main() {
	for _, name := range []string{"s27", "s208"} {
		c, err := atpg.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(c.Stats())
		optimistic := mustRun(c, atpg.Config{})
		strict := mustRun(c, atpg.Config{StrictInit: true})
		fmt.Printf("  optimistic init: tested=%3d untestable=%3d aborted=%3d\n",
			optimistic.Tested, optimistic.Untestable, optimistic.Aborted)
		fmt.Printf("  strict init:     tested=%3d untestable=%3d aborted=%3d\n",
			strict.Tested, strict.Untestable, strict.Aborted)

		// Show one optimistic test that leans on an assumed power-up bit
		// and one with a real synchronizing prefix.
		var assumed, synced *atpg.Sequence
		for _, r := range optimistic.Faults {
			if r.Seq == nil {
				continue
			}
			if assumed == nil && r.Seq.Assumed != "" {
				assumed = r.Seq
			}
			if synced == nil && len(r.Seq.Sync) > 0 {
				synced = r.Seq
			}
		}
		if assumed != nil {
			fmt.Printf("  e.g. %s assumes power-up state %s\n", assumed.Fault, assumed.Assumed)
		}
		if synced != nil {
			fmt.Printf("  e.g. %s synchronizes in %d frames:", synced.Fault, len(synced.Sync))
			for _, v := range synced.Sync {
				fmt.Printf(" %s", v)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}

// mustRun executes one complete session.
func mustRun(c *atpg.Circuit, cfg atpg.Config) *atpg.Result {
	ses, err := atpg.New(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ses.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}
