// Synchronize: use SEMILET standalone — reverse-time synchronization of a
// counter to a target state, and FOGBUSTER sequential stuck-at test
// generation, SEMILET's original role as a static-fault sequential ATPG.
package main

import (
	"fmt"
	"strings"

	"fogbuster/internal/bench"
	"fogbuster/internal/faults"
	"fogbuster/internal/semilet"
	"fogbuster/internal/sim"
)

func main() {
	// Reverse time processing: drive the s208-style counter (synchronous
	// clear, toggle cells, carry chain) into chosen states.
	c := bench.ProfileByName("s208").Circuit()
	fmt.Println(c.Stats())
	net := sim.NewNet(c)
	eng := semilet.NewEngine(net, semilet.Options{})

	for _, trial := range []struct {
		name string
		bits string // one char per FF: 0, 1 or X
	}{
		{"all-zero (synchronous clear)", "00000000"},
		{"counted to 3", "1100XXXX"},
		{"single bit", "XXXX1XXX"},
	} {
		target := make([]sim.V3, len(c.DFFs))
		for i, ch := range trial.bits {
			switch ch {
			case '0':
				target[i] = sim.Lo
			case '1':
				target[i] = sim.Hi
			default:
				target[i] = sim.X
			}
		}
		res, st := eng.Synchronize(target, semilet.NewBudget(100))
		fmt.Printf("  synchronize %-30s -> %v", trial.name, st)
		if st == semilet.Success {
			fmt.Printf(" in %d frames", len(res.Vectors))
			// Independent check from the all-X power-up state.
			steps := net.SeqSim3(nil, res.Vectors)
			if len(steps) > 0 {
				fmt.Printf("; reached state %s", vec(steps[len(steps)-1].State))
			}
		}
		fmt.Println()
	}

	// Sequential stuck-at generation on the shift register and s27.
	fmt.Println("\nsequential stuck-at ATPG (FOGBUSTER):")
	for _, tc := range []struct{ name string }{{"shift8"}, {"s27"}} {
		var cc = bench.NewS27()
		if tc.name == "shift8" {
			cc = bench.ShiftRegister(8)
		}
		e := semilet.NewEngine(sim.NewNet(cc), semilet.Options{})
		found, exhausted, aborted, vectors := 0, 0, 0, 0
		for _, f := range faults.AllStuck(cc) {
			res, st := e.GenerateStuck(f, semilet.NewBudget(100))
			switch st {
			case semilet.Success:
				found++
				vectors += len(res.Vectors)
			case semilet.Exhausted:
				exhausted++
			default:
				aborted++
			}
		}
		fmt.Printf("  %-7s tested=%3d untestable=%3d aborted=%3d vectors=%d\n",
			tc.name, found, exhausted, aborted, vectors)
	}
}

func vec(v []sim.V3) string {
	var sb strings.Builder
	for _, b := range v {
		sb.WriteString(b.String())
	}
	return sb.String()
}
