// Faultsim: measure how much of the delay fault universe rides along on
// fault simulation credit versus explicit targeting — the paper's reason
// for coupling the generator with FAUSIM/TDsim. The example streams the
// engine's commit events through the public API to watch the credit
// accumulate live, then repeats the run with the credit disabled to show
// how many extra explicit generations that costs.
package main

import (
	"context"
	"fmt"
	"log"

	"fogbuster/pkg/atpg"
)

func main() {
	c, err := atpg.Benchmark("s298")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Stats())

	// Streaming run: count sequence and credit commits as they happen.
	// Events arrive in commit (targeting) order, so the running tallies
	// reproduce the serial chronology exactly.
	ses, err := atpg.New(c, atpg.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var explicit, credited int
	ses.OnEvent(func(ev atpg.Event) {
		switch ev.Kind {
		case atpg.EventSequenceGenerated:
			explicit++
		case atpg.EventCreditApplied:
			credited++
		case atpg.EventProgress:
			if ev.Done%100 == 0 || ev.Done == ev.Total {
				fmt.Printf("  %4d/%d faults committed: %3d sequences generated, %3d faults credited by simulation\n",
					ev.Done, ev.Total, explicit, credited)
			}
		}
	})
	res, err := ses.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with fault simulation:    tested=%d (explicit %d, credited %d) patterns=%d\n",
		res.Tested, res.Explicit, res.Tested-res.Explicit, res.Patterns)

	// Reference run: every fault must be targeted explicitly.
	ses2, err := atpg.New(c, atpg.Config{DisableFaultSim: true})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := ses2.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without fault simulation: tested=%d (explicit %d) patterns=%d\n",
		res2.Tested, res2.Explicit, res2.Patterns)
	fmt.Printf("credit saved %d of %d explicit generations (%.0f%%)\n",
		res2.Explicit-res.Explicit, res2.Explicit,
		100*float64(res2.Explicit-res.Explicit)/float64(res2.Explicit))
}
