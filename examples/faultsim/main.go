// Faultsim: measure how much of the delay fault universe random two-
// pattern sequences cover, versus the deterministic ATPG — the motivation
// for deterministic delay-fault test generation. Random sequences are
// replayed with FAUSIM/TDsim (the paper's fault simulation, Section 5):
// good-machine simulation, fast-frame critical path tracing from the POs,
// and state-capture analysis through the propagation frames.
package main

import (
	"fmt"
	"math/rand"

	"fogbuster/internal/bench"
	"fogbuster/internal/core"
	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/sim"
	"fogbuster/internal/tdsim"
)

func main() {
	c := bench.ProfileByName("s298").Circuit()
	fmt.Println(c.Stats())
	net := sim.NewNet(c)
	td := tdsim.New(net, logic.Robust)
	all := faults.AllDelay(c)

	detected := make(map[faults.Delay]bool)
	rng := rand.New(rand.NewSource(1995))
	randVec := func() []sim.V3 {
		v := make([]sim.V3, len(c.PIs))
		for i := range v {
			v[i] = sim.V3(rng.Intn(2))
		}
		return v
	}
	randState := func() []sim.V3 {
		s := make([]sim.V3, len(c.DFFs))
		for i := range s {
			s[i] = sim.V3(rng.Intn(2))
		}
		return s
	}

	// Random campaign: warm up the state with a few frames, then apply a
	// fast capture cycle and a short propagation tail.
	const trials = 2000
	state := randState()
	for trial := 0; trial < trials; trial++ {
		v1, v2 := randVec(), randVec()
		f1 := net.LoadFrame(v1, state)
		net.Eval3(f1, nil)
		s1 := net.NextState3(f1, nil)
		ff := &tdsim.FastFrame{
			V1: v1, V2: v2, S0: state, S1: s1,
			Prop: [][]sim.V3{randVec(), randVec(), randVec()},
		}
		for _, f := range td.Detect(ff, func(f faults.Delay) bool { return detected[f] }) {
			detected[f] = true
		}
		// Advance the machine through the applied frames.
		f2 := net.LoadFrame(v2, s1)
		net.Eval3(f2, nil)
		state = net.NextState3(f2, nil)
		for _, p := range ff.Prop {
			fv := net.LoadFrame(p, state)
			net.Eval3(fv, nil)
			state = net.NextState3(fv, nil)
		}
		if trial == 99 || trial == 499 || trial == trials-1 {
			fmt.Printf("  random: %5d two-pattern trials -> %4d / %d faults detected robustly\n",
				trial+1, len(detected), len(all))
		}
	}

	sum := core.New(c, core.Options{}).Run()
	fmt.Printf("  ATPG:   deterministic flow       -> %4d / %d (untestable %d, aborted %d, %d patterns)\n",
		sum.Tested, len(all), sum.Untestable, sum.Aborted, sum.Patterns)
}
