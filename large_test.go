package fogbuster

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/core"
	"fogbuster/internal/faults"
	"fogbuster/internal/sim"
)

// TestLargeBudgetedSmoke is the industrial-scale smoke test: the
// s15850- and s38584-class profiles synthesize to their calibrated fault
// universes, build the flat CSR topology with per-stem cone sets far
// below the dense all-stems matrix (the representation that made >10k
// gate circuits memory-hostile), and complete a budgeted ATPG run with
// the full scale-out stack — broadcast, stealing, compressed cone sets —
// on a small fault budget. It is the floor under "the engine runs at
// industrial node counts", not a performance measurement (EXPERIMENTS.md
// records those).
func TestLargeBudgetedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-profile smoke in -short mode")
	}

	for _, name := range []string{"s15850", "s38584"} {
		p := bench.ProfileByName(name)
		if p == nil {
			t.Fatalf("profile %s missing", name)
		}
		c := p.Circuit()
		if got, want := len(faults.AllDelay(c))/2, p.TargetLines; got != want {
			t.Errorf("%s: %d lines, calibrated for %d", name, got, want)
		}
		topo := sim.NewTopology(c)
		dense, actual := topo.ConeFootprint()
		if actual*4 > dense {
			t.Errorf("%s: cone sets hold %d of %d dense bytes; the auto policy should stay far below the matrix", name, actual, dense)
		}
	}

	// One budgeted run per circuit, scale-out stack on. The budgets and
	// backtrack limits are tiny on purpose: the smoke pins "completes and
	// classifies in-budget faults", CI-affordably.
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"s15850", core.Options{Workers: 16, MaxTargets: 8, Broadcast: true, Steal: true, ConeSets: "compressed"}},
		{"s38584", core.Options{Workers: 4, MaxTargets: 2, LocalBacktracks: 10, SeqBacktracks: 10, Broadcast: true, Steal: true, ConeSets: "compressed"}},
	} {
		c := bench.ProfileByName(tc.name).Circuit()
		sum := core.MustNew(c, tc.opts).Run()
		classified := sum.Explicit + sum.Untestable + sum.Aborted
		if classified == 0 {
			t.Errorf("%s: budgeted run classified no fault explicitly", tc.name)
		}
		if sum.ValidationFailures != 0 {
			t.Errorf("%s: %d validation failures", tc.name, sum.ValidationFailures)
		}
	}
}
