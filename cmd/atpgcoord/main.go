// Atpgcoord coordinates a distributed ATPG run: it splits the fault
// universe into shards, fans them out across local processes or remote
// atpgd workers, resumes failed shards from their last checkpoint, and
// merges the partial results into one canonical document byte-identical
// to a single-process run of the same configuration. See DESIGN.md §11
// for the shard/checkpoint/merge contract and the README for a
// quickstart against two atpgd workers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"fogbuster/pkg/atpg"
)

// config is the parsed command line, kept separate from main so tests
// drive run() directly.
type config struct {
	benchPath string // -bench: .bench netlist file
	circuit   string // -circuit: built-in benchmark name
	shards    int
	retries   int
	endpoints []string // remote atpgd base URLs; empty = in-process
	out       string
	poll      time.Duration
	timeout   time.Duration
	run       atpg.Config
	// killShard, when >= 0, aborts that shard's first local attempt a
	// few commits in — a deterministic failure-injection hook used by
	// the invariance tests; hidden from -h.
	killShard int
}

// parseArgs parses the command line; errors (including -h) go to stderr.
func parseArgs(argv []string, stderr io.Writer) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("atpgcoord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.benchPath, "bench", "", "ISCAS'89 .bench netlist file")
	fs.StringVar(&cfg.circuit, "circuit", "", "built-in benchmark name (s27, s298, ...)")
	fs.IntVar(&cfg.shards, "shards", 2, "number of shards to split the fault universe into")
	fs.IntVar(&cfg.retries, "retries", 3, "resume attempts per shard before giving up")
	endpoints := fs.String("endpoints", "", "comma-separated atpgd base URLs; empty runs shards in-process")
	fs.StringVar(&cfg.out, "o", "", "write the merged result here instead of stdout")
	fs.DurationVar(&cfg.poll, "poll", 100*time.Millisecond, "remote job status poll interval")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "per-shard job deadline (0 = worker default)")
	fs.IntVar(&cfg.run.Workers, "workers", 1, "engine workers per shard (sent explicitly so every worker agrees)")
	fs.Int64Var(&cfg.run.Seed, "seed", 0, "X-fill RNG seed")
	fs.StringVar(&cfg.run.Order, "order", "", "fault targeting order (natural, adi, ...)")
	algebra := fs.String("algebra", "", "sensitization algebra (robust, nonrobust, adi)")
	fs.IntVar(&cfg.run.MaxTargets, "maxtargets", 0, "budget on targeted faults (0 = all)")
	fs.IntVar(&cfg.killShard, "kill-shard", -1, "")
	if err := fs.Parse(argv); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if (cfg.benchPath == "") == (cfg.circuit == "") {
		return nil, fmt.Errorf("exactly one of -bench or -circuit is required")
	}
	if cfg.shards < 1 {
		return nil, fmt.Errorf("-shards must be at least 1")
	}
	if cfg.retries < 0 {
		return nil, fmt.Errorf("-retries must not be negative")
	}
	cfg.run.Algebra = *algebra
	if *endpoints != "" {
		for _, e := range strings.Split(*endpoints, ",") {
			if e = strings.TrimSpace(e); e != "" {
				cfg.endpoints = append(cfg.endpoints, strings.TrimRight(e, "/"))
			}
		}
	}
	return cfg, nil
}

// loadCircuit resolves -bench / -circuit to a circuit plus the netlist
// text remote submissions ship. A file circuit is named by its base
// name so the result document reads "s27", not a host-specific path.
func (cfg *config) loadCircuit() (*atpg.Circuit, string, error) {
	if cfg.circuit != "" {
		c, err := atpg.Benchmark(cfg.circuit)
		return c, "", err
	}
	text, err := os.ReadFile(cfg.benchPath)
	if err != nil {
		return nil, "", err
	}
	name := strings.TrimSuffix(filepath.Base(cfg.benchPath), ".bench")
	c, err := atpg.ParseBench(name, string(text))
	if err != nil {
		return nil, "", err
	}
	return c, string(text), nil
}

// shardOutcome is one shard's final (or failed) state.
type shardOutcome struct {
	res *atpg.Result
	err error
}

// runShardLocal drives one shard in-process, resuming from checkpoints
// across attempts. A complete shard has its cursor at the window end.
func runShardLocal(c *atpg.Circuit, cfg *config, idx int) (*atpg.Result, error) {
	scfg := cfg.run
	scfg.Shards, scfg.ShardIndex = cfg.shards, idx
	var ckpt *atpg.Checkpoint
	var lastErr error
	for attempt := 0; attempt <= cfg.retries; attempt++ {
		var ses *atpg.Session
		var err error
		if ckpt == nil {
			ses, err = atpg.New(c, scfg)
		} else {
			ses, err = atpg.Resume(c, ckpt)
		}
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		if cfg.timeout > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), cfg.timeout)
		}
		if cfg.killShard == idx && attempt == 0 {
			// Failure injection: abort this attempt three commits in, as
			// if the worker process died mid-run.
			seen := 0
			ses.OnEvent(func(ev atpg.Event) {
				if ev.Kind == atpg.EventProgress {
					if seen++; seen == 3 {
						cancel()
					}
				}
			})
		}
		res, runErr := ses.Run(ctx)
		cancel()
		if runErr == nil && res.Shard != nil && res.Shard.Cursor >= res.Shard.Hi {
			return res, nil
		}
		lastErr = runErr
		if lastErr == nil {
			lastErr = fmt.Errorf("shard stopped at cursor %d of [%d,%d)", res.Shard.Cursor, res.Shard.Lo, res.Shard.Hi)
		}
		if ckpt, err = ses.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// Minimal wire shapes for the atpgd API (the daemon's JSON is a
// superset; unknown fields are ignored on decode).
type submitRequest struct {
	Benchmark  string           `json:"benchmark,omitempty"`
	Bench      string           `json:"bench,omitempty"`
	Name       string           `json:"name,omitempty"`
	Config     atpg.Config      `json:"config"`
	TimeoutMS  int64            `json:"timeout_ms,omitempty"`
	Checkpoint *atpg.Checkpoint `json:"checkpoint,omitempty"`
}

type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Err   string `json:"err,omitempty"`
}

// fatalSubmitError marks a worker's 4xx rejection: deterministic, so
// retrying on another endpoint cannot help.
type fatalSubmitError struct{ msg string }

func (e *fatalSubmitError) Error() string { return e.msg }

// remoteWorker talks to one atpgd endpoint.
type remoteWorker struct {
	base   string
	client *http.Client
}

// postJob submits a job and decodes the accepted status.
func (w *remoteWorker) postJob(req *submitRequest) (*jobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := w.client.Post(w.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("%s: submit: %s: %s", w.base, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode < 500 {
			return nil, &fatalSubmitError{err.Error()}
		}
		return nil, err
	}
	st := &jobStatus{}
	return st, json.NewDecoder(resp.Body).Decode(st)
}

// get fetches a JSON document, returning (nil, nil) on 404/409 when
// tolerate is set (no checkpoint snapshot yet is not an error).
func (w *remoteWorker) get(path string, tolerate bool) ([]byte, error) {
	resp, err := w.client.Get(w.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if tolerate && resp.StatusCode < 500 {
			return nil, nil
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("%s: GET %s: %s: %s", w.base, path, resp.Status, bytes.TrimSpace(msg))
	}
	return io.ReadAll(resp.Body)
}

// runShardRemote drives one shard against the endpoint list: submit to
// one worker, poll its status while mirroring checkpoint snapshots, and
// on worker death (transport error or 5xx) rotate to the next endpoint
// and resume from the last snapshot seen. Attempts rotate through the
// endpoints so a single dead worker never strands a shard.
func runShardRemote(cfg *config, bench, name string, idx int) (*atpg.Result, error) {
	scfg := cfg.run
	scfg.Shards, scfg.ShardIndex = cfg.shards, idx
	req := &submitRequest{Config: scfg, TimeoutMS: cfg.timeout.Milliseconds()}
	if cfg.circuit != "" {
		req.Benchmark = cfg.circuit
	} else {
		req.Bench, req.Name = bench, name
	}
	var ckpt *atpg.Checkpoint
	var lastErr error
	for attempt := 0; attempt <= cfg.retries; attempt++ {
		w := &remoteWorker{
			base:   cfg.endpoints[(idx+attempt)%len(cfg.endpoints)],
			client: &http.Client{Timeout: 30 * time.Second},
		}
		req.Checkpoint = ckpt
		res, err := runJobOn(w, req, cfg.poll, &ckpt)
		if err == nil {
			return res, nil
		}
		if fe, ok := err.(*fatalSubmitError); ok {
			return nil, fe
		}
		lastErr = err
	}
	return nil, lastErr
}

// runJobOn submits and babysits one job on one worker. It keeps *ckpt
// refreshed with the newest snapshot so the caller can resume elsewhere
// when this worker dies mid-run.
func runJobOn(w *remoteWorker, req *submitRequest, poll time.Duration, ckpt **atpg.Checkpoint) (*atpg.Result, error) {
	st, err := w.postJob(req)
	if err != nil {
		return nil, err
	}
	for {
		body, err := w.get("/v1/jobs/"+st.ID, false)
		if err != nil {
			return nil, err
		}
		var cur jobStatus
		if err := json.Unmarshal(body, &cur); err != nil {
			return nil, err
		}
		// Mirror the latest checkpoint before looking at the state: if
		// the worker dies between polls this is what the resume carries.
		if ckBody, err := w.get("/v1/jobs/"+st.ID+"/checkpoint", true); err != nil {
			return nil, err
		} else if ckBody != nil {
			var ck atpg.Checkpoint
			if err := json.Unmarshal(ckBody, &ck); err == nil {
				if *ckpt == nil || ck.Cursor > (*ckpt).Cursor {
					*ckpt = &ck
				}
			}
		}
		if cur.State != "done" {
			time.Sleep(poll)
			continue
		}
		if cur.Err != "" {
			return nil, fmt.Errorf("%s: job %s: %s", w.base, st.ID, cur.Err)
		}
		resBody, err := w.get("/v1/jobs/"+st.ID+"/result", false)
		if err != nil {
			return nil, err
		}
		var res atpg.Result
		if err := json.Unmarshal(resBody, &res); err != nil {
			return nil, err
		}
		if res.Shard == nil || res.Shard.Cursor < res.Shard.Hi {
			return nil, fmt.Errorf("%s: job %s returned an incomplete shard", w.base, st.ID)
		}
		return &res, nil
	}
}

// run is the testable entry point.
func run(argv []string, stdout, stderr io.Writer) int {
	cfg, err := parseArgs(argv, stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		fmt.Fprintf(stderr, "atpgcoord: %v\n", err)
		return 2
	}
	c, bench, err := cfg.loadCircuit()
	if err != nil {
		fmt.Fprintf(stderr, "atpgcoord: %v\n", err)
		return 1
	}
	// Validate the run configuration (with shard fields in place) once,
	// up front, instead of once per shard goroutine.
	probe := cfg.run
	probe.Shards, probe.ShardIndex = cfg.shards, 0
	if _, err := probe.Canonical(); err != nil {
		fmt.Fprintf(stderr, "atpgcoord: %v\n", err)
		return 2
	}

	outcomes := make([]shardOutcome, cfg.shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res *atpg.Result
			var err error
			if len(cfg.endpoints) > 0 {
				res, err = runShardRemote(cfg, bench, c.Name(), i)
			} else {
				res, err = runShardLocal(c, cfg, i)
			}
			outcomes[i] = shardOutcome{res, err}
		}(i)
	}
	wg.Wait()

	parts := make([]*atpg.Result, 0, cfg.shards)
	failed := false
	for i, o := range outcomes {
		if o.err != nil {
			fmt.Fprintf(stderr, "atpgcoord: shard %d/%d unaccounted for after %d attempts: %v\n", i, cfg.shards, cfg.retries+1, o.err)
			failed = true
			continue
		}
		parts = append(parts, o.res)
	}
	if failed {
		return 1
	}
	merged, err := atpg.MergeResults(parts...)
	if err != nil {
		fmt.Fprintf(stderr, "atpgcoord: %v\n", err)
		return 1
	}

	out := stdout
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			fmt.Fprintf(stderr, "atpgcoord: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	if err := atpg.EncodeJSON(out, merged); err != nil {
		fmt.Fprintf(stderr, "atpgcoord: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "atpgcoord: %d shards merged: %d faults, %d tested, %d patterns\n",
		cfg.shards, len(merged.Faults), merged.Tested, merged.Patterns)
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
