package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fogbuster/internal/service"
	"fogbuster/pkg/atpg"
)

// directBytes is the ground truth: an unsharded in-process run of the
// same canonical config, wall clock zeroed (the merged document always
// carries runtime 0).
func directBytes(t *testing.T, circuit string, cfg atpg.Config) []byte {
	t.Helper()
	c, err := atpg.Benchmark(circuit)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := atpg.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res.Runtime = 0
	var buf bytes.Buffer
	if err := atpg.EncodeJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// coord runs the coordinator CLI and returns exit code, stdout, stderr.
func coord(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestCoordinatorLocalMatrix: every local shard count reproduces the
// unsharded single-process document byte for byte.
func TestCoordinatorLocalMatrix(t *testing.T) {
	want := string(directBytes(t, "s27", atpg.Config{Workers: 1, Seed: 42}))
	for _, shards := range []int{1, 2, 4} {
		code, out, errs := coord(t, "-circuit", "s27", "-shards", fmt.Sprint(shards), "-seed", "42")
		if code != 0 {
			t.Fatalf("shards=%d: exit %d: %s", shards, code, errs)
		}
		if out != want {
			t.Errorf("shards=%d: merged document diverged from the unsharded run", shards)
		}
	}
}

// TestCoordinatorBenchFile: -bench file input produces the same
// document as the built-in -circuit path.
func TestCoordinatorBenchFile(t *testing.T) {
	c, err := atpg.Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s27.bench")
	if err := os.WriteFile(path, []byte(c.Bench()), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errs := coord(t, "-bench", path, "-shards", "2", "-seed", "42")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if want := string(directBytes(t, "s27", atpg.Config{Workers: 1, Seed: 42})); out != want {
		t.Error("-bench run diverged from the built-in circuit run")
	}
}

// TestCoordinatorKillShardResumes: the failure-injection hook aborts
// one shard mid-run; the coordinator resumes it from its checkpoint and
// the merged document is still byte-identical.
func TestCoordinatorKillShardResumes(t *testing.T) {
	want := string(directBytes(t, "s27", atpg.Config{Workers: 1, Seed: 42}))
	code, out, errs := coord(t, "-circuit", "s27", "-shards", "2", "-seed", "42", "-kill-shard", "1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if out != want {
		t.Error("merge after a killed-and-resumed shard diverged from the unsharded run")
	}
}

// TestCoordinatorUnaccountedShardFails: with no retries left a killed
// shard stays unaccounted for and the coordinator must exit non-zero,
// naming the shard.
func TestCoordinatorUnaccountedShardFails(t *testing.T) {
	code, out, errs := coord(t, "-circuit", "s27", "-shards", "2", "-seed", "42", "-kill-shard", "0", "-retries", "0")
	if code == 0 {
		t.Fatal("coordinator exited 0 with an unaccounted shard")
	}
	if !strings.Contains(errs, "shard 0/2 unaccounted for") {
		t.Errorf("stderr does not name the unaccounted shard: %q", errs)
	}
	if out != "" {
		t.Error("a failed run still wrote a merged document")
	}
}

// TestCoordinatorBadArgs pins the CLI contract for the usage errors.
func TestCoordinatorBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-circuit", "s27", "-bench", "x.bench"},
		{"-circuit", "s27", "-shards", "0"},
		{"-circuit", "s27", "-retries", "-1"},
		{"-circuit", "s27", "stray"},
	} {
		if code, _, _ := coord(t, args...); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}

// worker boots an in-process atpgd-equivalent (the service behind the
// daemon) on an ephemeral port.
func worker(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Options{CheckpointEvery: 2 * time.Millisecond, MaxWorkersPerJob: 8})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts
}

// TestCoordinatorRemoteWorkers fans shards across two live workers and
// requires the merged document to match the unsharded direct run.
func TestCoordinatorRemoteWorkers(t *testing.T) {
	a, b := worker(t), worker(t)
	want := string(directBytes(t, "s27", atpg.Config{Workers: 2, Seed: 42}))
	code, out, errs := coord(t, "-circuit", "s27", "-shards", "4", "-workers", "2", "-seed", "42",
		"-endpoints", a.URL+","+b.URL, "-poll", "2ms")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if out != want {
		t.Error("remote fan-out diverged from the unsharded run")
	}
}

// TestCoordinatorDeadEndpointFailover: one endpoint refuses every
// connection; retry rotation moves its shards to the live worker.
func TestCoordinatorDeadEndpointFailover(t *testing.T) {
	live := worker(t)
	dead := httptest.NewServer(nil)
	dead.Close() // now a bound-then-released port that refuses connections
	want := string(directBytes(t, "s27", atpg.Config{Workers: 1, Seed: 42}))
	code, out, errs := coord(t, "-circuit", "s27", "-shards", "2", "-seed", "42",
		"-endpoints", dead.URL+","+live.URL, "-poll", "2ms", "-retries", "1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if out != want {
		t.Error("failover run diverged from the unsharded run")
	}
}

// TestCoordinatorMidRunWorkerDeath: worker A dies (starts refusing all
// requests) right after serving its first checkpoint snapshot; the
// coordinator must carry that snapshot to worker B, resume there, and
// still produce the byte-identical document. This is the service-level
// version of the kill-shard drill.
func TestCoordinatorMidRunWorkerDeath(t *testing.T) {
	svcA := service.New(service.Options{CheckpointEvery: 2 * time.Millisecond})
	var died atomic.Bool
	handlerA := svcA.Handler()
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if died.Load() {
			http.Error(w, "worker down", http.StatusServiceUnavailable)
			return
		}
		if strings.HasSuffix(r.URL.Path, "/checkpoint") {
			rec := httptest.NewRecorder()
			handlerA.ServeHTTP(rec, r)
			if rec.Code == http.StatusOK {
				died.Store(true) // serve this snapshot, then drop dead
			}
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
			return
		}
		handlerA.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { a.Close(); svcA.Close() })
	b := worker(t)

	want := string(directBytes(t, "s298", atpg.Config{Workers: 1, Seed: 42}))
	code, out, errs := coord(t, "-circuit", "s298", "-shards", "1", "-seed", "42",
		"-endpoints", a.URL+","+b.URL, "-poll", "2ms", "-retries", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs)
	}
	if !died.Load() {
		t.Fatal("worker A never served a checkpoint; the drill did not run")
	}
	if out != want {
		t.Error("resume on the surviving worker diverged from the unsharded run")
	}
}
