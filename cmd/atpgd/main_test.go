package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"fogbuster/pkg/atpg"
)

// TestFlagsReachService pins that the tuning flags land in the service
// options.
func TestFlagsReachService(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{
		"-addr", ":0", "-max-running", "3", "-max-queue", "7",
		"-max-workers", "2", "-default-timeout", "90s", "-max-timeout", "10m",
		"-max-upload", "1024", "-max-jobs", "11",
	}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	o := cfg.opts
	if cfg.addr != ":0" || o.MaxRunningJobs != 3 || o.MaxQueue != 7 ||
		o.MaxWorkersPerJob != 2 || o.DefaultTimeout != 90*time.Second ||
		o.MaxTimeout != 10*time.Minute || o.MaxUploadBytes != 1024 || o.MaxJobs != 11 {
		t.Fatalf("flags lost: %+v", cfg)
	}
	if _, err := parseArgs([]string{"stray"}, &stderr); err == nil {
		t.Fatal("positional argument accepted")
	}
}

// TestDebugAddrServesPprof pins the -debug-addr profiling server: off by
// default, and when armed it serves the pprof index and goroutine dump
// on its own listener while the API port stays free of /debug routes.
func TestDebugAddrServesPprof(t *testing.T) {
	var stderr bytes.Buffer
	if cfg, err := parseArgs(nil, &stderr); err != nil || cfg.debugAddr != "" {
		t.Fatalf("default debugAddr: %q (err %v)", cfg.debugAddr, err)
	}
	cfg, err := parseArgs([]string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	d, err := cfg.listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.run(ctx) }()
	defer func() {
		cancel()
		<-done
	}()

	if d.debugAddr() == "" || d.debugAddr() == d.addr() {
		t.Fatalf("debug listener not separate: api %q debug %q", d.addr(), d.debugAddr())
	}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		resp, err := http.Get("http://" + d.debugAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s returned %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get("http://" + d.addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("API listener serves /debug/pprof/ — profiling leaked onto the service port")
	}
}

// TestDaemonServesJobLifecycle boots the daemon on an ephemeral port
// and walks the full client flow — submit, poll, result — then shuts it
// down gracefully.
func TestDaemonServesJobLifecycle(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-addr", "127.0.0.1:0", "-max-workers", "2"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	d, err := cfg.listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.run(ctx) }()
	base := "http://" + d.addr()

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}

	body := `{"benchmark": "s27", "config": {"workers": 1}}`
	sub, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(sub.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sub.Body.Close()
	if sub.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", sub.StatusCode, st)
	}

	deadline := time.Now().Add(time.Minute)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	rr, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res atpg.Result
	if err := json.NewDecoder(rr.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if res.Circuit != "s27" || res.Classified() != len(res.Faults) {
		t.Fatalf("result incoherent: %+v", res)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
}
