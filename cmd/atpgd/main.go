// Atpgd serves the ATPG engine over HTTP: clients POST jobs (a built-in
// benchmark name or an uploaded .bench netlist plus a run
// configuration), stream committed progress live over SSE, and fetch
// canonical atpg.Result JSON documents that are byte-identical for
// identical submissions. The daemon is a thin shell over
// internal/service, which owns the multi-tenant scheduler and the
// content-hash caches; see DESIGN.md §10 for the architecture and the
// README for a curl quickstart.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fogbuster/internal/service"
)

// config is the parsed command line, kept separate from main so tests
// can pin that every flag reaches the service options.
type config struct {
	addr      string
	debugAddr string
	opts      service.Options
}

// parseArgs parses the command line. Errors (including -h) are reported
// on stderr; the caller only needs the exit code.
func parseArgs(argv []string, stderr io.Writer) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("atpgd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.addr, "addr", "localhost:8347", "listen address (use :0 for an ephemeral port; the bound address is printed on startup)")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof profiling endpoints on this separate address (default off; keep it loopback-only — the endpoints expose heap and goroutine dumps)")
	fs.IntVar(&cfg.opts.MaxRunningJobs, "max-running", 0, "jobs executing concurrently (0 = service default)")
	fs.IntVar(&cfg.opts.MaxQueue, "max-queue", 0, "bound on the pending-job queue; submissions beyond it get 503 (0 = service default)")
	fs.IntVar(&cfg.opts.MaxWorkersPerJob, "max-workers", 0, "per-job clamp on Config.Workers (0 = all CPUs)")
	fs.DurationVar(&cfg.opts.DefaultTimeout, "default-timeout", 0, "per-job deadline when the request omits one (0 = service default, 5m)")
	fs.DurationVar(&cfg.opts.MaxTimeout, "max-timeout", 0, "cap on requested per-job deadlines (0 = service default, 30m)")
	fs.Int64Var(&cfg.opts.MaxUploadBytes, "max-upload", 0, "bound on the request body in bytes, netlist included (0 = service default, 16MiB)")
	fs.IntVar(&cfg.opts.MaxJobs, "max-jobs", 0, "finished jobs retained for status/result reads (0 = service default)")
	if err := fs.Parse(argv); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: atpgd [flags]")
		fs.PrintDefaults()
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return cfg, nil
}

// daemon is a bound, ready-to-serve instance. Binding is split from
// serving so tests (and scripts watching stdout) can learn the actual
// address of an ephemeral-port listener before any request is made.
type daemon struct {
	svc     *service.Server
	srv     *http.Server
	ln      net.Listener
	debugLn net.Listener
}

// listen binds the address and builds the service. With -debug-addr the
// pprof endpoints get their own listener and mux, deliberately separate
// from the API handler: the service mux stays free of profiling routes,
// and the debug port can be kept loopback-only while the API is not.
func (cfg *config) listen() (*daemon, error) {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	var debugLn net.Listener
	if cfg.debugAddr != "" {
		if debugLn, err = net.Listen("tcp", cfg.debugAddr); err != nil {
			ln.Close()
			return nil, err
		}
	}
	svc := service.New(cfg.opts)
	return &daemon{svc: svc, srv: &http.Server{Handler: svc.Handler()}, ln: ln, debugLn: debugLn}, nil
}

// debugMux routes the standard net/http/pprof set: the index under
// /debug/pprof/ plus the handlers (cmdline, profile, symbol, trace) the
// index cannot reach through the runtime profile table.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// addr is the bound listen address ("127.0.0.1:43210" for :0 binds).
func (d *daemon) addr() string { return d.ln.Addr().String() }

// debugAddr is the bound -debug-addr listen address, or "" when the
// profiling server is off.
func (d *daemon) debugAddr() string {
	if d.debugLn == nil {
		return ""
	}
	return d.debugLn.Addr().String()
}

// run serves until ctx is cancelled, then shuts down gracefully:
// in-flight HTTP exchanges get a drain window, and the service cancels
// every live job (queued jobs finish as cancelled without running).
func (d *daemon) run(ctx context.Context) error {
	errc := make(chan error, 1)
	go func() { errc <- d.srv.Serve(d.ln) }()
	var debugSrv *http.Server
	if d.debugLn != nil {
		debugSrv = &http.Server{Handler: debugMux()}
		go func() { debugSrv.Serve(d.debugLn) }()
	}
	select {
	case err := <-errc:
		if debugSrv != nil {
			debugSrv.Close()
		}
		d.svc.Close()
		return err
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := d.srv.Shutdown(shCtx)
	if debugSrv != nil {
		debugSrv.Close()
	}
	d.svc.Close()
	return err
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}
	d, err := cfg.listen()
	if err != nil {
		fmt.Fprintf(os.Stderr, "atpgd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("atpgd: listening on http://%s\n", d.addr())
	if da := d.debugAddr(); da != "" {
		fmt.Printf("atpgd: pprof on http://%s/debug/pprof/\n", da)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := d.run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "atpgd: %v\n", err)
		os.Exit(1)
	}
}
