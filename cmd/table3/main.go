// Table3 regenerates the paper's Table 3: for every benchmark circuit the
// number of tested, untestable and aborted gate delay faults, the pattern
// count and the generation time, using the paper's backtrack limits
// (100 local + 100 sequential). It consumes the engine exclusively
// through the public fogbuster/pkg/atpg API.
//
// All circuits except s27 are profile-calibrated synthetic reconstructions
// (see internal/bench); absolute numbers are therefore comparable in shape,
// not value. The paper's row is printed alongside each measured row.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"fogbuster/pkg/atpg"
)

// config is the parsed command line, split from main so the tests can
// pin that the flags — the seed in particular — reach the engine.
type config struct {
	nonRobust bool
	strict    bool
	only      string
	noSim     bool
	workers   int
	compact   bool
	seed      int64
	fullEval  bool
	broadcast bool
	steal     bool
	coneSets  string
	jsonOut   string
	order     string
}

// errUsage marks a command-line error whose message was already printed.
var errUsage = errors.New("usage error")

// parseArgs parses the command line into a config, reporting errors on
// stderr.
func parseArgs(argv []string, stderr io.Writer) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("table3", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&cfg.nonRobust, "nonrobust", false, "use the non-robust fault model (the paper's proposed relaxation)")
	fs.BoolVar(&cfg.strict, "strict", false, "demand true synchronizing sequences (no assumed power-up state)")
	fs.StringVar(&cfg.only, "circuit", "", "run a single circuit by name (e.g. s27)")
	fs.BoolVar(&cfg.noSim, "nofaultsim", false, "disable fault simulation credit")
	fs.IntVar(&cfg.workers, "workers", 0, "ATPG worker count (0 = all CPUs, <0 = single worker); results are identical at any count")
	fs.Int64Var(&cfg.seed, "seed", 0, "run seed: drives the random X-fill, the ADI ordering campaign and the splice fills (one seed, one table, at any worker count)")
	fs.BoolVar(&cfg.compact, "compact", false, "compact every test set and report vectors before/after")
	fs.BoolVar(&cfg.fullEval, "fulleval", false, "force full levelized simulation instead of the event-driven cone kernels (reference oracle; results are identical)")
	fs.BoolVar(&cfg.broadcast, "broadcast", false, "cross-worker detected-set broadcast (pure scheduling; results are identical)")
	fs.BoolVar(&cfg.steal, "steal", false, "work-stealing claim ranges instead of the shared counter (pure scheduling; results are identical)")
	fs.StringVar(&cfg.coneSets, "conesets", "auto", "cone-set representation: auto, dense or compressed (memory/speed trade; results are identical)")
	fs.StringVar(&cfg.jsonOut, "json", "", "write every run's canonical atpg.Result as one JSON array to this file (- for stdout)")
	fs.StringVar(&cfg.order, "order", "natural", "fault-targeting order: natural, topo, scoap or adi")
	if err := fs.Parse(argv); err != nil {
		return nil, err
	}
	if err := cfg.engineConfig().Validate(); err != nil {
		fmt.Fprintf(stderr, "table3: %v\n", err)
		return nil, errUsage
	}
	return cfg, nil
}

// algebra resolves the fault model flag.
func (cfg *config) algebra() string {
	if cfg.nonRobust {
		return atpg.AlgebraNonRobust
	}
	return atpg.AlgebraRobust
}

// engineConfig translates the command line into the public engine
// configuration (compaction included — the session applies it).
func (cfg *config) engineConfig() atpg.Config {
	return atpg.Config{
		Algebra:         cfg.algebra(),
		Order:           cfg.order,
		StrictInit:      cfg.strict,
		DisableFaultSim: cfg.noSim,
		Seed:            cfg.seed,
		Workers:         cfg.workers,
		Compact:         cfg.compact,
		FullEval:        cfg.fullEval,
		Broadcast:       cfg.broadcast,
		Steal:           cfg.steal,
		ConeSets:        cfg.coneSets,
	}
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}
	os.Exit(run(cfg, os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(cfg *config, stdout, stderr io.Writer) int {
	algName, err := atpg.AlgebraName(cfg.algebra())
	if err != nil {
		fmt.Fprintf(stderr, "table3: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "Gate delay fault test generation for non-scan circuits — Table 3 (%s model, %s order", algName, cfg.engineConfig().Order)
	if cfg.strict {
		fmt.Fprintf(stdout, ", strict initialization")
	}
	fmt.Fprintln(stdout, ")")
	fmt.Fprintf(stdout, "%-8s | %7s %7s %7s %7s %8s | %s\n",
		"circuit", "tested", "untstbl", "aborted", "#pat", "time", "paper row (tested/untstbl/aborted/#pat/time)")

	var results []*atpg.Result
	matched := false
	for _, b := range atpg.Benchmarks() {
		if cfg.only != "" && b.Name != cfg.only {
			continue
		}
		matched = true
		c, err := atpg.Benchmark(b.Name)
		if err != nil {
			fmt.Fprintf(stderr, "table3: %v\n", err)
			return 1
		}
		ses, err := atpg.New(c, cfg.engineConfig())
		if err != nil {
			fmt.Fprintf(stderr, "table3: %v\n", err)
			return 1
		}
		res, err := ses.Run(context.Background())
		if err != nil {
			fmt.Fprintf(stderr, "table3: %s: %v\n", b.Name, err)
			return 1
		}
		results = append(results, res)
		note := ""
		if !b.Exact {
			note = " *"
		}
		if st := res.Compaction; st != nil {
			note += fmt.Sprintf(" | vectors %d -> %d (%d of %d sequences dropped, %d spliced frames)",
				st.PatternsBefore, st.PatternsAfter, st.Dropped, st.Sequences, st.SplicedFrames)
		}
		if res.ValidationFailures > 0 {
			note += fmt.Sprintf(" (%d VALIDATION FAILURES)", res.ValidationFailures)
		}
		fmt.Fprintf(stdout, "%-8s | %7d %7d %7d %7d %7.2fs | %d / %d / %d / %d / %.0fs%s\n",
			b.Name, res.Tested, res.Untestable, res.Aborted, res.Patterns, res.Runtime.Seconds(),
			b.Paper.Tested, b.Paper.Untestable, b.Paper.Aborted, b.Paper.Patterns, b.Paper.Seconds, note)
	}
	if !matched {
		fmt.Fprintf(stderr, "table3: no benchmark named %q\n", cfg.only)
		return 1
	}
	fmt.Fprintln(stdout, "* synthetic reconstruction calibrated to the published size profile and the paper's fault totals")

	if cfg.jsonOut != "" {
		if err := writeJSON(cfg.jsonOut, stdout, results); err != nil {
			fmt.Fprintf(stderr, "table3: %v\n", err)
			return 1
		}
	}
	return 0
}

// writeJSON emits every run's Result as one canonical JSON array.
func writeJSON(path string, stdout io.Writer, results []*atpg.Result) error {
	emit := func(w io.Writer) error {
		return atpg.EncodeJSON(w, results)
	}
	if path == "-" {
		return emit(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
