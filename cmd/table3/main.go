// Table3 regenerates the paper's Table 3: for every benchmark circuit the
// number of tested, untestable and aborted gate delay faults, the pattern
// count and the generation time, using the paper's backtrack limits
// (100 local + 100 sequential).
//
// All circuits except s27 are profile-calibrated synthetic reconstructions
// (see internal/bench); absolute numbers are therefore comparable in shape,
// not value. The paper's row is printed alongside each measured row.
package main

import (
	"flag"
	"fmt"
	"os"

	"fogbuster/internal/bench"
	"fogbuster/internal/compact"
	"fogbuster/internal/core"
	"fogbuster/internal/logic"
	"fogbuster/internal/order"
)

func main() {
	nonRobust := flag.Bool("nonrobust", false, "use the non-robust fault model (the paper's proposed relaxation)")
	strict := flag.Bool("strict", false, "demand true synchronizing sequences (no assumed power-up state)")
	only := flag.String("circuit", "", "run a single circuit by name (e.g. s27)")
	noSim := flag.Bool("nofaultsim", false, "disable fault simulation credit")
	workers := flag.Int("workers", 0, "ATPG worker count (0 = all CPUs, <0 = single worker); results are identical at any count")
	orderFlag := flag.String("order", "natural", "fault-targeting order: natural, topo, scoap or adi")
	compactFlag := flag.Bool("compact", false, "compact every test set and report vectors before/after")
	flag.Parse()

	heur, err := order.Parse(*orderFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "table3: %v\n", err)
		os.Exit(2)
	}

	alg := logic.Robust
	if *nonRobust {
		alg = logic.NonRobust
	}

	fmt.Printf("Gate delay fault test generation for non-scan circuits — Table 3 (%s model, %s order", alg.Name(), heur.Name())
	if *strict {
		fmt.Printf(", strict initialization")
	}
	fmt.Println(")")
	fmt.Printf("%-8s | %7s %7s %7s %7s %8s | %s\n",
		"circuit", "tested", "untstbl", "aborted", "#pat", "time", "paper row (tested/untstbl/aborted/#pat/time)")

	for _, p := range bench.Profiles {
		if *only != "" && p.Name != *only {
			continue
		}
		c, err := bench.Synthesize(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table3: %v\n", err)
			os.Exit(1)
		}
		sum := core.New(c, core.Options{
			Algebra:         alg,
			StrictInit:      *strict,
			DisableFaultSim: *noSim,
			Workers:         *workers,
			Order:           heur,
			Compact:         *compactFlag,
		}).Run()
		note := ""
		if !p.Exact {
			note = " *"
		}
		if *compactFlag {
			st := compact.Apply(c, sum, compact.Options{Algebra: alg})
			note += fmt.Sprintf(" | vectors %d -> %d (%d of %d sequences dropped, %d spliced frames)",
				st.PatternsBefore, st.PatternsAfter, st.Dropped, st.Sequences, st.SplicedFrames)
		}
		if sum.ValidationFailures > 0 {
			note += fmt.Sprintf(" (%d VALIDATION FAILURES)", sum.ValidationFailures)
		}
		fmt.Printf("%-8s | %7d %7d %7d %7d %7.2fs | %d / %d / %d / %d / %.0fs%s\n",
			p.Name, sum.Tested, sum.Untestable, sum.Aborted, sum.Patterns, sum.Runtime.Seconds(),
			p.Paper.Tested, p.Paper.Untestable, p.Paper.Aborted, p.Paper.Patterns, p.Paper.Seconds, note)
	}
	fmt.Println("* synthetic reconstruction calibrated to the published size profile and the paper's fault totals")
}
