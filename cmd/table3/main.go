// Table3 regenerates the paper's Table 3: for every benchmark circuit the
// number of tested, untestable and aborted gate delay faults, the pattern
// count and the generation time, using the paper's backtrack limits
// (100 local + 100 sequential).
//
// All circuits except s27 are profile-calibrated synthetic reconstructions
// (see internal/bench); absolute numbers are therefore comparable in shape,
// not value. The paper's row is printed alongside each measured row.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fogbuster/internal/bench"
	"fogbuster/internal/compact"
	"fogbuster/internal/core"
	"fogbuster/internal/logic"
	"fogbuster/internal/order"
)

// config is the parsed command line, split from main so the tests can
// pin that the flags — the seed in particular — reach the engine.
type config struct {
	nonRobust bool
	strict    bool
	only      string
	noSim     bool
	workers   int
	compact   bool
	seed      int64
	fullEval  bool
	heur      order.Heuristic
}

// parseArgs parses the command line into a config, reporting errors on
// stderr.
func parseArgs(argv []string, stderr io.Writer) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("table3", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&cfg.nonRobust, "nonrobust", false, "use the non-robust fault model (the paper's proposed relaxation)")
	fs.BoolVar(&cfg.strict, "strict", false, "demand true synchronizing sequences (no assumed power-up state)")
	fs.StringVar(&cfg.only, "circuit", "", "run a single circuit by name (e.g. s27)")
	fs.BoolVar(&cfg.noSim, "nofaultsim", false, "disable fault simulation credit")
	fs.IntVar(&cfg.workers, "workers", 0, "ATPG worker count (0 = all CPUs, <0 = single worker); results are identical at any count")
	fs.Int64Var(&cfg.seed, "seed", 0, "run seed: drives the random X-fill, the ADI ordering campaign and the splice fills (one seed, one table, at any worker count)")
	fs.BoolVar(&cfg.compact, "compact", false, "compact every test set and report vectors before/after")
	fs.BoolVar(&cfg.fullEval, "fulleval", false, "force full levelized simulation instead of the event-driven cone kernels (reference oracle; results are identical)")
	orderFlag := fs.String("order", "natural", "fault-targeting order: natural, topo, scoap or adi")
	if err := fs.Parse(argv); err != nil {
		return nil, err
	}
	heur, err := order.Parse(*orderFlag)
	if err != nil {
		fmt.Fprintf(stderr, "table3: %v\n", err)
		return nil, err
	}
	cfg.heur = heur
	return cfg, nil
}

// algebra resolves the fault model flag.
func (cfg *config) algebra() *logic.Algebra {
	if cfg.nonRobust {
		return logic.NonRobust
	}
	return logic.Robust
}

// engineOptions translates the command line into the engine options.
func (cfg *config) engineOptions() core.Options {
	return core.Options{
		Algebra:         cfg.algebra(),
		StrictInit:      cfg.strict,
		DisableFaultSim: cfg.noSim,
		Seed:            cfg.seed,
		Workers:         cfg.workers,
		Order:           cfg.heur,
		Compact:         cfg.compact,
		FullEval:        cfg.fullEval,
	}
}

// compactOptions translates the command line into the compaction options.
func (cfg *config) compactOptions() compact.Options {
	return compact.Options{Algebra: cfg.algebra(), Seed: cfg.seed, FullEval: cfg.fullEval}
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}
	alg := cfg.algebra()

	fmt.Printf("Gate delay fault test generation for non-scan circuits — Table 3 (%s model, %s order", alg.Name(), cfg.heur.Name())
	if cfg.strict {
		fmt.Printf(", strict initialization")
	}
	fmt.Println(")")
	fmt.Printf("%-8s | %7s %7s %7s %7s %8s | %s\n",
		"circuit", "tested", "untstbl", "aborted", "#pat", "time", "paper row (tested/untstbl/aborted/#pat/time)")

	for _, p := range bench.Profiles {
		if cfg.only != "" && p.Name != cfg.only {
			continue
		}
		c, err := bench.Synthesize(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table3: %v\n", err)
			os.Exit(1)
		}
		sum := core.New(c, cfg.engineOptions()).Run()
		note := ""
		if !p.Exact {
			note = " *"
		}
		if cfg.compact {
			st := compact.Apply(c, sum, cfg.compactOptions())
			if !st.Complete {
				fmt.Fprintf(os.Stderr, "table3: %s: compaction refused: recorded detection sets are absent or incomplete\n", p.Name)
				os.Exit(1)
			}
			note += fmt.Sprintf(" | vectors %d -> %d (%d of %d sequences dropped, %d spliced frames)",
				st.PatternsBefore, st.PatternsAfter, st.Dropped, st.Sequences, st.SplicedFrames)
		}
		if sum.ValidationFailures > 0 {
			note += fmt.Sprintf(" (%d VALIDATION FAILURES)", sum.ValidationFailures)
		}
		fmt.Printf("%-8s | %7d %7d %7d %7d %7.2fs | %d / %d / %d / %d / %.0fs%s\n",
			p.Name, sum.Tested, sum.Untestable, sum.Aborted, sum.Patterns, sum.Runtime.Seconds(),
			p.Paper.Tested, p.Paper.Untestable, p.Paper.Aborted, p.Paper.Patterns, p.Paper.Seconds, note)
	}
	fmt.Println("* synthetic reconstruction calibrated to the published size profile and the paper's fault totals")
}
