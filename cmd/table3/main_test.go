package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fogbuster/pkg/atpg"
)

// TestSeedFlagReachesEngine pins the -seed satellite fix for table3: the
// flag value must land in the public Config (the session derives the
// X-fill streams, the ordering campaign and the splice fills from it).
func TestSeedFlagReachesEngine(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-seed", "-9", "-order", "scoap", "-compact", "-circuit", "s386"}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	ec := cfg.engineConfig()
	if ec.Seed != -9 {
		t.Fatalf("config Seed = %d, want -9", ec.Seed)
	}
	if ec.Order != atpg.OrderSCOAP {
		t.Fatalf("config Order = %q, want scoap", ec.Order)
	}
	if !ec.Compact || cfg.only != "s386" {
		t.Fatalf("flags lost: compact=%v circuit=%q", ec.Compact, cfg.only)
	}
}

// TestFullEvalFlagReachesEngine pins the -fulleval oracle knob for
// table3.
func TestFullEvalFlagReachesEngine(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-fulleval"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.engineConfig().FullEval {
		t.Fatal("-fulleval did not reach the config")
	}
}

// TestParseArgsRejectsUnknownOrder: a misspelled heuristic fails fast.
func TestParseArgsRejectsUnknownOrder(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseArgs([]string{"-order", "nope"}, &stderr); err == nil {
		t.Fatal("unknown order accepted")
	}
}

// TestJSONFlagReachesEncoder pins the -json satellite for table3: the
// emitted file must hold one canonical atpg.Result per circuit run,
// decodable through the public types.
func TestJSONFlagReachesEncoder(t *testing.T) {
	out := filepath.Join(t.TempDir(), "table3.json")
	var stdout, stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-circuit", "s27", "-json", out}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	if code := run(cfg, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []*atpg.Result
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("emitted JSON does not decode: %v", err)
	}
	if len(results) != 1 || results[0].Circuit != "s27" {
		t.Fatalf("want exactly the s27 result, got %d results", len(results))
	}
	if results[0].Classified() != len(results[0].Faults) {
		t.Fatal("s27 result incoherent")
	}
}

// TestUnknownCircuitFails: a -circuit typo must not pass as an empty
// table.
func TestUnknownCircuitFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-circuit", "s999"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code := run(cfg, &stdout, &stderr); code == 0 {
		t.Fatal("unknown benchmark name accepted")
	}
	if !strings.Contains(stderr.String(), "s999") {
		t.Fatalf("name not reported: %q", stderr.String())
	}
}
