package main

import (
	"bytes"
	"testing"

	"fogbuster/internal/order"
)

// TestSeedFlagReachesEngine pins the -seed satellite fix for table3: the
// flag value must land in core.Options.Seed and the compaction options.
func TestSeedFlagReachesEngine(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-seed", "-9", "-order", "scoap", "-compact", "-circuit", "s386"}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	opts := cfg.engineOptions()
	if opts.Seed != -9 {
		t.Fatalf("engine Seed = %d, want -9", opts.Seed)
	}
	if co := cfg.compactOptions(); co.Seed != -9 {
		t.Fatalf("compaction Seed = %d, want -9", co.Seed)
	}
	if opts.Order != order.SCOAP {
		t.Fatalf("engine Order = %q, want scoap", opts.Order)
	}
	if !opts.Compact || cfg.only != "s386" {
		t.Fatalf("flags lost: compact=%v circuit=%q", opts.Compact, cfg.only)
	}
	if cfg.engineOptions().Seed != cfg.compactOptions().Seed {
		t.Fatal("engine and compaction seeds diverge")
	}
}

// TestFullEvalFlagReachesEngine pins the -fulleval oracle knob for
// table3, in the engine and the compaction options alike.
func TestFullEvalFlagReachesEngine(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-fulleval"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.engineOptions().FullEval || !cfg.compactOptions().FullEval {
		t.Fatal("-fulleval did not reach the options")
	}
}

// TestParseArgsRejectsUnknownOrder: a misspelled heuristic fails fast.
func TestParseArgsRejectsUnknownOrder(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseArgs([]string{"-order", "nope"}, &stderr); err == nil {
		t.Fatal("unknown order accepted")
	}
}
