package main

import (
	"bytes"
	"strings"
	"testing"
)

// The fixture-level behavior of every analyzer is pinned in
// internal/lint; these tests cover the multichecker shell itself: flag
// parsing, analyzer selection, and the exit-code contract CI keys on.

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errb.String())
	}
	for _, name := range []string{"determinism", "oraclepair", "copylock", "apiboundary", "jsontag"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer: want exit 2, got %d", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr should name the unknown analyzer: %s", errb.String())
	}
}

func TestBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./does/not/exist/..."}, &out, &errb); code != 2 {
		t.Fatalf("bad pattern: want exit 2, got %d (stderr: %s)", code, errb.String())
	}
}

// TestBoundaryCleanOnOwnTree runs the syntax-only analyzers over the
// repository's cmd/ subtree through the real binary path: the tree must be
// clean, and the run must stay in syntax mode (fast) because neither
// analyzer needs types.
func TestBoundaryCleanOnOwnTree(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-only", "apiboundary,jsontag", "fogbuster/cmd/...", "fogbuster/internal/service"}, &out, &errb)
	if code != 0 {
		t.Fatalf("boundary over cmd/: want exit 0, got %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
