// Atpglint runs the house static-analysis suite (internal/lint) over the
// given package patterns and exits non-zero when any contract is violated:
//
//	go run ./cmd/atpglint ./...
//
// The suite proves at compile time what the invariance tests check at run
// time: engine-package determinism (no wall clocks, no global or constant-
// seeded RNGs, no map-order-dependent result construction), scalar/batched
// oracle pairing, mutex/atomic hygiene, the pkg/atpg API boundary with its
// explicit exemption table, and the canonical-JSON tag discipline. See
// DESIGN.md §13; deliberate exceptions are annotated in the source as
// //lint:allow <analyzer> <reason>.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fogbuster/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command. Exit codes: 0 clean, 1 findings,
// 2 usage or load failure.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("atpglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: atpglint [flags] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "atpglint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// Type-check only when a requested analyzer needs it; the boundary and
	// jsontag analyzers alone run in a fraction of the time.
	mode := lint.LoadSyntax
	for _, a := range analyzers {
		if a.NeedTypes {
			mode = lint.LoadTypes
		}
	}

	pkgs, err := lint.Load(".", mode, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "atpglint: %v\n", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "atpglint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "atpglint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
