// Truthtab prints the paper's Table 1 (AND gate) and Table 2 (inverter)
// for the eight-valued robust delay fault algebra, and optionally the
// derived OR/XOR tables or the non-robust variants.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fogbuster/internal/logic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("truthtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nonRobust := fs.Bool("nonrobust", false, "print the non-robust algebra instead")
	all := fs.Bool("all", false, "also print the derived OR and XOR tables")
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	alg := logic.Robust
	if *nonRobust {
		alg = logic.NonRobust
	}

	fmt.Fprintf(stdout, "Table 1: truth table for AND gate (%s algebra)\n", alg.Name())
	printTable(stdout, func(x, y logic.Value) logic.Value { return alg.And(x, y) })

	fmt.Fprintf(stdout, "\nTable 2: truth table for inverter\n      ")
	for v := logic.Value(0); v < logic.NumValues; v++ {
		fmt.Fprintf(stdout, "%4s", v)
	}
	fmt.Fprintf(stdout, "\n  NOT ")
	for v := logic.Value(0); v < logic.NumValues; v++ {
		fmt.Fprintf(stdout, "%4s", alg.Not(v))
	}
	fmt.Fprintln(stdout)

	if *all {
		fmt.Fprintf(stdout, "\nDerived OR table (De Morgan dual)\n")
		printTable(stdout, func(x, y logic.Value) logic.Value { return alg.Or(x, y) })
		fmt.Fprintf(stdout, "\nDerived XOR table\n")
		printTable(stdout, func(x, y logic.Value) logic.Value { return alg.Xor(x, y) })
	}
	return 0
}

func printTable(w io.Writer, op func(x, y logic.Value) logic.Value) {
	fmt.Fprintf(w, "      ")
	for y := logic.Value(0); y < logic.NumValues; y++ {
		fmt.Fprintf(w, "%4s", y)
	}
	fmt.Fprintln(w)
	for x := logic.Value(0); x < logic.NumValues; x++ {
		fmt.Fprintf(w, "%4s |", x)
		for y := logic.Value(0); y < logic.NumValues; y++ {
			fmt.Fprintf(w, "%4s", op(x, y))
		}
		fmt.Fprintln(w)
	}
}
