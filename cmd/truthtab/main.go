// Truthtab prints the paper's Table 1 (AND gate) and Table 2 (inverter)
// for the eight-valued robust delay fault algebra, and optionally the
// derived OR/XOR tables or the non-robust variants. It consumes the
// algebra exclusively through the public fogbuster/pkg/atpg API.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fogbuster/pkg/atpg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("truthtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nonRobust := fs.Bool("nonrobust", false, "print the non-robust algebra instead")
	all := fs.Bool("all", false, "also print the derived OR and XOR tables")
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	alg := atpg.AlgebraRobust
	if *nonRobust {
		alg = atpg.AlgebraNonRobust
	}
	algName, err := atpg.AlgebraName(alg)
	if err != nil {
		fmt.Fprintf(stderr, "truthtab: %v\n", err)
		return 1
	}
	labels := atpg.AlgebraValues()

	fmt.Fprintf(stdout, "Table 1: truth table for AND gate (%s algebra)\n", algName)
	if err := printTable(stdout, labels, alg, "and"); err != nil {
		fmt.Fprintf(stderr, "truthtab: %v\n", err)
		return 1
	}

	not, err := atpg.NotTable(alg)
	if err != nil {
		fmt.Fprintf(stderr, "truthtab: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "\nTable 2: truth table for inverter\n      ")
	for _, l := range labels {
		fmt.Fprintf(stdout, "%4s", l)
	}
	fmt.Fprintf(stdout, "\n  NOT ")
	for _, v := range not {
		fmt.Fprintf(stdout, "%4s", v)
	}
	fmt.Fprintln(stdout)

	if *all {
		fmt.Fprintf(stdout, "\nDerived OR table (De Morgan dual)\n")
		if err := printTable(stdout, labels, alg, "or"); err != nil {
			fmt.Fprintf(stderr, "truthtab: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nDerived XOR table\n")
		if err := printTable(stdout, labels, alg, "xor"); err != nil {
			fmt.Fprintf(stderr, "truthtab: %v\n", err)
			return 1
		}
	}
	return 0
}

// printTable renders one 8x8 gate table with row and column headers.
func printTable(w io.Writer, labels []string, algebra, gate string) error {
	table, err := atpg.TruthTable(algebra, gate)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "      ")
	for _, l := range labels {
		fmt.Fprintf(w, "%4s", l)
	}
	fmt.Fprintln(w)
	for x, row := range table {
		fmt.Fprintf(w, "%4s |", labels[x])
		for _, cell := range row {
			fmt.Fprintf(w, "%4s", cell)
		}
		fmt.Fprintln(w)
	}
	return nil
}
