// Truthtab prints the paper's Table 1 (AND gate) and Table 2 (inverter)
// for the eight-valued robust delay fault algebra, and optionally the
// derived OR/XOR tables or the non-robust variants.
package main

import (
	"flag"
	"fmt"

	"fogbuster/internal/logic"
)

func main() {
	nonRobust := flag.Bool("nonrobust", false, "print the non-robust algebra instead")
	all := flag.Bool("all", false, "also print the derived OR and XOR tables")
	flag.Parse()

	alg := logic.Robust
	if *nonRobust {
		alg = logic.NonRobust
	}

	fmt.Printf("Table 1: truth table for AND gate (%s algebra)\n", alg.Name())
	printTable(func(x, y logic.Value) logic.Value { return alg.And(x, y) })

	fmt.Printf("\nTable 2: truth table for inverter\n      ")
	for v := logic.Value(0); v < logic.NumValues; v++ {
		fmt.Printf("%4s", v)
	}
	fmt.Printf("\n  NOT ")
	for v := logic.Value(0); v < logic.NumValues; v++ {
		fmt.Printf("%4s", alg.Not(v))
	}
	fmt.Println()

	if *all {
		fmt.Printf("\nDerived OR table (De Morgan dual)\n")
		printTable(func(x, y logic.Value) logic.Value { return alg.Or(x, y) })
		fmt.Printf("\nDerived XOR table\n")
		printTable(func(x, y logic.Value) logic.Value { return alg.Xor(x, y) })
	}
}

func printTable(op func(x, y logic.Value) logic.Value) {
	fmt.Printf("      ")
	for y := logic.Value(0); y < logic.NumValues; y++ {
		fmt.Printf("%4s", y)
	}
	fmt.Println()
	for x := logic.Value(0); x < logic.NumValues; x++ {
		fmt.Printf("%4s |", x)
		for y := logic.Value(0); y < logic.NumValues; y++ {
			fmt.Printf("%4s", op(x, y))
		}
		fmt.Println()
	}
}
