package main

import (
	"bytes"
	"strings"
	"testing"

	"fogbuster/pkg/atpg"
)

// TestTables pins the printed Table 1 against the algebra itself: the
// AND row for Rc must match the public truth table cell for cell, and
// the header must name the robust algebra.
func TestTables(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Table 1: truth table for AND gate (robust algebra)") {
		t.Fatalf("missing Table 1 header:\n%s", out)
	}
	if !strings.Contains(out, "Table 2: truth table for inverter") {
		t.Fatalf("missing Table 2 header:\n%s", out)
	}
	// The Rc row of the AND table, rendered the way printTable does.
	labels := atpg.AlgebraValues()
	table, err := atpg.TruthTable(atpg.AlgebraRobust, "and")
	if err != nil {
		t.Fatal(err)
	}
	rc := -1
	for i, l := range labels {
		if l == "Rc" {
			rc = i
		}
	}
	if rc < 0 {
		t.Fatalf("no Rc label in %v", labels)
	}
	var want strings.Builder
	want.WriteString("  Rc |")
	for _, cell := range table[rc] {
		want.WriteString(pad4(cell))
	}
	if !strings.Contains(out, want.String()) {
		t.Fatalf("AND table Rc row mismatch, want %q in:\n%s", want.String(), out)
	}
}

// TestAllAndNonRobust: -all adds the derived tables, -nonrobust switches
// the algebra name.
func TestAllAndNonRobust(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-all", "-nonrobust"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"non-robust algebra", "Derived OR table", "Derived XOR table"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// pad4 right-aligns a cell the way fmt's %4s does.
func pad4(s string) string {
	for len(s) < 4 {
		s = " " + s
	}
	return s
}
