// Tdatpg runs the full non-scan gate delay fault ATPG flow on an ISCAS'89
// .bench netlist and reports the per-fault classification, optionally
// dumping the generated test sequences.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"fogbuster/internal/compact"
	"fogbuster/internal/core"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/order"
	"fogbuster/internal/sim"
)

// config is the parsed command line. It exists separately from main so
// the tests can pin that every flag — the seed in particular — actually
// reaches the engine options.
type config struct {
	nonRobust bool
	strict    bool
	localBT   int
	seqBT     int
	dump      bool
	verbose   bool
	csvOut    string
	varBudget int
	workers   int
	compact   bool
	seed      int64
	fullEval  bool
	cpuProf   string
	memProf   string
	heur      order.Heuristic
	bench     string
}

// errUsage marks a command-line error whose message was already printed.
var errUsage = errors.New("usage error")

// parseArgs parses the command line into a config. Errors (including
// -h/-help) are reported on stderr; the caller only needs the exit code.
func parseArgs(argv []string, stderr io.Writer) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("tdatpg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&cfg.nonRobust, "nonrobust", false, "use the non-robust fault model")
	fs.BoolVar(&cfg.strict, "strict", false, "demand true synchronizing sequences")
	fs.IntVar(&cfg.localBT, "local-backtracks", 100, "TDgen backtrack limit per fault")
	fs.IntVar(&cfg.seqBT, "seq-backtracks", 100, "SEMILET backtrack limit per fault")
	fs.BoolVar(&cfg.dump, "dump", false, "print every generated test sequence")
	fs.BoolVar(&cfg.verbose, "v", false, "print the per-fault classification")
	fs.StringVar(&cfg.csvOut, "csv", "", "write the per-fault results and sequences to a CSV file")
	fs.IntVar(&cfg.varBudget, "variation", 0, "timing-refined PPO handoff with this variation budget (0 = pure robust)")
	fs.IntVar(&cfg.workers, "workers", 0, "ATPG worker count (0 = all CPUs, <0 = single worker); results are identical at any count")
	fs.Int64Var(&cfg.seed, "seed", 0, "run seed: drives the random X-fill, the ADI ordering campaign and the splice fills (one seed, one Summary, at any worker count)")
	fs.BoolVar(&cfg.compact, "compact", false, "compact the test set (reverse-order drop + overlap merge) after generation")
	fs.BoolVar(&cfg.fullEval, "fulleval", false, "force full levelized simulation instead of the event-driven cone kernels (reference oracle; results are identical)")
	fs.StringVar(&cfg.cpuProf, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&cfg.memProf, "memprofile", "", "write a heap profile (taken after the run) to this file")
	orderFlag := fs.String("order", "natural", "fault-targeting order: natural, topo, scoap or adi")
	if err := fs.Parse(argv); err != nil {
		return nil, err
	}
	heur, err := order.Parse(*orderFlag)
	if err != nil {
		fmt.Fprintf(stderr, "tdatpg: %v\n", err)
		return nil, errUsage
	}
	cfg.heur = heur
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tdatpg [flags] circuit.bench")
		fs.PrintDefaults()
		return nil, errUsage
	}
	cfg.bench = fs.Arg(0)
	return cfg, nil
}

// algebra resolves the fault model flag.
func (cfg *config) algebra() *logic.Algebra {
	if cfg.nonRobust {
		return logic.NonRobust
	}
	return logic.Robust
}

// engineOptions translates the command line into the engine options.
func (cfg *config) engineOptions() core.Options {
	return core.Options{
		Algebra:         cfg.algebra(),
		LocalBacktracks: cfg.localBT,
		SeqBacktracks:   cfg.seqBT,
		StrictInit:      cfg.strict,
		VariationBudget: cfg.varBudget,
		Seed:            cfg.seed,
		Workers:         cfg.workers,
		Order:           cfg.heur,
		Compact:         cfg.compact,
		FullEval:        cfg.fullEval,
	}
}

// compactOptions translates the command line into the compaction options;
// the seed must match the engine's so the splice fills are reproducible.
func (cfg *config) compactOptions() compact.Options {
	return compact.Options{Algebra: cfg.algebra(), Seed: cfg.seed, FullEval: cfg.fullEval}
}

// profiling starts CPU profiling if requested and returns a stop
// function that finishes both profiles; it must run before any os.Exit.
func (cfg *config) profiling() (func(), error) {
	var cpuFile *os.File
	if cfg.cpuProf != "" {
		f, err := os.Create(cfg.cpuProf)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if cfg.memProf != "" {
			f, err := os.Create(cfg.memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}

	data, err := os.ReadFile(cfg.bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
		os.Exit(1)
	}
	c, err := netlist.Parse(cfg.bench, string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
		os.Exit(1)
	}

	stopProf, err := cfg.profiling()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
		os.Exit(1)
	}
	sum := core.New(c, cfg.engineOptions()).Run()
	var st *core.CompactionStats
	if cfg.compact {
		st = compact.Apply(c, sum, cfg.compactOptions())
		if !st.Complete {
			stopProf()
			fmt.Fprintln(os.Stderr, "tdatpg: compaction refused: recorded detection sets are absent or incomplete")
			os.Exit(1)
		}
	}
	stopProf()

	if cfg.csvOut != "" {
		f, err := os.Create(cfg.csvOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
			os.Exit(1)
		}
		if err := sum.WriteCSV(f, c); err != nil {
			fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Println(c.Stats())
	fmt.Printf("model=%s order=%s tested=%d (explicit %d) untestable=%d aborted=%d patterns=%d time=%v\n",
		sum.Algebra, sum.Order, sum.Tested, sum.Explicit, sum.Untestable, sum.Aborted, sum.Patterns, sum.Runtime)
	if st != nil {
		fmt.Printf("compaction: vectors %d -> %d, sequences %d -> %d (%d dropped, %d pairs spliced saving %d vectors)\n",
			st.PatternsBefore, st.PatternsAfter, st.Sequences, st.Kept, st.Dropped, st.Splices, st.SplicedFrames)
	}
	if sum.ValidationFailures > 0 {
		fmt.Printf("WARNING: %d sequences failed independent validation\n", sum.ValidationFailures)
	}
	if cfg.verbose || cfg.dump {
		for _, r := range sum.Results {
			if !cfg.verbose && r.Seq == nil {
				continue
			}
			fmt.Printf("%-24s %s\n", r.Fault.Name(c), r.Status)
			if cfg.dump && r.Seq != nil {
				printSeq(r.Seq)
			}
		}
	}
}

func printSeq(t *core.TestSequence) {
	for i, v := range t.Sync {
		fmt.Printf("    sync[%d] %s (slow)\n", i, vec(v))
	}
	fmt.Printf("    V1      %s (slow)\n", vec(t.V1))
	fmt.Printf("    V2      %s (FAST)\n", vec(t.V2))
	for i, v := range t.Prop {
		fmt.Printf("    prop[%d] %s (slow)\n", i, vec(v))
	}
	if t.ObservePO >= 0 {
		fmt.Printf("    observe PO %d\n", t.ObservePO)
	}
	if t.Assumed != nil && sim.KnownCount(t.Assumed) > 0 {
		fmt.Printf("    assumed power-up state %s\n", vec(t.Assumed))
	}
}

func vec(v []sim.V3) string {
	var sb strings.Builder
	for _, b := range v {
		sb.WriteString(b.String())
	}
	return sb.String()
}
