// Tdatpg runs the full non-scan gate delay fault ATPG flow on an ISCAS'89
// .bench netlist and reports the per-fault classification, optionally
// dumping the generated test sequences, streaming live progress, and
// writing the results in the canonical JSON or the legacy CSV form. It
// consumes the engine exclusively through the public fogbuster/pkg/atpg
// API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"fogbuster/pkg/atpg"
)

// config is the parsed command line. It exists separately from main so
// the tests can pin that every flag — the seed and the output selectors
// in particular — actually reaches the engine configuration.
type config struct {
	nonRobust bool
	strict    bool
	localBT   int
	seqBT     int
	dump      bool
	verbose   bool
	csvOut    string
	jsonOut   string
	progress  bool
	varBudget int
	workers   int
	compact   bool
	seed      int64
	fullEval  bool
	scalarS   bool
	broadcast bool
	steal     bool
	coneSets  string
	maxTarg   int
	timeout   time.Duration
	cpuProf   string
	memProf   string
	order     string
	bench     string
}

// errUsage marks a command-line error whose message was already printed.
var errUsage = errors.New("usage error")

// parseArgs parses the command line into a config. Errors (including
// -h/-help) are reported on stderr; the caller only needs the exit code.
func parseArgs(argv []string, stderr io.Writer) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("tdatpg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&cfg.nonRobust, "nonrobust", false, "use the non-robust fault model")
	fs.BoolVar(&cfg.strict, "strict", false, "demand true synchronizing sequences")
	fs.IntVar(&cfg.localBT, "local-backtracks", 100, "TDgen backtrack limit per fault")
	fs.IntVar(&cfg.seqBT, "seq-backtracks", 100, "SEMILET backtrack limit per fault")
	fs.BoolVar(&cfg.dump, "dump", false, "print every generated test sequence")
	fs.BoolVar(&cfg.verbose, "v", false, "print the per-fault classification")
	fs.StringVar(&cfg.csvOut, "csv", "", "write the per-fault results and sequences to a CSV file")
	fs.StringVar(&cfg.jsonOut, "json", "", "write the canonical atpg.Result JSON to this file (- for stdout; exclusive with -csv)")
	fs.BoolVar(&cfg.progress, "progress", false, "render the event stream as a live done/total ticker on stderr")
	fs.IntVar(&cfg.varBudget, "variation", 0, "timing-refined PPO handoff with this variation budget (0 = pure robust)")
	fs.IntVar(&cfg.workers, "workers", 0, "ATPG worker count (0 = all CPUs, <0 = single worker); results are identical at any count")
	fs.Int64Var(&cfg.seed, "seed", 0, "run seed: drives the random X-fill, the ADI ordering campaign and the splice fills (one seed, one Result, at any worker count)")
	fs.BoolVar(&cfg.compact, "compact", false, "compact the test set (reverse-order drop + overlap merge) after generation")
	fs.BoolVar(&cfg.fullEval, "fulleval", false, "force full levelized simulation instead of the event-driven cone kernels (reference oracle; results are identical)")
	fs.BoolVar(&cfg.scalarS, "scalarsearch", false, "force the scalar reference path of the generation-phase search instead of the 64-lane batched X-fill trials and decision probes (reference oracle; results are identical)")
	fs.StringVar(&cfg.cpuProf, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&cfg.memProf, "memprofile", "", "write a heap profile (taken after the run) to this file")
	fs.BoolVar(&cfg.broadcast, "broadcast", false, "cross-worker detected-set broadcast (pure scheduling; results are identical)")
	fs.BoolVar(&cfg.steal, "steal", false, "work-stealing claim ranges instead of the shared counter (pure scheduling; results are identical)")
	fs.StringVar(&cfg.coneSets, "conesets", "auto", "cone-set representation: auto, dense or compressed (memory/speed trade; results are identical)")
	fs.IntVar(&cfg.maxTarg, "maxtargets", 0, "budget the run to the first N targeting positions (0 = the whole universe)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "wall-clock deadline for the run (e.g. 30s, 5m; 0 = none); an expired run still writes the committed-prefix partial result and exits 3")
	fs.StringVar(&cfg.order, "order", "natural", "fault-targeting order: natural, topo, scoap or adi")
	if err := fs.Parse(argv); err != nil {
		return nil, err
	}
	if err := cfg.engineConfig().Validate(); err != nil {
		fmt.Fprintf(stderr, "tdatpg: %v\n", err)
		return nil, errUsage
	}
	if cfg.jsonOut != "" && cfg.csvOut != "" {
		fmt.Fprintln(stderr, "tdatpg: -json and -csv are exclusive")
		return nil, errUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: tdatpg [flags] circuit.bench")
		fs.PrintDefaults()
		return nil, errUsage
	}
	cfg.bench = fs.Arg(0)
	return cfg, nil
}

// algebra resolves the fault model flag.
func (cfg *config) algebra() string {
	if cfg.nonRobust {
		return atpg.AlgebraNonRobust
	}
	return atpg.AlgebraRobust
}

// engineConfig translates the command line into the public engine
// configuration (compaction included — the session applies it).
func (cfg *config) engineConfig() atpg.Config {
	return atpg.Config{
		Algebra:         cfg.algebra(),
		Order:           cfg.order,
		LocalBacktracks: cfg.localBT,
		SeqBacktracks:   cfg.seqBT,
		StrictInit:      cfg.strict,
		VariationBudget: cfg.varBudget,
		Seed:            cfg.seed,
		Workers:         cfg.workers,
		Compact:         cfg.compact,
		FullEval:        cfg.fullEval,
		ScalarSearch:    cfg.scalarS,
		Broadcast:       cfg.broadcast,
		Steal:           cfg.steal,
		ConeSets:        cfg.coneSets,
		MaxTargets:      cfg.maxTarg,
	}
}

// profiling starts CPU profiling if requested and returns a stop
// function that finishes both profiles; it must run before any exit.
func (cfg *config) profiling(stderr io.Writer) (func(), error) {
	var cpuFile *os.File
	if cfg.cpuProf != "" {
		f, err := os.Create(cfg.cpuProf)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if cfg.memProf != "" {
			f, err := os.Create(cfg.memProf)
			if err != nil {
				fmt.Fprintf(stderr, "tdatpg: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "tdatpg: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

func main() {
	cfg, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(2)
	}
	os.Exit(run(cfg, os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(cfg *config, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintf(stderr, "tdatpg: %v\n", err)
		return 1
	}

	c, err := atpg.LoadBench(cfg.bench)
	if err != nil {
		return fail(err)
	}
	ses, err := atpg.New(c, cfg.engineConfig())
	if err != nil {
		return fail(err)
	}

	stopProf, err := cfg.profiling(stderr)
	if err != nil {
		return fail(err)
	}

	// The -progress ticker consumes the streaming events on a side
	// goroutine; the channel closes when Run returns, so every later
	// return path must pass through Run (or the goroutine would leak).
	ticker := make(chan struct{})
	if cfg.progress {
		events := ses.Events()
		go func() {
			defer close(ticker)
			ticked := false
			for ev := range events {
				if ev.Kind == atpg.EventProgress {
					line := fmt.Sprintf("\rtdatpg: %d/%d faults", ev.Done, ev.Total)
					if ev.Skipped > 0 {
						line += fmt.Sprintf(", %d skipped", ev.Skipped)
					}
					if ev.Stolen > 0 {
						line += fmt.Sprintf(", %d steals", ev.Stolen)
					}
					fmt.Fprint(stderr, line)
					ticked = true
				}
			}
			if ticked {
				fmt.Fprintln(stderr)
			}
		}()
	} else {
		close(ticker)
	}

	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	res, err := ses.Run(ctx)
	stopProf()
	<-ticker
	if err != nil && res == nil {
		return fail(err)
	}

	if cfg.csvOut != "" {
		if err := writeFile(cfg.csvOut, stdout, res.WriteCSV); err != nil {
			return fail(err)
		}
	}
	if cfg.jsonOut != "" {
		if err := writeFile(cfg.jsonOut, stdout, func(w io.Writer) error {
			return atpg.EncodeJSON(w, res)
		}); err != nil {
			return fail(err)
		}
	}

	fmt.Fprintln(stdout, c.Stats())
	fmt.Fprintf(stdout, "model=%s order=%s tested=%d (explicit %d) untestable=%d aborted=%d patterns=%d time=%v\n",
		res.Algebra, res.Order, res.Tested, res.Explicit, res.Untestable, res.Aborted, res.Patterns, res.Runtime)
	if res.BroadcastSkips > 0 || res.Steals > 0 {
		fmt.Fprintf(stdout, "scale-out: %d broadcast skips (%d regenerated), %d steals\n",
			res.BroadcastSkips, res.BroadcastMisses, res.Steals)
	}
	if st := res.Compaction; st != nil {
		fmt.Fprintf(stdout, "compaction: vectors %d -> %d, sequences %d -> %d (%d dropped, %d pairs spliced saving %d vectors)\n",
			st.PatternsBefore, st.PatternsAfter, st.Sequences, st.Kept, st.Dropped, st.Splices, st.SplicedFrames)
	}
	if res.ValidationFailures > 0 {
		fmt.Fprintf(stdout, "WARNING: %d sequences failed independent validation\n", res.ValidationFailures)
	}
	if cfg.verbose || cfg.dump {
		for _, r := range res.Faults {
			if !cfg.verbose && r.Seq == nil {
				continue
			}
			fmt.Fprintf(stdout, "%-24s %s\n", r.Fault, legacyLabel(r.Status))
			if cfg.dump && r.Seq != nil {
				printSeq(stdout, r.Seq)
			}
		}
	}
	if res.Err != nil {
		// The deadline (or an interrupt) truncated the run: everything
		// above reported the coherent committed prefix — bit-identical to
		// the same prefix of an unbounded run — and the distinct exit code
		// lets scripts tell "partial" from "failed".
		fmt.Fprintf(stderr, "tdatpg: run stopped early (%v): %d of %d faults classified, %d pending\n",
			res.Err, res.Classified(), len(res.Faults), res.Pending)
		return 3
	}
	return 0
}

// writeFile runs emit against the named file, or stdout for "-".
func writeFile(path string, stdout io.Writer, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// legacyLabel keeps the classic report spelling for credited faults.
func legacyLabel(s atpg.Status) string {
	if s == atpg.StatusTestedBySim {
		return "tested(sim)"
	}
	return string(s)
}

func printSeq(w io.Writer, t *atpg.Sequence) {
	for i, v := range t.Sync {
		fmt.Fprintf(w, "    sync[%d] %s (slow)\n", i, v)
	}
	fmt.Fprintf(w, "    V1      %s (slow)\n", t.V1)
	fmt.Fprintf(w, "    V2      %s (FAST)\n", t.V2)
	for i, v := range t.Prop {
		fmt.Fprintf(w, "    prop[%d] %s (slow)\n", i, v)
	}
	if t.ObservePO >= 0 {
		fmt.Fprintf(w, "    observe PO %d\n", t.ObservePO)
	}
	if t.Assumed != "" {
		fmt.Fprintf(w, "    assumed power-up state %s\n", t.Assumed)
	}
}
