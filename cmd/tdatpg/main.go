// Tdatpg runs the full non-scan gate delay fault ATPG flow on an ISCAS'89
// .bench netlist and reports the per-fault classification, optionally
// dumping the generated test sequences.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fogbuster/internal/compact"
	"fogbuster/internal/core"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/order"
	"fogbuster/internal/sim"
)

func main() {
	nonRobust := flag.Bool("nonrobust", false, "use the non-robust fault model")
	strict := flag.Bool("strict", false, "demand true synchronizing sequences")
	localBT := flag.Int("local-backtracks", 100, "TDgen backtrack limit per fault")
	seqBT := flag.Int("seq-backtracks", 100, "SEMILET backtrack limit per fault")
	dump := flag.Bool("dump", false, "print every generated test sequence")
	verbose := flag.Bool("v", false, "print the per-fault classification")
	csvOut := flag.String("csv", "", "write the per-fault results and sequences to a CSV file")
	varBudget := flag.Int("variation", 0, "timing-refined PPO handoff with this variation budget (0 = pure robust)")
	workers := flag.Int("workers", 0, "ATPG worker count (0 = all CPUs, <0 = single worker); results are identical at any count")
	orderFlag := flag.String("order", "natural", "fault-targeting order: natural, topo, scoap or adi")
	compactFlag := flag.Bool("compact", false, "compact the test set (reverse-order drop + overlap merge) after generation")
	flag.Parse()

	heur, err := order.Parse(*orderFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
		os.Exit(2)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tdatpg [flags] circuit.bench")
		flag.PrintDefaults()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
		os.Exit(1)
	}
	c, err := netlist.Parse(flag.Arg(0), string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
		os.Exit(1)
	}

	alg := logic.Robust
	if *nonRobust {
		alg = logic.NonRobust
	}
	sum := core.New(c, core.Options{
		Algebra:         alg,
		LocalBacktracks: *localBT,
		SeqBacktracks:   *seqBT,
		StrictInit:      *strict,
		VariationBudget: *varBudget,
		Workers:         *workers,
		Order:           heur,
		Compact:         *compactFlag,
	}).Run()
	if *compactFlag {
		compact.Apply(c, sum, compact.Options{Algebra: alg})
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
			os.Exit(1)
		}
		if err := sum.WriteCSV(f, c); err != nil {
			fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tdatpg: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Println(c.Stats())
	fmt.Printf("model=%s order=%s tested=%d (explicit %d) untestable=%d aborted=%d patterns=%d time=%v\n",
		sum.Algebra, sum.Order, sum.Tested, sum.Explicit, sum.Untestable, sum.Aborted, sum.Patterns, sum.Runtime)
	if st := sum.Compaction; st != nil {
		fmt.Printf("compaction: vectors %d -> %d, sequences %d -> %d (%d dropped, %d pairs spliced saving %d vectors)\n",
			st.PatternsBefore, st.PatternsAfter, st.Sequences, st.Kept, st.Dropped, st.Splices, st.SplicedFrames)
	}
	if sum.ValidationFailures > 0 {
		fmt.Printf("WARNING: %d sequences failed independent validation\n", sum.ValidationFailures)
	}
	if *verbose || *dump {
		for _, r := range sum.Results {
			if !*verbose && r.Seq == nil {
				continue
			}
			fmt.Printf("%-24s %s\n", r.Fault.Name(c), r.Status)
			if *dump && r.Seq != nil {
				printSeq(r.Seq)
			}
		}
	}
}

func printSeq(t *core.TestSequence) {
	for i, v := range t.Sync {
		fmt.Printf("    sync[%d] %s (slow)\n", i, vec(v))
	}
	fmt.Printf("    V1      %s (slow)\n", vec(t.V1))
	fmt.Printf("    V2      %s (FAST)\n", vec(t.V2))
	for i, v := range t.Prop {
		fmt.Printf("    prop[%d] %s (slow)\n", i, vec(v))
	}
	if t.ObservePO >= 0 {
		fmt.Printf("    observe PO %d\n", t.ObservePO)
	}
	if t.Assumed != nil && sim.KnownCount(t.Assumed) > 0 {
		fmt.Printf("    assumed power-up state %s\n", vec(t.Assumed))
	}
}

func vec(v []sim.V3) string {
	var sb strings.Builder
	for _, b := range v {
		sb.WriteString(b.String())
	}
	return sb.String()
}
