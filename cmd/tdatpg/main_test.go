package main

import (
	"bytes"
	"strings"
	"testing"

	"fogbuster/internal/order"
)

// TestSeedFlagReachesEngine pins the -seed satellite fix: the flag value
// must land in core.Options.Seed AND in the compaction options, because
// the X-fill streams, the ADI ordering campaign and the splice fills are
// all derived from it.
func TestSeedFlagReachesEngine(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-seed", "12345", "-order", "adi", "-compact", "circuit.bench"}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	opts := cfg.engineOptions()
	if opts.Seed != 12345 {
		t.Fatalf("engine Seed = %d, want 12345", opts.Seed)
	}
	if co := cfg.compactOptions(); co.Seed != 12345 {
		t.Fatalf("compaction Seed = %d, want 12345", co.Seed)
	}
	if opts.Order != order.ADI {
		t.Fatalf("engine Order = %q, want adi", opts.Order)
	}
	if !opts.Compact {
		t.Fatal("engine Compact not set")
	}
	if cfg.bench != "circuit.bench" {
		t.Fatalf("bench arg = %q", cfg.bench)
	}
}

// TestFullEvalFlagReachesEngine pins the -fulleval oracle knob: it must
// land in core.Options.FullEval AND in the compaction options, so the
// splice re-confirmations run on the same path as the engine. The
// profiling flags must survive parsing too.
func TestFullEvalFlagReachesEngine(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-fulleval", "-compact", "-cpuprofile", "cpu.out", "-memprofile", "mem.out", "circuit.bench"}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	if !cfg.engineOptions().FullEval {
		t.Fatal("engine FullEval not set")
	}
	if !cfg.compactOptions().FullEval {
		t.Fatal("compaction FullEval not set")
	}
	if cfg.cpuProf != "cpu.out" || cfg.memProf != "mem.out" {
		t.Fatalf("profile paths lost: cpu=%q mem=%q", cfg.cpuProf, cfg.memProf)
	}
	if cfg2, err := parseArgs([]string{"circuit.bench"}, &stderr); err != nil || cfg2.engineOptions().FullEval {
		t.Fatal("FullEval must default to off (event-driven kernels)")
	}
}

// TestDefaultSeedIsZero: without -seed the engine keeps the fixed
// default seed, preserving pre-flag reproducibility.
func TestDefaultSeedIsZero(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"circuit.bench"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.engineOptions().Seed; got != 0 {
		t.Fatalf("default Seed = %d, want 0", got)
	}
}

// TestParseArgsRejectsBadUsage: unknown orders and missing netlist
// arguments are reported, never silently defaulted.
func TestParseArgsRejectsBadUsage(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseArgs([]string{"-order", "bogus", "circuit.bench"}, &stderr); err == nil {
		t.Fatal("unknown order accepted")
	}
	if !strings.Contains(stderr.String(), "bogus") {
		t.Fatalf("order error not reported: %q", stderr.String())
	}
	stderr.Reset()
	if _, err := parseArgs([]string{"-seed", "1"}, &stderr); err == nil {
		t.Fatal("missing netlist argument accepted")
	}
	if !strings.Contains(stderr.String(), "usage") {
		t.Fatalf("usage not printed: %q", stderr.String())
	}
}
