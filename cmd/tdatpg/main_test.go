package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fogbuster/pkg/atpg"
)

// andBench is a minimal combinational netlist for end-to-end cmd tests.
const andBench = `# and2
INPUT(A)
INPUT(B)
OUTPUT(C)
C = AND(A, B)
`

// writeBench drops the test netlist into a temp dir.
func writeBench(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "and2.bench")
	if err := os.WriteFile(path, []byte(andBench), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSeedFlagReachesEngine pins the -seed satellite fix: the flag value
// must land in the public Config (the session derives the X-fill
// streams, the ADI ordering campaign and the splice fills from it).
func TestSeedFlagReachesEngine(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-seed", "12345", "-order", "adi", "-compact", "circuit.bench"}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	ec := cfg.engineConfig()
	if ec.Seed != 12345 {
		t.Fatalf("config Seed = %d, want 12345", ec.Seed)
	}
	if ec.Order != atpg.OrderADI {
		t.Fatalf("config Order = %q, want adi", ec.Order)
	}
	if !ec.Compact {
		t.Fatal("config Compact not set")
	}
	if cfg.bench != "circuit.bench" {
		t.Fatalf("bench arg = %q", cfg.bench)
	}
}

// TestFullEvalFlagReachesEngine pins the -fulleval oracle knob and that
// the profiling flags survive parsing.
func TestFullEvalFlagReachesEngine(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-fulleval", "-compact", "-cpuprofile", "cpu.out", "-memprofile", "mem.out", "circuit.bench"}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	if !cfg.engineConfig().FullEval {
		t.Fatal("config FullEval not set")
	}
	if cfg.cpuProf != "cpu.out" || cfg.memProf != "mem.out" {
		t.Fatalf("profile paths lost: cpu=%q mem=%q", cfg.cpuProf, cfg.memProf)
	}
	if cfg2, err := parseArgs([]string{"circuit.bench"}, &stderr); err != nil || cfg2.engineConfig().FullEval {
		t.Fatal("FullEval must default to off (event-driven kernels)")
	}
}

// TestDefaultSeedIsZero: without -seed the engine keeps the fixed
// default seed, preserving pre-flag reproducibility.
func TestDefaultSeedIsZero(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"circuit.bench"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.engineConfig().Seed; got != 0 {
		t.Fatalf("default Seed = %d, want 0", got)
	}
}

// TestParseArgsRejectsBadUsage: unknown orders, missing netlist
// arguments and conflicting output selectors are reported, never
// silently defaulted.
func TestParseArgsRejectsBadUsage(t *testing.T) {
	var stderr bytes.Buffer
	if _, err := parseArgs([]string{"-order", "bogus", "circuit.bench"}, &stderr); err == nil {
		t.Fatal("unknown order accepted")
	}
	if !strings.Contains(stderr.String(), "bogus") {
		t.Fatalf("order error not reported: %q", stderr.String())
	}
	stderr.Reset()
	if _, err := parseArgs([]string{"-seed", "1"}, &stderr); err == nil {
		t.Fatal("missing netlist argument accepted")
	}
	if !strings.Contains(stderr.String(), "usage") {
		t.Fatalf("usage not printed: %q", stderr.String())
	}
	stderr.Reset()
	if _, err := parseArgs([]string{"-json", "a.json", "-csv", "a.csv", "circuit.bench"}, &stderr); err == nil {
		t.Fatal("-json with -csv accepted")
	}
	if !strings.Contains(stderr.String(), "exclusive") {
		t.Fatalf("exclusivity not reported: %q", stderr.String())
	}
}

// TestJSONFlagReachesEncoder pins the -json satellite end to end: the
// flag must route the run's Result into the canonical JSON encoder, and
// the emitted document must decode back into an atpg.Result that
// classifies the complete fault universe.
func TestJSONFlagReachesEncoder(t *testing.T) {
	bench := writeBench(t)
	out := filepath.Join(t.TempDir(), "result.json")
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-json", out, bench}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	var stdout bytes.Buffer
	if code := run(cfg, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res atpg.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("emitted JSON does not decode: %v", err)
	}
	if len(res.Faults) == 0 || res.Classified() != len(res.Faults) {
		t.Fatalf("JSON result incoherent: %d faults, %d classified", len(res.Faults), res.Classified())
	}
	if res.Pending != 0 || res.Err != nil {
		t.Fatalf("uncancelled run must be complete: pending=%d err=%v", res.Pending, res.Err)
	}
}

// TestJSONToStdout: "-json -" streams the document to stdout, in front
// of the human summary.
func TestJSONToStdout(t *testing.T) {
	bench := writeBench(t)
	var stdout, stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-json", "-", bench}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code := run(cfg, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout.Bytes()))
	var res atpg.Result
	if err := dec.Decode(&res); err != nil {
		t.Fatalf("stdout does not start with the JSON document: %v", err)
	}
}

// TestProgressTicker: -progress renders a done/total ticker on stderr.
func TestProgressTicker(t *testing.T) {
	bench := writeBench(t)
	var stdout, stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-progress", bench}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code := run(cfg, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "faults") || !strings.Contains(stderr.String(), "/") {
		t.Fatalf("no ticker on stderr: %q", stderr.String())
	}
}

// TestTimeoutFlagYieldsPartialResult pins the -timeout satellite: an
// already-expired deadline still writes the JSON document — a coherent
// committed-prefix partial carrying the deadline sentinel — and the run
// exits with the distinct "partial" code 3.
func TestTimeoutFlagYieldsPartialResult(t *testing.T) {
	bench := writeBench(t)
	out := filepath.Join(t.TempDir(), "partial.json")
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"-timeout", "1ns", "-json", out, bench}, &stderr)
	if err != nil {
		t.Fatalf("parseArgs: %v (stderr: %s)", err, stderr.String())
	}
	var stdout bytes.Buffer
	if code := run(cfg, &stdout, &stderr); code != 3 {
		t.Fatalf("run = %d, want 3 (partial); stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res atpg.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("partial JSON does not decode: %v", err)
	}
	if res.Err != context.DeadlineExceeded {
		t.Fatalf("partial result Err = %v, want context.DeadlineExceeded", res.Err)
	}
	if res.Classified()+res.Pending != len(res.Faults) {
		t.Fatalf("partial incoherent: %d classified + %d pending != %d faults",
			res.Classified(), res.Pending, len(res.Faults))
	}
	if !strings.Contains(stderr.String(), "stopped early") {
		t.Fatalf("no partial note on stderr: %q", stderr.String())
	}
}

// TestTimeoutFlagDefaultsOff: without -timeout the run is unbounded and
// completes with exit 0.
func TestTimeoutFlagDefaultsOff(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseArgs([]string{"circuit.bench"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.timeout != 0 {
		t.Fatalf("default timeout = %v, want 0", cfg.timeout)
	}
}
