package main

import (
	"strings"
	"testing"
)

// TestParse feeds a verbatim `go test -bench -benchmem` transcript and
// checks names, iteration counts, standard and custom metrics.
func TestParse(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: fogbuster
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCreditSweep/s386/scalar         	    9951	    105349 ns/op	         4.000 detected	   31856 B/op	      47 allocs/op
BenchmarkConfirm/s1238/event             	 4395884	       280.6 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	fogbuster	27.314s
`
	recs, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	r := recs[0]
	if r.Name != "BenchmarkCreditSweep/s386/scalar" || r.Runs != 9951 {
		t.Fatalf("record 0 = %+v", r)
	}
	for unit, want := range map[string]float64{"ns/op": 105349, "detected": 4, "B/op": 31856, "allocs/op": 47} {
		if got := r.Metrics[unit]; got != want {
			t.Errorf("metric %s = %v, want %v", unit, got, want)
		}
	}
	if recs[1].Metrics["ns/op"] != 280.6 {
		t.Errorf("fractional ns/op lost: %v", recs[1].Metrics["ns/op"])
	}
}

// TestParseEmpty: no benchmark lines yields an empty (not null) array.
func TestParseEmpty(t *testing.T) {
	recs, err := parse(strings.NewReader("PASS\n"))
	if err != nil || recs == nil || len(recs) != 0 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
}
