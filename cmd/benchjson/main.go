// Benchjson converts `go test -bench` text output (stdin) into one JSON
// array of benchmark records (stdout), the machine-readable form CI
// uploads as the BENCH.json artifact so the performance trajectory
// accumulates commit over commit. Non-benchmark lines (goos/goarch/pkg,
// PASS/ok) are skipped; every `value unit` pair after the iteration
// count — ns/op, B/op, allocs/op and custom ReportMetric units alike —
// lands in the record's metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	recs, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans the stream for benchmark result lines. The format is
// stable since Go 1.0: name, iteration count, then value/unit pairs.
func parse(r io.Reader) ([]Record, error) {
	recs := []Record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX --- FAIL" shapes
		}
		rec := Record{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad metric value %q", fields[0], fields[i])
			}
			rec.Metrics[fields[i+1]] = v
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
