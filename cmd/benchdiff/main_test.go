package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a BENCH.json file into the test's temp dir.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldJSON = `[
 {"name":"BenchmarkA","runs":10,"metrics":{"ns/op":1000,"B/op":64}},
 {"name":"BenchmarkB","runs":10,"metrics":{"ns/op":2000}},
 {"name":"BenchmarkGone","runs":10,"metrics":{"ns/op":5}}
]`

// TestBenchdiffReport pins the comparison semantics: common benchmarks
// get a delta, benchmarks only in the new file are labeled new and
// never gate, and a baseline benchmark missing from the new file is
// labeled gone AND fails the run with a clear message — even without
// -max-regress.
func TestBenchdiffReport(t *testing.T) {
	dir := t.TempDir()
	o := write(t, dir, "old.json", oldJSON)
	n := write(t, dir, "new.json", `[
 {"name":"BenchmarkA","runs":10,"metrics":{"ns/op":1100}},
 {"name":"BenchmarkB","runs":10,"metrics":{"ns/op":1500}},
 {"name":"BenchmarkNew","runs":10,"metrics":{"ns/op":7}}
]`)
	var out, errOut strings.Builder
	if code := run([]string{o, n}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 for a disappeared baseline; stderr: %s", code, errOut.String())
	}
	wants := []string{"+10.0%", "-25.0%", "new", "gone",
		"benchdiff: 2 compared, 1 new, 1 gone; worst ns/op delta +10.0% (BenchmarkA)"}
	for _, want := range wants {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "benchmark disappeared: BenchmarkGone") {
		t.Errorf("stderr does not name the disappeared benchmark: %s", errOut.String())
	}

	// With the baseline set intact the same comparison reports cleanly.
	intact := write(t, dir, "intact.json", `[
 {"name":"BenchmarkA","runs":10,"metrics":{"ns/op":1100}},
 {"name":"BenchmarkB","runs":10,"metrics":{"ns/op":1500}},
 {"name":"BenchmarkGone","runs":10,"metrics":{"ns/op":5}},
 {"name":"BenchmarkNew","runs":10,"metrics":{"ns/op":7}}
]`)
	out.Reset()
	errOut.Reset()
	if code := run([]string{o, intact}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d with the baseline intact; stderr: %s", code, errOut.String())
	}
}

// TestBenchdiffDisappeared is the table test for the disappearance
// semantics: what counts as a lost baseline, and what does not.
func TestBenchdiffDisappeared(t *testing.T) {
	for _, tc := range []struct {
		name     string
		old, cur string
		args     []string
		exit     int
		stderr   string
	}{
		{
			name: "record dropped entirely",
			old:  `[{"name":"BenchmarkX","runs":1,"metrics":{"ns/op":10}}]`,
			cur:  `[]`,
			exit: 1, stderr: "benchmark disappeared: BenchmarkX",
		},
		{
			name: "metric dropped from a surviving record",
			old:  `[{"name":"BenchmarkX","runs":1,"metrics":{"ns/op":10,"B/op":4}}]`,
			cur:  `[{"name":"BenchmarkX","runs":1,"metrics":{"B/op":4}}]`,
			exit: 1, stderr: "benchmark disappeared: BenchmarkX",
		},
		{
			name: "gates even alongside -max-regress",
			old:  `[{"name":"BenchmarkX","runs":1,"metrics":{"ns/op":10}},{"name":"BenchmarkY","runs":1,"metrics":{"ns/op":10}}]`,
			cur:  `[{"name":"BenchmarkY","runs":1,"metrics":{"ns/op":10}}]`,
			args: []string{"-max-regress", "50"},
			exit: 1, stderr: "benchmark disappeared: BenchmarkX",
		},
		{
			name: "baseline without the metric never pinned it",
			old:  `[{"name":"BenchmarkX","runs":1,"metrics":{"B/op":4}}]`,
			cur:  `[]`,
			exit: 0,
		},
		{
			name: "new-only benchmarks do not gate",
			old:  `[{"name":"BenchmarkX","runs":1,"metrics":{"ns/op":10}}]`,
			cur:  `[{"name":"BenchmarkX","runs":1,"metrics":{"ns/op":10}},{"name":"BenchmarkNew","runs":1,"metrics":{"ns/op":3}}]`,
			exit: 0,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			o := write(t, dir, "old.json", tc.old)
			n := write(t, dir, "new.json", tc.cur)
			var out, errOut strings.Builder
			code := run(append(tc.args, o, n), &out, &errOut)
			if code != tc.exit {
				t.Fatalf("exit %d, want %d; stderr: %s", code, tc.exit, errOut.String())
			}
			if tc.stderr != "" && !strings.Contains(errOut.String(), tc.stderr) {
				t.Errorf("stderr %q does not contain %q", errOut.String(), tc.stderr)
			}
		})
	}
}

// TestBenchdiffGate pins the CI contract: a regression beyond the limit
// exits 1 and names the benchmark; within the limit exits 0.
func TestBenchdiffGate(t *testing.T) {
	dir := t.TempDir()
	o := write(t, dir, "old.json", oldJSON)
	n := write(t, dir, "new.json", `[
 {"name":"BenchmarkA","runs":10,"metrics":{"ns/op":1600}},
 {"name":"BenchmarkB","runs":10,"metrics":{"ns/op":2010}},
 {"name":"BenchmarkGone","runs":10,"metrics":{"ns/op":5}}
]`)
	var out, errOut strings.Builder
	if code := run([]string{"-max-regress", "50", o, n}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 for a 60%% regression", code)
	}
	if !strings.Contains(errOut.String(), "BenchmarkA") {
		t.Errorf("failure message does not name the benchmark: %s", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-max-regress", "75", o, n}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0 within the limit; stderr: %s", code, errOut.String())
	}
	// The summary trailer prints even on a clean pass, so a green CI log
	// still records the drift and how close it came to the limit.
	if !strings.Contains(out.String(), "worst ns/op delta +60.0% (BenchmarkA), limit +75.0%") {
		t.Errorf("clean run missing summary trailer:\n%s", out.String())
	}
}

// TestBenchdiffUsage pins the error paths: wrong arity and unreadable
// files exit 2.
func TestBenchdiffUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"only-one.json"}, &out, &errOut); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errOut); code != 2 {
		t.Errorf("missing files: exit %d, want 2", code)
	}
}
