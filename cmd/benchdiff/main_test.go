package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a BENCH.json file into the test's temp dir.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldJSON = `[
 {"name":"BenchmarkA","runs":10,"metrics":{"ns/op":1000,"B/op":64}},
 {"name":"BenchmarkB","runs":10,"metrics":{"ns/op":2000}},
 {"name":"BenchmarkGone","runs":10,"metrics":{"ns/op":5}}
]`

// TestBenchdiffReport pins the comparison semantics: common benchmarks
// get a delta, one-sided benchmarks are labeled new/gone and never gate.
func TestBenchdiffReport(t *testing.T) {
	dir := t.TempDir()
	o := write(t, dir, "old.json", oldJSON)
	n := write(t, dir, "new.json", `[
 {"name":"BenchmarkA","runs":10,"metrics":{"ns/op":1100}},
 {"name":"BenchmarkB","runs":10,"metrics":{"ns/op":1500}},
 {"name":"BenchmarkNew","runs":10,"metrics":{"ns/op":7}}
]`)
	var out, errOut strings.Builder
	if code := run([]string{o, n}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d without -max-regress; stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"+10.0%", "-25.0%", "new", "gone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestBenchdiffGate pins the CI contract: a regression beyond the limit
// exits 1 and names the benchmark; within the limit exits 0.
func TestBenchdiffGate(t *testing.T) {
	dir := t.TempDir()
	o := write(t, dir, "old.json", oldJSON)
	n := write(t, dir, "new.json", `[
 {"name":"BenchmarkA","runs":10,"metrics":{"ns/op":1600}},
 {"name":"BenchmarkB","runs":10,"metrics":{"ns/op":2010}}
]`)
	var out, errOut strings.Builder
	if code := run([]string{"-max-regress", "50", o, n}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 for a 60%% regression", code)
	}
	if !strings.Contains(errOut.String(), "BenchmarkA") {
		t.Errorf("failure message does not name the benchmark: %s", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-max-regress", "75", o, n}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0 within the limit; stderr: %s", code, errOut.String())
	}
}

// TestBenchdiffUsage pins the error paths: wrong arity and unreadable
// files exit 2.
func TestBenchdiffUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"only-one.json"}, &out, &errOut); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errOut); code != 2 {
		t.Errorf("missing files: exit %d, want 2", code)
	}
}
