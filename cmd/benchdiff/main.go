// Benchdiff compares two BENCH.json files (the benchjson output CI
// uploads as an artifact) benchmark by benchmark and prints one line per
// common benchmark with the old and new ns/op and the relative change.
// With -max-regress it exits non-zero when any common benchmark's ns/op
// regressed by more than the given percentage — the CI gate that keeps a
// PR from silently giving back the optimizations the trajectory in
// EXPERIMENTS.md records. Benchmarks that exist only in the new file are
// listed but never gate (the set grows PR over PR); a baseline benchmark
// missing from the new file always fails, with or without -max-regress —
// a deleted or renamed benchmark silently un-pins its baseline, which is
// exactly the regression the gate exists to catch.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// Record mirrors benchjson's output shape.
type Record struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// errUsage marks a command-line error whose message was already printed.
var errUsage = errors.New("usage error")

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxRegress := fs.Float64("max-regress", 0, "fail (exit 1) when any common benchmark's ns/op regresses by more than this percentage (0 = report only)")
	metric := fs.String("metric", "ns/op", "metric to compare")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	old, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	report, failures := diff(old, cur, *metric, *maxRegress)
	fmt.Fprint(stdout, report)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(stderr, "benchdiff: %s\n", f)
		}
		return 1
	}
	return 0
}

// load reads one BENCH.json file into a name-indexed map; duplicate
// names (e.g. -count>1 runs) keep the first record, matching the
// baseline-pinning intent.
func load(path string) (map[string]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]Record, len(recs))
	for _, r := range recs {
		if _, dup := out[r.Name]; !dup {
			out[r.Name] = r
		}
	}
	return out, nil
}

// diff renders the comparison table and returns the failure messages:
// regressions exceeding maxRegress percent (none when maxRegress is 0)
// and baseline benchmarks that disappeared from the new file (always).
// The table ends with a one-line summary (counts and the worst delta) so
// a green CI log still records the perf trajectory at a glance.
func diff(old, cur map[string]Record, metric string, maxRegress float64) (string, []string) {
	names := make([]string, 0, len(old)+len(cur))
	for n := range old {
		names = append(names, n)
	}
	for n := range cur {
		if _, ok := old[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	out := fmt.Sprintf("%-60s %14s %14s %8s\n", "benchmark", "old "+metric, "new "+metric, "delta")
	var failures []string
	var compared, added, gone int
	worst, worstName := 0.0, ""
	for _, n := range names {
		o, haveOld := old[n]
		c, haveCur := cur[n]
		ov, okOld := o.Metrics[metric]
		cv, okCur := c.Metrics[metric]
		switch {
		case !haveOld || !okOld:
			if okCur {
				out += fmt.Sprintf("%-60s %14s %14.0f %8s\n", n, "-", cv, "new")
				added++
			}
		case !haveCur || !okCur:
			out += fmt.Sprintf("%-60s %14.0f %14s %8s\n", n, ov, "-", "gone")
			gone++
			failures = append(failures,
				fmt.Sprintf("benchmark disappeared: %s has no %s in the new file (baseline %.0f); deleted or renamed benchmarks un-pin their baseline and must be addressed explicitly", n, metric, ov))
		default:
			delta := 0.0
			if ov != 0 {
				delta = 100 * (cv - ov) / ov
			}
			out += fmt.Sprintf("%-60s %14.0f %14.0f %+7.1f%%\n", n, ov, cv, delta)
			if compared == 0 || delta > worst {
				worst, worstName = delta, n
			}
			compared++
			if maxRegress > 0 && delta > maxRegress {
				failures = append(failures,
					fmt.Sprintf("REGRESSION %s: %s %+.1f%% (limit %+.1f%%)", n, metric, delta, maxRegress))
			}
		}
	}
	summary := fmt.Sprintf("benchdiff: %d compared, %d new, %d gone", compared, added, gone)
	if worstName != "" {
		summary += fmt.Sprintf("; worst %s delta %+.1f%% (%s)", metric, worst, worstName)
		if maxRegress > 0 {
			summary += fmt.Sprintf(", limit %+.1f%%", maxRegress)
		}
	}
	out += summary + "\n"
	return out, failures
}
