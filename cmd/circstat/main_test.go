package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// twoGateBench is a minimal netlist with a fanout stem so the file-mode
// report exercises branches and multi-gate cones.
const twoGateBench = `# two
INPUT(A)
INPUT(B)
OUTPUT(X)
OUTPUT(Y)
N = NAND(A, B)
X = AND(N, A)
Y = OR(N, B)
`

// TestFileMode runs circstat on a .bench file and checks the classic
// stats line plus the topology report: the level histogram and the
// fanout-cone distribution.
func TestFileMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "two.bench")
	if err := os.WriteFile(path, []byte(twoGateBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"gates=3", "gates per level:", "fanout cones (gates):"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTableMode runs the no-argument benchmark table, filtered to the
// exact s27 profile so the test stays cheap, and checks the cone
// columns are present.
func TestTableMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-circuit", "s27"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "cmed%") || !strings.Contains(out, "s27") {
		t.Fatalf("table output malformed:\n%s", out)
	}
	if !strings.Contains(out, "(exact)") {
		t.Fatalf("s27 row should be marked exact:\n%s", out)
	}
}

// TestBadFile: a missing file fails with a nonzero exit code and a
// message on stderr.
func TestBadFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"/nonexistent/x.bench"}, &stdout, &stderr); code == 0 {
		t.Fatal("missing file accepted")
	}
	if !strings.Contains(stderr.String(), "circstat:") {
		t.Fatalf("error not reported: %q", stderr.String())
	}
}

// TestUnknownCircuit: a -circuit typo must not pass as an empty table.
func TestUnknownCircuit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-circuit", "s127"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown benchmark name accepted")
	}
	if !strings.Contains(stderr.String(), "s127") {
		t.Fatalf("name not reported: %q", stderr.String())
	}
}
