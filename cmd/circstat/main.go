// Circstat prints size statistics and the delay fault universe for
// circuits: either .bench files given as arguments, or (with no
// arguments) the full Table 3 benchmark set.
package main

import (
	"flag"
	"fmt"
	"os"

	"fogbuster/internal/bench"
	"fogbuster/internal/netlist"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: circstat [file.bench ...]\n")
		fmt.Fprintf(os.Stderr, "With no arguments, prints the Table 3 benchmark set.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Printf("%-8s %5s %5s %5s %7s %7s %9s %7s %7s %7s\n",
			"circuit", "pi", "po", "dff", "gates", "stems", "branches", "lines", "faults", "depth")
		for _, p := range bench.Profiles {
			c := p.Circuit()
			s := c.Stats()
			note := " (synthetic)"
			if p.Exact {
				note = " (exact)"
			}
			fmt.Printf("%-8s %5d %5d %5d %7d %7d %9d %7d %7d %7d%s\n",
				s.Name, s.PIs, s.POs, s.DFFs, s.Gates, s.Stems, s.Branches, s.Lines, 2*s.Lines, s.MaxLevel, note)
		}
		return
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "circstat: %v\n", err)
			os.Exit(1)
		}
		c, err := netlist.Parse(path, string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "circstat: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(c.Stats())
	}
}
