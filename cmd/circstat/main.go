// Circstat prints size statistics and the delay fault universe for
// circuits: either .bench files given as arguments, or (with no
// arguments) the full Table 3 benchmark set (-large appends the
// industrial s15850/s38584-class profiles). Each table row also shows
// the cone-set memory footprint — dense all-stems matrix bytes next to
// what the auto policy actually allocates — and file mode additionally
// reports the per-level gate histogram and the fanout-cone size
// distribution — the numbers that predict how much the event-driven
// selective-trace kernel saves over full levelized simulation (small
// median cone = large win). It consumes the circuit model exclusively
// through the public fogbuster/pkg/atpg API.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fogbuster/pkg/atpg"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("circstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("circuit", "", "table mode: print only the named benchmark (e.g. s27)")
	large := fs.Bool("large", false, "table mode: include the industrial-scale benchmarks (s15850, s38584)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: circstat [file.bench ...]\n")
		fmt.Fprintf(stderr, "With no arguments, prints the Table 3 benchmark set.\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if fs.NArg() == 0 {
		fmt.Fprintf(stdout, "%-8s %5s %5s %5s %7s %7s %9s %7s %7s %7s %6s %6s %6s %10s %10s\n",
			"circuit", "pi", "po", "dff", "gates", "stems", "branches", "lines", "faults", "depth",
			"cmin%", "cmed%", "cmax%", "cdense", "cactual")
		set := atpg.Benchmarks()
		if *large {
			set = append(set, atpg.LargeBenchmarks()...)
		}
		matched := 0
		for _, b := range set {
			if *only != "" && b.Name != *only {
				continue
			}
			matched++
			c, err := atpg.Benchmark(b.Name)
			if err != nil {
				fmt.Fprintf(stderr, "circstat: %v\n", err)
				return 1
			}
			s := c.Stats()
			note := " (synthetic)"
			if b.Exact {
				note = " (exact)"
			}
			lo, med, hi := c.ConeSizes()
			dense, actual, err := c.ConeMemory("auto")
			if err != nil {
				fmt.Fprintf(stderr, "circstat: %v\n", err)
				return 1
			}
			g := float64(s.Gates)
			fmt.Fprintf(stdout, "%-8s %5d %5d %5d %7d %7d %9d %7d %7d %7d %5.1f%% %5.1f%% %5.1f%% %10d %10d%s\n",
				s.Name, s.PIs, s.POs, s.DFFs, s.Gates, s.Stems, s.Branches, s.Lines, s.Faults, s.MaxLevel,
				100*float64(lo)/g, 100*float64(med)/g, 100*float64(hi)/g, dense, actual, note)
		}
		if matched == 0 {
			fmt.Fprintf(stderr, "circstat: no benchmark named %q (see the table for valid names)\n", *only)
			return 1
		}
		return 0
	}
	for _, path := range fs.Args() {
		c, err := atpg.LoadBench(path)
		if err != nil {
			fmt.Fprintf(stderr, "circstat: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, c.Stats())
		topoReport(stdout, c)
	}
	return 0
}

// topoReport prints the per-level gate histogram and the fanout-cone
// size distribution of the circuit.
func topoReport(w io.Writer, c *atpg.Circuit) {
	fmt.Fprintf(w, "  gates per level:")
	for l, n := range c.GatesPerLevel() {
		fmt.Fprintf(w, " %d:%d", l+1, n)
	}
	fmt.Fprintln(w)
	lo, med, hi := c.ConeSizes()
	g := c.Stats().Gates
	fmt.Fprintf(w, "  fanout cones (gates): min %d median %d max %d of %d (%.1f%% / %.1f%% / %.1f%%)\n",
		lo, med, hi, g,
		100*float64(lo)/float64(g), 100*float64(med)/float64(g), 100*float64(hi)/float64(g))
	if dense, actual, err := c.ConeMemory("auto"); err == nil {
		fmt.Fprintf(w, "  cone-set memory: dense matrix %d bytes, auto policy %d bytes (%.1f%%)\n",
			dense, actual, 100*float64(actual)/float64(dense))
	}
}
