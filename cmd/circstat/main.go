// Circstat prints size statistics and the delay fault universe for
// circuits: either .bench files given as arguments, or (with no
// arguments) the full Table 3 benchmark set. File mode additionally
// reports the per-level gate histogram and the fanout-cone size
// distribution from the CSR topology — the numbers that predict how much
// the event-driven selective-trace kernel saves over full levelized
// simulation (small median cone = large win).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"fogbuster/internal/bench"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("circstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("circuit", "", "table mode: print only the named benchmark (e.g. s27)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: circstat [file.bench ...]\n")
		fmt.Fprintf(stderr, "With no arguments, prints the Table 3 benchmark set.\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if fs.NArg() == 0 {
		fmt.Fprintf(stdout, "%-8s %5s %5s %5s %7s %7s %9s %7s %7s %7s %6s %6s %6s\n",
			"circuit", "pi", "po", "dff", "gates", "stems", "branches", "lines", "faults", "depth",
			"cmin%", "cmed%", "cmax%")
		matched := 0
		for _, p := range bench.Profiles {
			if *only != "" && p.Name != *only {
				continue
			}
			matched++
			c := p.Circuit()
			s := c.Stats()
			note := " (synthetic)"
			if p.Exact {
				note = " (exact)"
			}
			lo, med, hi := coneDistribution(sim.NewTopology(c))
			g := float64(s.Gates)
			fmt.Fprintf(stdout, "%-8s %5d %5d %5d %7d %7d %9d %7d %7d %7d %5.1f%% %5.1f%% %5.1f%%%s\n",
				s.Name, s.PIs, s.POs, s.DFFs, s.Gates, s.Stems, s.Branches, s.Lines, 2*s.Lines, s.MaxLevel,
				100*float64(lo)/g, 100*float64(med)/g, 100*float64(hi)/g, note)
		}
		if matched == 0 {
			fmt.Fprintf(stderr, "circstat: no benchmark named %q (see the table for valid names)\n", *only)
			return 1
		}
		return 0
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "circstat: %v\n", err)
			return 1
		}
		c, err := netlist.Parse(path, string(data))
		if err != nil {
			fmt.Fprintf(stderr, "circstat: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, c.Stats())
		topoReport(stdout, c)
	}
	return 0
}

// topoReport prints the per-level gate histogram and the fanout-cone
// size distribution of the circuit's CSR topology.
func topoReport(w io.Writer, c *netlist.Circuit) {
	t := sim.NewTopology(c)
	fmt.Fprintf(w, "  gates per level:")
	for l := int32(1); l <= t.MaxLevel; l++ {
		fmt.Fprintf(w, " %d:%d", l, t.LevelOff[l+1]-t.LevelOff[l])
	}
	fmt.Fprintln(w)
	lo, med, hi := coneDistribution(t)
	g := c.NumGates()
	fmt.Fprintf(w, "  fanout cones (gates): min %d median %d max %d of %d (%.1f%% / %.1f%% / %.1f%%)\n",
		lo, med, hi, g,
		100*float64(lo)/float64(g), 100*float64(med)/float64(g), 100*float64(hi)/float64(g))
}

// coneDistribution returns the min, median and max fanout-cone gate
// count over every stem of the circuit.
func coneDistribution(t *sim.Topology) (lo, med, hi int) {
	sizes := make([]int, t.NumNodes())
	for i := range sizes {
		sizes[i] = t.ConeGates(netlist.NodeID(i))
	}
	sort.Ints(sizes)
	return sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]
}
