module fogbuster

go 1.24
