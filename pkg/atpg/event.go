package atpg

import (
	"fogbuster/internal/core"
	"fogbuster/internal/netlist"
)

// EventKind discriminates the streaming notifications of a run. The
// string values are stable.
type EventKind string

const (
	// EventFaultClassified reports the commit of an explicitly targeted
	// fault's final status (tested, untestable or aborted).
	EventFaultClassified EventKind = "fault_classified"
	// EventSequenceGenerated reports the commit of an explicit test
	// sequence; it follows the target's EventFaultClassified.
	EventSequenceGenerated EventKind = "sequence_generated"
	// EventCreditApplied reports a fault classified tested_by_sim
	// because the just-committed sequence (By) detects it.
	EventCreditApplied EventKind = "credit_applied"
	// EventProgress reports one targeting position committed: Done
	// positions of Total are final.
	EventProgress EventKind = "progress"
)

// Event is one ordered notification from a running session, delivered
// straight off the engine's merge loop in commit (targeting) order. The
// stream is a deterministic function of the circuit and the Config —
// independent of worker count and scheduling — except that a cancelled
// run truncates it.
type Event struct {
	Kind EventKind `json:"kind"`
	// Fault names the fault the event concerns (classification, sequence
	// and credit events).
	Fault string `json:"fault,omitempty"`
	// Status is the committed classification (EventFaultClassified,
	// EventCreditApplied).
	Status Status `json:"status,omitempty"`
	// Seq is the committed sequence (EventSequenceGenerated only).
	Seq *Sequence `json:"seq,omitempty"`
	// By names the explicitly targeted fault whose sequence produced the
	// credit (EventCreditApplied only).
	By string `json:"by,omitempty"`
	// Done and Total carry the commit progress (EventProgress only).
	// Total is the number of targeting positions the run will process —
	// the whole fault universe, or Config.MaxTargets on a budgeted run.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Skipped and Stolen carry the scale-out scheduling counters at this
	// commit (EventProgress only): net advisory broadcast skips and range
	// steals. They are the stream's only scheduling-dependent values and
	// stay zero unless Config.Broadcast / Config.Steal is set, so the
	// stream remains fully deterministic with the knobs off.
	Skipped int `json:"skipped,omitempty"`
	Stolen  int `json:"stolen,omitempty"`
}

// eventOf converts an engine event, resolving names against the circuit.
func eventOf(c *netlist.Circuit, ev core.Event) Event {
	switch ev.Kind {
	case core.EventProgress:
		return Event{Kind: EventProgress, Done: ev.Done, Total: ev.Total, Skipped: ev.Skipped, Stolen: ev.Stolen}
	case core.EventSequenceGenerated:
		return Event{Kind: EventSequenceGenerated, Fault: ev.Fault.Name(c), Seq: sequenceOf(c, ev.Seq, nil)}
	case core.EventCreditApplied:
		return Event{Kind: EventCreditApplied, Fault: ev.Fault.Name(c), Status: StatusTestedBySim, By: ev.By.Name(c)}
	default:
		return Event{Kind: EventFaultClassified, Fault: ev.Fault.Name(c), Status: statusOf(ev.Status)}
	}
}
