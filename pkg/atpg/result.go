package atpg

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"fogbuster/internal/core"
	"fogbuster/internal/faults"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// Status classifies one fault at the end of a run. The string values are
// the canonical JSON encoding and are stable.
type Status string

const (
	// StatusPending means the fault was not processed (only possible in
	// the partial Result of a cancelled run).
	StatusPending Status = "pending"
	// StatusTested means a test sequence was explicitly generated.
	StatusTested Status = "tested"
	// StatusTestedBySim means fault simulation of another fault's
	// sequence detected this fault.
	StatusTestedBySim Status = "tested_by_sim"
	// StatusUntestable means the complete search space holds no robust
	// test.
	StatusUntestable Status = "untestable"
	// StatusAborted means a backtrack budget ran out first.
	StatusAborted Status = "aborted"
)

// Detected reports whether the status counts into the paper's "tested"
// column.
func (s Status) Detected() bool { return s == StatusTested || s == StatusTestedBySim }

// statusOf converts the engine's classification.
func statusOf(st core.Status) Status {
	switch st {
	case core.Tested:
		return StatusTested
	case core.TestedBySim:
		return StatusTestedBySim
	case core.Untestable:
		return StatusUntestable
	case core.Aborted:
		return StatusAborted
	default:
		return StatusPending
	}
}

// legacyStatus is the pre-API CSV spelling of a status.
func legacyStatus(s Status) string {
	switch s {
	case StatusTestedBySim:
		return "tested(sim)"
	default:
		return string(s)
	}
}

// Sequence is one complete delay fault test in the paper's time-frame
// model. Every frame is a string over the alphabet 0, 1 and X (one
// character per primary input, X marking don't-cares): initialization
// vectors under the slow clock, the two-pattern local test V1 (slow) and
// V2 (fast), and the propagation vectors under the slow clock.
type Sequence struct {
	// Fault names the targeted fault, e.g. "G10->G11/StR".
	Fault string `json:"fault"`
	// Sync holds the synchronizing prefix (slow clock).
	Sync []string `json:"sync,omitempty"`
	// V1 and V2 are the two-pattern test; V2 is captured with the fast
	// clock.
	V1 string `json:"v1"`
	V2 string `json:"v2"`
	// Prop holds the propagation tail (slow clock).
	Prop []string `json:"prop,omitempty"`
	// ObservePO is the primary output observing the effect, or -1.
	ObservePO int `json:"observe_po"`
	// ObservePPO is the state element capturing the effect in the fast
	// frame, or -1 when the effect reaches a PO directly.
	ObservePPO int `json:"observe_ppo"`
	// Assumed holds power-up state bits the optimistic initialization
	// policy committed to (one character per state element), empty for
	// strictly synchronized tests.
	Assumed string `json:"assumed,omitempty"`
	// Dropped marks a sequence removed by test-set compaction: every
	// fault it covered is detected by a kept sequence.
	Dropped bool `json:"dropped,omitempty"`
	// Follows, when non-empty, names the fault whose sequence this one
	// was spliced after; it is valid only applied immediately after that
	// test.
	Follows string `json:"follows,omitempty"`
	// Detects lists the canonical fault indices this sequence detects
	// under the engine's concrete fill, sorted ascending. It is recorded
	// only in the partial Result of a shard run (Config.Shards), where
	// fault-simulation credit is deferred to MergeResults; the merged
	// document strips it, so unsharded and merged canonical JSON stay
	// byte-identical.
	Detects []int `json:"detects,omitempty"`
}

// Len returns the vector count of the sequence (initialization and
// propagation included), the paper's per-test pattern cost.
func (s *Sequence) Len() int { return len(s.Sync) + 2 + len(s.Prop) }

// Frames flattens the sequence in application order.
func (s *Sequence) Frames() []string {
	out := make([]string, 0, s.Len())
	out = append(out, s.Sync...)
	out = append(out, s.V1, s.V2)
	out = append(out, s.Prop...)
	return out
}

// FaultResult is the outcome for one fault.
type FaultResult struct {
	// Fault names the fault, e.g. "G10->G11/StR".
	Fault  string    `json:"fault"`
	Status Status    `json:"status"`
	Seq    *Sequence `json:"seq,omitempty"` // non-nil only for explicitly tested faults
}

// Compaction summarizes what test-set compaction did to the run.
type Compaction struct {
	Sequences      int  `json:"sequences"`       // explicit sequences before compaction
	Kept           int  `json:"kept"`            // sequences surviving the reverse-order drop
	Dropped        int  `json:"dropped"`         // sequences whose covered faults later tests detect
	PatternsBefore int  `json:"patterns_before"` // total vectors before compaction
	PatternsAfter  int  `json:"patterns_after"`  // total vectors after dropping and splicing
	Splices        int  `json:"splices"`         // adjacent sequence pairs overlap-merged
	SplicedFrames  int  `json:"spliced_frames"`  // vectors saved by the overlap merges
	Complete       bool `json:"complete"`        // recorded detection sets covered every detected fault
}

// Result aggregates one run. It is self-contained (fault and signal
// names are resolved strings) and has a canonical, round-trippable JSON
// encoding — the machine-readable interface of the engine.
type Result struct {
	Circuit string `json:"circuit"`
	Algebra string `json:"algebra"`
	Order   string `json:"order"`
	Seed    int64  `json:"seed"`
	// Workers echoes Config.Workers; it never changes the numbers below.
	Workers    int `json:"workers,omitempty"`
	Tested     int `json:"tested"` // explicit + simulation credit
	Explicit   int `json:"explicit"`
	Untestable int `json:"untestable"`
	Aborted    int `json:"aborted"`
	// Pending counts unprocessed faults; non-zero only for a cancelled
	// run.
	Pending int `json:"pending,omitempty"`
	// Patterns is the total vector count over all generated sequences.
	Patterns int `json:"patterns"`
	// Runtime is the wall-clock duration in nanoseconds (the one
	// non-deterministic field).
	Runtime time.Duration `json:"runtime_ns"`
	// ValidationFailures counts generated sequences the independent
	// checker rejected; it must be zero and exists as a self-check.
	ValidationFailures int `json:"validation_failures,omitempty"`
	// Cursor is the committed-prefix cursor of an interrupted run: the
	// next targeting position the merge loop would have committed.
	// Present only when Err is set (a complete run's cursor is implied by
	// its window); Resume continues a run from here.
	Cursor int `json:"cursor,omitempty"`
	// BroadcastSkips, BroadcastMisses and Steals are the scale-out
	// scheduling counters (Config.Broadcast, Config.Steal). Like Runtime
	// they vary run to run, but unlike Runtime they are excluded from the
	// canonical JSON entirely: the encoding stays bit-identical whatever
	// the scheduling did.
	BroadcastSkips  int `json:"-"`
	BroadcastMisses int `json:"-"`
	Steals          int `json:"-"`
	// Shard describes the window of the targeting order this partial
	// Result covers when the run was one shard of a distributed run
	// (Config.Shards); nil for an ordinary run. MergeResults consumes it
	// and the merged document omits it.
	Shard *ShardInfo `json:"shard,omitempty"`
	// Faults is the per-fault classification in the canonical fault
	// order of the circuit.
	Faults []FaultResult `json:"faults"`
	// Compaction is present when the test set was compacted.
	Compaction *Compaction `json:"compaction,omitempty"`
	// Err is the context error of a cancelled run, nil for a complete
	// one. It is encoded as the "err" string in JSON; context.Canceled
	// and context.DeadlineExceeded survive a round trip as the same
	// sentinel values.
	Err error `json:"-"`
}

// resultAlias strips Result's methods so the wire struct below never
// recurses into the custom (un)marshalers.
type resultAlias Result

// resultJSON is the wire shape of Result: identical except that Err is a
// string.
type resultJSON struct {
	resultAlias
	ErrString string `json:"err,omitempty"`
}

// MarshalJSON encodes the canonical wire form. The inner encoder runs
// with HTML escaping off so fault names ("G10->G11/StR") stay literal;
// see EncodeJSON for the indented document form.
func (r *Result) MarshalJSON() ([]byte, error) {
	w := resultJSON{resultAlias: resultAlias(*r)}
	if r.Err != nil {
		w.ErrString = r.Err.Error()
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(w); err != nil {
		return nil, err
	}
	return bytes.TrimRight(buf.Bytes(), "\n"), nil
}

// UnmarshalJSON decodes the canonical wire form, restoring the context
// sentinel errors by their messages.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Result(w.resultAlias)
	switch w.ErrString {
	case "":
		r.Err = nil
	case context.Canceled.Error():
		r.Err = context.Canceled
	case context.DeadlineExceeded.Error():
		r.Err = context.DeadlineExceeded
	default:
		r.Err = errors.New(w.ErrString)
	}
	return nil
}

// Classified returns the number of processed faults: tested (explicit
// and credited), untestable and aborted. It equals len(Faults) minus
// Pending.
func (r *Result) Classified() int {
	return r.Tested + r.Untestable + r.Aborted
}

// EncodeJSON writes the canonical JSON document for v (a Result, a
// Result slice, a Sequence, …): two-space indentation, no HTML escaping
// (fault names contain "->"), one trailing newline. The golden tests pin
// this form byte for byte.
func EncodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// WriteCSV emits the per-fault classification and the generated
// sequences in the legacy CSV shape (one row per fault, frames joined
// with "|", X for don't-cares), unchanged from the pre-API tools.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"fault", "status", "vectors", "observe_po", "sequence", "dropped", "follows"}); err != nil {
		return err
	}
	for _, fr := range r.Faults {
		rec := []string{fr.Fault, legacyStatus(fr.Status), "", "", "", "", ""}
		if fr.Seq != nil {
			rec[2] = strconv.Itoa(fr.Seq.Len())
			rec[3] = strconv.Itoa(fr.Seq.ObservePO)
			rec[4] = strings.Join(fr.Seq.Frames(), "|")
			rec[5] = strconv.FormatBool(fr.Seq.Dropped)
			rec[6] = fr.Seq.Follows
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// vecString renders one three-valued frame as 0/1/X characters.
func vecString(v []sim.V3) string {
	var sb strings.Builder
	for _, b := range v {
		sb.WriteString(b.String())
	}
	return sb.String()
}

// frameStrings renders a frame list.
func frameStrings(frames [][]sim.V3) []string {
	if len(frames) == 0 {
		return nil
	}
	out := make([]string, len(frames))
	for i, f := range frames {
		out[i] = vecString(f)
	}
	return out
}

// sequenceOf converts an engine sequence, resolving names against the
// circuit. detectIdx, when non-nil, maps faults to canonical indices so
// the recorded detection set of a shard run survives into the JSON.
func sequenceOf(c *netlist.Circuit, t *core.TestSequence, detectIdx map[faults.Delay]int) *Sequence {
	s := &Sequence{
		Fault:      t.Fault.Name(c),
		Sync:       frameStrings(t.Sync),
		V1:         vecString(t.V1),
		V2:         vecString(t.V2),
		Prop:       frameStrings(t.Prop),
		ObservePO:  t.ObservePO,
		ObservePPO: t.ObservePPO,
		Dropped:    t.Dropped,
	}
	if t.Assumed != nil && sim.KnownCount(t.Assumed) > 0 {
		s.Assumed = vecString(t.Assumed)
	}
	if t.Follows != nil {
		s.Follows = t.Follows.Name(c)
	}
	if detectIdx != nil && len(t.Detects) > 0 {
		s.Detects = make([]int, 0, len(t.Detects))
		for _, f := range t.Detects {
			if i, ok := detectIdx[f]; ok {
				s.Detects = append(s.Detects, i)
			}
		}
		sort.Ints(s.Detects)
	}
	return s
}

// resultOf converts an engine summary into the public result.
func resultOf(c *netlist.Circuit, cfg Config, sum *core.Summary, runErr error) *Result {
	r := &Result{
		Circuit:            sum.Circuit,
		Algebra:            sum.Algebra,
		Order:              sum.Order,
		Seed:               cfg.Seed,
		Workers:            cfg.Workers,
		Tested:             sum.Tested,
		Explicit:           sum.Explicit,
		Untestable:         sum.Untestable,
		Aborted:            sum.Aborted,
		Patterns:           sum.Patterns,
		Runtime:            sum.Runtime,
		ValidationFailures: sum.ValidationFailures,
		BroadcastSkips:     sum.BroadcastSkips,
		BroadcastMisses:    sum.BroadcastMisses,
		Steals:             sum.Steals,
		Faults:             make([]FaultResult, len(sum.Results)),
		Err:                runErr,
	}
	var detectIdx map[faults.Delay]int
	if cfg.Shards > 0 {
		detectIdx = make(map[faults.Delay]int, len(sum.Results))
		for i, fr := range sum.Results {
			detectIdx[fr.Fault] = i
		}
	}
	for i, fr := range sum.Results {
		out := FaultResult{Fault: fr.Fault.Name(c), Status: statusOf(fr.Status)}
		if fr.Seq != nil {
			out.Seq = sequenceOf(c, fr.Seq, detectIdx)
		}
		if out.Status == StatusPending {
			r.Pending++
		}
		r.Faults[i] = out
	}
	if runErr != nil {
		r.Cursor = sum.Cursor
	}
	if cfg.Shards > 0 {
		total := effTargets(len(sum.Results), cfg)
		lo, hi := shardRange(total, cfg.Shards, cfg.ShardIndex)
		key, _ := cfg.runKey() // cfg was validated when the session was built
		r.Shard = &ShardInfo{
			Shards: cfg.Shards, Index: cfg.ShardIndex,
			Lo: lo, Hi: hi, Total: total, Cursor: sum.Cursor,
			ConfigKey: key,
			Positions: append([]int(nil), sum.Perm[:sum.Cursor-sum.Lo]...),
		}
	}
	if sum.Compaction != nil {
		st := sum.Compaction
		r.Compaction = &Compaction{
			Sequences: st.Sequences, Kept: st.Kept, Dropped: st.Dropped,
			PatternsBefore: st.PatternsBefore, PatternsAfter: st.PatternsAfter,
			Splices: st.Splices, SplicedFrames: st.SplicedFrames,
			Complete: st.Complete,
		}
	}
	return r
}
