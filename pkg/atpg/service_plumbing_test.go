package atpg

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestReadBench drives the io.Reader constructor with the real
// ISCAS'89 s27 distribution file in testdata — header comments, blank
// lines, alignment spaces and all — and requires the parsed circuit to
// be content-identical to the embedded benchmark: same hash, and a full
// Session.Run byte-identical to the built-in circuit's. Malformed input
// must still error.
func TestReadBench(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "s27.bench"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := ReadBench("s27", f)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "s27" {
		t.Fatalf("name = %q, want s27", c.Name())
	}
	if c.Faults() != 50 {
		t.Fatalf("s27 has %d delay faults, want 50", c.Faults())
	}
	builtin, err := Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	if c.ContentHash() != builtin.ContentHash() {
		t.Fatal("distribution-format s27 hashes differently from the embedded benchmark")
	}
	cfg := Config{Seed: 42}
	if got, want := canonicalBytes(t, mustRunTest(t, c, cfg)), canonicalBytes(t, mustRunTest(t, builtin, cfg)); got != want {
		t.Fatal("run over the testdata circuit diverged from the embedded benchmark")
	}
	if _, err := ReadBench("bad", strings.NewReader("C = FROB(A)\n")); err == nil {
		t.Fatal("malformed netlist accepted")
	}
	if _, err := ReadBench("empty", strings.NewReader("# nothing\n")); err == nil {
		t.Fatal("empty netlist accepted")
	}
}

// TestContentHashNormalizesSyntax: comments, whitespace and line order
// wash out of the content hash; a different structure or name changes
// it.
func TestContentHashNormalizesSyntax(t *testing.T) {
	a, err := ParseBench("h", "INPUT(A)\nINPUT(B)\nOUTPUT(C)\nC = AND(A, B)\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseBench("h", "# a comment\nINPUT(A)\n\nINPUT(B)\nOUTPUT(C)\n  C = and( A , B )\n")
	if err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() != b.ContentHash() {
		t.Fatalf("syntactic variation changed the hash:\n%s\n%s", a.ContentHash(), b.ContentHash())
	}
	or, err := ParseBench("h", "INPUT(A)\nINPUT(B)\nOUTPUT(C)\nC = OR(A, B)\n")
	if err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() == or.ContentHash() {
		t.Fatal("different structure, same hash")
	}
	named, err := ParseBench("other", "INPUT(A)\nINPUT(B)\nOUTPUT(C)\nC = AND(A, B)\n")
	if err != nil {
		t.Fatal(err)
	}
	if a.ContentHash() == named.ContentHash() {
		t.Fatal("different name, same hash (results embed the name, so hashes must too)")
	}
	if len(a.ContentHash()) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", a.ContentHash())
	}
	// The canonical text round-trips.
	rt, err := ParseBench("h", a.Bench())
	if err != nil {
		t.Fatal(err)
	}
	if rt.ContentHash() != a.ContentHash() {
		t.Fatal("canonical Bench text does not round-trip to the same hash")
	}
}

// TestTopologySharedAcrossSessions pins the levelize-once contract: any
// number of sessions over one Circuit (same cone policy) build exactly
// one topology, and the results stay bit-identical to a fresh circuit's.
func TestTopologySharedAcrossSessions(t *testing.T) {
	c, err := Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	var results []*Result
	for i := 0; i < 3; i++ {
		results = append(results, mustRunTest(t, c, Config{}))
	}
	c.mu.Lock()
	builds := c.topoBuilds
	c.mu.Unlock()
	if builds != 1 {
		t.Fatalf("3 sessions built %d topologies, want 1", builds)
	}
	fresh, err := Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalBytes(t, mustRunTest(t, fresh, Config{}))
	for i, r := range results {
		if got := canonicalBytes(t, r); got != want {
			t.Fatalf("session %d over the shared topology diverged from a fresh circuit", i)
		}
	}
	// A different cone policy gets its own topology; the same policy is
	// still shared.
	if _, err := New(c, Config{ConeSets: ConeSetsCompressed}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(c, Config{ConeSets: ConeSetsCompressed}); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	builds = c.topoBuilds
	c.mu.Unlock()
	if builds != 2 {
		t.Fatalf("auto + compressed policies built %d topologies, want 2", builds)
	}
}

// TestConfigCanonical: aliases and zero defaults normalize, invalid
// configs error, and canonicalization is idempotent.
func TestConfigCanonical(t *testing.T) {
	canon, err := Config{}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Algebra: AlgebraRobust, Order: OrderNatural,
		LocalBacktracks: 100, SeqBacktracks: 100, MaxFrames: 32,
		ConeSets: ConeSetsAuto,
	}
	if canon != want {
		t.Fatalf("Canonical(zero) = %+v, want %+v", canon, want)
	}
	again, err := canon.Canonical()
	if err != nil || again != canon {
		t.Fatalf("canonicalization not idempotent: %+v vs %+v (%v)", again, canon, err)
	}
	alias, err := Config{Algebra: "non-robust"}.Canonical()
	if err != nil || alias.Algebra != AlgebraNonRobust {
		t.Fatalf("alias not resolved: %+v (%v)", alias, err)
	}
	if _, err := (Config{Algebra: "bogus"}).Canonical(); err == nil {
		t.Fatal("invalid algebra canonicalized")
	}
	if _, err := (Config{MaxTargets: -1}).CacheKey(); err == nil {
		t.Fatal("invalid config produced a cache key")
	}
}

// TestConfigCacheKey: configurations that provably produce identical
// Results share a key; result-affecting fields split it.
func TestConfigCacheKey(t *testing.T) {
	key := func(c Config) string {
		t.Helper()
		k, err := c.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := key(Config{})
	// Defaults spelled out, and every pure-scheduling knob, collapse
	// onto the zero config's key.
	same := []Config{
		{Algebra: AlgebraRobust, Order: OrderNatural},
		{LocalBacktracks: 100, SeqBacktracks: 100, MaxFrames: 32},
		{Broadcast: true, Steal: true},
		{FullEval: true, ScalarCredit: true},
		{ConeSets: ConeSetsCompressed},
	}
	for _, c := range same {
		if key(c) != base {
			t.Errorf("%+v got its own key; Results are provably identical", c)
		}
	}
	diff := []Config{
		{Algebra: AlgebraNonRobust},
		{Order: OrderADI},
		{Seed: 7},
		{Workers: 4}, // echoed into Result JSON
		{LocalBacktracks: 50},
		{MaxTargets: 10},
		{Compact: true},
		{StrictInit: true},
	}
	seen := map[string]string{base: "zero config"}
	for _, c := range diff {
		k := key(c)
		if prev, dup := seen[k]; dup {
			t.Errorf("%+v shares a key with %s", c, prev)
		}
		seen[k] = "some variant"
	}
}

// TestEventsLossyNeverWedges pins the abandoned-consumer fix: a consumer
// that stops draining an EventsLossy channel cannot block the merge
// loop. The run completes, evictions are counted and handed to the drop
// callback in commit order, and the result matches an unobserved run.
func TestEventsLossyNeverWedges(t *testing.T) {
	c, err := Benchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	ses, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var droppedEvents []Event
	events := ses.EventsLossy(4, func(ev Event) { droppedEvents = append(droppedEvents, ev) })
	// Read exactly one event, then abandon the channel entirely.
	first := make(chan Event, 1)
	go func() { first <- <-events }()

	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = ses.Run(context.Background())
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("run wedged behind an abandoned lossy consumer")
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Pending != 0 {
		t.Fatalf("lossy consumer truncated the run: %d pending", res.Pending)
	}
	if ses.DroppedEvents() == 0 || int64(len(droppedEvents)) != ses.DroppedEvents() {
		t.Fatalf("dropped counter %d, callback saw %d (want equal, nonzero)",
			ses.DroppedEvents(), len(droppedEvents))
	}
	<-first // the one delivered event
	want := mustRunTest(t, c, Config{})
	if canonicalBytes(t, res) != canonicalBytes(t, want) {
		t.Fatal("lossy observation changed the result")
	}
}

// TestEventsAbandonedConsumerUnwedgedByCancel documents the lossless
// Events contract: an abandoned consumer wedges the merge loop only
// until the Run context is cancelled, after which Run returns the usual
// coherent partial result.
func TestEventsAbandonedConsumerUnwedgedByCancel(t *testing.T) {
	c, err := Benchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	ses, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ses.Events() // requested and then never drained
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var res *Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = ses.Run(ctx)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("cancellation did not unwedge the abandoned consumer")
	}
	if runErr != context.Canceled || res == nil || res.Err != context.Canceled {
		t.Fatalf("Run = (%v, %v), want partial result with context.Canceled", res, runErr)
	}
	coherent(t, res)
}
