// Package atpg is the public, supported entry point to the FOGBUSTER
// gate delay fault ATPG engine for non-scan sequential circuits
// (importable as fogbuster/pkg/atpg). External code — the repository's
// own cmd/ tools and examples/ included — drives the engine exclusively
// through this package; everything under internal/ may change shape
// between commits without notice.
//
// The surface is small and stable:
//
//   - Circuits come from ParseBench/LoadBench (ISCAS'89 .bench text) or
//     Benchmark (the paper's Table 3 set plus a few didactic circuits).
//   - New(circuit, config) validates the Config — unknown algebras or
//     orderings and negative budgets are construction errors, never
//     panics — and returns a single-use Session.
//   - Session.Run(ctx) executes the full flow. Cancelling the context
//     stops the workers promptly and returns the partial Result with
//     Result.Err == ctx.Err(); every unprocessed fault is left
//     StatusPending, and the processed prefix is bit-identical to the
//     same prefix of an uncancelled run.
//   - Session.Events (or Session.OnEvent) streams ordered per-fault
//     commit events — FaultClassified, SequenceGenerated, CreditApplied,
//     Progress — straight off the engine's merge loop, so consumers can
//     render live progress or act on sequences before the summary.
//   - Result and Sequence have canonical, round-trippable JSON encodings
//     (golden-pinned by the package tests) as the machine-readable
//     interface; Result.WriteCSV keeps the legacy CSV shape.
//   - Distributed runs: Config.Shards/ShardIndex run one window of the
//     fault universe, MergeResults stitches the shard documents into a
//     byte-identical whole; Session.Checkpoint, CheckpointOf and Resume
//     make any run — sharded or not — resumable after interruption. See
//     DESIGN.md §11 and cmd/atpgcoord.
//
// Determinism contract: for a given circuit and Config (Seed included),
// Run produces a bit-identical Result and event stream at every worker
// count; see DESIGN.md §4 and §8.
package atpg
