package atpg

import (
	"reflect"
	"testing"
)

// collectEvents runs one session with the OnEvent callback and returns
// the full stream plus the result.
func collectEvents(t *testing.T, circuit string, cfg Config) ([]Event, *Result) {
	t.Helper()
	c, err := Benchmark(circuit)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	ses.OnEvent(func(ev Event) { events = append(events, ev) })
	res, err := ses.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	return events, res
}

// TestEventStreamWorkerInvariance pins the streaming contract: the
// complete event stream — kinds, faults, sequences, progress — is
// bit-identical at every worker count, because events are emitted by the
// merge loop strictly in commit (targeting) order.
func TestEventStreamWorkerInvariance(t *testing.T) {
	for _, circuit := range []string{"s27", "s298"} {
		base, _ := collectEvents(t, circuit, Config{Workers: -1})
		for _, workers := range []int{2, 7} {
			got, _ := collectEvents(t, circuit, Config{Workers: workers})
			if !reflect.DeepEqual(got, base) {
				t.Errorf("%s: event stream diverged at Workers=%d (serial %d events, got %d)",
					circuit, workers, len(base), len(got))
			}
		}
	}
}

// TestEventStreamCoherence checks the stream against the result it
// narrates: progress advances one commit at a time, every fault is
// classified exactly once (explicitly or by credit), and the sequence
// events arrive in the result's generation order.
func TestEventStreamCoherence(t *testing.T) {
	events, res := collectEvents(t, "s298", Config{})

	classified := make(map[string]Status)
	var seqFaults []string
	wantDone := 0
	for _, ev := range events {
		switch ev.Kind {
		case EventProgress:
			wantDone++
			if ev.Done != wantDone || ev.Total != len(res.Faults) {
				t.Fatalf("progress %d/%d out of step, want %d/%d", ev.Done, ev.Total, wantDone, len(res.Faults))
			}
		case EventFaultClassified, EventCreditApplied:
			if _, dup := classified[ev.Fault]; dup {
				t.Fatalf("%s classified twice", ev.Fault)
			}
			classified[ev.Fault] = ev.Status
			if ev.Kind == EventCreditApplied {
				if ev.Status != StatusTestedBySim || ev.By == "" {
					t.Fatalf("credit event malformed: %+v", ev)
				}
			}
		case EventSequenceGenerated:
			if ev.Seq == nil || ev.Seq.Fault != ev.Fault {
				t.Fatalf("sequence event malformed: %+v", ev)
			}
			seqFaults = append(seqFaults, ev.Fault)
		}
	}
	if wantDone != len(res.Faults) {
		t.Fatalf("saw %d progress commits, want %d", wantDone, len(res.Faults))
	}

	// Every classified fault matches the final result; pending never
	// appears in a complete run.
	if len(classified) != res.Classified() {
		t.Fatalf("stream classified %d faults, result %d", len(classified), res.Classified())
	}
	var wantSeqs []string
	for _, fr := range res.Faults {
		if st, ok := classified[fr.Fault]; ok {
			if st != fr.Status {
				t.Errorf("%s: stream says %s, result says %s", fr.Fault, st, fr.Status)
			}
		} else if fr.Status != StatusPending {
			t.Errorf("%s: result %s but never announced", fr.Fault, fr.Status)
		}
		if fr.Seq != nil {
			wantSeqs = append(wantSeqs, fr.Fault)
		}
	}
	// Natural order commits in fault order, so the sequence events must
	// mirror the explicit tests in result order exactly.
	if !reflect.DeepEqual(seqFaults, wantSeqs) {
		t.Fatalf("sequence events out of order:\n got %v\nwant %v", seqFaults, wantSeqs)
	}
}

// TestEventsChannel: the channel variant delivers the same stream and
// closes when Run returns.
func TestEventsChannel(t *testing.T) {
	c, err := Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	ses, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	events := ses.Events()
	got := make(chan []Event, 1)
	go func() {
		var all []Event
		for ev := range events {
			all = append(all, ev)
		}
		got <- all
	}()
	if _, err := ses.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	streamed := <-got
	want, _ := collectEvents(t, "s27", Config{})
	if !reflect.DeepEqual(streamed, want) {
		t.Fatalf("channel stream differs from callback stream (%d vs %d events)", len(streamed), len(want))
	}
}
