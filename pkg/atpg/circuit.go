package atpg

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fogbuster/internal/bench"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// Circuit is an immutable parsed circuit, the input to New. The zero
// value is invalid; obtain circuits from ParseBench, ReadBench,
// LoadBench or Benchmark.
//
// A Circuit memoizes derived read-only state — the canonical content
// hash and the simulation topology (levelized CSR view plus lazily
// built cone sets) — so that any number of concurrent Sessions over the
// same Circuit pay levelization once. Sharing a *Circuit between
// goroutines is safe.
type Circuit struct {
	c *netlist.Circuit

	mu    sync.Mutex
	hash  string                           // memoized ContentHash
	topos map[sim.ConePolicy]*sim.Topology // memoized per cone policy
	// topoBuilds counts actual topology constructions (white-box
	// observability for the sharing tests).
	topoBuilds int
}

// ParseBench parses ISCAS'89 .bench text. The name labels the circuit in
// results and error messages. Malformed input is reported as an error,
// never a panic.
func ParseBench(name, src string) (*Circuit, error) {
	c, err := netlist.Parse(name, src)
	if err != nil {
		return nil, fmt.Errorf("atpg: %w", err)
	}
	if len(c.Nodes) == 0 {
		return nil, fmt.Errorf("atpg: %s: empty netlist", name)
	}
	return &Circuit{c: c}, nil
}

// ReadBench parses ISCAS'89 .bench text from a reader — netlists
// arriving over the wire, not from disk. The name labels the circuit in
// results and error messages; malformed input is reported as an error,
// never a panic.
func ReadBench(name string, r io.Reader) (*Circuit, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("atpg: %s: %w", name, err)
	}
	return ParseBench(name, string(data))
}

// LoadBench reads and parses a .bench file.
func LoadBench(path string) (*Circuit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("atpg: %w", err)
	}
	return ParseBench(path, string(data))
}

// Name returns the circuit's name.
func (c *Circuit) Name() string { return c.c.Name }

// Bench renders the circuit in canonical ISCAS'89 .bench form: header
// comment, inputs, outputs, flip-flops, then gates in definition order.
// Parsing the result yields a structurally identical circuit, so two
// circuits with equal Bench text are the same design under the same
// name — the normalization ContentHash keys on.
func (c *Circuit) Bench() string { return c.c.Bench() }

// ContentHash returns the hex SHA-256 of the canonical Bench text — a
// content address for the circuit. Syntactic variation in the source
// (comments, whitespace, line order) washes out: uploads that parse to
// the same named design share a hash, which is what lets a service
// cache parsed circuits and their topologies across clients. The hash
// is computed once and memoized.
func (c *Circuit) ContentHash() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hash == "" {
		sum := sha256.Sum256([]byte(c.c.Bench()))
		c.hash = hex.EncodeToString(sum[:])
	}
	return c.hash
}

// topology returns the memoized shared simulation topology for the cone
// policy, building it on first use. Every Session over this Circuit
// with the same policy reuses one Topology (it is immutable and already
// shared by all workers of a run), so levelization and cone-set
// construction are paid once per circuit, not per job.
func (c *Circuit) topology(policy sim.ConePolicy) *sim.Topology {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.topos[policy]; ok {
		return t
	}
	if c.topos == nil {
		c.topos = make(map[sim.ConePolicy]*sim.Topology)
	}
	t := sim.NewTopology(c.c)
	t.SetConePolicy(policy)
	c.topos[policy] = t
	c.topoBuilds++
	return t
}

// Faults returns the size of the gate delay fault universe (two faults
// per line).
func (c *Circuit) Faults() int { return 2 * len(c.c.Lines()) }

// Stats summarizes the size of a circuit, including the fault-universe
// quantities of the paper's Table 3.
type Stats struct {
	Name     string `json:"name"`
	PIs      int    `json:"pis"`
	POs      int    `json:"pos"`
	DFFs     int    `json:"dffs"`
	Gates    int    `json:"gates"` // combinational gates (incl. NOT/BUF)
	Stems    int    `json:"stems"`
	Branches int    `json:"branches"`
	Lines    int    `json:"lines"`  // stems + branches
	Faults   int    `json:"faults"` // 2 * lines
	MaxLevel int    `json:"max_level"`
}

// String formats the statistics on one line (the classic circstat shape).
func (s Stats) String() string {
	return fmt.Sprintf("%s: pi=%d po=%d dff=%d gates=%d stems=%d branches=%d lines=%d depth=%d faults=%d",
		s.Name, s.PIs, s.POs, s.DFFs, s.Gates, s.Stems, s.Branches, s.Lines, s.MaxLevel, s.Faults)
}

// Stats computes the circuit's size statistics.
func (c *Circuit) Stats() Stats {
	s := c.c.Stats()
	return Stats{
		Name: s.Name, PIs: s.PIs, POs: s.POs, DFFs: s.DFFs, Gates: s.Gates,
		Stems: s.Stems, Branches: s.Branches, Lines: s.Lines,
		Faults: 2 * s.Lines, MaxLevel: s.MaxLevel,
	}
}

// GatesPerLevel returns the combinational gate count of every level,
// index 0 holding level 1 (primary inputs and state elements sit on
// level 0 and are excluded).
func (c *Circuit) GatesPerLevel() []int {
	t := sim.NewTopology(c.c)
	out := make([]int, t.MaxLevel)
	for l := int32(1); l <= t.MaxLevel; l++ {
		out[l-1] = int(t.LevelOff[l+1] - t.LevelOff[l])
	}
	return out
}

// ConeSizes returns the minimum, median and maximum fanout-cone gate
// count over every stem — the distribution that predicts how much the
// event-driven cone kernels save over full levelized simulation.
func (c *Circuit) ConeSizes() (lo, med, hi int) {
	t := sim.NewTopology(c.c)
	sizes := make([]int, t.NumNodes())
	for i := range sizes {
		sizes[i] = t.ConeGates(netlist.NodeID(i))
	}
	sort.Ints(sizes)
	return sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]
}

// ConeMemory reports the cone-set memory footprint of the circuit under
// a representation policy ("", "auto", "dense" or "compressed"): the
// bytes the dense all-stems matrix would occupy (the pre-compression
// representation, O(nodes²/8)) next to the bytes the policy actually
// holds once every stem's set is built. Unknown policies are errors.
func (c *Circuit) ConeMemory(policy string) (dense, actual int64, err error) {
	p, err := sim.ParseConePolicy(policy)
	if err != nil {
		return 0, 0, fmt.Errorf("atpg: %v", err)
	}
	t := sim.NewTopology(c.c)
	t.SetConePolicy(p)
	dense, actual = t.ConeFootprint()
	return dense, actual, nil
}

// PaperRow is one row of the paper's Table 3, for comparison against a
// fresh run of the matching benchmark.
type PaperRow struct {
	Tested     int     `json:"tested"`
	Untestable int     `json:"untestable"`
	Aborted    int     `json:"aborted"`
	Patterns   int     `json:"patterns"`
	Seconds    float64 `json:"seconds"` // the paper's "<1" is recorded as 0.5
}

// BenchmarkInfo describes one built-in Table 3 benchmark.
type BenchmarkInfo struct {
	Name string
	// Exact is true only for s27, which is embedded verbatim; the other
	// circuits are profile-calibrated synthetic reconstructions whose
	// fault universes match the paper.
	Exact bool
	// Paper is the paper's published row for the circuit.
	Paper PaperRow
}

// Benchmarks lists the built-in Table 3 benchmark set in the paper's
// presentation order.
func Benchmarks() []BenchmarkInfo {
	out := make([]BenchmarkInfo, 0, len(bench.Profiles))
	for _, p := range bench.Profiles {
		out = append(out, BenchmarkInfo{
			Name:  p.Name,
			Exact: p.Exact,
			Paper: PaperRow{
				Tested: p.Paper.Tested, Untestable: p.Paper.Untestable,
				Aborted: p.Paper.Aborted, Patterns: p.Paper.Patterns,
				Seconds: p.Paper.Seconds,
			},
		})
	}
	return out
}

// LargeBenchmarks lists the built-in industrial-scale benchmarks beyond
// the paper's Table 3 (the two biggest ISCAS'89 machines, reconstructed
// with the same calibrated synthesizer). The paper never ran them, so
// BenchmarkInfo.Paper is zero; they exist for the scale-out machinery:
// compressed cone sets, the broadcast and stealing knobs, and budgeted
// runs via Config.MaxTargets. Benchmarks() deliberately excludes them —
// the Table 3 experiment set stays what the paper measured.
func LargeBenchmarks() []BenchmarkInfo {
	out := make([]BenchmarkInfo, 0, len(bench.LargeProfiles))
	for _, p := range bench.LargeProfiles {
		out = append(out, BenchmarkInfo{Name: p.Name, Exact: p.Exact})
	}
	return out
}

// Benchmark returns a built-in circuit by name: any Table 3 benchmark
// (see Benchmarks), any industrial-scale benchmark (see LargeBenchmarks),
// the combinational "c17", or the parameterized didactic families
// "rca<N>" (N-bit ripple-carry adder) and "shift<N>" (N-bit shift
// register). Unknown names are errors.
func Benchmark(name string) (*Circuit, error) {
	switch {
	case name == "c17":
		return &Circuit{c: bench.NewC17()}, nil
	case strings.HasPrefix(name, "rca"):
		bits, err := famBits(name, "rca")
		if err != nil {
			return nil, err
		}
		return &Circuit{c: bench.RippleCarryAdder(bits)}, nil
	case strings.HasPrefix(name, "shift"):
		bits, err := famBits(name, "shift")
		if err != nil {
			return nil, err
		}
		return &Circuit{c: bench.ShiftRegister(bits)}, nil
	}
	if p := bench.ProfileByName(name); p != nil {
		c, err := bench.Synthesize(*p)
		if err != nil {
			return nil, fmt.Errorf("atpg: %w", err)
		}
		return &Circuit{c: c}, nil
	}
	return nil, fmt.Errorf("atpg: unknown benchmark %q", name)
}

// famBits parses the size suffix of a parameterized circuit family name.
func famBits(name, fam string) (int, error) {
	bits, err := strconv.Atoi(name[len(fam):])
	if err != nil || bits < 1 || bits > 64 {
		return 0, fmt.Errorf("atpg: unknown benchmark %q (want %s<1..64>)", name, fam)
	}
	return bits, nil
}
