package atpg

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"fogbuster/internal/compact"
	"fogbuster/internal/core"
)

// ErrAlreadyRun is returned by Session.Run when the session was already
// executed; sessions are single-use.
var ErrAlreadyRun = errors.New("atpg: session already run")

// Session is one prepared ATPG run: a validated Config bound to a
// Circuit. Configure streaming with Events or OnEvent before calling
// Run; a Session is single-use.
type Session struct {
	circuit *Circuit
	cfg     Config
	eng     *core.Engine

	started atomic.Bool
	onEvent func(Event)
	events  chan Event
	// ctx is the Run context, stored so the event bridge can abandon
	// channel sends when the run is cancelled; it is written once at the
	// start of Run, before any event can fire, and read only from the
	// merge loop (the Run goroutine).
	ctx context.Context
}

// New validates the configuration and prepares a session for the
// circuit. All configuration mistakes — unknown algebra or order names,
// negative budgets — surface here as errors; nothing in the public API
// panics on bad input.
func New(c *Circuit, cfg Config) (*Session, error) {
	if c == nil || c.c == nil {
		return nil, errors.New("atpg: nil circuit")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opts, err := cfg.engineOptions()
	if err != nil {
		return nil, err
	}
	s := &Session{circuit: c, cfg: cfg}
	opts.OnEvent = s.emit
	eng, err := core.New(c.c, opts)
	if err != nil {
		// Unreachable after Validate; surfaced defensively.
		return nil, fmt.Errorf("atpg: %w", err)
	}
	s.eng = eng
	return s, nil
}

// OnEvent registers a callback receiving every streaming event
// synchronously on the Run goroutine, in commit order. It must be called
// before Run and must not call back into the session.
func (s *Session) OnEvent(fn func(Event)) { s.onEvent = fn }

// Events returns the streaming event channel. It must be called before
// Run; the channel is closed when Run returns its Result, so consumers
// can simply range over it. Consumers must keep draining the channel
// (directly or in a goroutine) while the run executes — the engine
// blocks on a full buffer — except after cancellation, when pending
// sends are abandoned.
func (s *Session) Events() <-chan Event {
	if s.events == nil {
		s.events = make(chan Event, 256)
	}
	return s.events
}

// emit bridges one engine event to the registered consumers. Without a
// consumer it returns before converting (name resolution and frame
// strings would otherwise burn on every commit of a plain Run).
func (s *Session) emit(ev core.Event) {
	if s.onEvent == nil && s.events == nil {
		return
	}
	out := eventOf(s.circuit.c, ev)
	if s.onEvent != nil {
		s.onEvent(out)
	}
	if s.events != nil {
		select {
		case s.events <- out:
		case <-s.ctx.Done():
			// The consumer may have stopped draining after cancellation;
			// the merge loop stops committing momentarily.
		}
	}
}

// Run executes the full ATPG flow and returns the result. The context
// governs cancellation: when it is cancelled or times out, Run stops the
// workers promptly and returns the partial Result with Result.Err ==
// ctx.Err() (also returned as the error); every unprocessed fault is
// left StatusPending, and the processed prefix is bit-identical to the
// same prefix of an uncancelled run. A complete run returns a nil error.
//
// When Config.Compact is set and the run completes, the test set is
// compacted before the Result is built; a cancelled run is never
// compacted. The Events channel, if requested, is closed before Run
// returns.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	if !s.started.CompareAndSwap(false, true) {
		return nil, ErrAlreadyRun
	}
	if s.events != nil {
		defer close(s.events)
	}
	s.ctx = ctx
	sum, runErr := s.eng.RunContext(ctx)
	if s.cfg.Compact && runErr == nil {
		opts, _ := s.cfg.engineOptions() // validated in New
		st := compact.Apply(s.circuit.c, sum, compact.Options{
			Algebra:  opts.Algebra,
			Seed:     s.cfg.Seed,
			FullEval: s.cfg.FullEval,
		})
		if !st.Complete {
			return nil, errors.New("atpg: compaction refused: recorded detection sets are absent or incomplete")
		}
	}
	res := resultOf(s.circuit.c, s.cfg, sum, runErr)
	return res, runErr
}
