package atpg

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fogbuster/internal/compact"
	"fogbuster/internal/core"
	"fogbuster/internal/sim"
)

// ErrAlreadyRun is returned by Session.Run when the session was already
// executed; sessions are single-use.
var ErrAlreadyRun = errors.New("atpg: session already run")

// Session is one prepared ATPG run: a validated Config bound to a
// Circuit. Configure streaming with Events or OnEvent before calling
// Run; a Session is single-use.
type Session struct {
	circuit *Circuit
	cfg     Config
	eng     *core.Engine

	started atomic.Bool
	onEvent func(Event)
	events  chan Event
	// lossy switches the events channel to the bounded non-blocking
	// contract of EventsLossy: a full buffer evicts the oldest pending
	// event (to onDrop, counted in dropped) instead of blocking the
	// merge loop.
	lossy   bool
	onDrop  func(Event)
	dropped atomic.Int64
	// ctx is the Run context, stored so the event bridge can abandon
	// channel sends when the run is cancelled; it is written once at the
	// start of Run, before any event can fire, and read only from the
	// merge loop (the Run goroutine).
	ctx context.Context

	// prefix is the committed prefix of the checkpoint a resumed session
	// continues from (nil for a fresh run); Run and Checkpoint stitch it
	// into their Results.
	track *tracker // live checkpoint state; nil under Config.Compact
	// startCursor is the targeting position the engine starts at: the
	// shard window's Lo, the checkpoint's cursor on resume, 0 otherwise.
	startCursor int
	prefix      *Result

	mu    sync.Mutex
	final *Result // the Result Run returned, once it has
}

// New validates the configuration and prepares a session for the
// circuit. All configuration mistakes — unknown algebra or order names,
// negative budgets — surface here as errors; nothing in the public API
// panics on bad input. When Config.Shards is set the session runs one
// shard of a distributed run (see MergeResults); Resume builds sessions
// that continue from a Checkpoint.
func New(c *Circuit, cfg Config) (*Session, error) {
	if c == nil || c.c == nil {
		return nil, errors.New("atpg: nil circuit")
	}
	return newSession(c, cfg, nil)
}

// newSession is the shared constructor behind New and Resume; ckpt,
// when non-nil, is a validated checkpoint the session continues from.
func newSession(c *Circuit, cfg Config, ckpt *Checkpoint) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opts, err := cfg.engineOptions()
	if err != nil {
		return nil, err
	}
	s := &Session{circuit: c, cfg: cfg}
	if cfg.Shards > 0 {
		lo, hi := shardRange(effTargets(c.Faults(), cfg), cfg.Shards, cfg.ShardIndex)
		opts.ShardLo, opts.ShardHi = lo, hi
		s.startCursor = lo
	}
	if ckpt != nil {
		// The prefix [0 or shard Lo, cursor) is committed: preload its
		// statuses and start the engine window at the cursor.
		opts.ShardLo = ckpt.Cursor
		opts.Preload = preloadOf(ckpt.Result)
		s.startCursor = ckpt.Cursor
		s.prefix = ckpt.Result
	}
	if !cfg.Compact {
		s.track = newTracker(c, cfg)
	}
	opts.OnEvent = s.emit
	// Reuse the circuit's memoized topology so concurrent sessions over
	// one Circuit share a single levelized CSR view and cone sets.
	policy, _ := sim.ParseConePolicy(cfg.ConeSets) // validated above
	opts.Topology = c.topology(policy)
	eng, err := core.New(c.c, opts)
	if err != nil {
		// Unreachable after Validate; surfaced defensively.
		return nil, fmt.Errorf("atpg: %w", err)
	}
	s.eng = eng
	return s, nil
}

// OnEvent registers a callback receiving every streaming event
// synchronously on the Run goroutine, in commit order. It must be called
// before Run and must not call back into the session.
func (s *Session) OnEvent(fn func(Event)) { s.onEvent = fn }

// Events returns the lossless streaming event channel. It must be
// called before Run; the channel is closed when Run returns its Result,
// so consumers can simply range over it.
//
// Contract: the stream is lossless, so the engine BLOCKS on a full
// buffer. A consumer that stops draining the channel mid-run therefore
// wedges the merge loop until the Run context is cancelled — pending
// sends are abandoned only once ctx.Done() fires, after which Run
// returns the usual coherent committed-prefix partial Result. Consumers
// that cannot guarantee timely draining (a network stream feeding a
// slow client, say) must either drain into their own buffer on a
// dedicated goroutine, cancel the run when they give up, or use
// EventsLossy, which never blocks the run.
func (s *Session) Events() <-chan Event {
	if s.events == nil {
		s.events = make(chan Event, 256)
	}
	return s.events
}

// EventsLossy returns a bounded streaming event channel that never
// blocks the run: when the consumer lags more than buffer events
// (buffer <= 0 means 256), the oldest pending event is evicted — passed
// to onDrop, if non-nil, synchronously on the Run goroutine — and the
// new event enqueued. DroppedEvents reports the eviction count; the
// events that do arrive preserve commit order. Like Events it must be
// called before Run, is closed when Run returns, and is exclusive with
// Events on the same session.
func (s *Session) EventsLossy(buffer int, onDrop func(Event)) <-chan Event {
	if s.events == nil {
		if buffer <= 0 {
			buffer = 256
		}
		s.events = make(chan Event, buffer)
		s.lossy = true
		s.onDrop = onDrop
	}
	return s.events
}

// DroppedEvents returns the number of events evicted from an EventsLossy
// channel so far (always zero for Events consumers).
func (s *Session) DroppedEvents() int64 { return s.dropped.Load() }

// emit bridges one engine event to the registered consumers. Without a
// consumer it returns before converting (name resolution and frame
// strings would otherwise burn on every commit of a plain Run).
func (s *Session) emit(ev core.Event) {
	if s.track != nil {
		s.track.observe(ev)
	}
	if s.onEvent == nil && s.events == nil {
		return
	}
	out := eventOf(s.circuit.c, ev)
	if s.onEvent != nil {
		s.onEvent(out)
	}
	switch {
	case s.events == nil:
	case s.lossy:
		// Never block the merge loop: on a full buffer evict the oldest
		// pending event and retry. The merge loop is the only producer,
		// and the consumer only ever frees slots, so the retry loop
		// terminates after at most one eviction per iteration.
		for {
			select {
			case s.events <- out:
				return
			default:
			}
			select {
			case old := <-s.events:
				s.dropped.Add(1)
				if s.onDrop != nil {
					s.onDrop(old)
				}
			default:
			}
		}
	default:
		select {
		case s.events <- out:
		case <-s.ctx.Done():
			// The consumer may have stopped draining after cancellation;
			// the merge loop stops committing momentarily.
		}
	}
}

// Run executes the full ATPG flow and returns the result. The context
// governs cancellation: when it is cancelled or times out, Run stops the
// workers promptly and returns the partial Result with Result.Err ==
// ctx.Err() (also returned as the error); every unprocessed fault is
// left StatusPending, and the processed prefix is bit-identical to the
// same prefix of an uncancelled run. A complete run returns a nil error.
//
// When Config.Compact is set and the run completes, the test set is
// compacted before the Result is built; a cancelled run is never
// compacted. The Events channel, if requested, is closed before Run
// returns.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	if !s.started.CompareAndSwap(false, true) {
		return nil, ErrAlreadyRun
	}
	if s.events != nil {
		defer close(s.events)
	}
	s.ctx = ctx
	sum, runErr := s.eng.RunContext(ctx)
	if s.cfg.Compact && runErr == nil {
		opts, _ := s.cfg.engineOptions() // validated in New
		st := compact.Apply(s.circuit.c, sum, compact.Options{
			Algebra:  opts.Algebra,
			Seed:     s.cfg.Seed,
			FullEval: s.cfg.FullEval,
		})
		if !st.Complete {
			return nil, errors.New("atpg: compaction refused: recorded detection sets are absent or incomplete")
		}
	}
	res := resultOf(s.circuit.c, s.cfg, sum, runErr)
	if s.prefix != nil {
		stitchPrefix(res, s.prefix)
	}
	s.mu.Lock()
	s.final = res
	s.mu.Unlock()
	return res, runErr
}

// Checkpoint snapshots the run's committed prefix as a resumable
// Checkpoint. It is safe to call from any goroutine at any time: before
// Run (an empty prefix), concurrently with it (the prefix as of the
// last committed position — never a torn, partially committed state),
// or after it (the final Result, complete or cancelled). Compacted
// sessions cannot be checkpointed.
func (s *Session) Checkpoint() (*Checkpoint, error) {
	if s.cfg.Compact {
		return nil, errors.New("atpg: cannot checkpoint a compacting session (compaction rewrites committed sequences)")
	}
	s.mu.Lock()
	final := s.final
	s.mu.Unlock()
	if final != nil {
		return CheckpointOf(final, s.circuit.ContentHash(), s.cfg)
	}
	res := s.track.snapshot(s.startCursor)
	if s.prefix != nil {
		stitchPrefix(res, s.prefix)
	}
	key, err := s.cfg.CacheKey()
	if err != nil {
		return nil, err // unreachable: cfg was validated at session build
	}
	// snapshot records the live cursor on the Result directly; the
	// inference CheckpointOf applies to finished Results does not see an
	// in-flight one.
	return &Checkpoint{CircuitHash: s.circuit.ContentHash(), ConfigKey: key, Cursor: res.Cursor, Result: res}, nil
}
