package atpg

import (
	"encoding/json"
	"fmt"

	"fogbuster/internal/core"
	"fogbuster/internal/logic"
	"fogbuster/internal/order"
	"fogbuster/internal/sim"
)

// Cone-set policy names accepted by Config.ConeSets.
const (
	// ConeSetsAuto picks the cheaper representation per stem (the empty
	// string means auto).
	ConeSetsAuto = "auto"
	// ConeSetsDense forces dense bitsets, the pre-compression oracle.
	ConeSetsDense = "dense"
	// ConeSetsCompressed forces interval lists for every stem.
	ConeSetsCompressed = "compressed"
)

// ConeSetPolicies lists every recognized cone-set policy, auto first.
func ConeSetPolicies() []string { return []string{ConeSetsAuto, ConeSetsDense, ConeSetsCompressed} }

// Algebra names accepted by Config.Algebra.
const (
	// AlgebraRobust is the paper's eight-valued robust algebra, the
	// default (the empty string means robust).
	AlgebraRobust = "robust"
	// AlgebraNonRobust is the paper's proposed non-robust relaxation.
	AlgebraNonRobust = "nonrobust"
)

// Order names accepted by Config.Order (see internal/order for the
// heuristics themselves).
const (
	OrderNatural     = "natural"
	OrderTopological = "topo"
	OrderSCOAP       = "scoap"
	OrderADI         = "adi"
)

// Orders lists every recognized fault-targeting order, natural first.
func Orders() []string { return []string{OrderNatural, OrderTopological, OrderSCOAP, OrderADI} }

// Algebras lists every recognized fault-model algebra.
func Algebras() []string { return []string{AlgebraRobust, AlgebraNonRobust} }

// Config selects the run parameters. The zero value reproduces the
// paper's setup: robust algebra, natural fault order, 100+100 backtrack
// limits. Every field is a flat JSON-taggable value so configurations
// can live in files and service requests; Validate (also called by New)
// reports unknown names and negative budgets as errors.
type Config struct {
	// Algebra selects the fault model: "", "robust" or "nonrobust"
	// ("non-robust" is accepted as an alias).
	Algebra string `json:"algebra,omitempty"`
	// Order selects the fault-targeting order: "", "natural", "topo",
	// "scoap" or "adi". Ordering changes which faults are explicitly
	// targeted versus credited by fault simulation, never a fault's own
	// search.
	Order string `json:"order,omitempty"`
	// LocalBacktracks is the local generator's per-fault budget; 0 means
	// the paper's 100.
	LocalBacktracks int `json:"local_backtracks,omitempty"`
	// SeqBacktracks is the sequential engine's per-fault budget, shared
	// by propagation and synchronization; 0 means the paper's 100.
	SeqBacktracks int `json:"seq_backtracks,omitempty"`
	// MaxFrames bounds propagation and synchronization depth; 0 means 32.
	MaxFrames int `json:"max_frames,omitempty"`
	// DisableFaultSim turns off the post-generation fault simulation
	// credit (every fault is then explicitly targeted).
	DisableFaultSim bool `json:"disable_fault_sim,omitempty"`
	// DisableValidation skips the independent end-to-end check of each
	// generated sequence.
	DisableValidation bool `json:"disable_validation,omitempty"`
	// StrictInit demands true synchronizing sequences from the all-X
	// power-up state instead of the default optimistic policy (see
	// EXPERIMENTS.md).
	StrictInit bool `json:"strict_init,omitempty"`
	// VariationBudget enables the paper's future-work timing refinement
	// with the given slack threshold; 0 keeps the pure robust handoff.
	VariationBudget int `json:"variation_budget,omitempty"`
	// Seed drives the random X-fill, the ADI ordering campaign and the
	// compaction splice fills: one seed, one Result, at any worker count.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the ATPG worker count: 0 uses all CPUs, a negative
	// value forces a single worker. Results are bit-identical at every
	// count.
	Workers int `json:"workers,omitempty"`
	// ScalarCredit forces the scalar reference path of the credit sweep
	// (differential-testing knob; results are identical).
	ScalarCredit bool `json:"scalar_credit,omitempty"`
	// ScalarSearch forces the scalar reference path of the
	// generation-phase search: X-fill trials confirmed one frame at a
	// time instead of 64 per machine word, decision probes scored by
	// per-lane simulation instead of one lane-parallel pass
	// (differential-testing knob; results are identical).
	ScalarSearch bool `json:"scalar_search,omitempty"`
	// FullEval forces full levelized simulation instead of the
	// event-driven cone kernels (reference oracle; results are
	// identical).
	FullEval bool `json:"full_eval,omitempty"`
	// Compact compacts the generated test set after the run
	// (reverse-order drop + overlap splicing); the statistics land in
	// Result.Compaction. A cancelled run is never compacted.
	Compact bool `json:"compact,omitempty"`
	// Broadcast enables the cross-worker detected-set broadcast: workers
	// skip faults a completed (not yet committed) sequence already
	// covers. Pure scheduling — the Result is bit-identical with the knob
	// on or off, at every worker count; only Runtime and the progress
	// events' Skipped counter change.
	Broadcast bool `json:"broadcast,omitempty"`
	// Steal replaces the shared claim counter with per-worker striped
	// position ranges plus work stealing. Pure scheduling, like
	// Broadcast: results never change.
	Steal bool `json:"steal,omitempty"`
	// ConeSets selects the representation of the per-stem cone membership
	// sets: "", "auto", "dense" or "compressed". Purely a memory/speed
	// trade; results never depend on it. Compressed or auto is what makes
	// >10k-gate circuits practical (the dense all-stems matrix is
	// O(nodes²/8) bytes).
	ConeSets string `json:"cone_sets,omitempty"`
	// MaxTargets, when positive, budgets the run to the first MaxTargets
	// positions of the targeting order; every later fault stays pending
	// unless an in-budget sequence credits it. The processed prefix is
	// bit-identical to the same prefix of an unbudgeted run.
	MaxTargets int `json:"max_targets,omitempty"`
	// Shards, when positive, makes this run one shard of a distributed
	// run split Shards ways over the targeting order; ShardIndex selects
	// which contiguous window of positions this process works
	// (0 <= ShardIndex < Shards). Shard runs defer all fault-simulation
	// credit to MergeResults — each position in the window is explicitly
	// processed and its full detection set recorded — so merging the
	// shards reproduces the single-process canonical Result byte for
	// byte. Shards is incompatible with Compact (compact the merged
	// document instead).
	Shards int `json:"shards,omitempty"`
	// ShardIndex is this run's shard number; meaningful only with Shards.
	ShardIndex int `json:"shard_index,omitempty"`
}

// Validate reports the first invalid field: an unknown algebra or order
// name, or a negative budget or depth (zero already means "use the
// default", so a negative value is always a mistake).
func (c Config) Validate() error {
	if _, err := c.algebra(); err != nil {
		return err
	}
	if _, err := order.Parse(c.Order); err != nil {
		return fmt.Errorf("atpg: %v", err)
	}
	switch {
	case c.LocalBacktracks < 0:
		return fmt.Errorf("atpg: negative local_backtracks %d", c.LocalBacktracks)
	case c.SeqBacktracks < 0:
		return fmt.Errorf("atpg: negative seq_backtracks %d", c.SeqBacktracks)
	case c.MaxFrames < 0:
		return fmt.Errorf("atpg: negative max_frames %d", c.MaxFrames)
	case c.VariationBudget < 0:
		return fmt.Errorf("atpg: negative variation_budget %d", c.VariationBudget)
	case c.MaxTargets < 0:
		return fmt.Errorf("atpg: negative max_targets %d", c.MaxTargets)
	case c.Shards < 0:
		return fmt.Errorf("atpg: negative shards %d", c.Shards)
	case c.ShardIndex < 0:
		return fmt.Errorf("atpg: negative shard_index %d", c.ShardIndex)
	case c.Shards == 0 && c.ShardIndex > 0:
		return fmt.Errorf("atpg: shard_index %d without shards", c.ShardIndex)
	case c.Shards > 0 && c.ShardIndex >= c.Shards:
		return fmt.Errorf("atpg: shard_index %d out of range for %d shards", c.ShardIndex, c.Shards)
	case c.Shards > 0 && c.Compact:
		return fmt.Errorf("atpg: shards is incompatible with compact (compact the merged result instead)")
	}
	if _, err := sim.ParseConePolicy(c.ConeSets); err != nil {
		return fmt.Errorf("atpg: %v", err)
	}
	return nil
}

// Canonical validates the configuration and returns its normal form:
// aliases resolved ("" and "non-robust" become the canonical algebra
// names), empty selectors replaced by their named defaults (natural
// order, auto cone sets) and zero budgets by the defaults they mean
// (100 backtracks, 32 frames). Two configurations with equal Canonical
// forms produce identical Results on the same circuit, which makes the
// normal form the right input for result-cache keys and request
// deduplication. The canonical form of a canonical config is itself.
func (c Config) Canonical() (Config, error) {
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	out := c
	switch c.Algebra {
	case "", AlgebraRobust:
		out.Algebra = AlgebraRobust
	default:
		out.Algebra = AlgebraNonRobust
	}
	if out.Order == "" {
		out.Order = OrderNatural
	}
	if out.LocalBacktracks == 0 {
		out.LocalBacktracks = 100
	}
	if out.SeqBacktracks == 0 {
		out.SeqBacktracks = 100
	}
	if out.MaxFrames == 0 {
		out.MaxFrames = 32
	}
	if out.ConeSets == "" {
		out.ConeSets = ConeSetsAuto
	}
	return out, nil
}

// CacheKey returns a deterministic string key for result caching: the
// compact JSON of the Canonical form with the pure-scheduling knobs
// (FullEval, ScalarCredit, ScalarSearch, Broadcast, Steal, ConeSets)
// cleared, since
// the Result — canonical JSON included — is bit-identical under every
// setting of those. Workers stays in the key because Result echoes it.
// Invalid configurations are errors.
func (c Config) CacheKey() (string, error) {
	canon, err := c.Canonical()
	if err != nil {
		return "", err
	}
	canon.FullEval = false
	canon.ScalarCredit = false
	canon.ScalarSearch = false
	canon.Broadcast = false
	canon.Steal = false
	canon.ConeSets = ""
	b, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("atpg: %w", err)
	}
	return string(b), nil
}

// runKey is the CacheKey with the shard selectors (Shards, ShardIndex)
// additionally cleared: the identity of the distributed run every shard
// belongs to. Shards of one run agree on their runKey and MergeResults
// verifies that agreement (ShardInfo.ConfigKey) before merging.
func (c Config) runKey() (string, error) {
	c.Shards = 0
	c.ShardIndex = 0
	return c.CacheKey()
}

// algebra resolves the Algebra field.
func (c Config) algebra() (*logic.Algebra, error) {
	switch c.Algebra {
	case "", AlgebraRobust:
		return logic.Robust, nil
	case AlgebraNonRobust, "non-robust":
		return logic.NonRobust, nil
	}
	return nil, fmt.Errorf("atpg: unknown algebra %q (want robust or nonrobust)", c.Algebra)
}

// engineOptions translates a validated Config into the engine options.
func (c Config) engineOptions() (core.Options, error) {
	alg, err := c.algebra()
	if err != nil {
		return core.Options{}, err
	}
	h, err := order.Parse(c.Order)
	if err != nil {
		return core.Options{}, fmt.Errorf("atpg: %v", err)
	}
	return core.Options{
		Algebra:           alg,
		LocalBacktracks:   c.LocalBacktracks,
		SeqBacktracks:     c.SeqBacktracks,
		MaxFrames:         c.MaxFrames,
		DisableFaultSim:   c.DisableFaultSim,
		DisableValidation: c.DisableValidation,
		StrictInit:        c.StrictInit,
		VariationBudget:   c.VariationBudget,
		Seed:              c.Seed,
		Workers:           c.Workers,
		Order:             h,
		ScalarCredit:      c.ScalarCredit,
		ScalarSearch:      c.ScalarSearch,
		FullEval:          c.FullEval,
		Compact:           c.Compact,
		Broadcast:         c.Broadcast,
		Steal:             c.Steal,
		ConeSets:          c.ConeSets,
		MaxTargets:        c.MaxTargets,
		DeferCredit:       c.Shards > 0,
	}, nil
}
