package atpg

import (
	"fmt"

	"fogbuster/internal/logic"
)

// AlgebraName resolves an algebra spelling to its canonical display name
// ("robust" or "non-robust"), validating it in the process.
func AlgebraName(algebra string) (string, error) {
	alg, err := Config{Algebra: algebra}.algebra()
	if err != nil {
		return "", err
	}
	return alg.Name(), nil
}

// AlgebraValues returns the labels of the eight algebra values in table
// order (the row and column headers of the paper's Tables 1 and 2).
func AlgebraValues() []string {
	out := make([]string, logic.NumValues)
	for v := logic.Value(0); v < logic.NumValues; v++ {
		out[v] = v.String()
	}
	return out
}

// TruthTable returns the 8x8 table of the named two-input gate ("and",
// "or" or "xor") under the named algebra: cell [x][y] holds the label of
// gate(x, y) with x and y indexing AlgebraValues. This regenerates the
// paper's Table 1 and its derived variants.
func TruthTable(algebra, gate string) ([][]string, error) {
	alg, err := Config{Algebra: algebra}.algebra()
	if err != nil {
		return nil, err
	}
	var op func(x, y logic.Value) logic.Value
	switch gate {
	case "and":
		op = alg.And
	case "or":
		op = alg.Or
	case "xor":
		op = alg.Xor
	default:
		return nil, fmt.Errorf("atpg: unknown gate %q (want and, or or xor)", gate)
	}
	out := make([][]string, logic.NumValues)
	for x := logic.Value(0); x < logic.NumValues; x++ {
		row := make([]string, logic.NumValues)
		for y := logic.Value(0); y < logic.NumValues; y++ {
			row[y] = op(x, y).String()
		}
		out[x] = row
	}
	return out, nil
}

// NotTable returns the inverter row under the named algebra: entry [x]
// holds the label of NOT x with x indexing AlgebraValues (the paper's
// Table 2).
func NotTable(algebra string) ([]string, error) {
	alg, err := Config{Algebra: algebra}.algebra()
	if err != nil {
		return nil, err
	}
	out := make([]string, logic.NumValues)
	for v := logic.Value(0); v < logic.NumValues; v++ {
		out[v] = alg.Not(v).String()
	}
	return out, nil
}
