package atpg

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"fogbuster/internal/core"
	"fogbuster/internal/faults"
	"fogbuster/internal/order"
)

// ShardInfo describes the targeting-order window a partial Result
// covers when it was produced by one shard of a distributed run
// (Config.Shards). Positions [Lo, Hi) of the ordered permutation belong
// to the shard and [Lo, Cursor) are committed; Total is the length of
// the whole targeted prefix (the fault universe, or Config.MaxTargets
// of a budgeted run) so MergeResults can verify the shards tile it.
type ShardInfo struct {
	// Shards and Index echo Config.Shards and Config.ShardIndex.
	Shards int `json:"shards"`
	Index  int `json:"index"`
	// Lo and Hi bound the shard's window of targeting positions.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Total is the targeted-prefix length the run was split over.
	Total int `json:"total"`
	// Cursor is the committed-prefix cursor: positions [Lo, Cursor) are
	// final. Cursor == Hi for a completed shard.
	Cursor int `json:"cursor"`
	// ConfigKey is the distributed run's identity: the Config.CacheKey
	// with the shard selectors additionally cleared. Every shard of one
	// run carries the same ConfigKey and MergeResults refuses to merge
	// parts that disagree.
	ConfigKey string `json:"config_key"`
	// Positions lists the fault index at every committed position, in
	// position order (Positions[k] is the fault targeted at position
	// Lo+k). It is the slice of the ordering permutation the merge needs
	// to replay the global credit chronology without recomputing the
	// ordering heuristic.
	Positions []int `json:"positions,omitempty"`
}

// Checkpoint is a resumable snapshot of a run: the identity of the
// circuit and configuration plus the committed Result prefix. The
// committed prefix of a run is bit-identical to the same prefix of an
// uninterrupted run (cancellation truncates, never reorders, the commit
// chronology), which is what makes resuming from the cursor sound.
// Checkpoints have a canonical JSON encoding (EncodeJSON) and round-trip
// through it.
type Checkpoint struct {
	// CircuitHash is Circuit.ContentHash of the circuit the run was on;
	// Resume refuses a different circuit.
	CircuitHash string `json:"circuit_hash"`
	// ConfigKey is the full Config.CacheKey of the run, shard selectors
	// included; Resume reconstructs the Config from it.
	ConfigKey string `json:"config_key"`
	// Cursor is the targeting position the run resumes from: positions
	// before it are committed in Result.
	Cursor int `json:"cursor"`
	// Result is the committed prefix.
	Result *Result `json:"result"`
}

// shardRange splits [0, total) into shards near-equal contiguous
// windows and returns the idx-th: ragged remainders go to the leading
// shards, so every split tiles the range exactly.
func shardRange(total, shards, idx int) (lo, hi int) {
	base, rem := total/shards, total%shards
	lo = idx*base + min(idx, rem)
	hi = lo + base
	if idx < rem {
		hi++
	}
	return lo, hi
}

// effTargets returns the targeted-prefix length of a run: the whole
// fault universe, or Config.MaxTargets of a budgeted run.
func effTargets(n int, cfg Config) int {
	if cfg.MaxTargets > 0 && cfg.MaxTargets < n {
		return cfg.MaxTargets
	}
	return n
}

// coreStatusOf is the inverse of statusOf.
func coreStatusOf(s Status) core.Status {
	switch s {
	case StatusTested:
		return core.Tested
	case StatusTestedBySim:
		return core.TestedBySim
	case StatusUntestable:
		return core.Untestable
	case StatusAborted:
		return core.Aborted
	default:
		return core.Pending
	}
}

// preloadOf converts a committed Result prefix into the engine's
// status-preload array.
func preloadOf(res *Result) []core.Status {
	out := make([]core.Status, len(res.Faults))
	for i, fr := range res.Faults {
		out[i] = coreStatusOf(fr.Status)
	}
	return out
}

// CheckpointOf builds a checkpoint from a Result returned by Run — a
// complete one, or the coherent partial Result of a cancelled run. The
// circuitHash and cfg must be the ones the session ran with (see
// Session.Checkpoint for the common path that supplies them). Compacted
// runs cannot be checkpointed: compaction rewrites committed sequences,
// so the prefix is no longer a prefix of an uninterrupted chronology.
func CheckpointOf(res *Result, circuitHash string, cfg Config) (*Checkpoint, error) {
	if res == nil {
		return nil, errors.New("atpg: checkpoint of nil result")
	}
	if cfg.Compact || res.Compaction != nil {
		return nil, errors.New("atpg: cannot checkpoint a compacted run")
	}
	key, err := cfg.CacheKey()
	if err != nil {
		return nil, err
	}
	cursor := effTargets(len(res.Faults), cfg) // complete run
	switch {
	case res.Shard != nil:
		cursor = res.Shard.Cursor
	case res.Err != nil:
		cursor = res.Cursor
	}
	return &Checkpoint{CircuitHash: circuitHash, ConfigKey: key, Cursor: cursor, Result: res}, nil
}

// Resume prepares a session that continues a checkpointed run on the
// same circuit from its cursor. The committed prefix is preloaded, the
// engine processes only positions at and after the cursor, and the
// Result of the resumed Run is bit-identical to the Result of an
// uninterrupted run — the prefix chronology is final and every fault's
// search is a pure function of its canonical index. Resuming under a
// different circuit (by content hash) or a corrupt checkpoint is an
// error.
func Resume(c *Circuit, ckpt *Checkpoint) (*Session, error) {
	if c == nil || c.c == nil {
		return nil, errors.New("atpg: nil circuit")
	}
	if ckpt == nil || ckpt.Result == nil {
		return nil, errors.New("atpg: nil checkpoint")
	}
	if got := c.ContentHash(); got != ckpt.CircuitHash {
		return nil, fmt.Errorf("atpg: checkpoint is for a different circuit (content hash %.12s, want %.12s)", ckpt.CircuitHash, got)
	}
	var cfg Config
	if err := json.Unmarshal([]byte(ckpt.ConfigKey), &cfg); err != nil {
		return nil, fmt.Errorf("atpg: corrupt checkpoint config key: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("atpg: corrupt checkpoint config key: %v", err)
	}
	if len(ckpt.Result.Faults) != c.Faults() {
		return nil, fmt.Errorf("atpg: checkpoint covers %d faults, circuit has %d", len(ckpt.Result.Faults), c.Faults())
	}
	total := effTargets(c.Faults(), cfg)
	lo, hi := 0, total
	if cfg.Shards > 0 {
		lo, hi = shardRange(total, cfg.Shards, cfg.ShardIndex)
	}
	if ckpt.Cursor < lo || ckpt.Cursor > hi {
		return nil, fmt.Errorf("atpg: checkpoint cursor %d outside the run window [%d,%d]", ckpt.Cursor, lo, hi)
	}
	if cfg.Shards > 0 {
		sh := ckpt.Result.Shard
		if sh == nil {
			return nil, errors.New("atpg: shard checkpoint carries no shard window")
		}
		if len(sh.Positions) != ckpt.Cursor-lo {
			return nil, fmt.Errorf("atpg: shard checkpoint carries %d committed positions, cursor implies %d", len(sh.Positions), ckpt.Cursor-lo)
		}
	}
	return newSession(c, cfg, ckpt)
}

// MergeResults merges the partial Results of a run's disjoint shards
// into the document an unsharded run of the same configuration
// produces, byte for byte in canonical JSON — except Runtime, which is
// zero on the merged Result (wall clock is the one non-deterministic
// field). Shard runs defer fault-simulation credit (every window
// position is explicitly processed and its full detection set
// recorded), so the merge replays the global commit chronology: walk
// positions 0..Total, take each position's outcome from the shard that
// owns it (first in argument order), keep an explicit sequence only if
// its target is still pending — exactly the single-process rule — and
// apply its recorded detections to pending faults. Overlapping parts
// (an aborted shard plus its resumed continuation) are fine; a position
// no part committed is an error naming the unaccounted range, as is any
// disagreement between parts on circuit, configuration or the fault at
// a shared position.
func MergeResults(parts ...*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, errors.New("atpg: no results to merge")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("atpg: part %d is nil", i)
		}
		if p.Shard == nil {
			return nil, fmt.Errorf("atpg: part %d is not a shard result (run with Config.Shards to defer credit)", i)
		}
		if p.Compaction != nil {
			return nil, fmt.Errorf("atpg: part %d is compacted", i)
		}
	}
	ref := parts[0]
	total := ref.Shard.Total
	for i, p := range parts {
		switch {
		case p.Circuit != ref.Circuit:
			return nil, fmt.Errorf("atpg: part %d is for circuit %q, part 0 for %q", i, p.Circuit, ref.Circuit)
		case p.Shard.ConfigKey != ref.Shard.ConfigKey:
			return nil, fmt.Errorf("atpg: part %d ran a different configuration than part 0", i)
		case p.Shard.Total != total:
			return nil, fmt.Errorf("atpg: part %d targeted %d positions, part 0 %d", i, p.Shard.Total, total)
		case len(p.Faults) != len(ref.Faults):
			return nil, fmt.Errorf("atpg: part %d covers %d faults, part 0 %d", i, len(p.Faults), len(ref.Faults))
		}
		sh := p.Shard
		if sh.Lo < 0 || sh.Cursor < sh.Lo || sh.Hi < sh.Cursor || sh.Hi > total {
			return nil, fmt.Errorf("atpg: part %d has inconsistent window lo=%d cursor=%d hi=%d total=%d", i, sh.Lo, sh.Cursor, sh.Hi, total)
		}
		if len(sh.Positions) != sh.Cursor-sh.Lo {
			return nil, fmt.Errorf("atpg: part %d carries %d committed positions, cursor implies %d", i, len(sh.Positions), sh.Cursor-sh.Lo)
		}
		for j, fr := range p.Faults {
			if fr.Fault != ref.Faults[j].Fault {
				return nil, fmt.Errorf("atpg: part %d disagrees with part 0 on fault %d (%q vs %q)", i, j, fr.Fault, ref.Faults[j].Fault)
			}
		}
	}

	// Tile the targeted prefix: owner[p] is the first part in argument
	// order that committed position p, posFault[p] the fault targeted
	// there (every part that committed p must agree).
	owner := make([]int, total)
	posFault := make([]int, total)
	for p := range owner {
		owner[p] = -1
	}
	for i, part := range parts {
		sh := part.Shard
		for k, fi := range sh.Positions {
			p := sh.Lo + k
			if fi < 0 || fi >= len(ref.Faults) {
				return nil, fmt.Errorf("atpg: part %d commits fault index %d out of range at position %d", i, fi, p)
			}
			if owner[p] < 0 {
				owner[p], posFault[p] = i, fi
				continue
			}
			if posFault[p] != fi {
				return nil, fmt.Errorf("atpg: parts %d and %d disagree on the fault at position %d (%d vs %d)", owner[p], i, p, posFault[p], fi)
			}
		}
	}
	for p := 0; p < total; p++ {
		if owner[p] >= 0 {
			continue
		}
		q := p
		for q < total && owner[q] < 0 {
			q++
		}
		return nil, fmt.Errorf("atpg: shard coverage gap: positions [%d,%d) of %d are unaccounted for", p, q, total)
	}

	// Replay the global chronology.
	out := &Result{
		Circuit: ref.Circuit, Algebra: ref.Algebra, Order: ref.Order,
		Seed: ref.Seed, Workers: ref.Workers,
		Faults: make([]FaultResult, len(ref.Faults)),
	}
	for i, fr := range ref.Faults {
		out.Faults[i] = FaultResult{Fault: fr.Fault, Status: StatusPending}
	}
	for p := 0; p < total; p++ {
		fi := posFault[p]
		if out.Faults[fi].Status != StatusPending {
			// An earlier position's sequence credited this fault; its own
			// shard outcome is discarded, exactly as the single-process
			// merge loop discards a late outcome for a credited fault.
			continue
		}
		row := parts[owner[p]].Faults[fi]
		switch row.Status {
		case StatusTested:
			if row.Seq == nil {
				return nil, fmt.Errorf("atpg: part %d marks fault %d tested without a sequence", owner[p], fi)
			}
			seq := *row.Seq
			detects := seq.Detects
			seq.Detects = nil
			out.Faults[fi].Status = StatusTested
			out.Faults[fi].Seq = &seq
			out.Tested++
			out.Explicit++
			out.Patterns += seq.Len()
			for _, d := range detects {
				if d >= 0 && d < len(out.Faults) && out.Faults[d].Status == StatusPending {
					out.Faults[d].Status = StatusTestedBySim
					out.Tested++
				}
			}
		case StatusUntestable:
			out.Faults[fi].Status = StatusUntestable
			out.Untestable++
		case StatusAborted:
			out.Faults[fi].Status = StatusAborted
			out.Aborted++
		default:
			return nil, fmt.Errorf("atpg: part %d carries no explicit outcome for fault %d at position %d (status %q); parts must come from deferred-credit shard runs", owner[p], fi, p, row.Status)
		}
	}
	for _, fr := range out.Faults {
		if fr.Status == StatusPending {
			out.Pending++
		}
	}
	for _, p := range parts {
		out.ValidationFailures += p.ValidationFailures
	}
	return out, nil
}

// stitchPrefix folds the committed prefix of a resumed run's checkpoint
// into res, which covers only the positions processed since the
// checkpoint's cursor: prefix sequences are attached to their (already
// preloaded) statuses, the counters recomputed over the union, and — in
// shard mode — the committed position lists concatenated.
func stitchPrefix(res, prefix *Result) {
	for i := range res.Faults {
		r, p := &res.Faults[i], &prefix.Faults[i]
		if r.Status == StatusPending && p.Status != StatusPending {
			r.Status, r.Seq = p.Status, p.Seq
		} else if r.Seq == nil && p.Seq != nil {
			r.Seq = p.Seq
		}
	}
	res.Tested, res.Explicit, res.Untestable, res.Aborted, res.Pending, res.Patterns = 0, 0, 0, 0, 0, 0
	for _, fr := range res.Faults {
		switch fr.Status {
		case StatusTested:
			res.Tested++
			res.Explicit++
		case StatusTestedBySim:
			res.Tested++
		case StatusUntestable:
			res.Untestable++
		case StatusAborted:
			res.Aborted++
		default:
			res.Pending++
		}
		if fr.Seq != nil {
			res.Patterns += fr.Seq.Len()
		}
	}
	res.ValidationFailures += prefix.ValidationFailures
	if res.Shard != nil && prefix.Shard != nil {
		pos := make([]int, 0, len(prefix.Shard.Positions)+len(res.Shard.Positions))
		pos = append(pos, prefix.Shard.Positions...)
		pos = append(pos, res.Shard.Positions...)
		res.Shard.Positions = pos
	}
}

// tracker accumulates the committed prefix of a live run so
// Session.Checkpoint can snapshot it mid-flight. Engine events are
// staged in a buffer and folded into the published state only at
// progress boundaries — a position's classification, sequence and
// credit events all precede its progress event — so a snapshot never
// observes a torn position.
type tracker struct {
	c         *Circuit
	cfg       Config
	detectIdx map[faults.Delay]int // shard mode only

	buf []core.Event // staged since the last progress event; Run goroutine only

	mu       sync.Mutex
	cursor   int // last committed position boundary; -1 until the first
	status   []Status
	seqs     []*Sequence
	order    []int // fault index of each committed position, in commit order
	patterns int
	valFail  int
	names    []string // lazily resolved fault names
}

func newTracker(c *Circuit, cfg Config) *tracker {
	n := c.Faults()
	t := &tracker{c: c, cfg: cfg, cursor: -1, status: make([]Status, n), seqs: make([]*Sequence, n)}
	for i := range t.status {
		t.status[i] = StatusPending
	}
	if cfg.Shards > 0 {
		all := faults.AllDelay(c.c)
		t.detectIdx = make(map[faults.Delay]int, len(all))
		for i, f := range all {
			t.detectIdx[f] = i
		}
	}
	return t
}

// observe consumes one engine event on the Run goroutine.
func (t *tracker) observe(ev core.Event) {
	if ev.Kind != core.EventProgress {
		t.buf = append(t.buf, ev)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.buf {
		switch e.Kind {
		case core.EventFaultClassified:
			t.status[e.Index] = statusOf(e.Status)
			t.valFail += e.ValFail
			t.order = append(t.order, e.Index)
		case core.EventSequenceGenerated:
			t.seqs[e.Index] = sequenceOf(t.c.c, e.Seq, t.detectIdx)
			t.patterns += e.Seq.Len()
		case core.EventCreditApplied:
			t.status[e.Index] = StatusTestedBySim
		}
	}
	t.buf = t.buf[:0]
	t.cursor = ev.Done
}

// snapshot builds the committed-prefix Result as of the last progress
// boundary. startCursor is the position the run began at (a resumed or
// shard run starts mid-permutation); it is the cursor when no position
// has committed yet.
func (t *tracker) snapshot(startCursor int) *Result {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.names == nil {
		all := faults.AllDelay(t.c.c)
		t.names = make([]string, len(all))
		for i, f := range all {
			t.names[i] = f.Name(t.c.c)
		}
	}
	cursor := t.cursor
	if cursor < 0 {
		cursor = startCursor
	}
	alg, _ := t.cfg.algebra() // cfg was validated at session build
	h, _ := order.Parse(t.cfg.Order)
	res := &Result{
		Circuit: t.c.c.Name, Algebra: alg.Name(), Order: h.Name(),
		Seed: t.cfg.Seed, Workers: t.cfg.Workers,
		ValidationFailures: t.valFail,
		Patterns:           t.patterns,
		Faults:             make([]FaultResult, len(t.status)),
	}
	for i, st := range t.status {
		res.Faults[i] = FaultResult{Fault: t.names[i], Status: st, Seq: t.seqs[i]}
		switch st {
		case StatusTested:
			res.Tested++
			res.Explicit++
		case StatusTestedBySim:
			res.Tested++
		case StatusUntestable:
			res.Untestable++
		case StatusAborted:
			res.Aborted++
		default:
			res.Pending++
		}
	}
	res.Cursor = cursor
	if t.cfg.Shards > 0 {
		total := effTargets(len(t.status), t.cfg)
		lo, hi := shardRange(total, t.cfg.Shards, t.cfg.ShardIndex)
		key, _ := t.cfg.runKey()
		res.Shard = &ShardInfo{
			Shards: t.cfg.Shards, Index: t.cfg.ShardIndex,
			Lo: lo, Hi: hi, Total: total, Cursor: cursor,
			ConfigKey: key,
			Positions: append([]int(nil), t.order...),
		}
	}
	return res
}
