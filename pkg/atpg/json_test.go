package atpg

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// fixedResult builds a fully-populated Result independent of any run, so
// the golden encoding below pins the wire format itself.
func fixedResult() *Result {
	return &Result{
		Circuit: "s27", Algebra: "robust", Order: "natural",
		Seed: 42, Workers: 2,
		Tested: 2, Explicit: 1, Untestable: 1, Aborted: 0, Pending: 1,
		Patterns: 5, Runtime: 1500, ValidationFailures: 0,
		Faults: []FaultResult{
			{Fault: "G10->G11/StR", Status: StatusTested, Seq: &Sequence{
				Fault:      "G10->G11/StR",
				Sync:       []string{"X01X"},
				V1:         "X01X",
				V2:         "X11X",
				Prop:       []string{"001X", "1011"},
				ObservePO:  0,
				ObservePPO: -1,
				Assumed:    "XX0",
				Dropped:    true,
				Follows:    "G14/StF",
			}},
			{Fault: "G14/StF", Status: StatusTestedBySim},
			{Fault: "G5/StR", Status: StatusUntestable},
			{Fault: "G6/StR", Status: StatusPending},
		},
		Compaction: &Compaction{
			Sequences: 3, Kept: 2, Dropped: 1,
			PatternsBefore: 12, PatternsAfter: 8,
			Splices: 1, SplicedFrames: 2, Complete: true,
		},
	}
}

// goldenResult is the pinned canonical encoding of fixedResult. Any
// change here is a breaking change to the public wire format.
const goldenResult = `{
  "circuit": "s27",
  "algebra": "robust",
  "order": "natural",
  "seed": 42,
  "workers": 2,
  "tested": 2,
  "explicit": 1,
  "untestable": 1,
  "aborted": 0,
  "pending": 1,
  "patterns": 5,
  "runtime_ns": 1500,
  "faults": [
    {
      "fault": "G10->G11/StR",
      "status": "tested",
      "seq": {
        "fault": "G10->G11/StR",
        "sync": [
          "X01X"
        ],
        "v1": "X01X",
        "v2": "X11X",
        "prop": [
          "001X",
          "1011"
        ],
        "observe_po": 0,
        "observe_ppo": -1,
        "assumed": "XX0",
        "dropped": true,
        "follows": "G14/StF"
      }
    },
    {
      "fault": "G14/StF",
      "status": "tested_by_sim"
    },
    {
      "fault": "G5/StR",
      "status": "untestable"
    },
    {
      "fault": "G6/StR",
      "status": "pending"
    }
  ],
  "compaction": {
    "sequences": 3,
    "kept": 2,
    "dropped": 1,
    "patterns_before": 12,
    "patterns_after": 8,
    "splices": 1,
    "spliced_frames": 2,
    "complete": true
  }
}`

// TestResultGoldenJSON pins the canonical encoding byte for byte and
// proves the round trip restores the identical value.
func TestResultGoldenJSON(t *testing.T) {
	in := fixedResult()
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if string(data) != goldenResult+"\n" {
		t.Fatalf("canonical encoding drifted:\n--- got\n%s\n--- want\n%s", data, goldenResult)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&out, in) {
		t.Fatalf("round trip changed the value:\n in %+v\nout %+v", in, &out)
	}
}

// TestResultErrRoundTrip: the context sentinel errors survive the wire
// as the same values, and arbitrary errors survive by message.
func TestResultErrRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   error
		want error
	}{
		{nil, nil},
		{context.Canceled, context.Canceled},
		{context.DeadlineExceeded, context.DeadlineExceeded},
		{errors.New("disk on fire"), errors.New("disk on fire")},
	} {
		r := &Result{Circuit: "x", Err: tc.in}
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var out Result
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		switch {
		case tc.want == nil:
			if out.Err != nil {
				t.Errorf("nil Err round-tripped to %v", out.Err)
			}
		case tc.want == context.Canceled || tc.want == context.DeadlineExceeded:
			if out.Err != tc.want {
				t.Errorf("sentinel %v round-tripped to %v", tc.want, out.Err)
			}
		default:
			if out.Err == nil || out.Err.Error() != tc.want.Error() {
				t.Errorf("error %v round-tripped to %v", tc.want, out.Err)
			}
		}
	}
}

// TestSequenceRoundTrip: a Sequence alone is a stable document too.
func TestSequenceRoundTrip(t *testing.T) {
	in := &Sequence{
		Fault: "a/StR", Sync: []string{"01X"}, V1: "001", V2: "011",
		Prop: []string{"111"}, ObservePO: 2, ObservePPO: -1,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Sequence
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&out, in) {
		t.Fatalf("round trip changed the value:\n in %+v\nout %+v", in, &out)
	}
	if in.Len() != 4 || len(in.Frames()) != 4 {
		t.Fatalf("Len/Frames inconsistent: %d, %d", in.Len(), len(in.Frames()))
	}
}

// TestLiveResultRoundTrip: a Result produced by a real run round-trips
// exactly (the end-to-end check behind the golden value above).
func TestLiveResultRoundTrip(t *testing.T) {
	c, err := Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	ses, err := New(c, Config{Compact: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&out, res) {
		t.Fatal("live result round trip changed the value")
	}
	again, err := json.Marshal(&out)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encoding is not canonical")
	}
}
