package atpg

import (
	"strings"
	"testing"
)

// TestScaleOutFacadeInvariance pins the tentpole contract through the
// public API: the canonical Result JSON with the broadcast and stealing
// knobs on — separately, combined, and combined with compressed cone
// sets — is byte-identical to the stock serial run at workers 1, 4 and
// 16. The knobs are pure scheduling; the wire format consumers read
// cannot tell they were ever on.
func TestScaleOutFacadeInvariance(t *testing.T) {
	c := mustBenchmark(t, "s298")
	base := canonicalBytes(t, mustRunTest(t, c, Config{Workers: -1}))
	workerCounts := []int{1, 4, 16}
	if testing.Short() {
		// The race job runs with -short: keep the 16-worker stress,
		// trim the sweep.
		workerCounts = []int{16}
	}
	for _, workers := range workerCounts {
		for _, cfg := range []Config{
			{Workers: workers, Broadcast: true},
			{Workers: workers, Steal: true},
			{Workers: workers, Broadcast: true, Steal: true},
			{Workers: workers, Broadcast: true, Steal: true, ConeSets: ConeSetsCompressed},
		} {
			got := canonicalBytes(t, mustRunTest(t, c, cfg))
			if got != base {
				t.Errorf("workers=%d broadcast=%v steal=%v cone_sets=%q: canonical JSON diverged from the stock serial run",
					workers, cfg.Broadcast, cfg.Steal, cfg.ConeSets)
			}
		}
	}
}

// TestMaxTargetsFacade pins the budgeted-run surface: Config.MaxTargets
// leaves faults pending, the canonical JSON of the budgeted run is
// worker-count and knob invariant, and the budget composes with
// broadcast and stealing.
func TestMaxTargetsFacade(t *testing.T) {
	c := mustBenchmark(t, "s298")
	k := c.Faults() / 4
	base := mustRunTest(t, c, Config{Workers: -1, MaxTargets: k})
	if base.Pending == 0 {
		t.Fatalf("MaxTargets=%d of %d faults left nothing pending", k, c.Faults())
	}
	if base.Err != nil {
		t.Fatalf("budgeted run reported error %v; a budget is not a cancellation", base.Err)
	}
	want := canonicalBytes(t, base)
	for _, workers := range []int{4, 16} {
		got := canonicalBytes(t, mustRunTest(t, c, Config{Workers: workers, MaxTargets: k, Broadcast: true, Steal: true}))
		if got != want {
			t.Errorf("workers=%d: budgeted canonical JSON diverged from the serial budgeted run", workers)
		}
	}
}

// TestScaleOutConfigValidation pins the knob surface's error paths:
// unknown cone-set policies and negative budgets are construction
// errors, never silent fallbacks.
func TestScaleOutConfigValidation(t *testing.T) {
	c := mustBenchmark(t, "s27")
	if _, err := New(c, Config{ConeSets: "roaring"}); err == nil || !strings.Contains(err.Error(), "cone-set") {
		t.Errorf("ConeSets=roaring: err = %v, want a cone-set policy error", err)
	}
	if _, err := New(c, Config{MaxTargets: -1}); err == nil || !strings.Contains(err.Error(), "max_targets") {
		t.Errorf("MaxTargets=-1: err = %v, want a max_targets error", err)
	}
	for _, p := range ConeSetPolicies() {
		if _, err := New(c, Config{ConeSets: p}); err != nil {
			t.Errorf("ConeSets=%q rejected: %v", p, err)
		}
	}
}

// TestLargeBenchmarkSurface pins the industrial-scale circuit surface:
// the large set resolves through Benchmark, stays out of Benchmarks()
// (the Table 3 experiment set), matches its calibrated fault universe,
// and its compressed cone sets undercut the dense matrix by an order of
// magnitude — the property that makes these circuits runnable at all.
func TestLargeBenchmarkSurface(t *testing.T) {
	large := LargeBenchmarks()
	if len(large) != 2 || large[0].Name != "s15850" || large[1].Name != "s38584" {
		t.Fatalf("LargeBenchmarks() = %+v", large)
	}
	for _, b := range Benchmarks() {
		if b.Name == "s15850" || b.Name == "s38584" {
			t.Errorf("Benchmarks() leaked large circuit %s into the Table 3 set", b.Name)
		}
	}
	c := mustBenchmark(t, "s15850")
	if got, want := c.Faults(), 2*15850; got != want {
		t.Errorf("s15850 faults = %d, want %d", got, want)
	}
	dense, auto, err := c.ConeMemory(ConeSetsAuto)
	if err != nil {
		t.Fatal(err)
	}
	if auto*10 > dense {
		t.Errorf("auto cone sets use %d of %d dense bytes; expected <10%% on s15850", auto, dense)
	}
	if _, _, err := c.ConeMemory("junk"); err == nil {
		t.Error("ConeMemory accepted an unknown policy")
	}
}

// TestProgressCountersSurface pins the event plumbing: with the knobs
// off every progress event carries zero Skipped/Stolen (the stream stays
// deterministic); with broadcast+steal on at 16 workers the final
// progress event's counters agree with the run's Result counters.
func TestProgressCountersSurface(t *testing.T) {
	c := mustBenchmark(t, "s27")

	ses, err := New(c, Config{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	var last Event
	ses.OnEvent(func(ev Event) {
		if ev.Kind == EventProgress {
			if ev.Skipped != 0 || ev.Stolen != 0 {
				t.Errorf("stock run progress carried skipped=%d stolen=%d", ev.Skipped, ev.Stolen)
			}
			last = ev
		}
	})
	if _, err := ses.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	if last.Done != last.Total || last.Total == 0 {
		t.Fatalf("final progress %d/%d", last.Done, last.Total)
	}

	ses, err = New(c, Config{Workers: 16, Broadcast: true, Steal: true})
	if err != nil {
		t.Fatal(err)
	}
	ses.OnEvent(func(ev Event) {
		if ev.Kind == EventProgress {
			last = ev
		}
	})
	res, err := ses.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if want := res.BroadcastSkips - res.BroadcastMisses; last.Skipped != want {
		t.Errorf("final progress skipped=%d, result says %d-%d", last.Skipped, res.BroadcastSkips, res.BroadcastMisses)
	}
	if last.Stolen != res.Steals {
		t.Errorf("final progress stolen=%d, result says %d", last.Stolen, res.Steals)
	}
}
