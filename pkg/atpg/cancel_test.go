package atpg

import (
	"context"
	"testing"
	"time"
)

// coherent fails the test unless the partial result's books balance:
// every fault is accounted for exactly once and the aggregate counters
// match the per-fault statuses.
func coherent(t *testing.T, res *Result) {
	t.Helper()
	counts := map[Status]int{}
	for _, fr := range res.Faults {
		counts[fr.Status]++
		if (fr.Status == StatusTested) != (fr.Seq != nil) {
			t.Fatalf("%s: status %s with seq=%v", fr.Fault, fr.Status, fr.Seq != nil)
		}
	}
	if res.Explicit != counts[StatusTested] ||
		res.Tested != counts[StatusTested]+counts[StatusTestedBySim] ||
		res.Untestable != counts[StatusUntestable] ||
		res.Aborted != counts[StatusAborted] ||
		res.Pending != counts[StatusPending] {
		t.Fatalf("counters disagree with statuses: %+v vs tested=%d explicit=%d untestable=%d aborted=%d pending=%d",
			counts, res.Tested, res.Explicit, res.Untestable, res.Aborted, res.Pending)
	}
	if res.Classified()+res.Pending != len(res.Faults) {
		t.Fatalf("classified %d + pending %d != %d faults", res.Classified(), res.Pending, len(res.Faults))
	}
}

// TestRunPreCancelled: a context cancelled before Run returns
// immediately with the fully-pending partial result and Err == ctx.Err().
func TestRunPreCancelled(t *testing.T) {
	c, err := Benchmark("s298")
	if err != nil {
		t.Fatal(err)
	}
	ses, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := ses.Run(ctx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("pre-cancelled Run took %v", elapsed)
	}
	if err != context.Canceled || res == nil || res.Err != context.Canceled {
		t.Fatalf("Run = (%v, %v), want partial result with context.Canceled", res, err)
	}
	coherent(t, res)
	if res.Pending != len(res.Faults) {
		t.Fatalf("pre-cancelled run classified %d faults", res.Classified())
	}
}

// TestCancellationBoundedAndCoherent: cancelling mid-run on the largest
// benchmark returns within a bounded time with a coherent partial
// summary whose Err is the context error.
func TestCancellationBoundedAndCoherent(t *testing.T) {
	c, err := Benchmark("s1238")
	if err != nil {
		t.Fatal(err)
	}
	ses, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := ses.Run(ctx)
	elapsed := time.Since(start)
	// The promptness bound is one in-flight search alternative plus one
	// credit sweep per worker; 30s is orders of magnitude above both.
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled Run took %v", elapsed)
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("Run error = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || res.Err != context.DeadlineExceeded {
		t.Fatalf("partial result missing the context error: %+v", res)
	}
	coherent(t, res)
	if res.Pending == 0 {
		t.Fatal("50ms deadline on s1238 classified the complete universe — cancellation untested")
	}
}

// TestCancelledPrefixMatchesFullRun pins the partial-determinism
// contract: every fault a cancelled run classified has exactly the
// status the uncancelled run assigns, because the merge loop commits the
// same deterministic chronology and cancellation only truncates it.
func TestCancelledPrefixMatchesFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full s641 reference run in -short mode")
	}
	c, err := Benchmark("s641")
	if err != nil {
		t.Fatal(err)
	}
	full := mustRunTest(t, c, Config{})

	for _, timeout := range []time.Duration{20 * time.Millisecond, 200 * time.Millisecond} {
		ses, err := New(c, Config{})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		partial, runErr := ses.Run(ctx)
		cancel()
		if runErr == nil {
			// The machine finished inside the deadline; the prefix check
			// degenerates to full equality below.
			t.Logf("run completed within %v", timeout)
		}
		coherent(t, partial)
		for i, fr := range partial.Faults {
			if fr.Status == StatusPending {
				continue
			}
			if want := full.Faults[i]; fr.Status != want.Status {
				t.Fatalf("timeout %v: %s = %s, full run says %s", timeout, fr.Fault, fr.Status, want.Status)
			}
		}
	}
}

// mustRunTest executes one complete session.
func mustRunTest(t *testing.T, c *Circuit, cfg Config) *Result {
	t.Helper()
	ses, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}
