package atpg

import (
	"bytes"
	"testing"
)

// canonicalBytes strips the two run-dependent fields (wall clock and the
// echoed worker count) and returns the canonical encoding.
func canonicalBytes(t *testing.T, res *Result) string {
	t.Helper()
	cp := *res
	cp.Runtime = 0
	cp.Workers = 0
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, &cp); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFacadeWorkerInvariance pins the determinism contract through the
// public API: the canonical JSON of a Result — per-fault statuses,
// sequences, detects-derived credit, compaction, everything — is
// bit-identical at every worker count. This is the §4 worker-count
// invariance restated over the wire format consumers actually read.
func TestFacadeWorkerInvariance(t *testing.T) {
	for _, tc := range []struct {
		circuit string
		cfg     Config
	}{
		{"s27", Config{Seed: 42}},
		{"s298", Config{}},
		{"s298", Config{Order: OrderADI, Compact: true, Seed: 7}},
		{"s386", Config{Algebra: AlgebraNonRobust}},
	} {
		base := ""
		for _, workers := range []int{-1, 2, 7} {
			cfg := tc.cfg
			cfg.Workers = workers
			res := mustRunTest(t, mustBenchmark(t, tc.circuit), cfg)
			got := canonicalBytes(t, res)
			if base == "" {
				base = got
			} else if got != base {
				t.Errorf("%s %+v: Workers=%d diverged from the serial run", tc.circuit, tc.cfg, workers)
			}
		}
	}
}

// mustBenchmark resolves a built-in circuit.
func mustBenchmark(t *testing.T, name string) *Circuit {
	t.Helper()
	c, err := Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
