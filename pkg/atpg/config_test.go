package atpg

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestValidateRejectsBadConfigs pins the errors-over-panics contract:
// every malformed field is a construction error, from Validate and from
// New alike.
func TestValidateRejectsBadConfigs(t *testing.T) {
	c, err := Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"unknown algebra":          {Algebra: "heroic"},
		"unknown order":            {Order: "bogus"},
		"negative local budget":    {LocalBacktracks: -1},
		"negative seq budget":      {SeqBacktracks: -7},
		"negative max frames":      {MaxFrames: -2},
		"negative variation":       {VariationBudget: -3},
		"misspelled builtin order": {Order: "SCOAP"},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %s", name)
		}
		if _, err := New(c, cfg); err == nil {
			t.Errorf("New accepted %s", name)
		}
	}
}

// TestValidateAcceptsCanonicalNames: every listed algebra and order
// validates, as do the zero value and the non-robust alias.
func TestValidateAcceptsCanonicalNames(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero Config invalid: %v", err)
	}
	for _, alg := range Algebras() {
		for _, ord := range Orders() {
			cfg := Config{Algebra: alg, Order: ord, Workers: -1}
			if err := cfg.Validate(); err != nil {
				t.Errorf("Validate(%s, %s): %v", alg, ord, err)
			}
		}
	}
	if err := (Config{Algebra: "non-robust"}).Validate(); err != nil {
		t.Fatalf("non-robust alias invalid: %v", err)
	}
}

// TestConfigJSONTags: a Config round-trips through its flat JSON form,
// so configurations can live in files and service requests.
func TestConfigJSONTags(t *testing.T) {
	in := Config{
		Algebra: AlgebraNonRobust, Order: OrderADI,
		LocalBacktracks: 7, SeqBacktracks: 9, MaxFrames: 11,
		DisableFaultSim: true, StrictInit: true, VariationBudget: 2,
		Seed: -42, Workers: 3, FullEval: true, Compact: true,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"algebra"`, `"order"`, `"local_backtracks"`, `"seed"`, `"workers"`, `"compact"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("encoded Config missing %s: %s", key, data)
		}
	}
	var out Config
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("Config round trip changed the value:\n in %+v\nout %+v", in, out)
	}
}

// TestBenchmarkNames: the built-in set resolves by name, parameterized
// families parse their size, and unknown names are errors.
func TestBenchmarkNames(t *testing.T) {
	for _, b := range Benchmarks() {
		c, err := Benchmark(b.Name)
		if err != nil {
			t.Fatalf("Benchmark(%s): %v", b.Name, err)
		}
		if c.Name() != b.Name {
			t.Errorf("Benchmark(%s) named %q", b.Name, c.Name())
		}
	}
	for _, name := range []string{"c17", "rca4", "shift8"} {
		if _, err := Benchmark(name); err != nil {
			t.Errorf("Benchmark(%s): %v", name, err)
		}
	}
	for _, name := range []string{"s9999", "rca0", "rca999", "shiftX", ""} {
		if _, err := Benchmark(name); err == nil {
			t.Errorf("Benchmark(%s) accepted", name)
		}
	}
}

// TestParseBenchRejectsGarbage: malformed netlist text is an error (no
// panic), the satellite audit of the parse entry points the tools use.
func TestParseBenchRejectsGarbage(t *testing.T) {
	for name, src := range map[string]string{
		"undefined signal": "INPUT(A)\nOUTPUT(Z)\nZ = AND(A, NOPE)\n",
		"bad gate":         "INPUT(A)\nOUTPUT(Z)\nZ = FROB(A)\n",
		"empty":            "",
	} {
		if _, err := ParseBench(name, src); err == nil {
			t.Errorf("ParseBench accepted %s", name)
		}
	}
	if _, err := LoadBench("/nonexistent/x.bench"); err == nil {
		t.Error("LoadBench accepted a missing file")
	}
}

// TestSessionSingleUse: a second Run reports ErrAlreadyRun.
func TestSessionSingleUse(t *testing.T) {
	c, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	ses, err := New(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Run(t.Context()); err != ErrAlreadyRun {
		t.Fatalf("second Run = %v, want ErrAlreadyRun", err)
	}
}
