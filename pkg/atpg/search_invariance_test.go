package atpg

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// readBenchS27 loads the distribution-format s27 through the ReadBench
// path, so the invariance below also covers file-parsed circuits.
func readBenchS27(t *testing.T) *Circuit {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "s27.bench"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := ReadBench("s27", f)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBatchedSearchFacadeInvariance restates the generation-phase
// batching contract over the wire format consumers read: the canonical
// JSON of a Result is byte-identical between the batched default and the
// scalar search oracle (Config.ScalarSearch) at 1, 4 and 16 workers —
// on a built-in circuit and on the ReadBench path.
func TestBatchedSearchFacadeInvariance(t *testing.T) {
	circuits := []struct {
		name string
		c    *Circuit
	}{
		{"s208", mustBenchmark(t, "s208")},
		{"s27-file", readBenchS27(t)},
	}
	for _, tc := range circuits {
		base := ""
		for _, workers := range []int{1, 4, 16} {
			for _, scalar := range []bool{false, true} {
				res := mustRunTest(t, tc.c, Config{Workers: workers, ScalarSearch: scalar, Seed: 5})
				got := canonicalBytes(t, res)
				if base == "" {
					base = got
				} else if got != base {
					t.Errorf("%s: Workers=%d ScalarSearch=%v diverged from the baseline run",
						tc.name, workers, scalar)
				}
			}
		}
	}
}

// TestBatchedSearchCancelInvariance is the cancel-mid-search variant:
// cancelling as soon as the first progress commits must leave a
// coherent partial result whose classified prefix matches the full run
// fault for fault — in both search modes, so an interrupted batched
// search can never commit anything its scalar twin would not.
func TestBatchedSearchCancelInvariance(t *testing.T) {
	c := mustBenchmark(t, "s641")
	full := mustRunTest(t, c, Config{Workers: 2})
	for _, scalar := range []bool{false, true} {
		ses, err := New(c, Config{Workers: 2, ScalarSearch: scalar})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		ses.OnEvent(func(Event) { once.Do(cancel) })
		res, err := ses.Run(ctx)
		cancel()
		if err != nil && err != context.Canceled {
			t.Fatalf("ScalarSearch=%v: Run returned %v", scalar, err)
		}
		if res == nil {
			t.Fatalf("ScalarSearch=%v: no partial result", scalar)
		}
		coherent(t, res)
		for i, fr := range res.Faults {
			if fr.Status == StatusPending {
				continue
			}
			if want := full.Faults[i].Status; fr.Status != want {
				t.Fatalf("ScalarSearch=%v: %s committed as %s, full run says %s",
					scalar, fr.Fault, fr.Status, want)
			}
		}
	}
}
