package atpg

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// runShard runs one shard of a distributed run.
func runShard(t *testing.T, c *Circuit, cfg Config, shards, idx int) *Result {
	t.Helper()
	cfg.Shards, cfg.ShardIndex = shards, idx
	return mustRunTest(t, c, cfg)
}

// TestMergeDeterminismMatrix pins the tentpole contract: MergeResults
// over every tested shard split — even splits, ragged splits that do
// not divide the fault universe, budgeted and reordered runs — produces
// canonical JSON byte-identical to the unsharded single-process run.
func TestMergeDeterminismMatrix(t *testing.T) {
	for _, tc := range []struct {
		circuit string
		cfg     Config
		splits  []int
	}{
		// 50 faults: 4- and 8-way splits are ragged.
		{"s27", Config{Seed: 42}, []int{1, 2, 4, 8}},
		{"s27", Config{Algebra: AlgebraNonRobust, Workers: 2}, []int{2}},
		// Ordering heuristic plus a target budget: shards tile the
		// budgeted prefix of the permutation, not the raw fault order.
		{"s27", Config{Order: OrderADI, MaxTargets: 30, Seed: 7}, []int{4}},
		{"s298", Config{Workers: 3}, []int{2}},
	} {
		direct := canonicalBytes(t, mustRunTest(t, mustBenchmark(t, tc.circuit), tc.cfg))
		for _, shards := range tc.splits {
			c := mustBenchmark(t, tc.circuit)
			parts := make([]*Result, shards)
			for i := range parts {
				parts[i] = runShard(t, c, tc.cfg, shards, i)
			}
			merged, err := MergeResults(parts...)
			if err != nil {
				t.Fatalf("%s %+v shards=%d: merge: %v", tc.circuit, tc.cfg, shards, err)
			}
			if got := canonicalBytes(t, merged); got != direct {
				t.Errorf("%s %+v: %d-way merge diverged from the unsharded run", tc.circuit, tc.cfg, shards)
			}
		}
	}
}

// cancelAfterProgress cancels the run after n committed positions and
// returns the partial result (res.Err must be non-nil).
func runCancelled(t *testing.T, ses *Session, n int) *Result {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	ses.OnEvent(func(ev Event) {
		if ev.Kind == EventProgress {
			if seen++; seen == n {
				cancel()
			}
		}
	})
	res, err := ses.Run(ctx)
	if err == nil {
		t.Fatal("run completed despite cancellation")
	}
	if res == nil || res.Err == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	return res
}

// TestMergeAbortedThenResumedShard kills one shard mid-run, resumes it
// from its checkpoint, and proves the merge of the resumed part with
// the untouched parts is still byte-identical to the unsharded run —
// the failure model of the coordinator in miniature.
func TestMergeAbortedThenResumedShard(t *testing.T) {
	cfg := Config{Seed: 42}
	c := mustBenchmark(t, "s27")
	direct := canonicalBytes(t, mustRunTest(t, c, cfg))

	shardCfg := cfg
	shardCfg.Shards, shardCfg.ShardIndex = 2, 1
	ses, err := New(c, shardCfg)
	if err != nil {
		t.Fatal(err)
	}
	partial := runCancelled(t, ses, 5)
	if sh := partial.Shard; sh == nil || sh.Cursor >= sh.Hi {
		t.Fatalf("shard not interrupted: %+v", partial.Shard)
	}
	ckpt, err := ses.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the checkpoint through its wire form: resume must work
	// from bytes, not shared memory.
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, ckpt); err != nil {
		t.Fatal(err)
	}
	var wire Checkpoint
	if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
		t.Fatal(err)
	}
	res2, err := Resume(c, &wire)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := res2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	other := runShard(t, c, cfg, 2, 0)

	merged, err := MergeResults(other, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalBytes(t, merged); got != direct {
		t.Error("merge with an aborted-then-resumed shard diverged from the unsharded run")
	}

	// The aborted partial may also be passed alongside its continuation
	// (the coordinator does when it kept both): overlap is benign.
	merged2, err := MergeResults(other, partial, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalBytes(t, merged2); got != direct {
		t.Error("merge with overlapping partial+resumed parts diverged from the unsharded run")
	}
}

// TestCheckpointResumeUnsharded proves checkpoint/resume of an ordinary
// (unsharded) run: cancel mid-flight, checkpoint the partial result,
// resume from its wire form, and the final Result is byte-identical to
// an uninterrupted run.
func TestCheckpointResumeUnsharded(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 42},
		{Order: OrderADI, Seed: 7, Workers: 2},
	} {
		c := mustBenchmark(t, "s27")
		direct := canonicalBytes(t, mustRunTest(t, c, cfg))

		ses, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		partial := runCancelled(t, ses, 9)
		ckpt, err := CheckpointOf(partial, c.ContentHash(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ckpt.Cursor == 0 || ckpt.Cursor >= c.Faults() {
			t.Fatalf("implausible checkpoint cursor %d", ckpt.Cursor)
		}
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, ckpt); err != nil {
			t.Fatal(err)
		}
		var wire Checkpoint
		if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
			t.Fatal(err)
		}
		ses2, err := Resume(c, &wire)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := ses2.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := canonicalBytes(t, resumed); got != direct {
			t.Errorf("%+v: resumed run diverged from the uninterrupted run", cfg)
		}
	}
}

// TestLiveCheckpointResume takes Session.Checkpoint mid-run — not from
// a returned partial result — resumes from it, and requires the same
// byte-identity. This is the path the service's periodic snapshots use.
func TestLiveCheckpointResume(t *testing.T) {
	cfg := Config{Seed: 42}
	c := mustBenchmark(t, "s27")
	direct := canonicalBytes(t, mustRunTest(t, c, cfg))

	ses, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ckpt *Checkpoint
	seen := 0
	ses.OnEvent(func(ev Event) {
		if ev.Kind == EventProgress {
			if seen++; seen == 7 {
				// The tracker folded this commit in before the callback
				// fired, so the snapshot covers exactly 7 positions.
				var err error
				if ckpt, err = ses.Checkpoint(); err != nil {
					t.Error(err)
				}
				cancel()
			}
		}
	})
	if _, err := ses.Run(ctx); err == nil {
		t.Fatal("run completed despite cancellation")
	}
	if ckpt == nil {
		t.Fatal("no mid-run checkpoint taken")
	}
	if ckpt.Cursor != 7 {
		t.Fatalf("mid-run checkpoint cursor = %d, want 7", ckpt.Cursor)
	}
	ses2, err := Resume(c, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ses2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalBytes(t, resumed); got != direct {
		t.Error("resume from a live mid-run checkpoint diverged from the uninterrupted run")
	}
}

// TestMergeResultsErrors pins the failure modes: a coverage gap names
// the unaccounted range, ordinary results are rejected, and shards of
// different runs do not merge.
func TestMergeResultsErrors(t *testing.T) {
	cfg := Config{Seed: 42}
	c := mustBenchmark(t, "s27")

	part0 := runShard(t, c, cfg, 2, 0)
	part1 := runShard(t, c, cfg, 2, 1)

	if _, err := MergeResults(part0); err == nil || !strings.Contains(err.Error(), "unaccounted") {
		t.Errorf("missing shard: err = %v, want coverage gap naming the unaccounted range", err)
	}
	if _, err := MergeResults(); err == nil {
		t.Error("empty merge succeeded")
	}
	plain := mustRunTest(t, c, cfg)
	if _, err := MergeResults(plain); err == nil || !strings.Contains(err.Error(), "not a shard result") {
		t.Errorf("plain result: err = %v, want shard-result rejection", err)
	}
	otherCfg := cfg
	otherCfg.Seed = 43
	foreign := runShard(t, c, otherCfg, 2, 1)
	if _, err := MergeResults(part0, foreign); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Errorf("mixed configs: err = %v, want configuration mismatch", err)
	}
	_ = part1
}

// TestResumeErrors pins Resume's validation: wrong circuit, corrupt
// key, nil inputs.
func TestResumeErrors(t *testing.T) {
	cfg := Config{Seed: 42}
	c := mustBenchmark(t, "s27")
	ses, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	partial := runCancelled(t, ses, 5)
	ckpt, err := CheckpointOf(partial, c.ContentHash(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(mustBenchmark(t, "s298"), ckpt); err == nil || !strings.Contains(err.Error(), "different circuit") {
		t.Errorf("foreign circuit: err = %v", err)
	}
	bad := *ckpt
	bad.ConfigKey = "{"
	if _, err := Resume(c, &bad); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt key: err = %v", err)
	}
	if _, err := Resume(c, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
}

// TestShardConfigValidation pins the Config-level shard checks.
func TestShardConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Shards: -1},
		{ShardIndex: 2},
		{Shards: 2, ShardIndex: 2},
		{Shards: 2, Compact: true},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%+v validated", cfg)
		}
	}
	if err := (Config{Shards: 2, ShardIndex: 1}).Validate(); err != nil {
		t.Errorf("valid shard config rejected: %v", err)
	}
}
