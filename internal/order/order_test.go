package order

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/faults"
)

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Heuristic
	}{
		{"", Natural}, {"natural", Natural}, {"topo", Topological},
		{"scoap", SCOAP}, {"adi", ADI},
	} {
		got, err := Parse(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("Parse(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse(bogus) accepted")
	}
	if Heuristic("").Name() != "natural" {
		t.Errorf("zero heuristic name = %q", Heuristic("").Name())
	}
}

// TestPermutationValid checks every heuristic yields a true permutation
// of the fault universe and that Natural stays the identity (nil).
func TestPermutationValid(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	all := faults.AllDelay(c)
	if perm := Permutation(c, all, Natural, 0); perm != nil {
		t.Fatal("Natural must return nil (identity)")
	}
	for _, h := range []Heuristic{Topological, SCOAP, ADI} {
		perm := Permutation(c, all, h, 0)
		if len(perm) != len(all) {
			t.Fatalf("%s: perm length %d, want %d", h, len(perm), len(all))
		}
		seen := make([]bool, len(all))
		for _, i := range perm {
			if i < 0 || i >= len(all) || seen[i] {
				t.Fatalf("%s: not a permutation (index %d)", h, i)
			}
			seen[i] = true
		}
	}
}

// TestPermutationDeterministic pins that each heuristic is a pure
// function of (circuit, heuristic, seed) — the precondition for the
// engine's worker-count invariance under ordering.
func TestPermutationDeterministic(t *testing.T) {
	c := bench.ProfileByName("s344").Circuit()
	all := faults.AllDelay(c)
	for _, h := range []Heuristic{Topological, SCOAP, ADI} {
		a := Permutation(c, all, h, 7)
		b := Permutation(c, all, h, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: two computations diverge at position %d", h, i)
			}
		}
	}
}

// TestTopologicalDeepestFirst checks the topological key: levels along
// the permutation never increase.
func TestTopologicalDeepestFirst(t *testing.T) {
	c := bench.ProfileByName("s386").Circuit()
	all := faults.AllDelay(c)
	perm := Permutation(c, all, Topological, 0)
	prev := int32(1 << 30)
	for _, i := range perm {
		lvl := c.Nodes[all[i].Line.Node].Level
		if lvl > prev {
			t.Fatalf("level increases along the topological order: %d after %d", lvl, prev)
		}
		prev = lvl
	}
}

// TestOrdersDiffer sanity-checks that the heuristics actually reorder
// the universe rather than collapsing to the identity.
func TestOrdersDiffer(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	all := faults.AllDelay(c)
	for _, h := range []Heuristic{Topological, SCOAP, ADI} {
		perm := Permutation(c, all, h, 0)
		identity := true
		for i, p := range perm {
			if p != i {
				identity = false
				break
			}
		}
		if identity {
			t.Errorf("%s: permutation is the identity", h)
		}
	}
}
