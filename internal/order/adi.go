package order

import (
	"math/rand"

	"fogbuster/internal/faults"
	"fogbuster/internal/fausim"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// ADI scoring parameters: how many random sequences are fault simulated
// and how many frames each applies. The counts are small because the
// 64-way batched StuckCoverage makes one sequence over the whole line
// universe cost a handful of dual-rail replays.
const (
	adiSequences = 24
	adiFrames    = 16
)

// adiKeys orders by ascending accidental detection index. The index of
// a delay fault is the number of random sequences that detect the
// stuck-at fault with the same momentary signature: a slow-to-rise
// fault holds its line at 0 past the capture edge (stuck-at-0), a
// slow-to-fall fault holds it at 1 (stuck-at-1). Faults that random
// stimuli rarely detect come first; the frequently-detected tail is
// likely to be swept up by simulation credit before it is ever
// targeted.
func adiKeys(c *netlist.Circuit, all []faults.Delay, seed int64) []int64 {
	net := sim.NewNet(c)
	fs := fausim.New(net)
	lines := c.Lines()
	counts := make(map[netlist.Line][2]int, len(lines))
	rng := rand.New(rand.NewSource(seed ^ 0x41444931)) // "ADI1"
	for s := 0; s < adiSequences; s++ {
		vectors := make([][]sim.V3, adiFrames)
		for f := range vectors {
			vec := make([]sim.V3, len(c.PIs))
			for i := range vec {
				vec[i] = sim.V3(rng.Intn(2))
			}
			vectors[f] = vec
		}
		// Indexing the result by the canonical lines slice keeps the
		// accumulation deterministic without paying SortedDetections'
		// per-sequence sort.
		cov := fs.StuckCoverage(vectors, lines)
		for _, l := range lines {
			det := cov[l]
			cnt := counts[l]
			if det[0] {
				cnt[0]++
			}
			if det[1] {
				cnt[1]++
			}
			counts[l] = cnt
		}
	}
	key := make([]int64, len(all))
	for i, f := range all {
		cnt := counts[f.Line]
		if f.Type == faults.SlowToRise {
			key[i] = int64(cnt[0])
		} else {
			key[i] = int64(cnt[1])
		}
	}
	return key
}
