// Package order computes deterministic fault-ordering heuristics over
// the delay-fault universe. The order in which faults are targeted does
// not change any individual fault's search outcome, but it decides which
// faults are explicitly targeted and which ride along on post-generation
// fault simulation credit — a large lever on test-set length and ATPG
// wall-clock. The package offers three orders beyond the canonical line
// order: a topological baseline (deepest logic first), a SCOAP
// testability order (hardest faults first), and an ADI order in the
// spirit of Pomeranz & Reddy's Accidental Detection Index: faults that
// random sequences rarely detect by accident are targeted first, so the
// sequences generated for them sweep up the frequently-detected rest.
//
// Every heuristic is a pure deterministic function of the circuit, the
// heuristic name and the seed, so ordered runs keep the engine's
// bit-identical-at-every-worker-count contract.
package order

import (
	"fmt"
	"sort"

	"fogbuster/internal/faults"
	"fogbuster/internal/netlist"
	"fogbuster/internal/testability"
)

// Heuristic names a fault-ordering strategy.
type Heuristic string

const (
	// Natural is the canonical line order of faults.AllDelay, the
	// engine's default. The empty string means Natural.
	Natural Heuristic = "natural"
	// Topological targets faults on the deepest combinational levels
	// first: their effects cross the most logic, so their sequences tend
	// to exercise — and accidentally detect — the shallow rest.
	Topological Heuristic = "topo"
	// SCOAP targets the faults with the worst SCOAP testability
	// (controllability plus observability) first.
	SCOAP Heuristic = "scoap"
	// ADI targets the faults with the lowest accidental detection index
	// first: the index counts how many cheap random sequences detect the
	// matching stuck-at fault, scored with the 64-way batched simulator.
	ADI Heuristic = "adi"
)

// Heuristics lists every recognized heuristic, Natural first.
var Heuristics = []Heuristic{Natural, Topological, SCOAP, ADI}

// Name returns the canonical spelling; the zero value reads "natural".
func (h Heuristic) Name() string {
	if h == "" {
		return string(Natural)
	}
	return string(h)
}

// Parse normalizes a command-line spelling; the empty string is Natural.
func Parse(s string) (Heuristic, error) {
	switch Heuristic(s) {
	case "", Natural:
		return Natural, nil
	case Topological, SCOAP, ADI:
		return Heuristic(s), nil
	}
	return Natural, fmt.Errorf("order: unknown heuristic %q (want natural, topo, scoap or adi)", s)
}

// Permutation returns the processing order over all as positions into
// the slice: the fault at all[perm[k]] is targeted k-th. Natural returns
// nil, meaning the identity order. The result is a deterministic
// function of (circuit, heuristic, seed) only, never of timing or worker
// count.
func Permutation(c *netlist.Circuit, all []faults.Delay, h Heuristic, seed int64) []int {
	switch h {
	case Topological:
		return sortByKey(all, topoKeys(c, all))
	case SCOAP:
		return sortByKey(all, scoapKeys(c, all))
	case ADI:
		return sortByKey(all, adiKeys(c, all, seed))
	}
	return nil
}

// sortByKey orders fault indices by ascending key, breaking ties by the
// canonical index so the order is total and deterministic.
func sortByKey(all []faults.Delay, key []int64) []int {
	perm := make([]int, len(all))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return key[perm[a]] < key[perm[b]] })
	return perm
}

// topoKeys orders by descending combinational level of the fault site.
func topoKeys(c *netlist.Circuit, all []faults.Delay) []int64 {
	key := make([]int64, len(all))
	for i, f := range all {
		key[i] = -int64(c.Nodes[f.Line.Node].Level)
	}
	return key
}

// scoapKeys orders by descending SCOAP detection cost of the fault site:
// both transition values must be controlled across the two frames and
// the site must be observed, so the cost is CC0 + CC1 + CO.
func scoapKeys(c *netlist.Circuit, all []faults.Delay) []int64 {
	meas := testability.Compute(c)
	key := make([]int64, len(all))
	for i, f := range all {
		n := f.Line.Node
		cost := int64(meas.CC0[n]) + int64(meas.CC1[n]) + int64(meas.CO[n])
		key[i] = -cost
	}
	return key
}
