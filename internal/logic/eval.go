package logic

import "fogbuster/internal/netlist"

// coreOp identifies the monotone core of a gate type; inverting types
// apply Not afterwards.
type coreOp uint8

const (
	opBuf coreOp = iota
	opAnd
	opOr
	opXor
)

func coreOf(t netlist.GateType) (op coreOp, invert bool) {
	switch t {
	case netlist.Buf, netlist.DFF:
		return opBuf, false
	case netlist.Not:
		return opBuf, true
	case netlist.And:
		return opAnd, false
	case netlist.Nand:
		return opAnd, true
	case netlist.Or:
		return opOr, false
	case netlist.Nor:
		return opOr, true
	case netlist.Xor:
		return opXor, false
	case netlist.Xnor:
		return opXor, true
	}
	panic("logic: no evaluation for gate type " + t.String())
}

func (a *Algebra) apply(op coreOp, x, y Value) Value {
	switch op {
	case opAnd:
		return a.and[x][y]
	case opOr:
		return a.or[x][y]
	default:
		return a.xor[x][y]
	}
}

func (a *Algebra) applySet(op coreOp, x, y Set) Set {
	switch op {
	case opAnd:
		return a.setAnd[x][y]
	case opOr:
		return a.setOr[x][y]
	default:
		return a.setXor[x][y]
	}
}

// Eval evaluates a gate of type t over concrete input values. The core
// tables are associative and commutative (verified by the package tests),
// so an n-ary gate is a left fold.
func (a *Algebra) Eval(t netlist.GateType, ins []Value) Value {
	op, inv := coreOf(t)
	if len(ins) == 0 {
		panic("logic: Eval with no inputs")
	}
	v := ins[0]
	if op != opBuf {
		for _, in := range ins[1:] {
			v = a.apply(op, v, in)
		}
	}
	if inv {
		v = a.not[v]
	}
	return v
}

// EvalSet evaluates a gate over input sets, returning the exact image set.
func (a *Algebra) EvalSet(t netlist.GateType, ins []Set) Set {
	op, inv := coreOf(t)
	if len(ins) == 0 {
		panic("logic: EvalSet with no inputs")
	}
	s := ins[0]
	if op != opBuf {
		for _, in := range ins[1:] {
			s = a.applySet(op, s, in)
		}
	}
	if inv {
		s = a.NotSet(s)
	}
	return s
}

// Prune performs one pass of arc consistency across a gate: it removes
// input values that cannot produce any allowed output under any choice of
// the other inputs, and tightens the output to the image of the inputs.
// ins and the returned output set are updated in place/by value. ok is
// false when any set becomes empty (a conflict).
//
// Because the core tables are associative and commutative, prefix/suffix
// set folds give the exact set of values producible by "all inputs except
// i", so the pruning is exact for arbitrary fanin.
func (a *Algebra) Prune(t netlist.GateType, ins []Set, out Set) (newOut Set, changed, ok bool) {
	op, inv := coreOf(t)
	coreOut := out
	if inv {
		coreOut = a.NotSet(coreOut)
	}

	n := len(ins)
	if n == 1 {
		newIn := ins[0]
		if op == opBuf {
			newIn &= coreOut
			coreOut &= newIn
		}
		changed = newIn != ins[0]
		ins[0] = newIn
	} else {
		// pre[i] = fold(ins[0..i]), suf[i] = fold(ins[i..n-1]).
		pre := make([]Set, n)
		suf := make([]Set, n)
		pre[0] = ins[0]
		for i := 1; i < n; i++ {
			pre[i] = a.applySet(op, pre[i-1], ins[i])
		}
		suf[n-1] = ins[n-1]
		for i := n - 2; i >= 0; i-- {
			suf[i] = a.applySet(op, ins[i], suf[i+1])
		}
		for i := 0; i < n; i++ {
			others := EmptySet
			switch {
			case i == 0:
				others = suf[1]
			case i == n-1:
				others = pre[n-2]
			default:
				others = a.applySet(op, pre[i-1], suf[i+1])
			}
			var keep Set
			for v := Value(0); v < NumValues; v++ {
				if !ins[i].Has(v) {
					continue
				}
				if a.applySet(op, Set(1)<<v, others)&coreOut != 0 {
					keep = keep.Add(v)
				}
			}
			if keep != ins[i] {
				changed = true
				ins[i] = keep
			}
		}
		image := ins[0]
		for i := 1; i < n; i++ {
			image = a.applySet(op, image, ins[i])
		}
		coreOut &= image
	}

	if inv {
		newOut = a.NotSet(coreOut)
	} else {
		newOut = coreOut
	}
	if newOut != out {
		changed = true
	}
	ok = newOut != EmptySet
	for _, in := range ins {
		if in == EmptySet {
			ok = false
		}
	}
	return newOut, changed, ok
}
