package logic

import (
	"testing"

	"fogbuster/internal/netlist"
)

// TestPaperTable2Not pins the inverter truth table exactly as printed in
// the paper's Table 2.
func TestPaperTable2Not(t *testing.T) {
	want := [NumValues]Value{One, Zero, Fall, Rise, OneH, ZeroH, FallC, RiseC}
	for v := Value(0); v < NumValues; v++ {
		if got := Robust.Not(v); got != want[v] {
			t.Errorf("Not(%v) = %v, want %v", v, got, want[v])
		}
	}
}

// fullAndTable is the complete AND truth table of the robust algebra in
// row-major order (rows and columns ordered 0,1,R,F,0h,1h,Rc,Fc). The Rc
// and Fc rows appear verbatim in the paper's Table 1.
var fullAndTable = [NumValues][NumValues]Value{
	Zero:  {Zero, Zero, Zero, Zero, Zero, Zero, Zero, Zero},
	One:   {Zero, One, Rise, Fall, ZeroH, OneH, RiseC, FallC},
	Rise:  {Zero, Rise, Rise, ZeroH, ZeroH, Rise, RiseC, ZeroH},
	Fall:  {Zero, Fall, ZeroH, Fall, ZeroH, Fall, ZeroH, Fall},
	ZeroH: {Zero, ZeroH, ZeroH, ZeroH, ZeroH, ZeroH, ZeroH, ZeroH},
	OneH:  {Zero, OneH, Rise, Fall, ZeroH, OneH, RiseC, Fall},
	RiseC: {Zero, RiseC, RiseC, ZeroH, ZeroH, RiseC, RiseC, ZeroH},
	FallC: {Zero, FallC, ZeroH, Fall, ZeroH, Fall, ZeroH, FallC},
}

// TestPaperTable1And pins the whole AND table; the Rc/Fc rows are the
// paper's printed rows [0,Rc,Rc,0h,0h,Rc,Rc,0h] and [0,Fc,0h,F,0h,F,0h,Fc].
func TestPaperTable1And(t *testing.T) {
	for x := Value(0); x < NumValues; x++ {
		for y := Value(0); y < NumValues; y++ {
			if got := Robust.And(x, y); got != fullAndTable[x][y] {
				t.Errorf("And(%v,%v) = %v, want %v", x, y, got, fullAndTable[x][y])
			}
		}
	}
}

// semOr derives the OR table independently of the implementation's
// De Morgan construction, from the dual robust rules: a rising effect
// through OR needs steady-zero side inputs, a falling effect needs final
// value zero.
func semOr(robust bool, x, y Value) Value {
	if x == One || y == One {
		return One
	}
	if x == Zero {
		return y
	}
	if y == Zero {
		return x
	}
	cx, cy := x.Carrying(), y.Carrying()
	sideOK := func(on, side Value) bool {
		if side.Final() != 0 {
			return false
		}
		if on == RiseC {
			if robust {
				return side == Zero
			}
			return side.Initial() == 0
		}
		return true
	}
	switch {
	case cx && cy:
		if x == y {
			return x
		}
	case cx:
		if sideOK(x, y) {
			return x
		}
	case cy:
		if sideOK(y, x) {
			return y
		}
	}
	return FromEndpoints(x.Initial()|y.Initial(), x.Final()|y.Final(), true)
}

func TestOrMatchesDualSemantics(t *testing.T) {
	for _, a := range []*Algebra{Robust, NonRobust} {
		for x := Value(0); x < NumValues; x++ {
			for y := Value(0); y < NumValues; y++ {
				want := semOr(a.IsRobust(), x, y)
				if got := a.Or(x, y); got != want {
					t.Errorf("%s: Or(%v,%v) = %v, want %v", a.Name(), x, y, got, want)
				}
			}
		}
	}
}

// TestAlgebraLaws verifies commutativity and associativity of the core
// operations; the n-ary gate evaluation and the prefix/suffix pruning in
// Prune depend on both.
func TestAlgebraLaws(t *testing.T) {
	for _, a := range []*Algebra{Robust, NonRobust} {
		ops := map[string]func(Value, Value) Value{
			"and": a.And, "or": a.Or, "xor": a.Xor,
		}
		for name, op := range ops {
			for x := Value(0); x < NumValues; x++ {
				for y := Value(0); y < NumValues; y++ {
					if op(x, y) != op(y, x) {
						t.Errorf("%s/%s: not commutative at (%v,%v)", a.Name(), name, x, y)
					}
					for z := Value(0); z < NumValues; z++ {
						if op(op(x, y), z) != op(x, op(y, z)) {
							t.Errorf("%s/%s: not associative at (%v,%v,%v)", a.Name(), name, x, y, z)
						}
					}
				}
			}
		}
	}
}

// TestNoSpontaneousCarry checks the paper's rule that "an Rc or Fc value
// never emerges at an output of a gate if there wasn't already one or more
// of these values at the input".
func TestNoSpontaneousCarry(t *testing.T) {
	for _, a := range []*Algebra{Robust, NonRobust} {
		for x := Value(0); x < NumValues; x++ {
			for y := Value(0); y < NumValues; y++ {
				if x.Carrying() || y.Carrying() {
					continue
				}
				for name, got := range map[string]Value{
					"and": a.And(x, y), "or": a.Or(x, y), "xor": a.Xor(x, y),
				} {
					if got.Carrying() {
						t.Errorf("%s: %s(%v,%v) = %v creates a fault effect", a.Name(), name, x, y, got)
					}
				}
			}
		}
	}
}

// TestEndpointsPreserved checks that every gate preserves the two-frame
// endpoint semantics: the output's initial (final) value is the Boolean
// function of the inputs' initial (final) values.
func TestEndpointsPreserved(t *testing.T) {
	bool2 := map[string]func(p, q uint8) uint8{
		"and": func(p, q uint8) uint8 { return p & q },
		"or":  func(p, q uint8) uint8 { return p | q },
		"xor": func(p, q uint8) uint8 { return p ^ q },
	}
	for _, a := range []*Algebra{Robust, NonRobust} {
		ops := map[string]func(Value, Value) Value{"and": a.And, "or": a.Or, "xor": a.Xor}
		for name, op := range ops {
			for x := Value(0); x < NumValues; x++ {
				for y := Value(0); y < NumValues; y++ {
					got := op(x, y)
					if got.Initial() != bool2[name](x.Initial(), y.Initial()) {
						// Non-robust carrying values keep only their final
						// component exact; their initial is nominal.
						if a.IsRobust() || !got.Carrying() {
							t.Errorf("%s: %s(%v,%v)=%v wrong initial", a.Name(), name, x, y, got)
						}
					}
					if got.Final() != bool2[name](x.Final(), y.Final()) {
						t.Errorf("%s: %s(%v,%v)=%v wrong final", a.Name(), name, x, y, got)
					}
				}
			}
		}
	}
}

// TestNonRobustRelaxation spot-checks the relaxed propagation conditions
// from the paper's conclusions: with all fault-free signals assumed to
// settle, a falling effect passes AND side inputs that merely end at one,
// and effects pass XOR gates with transitioning side inputs.
func TestNonRobustRelaxation(t *testing.T) {
	cases := []struct {
		op   string
		x, y Value
		rob  Value // robust result
		non  Value // non-robust result
	}{
		{"and", FallC, OneH, Fall, FallC},  // hazardous one admitted non-robustly
		{"and", FallC, Rise, ZeroH, ZeroH}, // rising side unrepresentable, blocked in both
		{"and", FallC, Fall, Fall, Fall},   // side final 0 blocks in both
		{"and", RiseC, OneH, RiseC, RiseC}, // rising rule identical in both
		{"and", RiseC, Rise, RiseC, RiseC},
		{"xor", RiseC, Rise, ZeroH, ZeroH}, // XOR needs steady sides in both
		{"xor", RiseC, Zero, RiseC, RiseC},
		{"xor", RiseC, One, FallC, FallC},
		{"or", RiseC, ZeroH, Rise, RiseC}, // dual of the AND relaxation
		{"or", RiseC, Fall, OneH, OneH},
		{"or", FallC, ZeroH, FallC, FallC},
	}
	for _, c := range cases {
		var gotR, gotN Value
		switch c.op {
		case "and":
			gotR, gotN = Robust.And(c.x, c.y), NonRobust.And(c.x, c.y)
		case "or":
			gotR, gotN = Robust.Or(c.x, c.y), NonRobust.Or(c.x, c.y)
		default:
			gotR, gotN = Robust.Xor(c.x, c.y), NonRobust.Xor(c.x, c.y)
		}
		if gotR != c.rob {
			t.Errorf("robust %s(%v,%v) = %v, want %v", c.op, c.x, c.y, gotR, c.rob)
		}
		if gotN != c.non {
			t.Errorf("non-robust %s(%v,%v) = %v, want %v", c.op, c.x, c.y, gotN, c.non)
		}
	}
}

func TestSetImagesExact(t *testing.T) {
	// Exhaustive over all 256x256 set pairs would be slow in triplicate;
	// sample a deterministic stride plus all singleton pairs.
	type op struct {
		set  func(Set, Set) Set
		pair func(Value, Value) Value
	}
	for _, a := range []*Algebra{Robust, NonRobust} {
		ops := map[string]op{
			"and": {a.AndSet, a.And},
			"or":  {a.OrSet, a.Or},
			"xor": {a.XorSet, a.Xor},
		}
		for name, o := range ops {
			for sa := 0; sa < 256; sa += 7 {
				for sb := 0; sb < 256; sb += 5 {
					var want Set
					for _, x := range Set(sa).Values() {
						for _, y := range Set(sb).Values() {
							want = want.Add(o.pair(x, y))
						}
					}
					if got := o.set(Set(sa), Set(sb)); got != want {
						t.Fatalf("%s: %sSet(%v,%v) = %v, want %v", a.Name(), name, Set(sa), Set(sb), got, want)
					}
				}
			}
		}
	}
}

func TestEvalMatchesBruteForce(t *testing.T) {
	types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor}
	for _, typ := range types {
		for x := Value(0); x < NumValues; x++ {
			for y := Value(0); y < NumValues; y++ {
				for z := Value(0); z < NumValues; z++ {
					got := Robust.Eval(typ, []Value{x, y, z})
					op, inv := coreOf(typ)
					want := Robust.apply(op, Robust.apply(op, x, y), z)
					if inv {
						want = Robust.Not(want)
					}
					if got != want {
						t.Fatalf("Eval(%v, %v,%v,%v) = %v, want %v", typ, x, y, z, got, want)
					}
				}
			}
		}
	}
	if got := Robust.Eval(netlist.Not, []Value{RiseC}); got != FallC {
		t.Errorf("Eval(NOT, Rc) = %v, want Fc", got)
	}
	if got := Robust.Eval(netlist.Buf, []Value{OneH}); got != OneH {
		t.Errorf("Eval(BUFF, 1h) = %v, want 1h", got)
	}
}
