package logic

import (
	"testing"
	"testing/quick"

	"fogbuster/internal/netlist"
)

// TestSetMonotonicityProperty: the set transfer functions are monotone —
// growing an input set can only grow the image. TDgen's fixpoint
// propagation terminates and stays an upper bound because of this.
func TestSetMonotonicityProperty(t *testing.T) {
	f := func(a, aExtra, b uint8) bool {
		A, B := Set(a), Set(b)
		A2 := A | Set(aExtra)
		for _, alg := range []*Algebra{Robust, NonRobust} {
			if alg.AndSet(A, B)&^alg.AndSet(A2, B) != 0 {
				return false
			}
			if alg.OrSet(A, B)&^alg.OrSet(A2, B) != 0 {
				return false
			}
			if alg.XorSet(A, B)&^alg.XorSet(A2, B) != 0 {
				return false
			}
			if alg.NotSet(A)&^alg.NotSet(A2) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEvalSetSoundnessProperty: the image of singletons always lies inside
// the image of any supersets (pointwise soundness of EvalSet), across gate
// types and arities.
func TestEvalSetSoundnessProperty(t *testing.T) {
	types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor}
	f := func(tSel uint8, raw [3]uint8, pick [3]uint8) bool {
		typ := types[int(tSel)%len(types)]
		sets := make([]Set, 3)
		vals := make([]Value, 3)
		for i := range sets {
			sets[i] = Set(raw[i])
			if sets[i] == EmptySet {
				sets[i] = FullSet
			}
			members := sets[i].Values()
			vals[i] = members[int(pick[i])%len(members)]
		}
		img := Robust.EvalSet(typ, sets)
		return img.Has(Robust.Eval(typ, vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDeMorganProperty: the OR table is the exact De Morgan dual of AND in
// both algebras, for sets as well as values.
func TestDeMorganProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		A, B := Set(a), Set(b)
		for _, alg := range []*Algebra{Robust, NonRobust} {
			if alg.OrSet(A, B) != alg.NotSet(alg.AndSet(alg.NotSet(A), alg.NotSet(B))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
