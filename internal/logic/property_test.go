package logic

import (
	"testing"
	"testing/quick"

	"fogbuster/internal/netlist"
)

// TestSetMonotonicityProperty: the set transfer functions are monotone —
// growing an input set can only grow the image. TDgen's fixpoint
// propagation terminates and stays an upper bound because of this.
func TestSetMonotonicityProperty(t *testing.T) {
	f := func(a, aExtra, b uint8) bool {
		A, B := Set(a), Set(b)
		A2 := A | Set(aExtra)
		for _, alg := range []*Algebra{Robust, NonRobust} {
			if alg.AndSet(A, B)&^alg.AndSet(A2, B) != 0 {
				return false
			}
			if alg.OrSet(A, B)&^alg.OrSet(A2, B) != 0 {
				return false
			}
			if alg.XorSet(A, B)&^alg.XorSet(A2, B) != 0 {
				return false
			}
			if alg.NotSet(A)&^alg.NotSet(A2) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEvalSetSoundnessProperty: the image of singletons always lies inside
// the image of any supersets (pointwise soundness of EvalSet), across gate
// types and arities.
func TestEvalSetSoundnessProperty(t *testing.T) {
	types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor}
	f := func(tSel uint8, raw [3]uint8, pick [3]uint8) bool {
		typ := types[int(tSel)%len(types)]
		sets := make([]Set, 3)
		vals := make([]Value, 3)
		for i := range sets {
			sets[i] = Set(raw[i])
			if sets[i] == EmptySet {
				sets[i] = FullSet
			}
			members := sets[i].Values()
			vals[i] = members[int(pick[i])%len(members)]
		}
		img := Robust.EvalSet(typ, sets)
		return img.Has(Robust.Eval(typ, vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPlainCarryInvariance pins the invariant the 64-way batched credit
// simulation is built on (internal/sim's carry-rail encoding): the plain
// part of every gate output is a function of the plain parts of the
// inputs alone — attaching the fault-effect flag to an input can set or
// clear the output's flag, but never changes its initial value, final
// value or hazard. Because of this, 64 delay fault machines over one
// fully specified two-frame situation share a single scalar value per
// node and differ only in a 64-bit carry word.
func TestPlainCarryInvariance(t *testing.T) {
	for _, alg := range []*Algebra{Robust, NonRobust} {
		for x := Value(0); x < NumValues; x++ {
			if plain := alg.Not(x).Plain(); plain != alg.Not(x.Plain()) {
				t.Errorf("%s: plain(not %s) = %s, want %s", alg.Name(), x, plain, alg.Not(x.Plain()))
			}
			for y := Value(0); y < NumValues; y++ {
				type op struct {
					name string
					f    func(a, b Value) Value
				}
				for _, o := range []op{{"and", alg.And}, {"or", alg.Or}, {"xor", alg.Xor}} {
					if plain := o.f(x, y).Plain(); plain != o.f(x.Plain(), y.Plain()) {
						t.Errorf("%s: plain(%s(%s,%s)) = %s, want %s",
							alg.Name(), o.name, x, y, plain, o.f(x.Plain(), y.Plain()))
					}
					// A surviving fault effect always sits on a transition
					// value, so the carry rail's WithCarry conversions are
					// total.
					if out := o.f(x, y); out.Carrying() && !out.HasTransition() {
						t.Errorf("%s: %s(%s,%s) = %s carries without a transition", alg.Name(), o.name, x, y, out)
					}
				}
			}
		}
	}
}

// TestDeMorganProperty: the OR table is the exact De Morgan dual of AND in
// both algebras, for sets as well as values.
func TestDeMorganProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		A, B := Set(a), Set(b)
		for _, alg := range []*Algebra{Robust, NonRobust} {
			if alg.OrSet(A, B) != alg.NotSet(alg.AndSet(alg.NotSet(A), alg.NotSet(B))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
