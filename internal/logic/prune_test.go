package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fogbuster/internal/netlist"
)

// bruteImage computes the exact output image of a gate over input sets.
func bruteImage(a *Algebra, t netlist.GateType, ins []Set) Set {
	var img Set
	var rec func(i int, acc []Value)
	rec = func(i int, acc []Value) {
		if i == len(ins) {
			img = img.Add(a.Eval(t, acc))
			return
		}
		for _, v := range ins[i].Values() {
			rec(i+1, append(acc, v))
		}
	}
	rec(0, nil)
	return img
}

func TestEvalSetMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor}
	for iter := 0; iter < 2000; iter++ {
		typ := types[rng.Intn(len(types))]
		n := 2 + rng.Intn(3)
		ins := make([]Set, n)
		for i := range ins {
			ins[i] = Set(1 + rng.Intn(255))
		}
		want := bruteImage(Robust, typ, ins)
		if got := Robust.EvalSet(typ, ins); got != want {
			t.Fatalf("EvalSet(%v, %v) = %v, want %v", typ, ins, got, want)
		}
	}
}

// TestPruneSoundAndExact checks, on random gates, that Prune never removes
// a supported input value (soundness) and never keeps an unsupported one
// (exactness), where support means participation in some input combination
// that produces an allowed output value.
func TestPruneSoundAndExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	types := []netlist.GateType{netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor}
	for iter := 0; iter < 2000; iter++ {
		typ := types[rng.Intn(len(types))]
		n := 2 + rng.Intn(3)
		orig := make([]Set, n)
		for i := range orig {
			orig[i] = Set(1 + rng.Intn(255))
		}
		out := Set(1 + rng.Intn(255))

		// supported[i] = values of input i with support in orig/out.
		supported := make([]Set, n)
		var supportedOut Set
		var rec func(i int, acc []Value)
		rec = func(i int, acc []Value) {
			if i == n {
				v := Robust.Eval(typ, acc)
				if out.Has(v) {
					supportedOut = supportedOut.Add(v)
					for j, x := range acc {
						supported[j] = supported[j].Add(x)
					}
				}
				return
			}
			for _, v := range orig[i].Values() {
				rec(i+1, append(acc, v))
			}
		}
		rec(0, nil)

		ins := append([]Set(nil), orig...)
		newOut, _, ok := Robust.Prune(typ, ins, out)
		if !ok {
			if supportedOut != EmptySet {
				t.Fatalf("Prune(%v, %v, out=%v) reported conflict but support exists", typ, orig, out)
			}
			continue
		}
		for i := range ins {
			if ins[i] != supported[i] {
				t.Fatalf("Prune(%v, %v, out=%v): input %d pruned to %v, exact support %v",
					typ, orig, out, i, ins[i], supported[i])
			}
		}
		if newOut != supportedOut {
			t.Fatalf("Prune(%v, %v, out=%v): output %v, exact support %v", typ, orig, out, newOut, supportedOut)
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := S(Zero, RiseC)
	if !s.Has(Zero) || !s.Has(RiseC) || s.Has(One) {
		t.Fatalf("membership broken: %v", s)
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d, want 2", s.Count())
	}
	if _, ok := s.Singleton(); ok {
		t.Fatal("two-element set reported singleton")
	}
	v, ok := s.Del(Zero).Singleton()
	if !ok || v != RiseC {
		t.Fatalf("Singleton after Del = %v,%v", v, ok)
	}
	if got := s.String(); got != "{0,Rc}" {
		t.Fatalf("String = %q", got)
	}
	if FullSet.Count() != 8 || EmptySet.Count() != 0 {
		t.Fatal("FullSet/EmptySet wrong")
	}
	if PIDomain != S(Zero, One, Rise, Fall) {
		t.Fatal("PIDomain wrong")
	}
}

func TestSetRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		s := Set(raw)
		var rebuilt Set
		for _, v := range s.Values() {
			rebuilt = rebuilt.Add(v)
		}
		return rebuilt == s && s.Count() == len(s.Values())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueProperties(t *testing.T) {
	for v := Value(0); v < NumValues; v++ {
		if v.HasTransition() != (v.Initial() != v.Final()) {
			t.Errorf("%v: HasTransition inconsistent", v)
		}
		if v.Carrying() {
			if got := v.Plain().WithCarry(); got != v {
				t.Errorf("%v: Plain/WithCarry round trip = %v", v, got)
			}
		}
		nv := Robust.Not(v)
		if nv.Initial() == v.Initial() || nv.Final() == v.Final() {
			t.Errorf("Not(%v) = %v does not invert endpoints", v, nv)
		}
		if Robust.Not(nv) != v {
			t.Errorf("Not is not an involution at %v", v)
		}
	}
	if FromEndpoints(0, 1, true) != Rise || FromEndpoints(1, 0, false) != Fall {
		t.Error("FromEndpoints transitions wrong")
	}
	if FromEndpoints(0, 0, false) != Zero || FromEndpoints(0, 0, true) != ZeroH {
		t.Error("FromEndpoints zero wrong")
	}
	if FromEndpoints(1, 1, false) != One || FromEndpoints(1, 1, true) != OneH {
		t.Error("FromEndpoints one wrong")
	}
}
