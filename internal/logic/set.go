package logic

import (
	"math/bits"
	"strings"
)

// Set is a set of algebra values, packed one bit per Value. TDgen maintains
// a Set for every line and refines them by constraint propagation, in the
// style the paper cites from Rajski and Cox.
type Set uint8

// Common sets.
const (
	EmptySet Set = 0
	FullSet  Set = 1<<NumValues - 1

	// PIDomain is the domain of primary and pseudo primary inputs: such a
	// signal is applied or latched, so it is hazard-free and changes at
	// most once, and it never originates a fault effect.
	PIDomain = Set(1<<Zero | 1<<One | 1<<Rise | 1<<Fall)

	// CarrySet holds the two fault-effect values.
	CarrySet = Set(1<<RiseC | 1<<FallC)

	// PlainSet holds everything except the fault-effect values. Lines
	// outside the fault site's output cone are confined to it.
	PlainSet = FullSet &^ CarrySet

	// SteadySet holds the hazard-free constant values.
	SteadySet = Set(1<<Zero | 1<<One)
)

// S builds a set from values.
func S(vs ...Value) Set {
	var s Set
	for _, v := range vs {
		s |= 1 << v
	}
	return s
}

// Has reports whether v is in the set.
func (s Set) Has(v Value) bool { return s&(1<<v) != 0 }

// Add returns the set with v added.
func (s Set) Add(v Value) Set { return s | 1<<v }

// Del returns the set with v removed.
func (s Set) Del(v Value) Set { return s &^ (1 << v) }

// Count returns the number of values in the set.
func (s Set) Count() int { return bits.OnesCount8(uint8(s)) }

// Empty reports whether the set has no values.
func (s Set) Empty() bool { return s == 0 }

// Singleton returns the set's only value. ok is false unless the set has
// exactly one element.
func (s Set) Singleton() (v Value, ok bool) {
	if s.Count() != 1 {
		return 0, false
	}
	return Value(bits.TrailingZeros8(uint8(s))), true
}

// Values returns the members in ascending order.
func (s Set) Values() []Value {
	vs := make([]Value, 0, s.Count())
	for v := Value(0); v < NumValues; v++ {
		if s.Has(v) {
			vs = append(vs, v)
		}
	}
	return vs
}

// String formats the set as {v1,v2,...}.
func (s Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for v := Value(0); v < NumValues; v++ {
		if s.Has(v) {
			if !first {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
			first = false
		}
	}
	sb.WriteByte('}')
	return sb.String()
}
