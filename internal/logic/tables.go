package logic

// Algebra bundles the gate truth tables of the eight-valued logic under a
// particular fault model. Robust is the paper's model (Tables 1 and 2);
// NonRobust is the relaxation the paper's conclusions propose, in which a
// fault effect propagates whenever the final values of the side inputs
// sensitize the path (transition-fault style), because all fault-free
// signals are assumed to settle within the fast clock period.
type Algebra struct {
	name   string
	robust bool

	not [NumValues]Value
	and [NumValues][NumValues]Value
	or  [NumValues][NumValues]Value
	xor [NumValues][NumValues]Value

	// Set-level transfer tables: setOp[a][b] is the exact image
	// {op(x,y) : x in a, y in b}, precomputed for implication speed.
	setAnd [1 << NumValues][1 << NumValues]Set
	setOr  [1 << NumValues][1 << NumValues]Set
	setXor [1 << NumValues][1 << NumValues]Set
}

// The two supported fault models.
var (
	Robust    = newAlgebra("robust", true)
	NonRobust = newAlgebra("non-robust", false)
)

// Name returns "robust" or "non-robust".
func (a *Algebra) Name() string { return a.name }

// IsRobust reports whether the algebra enforces the robust criterion.
func (a *Algebra) IsRobust() bool { return a.robust }

// Not returns the inverter output (the paper's Table 2).
func (a *Algebra) Not(v Value) Value { return a.not[v] }

// And returns the 2-input AND output (the paper's Table 1).
func (a *Algebra) And(x, y Value) Value { return a.and[x][y] }

// Or returns the 2-input OR output, the De Morgan dual of And.
func (a *Algebra) Or(x, y Value) Value { return a.or[x][y] }

// Xor returns the 2-input XOR output. Under the robust model a fault
// effect passes an XOR only when the side input is steady, because any
// side transition or hazard inverts the on-path signal at an unknown time.
func (a *Algebra) Xor(x, y Value) Value { return a.xor[x][y] }

func newAlgebra(name string, robust bool) *Algebra {
	a := &Algebra{name: name, robust: robust}
	for v := Value(0); v < NumValues; v++ {
		a.not[v] = deriveNot(v)
	}
	for x := Value(0); x < NumValues; x++ {
		for y := Value(0); y < NumValues; y++ {
			a.and[x][y] = deriveAnd(robust, x, y)
			a.xor[x][y] = deriveXor(x, y)
		}
	}
	// OR by De Morgan: x or y = not(not x and not y).
	for x := Value(0); x < NumValues; x++ {
		for y := Value(0); y < NumValues; y++ {
			a.or[x][y] = a.not[a.and[a.not[x]][a.not[y]]]
		}
	}
	a.buildSetTables()
	return a
}

// deriveNot implements the inverter semantics: both frame values invert,
// hazards and the fault-effect flag are preserved.
func deriveNot(v Value) Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	case Rise:
		return Fall
	case Fall:
		return Rise
	case ZeroH:
		return OneH
	case OneH:
		return ZeroH
	case RiseC:
		return FallC
	default:
		return RiseC
	}
}

// deriveAnd implements the AND semantics over waveforms described by
// (initial, final, steadiness, fault-effect). The fault-effect rules are
// the paper's: Rc propagates past any side input whose final value is one
// (the output can only show the good final value one once the on-path
// input has risen), while under the robust model Fc needs a steady one on
// the side input (any side transition or hazard could produce the good
// final value zero at the output without the fault site having fallen).
func deriveAnd(robust bool, x, y Value) Value {
	// Constant dominance and identity keep steadiness exact.
	if x == Zero || y == Zero {
		return Zero
	}
	if x == One {
		return y
	}
	if y == One {
		return x
	}
	cx, cy := x.Carrying(), y.Carrying()
	switch {
	case cx && cy:
		// Reconvergent effects of the same fault: same direction
		// reinforces, opposite directions cancel at the endpoints.
		if x == y {
			return x
		}
	case cx:
		if andSideAllows(robust, x, y) {
			return x
		}
	case cy:
		if andSideAllows(robust, y, x) {
			return y
		}
	}
	// No (surviving) fault effect: combine the endpoints. Both inputs are
	// non-constant here, so equal endpoints cannot be guaranteed
	// hazard-free.
	return FromEndpoints(x.Initial()&y.Initial(), x.Final()&y.Final(), true)
}

// andSideAllows reports whether a side input allows the on-path fault
// effect through an AND gate. The rising rule (final value one) is the
// same in both models. For a falling effect the robust model demands a
// steady one; the non-robust model additionally admits a hazardous one
// (1h), because fault-free signals are assumed to settle. Side inputs that
// end at one but start at zero are blocked even non-robustly: the output
// would not fall at all in the good machine, and a "steady zero carrying
// the effect" is not representable in the eight values, so the algebra
// conservatively drops the effect there.
func andSideAllows(robust bool, on, side Value) bool {
	if side.Final() != 1 {
		return false
	}
	if on == FallC {
		if robust {
			return side == One
		}
		return side.Initial() == 1
	}
	return true
}

// deriveXor implements the XOR semantics. A steady side input passes the
// on-path value through (inverted for a steady one), preserving the fault
// effect; any transitioning or hazardous side input drops it, in both
// models, because the surviving effect would not be representable as a
// clean Rc/Fc transition.
func deriveXor(x, y Value) Value {
	if x == Zero {
		return y
	}
	if y == Zero {
		return x
	}
	if x == One {
		return deriveNot(y)
	}
	if y == One {
		return deriveNot(x)
	}
	return FromEndpoints(x.Initial()^y.Initial(), x.Final()^y.Final(), true)
}

func (a *Algebra) buildSetTables() {
	// Image of a singleton pair, then fold unions over set bits. Building
	// row 1<<x against all b first keeps the inner loops tiny.
	for x := Value(0); x < NumValues; x++ {
		for y := Value(0); y < NumValues; y++ {
			sx, sy := Set(1)<<x, Set(1)<<y
			a.setAnd[sx][sy] = 1 << a.and[x][y]
			a.setOr[sx][sy] = 1 << a.or[x][y]
			a.setXor[sx][sy] = 1 << a.xor[x][y]
		}
	}
	for sa := 1; sa < 1<<NumValues; sa++ {
		lowA := Set(sa) & -Set(sa)
		restA := Set(sa) &^ lowA
		for sb := 1; sb < 1<<NumValues; sb++ {
			if restA == 0 {
				lowB := Set(sb) & -Set(sb)
				restB := Set(sb) &^ lowB
				if restB == 0 {
					continue // singleton pair, already set
				}
				a.setAnd[sa][sb] = a.setAnd[sa][lowB] | a.setAnd[sa][restB]
				a.setOr[sa][sb] = a.setOr[sa][lowB] | a.setOr[sa][restB]
				a.setXor[sa][sb] = a.setXor[sa][lowB] | a.setXor[sa][restB]
				continue
			}
			a.setAnd[sa][sb] = a.setAnd[lowA][sb] | a.setAnd[restA][sb]
			a.setOr[sa][sb] = a.setOr[lowA][sb] | a.setOr[restA][sb]
			a.setXor[sa][sb] = a.setXor[lowA][sb] | a.setXor[restA][sb]
		}
	}
}

// AndSet returns the exact image of And over two sets.
func (a *Algebra) AndSet(x, y Set) Set { return a.setAnd[x][y] }

// OrSet returns the exact image of Or over two sets.
func (a *Algebra) OrSet(x, y Set) Set { return a.setOr[x][y] }

// XorSet returns the exact image of Xor over two sets.
func (a *Algebra) XorSet(x, y Set) Set { return a.setXor[x][y] }

// NotSet returns the exact image of Not over a set. Not is an involution,
// so this is also the preimage.
func (a *Algebra) NotSet(s Set) Set {
	var out Set
	for v := Value(0); v < NumValues; v++ {
		if s.Has(v) {
			out = out.Add(a.not[v])
		}
	}
	return out
}
