// Package logic implements the eight-valued algebra that TDgen uses for
// robust gate delay fault test generation (van Brakel et al., ED&TC 1995,
// Section 3, Tables 1 and 2).
//
// A value describes one signal across the two time frames of the local test
// (the initial frame and the fast test frame):
//
//	0   steady zero in both frames, hazard-free
//	1   steady one in both frames, hazard-free
//	R   rising: zero in the first frame, one in the second
//	F   falling: one in the first frame, zero in the second
//	0h  zero in both frames, but a hazard (temporary change) may occur
//	1h  one in both frames, but a hazard may occur
//	Rc  rising and carrying the fault effect (like D in stuck-at ATPG)
//	Fc  falling and carrying the fault effect (like Dbar)
//
// The tables are not hard-coded: they are derived from an explicit waveform
// semantics (initial value, final value, steadiness, fault-effect flag) in
// tables.go, and pinned against the rows printed in the paper by the tests.
package logic

import "fmt"

// Value is one of the eight algebra values.
type Value uint8

// The eight values. The order is the paper's presentation order and is
// relied upon by Set's bit packing.
const (
	Zero  Value = iota // steady 0, hazard-free
	One                // steady 1, hazard-free
	Rise               // R: 0 in frame 1, 1 in frame 2
	Fall               // F: 1 in frame 1, 0 in frame 2
	ZeroH              // 0h: 0 in both frames, hazard possible
	OneH               // 1h: 1 in both frames, hazard possible
	RiseC              // Rc: rising, carries the fault effect
	FallC              // Fc: falling, carries the fault effect

	// NumValues is the size of the algebra.
	NumValues = 8
)

var valueNames = [NumValues]string{"0", "1", "R", "F", "0h", "1h", "Rc", "Fc"}

// String returns the paper's notation for the value.
func (v Value) String() string {
	if v < NumValues {
		return valueNames[v]
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

var (
	initials = [NumValues]uint8{Zero: 0, One: 1, Rise: 0, Fall: 1, ZeroH: 0, OneH: 1, RiseC: 0, FallC: 1}
	finals   = [NumValues]uint8{Zero: 0, One: 1, Rise: 1, Fall: 0, ZeroH: 0, OneH: 1, RiseC: 1, FallC: 0}
)

// Initial returns the signal's settled value in the first (initial) frame.
func (v Value) Initial() uint8 { return initials[v] }

// Final returns the signal's settled value in the second (test) frame.
// For a carrying value this is the good-machine final value; the faulty
// machine still shows the initial value at the fast sampling edge.
func (v Value) Final() uint8 { return finals[v] }

// Steady reports whether the signal is guaranteed constant and hazard-free
// across both frames (only the plain 0 and 1 qualify).
func (v Value) Steady() bool { return v == Zero || v == One }

// Carrying reports whether the value carries the fault effect (Rc or Fc).
func (v Value) Carrying() bool { return v == RiseC || v == FallC }

// HasTransition reports whether initial and final values differ.
func (v Value) HasTransition() bool { return initials[v] != finals[v] }

// Plain strips the fault-effect flag: Rc becomes R and Fc becomes F.
func (v Value) Plain() Value {
	switch v {
	case RiseC:
		return Rise
	case FallC:
		return Fall
	}
	return v
}

// WithCarry adds the fault-effect flag to a transition value. It panics on
// non-transition values, which always indicates a programming error: only
// the fault site converts R/F into Rc/Fc.
func (v Value) WithCarry() Value {
	switch v {
	case Rise, RiseC:
		return RiseC
	case Fall, FallC:
		return FallC
	}
	panic("logic: WithCarry on non-transition value " + v.String())
}

// FromEndpoints returns the plain (non-carrying) value with the given
// settled frame values. When the endpoints agree, hazard selects between
// the hazard-free and hazardous variants.
func FromEndpoints(initial, final uint8, hazard bool) Value {
	switch {
	case initial == 0 && final == 1:
		return Rise
	case initial == 1 && final == 0:
		return Fall
	case initial == 0:
		if hazard {
			return ZeroH
		}
		return Zero
	default:
		if hazard {
			return OneH
		}
		return One
	}
}
