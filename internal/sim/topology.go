package sim

import (
	"sync"
	"sync/atomic"

	"fogbuster/internal/netlist"
)

// Topology is the immutable, structure-of-arrays simulation view of a
// circuit: flat CSR fanin/fanout edge arrays, the level-bucketed gate
// order, and (lazily) per-stem fanout-cone membership bitsets. It holds
// no scratch, so one Topology per circuit can be shared by any number of
// worker Nets (core builds exactly one and hands it to every worker).
//
// The flat fanin index IS the edge number used by the 64-way injectors:
// edge = FaninOff[id] + input position. Fanout entries mirror
// netlist.Node.Fanout ordering exactly, so FanoutNode[FanoutOff[n]+b] is
// the consumer of branch b of node n and FanoutEdge the flat edge that
// connection feeds — branch faults resolve in O(1) instead of scanning
// the consumer's fanin list.
type Topology struct {
	C *netlist.Circuit

	// Fanin CSR: node id's connections are the flat indices
	// FaninOff[id] .. FaninOff[id+1] into Fanin (the driving node) and
	// FaninBranch (the driver's fanout branch this connection is).
	FaninOff    []int32
	Fanin       []netlist.NodeID
	FaninBranch []int32

	// Fanout CSR: branch b of node id is the entry FanoutOff[id]+b.
	FanoutOff  []int32
	FanoutNode []netlist.NodeID
	FanoutEdge []int32

	// Order is the topological gate order (Circuit.GateOrder); LevelOff
	// buckets it by combinational level: gates at level l are
	// Order[LevelOff[l]:LevelOff[l+1]]. Level holds every node's level.
	Order    []netlist.NodeID
	LevelOff []int32
	Level    []int32

	// Types is the per-node gate type, hoisted out of the Node structs so
	// the evaluation loops touch only flat arrays.
	Types []netlist.GateType

	// MaxFanin sizes evaluation scratch; MaxLevel sizes the worklist.
	MaxFanin int
	MaxLevel int32

	// Cone membership is built lazily per stem (see coneset.go): one
	// published set per node, dense or interval-compressed under
	// conePolicy. Nothing here costs memory until InCone/ConeGates is
	// asked.
	// conePolicy is atomic because concurrent engine constructions over
	// one shared topology all (re)set it; coneSealed freezes it once the
	// publication slots exist so a late set cannot mix representations.
	conePolicy  atomic.Uint32 // ConePolicy
	coneSealed  atomic.Bool
	coneOnce    sync.Once
	coneSets    []atomic.Pointer[coneSet]
	coneScratch *sync.Pool
}

// NewTopology builds the simulation view of the circuit. Construction is
// linear in the circuit size; the cone bitsets are computed on first use.
func NewTopology(c *netlist.Circuit) *Topology {
	n := len(c.Nodes)
	t := &Topology{
		C:        c,
		FaninOff: make([]int32, n+1),
		Order:    c.GateOrder(),
		LevelOff: c.LevelOffsets(),
		Level:    make([]int32, n),
		Types:    make([]netlist.GateType, n),
		MaxLevel: c.MaxLevel(),
	}
	edges := 0
	for i := range c.Nodes {
		node := &c.Nodes[i]
		t.FaninOff[i] = int32(edges)
		edges += len(node.Fanin)
		if len(node.Fanin) > t.MaxFanin {
			t.MaxFanin = len(node.Fanin)
		}
		t.Level[i] = node.Level
		t.Types[i] = node.Type
	}
	t.FaninOff[n] = int32(edges)

	t.Fanin = make([]netlist.NodeID, edges)
	t.FaninBranch = make([]int32, edges)
	t.FanoutOff = make([]int32, n+1)
	t.FanoutNode = make([]netlist.NodeID, edges)
	t.FanoutEdge = make([]int32, edges)
	off := int32(0)
	for i := range c.Nodes {
		t.FanoutOff[i] = off
		off += int32(len(c.Nodes[i].Fanout))
	}
	t.FanoutOff[n] = off
	// The branch numbering must mirror netlist's fanout construction:
	// connections enumerated by consumer ID, then input position.
	counter := make([]int32, n)
	for i := range c.Nodes {
		node := &c.Nodes[i]
		for pos, in := range node.Fanin {
			e := t.FaninOff[i] + int32(pos)
			b := counter[in]
			counter[in]++
			t.Fanin[e] = in
			t.FaninBranch[e] = b
			t.FanoutNode[t.FanoutOff[in]+b] = netlist.NodeID(i)
			t.FanoutEdge[t.FanoutOff[in]+b] = e
		}
	}
	return t
}

// NumNodes returns the node count of the underlying circuit.
func (t *Topology) NumNodes() int { return len(t.C.Nodes) }

// NumEdges returns the total fanin connection count of the circuit.
func (t *Topology) NumEdges() int { return len(t.Fanin) }

// EdgeOf returns the flat edge index of the connection feeding input
// position pos of node id.
func (t *Topology) EdgeOf(id netlist.NodeID, pos int) int {
	return int(t.FaninOff[id]) + pos
}

// BranchOf returns the fanout branch index of the connection feeding
// input position pos of node id.
func (t *Topology) BranchOf(id netlist.NodeID, pos int) int {
	return int(t.FaninBranch[int(t.FaninOff[id])+pos])
}

// BranchEdge returns the consumer node and flat edge index of fanout
// branch b of node id, in O(1) via the fanout CSR.
func (t *Topology) BranchEdge(id netlist.NodeID, b int) (netlist.NodeID, int) {
	k := t.FanoutOff[id] + int32(b)
	return t.FanoutNode[k], int(t.FanoutEdge[k])
}

// OnLine reports whether the connection feeding input position pos of
// node id lies on the given line: either the line is the driver's stem,
// or it is exactly this branch.
func (t *Topology) OnLine(l netlist.Line, id netlist.NodeID, pos int) bool {
	e := int(t.FaninOff[id]) + pos
	if t.Fanin[e] != l.Node {
		return false
	}
	return l.IsStem() || int(t.FaninBranch[e]) == l.Branch
}

// lineEdge resolves an injection line to the flat edge it sits on, or -1
// for a stem line (which converts the driver's value, not a connection)
// and for an out-of-range branch — the latter matches the pre-CSR
// behavior, where a dangling branch line simply never matched any
// connection and the injection was a no-op.
func (t *Topology) lineEdge(l netlist.Line) int {
	if l.IsStem() || l.Branch < 0 || int32(l.Branch) >= t.FanoutOff[l.Node+1]-t.FanoutOff[l.Node] {
		return -1
	}
	return int(t.FanoutEdge[t.FanoutOff[l.Node]+int32(l.Branch)])
}
