package sim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// packLanes builds the four rail words from 64 lane values.
func packLanes(vals [64]logic.Value) (i, f, h, c Word) {
	for k, v := range vals {
		bit := Word(1) << uint(k)
		if v.Initial() == 1 {
			i |= bit
		}
		if v.Final() == 1 {
			f |= bit
		}
		if v == logic.ZeroH || v == logic.OneH {
			h |= bit
		}
		if v.Carrying() {
			c |= bit
		}
	}
	return
}

// TestFoldFill64ExhaustivePairs drives every 2-input gate type through
// all 64 ordered pairs of algebra values in one fold call — the full
// cross product fits exactly one word — and checks each lane against the
// scalar derived tables, for both algebras.
func TestFoldFill64ExhaustivePairs(t *testing.T) {
	types := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor,
	}
	var xs, ys [64]logic.Value
	for a := 0; a < logic.NumValues; a++ {
		for b := 0; b < logic.NumValues; b++ {
			xs[a*8+b] = logic.Value(a)
			ys[a*8+b] = logic.Value(b)
		}
	}
	xi, xf, xh, xc := packLanes(xs)
	yi, yf, yh, yc := packLanes(ys)
	for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
		for _, gt := range types {
			got := foldFill64(alg.IsRobust(), gt,
				[]Word{xi, yi}, []Word{xf, yf}, []Word{xh, yh}, []Word{xc, yc})
			for k := 0; k < 64; k++ {
				want := alg.Eval(gt, []logic.Value{xs[k], ys[k]})
				r := Rail64{I: []Word{got.i}, F: []Word{got.f}, H: []Word{got.h}, C: []Word{got.c}}
				if v := r.Lane(0, uint(k)); v != want {
					t.Fatalf("%s %s(%s,%s): lane %d = %s, scalar %s",
						alg.Name(), gt, xs[k], ys[k], k, v, want)
				}
			}
		}
	}
}

// TestFoldFill64Unary checks Buf/Not/DFF pass-through and inversion over
// all eight values.
func TestFoldFill64Unary(t *testing.T) {
	var xs [64]logic.Value
	for k := range xs {
		xs[k] = logic.Value(k % logic.NumValues)
	}
	xi, xf, xh, xc := packLanes(xs)
	for _, gt := range []netlist.GateType{netlist.Buf, netlist.Not, netlist.DFF} {
		got := foldFill64(true, gt, []Word{xi}, []Word{xf}, []Word{xh}, []Word{xc})
		for k := 0; k < 64; k++ {
			want := logic.Robust.Eval(gt, []logic.Value{xs[k]})
			r := Rail64{I: []Word{got.i}, F: []Word{got.f}, H: []Word{got.h}, C: []Word{got.c}}
			if v := r.Lane(0, uint(k)); v != want {
				t.Fatalf("%s(%s): lane %d = %s, scalar %s", gt, xs[k], k, v, want)
			}
		}
	}
}

// TestFoldFill64Wide checks the n-ary left fold (including the trailing
// inversion) against the scalar evaluator on random 3- and 4-input
// combinations.
func TestFoldFill64Wide(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	types := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor,
	}
	for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
		for trial := 0; trial < 50; trial++ {
			width := 3 + rng.Intn(2)
			lanes := make([][64]logic.Value, width)
			for p := range lanes {
				for k := range lanes[p] {
					lanes[p][k] = logic.Value(rng.Intn(logic.NumValues))
				}
			}
			insI := make([]Word, width)
			insF := make([]Word, width)
			insH := make([]Word, width)
			insC := make([]Word, width)
			for p := range lanes {
				insI[p], insF[p], insH[p], insC[p] = packLanes(lanes[p])
			}
			scratch := make([]logic.Value, width)
			for _, gt := range types {
				got := foldFill64(alg.IsRobust(), gt, insI, insF, insH, insC)
				for k := 0; k < 64; k++ {
					for p := range lanes {
						scratch[p] = lanes[p][k]
					}
					want := alg.Eval(gt, scratch)
					r := Rail64{I: []Word{got.i}, F: []Word{got.f}, H: []Word{got.h}, C: []Word{got.c}}
					if v := r.Lane(0, uint(k)); v != want {
						t.Fatalf("%s %s width %d lane %d: batched %s, scalar %s",
							alg.Name(), gt, width, k, v, want)
					}
				}
			}
		}
	}
}

// TestEvalFill64MatchesEval8 cross-checks the whole-frame rail walk
// against the scalar eight-valued evaluation: 64 independent random
// binary frames per word, one delay fault injected in every lane (the
// batched X-fill situation), every node's eight-valued value in lane k
// must equal a scalar Eval8 of frame k, and the capture words must equal
// the scalar capture rule. Both algebras, every fault line, plus the
// fault-free walk.
func TestEvalFill64MatchesEval8(t *testing.T) {
	c := delayTestCircuit(t)
	net := NewNet(c)
	all := faults.AllDelay(c)
	rng := rand.New(rand.NewSource(64))
	r := net.NewRail64()
	goodW := make([]Word, len(c.DFFs))
	faultyW := make([]Word, len(c.DFFs))

	words := func(n int) []Word {
		out := make([]Word, n)
		for i := range out {
			out[i] = Word(rng.Uint64())
		}
		return out
	}
	laneBits := func(w []Word, k uint) []V3 {
		out := make([]V3, len(w))
		for i := range w {
			out[i] = V3(w[i] >> k & 1)
		}
		return out
	}
	injections := []*InjectDelay{nil}
	for _, f := range all {
		injections = append(injections, &InjectDelay{Line: f.Line, SlowToRise: f.Type == faults.SlowToRise})
	}
	for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
		for trial := 0; trial < 20; trial++ {
			v1w, v2w := words(len(c.PIs)), words(len(c.PIs))
			s0w, s1w := words(len(c.DFFs)), words(len(c.DFFs))
			for _, inj := range injections {
				for i, pi := range c.PIs {
					r.SetInput(pi, v1w[i], v2w[i])
				}
				for i, ff := range c.DFFs {
					r.SetInput(ff, s0w[i], s1w[i])
				}
				net.EvalFill64(alg, r, inj)
				det := net.ObserveFill64(r)
				carried := net.NextStateFill64(r, inj, goodW, faultyW)

				for k := uint(0); k < 64; k++ {
					ref := net.LoadFrame8(laneBits(v1w, k), laneBits(v2w, k),
						laneBits(s0w, k), laneBits(s1w, k))
					net.Eval8(alg, ref, inj)
					for id := range c.Nodes {
						if got, want := r.Lane(netlist.NodeID(id), k), ref[id]; got != want {
							t.Fatalf("%s trial %d inj %v lane %d node %d: batched %s, scalar %s",
								alg.Name(), trial, inj, k, id, got, want)
						}
					}
					wantDet := false
					for _, po := range c.POs {
						wantDet = wantDet || ref[po].Carrying()
					}
					if got := det>>k&1 != 0; got != wantDet {
						t.Fatalf("%s trial %d inj %v lane %d: batched PO detect %v, scalar %v",
							alg.Name(), trial, inj, k, got, wantDet)
					}
					next := net.NextState8(ref, inj)
					wantCarried := false
					for i, w := range next {
						var wantG, wantF uint8
						wantG = w.Final()
						if w.Carrying() {
							wantF = w.Initial()
							wantCarried = true
						} else {
							wantF = w.Final()
						}
						if got := goodW[i]>>k&1 != 0; got != (wantG == 1) {
							t.Fatalf("%s trial %d inj %v lane %d FF %d: batched good capture %v, scalar %d",
								alg.Name(), trial, inj, k, i, got, wantG)
						}
						if got := faultyW[i]>>k&1 != 0; got != (wantF == 1) {
							t.Fatalf("%s trial %d inj %v lane %d FF %d: batched faulty capture %v, scalar %d",
								alg.Name(), trial, inj, k, i, got, wantF)
						}
					}
					if got := carried>>k&1 != 0; got != wantCarried {
						t.Fatalf("%s trial %d inj %v lane %d: batched carried %v, scalar %v",
							alg.Name(), trial, inj, k, got, wantCarried)
					}
				}
			}
		}
	}
}

// TestRail64PutLaneRoundTrip pins the lane encode/decode pair over all
// eight values in all 64 lanes.
func TestRail64PutLaneRoundTrip(t *testing.T) {
	c := delayTestCircuit(t)
	r := NewNet(c).NewRail64()
	for k := uint(0); k < 64; k++ {
		for v := logic.Value(0); v < logic.NumValues; v++ {
			r.PutLane(0, k, v)
			if got := r.Lane(0, k); got != v {
				t.Fatalf("lane %d: put %s, got %s", k, v, got)
			}
		}
	}
}
