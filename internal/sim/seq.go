package sim

import "math/rand"

// Step is the observable result of one sequential frame.
type Step struct {
	Outputs []V3 // PO values, declaration order
	State   []V3 // next state (PPO values), DFF declaration order
}

// SeqSim3 simulates the sequential circuit for one frame per vector,
// starting from initState (nil means the all-X power-up state). It
// returns one Step per frame; the machine state after frame k is
// steps[k].State.
func (n *Net) SeqSim3(initState []V3, vectors [][]V3) []Step {
	state := initState
	steps := make([]Step, 0, len(vectors))
	for _, vec := range vectors {
		vals := n.LoadFrame(vec, state)
		n.Eval3(vals, nil)
		st := Step{Outputs: n.Outputs3(vals), State: n.NextState3(vals, nil)}
		steps = append(steps, st)
		state = st.State
	}
	return steps
}

// XFill replaces every X in the vector with a pseudo-random binary value,
// the paper's phase-1 treatment of don't-cares before fault simulation.
func XFill(vec []V3, rng *rand.Rand) []V3 {
	out := make([]V3, len(vec))
	for i, v := range vec {
		if v == X {
			out[i] = V3(rng.Intn(2))
		} else {
			out[i] = v
		}
	}
	return out
}

// KnownCount returns how many values in the vector are not X.
func KnownCount(vec []V3) int {
	n := 0
	for _, v := range vec {
		if v.Known() {
			n++
		}
	}
	return n
}
