package sim

import "fogbuster/internal/netlist"

// Word is a 64-way parallel two-valued signal: bit k holds the value of
// the signal under pattern k.
type Word = uint64

// EvalGate64 evaluates one gate over 64 patterns at once.
func EvalGate64(t netlist.GateType, ins []Word) Word {
	var v Word
	switch t {
	case netlist.Buf, netlist.DFF:
		return ins[0]
	case netlist.Not:
		return ^ins[0]
	case netlist.And, netlist.Nand:
		v = ^Word(0)
		for _, in := range ins {
			v &= in
		}
		if t == netlist.Nand {
			v = ^v
		}
	case netlist.Or, netlist.Nor:
		for _, in := range ins {
			v |= in
		}
		if t == netlist.Nor {
			v = ^v
		}
	case netlist.Xor, netlist.Xnor:
		for _, in := range ins {
			v ^= in
		}
		if t == netlist.Xnor {
			v = ^v
		}
	default:
		panic("sim: EvalGate64 on non-gate " + t.String())
	}
	return v
}

// Eval64 evaluates the combinational block over 64 patterns in parallel.
// vals must hold PI and PPI words on entry.
func (n *Net) Eval64(vals []Word) {
	c := n.C
	var ins [16]Word
	for _, id := range c.GateOrder() {
		node := &c.Nodes[id]
		buf := ins[:0]
		if len(node.Fanin) > len(ins) {
			buf = make([]Word, 0, len(node.Fanin))
		}
		for _, in := range node.Fanin {
			buf = append(buf, vals[in])
		}
		vals[id] = EvalGate64(node.Type, buf)
	}
}

// NextState64 extracts the PPO words after Eval64.
func (n *Net) NextState64(vals []Word) []Word {
	c := n.C
	next := make([]Word, len(c.DFFs))
	for i, ff := range c.DFFs {
		next[i] = vals[c.Nodes[ff].Fanin[0]]
	}
	return next
}

// LoadFrame64 fills a fresh word array with PI and state words.
func (n *Net) LoadFrame64(vector, state []Word) []Word {
	c := n.C
	vals := make([]Word, len(c.Nodes))
	for i, pi := range c.PIs {
		if vector != nil {
			vals[pi] = vector[i]
		}
	}
	for i, ff := range c.DFFs {
		if state != nil {
			vals[ff] = state[i]
		}
	}
	return vals
}
