package sim

import "fogbuster/internal/netlist"

// Word is a 64-way parallel two-valued signal: bit k holds the value of
// the signal under pattern k.
type Word = uint64

// AllOnes is the Word with every pattern bit set.
const AllOnes = ^Word(0)

// EvalGate64 evaluates one gate over 64 patterns at once.
func EvalGate64(t netlist.GateType, ins []Word) Word {
	var v Word
	switch t {
	case netlist.Buf, netlist.DFF:
		return ins[0]
	case netlist.Not:
		return ^ins[0]
	case netlist.And, netlist.Nand:
		v = ^Word(0)
		for _, in := range ins {
			v &= in
		}
		if t == netlist.Nand {
			v = ^v
		}
	case netlist.Or, netlist.Nor:
		for _, in := range ins {
			v |= in
		}
		if t == netlist.Nor {
			v = ^v
		}
	case netlist.Xor, netlist.Xnor:
		for _, in := range ins {
			v ^= in
		}
		if t == netlist.Xnor {
			v = ^v
		}
	default:
		panic("sim: EvalGate64 on non-gate " + t.String())
	}
	return v
}

// Eval64 evaluates the combinational block over 64 patterns in parallel.
// vals must hold PI and PPI words on entry. The fanin scratch lives on the
// Net (sized once from the circuit's maximum fanin), so Eval64 never
// allocates; a Net must therefore not run Eval64 from two goroutines at
// once.
func (n *Net) Eval64(vals []Word) {
	t := n.T
	for _, id := range t.Order {
		beg, end := t.FaninOff[id], t.FaninOff[id+1]
		buf := n.ins64[:end-beg]
		for k := beg; k < end; k++ {
			buf[k-beg] = vals[t.Fanin[k]]
		}
		vals[id] = EvalGate64(t.Types[id], buf)
	}
}

// LoadFrame64 fills a fresh word array with PI and state words.
func (n *Net) LoadFrame64(vector, state []Word) []Word {
	c := n.C
	vals := make([]Word, len(c.Nodes))
	for i, pi := range c.PIs {
		if vector != nil {
			vals[pi] = vector[i]
		}
	}
	for i, ff := range c.DFFs {
		if state != nil {
			vals[ff] = state[i]
		}
	}
	return vals
}

// Frame64 is a 64-way dual-rail three-valued frame: for every node, bit k
// of K says whether machine k knows the value, and bit k of V holds that
// value (V bits are zero wherever K is zero). The encoding makes the
// 64-way evaluation bit-exact against EvalGate3 per machine, including
// X propagation, so the scalar and batched simulators are interchangeable.
type Frame64 struct {
	V, K []Word
}

// NewFrame64 allocates a dual-rail frame buffer for the circuit. The
// buffer is reusable across frames via LoadFrame64DR.
func (n *Net) NewFrame64() *Frame64 {
	return &Frame64{
		V: make([]Word, len(n.C.Nodes)),
		K: make([]Word, len(n.C.Nodes)),
	}
}

// Broadcast64 converts one scalar three-valued value into its dual-rail
// broadcast (the same value under all 64 machines).
func Broadcast64(v V3) (val, known Word) {
	switch v {
	case Lo:
		return 0, AllOnes
	case Hi:
		return AllOnes, AllOnes
	default:
		return 0, 0
	}
}

// LoadFrame64DR broadcasts a scalar PI vector and state into the frame
// (nil means all-X, as in LoadFrame). Callers may afterwards overwrite
// individual state or input words to differentiate the 64 machines, e.g.
// XOR-flipping one state bit per machine for observability analysis.
func (n *Net) LoadFrame64DR(f *Frame64, vector, state []V3) {
	c := n.C
	for i, pi := range c.PIs {
		if vector == nil {
			f.V[pi], f.K[pi] = 0, 0
		} else {
			f.V[pi], f.K[pi] = Broadcast64(vector[i])
		}
	}
	for i, ff := range c.DFFs {
		if state == nil {
			f.V[ff], f.K[ff] = 0, 0
		} else {
			f.V[ff], f.K[ff] = Broadcast64(state[i])
		}
	}
}

// Inject64 is a 64-way fault injector: each of the 64 machines may force
// one line (stem or fanout branch) to a constant binary value, the
// parallel-fault generalization of Inject3. Build one per Net and Reset it
// between batches; the mask arrays are indexed by node (stems) and by flat
// edge (branches), so the hot evaluation loop needs no map lookups.
type Inject64 struct {
	net        *Net
	stemMask   []Word // per node: machines forcing this stem
	stemOnes   []Word // per node: machines forcing it to 1
	branchMask []Word // per edge: machines forcing this connection
	branchOnes []Word // per edge: machines forcing it to 1
	stemNodes  []netlist.NodeID
	hasStem    bool
	hasBranch  bool
}

// NewInject64 builds an empty injector for the circuit.
func (n *Net) NewInject64() *Inject64 {
	return &Inject64{
		net:        n,
		stemMask:   make([]Word, len(n.C.Nodes)),
		stemOnes:   make([]Word, len(n.C.Nodes)),
		branchMask: make([]Word, n.T.NumEdges()),
		branchOnes: make([]Word, n.T.NumEdges()),
	}
}

// Reset clears all injections for the next batch.
func (i *Inject64) Reset() {
	for _, id := range i.stemNodes {
		i.stemMask[id], i.stemOnes[id] = 0, 0
	}
	i.stemNodes = i.stemNodes[:0]
	if i.hasBranch {
		for e := range i.branchMask {
			i.branchMask[e], i.branchOnes[e] = 0, 0
		}
	}
	i.hasStem, i.hasBranch = false, false
}

// Add makes machine bit (0..63) force line l to the known value v,
// mirroring Inject3 semantics: a stem injection replaces the node's value
// for every reader and its own PO/PPO observation, a branch injection only
// the one connection.
func (i *Inject64) Add(bit uint, l netlist.Line, v V3) {
	if !v.Known() {
		panic("sim: Inject64 requires a known value")
	}
	m := Word(1) << bit
	if l.IsStem() {
		if i.stemMask[l.Node] == 0 {
			i.stemNodes = append(i.stemNodes, l.Node)
		}
		i.stemMask[l.Node] |= m
		if v == Hi {
			i.stemOnes[l.Node] |= m
		}
		i.hasStem = true
		return
	}
	t := i.net.T
	if l.Branch < 0 || int32(l.Branch) >= t.FanoutOff[l.Node+1]-t.FanoutOff[l.Node] {
		panic("sim: Inject64 branch line without a matching connection")
	}
	_, e := t.BranchEdge(l.Node, l.Branch)
	i.branchMask[e] |= m
	if v == Hi {
		i.branchOnes[e] |= m
	}
	i.hasBranch = true
}

// force overwrites the masked machines with the injected constant.
func force(v, k, mask, ones Word) (Word, Word) {
	return (v &^ mask) | ones, k | mask
}

// evalGate64DR evaluates one gate in the dual-rail domain. The three
// valued semantics match EvalGate3 bit-for-bit: a controlling known input
// decides the output even when siblings are unknown, XOR needs all inputs
// known.
func evalGate64DR(t netlist.GateType, insV, insK []Word) (Word, Word) {
	switch t {
	case netlist.Buf, netlist.DFF:
		return insV[0], insK[0]
	case netlist.Not:
		return ^insV[0] & insK[0], insK[0]
	case netlist.And, netlist.Nand:
		allOne := AllOnes
		anyZero := Word(0)
		for p, v := range insV {
			k := insK[p]
			allOne &= v & k
			anyZero |= ^v & k
		}
		k := allOne | anyZero
		v := allOne
		if t == netlist.Nand {
			v = ^v & k
		}
		return v, k
	case netlist.Or, netlist.Nor:
		anyOne := Word(0)
		allZero := AllOnes
		for p, v := range insV {
			k := insK[p]
			anyOne |= v & k
			allZero &= ^v & k
		}
		k := anyOne | allZero
		v := anyOne
		if t == netlist.Nor {
			v = ^v & k
		}
		return v, k
	case netlist.Xor, netlist.Xnor:
		x := Word(0)
		k := AllOnes
		for p, v := range insV {
			x ^= v
			k &= insK[p]
		}
		if t == netlist.Xnor {
			x = ^x
		}
		return x & k, k
	default:
		panic("sim: evalGate64DR on non-gate " + t.String())
	}
}

// Eval64DR evaluates the combinational block for 64 three-valued machines
// at once, with optional per-machine fault injection. The frame must hold
// the PI and PPI rails on entry (LoadFrame64DR); all other entries are
// overwritten. Scratch comes from the Net, so the call never allocates
// and must not run concurrently on one Net.
func (n *Net) Eval64DR(f *Frame64, inj *Inject64) {
	t := n.T
	insV := n.ins64[:t.MaxFanin]
	insK := n.ins64[t.MaxFanin:]
	if inj != nil && inj.hasStem {
		// A stem injection on a PI or PPI overrides the source value
		// itself, before any consumer reads it (cf. Eval3).
		for _, id := range inj.stemNodes {
			if typ := t.Types[id]; typ == netlist.Input || typ == netlist.DFF {
				f.V[id], f.K[id] = force(f.V[id], f.K[id], inj.stemMask[id], inj.stemOnes[id])
			}
		}
	}
	branch := inj != nil && inj.hasBranch
	for _, id := range t.Order {
		beg, end := t.FaninOff[id], t.FaninOff[id+1]
		for k := beg; k < end; k++ {
			v, kn := f.V[t.Fanin[k]], f.K[t.Fanin[k]]
			if branch && inj.branchMask[k] != 0 {
				v, kn = force(v, kn, inj.branchMask[k], inj.branchOnes[k])
			}
			insV[k-beg], insK[k-beg] = v, kn
		}
		v, k := evalGate64DR(t.Types[id], insV[:end-beg], insK[:end-beg])
		if inj != nil && inj.hasStem && inj.stemMask[id] != 0 {
			v, k = force(v, k, inj.stemMask[id], inj.stemOnes[id])
		}
		f.V[id], f.K[id] = v, k
	}
}

// NextState64DR extracts the PPO rails after Eval64DR into nextV/nextK
// (len(DFFs) each), respecting injections on DFF-feeding branches.
func (n *Net) NextState64DR(f *Frame64, inj *Inject64, nextV, nextK []Word) {
	t := n.T
	branch := inj != nil && inj.hasBranch
	for i, ff := range t.C.DFFs {
		e := t.FaninOff[ff]
		d := t.Fanin[e]
		v, k := f.V[d], f.K[d]
		if branch && inj.branchMask[e] != 0 {
			v, k = force(v, k, inj.branchMask[e], inj.branchOnes[e])
		}
		nextV[i], nextK[i] = v, k
	}
}
