package sim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

func TestV3Basics(t *testing.T) {
	if And3(Lo, X) != Lo || And3(Hi, X) != X || And3(Hi, Hi) != Hi {
		t.Error("And3 wrong")
	}
	if Or3(Hi, X) != Hi || Or3(Lo, X) != X || Or3(Lo, Lo) != Lo {
		t.Error("Or3 wrong")
	}
	if Xor3(Hi, X) != X || Xor3(Hi, Lo) != Hi || Xor3(Hi, Hi) != Lo {
		t.Error("Xor3 wrong")
	}
	if Not3(X) != X || Not3(Lo) != Hi {
		t.Error("Not3 wrong")
	}
	if Lo.String() != "0" || Hi.String() != "1" || X.String() != "X" {
		t.Error("String wrong")
	}
	// NAND with a controlling zero dominates unknowns.
	if EvalGate3(netlist.Nand, []V3{Lo, X, X}) != Hi {
		t.Error("NAND(0,X,X) should be 1")
	}
	if EvalGate3(netlist.Nor, []V3{Hi, X}) != Lo {
		t.Error("NOR(1,X) should be 0")
	}
}

func TestEval3C17(t *testing.T) {
	c := bench.NewC17()
	n := NewNet(c)
	// Exhaustive comparison against direct Boolean evaluation.
	for m := 0; m < 32; m++ {
		vec := make([]V3, 5)
		for i := range vec {
			vec[i] = V3((m >> i) & 1)
		}
		vals := n.LoadFrame(vec, nil)
		n.Eval3(vals, nil)
		nand := func(a, b V3) V3 { return Not3(And3(a, b)) }
		g10 := nand(vec[0], vec[2])
		g11 := nand(vec[2], vec[3])
		g16 := nand(vec[1], g11)
		g19 := nand(g11, vec[4])
		want22 := nand(g10, g16)
		want23 := nand(g16, g19)
		out := n.Outputs3(vals)
		if out[0] != want22 || out[1] != want23 {
			t.Fatalf("pattern %05b: got %v/%v want %v/%v", m, out[0], out[1], want22, want23)
		}
	}
}

func TestBranchVsStemInjection(t *testing.T) {
	c := bench.NewS27()
	n := NewNet(c)
	g8 := c.LookupID("G8")

	// Find the branch of G8 feeding G15.
	g15 := c.LookupID("G15")
	branch := -1
	for b, f := range c.Node(g8).Fanout {
		if f == g15 {
			branch = b
		}
	}
	if branch < 0 {
		t.Fatal("no G8->G15 branch")
	}

	// G7=1 makes G12=0, so both OR gates G15/G16 are sensitive to G8;
	// G14=NOT(G0)=1 and G6=1 make G8=1.
	vec := []V3{Lo, Lo, Lo, Lo}
	state := []V3{Lo, Hi, Hi}

	base := n.LoadFrame(vec, state)
	n.Eval3(base, nil)

	// Branch injection changes only the G15 side.
	vals := n.LoadFrame(vec, state)
	n.Eval3(vals, &Inject3{Line: netlist.Line{Node: g8, Branch: branch}, Value: Not3(base[g8])})
	g16 := c.LookupID("G16")
	if vals[g8] != base[g8] {
		t.Error("branch injection must not change the stem value")
	}
	if vals[g16] != base[g16] {
		t.Error("branch injection leaked into the other branch")
	}
	if vals[g15] == base[g15] {
		t.Error("branch injection had no effect on its consumer")
	}

	// Stem injection changes both consumers.
	vals2 := n.LoadFrame(vec, state)
	n.Eval3(vals2, &Inject3{Line: netlist.Stem(g8), Value: Not3(base[g8])})
	if vals2[g8] == base[g8] {
		t.Error("stem injection had no effect")
	}
	if vals2[g15] == base[g15] || vals2[g16] == base[g16] {
		t.Error("stem injection must reach both consumers")
	}
}

func TestPIStemInjection(t *testing.T) {
	c := bench.NewC17()
	n := NewNet(c)
	pi := c.PIs[2] // N3, fans out to two gates
	vec := []V3{Hi, Hi, Hi, Hi, Hi}
	vals := n.LoadFrame(vec, nil)
	n.Eval3(vals, &Inject3{Line: netlist.Stem(pi), Value: Lo})
	if vals[pi] != Lo {
		t.Error("PI stem injection must override the input value")
	}
	if vals[c.LookupID("N10")] != Hi {
		t.Error("NAND(1,0) should be 1 under injection")
	}
}

func TestV5Composite(t *testing.T) {
	for _, v := range []V5{Z5, O5, X5, D5, B5} {
		if got := FromPair(v.Good(), v.Faulty()); got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if FromPair(Hi, Lo) != D5 || FromPair(Lo, Hi) != B5 || FromPair(X, Lo) != X5 {
		t.Error("FromPair wrong")
	}
	if !D5.IsD() || !B5.IsD() || X5.IsD() {
		t.Error("IsD wrong")
	}
	// D through NAND with non-controlling side input inverts.
	if EvalGate5(netlist.Nand, []V5{D5, O5}) != B5 {
		t.Error("NAND(D,1) should be D'")
	}
	// D blocked by controlling side input.
	if EvalGate5(netlist.Nand, []V5{D5, Z5}) != O5 {
		t.Error("NAND(D,0) should be 1")
	}
	// D meeting X collapses to X.
	if EvalGate5(netlist.And, []V5{D5, X5}) != X5 {
		t.Error("AND(D,X) should be X")
	}
	if EvalGate5(netlist.Xor, []V5{D5, B5}) != O5 {
		t.Error("XOR(D,D') should be 1")
	}
}

func TestEval5MatchesPairOfEval3(t *testing.T) {
	c := bench.NewS27()
	n := NewNet(c)
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		vec5 := make([]V5, len(c.PIs))
		state5 := make([]V5, len(c.DFFs))
		vecG := make([]V3, len(c.PIs))
		vecF := make([]V3, len(c.PIs))
		stateG := make([]V3, len(c.DFFs))
		stateF := make([]V3, len(c.DFFs))
		for i := range vec5 {
			vec5[i] = V5(rng.Intn(5))
			vecG[i], vecF[i] = vec5[i].Good(), vec5[i].Faulty()
		}
		for i := range state5 {
			state5[i] = V5(rng.Intn(5))
			stateG[i], stateF[i] = state5[i].Good(), state5[i].Faulty()
		}
		vals5 := n.LoadFrame5(vec5, state5)
		n.Eval5(vals5, nil)
		valsG := n.LoadFrame(vecG, stateG)
		n.Eval3(valsG, nil)
		valsF := n.LoadFrame(vecF, stateF)
		n.Eval3(valsF, nil)
		for i := range vals5 {
			want := FromPair(valsG[i], valsF[i])
			// The composite evaluation may be more pessimistic than the
			// pair (X where the pair is known) but never the reverse, and
			// must agree exactly when it reports a known value.
			if vals5[i] != X5 && vals5[i] != want {
				t.Fatalf("node %s: composite %v, pair %v", c.Nodes[i].Name, vals5[i], want)
			}
		}
	}
}

func TestEval8EndpointsMatchTwoFrames(t *testing.T) {
	c := bench.NewS27()
	n := NewNet(c)
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 200; iter++ {
		v1 := randomBits(rng, len(c.PIs))
		v2 := randomBits(rng, len(c.PIs))
		s0 := randomBits(rng, len(c.DFFs))

		// Frame 1 two-valued simulation gives the latched state s1.
		f1 := n.LoadFrame(v1, s0)
		n.Eval3(f1, nil)
		s1 := n.NextState3(f1, nil)

		f2 := n.LoadFrame(v2, s1)
		n.Eval3(f2, nil)

		vals := n.LoadFrame8(v1, v2, s0, s1)
		n.Eval8(logic.Robust, vals, nil)
		for i := range vals {
			if uint8(f1[i]) != vals[i].Initial() {
				t.Fatalf("node %s: initial %v vs frame1 %v", c.Nodes[i].Name, vals[i], f1[i])
			}
			if uint8(f2[i]) != vals[i].Final() {
				t.Fatalf("node %s: final %v vs frame2 %v", c.Nodes[i].Name, vals[i], f2[i])
			}
		}
	}
}

func TestEval8Injection(t *testing.T) {
	c := bench.NewC17()
	n := NewNet(c)
	// Drive N1 0->1 with everything else steady so N10 output falls.
	v1 := []V3{Lo, Hi, Hi, Hi, Hi}
	v2 := []V3{Hi, Hi, Hi, Hi, Hi}
	n1 := c.PIs[0]
	vals := n.LoadFrame8(v1, v2, nil, nil)
	n.Eval8(logic.Robust, vals, &InjectDelay{Line: netlist.Stem(n1), SlowToRise: true})
	if vals[n1] != logic.RiseC {
		t.Fatalf("site value %v, want Rc", vals[n1])
	}
	// N10 = NAND(N1, N3): rising carrying input, steady-1 side -> Fc.
	if got := vals[c.LookupID("N10")]; got != logic.FallC {
		t.Fatalf("N10 = %v, want Fc", got)
	}
	// Wrong transition direction does not excite the fault.
	vals2 := n.LoadFrame8(v1, v2, nil, nil)
	n.Eval8(logic.Robust, vals2, &InjectDelay{Line: netlist.Stem(n1), SlowToRise: false})
	if vals2[n1] != logic.Rise {
		t.Fatalf("unexcited site value %v, want R", vals2[n1])
	}
}

func TestParallelMatchesScalar(t *testing.T) {
	c := bench.RippleCarryAdder(6)
	n := NewNet(c)
	rng := rand.New(rand.NewSource(64))
	vecW := make([]Word, len(c.PIs))
	for i := range vecW {
		vecW[i] = rng.Uint64()
	}
	valsW := n.LoadFrame64(vecW, nil)
	n.Eval64(valsW)
	for k := 0; k < 64; k++ {
		vec := make([]V3, len(c.PIs))
		for i := range vec {
			vec[i] = V3((vecW[i] >> k) & 1)
		}
		vals := n.LoadFrame(vec, nil)
		n.Eval3(vals, nil)
		for i := range vals {
			if uint64(vals[i]) != (valsW[i]>>k)&1 {
				t.Fatalf("pattern %d node %s: scalar %v parallel %d", k, c.Nodes[i].Name, vals[i], (valsW[i]>>k)&1)
			}
		}
	}
}

func TestSeqSimShiftRegister(t *testing.T) {
	c := bench.ShiftRegister(4)
	n := NewNet(c)
	vectors := [][]V3{{Hi}, {Lo}, {Hi}, {Hi}, {Lo}, {Lo}, {Lo}, {Lo}}
	steps := n.SeqSim3(nil, vectors)
	// After k frames, the serial bit from frame k-4 appears at the output.
	for k := 4; k < len(steps); k++ {
		want := vectors[k-3][0] // output is the last FF, loaded 4 frames ago... verify via state instead
		_ = want
	}
	// The state after frame k is the reversed last-4 input bits.
	last := steps[len(steps)-1].State
	if len(last) != 4 {
		t.Fatalf("state width %d", len(last))
	}
	for i := 0; i < 4; i++ {
		want := vectors[len(vectors)-1-i][0]
		if last[i] != want {
			t.Fatalf("state[%d] = %v, want %v", i, last[i], want)
		}
	}
	// X power-up state drains after 4 frames.
	if steps[2].Outputs[0] != X {
		t.Error("output should still be X before the pipeline fills")
	}
	if steps[7].Outputs[0] == X {
		t.Error("output should be known after the pipeline fills")
	}
}

func TestXFill(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vec := []V3{X, Hi, X, Lo, X}
	got := XFill(vec, rng)
	if got[1] != Hi || got[3] != Lo {
		t.Error("XFill must preserve known values")
	}
	for i, v := range got {
		if !v.Known() {
			t.Errorf("position %d still X", i)
		}
	}
	if KnownCount(vec) != 2 || KnownCount(got) != 5 {
		t.Error("KnownCount wrong")
	}
}

func randomBits(rng *rand.Rand, n int) []V3 {
	out := make([]V3, n)
	for i := range out {
		out[i] = V3(rng.Intn(2))
	}
	return out
}

func TestOnLine(t *testing.T) {
	c := bench.NewS27()
	n := NewNet(c)
	g8 := c.LookupID("G8")
	g15 := c.LookupID("G15")
	// Position of G8 in G15's fanin.
	pos := -1
	for i, f := range c.Node(g15).Fanin {
		if f == g8 {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("G8 not a fanin of G15")
	}
	if !n.OnLine(netlist.Stem(g8), g15, pos) {
		t.Error("stem must cover all connections")
	}
	br := n.BranchOf(g15, pos)
	if !n.OnLine(netlist.Line{Node: g8, Branch: br}, g15, pos) {
		t.Error("matching branch must cover the connection")
	}
	if n.OnLine(netlist.Line{Node: g8, Branch: br ^ 1}, g15, pos) {
		t.Error("other branch must not cover the connection")
	}
}
