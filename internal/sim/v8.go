package sim

import (
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// InjectDelay identifies a gate delay fault site for two-frame simulation:
// when the fault-free two-frame value at the line is the matching clean
// transition, it is converted into the corresponding fault-carrying value
// (R into Rc for slow-to-rise, F into Fc for slow-to-fall), exactly the
// paper's rule that the conversion happens only at the fault location.
type InjectDelay struct {
	Line       netlist.Line
	SlowToRise bool // else slow-to-fall
}

func (d *InjectDelay) apply(v logic.Value) logic.Value {
	if d.SlowToRise && v == logic.Rise {
		return logic.RiseC
	}
	if !d.SlowToRise && v == logic.Fall {
		return logic.FallC
	}
	return v
}

// Eval8 evaluates the combinational block in the eight-valued two-frame
// algebra. vals must hold PI and PPI values on entry (normally from
// LoadFrame8). The optional injection excites a delay fault at its site.
func (n *Net) Eval8(alg *logic.Algebra, vals []logic.Value, inj *InjectDelay) {
	c := n.C
	var ins [16]logic.Value
	if inj != nil && inj.Line.IsStem() {
		if t := c.Nodes[inj.Line.Node].Type; t == netlist.Input || t == netlist.DFF {
			vals[inj.Line.Node] = inj.apply(vals[inj.Line.Node])
		}
	}
	for _, id := range c.GateOrder() {
		node := &c.Nodes[id]
		buf := ins[:0]
		if len(node.Fanin) > len(ins) {
			buf = make([]logic.Value, 0, len(node.Fanin))
		}
		for pos, in := range node.Fanin {
			v := vals[in]
			if inj != nil && !inj.Line.IsStem() && n.OnLine(inj.Line, id, pos) {
				v = inj.apply(v)
			}
			buf = append(buf, v)
		}
		v := alg.Eval(node.Type, buf)
		if inj != nil && inj.Line.IsStem() && inj.Line.Node == id {
			v = inj.apply(v)
		}
		vals[id] = v
	}
}

// NextState8 extracts the PPO two-frame values after Eval8, respecting an
// injection on a DFF-feeding branch.
func (n *Net) NextState8(vals []logic.Value, inj *InjectDelay) []logic.Value {
	next := make([]logic.Value, len(n.C.DFFs))
	n.NextState8Into(next, vals, inj)
	return next
}

// NextState8Into is NextState8 writing into a caller-owned buffer of
// len(DFFs), for allocation-free inner loops.
func (n *Net) NextState8Into(next []logic.Value, vals []logic.Value, inj *InjectDelay) {
	c := n.C
	for i, ff := range c.DFFs {
		d := c.Nodes[ff].Fanin[0]
		v := vals[d]
		if inj != nil && !inj.Line.IsStem() && n.OnLine(inj.Line, ff, 0) {
			v = inj.apply(v)
		}
		next[i] = v
	}
}

// LoadFrame8 builds the two-frame value array from two binary PI vectors
// (the initial-frame vector v1 and the test-frame vector v2) and the two
// consecutive states s0 (present during the initial frame) and s1 (latched
// into the flip-flops at the frame boundary). All inputs must be fully
// specified: the paper performs random X-fill before fault simulation.
func (n *Net) LoadFrame8(v1, v2, s0, s1 []V3) []logic.Value {
	vals := make([]logic.Value, len(n.C.Nodes))
	n.LoadFrame8Into(vals, v1, v2, s0, s1)
	return vals
}

// LoadFrame8Into is LoadFrame8 writing into a caller-owned buffer of
// len(Nodes), for allocation-free inner loops. Gate entries need no
// clearing: Eval8 overwrites every one of them.
func (n *Net) LoadFrame8Into(vals []logic.Value, v1, v2, s0, s1 []V3) {
	c := n.C
	toVal := func(a, b V3) logic.Value {
		return logic.FromEndpoints(uint8(a), uint8(b), false)
	}
	for i, pi := range c.PIs {
		vals[pi] = toVal(v1[i], v2[i])
	}
	for i, ff := range c.DFFs {
		vals[ff] = toVal(s0[i], s1[i])
	}
}
