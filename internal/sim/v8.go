package sim

import (
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// InjectDelay identifies a gate delay fault site for two-frame simulation:
// when the fault-free two-frame value at the line is the matching clean
// transition, it is converted into the corresponding fault-carrying value
// (R into Rc for slow-to-rise, F into Fc for slow-to-fall), exactly the
// paper's rule that the conversion happens only at the fault location.
type InjectDelay struct {
	Line       netlist.Line
	SlowToRise bool // else slow-to-fall
}

func (d *InjectDelay) apply(v logic.Value) logic.Value {
	if d.SlowToRise && v == logic.Rise {
		return logic.RiseC
	}
	if !d.SlowToRise && v == logic.Fall {
		return logic.FallC
	}
	return v
}

// Eval8 evaluates the combinational block in the eight-valued two-frame
// algebra. vals must hold PI and PPI values on entry (normally from
// LoadFrame8). The optional injection excites a delay fault at its site.
// The fanin scratch lives on the Net (sized once from the topology's
// maximum fanin), so the walk never allocates.
func (n *Net) Eval8(alg *logic.Algebra, vals []logic.Value, inj *InjectDelay) {
	t := n.T
	injEdge := -1
	stem := netlist.None
	if inj != nil {
		if inj.Line.IsStem() {
			stem = inj.Line.Node
			if typ := t.Types[stem]; typ == netlist.Input || typ == netlist.DFF {
				vals[stem] = inj.apply(vals[stem])
			}
		} else {
			injEdge = t.lineEdge(inj.Line)
		}
	}
	ins := n.ins8
	for _, id := range t.Order {
		beg, end := t.FaninOff[id], t.FaninOff[id+1]
		buf := ins[:end-beg]
		for k := beg; k < end; k++ {
			v := vals[t.Fanin[k]]
			if int(k) == injEdge {
				v = inj.apply(v)
			}
			buf[k-beg] = v
		}
		v := alg.Eval(t.Types[id], buf)
		if id == stem {
			v = inj.apply(v)
		}
		vals[id] = v
	}
}

// NextState8 extracts the PPO two-frame values after Eval8, respecting an
// injection on a DFF-feeding branch.
func (n *Net) NextState8(vals []logic.Value, inj *InjectDelay) []logic.Value {
	next := make([]logic.Value, len(n.C.DFFs))
	n.NextState8Into(next, vals, inj)
	return next
}

// NextState8Into is NextState8 writing into a caller-owned buffer of
// len(DFFs), for allocation-free inner loops.
func (n *Net) NextState8Into(next []logic.Value, vals []logic.Value, inj *InjectDelay) {
	t := n.T
	injEdge := -1
	if inj != nil && !inj.Line.IsStem() {
		injEdge = t.lineEdge(inj.Line)
	}
	for i, ff := range t.C.DFFs {
		e := t.FaninOff[ff]
		v := vals[t.Fanin[e]]
		if int(e) == injEdge {
			v = inj.apply(v)
		}
		next[i] = v
	}
}

// LoadFrame8 builds the two-frame value array from two binary PI vectors
// (the initial-frame vector v1 and the test-frame vector v2) and the two
// consecutive states s0 (present during the initial frame) and s1 (latched
// into the flip-flops at the frame boundary). All inputs must be fully
// specified: the paper performs random X-fill before fault simulation.
func (n *Net) LoadFrame8(v1, v2, s0, s1 []V3) []logic.Value {
	vals := make([]logic.Value, len(n.C.Nodes))
	n.LoadFrame8Into(vals, v1, v2, s0, s1)
	return vals
}

// LoadFrame8Into is LoadFrame8 writing into a caller-owned buffer of
// len(Nodes), for allocation-free inner loops. Gate entries need no
// clearing: Eval8 overwrites every one of them.
func (n *Net) LoadFrame8Into(vals []logic.Value, v1, v2, s0, s1 []V3) {
	c := n.C
	toVal := func(a, b V3) logic.Value {
		return logic.FromEndpoints(uint8(a), uint8(b), false)
	}
	for i, pi := range c.PIs {
		vals[pi] = toVal(v1[i], v2[i])
	}
	for i, ff := range c.DFFs {
		vals[ff] = toVal(s0[i], s1[i])
	}
}
