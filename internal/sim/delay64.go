package sim

import (
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// This file implements the 64-way batched counterpart of Eval8: the carry
// rail of the eight-valued two-frame evaluation for 64 independent delay
// fault machines per word.
//
// The encoding rests on an invariant of the algebra (pinned by
// internal/logic's TestPlainCarryInvariance): the plain part of every
// gate output — initial value, final value, hazard — is a function of the
// plain parts of the inputs alone. A delay fault injection converts a
// clean transition into the matching carrying value without touching the
// plain part, so across all 64 faulty machines of a fully specified
// two-frame situation every node has ONE shared plain value (the
// fault-free Eval8 result) and differs only in the fault-effect flag.
// The batched evaluation therefore propagates a single 64-bit carry word
// per node — bit k is machine k's fault-effect flag — against the scalar
// fault-free values, instead of re-evaluating the whole algebra 64 times.
//
// Per fold step of a gate the four carry combinations of (accumulator,
// input) map to at most three scalar table lookups, broadcast as masks:
// the algebra's own 2-input tables decide whether a carrying accumulator,
// a carrying input, or both keep the effect alive, which makes the word
// path bit-identical to the scalar left fold by construction.

// InjectDelay64 is the 64-way delay fault injector: each of the 64
// machines may own one fault site (stem or fanout branch) and one
// polarity, the parallel-fault generalization of InjectDelay. Build one
// per Net and Reset it between batches; the mask arrays are indexed by
// node (stems) and by flat edge (branches), so the hot evaluation loop
// needs no map lookups.
type InjectDelay64 struct {
	net       *Net
	stemRise  []Word // per node: machines injecting slow-to-rise at the stem
	stemFall  []Word // per node: machines injecting slow-to-fall at the stem
	edgeRise  []Word // per edge: machines injecting slow-to-rise on the connection
	edgeFall  []Word // per edge: machines injecting slow-to-fall on the connection
	stemNodes []netlist.NodeID
	edges     []int
	edgeNodes []netlist.NodeID // consumer of each entry in edges (event-kernel seeds)
	hasStem   bool
	hasBranch bool
}

// NewInjectDelay64 builds an empty injector for the circuit.
func (n *Net) NewInjectDelay64() *InjectDelay64 {
	return &InjectDelay64{
		net:      n,
		stemRise: make([]Word, len(n.C.Nodes)),
		stemFall: make([]Word, len(n.C.Nodes)),
		edgeRise: make([]Word, n.T.NumEdges()),
		edgeFall: make([]Word, n.T.NumEdges()),
	}
}

// Reset clears all injections for the next batch.
func (i *InjectDelay64) Reset() {
	for _, id := range i.stemNodes {
		i.stemRise[id], i.stemFall[id] = 0, 0
	}
	i.stemNodes = i.stemNodes[:0]
	for _, e := range i.edges {
		i.edgeRise[e], i.edgeFall[e] = 0, 0
	}
	i.edges = i.edges[:0]
	i.edgeNodes = i.edgeNodes[:0]
	i.hasStem, i.hasBranch = false, false
}

// Add makes machine bit (0..63) inject a delay fault of the given
// polarity at line l, mirroring InjectDelay semantics: the conversion of
// the clean transition into the carrying value happens only at the fault
// location (stem: the node's own value; branch: the one connection). The
// fanout CSR resolves a branch line to its consumer and flat edge in
// O(1).
func (i *InjectDelay64) Add(bit uint, l netlist.Line, slowToRise bool) {
	m := Word(1) << bit
	if l.IsStem() {
		if i.stemRise[l.Node]|i.stemFall[l.Node] == 0 {
			i.stemNodes = append(i.stemNodes, l.Node)
		}
		if slowToRise {
			i.stemRise[l.Node] |= m
		} else {
			i.stemFall[l.Node] |= m
		}
		i.hasStem = true
		return
	}
	t := i.net.T
	if l.Branch < 0 || int32(l.Branch) >= t.FanoutOff[l.Node+1]-t.FanoutOff[l.Node] {
		panic("sim: InjectDelay64 branch line without a matching connection")
	}
	consumer, e := t.BranchEdge(l.Node, l.Branch)
	if i.edgeRise[e]|i.edgeFall[e] == 0 {
		i.edges = append(i.edges, e)
		i.edgeNodes = append(i.edgeNodes, consumer)
	}
	if slowToRise {
		i.edgeRise[e] |= m
	} else {
		i.edgeFall[e] |= m
	}
	i.hasBranch = true
}

// excite returns the machines whose injection is excited by the plain
// fault-free value v at the site: slow-to-rise machines when v rises,
// slow-to-fall machines when v falls (the batched form of
// InjectDelay.apply, which converts R into Rc and F into Fc).
func excite(rise, fall Word, v logic.Value) Word {
	switch v {
	case logic.Rise:
		return rise
	case logic.Fall:
		return fall
	}
	return 0
}

func (i *InjectDelay64) stemExcite(id netlist.NodeID, v logic.Value) Word {
	return excite(i.stemRise[id], i.stemFall[id], v)
}

func (i *InjectDelay64) edgeExcite(e int, v logic.Value) Word {
	return excite(i.edgeRise[e], i.edgeFall[e], v)
}

// core2 applies the gate type's 2-input core operation (the fold step of
// logic.Algebra.Eval, without the trailing inversion, which preserves the
// carry flag and is therefore irrelevant to the carry rail).
func core2(alg *logic.Algebra, t netlist.GateType, x, y logic.Value) logic.Value {
	switch t {
	case netlist.And, netlist.Nand:
		return alg.And(x, y)
	case netlist.Or, netlist.Nor:
		return alg.Or(x, y)
	case netlist.Xor, netlist.Xnor:
		return alg.Xor(x, y)
	default:
		panic("sim: core2 on non-folding gate " + t.String())
	}
}

// carryStep combines one fold step's carry words. p and q are the plain
// accumulator and input values shared by all machines; Cp and Cq their
// carry words. For each of the three carry combinations the algebra's
// scalar table decides whether the effect survives, so the result is
// bit-identical to folding the scalar eight-valued table per machine. A
// set carry bit always sits on a transition value (injection excites only
// R and F, and the tables never attach the effect to a non-transition),
// so the WithCarry conversions below cannot panic.
func carryStep(alg *logic.Algebra, t netlist.GateType, p, q logic.Value, Cp, Cq Word) Word {
	if Cp|Cq == 0 {
		return 0
	}
	var out Word
	if m := Cp & Cq; m != 0 && core2(alg, t, p.WithCarry(), q.WithCarry()).Carrying() {
		out |= m
	}
	if m := Cp &^ Cq; m != 0 && core2(alg, t, p.WithCarry(), q).Carrying() {
		out |= m
	}
	if m := Cq &^ Cp; m != 0 && core2(alg, t, p, q.WithCarry()).Carrying() {
		out |= m
	}
	return out
}

// EvalCarry64 evaluates the carry rail of the eight-valued two-frame
// algebra for 64 delay fault machines at once. vals must hold the
// fault-free values of a fully specified frame (Eval8 with nil
// injection); C must have len(Nodes) entries and is fully overwritten:
// bit k of C[id] is machine k's fault-effect flag at node id, exactly the
// Carrying() bit a scalar Eval8 with machine k's InjectDelay would
// produce. The injector must be non-nil (Reset it for an empty batch).
func (n *Net) EvalCarry64(alg *logic.Algebra, vals []logic.Value, C []Word, inj *InjectDelay64) {
	t := n.T
	for _, pi := range t.C.PIs {
		C[pi] = 0
	}
	for _, ff := range t.C.DFFs {
		C[ff] = 0
	}
	if inj.hasStem {
		// A stem injection on a PI or PPI converts the source value before
		// any consumer reads it (cf. Eval8).
		for _, id := range inj.stemNodes {
			if typ := t.Types[id]; typ == netlist.Input || typ == netlist.DFF {
				C[id] |= inj.stemExcite(id, vals[id])
			}
		}
	}
	// cbuf reuses the Net's 64-way fanin scratch (EvalCarry64 never runs
	// concurrently with the dual-rail evaluators on one Net).
	cbuf := n.ins64[:t.MaxFanin]
	for _, id := range t.Order {
		beg, end := t.FaninOff[id], t.FaninOff[id+1]
		nin := int(end - beg)
		var any Word
		for k := beg; k < end; k++ {
			cw := C[t.Fanin[k]]
			if inj.hasBranch && inj.edgeRise[k]|inj.edgeFall[k] != 0 {
				cw |= inj.edgeExcite(int(k), vals[t.Fanin[k]])
			}
			cbuf[k-beg] = cw
			any |= cw
		}
		accC := cbuf[0]
		if any != 0 && nin > 1 {
			// Left fold mirroring logic.Algebra.Eval: the plain accumulator
			// is recomputed scalar (it is machine-independent), the carry
			// word folds through carryStep. Buf/Not/DFF and 1-input gates
			// pass the carry through unchanged, like the scalar tables.
			// Gates without a carrying input skip the fold entirely — no
			// machine can gain the effect there, and the plain table
			// lookups are the dominant per-chunk cost on large circuits.
			accP := vals[t.Fanin[beg]]
			for pos := 1; pos < nin; pos++ {
				inP := vals[t.Fanin[beg+int32(pos)]]
				accC = carryStep(alg, t.Types[id], accP, inP, accC, cbuf[pos])
				accP = core2(alg, t.Types[id], accP, inP)
			}
		}
		if inj.hasStem && inj.stemRise[id]|inj.stemFall[id] != 0 {
			accC |= inj.stemExcite(id, vals[id])
		}
		C[id] = accC
	}
}

// NextStateCarry64 derives the faulty captured state of all 64 machines
// after EvalCarry64, the batched form of the capture rule in
// tdsim.Confirm: a carrying PPO captures its initial value at the fast
// edge, a fault-free one its final value. faultyV must have len(DFFs)
// entries; bit k of faultyV[i] is machine k's captured value of flip-flop
// i (fully specified, because the frame is). The returned word marks the
// machines whose effect was captured at one or more PPOs.
func (n *Net) NextStateCarry64(vals []logic.Value, C []Word, inj *InjectDelay64, faultyV []Word) Word {
	t := n.T
	var carried Word
	for i, ff := range t.C.DFFs {
		e := t.FaninOff[ff]
		d := t.Fanin[e]
		cw := C[d]
		if inj.hasBranch && inj.edgeRise[e]|inj.edgeFall[e] != 0 {
			cw |= inj.edgeExcite(int(e), vals[d])
		}
		var bInit, bFin Word
		if vals[d].Initial() == 1 {
			bInit = AllOnes
		}
		if vals[d].Final() == 1 {
			bFin = AllOnes
		}
		faultyV[i] = (cw & bInit) | (^cw & bFin)
		carried |= cw
	}
	return carried
}
