package sim

import (
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// Rail64 is a 64-lane bit-sliced frame of the eight-valued two-frame
// algebra: lane k of every rail word describes one independent machine.
// A value decomposes into exactly four booleans — the settled initial-
// frame bit I, the settled final-frame bit F, the hazard flag H (only on
// steady values) and the fault-effect flag C (only on transitions) — so
// four words per node encode 64 complete eight-valued frames:
//
//	value  I F H C        value  I F H C
//	0      0 0 0 0        0h     0 0 1 0
//	1      1 1 0 0        1h     1 1 1 0
//	R      0 1 0 0        Rc     0 1 0 1
//	F      1 0 0 0        Fc     1 0 0 1
//
// Two invariants hold for every reachable rail state and are preserved
// by the gate kernels: H is set only where I == F, and C only where
// I != F. This is the lane-parallel counterpart of the carry-rail
// encoding of DESIGN.md §6, generalized to lanes whose fault-free
// frames differ (64 X-fill trials of one fault, rather than 64 faults
// of one frame).
type Rail64 struct {
	I, F, H, C []Word

	// Fanin gather scratch of EvalFill64, sized from the topology.
	insI, insF, insH, insC []Word
}

// NewRail64 allocates a rail frame (plus kernel scratch) for the
// circuit. The buffers are reusable across frames; callers overwrite
// the PI and PPI entries before each EvalFill64 walk and the walk
// overwrites every gate entry.
func (n *Net) NewRail64() *Rail64 {
	nn := len(n.C.Nodes)
	mf := int(n.T.MaxFanin)
	return &Rail64{
		I: make([]Word, nn), F: make([]Word, nn),
		H: make([]Word, nn), C: make([]Word, nn),
		insI: make([]Word, mf), insF: make([]Word, mf),
		insH: make([]Word, mf), insC: make([]Word, mf),
	}
}

// SetInput writes the plain two-frame input words of node id: bit k of
// initial/final is lane k's settled frame value. Inputs are always
// hazard-free and fault-free (LoadFrame8 semantics: FromEndpoints with
// hazard=false).
func (r *Rail64) SetInput(id netlist.NodeID, initial, final Word) {
	r.I[id], r.F[id] = initial, final
	r.H[id], r.C[id] = 0, 0
}

// PutLane sets lane k of node id to the value v (test helper).
func (r *Rail64) PutLane(id netlist.NodeID, k uint, v logic.Value) {
	m := Word(1) << k
	set := func(rail []Word, bit bool) {
		if bit {
			rail[id] |= m
		} else {
			rail[id] &^= m
		}
	}
	set(r.I, v.Initial() == 1)
	set(r.F, v.Final() == 1)
	set(r.H, v == logic.ZeroH || v == logic.OneH)
	set(r.C, v.Carrying())
}

// Lane decodes lane k of node id back into an algebra value.
func (r *Rail64) Lane(id netlist.NodeID, k uint) logic.Value {
	m := Word(1) << k
	i, f := r.I[id]&m != 0, r.F[id]&m != 0
	switch {
	case r.C[id]&m != 0:
		if i {
			return logic.FallC
		}
		return logic.RiseC
	case r.H[id]&m != 0:
		if i {
			return logic.OneH
		}
		return logic.ZeroH
	case i && f:
		return logic.One
	case i:
		return logic.Fall
	case f:
		return logic.Rise
	default:
		return logic.Zero
	}
}

// rail is one 64-lane value during a gate fold.
type rail struct{ i, f, h, c Word }

// isZero/isOne lane masks: exactly the plain steady constants.
func (x rail) isZero() Word { return ^x.i & ^x.f & ^x.h }
func (x rail) isOne() Word  { return x.i & x.f & ^x.h }

// not64 mirrors logic.deriveNot: both frame bits invert, hazard and
// fault-effect flags are preserved.
func not64(x rail) rail { return rail{i: ^x.i, f: ^x.f, h: x.h, c: x.c} }

// and64 mirrors logic.deriveAnd lane-parallel. Each lane falls into
// exactly one case of the scalar derivation, selected by priority masks:
// constant dominance/identity first, then the fault-effect rules, then
// the endpoint combination (which is never hazard-free, matching
// FromEndpoints(..., true)).
func and64(robust bool, x, y rail) rail {
	m0 := x.isZero() | y.isZero() // -> 0
	m1 := x.isOne() &^ m0         // -> y
	m2 := y.isOne() &^ (m0 | m1)  // -> x
	rem := ^(m0 | m1 | m2)

	// Fault-effect survival. same: reconvergent effects of the same
	// fault in the same direction reinforce (opposite directions fall
	// through to the endpoint combination, cancelling the effect).
	// ax/ay: logic.andSideAllows — a rising effect (I=0) passes any side
	// ending at one; a falling effect (I=1) needs a steady one under the
	// robust model, or initial-and-final one under the non-robust one.
	same := x.c & y.c &^ (x.i ^ y.i)
	cxo := x.c &^ y.c
	cyo := y.c &^ x.c
	var ax, ay Word
	if robust {
		ax = (^x.i & y.f) | (x.i & y.isOne())
		ay = (^y.i & x.f) | (y.i & x.isOne())
	} else {
		ax = (^x.i & y.f) | (x.i & y.i & y.f)
		ay = (^y.i & x.f) | (y.i & x.i & x.f)
	}
	keepX := rem & (same | (cxo & ax))
	keepY := rem & cyo & ay

	selX := m2 | keepX
	selY := m1 | keepY
	selE := rem &^ (keepX | keepY)
	// Endpoint combination: both inputs non-constant, so equal endpoints
	// cannot be guaranteed hazard-free.
	ei := x.i & y.i
	ef := x.f & y.f
	return rail{
		i: (selX & x.i) | (selY & y.i) | (selE & ei),
		f: (selX & x.f) | (selY & y.f) | (selE & ef),
		h: (selX & x.h) | (selY & y.h) | (selE &^ (ei ^ ef)),
		c: (selX & x.c) | (selY & y.c),
	}
}

// or64 is the De Morgan dual, exactly how the algebra derives its OR
// table: x or y = not(and(not x, not y)).
func or64(robust bool, x, y rail) rail {
	return not64(and64(robust, not64(x), not64(y)))
}

// xor64 mirrors logic.deriveXor: a steady side passes the other input
// through (inverted for a steady one), preserving hazard and fault
// flags; anything else combines endpoints and drops the effect.
func xor64(x, y rail) rail {
	m0 := x.isZero()                  // -> y
	m1 := y.isZero() &^ m0            // -> x
	m2 := x.isOne() &^ (m0 | m1)      // -> not y
	m3 := y.isOne() &^ (m0 | m1 | m2) // -> not x
	rem := ^(m0 | m1 | m2 | m3)
	ei := x.i ^ y.i
	ef := x.f ^ y.f
	return rail{
		i: (m0 & y.i) | (m1 & x.i) | (m2 &^ y.i) | (m3 &^ x.i) | (rem & ei),
		f: (m0 & y.f) | (m1 & x.f) | (m2 &^ y.f) | (m3 &^ x.f) | (rem & ef),
		h: ((m0 | m2) & y.h) | ((m1 | m3) & x.h) | (rem &^ (ei ^ ef)),
		c: ((m0 | m2) & y.c) | ((m1 | m3) & x.c),
	}
}

// foldFill64 evaluates one gate over gathered input rails, the
// lane-parallel image of logic.Algebra.Eval: a left fold of the
// commutative core op followed by the trailing inversion of the
// inverting types.
func foldFill64(robust bool, t netlist.GateType, insI, insF, insH, insC []Word) rail {
	v := rail{i: insI[0], f: insF[0], h: insH[0], c: insC[0]}
	switch t {
	case netlist.Buf, netlist.DFF:
		return v
	case netlist.Not:
		return not64(v)
	case netlist.And, netlist.Nand:
		for p := 1; p < len(insI); p++ {
			v = and64(robust, v, rail{i: insI[p], f: insF[p], h: insH[p], c: insC[p]})
		}
		if t == netlist.Nand {
			v = not64(v)
		}
	case netlist.Or, netlist.Nor:
		for p := 1; p < len(insI); p++ {
			v = or64(robust, v, rail{i: insI[p], f: insF[p], h: insH[p], c: insC[p]})
		}
		if t == netlist.Nor {
			v = not64(v)
		}
	case netlist.Xor, netlist.Xnor:
		for p := 1; p < len(insI); p++ {
			v = xor64(v, rail{i: insI[p], f: insF[p], h: insH[p], c: insC[p]})
		}
		if t == netlist.Xnor {
			v = not64(v)
		}
	default:
		panic("sim: EvalFill64 on non-gate " + t.String())
	}
	return v
}

// injectFill64 is the lane-parallel InjectDelay.apply: where the value
// is the matching clean transition, raise the fault-effect flag. The
// endpoints never change, which is exactly why one injected walk yields
// both machines (the fault-free lane values are the I/F/H rails, the
// faulty divergence lives entirely in C).
func injectFill64(slowToRise bool, v rail) rail {
	if slowToRise {
		v.c |= ^v.i & v.f &^ v.h
	} else {
		v.c |= v.i & ^v.f &^ v.h
	}
	return v
}

// EvalFill64 evaluates the combinational block for 64 independent
// eight-valued frames at once, with an optional delay fault excited at
// its site in every lane — the same walk and injection points as the
// scalar Eval8 (stem injection on a PI/PPI before any consumer reads
// it, edge injection on the one fanin connection, stem injection on a
// gate after its own evaluation). The rails must hold the PI and PPI
// words on entry (SetInput); every gate entry is overwritten.
func (n *Net) EvalFill64(alg *logic.Algebra, r *Rail64, inj *InjectDelay) {
	t := n.T
	robust := alg.IsRobust()
	injEdge := -1
	stem := netlist.None
	if inj != nil {
		if inj.Line.IsStem() {
			stem = inj.Line.Node
			if typ := t.Types[stem]; typ == netlist.Input || typ == netlist.DFF {
				v := injectFill64(inj.SlowToRise, rail{i: r.I[stem], f: r.F[stem], h: r.H[stem], c: r.C[stem]})
				r.I[stem], r.F[stem], r.H[stem], r.C[stem] = v.i, v.f, v.h, v.c
			}
		} else {
			injEdge = t.lineEdge(inj.Line)
		}
	}
	for _, id := range t.Order {
		beg, end := t.FaninOff[id], t.FaninOff[id+1]
		for k := beg; k < end; k++ {
			src := t.Fanin[k]
			v := rail{i: r.I[src], f: r.F[src], h: r.H[src], c: r.C[src]}
			if int(k) == injEdge {
				v = injectFill64(inj.SlowToRise, v)
			}
			p := k - beg
			r.insI[p], r.insF[p], r.insH[p], r.insC[p] = v.i, v.f, v.h, v.c
		}
		w := end - beg
		v := foldFill64(robust, t.Types[id], r.insI[:w], r.insF[:w], r.insH[:w], r.insC[:w])
		if id == stem {
			v = injectFill64(inj.SlowToRise, v)
		}
		r.I[id], r.F[id], r.H[id], r.C[id] = v.i, v.f, v.h, v.c
	}
}

// ObserveFill64 returns the lanes whose fault effect reaches a primary
// output in the fast frame (robust observation: a carrying PO value).
func (n *Net) ObserveFill64(r *Rail64) Word {
	var det Word
	for _, po := range n.C.POs {
		det |= r.C[po]
	}
	return det
}

// NextStateFill64 applies the capture rule of the scalar Confirm to all
// 64 lanes: a carrying PPO captures its initial value at the fast edge,
// a fault-free one its final value. goodS2 and faultyS2 (len(DFFs)
// words) receive the fault-free and faulty captured state bits; the
// returned word marks the lanes whose state register captured the
// effect at all. An injection on a DFF-feeding branch is respected,
// mirroring NextState8Into.
func (n *Net) NextStateFill64(r *Rail64, inj *InjectDelay, goodS2, faultyS2 []Word) Word {
	t := n.T
	injEdge := -1
	if inj != nil && !inj.Line.IsStem() {
		injEdge = t.lineEdge(inj.Line)
	}
	var carried Word
	for i, ff := range t.C.DFFs {
		e := t.FaninOff[ff]
		src := t.Fanin[e]
		v := rail{i: r.I[src], f: r.F[src], h: r.H[src], c: r.C[src]}
		if int(e) == injEdge {
			v = injectFill64(inj.SlowToRise, v)
		}
		goodS2[i] = v.f
		faultyS2[i] = (v.c & v.i) | (^v.c & v.f)
		carried |= v.c
	}
	return carried
}
