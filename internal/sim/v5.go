package sim

import "fogbuster/internal/netlist"

// V5 is a five-valued D-algebra value for static-fault reasoning: the
// composite of a good-machine and a faulty-machine binary value. SEMILET
// uses it for the propagation phase, where the only good/faulty difference
// is in the state bits (the fault itself does not occur under the slow
// clock, Section 4 of the paper).
type V5 uint8

// The five values. D means good 1 / faulty 0; DB (D-bar) the reverse.
const (
	Z5 V5 = iota // 0 in both machines
	O5           // 1 in both machines
	X5           // unknown
	D5           // good 1, faulty 0
	B5           // good 0, faulty 1
)

// String returns the conventional notation.
func (v V5) String() string {
	switch v {
	case Z5:
		return "0"
	case O5:
		return "1"
	case D5:
		return "D"
	case B5:
		return "D'"
	default:
		return "X"
	}
}

// Good returns the good-machine component.
func (v V5) Good() V3 {
	switch v {
	case Z5, B5:
		return Lo
	case O5, D5:
		return Hi
	default:
		return X
	}
}

// Faulty returns the faulty-machine component.
func (v V5) Faulty() V3 {
	switch v {
	case Z5, D5:
		return Lo
	case O5, B5:
		return Hi
	default:
		return X
	}
}

// IsD reports whether the value carries a fault effect (D or D-bar).
func (v V5) IsD() bool { return v == D5 || v == B5 }

// FromPair combines good and faulty components; any unknown component
// makes the composite unknown, the usual conservative 5-valued collapse.
func FromPair(g, f V3) V5 {
	if g == X || f == X {
		return X5
	}
	switch {
	case g == f && g == Lo:
		return Z5
	case g == f:
		return O5
	case g == Hi:
		return D5
	default:
		return B5
	}
}

// FromV3 lifts a three-valued value into the composite domain.
func FromV3(v V3) V5 { return FromPair(v, v) }

// EvalGate5 evaluates one gate in the composite domain by evaluating the
// good and faulty components separately.
func EvalGate5(t netlist.GateType, ins []V5) V5 {
	var g, f [16]V3
	bg, bf := g[:0], f[:0]
	if len(ins) > len(g) {
		bg = make([]V3, 0, len(ins))
		bf = make([]V3, 0, len(ins))
	}
	for _, in := range ins {
		bg = append(bg, in.Good())
		bf = append(bf, in.Faulty())
	}
	return FromPair(EvalGate3(t, bg), EvalGate3(t, bf))
}

// Eval5 evaluates the combinational block in the composite domain. vals
// must hold PI and PPI values on entry. The optional stuck injection
// forces the faulty component of the line to the stuck value (used by the
// standalone sequential stuck-at generator, where the fault is present in
// every time frame).
func (n *Net) Eval5(vals []V5, stuck *InjectStuck) {
	t := n.T
	injEdge := -1
	stem := netlist.None
	if stuck != nil {
		if stuck.Line.IsStem() {
			stem = stuck.Line.Node
			if typ := t.Types[stem]; typ == netlist.Input || typ == netlist.DFF {
				vals[stem] = stuck.apply(vals[stem])
			}
		} else {
			injEdge = t.lineEdge(stuck.Line)
		}
	}
	ins := n.ins5
	for _, id := range t.Order {
		beg, end := t.FaninOff[id], t.FaninOff[id+1]
		buf := ins[:end-beg]
		for k := beg; k < end; k++ {
			v := vals[t.Fanin[k]]
			if int(k) == injEdge {
				v = stuck.apply(v)
			}
			buf[k-beg] = v
		}
		v := EvalGate5(t.Types[id], buf)
		if id == stem {
			v = stuck.apply(v)
		}
		vals[id] = v
	}
}

// InjectStuck describes a stuck-at fault for composite simulation.
type InjectStuck struct {
	Line  netlist.Line
	Stuck V3 // Lo for stuck-at-0, Hi for stuck-at-1
}

func (s *InjectStuck) apply(v V5) V5 { return FromPair(v.Good(), s.Stuck) }

// NextState5 extracts the PPO values after Eval5, respecting a stuck
// injection on a DFF-feeding connection.
func (n *Net) NextState5(vals []V5, stuck *InjectStuck) []V5 {
	t := n.T
	injEdge := -1
	if stuck != nil && !stuck.Line.IsStem() {
		injEdge = t.lineEdge(stuck.Line)
	}
	next := make([]V5, len(t.C.DFFs))
	for i, ff := range t.C.DFFs {
		e := t.FaninOff[ff]
		v := vals[t.Fanin[e]]
		if int(e) == injEdge {
			v = stuck.apply(v)
		}
		next[i] = v
	}
	return next
}

// LoadFrame5 mirrors LoadFrame for the composite domain.
func (n *Net) LoadFrame5(vector, state []V5) []V5 {
	c := n.C
	vals := make([]V5, len(c.Nodes))
	for i := range vals {
		vals[i] = X5
	}
	for i, pi := range c.PIs {
		if vector != nil {
			vals[pi] = vector[i]
		}
	}
	for i, ff := range c.DFFs {
		if state != nil {
			vals[ff] = state[i]
		}
	}
	return vals
}
