package sim

import (
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// This file implements the event-driven selective-trace kernel shared by
// every algebra: a level-bucketed worklist that, given a baseline value
// array and a set of changed source nodes, re-evaluates only the gates
// reachable in the fanout cone of the changes. Because a combinational
// consumer always sits at a strictly higher level than its driver, one
// ascending sweep over the buckets visits every affected gate exactly
// once, in an order consistent with the full levelized walk — which is
// why each cone kernel is bit-identical to its full counterpart (pinned
// by the cross-checks in cone_test.go). A gate whose recomputed value
// equals its baseline value stops the wave: nothing downstream of it can
// differ either.
//
// Flip-flop consumers never enter the worklist: the frame boundary stops
// the event wave exactly as it stops the levelized evaluation, and the
// NextState* extractors apply DFF-feeding branch injections themselves.

// worklist is the level-bucketed pending-gate queue. It lives on the Net
// (one per worker); every kernel call drains it completely, so the
// zero-allocation buckets are reusable across calls.
type worklist struct {
	buckets [][]int32
	queued  []bool
}

func (n *Net) initWorklist() {
	if n.wl.queued == nil {
		n.wl.buckets = make([][]int32, n.T.MaxLevel+1)
		n.wl.queued = make([]bool, n.T.NumNodes())
	}
}

// sched queues gate id for re-evaluation at its level.
func (n *Net) sched(id netlist.NodeID) {
	if n.wl.queued[id] {
		return
	}
	n.wl.queued[id] = true
	lvl := n.T.Level[id]
	n.wl.buckets[lvl] = append(n.wl.buckets[lvl], int32(id))
}

// schedConsumers queues every combinational gate reading node id.
func (n *Net) schedConsumers(id netlist.NodeID) {
	t := n.T
	for k := t.FanoutOff[id]; k < t.FanoutOff[id+1]; k++ {
		c := t.FanoutNode[k]
		if t.Types[c].IsGate() {
			n.sched(c)
		}
	}
}

// Eval3Cone re-evaluates, in place, the fanout cones of the seed nodes
// in the three-valued domain. vals must hold a consistent Eval3 result
// except at the seeds, whose (source) values the caller has already
// overwritten. Injections are not supported: the event-driven sequential
// pair simulators diff fault-free machines against a baseline.
func (n *Net) Eval3Cone(vals []V3, seeds []netlist.NodeID) {
	n.initWorklist()
	t := n.T
	for _, s := range seeds {
		if t.Types[s].IsGate() {
			n.sched(s)
		} else {
			n.schedConsumers(s)
		}
	}
	ins := n.ins3
	for lvl := int32(1); lvl <= t.MaxLevel; lvl++ {
		bucket := n.wl.buckets[lvl]
		for _, id32 := range bucket {
			id := netlist.NodeID(id32)
			n.wl.queued[id] = false
			beg, end := t.FaninOff[id], t.FaninOff[id+1]
			buf := ins[:end-beg]
			for k := beg; k < end; k++ {
				buf[k-beg] = vals[t.Fanin[k]]
			}
			if v := EvalGate3(t.Types[id], buf); v != vals[id] {
				vals[id] = v
				n.schedConsumers(id)
			}
		}
		n.wl.buckets[lvl] = bucket[:0]
	}
}

// Eval5Cone is Eval3Cone in the composite five-valued domain, used by
// SEMILET's propagation search to re-evaluate only the cone of a changed
// PI assignment. Fault-free evaluation only (the delay-fault propagation
// phase never injects; the slow clock makes the machine fault free).
func (n *Net) Eval5Cone(vals []V5, seeds []netlist.NodeID) {
	n.initWorklist()
	t := n.T
	for _, s := range seeds {
		if t.Types[s].IsGate() {
			n.sched(s)
		} else {
			n.schedConsumers(s)
		}
	}
	ins := n.ins5
	for lvl := int32(1); lvl <= t.MaxLevel; lvl++ {
		bucket := n.wl.buckets[lvl]
		for _, id32 := range bucket {
			id := netlist.NodeID(id32)
			n.wl.queued[id] = false
			beg, end := t.FaninOff[id], t.FaninOff[id+1]
			buf := ins[:end-beg]
			for k := beg; k < end; k++ {
				buf[k-beg] = vals[t.Fanin[k]]
			}
			if v := EvalGate5(t.Types[id], buf); v != vals[id] {
				vals[id] = v
				n.schedConsumers(id)
			}
		}
		n.wl.buckets[lvl] = bucket[:0]
	}
}

// Eval8Cone applies a delay fault injection to a fault-free eight-valued
// evaluation by selective trace: vals must hold the full Eval8 result
// with nil injection (the good-machine values the caller already holds);
// on return it equals Eval8 with the injection, but only the gates in
// the fault site's fanout cone were re-evaluated.
func (n *Net) Eval8Cone(alg *logic.Algebra, vals []logic.Value, inj *InjectDelay) {
	if inj == nil {
		return
	}
	n.initWorklist()
	t := n.T
	injEdge := -1
	stem := netlist.None
	if inj.Line.IsStem() {
		stem = inj.Line.Node
		if typ := t.Types[stem]; typ == netlist.Input || typ == netlist.DFF {
			if nv := inj.apply(vals[stem]); nv != vals[stem] {
				vals[stem] = nv
				n.schedConsumers(stem)
			}
		} else {
			n.sched(stem)
		}
	} else if injEdge = t.lineEdge(inj.Line); injEdge >= 0 {
		consumer, _ := t.BranchEdge(inj.Line.Node, inj.Line.Branch)
		if t.Types[consumer].IsGate() {
			n.sched(consumer)
		}
	}
	ins := n.ins8
	for lvl := int32(1); lvl <= t.MaxLevel; lvl++ {
		bucket := n.wl.buckets[lvl]
		for _, id32 := range bucket {
			id := netlist.NodeID(id32)
			n.wl.queued[id] = false
			beg, end := t.FaninOff[id], t.FaninOff[id+1]
			buf := ins[:end-beg]
			for k := beg; k < end; k++ {
				v := vals[t.Fanin[k]]
				if int(k) == injEdge {
					v = inj.apply(v)
				}
				buf[k-beg] = v
			}
			v := alg.Eval(t.Types[id], buf)
			if id == stem {
				v = inj.apply(v)
			}
			if v != vals[id] {
				vals[id] = v
				n.schedConsumers(id)
			}
		}
		n.wl.buckets[lvl] = bucket[:0]
	}
}

// Eval64Cone re-evaluates, in place, the fanout cones of the seed nodes
// in the 64-way two-valued domain: the caller has overwritten the words
// of the seed sources in an otherwise consistent Eval64 result.
func (n *Net) Eval64Cone(vals []Word, seeds []netlist.NodeID) {
	n.initWorklist()
	t := n.T
	for _, s := range seeds {
		if t.Types[s].IsGate() {
			n.sched(s)
		} else {
			n.schedConsumers(s)
		}
	}
	for lvl := int32(1); lvl <= t.MaxLevel; lvl++ {
		bucket := n.wl.buckets[lvl]
		for _, id32 := range bucket {
			id := netlist.NodeID(id32)
			n.wl.queued[id] = false
			beg, end := t.FaninOff[id], t.FaninOff[id+1]
			buf := n.ins64[:end-beg]
			for k := beg; k < end; k++ {
				buf[k-beg] = vals[t.Fanin[k]]
			}
			if v := EvalGate64(t.Types[id], buf); v != vals[id] {
				vals[id] = v
				n.schedConsumers(id)
			}
		}
		n.wl.buckets[lvl] = bucket[:0]
	}
}

// setCarry records a divergence of the carry rail from its all-zero
// baseline.
func (n *Net) setCarry(C []Word, id netlist.NodeID, w Word) {
	if !n.carryMarked[id] {
		n.carryMarked[id] = true
		n.carryTouched = append(n.carryTouched, id)
	}
	C[id] = w
}

// EvalCarry64Cone is the event-driven form of EvalCarry64: C must be
// all-zero on entry (a fresh allocation is, and ResetCarry64 restores
// the invariant) and receives exactly the carry words the full
// evaluation would produce, but only gates in the union of the 64
// injection sites' fanout cones are visited. Call ResetCarry64 with the
// same C before the next cone evaluation on this Net.
func (n *Net) EvalCarry64Cone(alg *logic.Algebra, vals []logic.Value, C []Word, inj *InjectDelay64) {
	n.initWorklist()
	t := n.T
	if inj.hasStem {
		for _, id := range inj.stemNodes {
			if typ := t.Types[id]; typ == netlist.Input || typ == netlist.DFF {
				if w := inj.stemExcite(id, vals[id]); w != 0 {
					n.setCarry(C, id, w)
					n.schedConsumers(id)
				}
			} else {
				n.sched(id)
			}
		}
	}
	if inj.hasBranch {
		for _, consumer := range inj.edgeNodes {
			if t.Types[consumer].IsGate() {
				n.sched(consumer)
			}
		}
	}
	cbuf := n.ins64[:t.MaxFanin]
	for lvl := int32(1); lvl <= t.MaxLevel; lvl++ {
		bucket := n.wl.buckets[lvl]
		for _, id32 := range bucket {
			id := netlist.NodeID(id32)
			n.wl.queued[id] = false
			beg, end := t.FaninOff[id], t.FaninOff[id+1]
			nin := int(end - beg)
			var any Word
			for k := beg; k < end; k++ {
				cw := C[t.Fanin[k]]
				if inj.hasBranch && inj.edgeRise[k]|inj.edgeFall[k] != 0 {
					cw |= inj.edgeExcite(int(k), vals[t.Fanin[k]])
				}
				cbuf[k-beg] = cw
				any |= cw
			}
			accC := cbuf[0]
			if any != 0 && nin > 1 {
				accP := vals[t.Fanin[beg]]
				for pos := 1; pos < nin; pos++ {
					inP := vals[t.Fanin[beg+int32(pos)]]
					accC = carryStep(alg, t.Types[id], accP, inP, accC, cbuf[pos])
					accP = core2(alg, t.Types[id], accP, inP)
				}
			}
			if inj.hasStem && inj.stemRise[id]|inj.stemFall[id] != 0 {
				accC |= inj.stemExcite(id, vals[id])
			}
			if accC != C[id] {
				n.setCarry(C, id, accC)
				n.schedConsumers(id)
			}
		}
		n.wl.buckets[lvl] = bucket[:0]
	}
}

// ResetCarry64 restores the all-zero carry baseline touched by the last
// EvalCarry64Cone, in O(touched).
func (n *Net) ResetCarry64(C []Word) {
	for _, id := range n.carryTouched {
		C[id] = 0
		n.carryMarked[id] = false
	}
	n.carryTouched = n.carryTouched[:0]
}

// Overlay64Set installs dual-rail values diverging from the scalar
// baseline at source node id and schedules its gate consumers. It is
// the seeding step of Eval64DROverlay; the caller compares candidate
// rails against Broadcast64 of the baseline and seeds only real
// divergences.
func (n *Net) Overlay64Set(f *Frame64, id netlist.NodeID, v, k Word) {
	n.initWorklist()
	if !n.ovMarked[id] {
		n.ovMarked[id] = true
		n.ovTouched = append(n.ovTouched, id)
	}
	f.V[id], f.K[id] = v, k
	n.schedConsumers(id)
}

// Eval64DROverlay evaluates the 64-way dual-rail frame as a sparse
// overlay over a scalar fault-free baseline: base holds the scalar
// three-valued value of every node for this frame, and the machines
// diverge from it only at the sources seeded with Overlay64Set. On
// return, f's rails are valid exactly for the nodes Overlay64Marked
// reports; every unmarked node equals Broadcast64(base[node]) in all 64
// machines, which is what a full Eval64DR would compute there (the
// dual-rail gate functions are bit-exact against EvalGate3 per machine).
// Fault-free evaluation only — injections stay on the full path.
func (n *Net) Eval64DROverlay(f *Frame64, base []V3) {
	t := n.T
	insV := n.ins64[:t.MaxFanin]
	insK := n.ins64[t.MaxFanin:]
	for lvl := int32(1); lvl <= t.MaxLevel; lvl++ {
		bucket := n.wl.buckets[lvl]
		for _, id32 := range bucket {
			id := netlist.NodeID(id32)
			n.wl.queued[id] = false
			beg, end := t.FaninOff[id], t.FaninOff[id+1]
			for k := beg; k < end; k++ {
				in := t.Fanin[k]
				if n.ovMarked[in] {
					insV[k-beg], insK[k-beg] = f.V[in], f.K[in]
				} else {
					insV[k-beg], insK[k-beg] = Broadcast64(base[in])
				}
			}
			v, k := evalGate64DR(t.Types[id], insV[:end-beg], insK[:end-beg])
			bv, bk := Broadcast64(base[id])
			if v != bv || k != bk {
				if !n.ovMarked[id] {
					n.ovMarked[id] = true
					n.ovTouched = append(n.ovTouched, id)
				}
				f.V[id], f.K[id] = v, k
				n.schedConsumers(id)
			}
		}
		n.wl.buckets[lvl] = bucket[:0]
	}
}

// Overlay64Marked reports whether node id diverges from the scalar
// baseline of the current overlay.
func (n *Net) Overlay64Marked(id netlist.NodeID) bool { return n.ovMarked[id] }

// Overlay64Reset clears the overlay for the next frame, in O(touched).
func (n *Net) Overlay64Reset() {
	for _, id := range n.ovTouched {
		n.ovMarked[id] = false
	}
	n.ovTouched = n.ovTouched[:0]
}
