package sim

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/netlist"
)

// coneProfiles is the randomized circuit set of the representation
// property tests: every structural style the synthesizer knows, at sizes
// where cones exercise both the dense and the interval representation.
func coneProfiles(t *testing.T) []*netlist.Circuit {
	t.Helper()
	out := []*netlist.Circuit{bench.NewS27(), bench.NewC17()}
	for i, p := range []bench.Profile{
		{Name: "prop-mixed", PIs: 7, POs: 4, FFs: 6, Gates: 90, TargetLines: 210, Style: bench.Mixed, Seed: 101},
		{Name: "prop-feedback", PIs: 5, POs: 2, FFs: 8, Gates: 110, TargetLines: 220, Style: bench.Feedback, Seed: 202},
		{Name: "prop-pipeline", PIs: 9, POs: 6, FFs: 7, Gates: 140, TargetLines: 300, Style: bench.Pipeline, Seed: 303},
	} {
		c, err := bench.Synthesize(p)
		if err != nil {
			t.Fatalf("profile %d (%s): %v", i, p.Name, err)
		}
		out = append(out, c)
	}
	return out
}

// TestConeSetRepresentationProperty is the compressed-set oracle check:
// for every stem of every randomized circuit, the forced-compressed and
// the auto policies answer InCone (over the complete node universe) and
// ConeGates identically to the forced-dense reference — the
// representation is an encoding detail, never a semantic one.
func TestConeSetRepresentationProperty(t *testing.T) {
	for _, c := range coneProfiles(t) {
		dense := NewTopology(c)
		dense.SetConePolicy(ConeDense)
		comp := NewTopology(c)
		comp.SetConePolicy(ConeCompressed)
		auto := NewTopology(c)
		auto.SetConePolicy(ConeAuto)
		n := dense.NumNodes()
		for src := 0; src < n; src++ {
			s := netlist.NodeID(src)
			if dg, cg, ag := dense.ConeGates(s), comp.ConeGates(s), auto.ConeGates(s); dg != cg || dg != ag {
				t.Fatalf("%s: ConeGates(%d) dense=%d compressed=%d auto=%d", c.Name, src, dg, cg, ag)
			}
			for id := 0; id < n; id++ {
				d := dense.InCone(s, netlist.NodeID(id))
				if got := comp.InCone(s, netlist.NodeID(id)); got != d {
					t.Fatalf("%s: compressed InCone(%d,%d)=%v, dense says %v", c.Name, src, id, got, d)
				}
				if got := auto.InCone(s, netlist.NodeID(id)); got != d {
					t.Fatalf("%s: auto InCone(%d,%d)=%v, dense says %v", c.Name, src, id, got, d)
				}
			}
		}
	}
}

// TestConeFootprintShrinks pins the memory-diet direction: under the
// auto policy the total cone-set footprint never exceeds the dense
// all-stems matrix, and the dense policy reproduces that matrix's size
// exactly.
func TestConeFootprintShrinks(t *testing.T) {
	for _, c := range coneProfiles(t) {
		auto := NewTopology(c)
		denseBytes, actual := auto.ConeFootprint()
		if actual > denseBytes {
			t.Errorf("%s: auto footprint %d exceeds dense %d", c.Name, actual, denseBytes)
		}
		ref := NewTopology(c)
		ref.SetConePolicy(ConeDense)
		if _, got := ref.ConeFootprint(); got != denseBytes {
			t.Errorf("%s: dense policy footprint %d, matrix would be %d", c.Name, got, denseBytes)
		}
	}
}

// TestConePolicyParse pins the knob surface: the three names round-trip
// and junk is an error, so a config cannot silently run the wrong
// representation.
func TestConePolicyParse(t *testing.T) {
	for _, p := range []ConePolicy{ConeAuto, ConeDense, ConeCompressed} {
		got, err := ParseConePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseConePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParseConePolicy(""); err != nil || got != ConeAuto {
		t.Errorf("empty policy = %v, %v; want auto", got, err)
	}
	if _, err := ParseConePolicy("roaring"); err == nil {
		t.Error("ParseConePolicy accepted an unknown policy")
	}
}
