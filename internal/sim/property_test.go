package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fogbuster/internal/bench"
	"fogbuster/internal/logic"
)

// TestEval8EndpointsProperty is the central cross-simulator invariant as a
// property test: for any binary stimulus of any Table 3 circuit, the
// eight-valued two-frame evaluation must project exactly onto the two
// independent binary frame simulations. quick drives the stimulus.
func TestEval8EndpointsProperty(t *testing.T) {
	circuits := []string{"s27", "s298", "s344"}
	nets := make([]*Net, len(circuits))
	for i, name := range circuits {
		nets[i] = NewNet(bench.ProfileByName(name).Circuit())
	}
	f := func(pick uint8, seed int64) bool {
		net := nets[int(pick)%len(nets)]
		c := net.C
		rng := rand.New(rand.NewSource(seed))
		bits := func(n int) []V3 {
			out := make([]V3, n)
			for i := range out {
				out[i] = V3(rng.Intn(2))
			}
			return out
		}
		v1, v2, s0 := bits(len(c.PIs)), bits(len(c.PIs)), bits(len(c.DFFs))
		f1 := net.LoadFrame(v1, s0)
		net.Eval3(f1, nil)
		s1 := net.NextState3(f1, nil)
		f2 := net.LoadFrame(v2, s1)
		net.Eval3(f2, nil)

		vals := net.LoadFrame8(v1, v2, s0, s1)
		net.Eval8(logic.Robust, vals, nil)
		for i := range vals {
			if uint8(f1[i]) != vals[i].Initial() || uint8(f2[i]) != vals[i].Final() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelScalarProperty: the 64-way parallel simulator agrees with
// the scalar one on arbitrary patterns of arbitrary suite circuits.
func TestParallelScalarProperty(t *testing.T) {
	net := NewNet(bench.ProfileByName("s386").Circuit())
	c := net.C
	f := func(seed int64, lane uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vecW := make([]Word, len(c.PIs))
		stateW := make([]Word, len(c.DFFs))
		for i := range vecW {
			vecW[i] = rng.Uint64()
		}
		for i := range stateW {
			stateW[i] = rng.Uint64()
		}
		valsW := net.LoadFrame64(vecW, stateW)
		net.Eval64(valsW)

		k := uint(lane) % 64
		vec := make([]V3, len(c.PIs))
		state := make([]V3, len(c.DFFs))
		for i := range vec {
			vec[i] = V3((vecW[i] >> k) & 1)
		}
		for i := range state {
			state[i] = V3((stateW[i] >> k) & 1)
		}
		vals := net.LoadFrame(vec, state)
		net.Eval3(vals, nil)
		for i := range vals {
			if uint64(vals[i]) != (valsW[i]>>k)&1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestXMonotonicityProperty: three-valued simulation is monotone in
// information: replacing an X input by a binary value can change an X
// node to known but never flip a known node. This is the property that
// makes the unjustifiable-don't-care treatment of SEMILET sound.
func TestXMonotonicityProperty(t *testing.T) {
	net := NewNet(bench.ProfileByName("s349").Circuit())
	c := net.C
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vec := make([]V3, len(c.PIs))
		state := make([]V3, len(c.DFFs))
		for i := range vec {
			vec[i] = V3(rng.Intn(3)) // 0, 1 or X
		}
		for i := range state {
			state[i] = V3(rng.Intn(3))
		}
		base := net.LoadFrame(vec, state)
		net.Eval3(base, nil)

		refined := make([]V3, len(vec))
		for i, v := range vec {
			if v == X {
				refined[i] = V3(rng.Intn(2))
			} else {
				refined[i] = v
			}
		}
		refinedState := make([]V3, len(state))
		for i, v := range state {
			if v == X {
				refinedState[i] = V3(rng.Intn(2))
			} else {
				refinedState[i] = v
			}
		}
		vals := net.LoadFrame(refined, refinedState)
		net.Eval3(vals, nil)
		for i := range vals {
			if base[i] != X && base[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
