package sim

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// TestTopologyMatchesNetlist pins the CSR view against the pointer-based
// netlist on every Table 3 circuit: flat fanin/fanout arrays, branch
// numbering, edge indexing, level buckets and OnLine semantics must all
// agree with the reference definitions.
func TestTopologyMatchesNetlist(t *testing.T) {
	for _, p := range bench.Profiles {
		c := p.Circuit()
		topo := NewTopology(c)
		if topo.NumNodes() != len(c.Nodes) {
			t.Fatalf("%s: node count", c.Name)
		}
		// Reference branch numbering: the counter construction the
		// jagged pre-CSR view used.
		counter := make([]int32, len(c.Nodes))
		refBranch := make([][]int32, len(c.Nodes))
		edges := 0
		for i := range c.Nodes {
			node := &c.Nodes[i]
			br := make([]int32, len(node.Fanin))
			for j, in := range node.Fanin {
				br[j] = counter[in]
				counter[in]++
			}
			refBranch[i] = br
			edges += len(node.Fanin)
		}
		if topo.NumEdges() != edges {
			t.Fatalf("%s: edge count %d, want %d", c.Name, topo.NumEdges(), edges)
		}
		for i := range c.Nodes {
			id := netlist.NodeID(i)
			node := &c.Nodes[i]
			if got := int(topo.FaninOff[i+1] - topo.FaninOff[i]); got != len(node.Fanin) {
				t.Fatalf("%s node %d: fanin count %d, want %d", c.Name, i, got, len(node.Fanin))
			}
			for pos, in := range node.Fanin {
				e := topo.EdgeOf(id, pos)
				if topo.Fanin[e] != in {
					t.Fatalf("%s node %d pos %d: CSR fanin %d, want %d", c.Name, i, pos, topo.Fanin[e], in)
				}
				if got := topo.BranchOf(id, pos); got != int(refBranch[i][pos]) {
					t.Fatalf("%s node %d pos %d: branch %d, want %d", c.Name, i, pos, got, refBranch[i][pos])
				}
			}
			if got := int(topo.FanoutOff[i+1] - topo.FanoutOff[i]); got != len(node.Fanout) {
				t.Fatalf("%s node %d: fanout count %d, want %d", c.Name, i, got, len(node.Fanout))
			}
			for b, consumer := range node.Fanout {
				gotC, gotE := topo.BranchEdge(id, b)
				if gotC != consumer {
					t.Fatalf("%s node %d branch %d: consumer %d, want %d", c.Name, i, b, gotC, consumer)
				}
				// The edge must point back at this exact connection.
				if topo.Fanin[gotE] != id || topo.BranchOf(consumer, gotE-int(topo.FaninOff[consumer])) != b {
					t.Fatalf("%s node %d branch %d: edge %d does not round-trip", c.Name, i, b, gotE)
				}
			}
			if topo.Level[i] != node.Level || topo.Types[i] != node.Type {
				t.Fatalf("%s node %d: SoA level/type mismatch", c.Name, i)
			}
		}
		// Level buckets tile GateOrder exactly.
		order := c.GateOrder()
		seen := 0
		for l := int32(0); l <= topo.MaxLevel; l++ {
			for _, id := range order[topo.LevelOff[l]:topo.LevelOff[l+1]] {
				if c.Nodes[id].Level != l {
					t.Fatalf("%s: gate %d in bucket %d has level %d", c.Name, id, l, c.Nodes[id].Level)
				}
				seen++
			}
		}
		if seen != len(order) {
			t.Fatalf("%s: buckets cover %d of %d gates", c.Name, seen, len(order))
		}
	}
}

// TestDanglingBranchInjectionIsNoOp pins the pre-CSR semantics of a
// branch line that names no real connection (Branch beyond the fanout
// count): the old per-input OnLine scan never matched it, so the
// injection was a harmless no-op — it must neither hit a neighboring
// node's edge nor panic on the new flat fanout indexing.
func TestDanglingBranchInjectionIsNoOp(t *testing.T) {
	c := bench.NewS27()
	net := NewNet(c)
	// A mid-circuit node (not the last, so the CSR has entries beyond
	// its range) with a branch index past its fanout list.
	var victim netlist.NodeID = -1
	for i := range c.Nodes {
		if len(c.Nodes[i].Fanout) > 0 && int(i) < len(c.Nodes)-1 {
			victim = netlist.NodeID(i)
		}
	}
	bad := netlist.Line{Node: victim, Branch: len(c.Nodes[victim].Fanout) + 1}

	vec := make([]V3, len(c.PIs))
	state := make([]V3, len(c.DFFs))
	ref := net.LoadFrame(vec, state)
	net.Eval3(ref, nil)
	got := net.LoadFrame(vec, state)
	net.Eval3(got, &Inject3{Line: bad, Value: Hi})
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("dangling branch injection changed node %d", i)
		}
	}

	bits := make([]V3, len(c.PIs))
	sbits := make([]V3, len(c.DFFs))
	ref8 := net.LoadFrame8(bits, bits, sbits, sbits)
	net.Eval8(logic.Robust, ref8, nil)
	got8 := net.LoadFrame8(bits, bits, sbits, sbits)
	inj := &InjectDelay{Line: bad, SlowToRise: true}
	net.Eval8(logic.Robust, got8, inj)
	evt8 := append([]logic.Value(nil), ref8...)
	net.Eval8Cone(logic.Robust, evt8, inj)
	for i := range ref8 {
		if got8[i] != ref8[i] || evt8[i] != ref8[i] {
			t.Fatalf("dangling branch delay injection changed node %d", i)
		}
	}
}

// TestConeMembership pins the lazy cone bitsets against brute-force
// forward reachability through combinational gates (flip-flop consumers
// stop the cone, like the frame boundary stops evaluation).
func TestConeMembership(t *testing.T) {
	for _, name := range []string{"s27", "s298"} {
		c := bench.ProfileByName(name).Circuit()
		topo := NewTopology(c)
		for src := range c.Nodes {
			reach := make([]bool, len(c.Nodes))
			reach[src] = true
			var visit func(id netlist.NodeID)
			visit = func(id netlist.NodeID) {
				for _, consumer := range c.Nodes[id].Fanout {
					if !c.Nodes[consumer].Type.IsGate() || reach[consumer] {
						continue
					}
					reach[consumer] = true
					visit(consumer)
				}
			}
			visit(netlist.NodeID(src))
			gates := 0
			for id := range c.Nodes {
				if got := topo.InCone(netlist.NodeID(src), netlist.NodeID(id)); got != reach[id] {
					t.Fatalf("%s: InCone(%d, %d) = %v, want %v", name, src, id, got, reach[id])
				}
				if reach[id] && c.Nodes[id].Type.IsGate() {
					gates++
				}
			}
			if got := topo.ConeGates(netlist.NodeID(src)); got != gates {
				t.Fatalf("%s: ConeGates(%d) = %d, want %d", name, src, got, gates)
			}
		}
	}
}
