package sim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/netlist"
)

// drTestCircuit builds a small sequential circuit with every gate type,
// reconvergent fanout and a multi-branch stem, so the dual-rail evaluator
// is exercised on all the paths that matter.
func drTestCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("dr")
	b.Input("a")
	b.Input("b")
	b.Input("c")
	b.DFF("q", "nd")
	b.Gate("w", netlist.And, "a", "b")
	b.Gate("x", netlist.Nand, "w", "c")
	b.Gate("y", netlist.Nor, "w", "q")
	b.Gate("z", netlist.Xor, "x", "y")
	b.Gate("v", netlist.Xnor, "z", "a")
	b.Gate("u", netlist.Not, "w")
	b.Gate("nd", netlist.Or, "v", "u")
	b.Output("z")
	b.Output("nd")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// allLines enumerates every stem and every fanout branch of the circuit.
func allLines(c *netlist.Circuit) []netlist.Line {
	var lines []netlist.Line
	for i := range c.Nodes {
		id := netlist.NodeID(i)
		lines = append(lines, netlist.Stem(id))
		for b := range c.Nodes[i].Fanout {
			lines = append(lines, netlist.Line{Node: id, Branch: b})
		}
	}
	return lines
}

func randV3(rng *rand.Rand) V3 { return V3(rng.Intn(3)) }

// decodeDR extracts machine k's three-valued value from the dual rails.
func decodeDR(v, k Word, bit uint) V3 {
	if k&(1<<bit) == 0 {
		return X
	}
	return V3((v >> bit) & 1)
}

// TestEval64DRMatchesEval3 cross-checks the 64-way dual-rail evaluator
// against the scalar three-valued evaluator: 64 machines with independent
// random stuck injections (including none) must reproduce Eval3 with the
// corresponding Inject3 bit-for-bit on every node, including X
// propagation, plus the injected next state.
func TestEval64DRMatchesEval3(t *testing.T) {
	c := drTestCircuit(t)
	n := NewNet(c)
	lines := allLines(c)
	rng := rand.New(rand.NewSource(11))

	frame := n.NewFrame64()
	inj := n.NewInject64()
	nextV := make([]Word, len(c.DFFs))
	nextK := make([]Word, len(c.DFFs))

	for round := 0; round < 50; round++ {
		vec := make([]V3, len(c.PIs))
		for i := range vec {
			vec[i] = randV3(rng)
		}
		state := make([]V3, len(c.DFFs))
		for i := range state {
			state[i] = randV3(rng)
		}

		// Machine 0 runs fault free; the rest get random injections.
		inj.Reset()
		scalar := make([]*Inject3, 64)
		for b := 1; b < 64; b++ {
			l := lines[rng.Intn(len(lines))]
			v := V3(rng.Intn(2))
			inj.Add(uint(b), l, v)
			scalar[b] = &Inject3{Line: l, Value: v}
		}

		n.LoadFrame64DR(frame, vec, state)
		n.Eval64DR(frame, inj)
		n.NextState64DR(frame, inj, nextV, nextK)

		for b := 0; b < 64; b++ {
			vals := n.LoadFrame(vec, state)
			n.Eval3(vals, scalar[b])
			for id := range c.Nodes {
				got := decodeDR(frame.V[id], frame.K[id], uint(b))
				if got != vals[id] {
					t.Fatalf("round %d machine %d node %s: dual-rail %s, scalar %s",
						round, b, c.Nodes[id].Name, got, vals[id])
				}
			}
			next := n.NextState3(vals, scalar[b])
			for i := range next {
				got := decodeDR(nextV[i], nextK[i], uint(b))
				if got != next[i] {
					t.Fatalf("round %d machine %d ppo %d: dual-rail %s, scalar %s",
						round, b, i, got, next[i])
				}
			}
		}
	}
}

// TestEval64DRBroadcastMatchesEval64 pins the two 64-way domains against
// each other: with every rail known, the dual-rail evaluator must agree
// with the plain two-valued Eval64.
func TestEval64DRBroadcastMatchesEval64(t *testing.T) {
	c := drTestCircuit(t)
	n := NewNet(c)
	rng := rand.New(rand.NewSource(7))

	frame := n.NewFrame64()
	for round := 0; round < 20; round++ {
		vecW := make([]Word, len(c.PIs))
		stateW := make([]Word, len(c.DFFs))
		for i := range vecW {
			vecW[i] = rng.Uint64()
		}
		for i := range stateW {
			stateW[i] = rng.Uint64()
		}
		vals := n.LoadFrame64(vecW, stateW)
		n.Eval64(vals)

		for i, pi := range c.PIs {
			frame.V[pi], frame.K[pi] = vecW[i], AllOnes
		}
		for i, ff := range c.DFFs {
			frame.V[ff], frame.K[ff] = stateW[i], AllOnes
		}
		n.Eval64DR(frame, nil)
		for id := range c.Nodes {
			if frame.K[id] != AllOnes {
				t.Fatalf("node %s lost knownness under fully known rails", c.Nodes[id].Name)
			}
			if frame.V[id] != vals[id] {
				t.Fatalf("node %s: dual-rail %x, two-valued %x", c.Nodes[id].Name, frame.V[id], vals[id])
			}
		}
	}
}
