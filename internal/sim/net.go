// Package sim provides the simulation substrate for the ATPG system:
// levelized multi-valued evaluation of the combinational block under the
// 3-valued (0/1/X), 5-valued (D-algebra), 8-valued (two-frame delay
// algebra) and 64-way bit-parallel 2-valued domains, plus sequential
// (multi-frame) simulation with fault injection at stem or fanout-branch
// granularity.
//
// The structural substrate is the immutable Topology (flat CSR edge
// arrays, level buckets, cone bitsets), shared by all workers of a run.
// A Net couples one Topology with per-worker scratch: fanin gather
// buffers, the event-driven worklist, and the touched lists of the
// sparse kernels. Every evaluator exists in two forms — the full
// levelized walk over Topology.Order, and an event-driven selective-trace
// variant (cone.go) that re-evaluates only the fanout cone of a set of
// changed sources. The two are bit-identical by construction and by test.
package sim

import (
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// Net is the per-worker simulation view of a circuit: the shared
// Topology plus reusable scratch buffers. A Net must not be used from
// multiple goroutines concurrently; build one Net per worker (NewNetOn
// shares the Topology, so per-worker construction stays cheap).
type Net struct {
	T *Topology
	C *netlist.Circuit // == T.C, kept for the many existing call sites

	// ins64 is the reusable fanin scratch for the 64-way evaluators,
	// sized once from the circuit's maximum fanin; ins8 its counterpart
	// for the scalar eight-valued walk, so Eval8 never allocates even
	// for gates wider than any fixed stack buffer.
	ins64 []Word
	ins8  []logic.Value
	ins3  []V3
	ins5  []V5

	// wl is the level-bucketed worklist of the event-driven kernels.
	wl worklist

	// Sparse-kernel bookkeeping. The carry kernel (EvalCarry64Cone) and
	// the dual-rail overlay kernel (Eval64DROverlay) each track the nodes
	// diverging from their baseline with a marked flag plus a touched
	// list for O(touched) reset; the two sets are separate because
	// ConfirmBatch runs both kernels within one chunk.
	carryMarked  []bool
	carryTouched []netlist.NodeID
	ovMarked     []bool
	ovTouched    []netlist.NodeID
}

// NewNet builds a simulation view with a private Topology. Prefer
// NewNetOn when several workers simulate the same circuit.
func NewNet(c *netlist.Circuit) *Net { return NewNetOn(NewTopology(c)) }

// NewNetOn builds a per-worker view sharing the given Topology.
func NewNetOn(t *Topology) *Net {
	return &Net{
		T:           t,
		C:           t.C,
		ins64:       make([]Word, 2*t.MaxFanin),
		ins8:        make([]logic.Value, t.MaxFanin),
		ins3:        make([]V3, t.MaxFanin),
		ins5:        make([]V5, t.MaxFanin),
		carryMarked: make([]bool, t.NumNodes()),
		ovMarked:    make([]bool, t.NumNodes()),
	}
}

// EdgeOf returns the flat edge index of the connection feeding input
// position pos of node id.
func (n *Net) EdgeOf(id netlist.NodeID, pos int) int { return n.T.EdgeOf(id, pos) }

// NumEdges returns the total fanin connection count of the circuit.
func (n *Net) NumEdges() int { return n.T.NumEdges() }

// BranchOf returns the fanout branch index of the connection feeding input
// position pos of node id.
func (n *Net) BranchOf(id netlist.NodeID, pos int) int { return n.T.BranchOf(id, pos) }

// OnLine reports whether the connection feeding input position pos of node
// id lies on the given line: either the line is the driver's stem, or it is
// exactly this branch.
func (n *Net) OnLine(l netlist.Line, id netlist.NodeID, pos int) bool {
	return n.T.OnLine(l, id, pos)
}

// NumNodes returns the node count of the underlying circuit.
func (n *Net) NumNodes() int { return n.T.NumNodes() }
