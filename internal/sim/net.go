// Package sim provides the simulation substrate for the ATPG system:
// levelized multi-valued evaluation of the combinational block under the
// 3-valued (0/1/X), 5-valued (D-algebra), 8-valued (two-frame delay
// algebra) and 64-way bit-parallel 2-valued domains, plus sequential
// (multi-frame) simulation with fault injection at stem or fanout-branch
// granularity.
package sim

import "fogbuster/internal/netlist"

// Net is a precomputed simulation view of a circuit. It adds, for every
// gate input position, the index of the corresponding fanout branch of the
// driving node, so faults can be injected on individual branches.
type Net struct {
	C *netlist.Circuit

	// faninBranch[n][i] is the branch index b such that
	// C.Node(fanin).Fanout[b] is exactly this connection.
	faninBranch [][]int32
}

// NewNet builds the simulation view. The construction mirrors the fanout
// ordering of netlist: fanout entries are appended iterating nodes in ID
// order and fanins in position order.
func NewNet(c *netlist.Circuit) *Net {
	n := &Net{C: c, faninBranch: make([][]int32, len(c.Nodes))}
	counter := make([]int32, len(c.Nodes))
	for i := range c.Nodes {
		node := &c.Nodes[i]
		if len(node.Fanin) == 0 {
			continue
		}
		br := make([]int32, len(node.Fanin))
		for j, in := range node.Fanin {
			br[j] = counter[in]
			counter[in]++
		}
		n.faninBranch[i] = br
	}
	return n
}

// BranchOf returns the fanout branch index of the connection feeding input
// position pos of node id.
func (n *Net) BranchOf(id netlist.NodeID, pos int) int {
	return int(n.faninBranch[id][pos])
}

// OnLine reports whether the connection feeding input position pos of node
// id lies on the given line: either the line is the driver's stem, or it is
// exactly this branch.
func (n *Net) OnLine(l netlist.Line, id netlist.NodeID, pos int) bool {
	if n.C.Nodes[id].Fanin[pos] != l.Node {
		return false
	}
	return l.IsStem() || int(n.faninBranch[id][pos]) == l.Branch
}

// NumNodes returns the node count of the underlying circuit.
func (n *Net) NumNodes() int { return len(n.C.Nodes) }
