// Package sim provides the simulation substrate for the ATPG system:
// levelized multi-valued evaluation of the combinational block under the
// 3-valued (0/1/X), 5-valued (D-algebra), 8-valued (two-frame delay
// algebra) and 64-way bit-parallel 2-valued domains, plus sequential
// (multi-frame) simulation with fault injection at stem or fanout-branch
// granularity.
package sim

import "fogbuster/internal/netlist"

// Net is a precomputed simulation view of a circuit. It adds, for every
// gate input position, the index of the corresponding fanout branch of the
// driving node, so faults can be injected on individual branches.
//
// A Net carries reusable scratch buffers for the 64-way evaluators, so a
// single Net must not be used from multiple goroutines concurrently;
// build one Net per worker instead (construction is linear in the
// circuit size).
type Net struct {
	C *netlist.Circuit

	// faninBranch[n][i] is the branch index b such that
	// C.Node(fanin).Fanout[b] is exactly this connection.
	faninBranch [][]int32

	// edgeOff[n] is the index of node n's first fanin connection in a
	// flat edge numbering (edge = edgeOff[n] + input position); numEdges
	// is the total connection count. The 64-way injectors use it to
	// address branch faults without per-gate map lookups.
	edgeOff  []int32
	numEdges int

	// maxFanin sizes the per-Net evaluation scratch.
	maxFanin int

	// ins64 is the reusable fanin scratch for Eval64/Eval64DR, sized once
	// from the circuit's maximum fanin instead of being re-derived (and
	// potentially re-allocated) per gate per call.
	ins64 []Word
}

// NewNet builds the simulation view. The construction mirrors the fanout
// ordering of netlist: fanout entries are appended iterating nodes in ID
// order and fanins in position order.
func NewNet(c *netlist.Circuit) *Net {
	n := &Net{
		C:           c,
		faninBranch: make([][]int32, len(c.Nodes)),
		edgeOff:     make([]int32, len(c.Nodes)),
	}
	counter := make([]int32, len(c.Nodes))
	edges := 0
	for i := range c.Nodes {
		node := &c.Nodes[i]
		n.edgeOff[i] = int32(edges)
		edges += len(node.Fanin)
		if len(node.Fanin) > n.maxFanin {
			n.maxFanin = len(node.Fanin)
		}
		if len(node.Fanin) == 0 {
			continue
		}
		br := make([]int32, len(node.Fanin))
		for j, in := range node.Fanin {
			br[j] = counter[in]
			counter[in]++
		}
		n.faninBranch[i] = br
	}
	n.numEdges = edges
	n.ins64 = make([]Word, 2*n.maxFanin)
	return n
}

// EdgeOf returns the flat edge index of the connection feeding input
// position pos of node id.
func (n *Net) EdgeOf(id netlist.NodeID, pos int) int {
	return int(n.edgeOff[id]) + pos
}

// NumEdges returns the total fanin connection count of the circuit.
func (n *Net) NumEdges() int { return n.numEdges }

// BranchOf returns the fanout branch index of the connection feeding input
// position pos of node id.
func (n *Net) BranchOf(id netlist.NodeID, pos int) int {
	return int(n.faninBranch[id][pos])
}

// OnLine reports whether the connection feeding input position pos of node
// id lies on the given line: either the line is the driver's stem, or it is
// exactly this branch.
func (n *Net) OnLine(l netlist.Line, id netlist.NodeID, pos int) bool {
	if n.C.Nodes[id].Fanin[pos] != l.Node {
		return false
	}
	return l.IsStem() || int(n.faninBranch[id][pos]) == l.Branch
}

// NumNodes returns the node count of the underlying circuit.
func (n *Net) NumNodes() int { return len(n.C.Nodes) }
