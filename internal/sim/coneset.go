package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fogbuster/internal/netlist"
)

// ConePolicy selects the in-memory representation of the per-stem
// fanout-cone membership sets behind InCone/ConeGates. The sets are
// built lazily, one stem at a time, so a run that never asks for cone
// membership pays nothing — in particular, Topology construction never
// allocates the dense all-stems matrix (O(nodes²/8) bytes) that made
// >10k-gate circuits memory-hostile.
type ConePolicy uint8

const (
	// ConeAuto picks the cheaper representation per stem: the dense
	// bitset when the membership is fragmented, the interval list when
	// the cone covers few topological runs. This is the default.
	ConeAuto ConePolicy = iota
	// ConeDense forces the dense bitset for every stem, reproducing the
	// pre-compression representation exactly; it is the reference oracle
	// of the property tests.
	ConeDense
	// ConeCompressed forces the interval representation for every stem.
	ConeCompressed
)

// ParseConePolicy resolves a policy name; the empty string means auto.
func ParseConePolicy(s string) (ConePolicy, error) {
	switch s {
	case "", "auto":
		return ConeAuto, nil
	case "dense":
		return ConeDense, nil
	case "compressed":
		return ConeCompressed, nil
	}
	return ConeAuto, fmt.Errorf("sim: unknown cone-set policy %q (want auto, dense or compressed)", s)
}

// String returns the parseable policy name.
func (p ConePolicy) String() string {
	switch p {
	case ConeDense:
		return "dense"
	case ConeCompressed:
		return "compressed"
	default:
		return "auto"
	}
}

// coneSet is the membership set of one stem's fanout cone: the stem
// itself plus every combinational gate whose value can depend on it.
// Exactly one of words (dense bitset over node ids) and runs (sorted
// half-open id intervals [runs[2k], runs[2k+1])) is non-nil.
type coneSet struct {
	gates int32 // combinational gates in the cone
	words []Word
	runs  []int32
}

// contains reports membership of node id.
func (s *coneSet) contains(id int32) bool {
	if s.words != nil {
		return s.words[id/64]&(1<<uint(id%64)) != 0
	}
	// Find the first interval ending beyond id.
	k := sort.Search(len(s.runs)/2, func(k int) bool { return s.runs[2*k+1] > id })
	return k < len(s.runs)/2 && s.runs[2*k] <= id
}

// bytes returns the heap footprint of the set's payload.
func (s *coneSet) bytes() int64 {
	if s.words != nil {
		return int64(len(s.words)) * 8
	}
	return int64(len(s.runs)) * 4
}

// coneScratch is the reusable BFS state of one cone-set construction;
// mark uses an epoch counter so reuse never re-zeroes the array.
type coneScratch struct {
	mark    []int32
	epoch   int32
	members []int32
}

// coneSetsInit allocates the per-stem publication slots on first use.
func (t *Topology) coneSetsInit() {
	t.coneOnce.Do(func() {
		t.coneSealed.Store(true)
		t.coneSets = make([]atomic.Pointer[coneSet], t.NumNodes())
		t.coneScratch = &sync.Pool{New: func() any {
			return &coneScratch{mark: make([]int32, t.NumNodes())}
		}}
	})
}

// coneSetOf returns the cone set of src, building and publishing it on
// first use. Concurrent first uses may build twice; the set is a pure
// function of the topology and the policy, so either copy is correct and
// the first CAS wins.
func (t *Topology) coneSetOf(src netlist.NodeID) *coneSet {
	t.coneSetsInit()
	if s := t.coneSets[src].Load(); s != nil {
		return s
	}
	s := t.buildConeSet(src)
	if !t.coneSets[src].CompareAndSwap(nil, s) {
		s = t.coneSets[src].Load()
	}
	return s
}

// buildConeSet computes one stem's membership by breadth-first search
// over the fanout CSR, crossing only combinational gates — flip-flop
// consumers do not extend a cone, exactly as the frame boundary stops
// the levelized evaluation. The result matches the reverse-topological
// OR-fold the dense all-stems build used: {src} ∪ {gates reachable from
// src through gate-only paths}.
func (t *Topology) buildConeSet(src netlist.NodeID) *coneSet {
	sc := t.coneScratch.Get().(*coneScratch)
	sc.epoch++
	members := sc.members[:0]
	sc.mark[src] = sc.epoch
	members = append(members, int32(src))
	gates := int32(0)
	if t.Types[src].IsGate() {
		gates++
	}
	for head := 0; head < len(members); head++ {
		x := members[head]
		for e := t.FanoutOff[x]; e < t.FanoutOff[x+1]; e++ {
			y := t.FanoutNode[e]
			if !t.Types[y].IsGate() || sc.mark[y] == sc.epoch {
				continue
			}
			sc.mark[y] = sc.epoch
			members = append(members, int32(y))
			gates++
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	s := t.packConeSet(members, gates)
	sc.members = members
	t.coneScratch.Put(sc)
	return s
}

// packConeSet chooses the representation for a sorted membership list
// under the topology's policy and materializes it.
func (t *Topology) packConeSet(members []int32, gates int32) *coneSet {
	runs := 1
	for i := 1; i < len(members); i++ {
		if members[i] != members[i-1]+1 {
			runs++
		}
	}
	denseWords := (t.NumNodes() + 63) / 64
	useRuns := false
	switch t.ConePolicySelected() {
	case ConeCompressed:
		useRuns = true
	case ConeAuto:
		useRuns = 4*2*runs <= 8*denseWords
	}
	s := &coneSet{gates: gates}
	if useRuns {
		s.runs = make([]int32, 0, 2*runs)
		for i := 0; i < len(members); {
			j := i + 1
			for j < len(members) && members[j] == members[j-1]+1 {
				j++
			}
			s.runs = append(s.runs, members[i], members[j-1]+1)
			i = j
		}
		return s
	}
	s.words = make([]Word, denseWords)
	for _, id := range members {
		s.words[id/64] |= 1 << uint(id%64)
	}
	return s
}

// SetConePolicy selects the cone-set representation policy. It must be
// called before the first InCone/ConeGates/ConeFootprint query (core
// sets it at engine construction); changing the policy afterwards would
// mix representations, so the call is ignored once any set was built.
// Concurrent engines over one shared topology (the service's memoized
// per-circuit topology) all set the same policy, so the atomic store is
// what keeps the benign same-value write race-free.
func (t *Topology) SetConePolicy(p ConePolicy) {
	if !t.coneSealed.Load() {
		t.conePolicy.Store(uint32(p))
	}
}

// ConePolicySelected returns the active cone-set policy.
func (t *Topology) ConePolicySelected() ConePolicy { return ConePolicy(t.conePolicy.Load()) }

// InCone reports whether node id lies in the fanout cone of src (src
// itself included). Sets are built lazily per stem and shared.
func (t *Topology) InCone(src, id netlist.NodeID) bool {
	return t.coneSetOf(src).contains(int32(id))
}

// ConeGates returns the number of combinational gates in the fanout cone
// of node id's stem — the work bound of one event-driven re-evaluation
// seeded there, and the quantity whose distribution (against the total
// gate count) predicts the selective-trace speedup.
func (t *Topology) ConeGates(id netlist.NodeID) int {
	return int(t.coneSetOf(id).gates)
}

// ConeFootprint builds every stem's cone set under the active policy and
// returns the bytes the dense all-stems representation would occupy next
// to the bytes actually held — the memory-diet headline number circstat
// reports. (Dense is what the pre-compression Topology materialized on
// the first InCone touch.)
func (t *Topology) ConeFootprint() (dense, actual int64) {
	n := t.NumNodes()
	dense = int64(n) * int64((n+63)/64) * 8
	for i := 0; i < n; i++ {
		actual += t.coneSetOf(netlist.NodeID(i)).bytes()
	}
	return dense, actual
}
