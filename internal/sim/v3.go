package sim

import "fogbuster/internal/netlist"

// V3 is a three-valued logic value: 0, 1 or unknown.
type V3 uint8

// The three values. X is the unknown; at power-up all flip-flops hold X.
const (
	Lo V3 = 0
	Hi V3 = 1
	X  V3 = 2
)

// String returns "0", "1" or "X".
func (v V3) String() string {
	switch v {
	case Lo:
		return "0"
	case Hi:
		return "1"
	default:
		return "X"
	}
}

// Known reports whether the value is 0 or 1.
func (v V3) Known() bool { return v != X }

// Not3 returns the three-valued complement.
func Not3(v V3) V3 {
	switch v {
	case Lo:
		return Hi
	case Hi:
		return Lo
	default:
		return X
	}
}

// And3 returns the three-valued conjunction.
func And3(a, b V3) V3 {
	if a == Lo || b == Lo {
		return Lo
	}
	if a == Hi && b == Hi {
		return Hi
	}
	return X
}

// Or3 returns the three-valued disjunction.
func Or3(a, b V3) V3 {
	if a == Hi || b == Hi {
		return Hi
	}
	if a == Lo && b == Lo {
		return Lo
	}
	return X
}

// Xor3 returns the three-valued exclusive or.
func Xor3(a, b V3) V3 {
	if a == X || b == X {
		return X
	}
	return a ^ b
}

// EvalGate3 evaluates one gate over three-valued inputs.
func EvalGate3(t netlist.GateType, ins []V3) V3 {
	var v V3
	switch t {
	case netlist.Buf, netlist.DFF:
		return ins[0]
	case netlist.Not:
		return Not3(ins[0])
	case netlist.And, netlist.Nand:
		v = Hi
		for _, in := range ins {
			v = And3(v, in)
		}
		if t == netlist.Nand {
			v = Not3(v)
		}
	case netlist.Or, netlist.Nor:
		v = Lo
		for _, in := range ins {
			v = Or3(v, in)
		}
		if t == netlist.Nor {
			v = Not3(v)
		}
	case netlist.Xor, netlist.Xnor:
		v = Lo
		for _, in := range ins {
			v = Xor3(v, in)
		}
		if t == netlist.Xnor {
			v = Not3(v)
		}
	default:
		panic("sim: EvalGate3 on non-gate " + t.String())
	}
	return v
}

// Inject3 describes a three-valued fault injection: every reader of the
// line (and, for a stem, the node's own PO/PPO observation) sees Value
// instead of the driven value.
type Inject3 struct {
	Line  netlist.Line
	Value V3
}

// Eval3 evaluates the combinational block. vals must hold the PI and PPI
// values at their node indices on entry; all other entries are overwritten.
// A stem injection replaces the node's value outright; a branch injection
// is applied only on the faulty connection. The walk iterates the flat
// CSR topology and gathers fanins into Net scratch, so it never
// allocates.
func (n *Net) Eval3(vals []V3, inj *Inject3) {
	t := n.T
	injEdge := -1
	stem := netlist.None
	if inj != nil {
		if inj.Line.IsStem() {
			stem = inj.Line.Node
			// A stem injection on a PI or PPI overrides the source value
			// itself, before any consumer reads it.
			if typ := t.Types[stem]; typ == netlist.Input || typ == netlist.DFF {
				vals[stem] = inj.Value
			}
		} else {
			injEdge = t.lineEdge(inj.Line)
		}
	}
	ins := n.ins3
	for _, id := range t.Order {
		beg, end := t.FaninOff[id], t.FaninOff[id+1]
		buf := ins[:end-beg]
		for k := beg; k < end; k++ {
			v := vals[t.Fanin[k]]
			if int(k) == injEdge {
				v = inj.Value
			}
			buf[k-beg] = v
		}
		v := EvalGate3(t.Types[id], buf)
		if id == stem {
			v = inj.Value
		}
		vals[id] = v
	}
}

// NextState3 extracts the PPO values (the next state) after Eval3. A stem
// or DFF-feeding branch injection on the PPO connection is respected.
func (n *Net) NextState3(vals []V3, inj *Inject3) []V3 {
	t := n.T
	injEdge := -1
	if inj != nil && !inj.Line.IsStem() {
		injEdge = t.lineEdge(inj.Line)
	}
	next := make([]V3, len(t.C.DFFs))
	for i, ff := range t.C.DFFs {
		e := t.FaninOff[ff]
		v := vals[t.Fanin[e]]
		if int(e) == injEdge {
			v = inj.Value
		}
		next[i] = v
	}
	return next
}

// Outputs3 extracts the PO values after Eval3.
func (n *Net) Outputs3(vals []V3) []V3 {
	c := n.C
	out := make([]V3, len(c.POs))
	for i, po := range c.POs {
		out[i] = vals[po]
	}
	return out
}

// LoadFrame fills a fresh value array with PI vector and state values,
// leaving gate entries at Lo (they are overwritten by Eval3). vector and
// state use PI/DFF declaration order; a nil vector or state means all-X.
func (n *Net) LoadFrame(vector, state []V3) []V3 {
	vals := make([]V3, len(n.C.Nodes))
	n.LoadFrameInto(vals, vector, state)
	return vals
}

// LoadFrameInto is LoadFrame writing into a caller-owned buffer of
// len(Nodes), for allocation-free frame loops. Gate entries are left
// untouched: Eval3 overwrites every one of them.
func (n *Net) LoadFrameInto(vals []V3, vector, state []V3) {
	c := n.C
	for i, pi := range c.PIs {
		if vector == nil {
			vals[pi] = X
		} else {
			vals[pi] = vector[i]
		}
	}
	for i, ff := range c.DFFs {
		if state == nil {
			vals[ff] = X
		} else {
			vals[ff] = state[i]
		}
	}
}
