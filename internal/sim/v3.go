package sim

import "fogbuster/internal/netlist"

// V3 is a three-valued logic value: 0, 1 or unknown.
type V3 uint8

// The three values. X is the unknown; at power-up all flip-flops hold X.
const (
	Lo V3 = 0
	Hi V3 = 1
	X  V3 = 2
)

// String returns "0", "1" or "X".
func (v V3) String() string {
	switch v {
	case Lo:
		return "0"
	case Hi:
		return "1"
	default:
		return "X"
	}
}

// Known reports whether the value is 0 or 1.
func (v V3) Known() bool { return v != X }

// Not3 returns the three-valued complement.
func Not3(v V3) V3 {
	switch v {
	case Lo:
		return Hi
	case Hi:
		return Lo
	default:
		return X
	}
}

// And3 returns the three-valued conjunction.
func And3(a, b V3) V3 {
	if a == Lo || b == Lo {
		return Lo
	}
	if a == Hi && b == Hi {
		return Hi
	}
	return X
}

// Or3 returns the three-valued disjunction.
func Or3(a, b V3) V3 {
	if a == Hi || b == Hi {
		return Hi
	}
	if a == Lo && b == Lo {
		return Lo
	}
	return X
}

// Xor3 returns the three-valued exclusive or.
func Xor3(a, b V3) V3 {
	if a == X || b == X {
		return X
	}
	return a ^ b
}

// EvalGate3 evaluates one gate over three-valued inputs.
func EvalGate3(t netlist.GateType, ins []V3) V3 {
	var v V3
	switch t {
	case netlist.Buf, netlist.DFF:
		return ins[0]
	case netlist.Not:
		return Not3(ins[0])
	case netlist.And, netlist.Nand:
		v = Hi
		for _, in := range ins {
			v = And3(v, in)
		}
		if t == netlist.Nand {
			v = Not3(v)
		}
	case netlist.Or, netlist.Nor:
		v = Lo
		for _, in := range ins {
			v = Or3(v, in)
		}
		if t == netlist.Nor {
			v = Not3(v)
		}
	case netlist.Xor, netlist.Xnor:
		v = Lo
		for _, in := range ins {
			v = Xor3(v, in)
		}
		if t == netlist.Xnor {
			v = Not3(v)
		}
	default:
		panic("sim: EvalGate3 on non-gate " + t.String())
	}
	return v
}

// Inject3 describes a three-valued fault injection: every reader of the
// line (and, for a stem, the node's own PO/PPO observation) sees Value
// instead of the driven value.
type Inject3 struct {
	Line  netlist.Line
	Value V3
}

// Eval3 evaluates the combinational block. vals must hold the PI and PPI
// values at their node indices on entry; all other entries are overwritten.
// A stem injection replaces the node's value outright; a branch injection
// is applied only on the faulty connection.
func (n *Net) Eval3(vals []V3, inj *Inject3) {
	c := n.C
	var ins [16]V3
	// A stem injection on a PI or PPI overrides the source value itself,
	// before any consumer reads it.
	if inj != nil && inj.Line.IsStem() {
		if t := c.Nodes[inj.Line.Node].Type; t == netlist.Input || t == netlist.DFF {
			vals[inj.Line.Node] = inj.Value
		}
	}
	for _, id := range c.GateOrder() {
		node := &c.Nodes[id]
		buf := ins[:0]
		if len(node.Fanin) > len(ins) {
			buf = make([]V3, 0, len(node.Fanin))
		}
		for pos, in := range node.Fanin {
			v := vals[in]
			if inj != nil && !inj.Line.IsStem() && n.OnLine(inj.Line, id, pos) {
				v = inj.Value
			}
			buf = append(buf, v)
		}
		v := EvalGate3(node.Type, buf)
		if inj != nil && inj.Line.IsStem() && inj.Line.Node == id {
			v = inj.Value
		}
		vals[id] = v
	}
}

// NextState3 extracts the PPO values (the next state) after Eval3. A stem
// or DFF-feeding branch injection on the PPO connection is respected.
func (n *Net) NextState3(vals []V3, inj *Inject3) []V3 {
	c := n.C
	next := make([]V3, len(c.DFFs))
	for i, ff := range c.DFFs {
		d := c.Nodes[ff].Fanin[0]
		v := vals[d]
		if inj != nil && !inj.Line.IsStem() && n.OnLine(inj.Line, ff, 0) {
			v = inj.Value
		}
		next[i] = v
	}
	return next
}

// Outputs3 extracts the PO values after Eval3.
func (n *Net) Outputs3(vals []V3) []V3 {
	c := n.C
	out := make([]V3, len(c.POs))
	for i, po := range c.POs {
		out[i] = vals[po]
	}
	return out
}

// LoadFrame fills a fresh value array with PI vector and state values,
// leaving gate entries at Lo (they are overwritten by Eval3). vector and
// state use PI/DFF declaration order; a nil vector or state means all-X.
func (n *Net) LoadFrame(vector, state []V3) []V3 {
	c := n.C
	vals := make([]V3, len(c.Nodes))
	for i, pi := range c.PIs {
		if vector == nil {
			vals[pi] = X
		} else {
			vals[pi] = vector[i]
		}
	}
	for i, ff := range c.DFFs {
		if state == nil {
			vals[ff] = X
		} else {
			vals[ff] = state[i]
		}
	}
	return vals
}
