package sim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// delayTestCircuit builds a small sequential circuit with reconvergent
// fanout, XOR, and branch fault sites — every construct the carry rail
// has special rules for.
func delayTestCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("delay64")
	b.Input("a")
	b.Input("b")
	b.Input("c")
	b.DFF("q", "d")
	b.Gate("na", netlist.Not, "a")
	b.Gate("g1", netlist.And, "na", "b")
	b.Gate("g2", netlist.Or, "na", "c")   // na fans out: branch sites
	b.Gate("g3", netlist.Xor, "g1", "g2") // reconvergence through XOR
	b.Gate("g4", netlist.Nand, "g3", "q")
	b.Gate("d", netlist.Nor, "g3", "c")
	b.Output("g4")
	b.Output("g2")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEvalCarry64MatchesEval8 cross-checks the batched carry rail
// bit-for-bit against the scalar eight-valued evaluation: for random
// fully specified two-frame situations and random 64-fault batches,
// machine k's carry bit at every node must equal the Carrying() flag of
// a scalar Eval8 run with machine k's injection, and the batched faulty
// capture words must equal the scalar capture rule, in both algebras.
func TestEvalCarry64MatchesEval8(t *testing.T) {
	c := delayTestCircuit(t)
	net := NewNet(c)
	all := faults.AllDelay(c)
	rng := rand.New(rand.NewSource(64))
	inj64 := net.NewInjectDelay64()
	C := make([]Word, len(c.Nodes))
	faultyV := make([]Word, len(c.DFFs))

	bits := func(n int) []V3 {
		out := make([]V3, n)
		for i := range out {
			out[i] = V3(rng.Intn(2))
		}
		return out
	}
	for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
		for trial := 0; trial < 200; trial++ {
			v1, v2 := bits(len(c.PIs)), bits(len(c.PIs))
			s0, s1 := bits(len(c.DFFs)), bits(len(c.DFFs))
			vals := net.LoadFrame8(v1, v2, s0, s1)
			net.Eval8(alg, vals, nil)

			batch := make([]faults.Delay, 1+rng.Intn(64))
			for i := range batch {
				batch[i] = all[rng.Intn(len(all))]
			}
			inj64.Reset()
			for b, f := range batch {
				inj64.Add(uint(b), f.Line, f.Type == faults.SlowToRise)
			}
			net.EvalCarry64(alg, vals, C, inj64)
			carried := net.NextStateCarry64(vals, C, inj64, faultyV)

			for b, f := range batch {
				inj := &InjectDelay{Line: f.Line, SlowToRise: f.Type == faults.SlowToRise}
				ref := net.LoadFrame8(v1, v2, s0, s1)
				net.Eval8(alg, ref, inj)
				bit := Word(1) << uint(b)
				for id := range c.Nodes {
					if got, want := C[id]&bit != 0, ref[id].Carrying(); got != want {
						t.Fatalf("%s trial %d fault %v machine %d node %d: batched carry %v, scalar %v",
							alg.Name(), trial, f, b, id, got, want)
					}
				}
				next := net.NextState8(ref, inj)
				wantCarried := false
				for i, w := range next {
					var wantV uint8
					if w.Carrying() {
						wantV = w.Initial()
						wantCarried = true
					} else {
						wantV = w.Final()
					}
					if got := faultyV[i]&bit != 0; got != (wantV == 1) {
						t.Fatalf("%s trial %d fault %v machine %d FF %d: batched capture %v, scalar %d",
							alg.Name(), trial, f, b, i, got, wantV)
					}
				}
				if got := carried&bit != 0; got != wantCarried {
					t.Fatalf("%s trial %d fault %v machine %d: batched carried %v, scalar %v",
						alg.Name(), trial, f, b, got, wantCarried)
				}
			}
		}
	}
}

// TestInjectDelay64Reset pins that Reset really clears both stem and
// branch masks: a second batch must not inherit the first batch's sites.
func TestInjectDelay64Reset(t *testing.T) {
	c := delayTestCircuit(t)
	net := NewNet(c)
	inj := net.NewInjectDelay64()
	for _, l := range c.Lines() {
		inj.Add(0, l, true)
	}
	inj.Reset()
	for id := range c.Nodes {
		if inj.stemRise[id]|inj.stemFall[id] != 0 {
			t.Fatalf("stem masks of node %d survived Reset", id)
		}
	}
	for e := 0; e < net.NumEdges(); e++ {
		if inj.edgeRise[e]|inj.edgeFall[e] != 0 {
			t.Fatalf("edge masks of edge %d survived Reset", e)
		}
	}
	if inj.hasStem || inj.hasBranch {
		t.Fatal("has-flags survived Reset")
	}
}
