package sim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// This file is the randomized bit-identity contract of the event-driven
// kernels: for every algebra, random vectors, states and injection
// sites on every bench circuit, the selective-trace result must equal
// the full levelized walk value for value. The suite runs under -race
// in CI next to the other invariance suites; -short trims trial counts.

// coneCircuits returns the circuits the cross-checks sweep: every
// Table 3 profile, trimmed to a representative subset under -short.
func coneCircuits(t *testing.T) []*netlist.Circuit {
	var out []*netlist.Circuit
	for _, p := range bench.Profiles {
		if testing.Short() && p.Name != "s27" && p.Name != "s298" && p.Name != "s641" && p.Name != "s1238" {
			continue
		}
		out = append(out, p.Circuit())
	}
	return out
}

func randBits(rng *rand.Rand, n int) []V3 {
	out := make([]V3, n)
	for i := range out {
		out[i] = V3(rng.Intn(2))
	}
	return out
}

func randV3Vec(rng *rand.Rand, n int) []V3 {
	out := make([]V3, n)
	for i := range out {
		out[i] = V3(rng.Intn(3)) // includes X
	}
	return out
}

// sampleLines picks up to max fault sites, always including the first
// and last to cover PIs and deep gates.
func sampleLines(rng *rand.Rand, lines []netlist.Line, max int) []netlist.Line {
	if len(lines) <= max {
		return lines
	}
	out := []netlist.Line{lines[0], lines[len(lines)-1]}
	for len(out) < max {
		out = append(out, lines[rng.Intn(len(lines))])
	}
	return out
}

// TestEval8ConeMatchesFull: injection by selective trace over the
// fault-free values equals a full injected evaluation, for both
// algebras, every polarity, sampled fault sites, on every bench circuit.
func TestEval8ConeMatchesFull(t *testing.T) {
	for _, c := range coneCircuits(t) {
		net := NewNet(c)
		rng := rand.New(rand.NewSource(101))
		lines := c.Lines()
		for trial := 0; trial < 3; trial++ {
			v1, v2 := randBits(rng, len(c.PIs)), randBits(rng, len(c.PIs))
			s0, s1 := randBits(rng, len(c.DFFs)), randBits(rng, len(c.DFFs))
			for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
				base := net.LoadFrame8(v1, v2, s0, s1)
				net.Eval8(alg, base, nil)
				evt := make([]logic.Value, len(base))
				for _, l := range sampleLines(rng, lines, 60) {
					for _, str := range []bool{true, false} {
						inj := &InjectDelay{Line: l, SlowToRise: str}
						ref := net.LoadFrame8(v1, v2, s0, s1)
						net.Eval8(alg, ref, inj)
						copy(evt, base)
						net.Eval8Cone(alg, evt, inj)
						for i := range ref {
							if evt[i] != ref[i] {
								t.Fatalf("%s %s line %v str=%v node %d: cone %s, full %s",
									c.Name, alg.Name(), l, str, i, evt[i], ref[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestEval3ConeMatchesFull: re-evaluating only the cones of changed
// sources equals a full three-valued walk, X propagation included.
func TestEval3ConeMatchesFull(t *testing.T) {
	for _, c := range coneCircuits(t) {
		net := NewNet(c)
		rng := rand.New(rand.NewSource(102))
		for trial := 0; trial < 8; trial++ {
			vec, state := randV3Vec(rng, len(c.PIs)), randV3Vec(rng, len(c.DFFs))
			base := net.LoadFrame(vec, state)
			net.Eval3(base, nil)
			// Flip a random subset of sources.
			vec2, state2 := append([]V3(nil), vec...), append([]V3(nil), state...)
			var seeds []netlist.NodeID
			evt := append([]V3(nil), base...)
			for i, pi := range c.PIs {
				if rng.Intn(3) == 0 {
					vec2[i] = V3(rng.Intn(3))
					if vec2[i] != vec[i] {
						evt[pi] = vec2[i]
						seeds = append(seeds, pi)
					}
				}
			}
			for i, ff := range c.DFFs {
				if rng.Intn(3) == 0 {
					state2[i] = V3(rng.Intn(3))
					if state2[i] != state[i] {
						evt[ff] = state2[i]
						seeds = append(seeds, ff)
					}
				}
			}
			net.Eval3Cone(evt, seeds)
			ref := net.LoadFrame(vec2, state2)
			net.Eval3(ref, nil)
			for i := range ref {
				if evt[i] != ref[i] {
					t.Fatalf("%s trial %d node %d: cone %s, full %s", c.Name, trial, i, evt[i], ref[i])
				}
			}
		}
	}
}

// TestEval5ConeMatchesFull: the propagation search's delta update (a
// changed PI assignment, including un-assignment back to X) equals a
// full composite-domain walk, with D/D' state bits in play.
func TestEval5ConeMatchesFull(t *testing.T) {
	vals5 := []V5{Z5, O5, X5, D5, B5}
	for _, c := range coneCircuits(t) {
		net := NewNet(c)
		rng := rand.New(rand.NewSource(103))
		for trial := 0; trial < 8; trial++ {
			assign := make([]V5, len(c.PIs))
			for i := range assign {
				assign[i] = []V5{Z5, O5, X5}[rng.Intn(3)]
			}
			state := make([]V5, len(c.DFFs))
			for i := range state {
				state[i] = vals5[rng.Intn(len(vals5))]
			}
			base := net.LoadFrame5(assign, state)
			net.Eval5(base, nil)
			assign2 := append([]V5(nil), assign...)
			var seeds []netlist.NodeID
			evt := append([]V5(nil), base...)
			for i, pi := range c.PIs {
				if rng.Intn(3) == 0 {
					assign2[i] = []V5{Z5, O5, X5}[rng.Intn(3)]
					if assign2[i] != assign[i] {
						evt[pi] = assign2[i]
						seeds = append(seeds, pi)
					}
				}
			}
			net.Eval5Cone(evt, seeds)
			ref := net.LoadFrame5(assign2, state)
			net.Eval5(ref, nil)
			for i := range ref {
				if evt[i] != ref[i] {
					t.Fatalf("%s trial %d node %d: cone %s, full %s", c.Name, trial, i, evt[i], ref[i])
				}
			}
		}
	}
}

// TestEval64ConeMatchesFull: the 64-way two-valued kernel.
func TestEval64ConeMatchesFull(t *testing.T) {
	for _, c := range coneCircuits(t) {
		net := NewNet(c)
		rng := rand.New(rand.NewSource(104))
		words := func(n int) []Word {
			out := make([]Word, n)
			for i := range out {
				out[i] = Word(rng.Uint64())
			}
			return out
		}
		for trial := 0; trial < 8; trial++ {
			vec, state := words(len(c.PIs)), words(len(c.DFFs))
			base := net.LoadFrame64(vec, state)
			net.Eval64(base)
			vec2, state2 := append([]Word(nil), vec...), append([]Word(nil), state...)
			var seeds []netlist.NodeID
			evt := append([]Word(nil), base...)
			for i, pi := range c.PIs {
				if rng.Intn(3) == 0 {
					vec2[i] = Word(rng.Uint64())
					evt[pi] = vec2[i]
					seeds = append(seeds, pi)
				}
			}
			for i, ff := range c.DFFs {
				if rng.Intn(3) == 0 {
					state2[i] = Word(rng.Uint64())
					evt[ff] = state2[i]
					seeds = append(seeds, ff)
				}
			}
			net.Eval64Cone(evt, seeds)
			ref := net.LoadFrame64(vec2, state2)
			net.Eval64(ref)
			for i := range ref {
				if evt[i] != ref[i] {
					t.Fatalf("%s trial %d node %d: cone %x, full %x", c.Name, trial, i, evt[i], ref[i])
				}
			}
		}
	}
}

// TestEvalCarry64ConeMatchesFull: a batch of 64 random delay injections
// produces identical carry rails on the sparse and full paths, and
// ResetCarry64 restores the all-zero baseline so back-to-back batches on
// one Net stay exact.
func TestEvalCarry64ConeMatchesFull(t *testing.T) {
	for _, c := range coneCircuits(t) {
		net := NewNet(c)
		inj := net.NewInjectDelay64()
		rng := rand.New(rand.NewSource(105))
		lines := c.Lines()
		Cfull := make([]Word, len(c.Nodes))
		Cevt := make([]Word, len(c.Nodes))
		for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
			for trial := 0; trial < 4; trial++ {
				v1, v2 := randBits(rng, len(c.PIs)), randBits(rng, len(c.PIs))
				s0, s1 := randBits(rng, len(c.DFFs)), randBits(rng, len(c.DFFs))
				vals := net.LoadFrame8(v1, v2, s0, s1)
				net.Eval8(alg, vals, nil)
				inj.Reset()
				for b := 0; b < 64; b++ {
					inj.Add(uint(b), lines[rng.Intn(len(lines))], rng.Intn(2) == 0)
				}
				net.EvalCarry64(alg, vals, Cfull, inj)
				net.EvalCarry64Cone(alg, vals, Cevt, inj)
				for i := range Cfull {
					if Cevt[i] != Cfull[i] {
						t.Fatalf("%s %s trial %d node %d: cone %x, full %x",
							c.Name, alg.Name(), trial, i, Cevt[i], Cfull[i])
					}
				}
				net.ResetCarry64(Cevt)
				for i, w := range Cevt {
					if w != 0 {
						t.Fatalf("%s: ResetCarry64 left node %d at %x", c.Name, i, w)
					}
				}
			}
		}
	}
}

// TestEval64DROverlayMatchesFull: the dual-rail overlay over a scalar
// baseline equals the full 64-way dual-rail evaluation at every marked
// node, and every unmarked node provably equals the broadcast baseline.
func TestEval64DROverlayMatchesFull(t *testing.T) {
	for _, c := range coneCircuits(t) {
		net := NewNet(c)
		full := net.NewFrame64()
		ov := net.NewFrame64()
		rng := rand.New(rand.NewSource(106))
		for trial := 0; trial < 8; trial++ {
			vec, state := randV3Vec(rng, len(c.PIs)), randV3Vec(rng, len(c.DFFs))
			gv := net.LoadFrame(vec, state)
			net.Eval3(gv, nil)

			net.LoadFrame64DR(full, vec, state)
			for _, ff := range c.DFFs {
				// Random per-machine divergence on a subset of flip-flops
				// (keeping V&^K == 0, the dual-rail wellformedness).
				if rng.Intn(2) == 0 {
					k := Word(rng.Uint64())
					v := Word(rng.Uint64()) & k
					full.V[ff], full.K[ff] = v, k
					bv, bk := Broadcast64(gv[ff])
					if v != bv || k != bk {
						net.Overlay64Set(ov, ff, v, k)
					}
				}
			}
			net.Eval64DROverlay(ov, gv)
			ref := net.NewFrame64()
			copy(ref.V, full.V)
			copy(ref.K, full.K)
			net.Eval64DR(ref, nil)
			for i := range c.Nodes {
				id := netlist.NodeID(i)
				var v, k Word
				if net.Overlay64Marked(id) {
					v, k = ov.V[id], ov.K[id]
				} else {
					v, k = Broadcast64(gv[id])
				}
				if v != ref.V[id] || k != ref.K[id] {
					t.Fatalf("%s trial %d node %d (marked=%v): overlay (%x,%x), full (%x,%x)",
						c.Name, trial, i, net.Overlay64Marked(id), v, k, ref.V[id], ref.K[id])
				}
			}
			net.Overlay64Reset()
		}
	}
}
