package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// KernelPackages lists the packages whose exported batched kernels must
// ship with a scalar cross-check: every word-parallel evaluator in the
// repo (64 lanes/word, carry rails, fill batches) has a scalar twin, and
// the *Matches* equivalence tests are what keep the pair honest.
var KernelPackages = map[string]bool{
	"fogbuster/internal/sim":    true,
	"fogbuster/internal/tdsim":  true,
	"fogbuster/internal/fausim": true,
}

// OraclePairAnalyzer enforces the oracle-pairing contract: in the kernel
// packages, every exported function or method whose name marks it as a
// batched kernel (containing "64", "Batch", or "Fills") must be reachable
// — through any chain of same-package calls — from a *Matches* equivalence
// test in that package. A 64-lane kernel without a scalar cross-check is a
// determinism bug waiting for an input wide enough to find it.
var OraclePairAnalyzer = &Analyzer{
	Name:      "oraclepair",
	Doc:       "exported batched kernels (*64/*Batch/*Fills) must be reachable from a *Matches* equivalence test in their package",
	NeedTypes: true,
	Run:       runOraclePair,
}

// isKernelName reports whether an exported name declares a batched kernel.
func isKernelName(name string) bool {
	if !ast.IsExported(name) {
		return false
	}
	return strings.Contains(name, "64") || strings.Contains(name, "Batch") || strings.Contains(name, "Fills")
}

// isMatchesTest recognizes the equivalence-test naming convention
// (TestConfirmBatchMatchesScalar, TestEval64ConeMatchesFull, …).
func isMatchesTest(name string) bool {
	return strings.HasPrefix(name, "Test") && strings.Contains(name, "Matches")
}

func runOraclePair(pass *Pass) error {
	if !KernelPackages[pass.PkgPath] || pass.XTest {
		return nil
	}

	// Collect every function declaration in the package (tests included)
	// keyed by its types.Func object, so references resolve precisely even
	// when a method name shadows a function name.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// refs[f] = set of same-package functions f's body references.
	refs := make(map[*types.Func][]*types.Func)
	for obj, fd := range decls {
		if fd.Body == nil {
			continue
		}
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			used, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || seen[used] {
				return true
			}
			if _, samePkg := decls[used]; samePkg {
				seen[used] = true
				refs[obj] = append(refs[obj], used)
			}
			return true
		})
	}

	// BFS from the Matches tests.
	reached := make(map[*types.Func]bool)
	var queue []*types.Func
	for obj, fd := range decls {
		if pass.IsTest[fileOf(pass, fd)] && fd.Recv == nil && isMatchesTest(obj.Name()) {
			reached[obj] = true
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range refs[cur] {
			if !reached[next] {
				reached[next] = true
				queue = append(queue, next)
			}
		}
	}

	for obj, fd := range decls {
		if pass.IsTest[fileOf(pass, fd)] || !isKernelName(obj.Name()) {
			continue
		}
		if !reached[obj] {
			pass.Reportf(fd.Name.Pos(),
				"exported batched kernel %s is not reachable from any *Matches* equivalence test in %s: every 64-lane/batch kernel ships with a scalar cross-check, or carries //lint:allow oraclepair <reason>",
				obj.Name(), pass.PkgPath)
		}
	}
	return nil
}

// fileOf maps a declaration back to its containing file.
func fileOf(pass *Pass, n ast.Node) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= n.Pos() && n.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}
