package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// EnginePackages lists the packages whose results feed the canonical JSON
// document and must therefore be bit-reproducible at every worker count,
// shard split, and kernel pairing (DESIGN.md §§4–12). internal/service is
// included: its caches replay canonical bytes, so a commit-order leak there
// corrupts responses just as surely as one in the engine proper.
var EnginePackages = map[string]bool{
	"fogbuster/internal/core":    true,
	"fogbuster/internal/sim":     true,
	"fogbuster/internal/tdsim":   true,
	"fogbuster/internal/tdgen":   true,
	"fogbuster/internal/semilet": true,
	"fogbuster/internal/fausim":  true,
	"fogbuster/internal/compact": true,
	"fogbuster/internal/order":   true,
	"fogbuster/internal/service": true,
	"fogbuster/pkg/atpg":         true,
}

// DeterminismAnalyzer enforces the reproducibility house rules in the
// engine packages (non-test files only):
//
//   - no time.Now/time.Since — wall-clock reads are allowed only at sites
//     annotated //lint:allow determinism <reason> (Summary.Runtime, job
//     metadata), because any unannotated read tends to leak into results;
//   - no global math/rand state (rand.Intn, rand.Seed, …) — the process-
//     wide source makes outcomes depend on what ran before;
//   - no rand.New/rand.NewSource with a constant seed — the §12 faultSeed
//     discipline derives every stream from the run seed plus a fault or
//     lane index carried in an argument or field;
//   - no map iteration whose body appends to a slice, sends on a channel,
//     or calls an event emitter — the classic commit-order leak: map order
//     is randomized per run, so anything order-sensitive fed from a range
//     over a map diverges between byte-identical inputs.
var DeterminismAnalyzer = &Analyzer{
	Name:      "determinism",
	Doc:       "flag wall-clock reads, global or constant-seeded RNGs, and map-order-dependent result construction in engine packages",
	NeedTypes: true,
	Run:       runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !EnginePackages[pass.PkgPath] || pass.XTest {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTest[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCallDeterminism(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// funcFromPkg resolves a call target to (package path, function name) when
// the callee is a package-level function of an imported package.
func funcFromPkg(pass *Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

func checkCallDeterminism(pass *Pass, call *ast.CallExpr) {
	pkg, name, ok := funcFromPkg(pass, call)
	if !ok {
		return
	}
	switch pkg {
	case "time":
		if name == "Now" || name == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s in engine package %s: wall-clock reads leak into results; derive from inputs, or annotate a deliberate metadata site with //lint:allow determinism <reason>",
				name, pass.PkgPath)
		}
	case "math/rand", "math/rand/v2":
		if strings.HasPrefix(name, "New") {
			// Constructors (New, NewSource, NewPCG, …) own their stream;
			// only their seed provenance is at issue.
			for _, arg := range call.Args {
				checkSeedExpr(pass, call, arg)
			}
		} else {
			pass.Reportf(call.Pos(),
				"global %s.%s shares process-wide RNG state: outcomes depend on unrelated draws; use rand.New(rand.NewSource(seed)) with a seed derived per fault (§12 faultSeed discipline)",
				pathBase(pkg), name)
		}
	}
}

// checkSeedExpr flags seed arguments that are compile-time constants: a
// constant seed means every call site replays one fixed stream, which is
// how two workers end up drawing identical "random" fills. Seeds must
// carry provenance — an argument, field, or derived variable.
func checkSeedExpr(pass *Pass, call *ast.CallExpr, arg ast.Expr) {
	// Nested rand.NewSource(...) inside rand.New(...): recurse via the
	// normal Inspect walk; only judge non-call leaf arguments here.
	if inner, ok := arg.(*ast.CallExpr); ok {
		if pkg, _, ok := funcFromPkg(pass, inner); ok && (pkg == "math/rand" || pkg == "math/rand/v2") {
			return // judged at its own call site
		}
	}
	tv, ok := pass.TypesInfo.Types[arg]
	if ok && tv.Value != nil {
		pass.Reportf(call.Pos(),
			"%s seeded with constant %s: every site replays one fixed stream; derive the seed from an argument or field (§12 faultSeed discipline) or annotate with //lint:allow determinism <reason>",
			exprString(pass.Fset, call.Fun), tv.Value.String())
	}
}

// checkMapRange flags `for ... range m` over a map when the loop body
// appends to a slice, sends on a channel, or calls an emitter-shaped
// function: the iteration order is randomized, so the sink observes a
// different order on every run.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested ranges are checked independently; their sinks would
			// double-report through this walk.
			if n != rng {
				return false
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"send on a channel inside range over map %s: receivers observe randomized map order; iterate a sorted key slice instead",
				exprString(pass.Fset, rng.X))
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					pass.Reportf(n.Pos(),
						"append inside range over map %s builds a slice in randomized map order; iterate a sorted key slice (or sort the result and annotate with //lint:allow determinism <reason>)",
						exprString(pass.Fset, rng.X))
				}
				return true
			}
			if name := calleeName(n); isEmitterName(name) {
				pass.Reportf(n.Pos(),
					"%s called inside range over map %s: events fire in randomized map order; iterate a sorted key slice instead",
					name, exprString(pass.Fset, rng.X))
			}
		}
		return true
	})
}

// calleeName extracts the bare callee name of a call for the emitter
// heuristic.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isEmitterName matches the event-emitting call shapes of this codebase:
// the core merge loop's emit helpers and the OnEvent callback fields.
func isEmitterName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "emit") || lower == "onevent" || strings.HasPrefix(lower, "publish")
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
