package lint

import (
	"go/ast"
	"reflect"
	"strconv"
	"strings"
)

// JSONTagAnalyzer guards the canonical-JSON surface: in fogbuster/pkg/atpg,
// any exported struct type that participates in JSON encoding (has at
// least one json-tagged field) must tag every exported field — either with
// a name or with an explicit json:"-". An untagged field silently joins
// the canonical document under its Go name, which shifts golden files and
// every (content hash, config) cache key downstream; the rule turns that
// 3 AM cache-corruption hunt into a compile-time finding. Opting a field
// out of the document is fine; doing it implicitly is not.
var JSONTagAnalyzer = &Analyzer{
	Name: "jsontag",
	Doc:  "exported fields of pkg/atpg's JSON-encoded structs must carry a json tag or an explicit json:\"-\"",
	Run:  runJSONTag,
}

// jsonTagPackages is where the rule applies: the public API package is the
// one place canonical documents are defined.
var jsonTagPackages = map[string]bool{
	"fogbuster/pkg/atpg": true,
}

func runJSONTag(pass *Pass) error {
	if !jsonTagPackages[pass.PkgPath] || pass.XTest {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTest[f] {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStructTags(pass, ts.Name.Name, st)
			}
		}
	}
	return nil
}

func checkStructTags(pass *Pass, typeName string, st *ast.StructType) {
	type fieldInfo struct {
		name    *ast.Ident
		hasTag  bool
		isDash  bool
		tagName string
	}
	var fields []fieldInfo
	tagged := 0
	for _, field := range st.Fields.List {
		tag, hasJSON := jsonTag(field)
		names := field.Names
		if len(names) == 0 {
			// Embedded field: treat the type name as the field name.
			if id := embeddedName(field.Type); id != nil {
				names = []*ast.Ident{id}
			}
		}
		for _, name := range names {
			if !name.IsExported() {
				continue
			}
			fi := fieldInfo{name: name, hasTag: hasJSON}
			if hasJSON {
				tagged++
				fi.isDash = tag == "-"
				fi.tagName = strings.Split(tag, ",")[0]
			}
			fields = append(fields, fi)
		}
	}
	if tagged == 0 {
		return // not a JSON-encoded struct
	}
	for _, fi := range fields {
		if fi.hasTag {
			continue
		}
		pass.Reportf(fi.name.Pos(),
			"exported field %s.%s has no json tag: it silently joins the canonical JSON document under its Go name, shifting golden files and cache keys; tag it or opt out explicitly with json:\"-\"",
			typeName, fi.name.Name)
	}
}

// jsonTag extracts the json struct tag value.
func jsonTag(field *ast.Field) (string, bool) {
	if field.Tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return "", false
	}
	return reflect.StructTag(raw).Lookup("json")
}

// embeddedName digs the identifier out of an embedded field's type.
func embeddedName(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}
