// Package lint is the house static-analysis suite: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis shape (Analyzer,
// Pass, Diagnostic) plus a package loader, encoding the contracts every PR
// of this repo has staked the reproduction on — determinism of the engine
// packages, scalar/batched oracle pairing, mutex/atomic hygiene, the
// pkg/atpg API boundary, and canonical-JSON tag discipline (DESIGN.md §13).
//
// The framework is stdlib-only on purpose: the module has no third-party
// dependencies and the linter must not be the first. Packages are loaded
// through `go list -json` and type-checked with the stdlib source importer,
// so the analyzers see exactly the files the compiler would build, test
// files included.
//
// Deliberate exceptions to a rule are annotated in the source:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. A directive without a
// reason is itself a finding — the annotation is documentation, not a mute
// button.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run receives a fully loaded package and
// reports findings through the Pass; it returns an error only for internal
// failures (a finding is never an error).
type Analyzer struct {
	Name string
	Doc  string
	// NeedTypes marks analyzers that read Pass.TypesInfo; the loader may
	// skip type-checking when every requested analyzer is syntax-only.
	NeedTypes bool
	Run       func(*Pass) error
}

// Pass carries one loaded package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// PkgPath is the import path the rules match on (fixtures type-check
	// under the real paths they impersonate).
	PkgPath string
	// Files holds the package's syntax, compiled files first, then
	// in-package test files. IsTest tells them apart by *ast.File.
	Files  []*ast.File
	IsTest map[*ast.File]bool
	// XTest marks an external test package (package foo_test); PkgPath is
	// still the base package's path.
	XTest bool
	// Pkg and TypesInfo are nil when the package was loaded syntax-only.
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// AllowDirective is one parsed //lint:allow comment.
type AllowDirective struct {
	Analyzer string
	Reason   string
	Pos      token.Position
}

// directivePrefix is what an allow annotation starts with. The directive
// deliberately mirrors the //go: style: no space after //, machine-scoped.
const directivePrefix = "lint:allow"

// collectDirectives parses every //lint:allow directive in the files and
// returns them plus a diagnostic for each malformed one (missing analyzer
// name or missing reason).
func collectDirectives(fset *token.FileSet, files []*ast.File) ([]AllowDirective, []Diagnostic) {
	var dirs []AllowDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "malformed //lint:allow directive: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				dirs = append(dirs, AllowDirective{
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
					Pos:      pos,
				})
			}
		}
	}
	return dirs, bad
}

// suppress filters diags through the allow directives: a finding is
// suppressed when a directive for its analyzer sits on the same line or on
// the line directly above it in the same file. Directives naming "all"
// suppress every analyzer (reserved for generated code; unused today).
func suppress(diags []Diagnostic, dirs []AllowDirective) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := make(map[key]bool)
	for _, d := range dirs {
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line + 1} {
			allowed[key{d.Pos.Filename, line, d.Analyzer}] = true
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if allowed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			allowed[key{d.Pos.Filename, d.Pos.Line, "all"}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// RunAnalyzers applies the analyzers to every loaded package and returns
// the surviving findings sorted by position. Malformed allow directives are
// findings too, reported once per package.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(pkg.Fset, pkg.Files)
		all = append(all, bad...)
		var diags []Diagnostic
		for _, a := range analyzers {
			if a.NeedTypes && pkg.TypesInfo == nil {
				return nil, fmt.Errorf("analyzer %s needs type information but %s was loaded syntax-only", a.Name, pkg.PkgPath)
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				PkgPath:   pkg.PkgPath,
				Files:     pkg.Files,
				IsTest:    pkg.IsTest,
				XTest:     pkg.XTest,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		all = append(all, suppress(diags, dirs)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// Analyzers returns the full house suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		OraclePairAnalyzer,
		CopyLockAnalyzer,
		BoundaryAnalyzer,
		JSONTagAnalyzer,
	}
}

// exprString renders a (small) expression for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(fset, e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(fset, e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(fset, e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(fset, e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(fset, e.X)
	}
	return "expression"
}
