package lint

import (
	"strconv"
	"strings"
)

// Exemption is one deliberate hole in the API boundary: Consumer may
// import Target, in test files only when TestOnly is set. Every entry
// carries its justification — the table is the single source of truth the
// old `go list | grep` CI pipeline and the go/parser walk in
// imports_guard_test.go each half-encoded.
type Exemption struct {
	Consumer string // importing package (import path)
	Target   string // imported package (import path)
	TestOnly bool   // the edge is allowed in _test.go files only
	Reason   string
}

// DefaultBoundaryExemptions is the shipped exemption table.
var DefaultBoundaryExemptions = []Exemption{
	{
		Consumer: "fogbuster/cmd/atpgd",
		Target:   "fogbuster/internal/service",
		Reason:   "atpgd is the thin flags/listener shell over the service layer; service itself is held to pkg/atpg-only below",
	},
	{
		Consumer: "fogbuster/cmd/atpgcoord",
		Target:   "fogbuster/internal/service",
		TestOnly: true,
		Reason:   "coordinator tests boot in-process service workers instead of shelling out to atpgd binaries; the binary stays pkg/atpg-only",
	},
	{
		Consumer: "fogbuster/cmd/atpglint",
		Target:   "fogbuster/internal/lint",
		Reason:   "atpglint is the multichecker shell over the analyzer suite; it never touches the engine",
	},
}

// BoundaryAnalyzer enforces the two import contracts of DESIGN.md §8/§10:
//
//   - packages under cmd/ and examples/ consume the engine exclusively
//     through fogbuster/pkg/atpg — no fogbuster/internal/* imports except
//     the entries in the exemption table;
//   - fogbuster/internal/service imports no module package other than
//     fogbuster/pkg/atpg (the reference multi-tenant harness must prove
//     the public API sufficient).
//
// It replaces the `go list -f ... | grep` CI pipeline; being an analyzer,
// it checks the exact file set the compiler builds, test files included.
var BoundaryAnalyzer = NewBoundaryAnalyzer(DefaultBoundaryExemptions)

// NewBoundaryAnalyzer builds the boundary analyzer over an explicit
// exemption table (tests inject reduced tables to prove each entry is
// load-bearing).
func NewBoundaryAnalyzer(table []Exemption) *Analyzer {
	return &Analyzer{
		Name: "apiboundary",
		Doc:  "cmd/ and examples/ import pkg/atpg only (exemption table aside); internal/service consumes the engine through pkg/atpg only",
		Run: func(pass *Pass) error {
			return runBoundary(pass, table)
		},
	}
}

const (
	modulePrefix   = "fogbuster/"
	internalPrefix = "fogbuster/internal/"
	publicAPI      = "fogbuster/pkg/atpg"
	servicePkg     = "fogbuster/internal/service"
)

func runBoundary(pass *Pass, table []Exemption) error {
	isCmd := strings.HasPrefix(pass.PkgPath, "fogbuster/cmd/")
	isExample := strings.HasPrefix(pass.PkgPath, "fogbuster/examples/")
	isService := pass.PkgPath == servicePkg || strings.HasPrefix(pass.PkgPath, servicePkg+"/")
	if !isCmd && !isExample && !isService {
		return nil
	}
	exempt := func(target string, testFile bool) (Exemption, bool) {
		for _, e := range table {
			if e.Consumer == pass.PkgPath && e.Target == target && (!e.TestOnly || testFile) {
				return e, true
			}
		}
		return Exemption{}, false
	}
	for _, f := range pass.Files {
		testFile := pass.IsTest[f] || pass.XTest
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case (isCmd || isExample) && strings.HasPrefix(path, internalPrefix):
				if _, ok := exempt(path, testFile); ok {
					continue
				}
				pass.Reportf(imp.Pos(),
					"%s imports %s: cmd/ and examples/ consume the engine through %s only; a deliberate edge needs an entry in lint.DefaultBoundaryExemptions",
					pass.PkgPath, path, publicAPI)
			case isService && strings.HasPrefix(path, modulePrefix) && path != publicAPI:
				pass.Reportf(imp.Pos(),
					"%s imports %s: internal/service must consume the engine through %s only — if the service needs a private hook, the public API is lying about being sufficient",
					pass.PkgPath, path, publicAPI)
			}
		}
	}
	return nil
}
