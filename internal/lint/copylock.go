package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CopyLockAnalyzer is the mutex/atomic hygiene check, in two parts:
//
//  1. by-value copies of structs holding sync.* or sync/atomic.* state
//     (assignment from an existing value, call arguments, value receivers,
//     returns, and range clauses) — a copied mutex guards nothing and a
//     copied atomic forks its value; the broadcast set and the progress-
//     boundary tracker are exactly the structs this bites. Fresh composite
//     literals are fine: a value that has never been shared can be moved.
//
//  2. mixed atomic/plain access to one field: a field passed by address to
//     a sync/atomic function anywhere in the package must never also be
//     read or written directly — the plain access races the atomic one.
//
// Typed atomics (atomic.Int64 & friends) make class 2 impossible and are
// the house style; class 1 still applies to them.
var CopyLockAnalyzer = &Analyzer{
	Name:      "copylock",
	Doc:       "flag by-value copies of sync/atomic-bearing structs and mixed atomic/plain access to one field",
	NeedTypes: true,
	Run:       runCopyLock,
}

func runCopyLock(pass *Pass) error {
	seen := make(map[types.Type]bool)
	var containsLock func(t types.Type) bool
	containsLock = func(t types.Type) bool {
		switch u := t.Underlying().(type) {
		case *types.Struct:
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil {
					switch obj.Pkg().Path() {
					case "sync":
						// sync.Once, Mutex, RWMutex, WaitGroup, Map, Pool, Cond
						// all pin their address; sync.Locker is an interface and
						// never reaches here.
						return true
					case "sync/atomic":
						return true
					}
				}
			}
			if seen[t] {
				return false // cycle: being decided higher up the stack
			}
			seen[t] = true
			defer delete(seen, t)
			for i := 0; i < u.NumFields(); i++ {
				if containsLock(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return containsLock(u.Elem())
		}
		return false
	}

	report := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s copies %s, which holds sync/atomic state: a copied lock guards nothing and a copied atomic forks its value; share a pointer instead", what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}

	// copiesLockValue: expr yields a lock-containing value that already
	// exists elsewhere (so assigning/passing it duplicates live state).
	// Composite literals, conversions of literals, and function calls
	// (whose result is a fresh value the callee chose to return by value)
	// are not flagged at the use site.
	copiesLockValue := func(e ast.Expr) (types.Type, bool) {
		switch e.(type) {
		case *ast.CompositeLit, *ast.CallExpr:
			return nil, false
		case *ast.UnaryExpr, *ast.BinaryExpr:
			return nil, false
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil || !containsLock(t) {
			return nil, false
		}
		return t, true
	}

	// atomicFields[field] = position of one atomic access, for class 2.
	atomicFields := make(map[*types.Var]token.Pos)
	plainAccess := make(map[*types.Var][]token.Pos)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// Assigning to _ discards the value: no live copy is made.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if t, bad := copiesLockValue(rhs); bad {
						report(rhs.Pos(), "assignment", t)
					}
				}
			case *ast.ValueSpec:
				for _, val := range n.Values {
					if t, bad := copiesLockValue(val); bad {
						report(val.Pos(), "variable declaration", t)
					}
				}
			case *ast.CallExpr:
				// Class 2 bookkeeping: atomic.AddInt64(&x.f, 1) etc.
				if pkg, name, ok := funcFromPkg(pass, n); ok && pkg == "sync/atomic" && name != "" {
					for _, arg := range n.Args {
						if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
							if v := selectedField(pass, u.X); v != nil {
								atomicFields[v] = u.Pos()
							}
						}
					}
					return true
				}
				for _, arg := range n.Args {
					if t, bad := copiesLockValue(arg); bad {
						report(arg.Pos(), "call argument", t)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if t, bad := copiesLockValue(res); bad {
						report(res.Pos(), "return statement", t)
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypesInfo.TypeOf(n.Value); t != nil && containsLock(t) {
						report(n.Value.Pos(), "range clause", t)
					}
				}
			case *ast.FuncDecl:
				if n.Recv != nil && len(n.Recv.List) == 1 {
					rt := pass.TypesInfo.TypeOf(n.Recv.List[0].Type)
					if rt != nil {
						if _, isPtr := rt.Underlying().(*types.Pointer); !isPtr && containsLock(rt) {
							report(n.Recv.List[0].Pos(), "value receiver", rt)
						}
					}
				}
			}
			return true
		})
	}

	// Second walk for class 2 plain accesses, now that atomicFields is
	// complete. Reads through &x.f (address-of, feeding another atomic
	// call) were consumed above and do not count as plain.
	if len(atomicFields) > 0 {
		for _, f := range pass.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v := selectedField(pass, sel)
				if v == nil {
					return true
				}
				if _, isAtomic := atomicFields[v]; !isAtomic {
					return true
				}
				// &x.f — taking the address is how the atomic calls reach the
				// field; only value reads/writes are plain accesses.
				if len(stack) >= 2 {
					if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND {
						return true
					}
				}
				plainAccess[v] = append(plainAccess[v], sel.Pos())
				return true
			})
		}
		for v, atomicPos := range atomicFields {
			for _, pos := range plainAccess[v] {
				pass.Reportf(pos,
					"plain access to field %s, which is also accessed atomically (%s): mixed atomic/plain access races; use the atomic API everywhere or a typed atomic",
					v.Name(), pass.Fset.Position(atomicPos))
			}
		}
	}
	return nil
}

// selectedField resolves expr to the struct field it selects, if any.
func selectedField(pass *Pass, expr ast.Expr) *types.Var {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}
