package lint

// The fixture harness is the house analogue of x/tools' analysistest:
// every directory under testdata/<analyzer>/ is one package of fixture
// files, type-checked under an impersonated import path (the rules match
// on paths, so a fixture claiming to be fogbuster/internal/sim is held to
// the sim package's contracts). Expected findings are annotated in the
// fixture source:
//
//	code() // want "substring of the diagnostic"
//
// Each fixture must produce exactly its want set: a missing finding and a
// surplus finding both fail, so every analyzer demonstrably flags its bad
// case and stays quiet on its allowed case.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureChecker shares one source importer (and its package cache) across
// every fixture load in the test binary.
var fixtureChecker = sync.OnceValue(func() *fixtureLoader {
	fset := token.NewFileSet()
	return &fixtureLoader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
		stub: make(map[string]*types.Package),
	}
})

type fixtureLoader struct {
	fset *token.FileSet
	imp  types.Importer
	stub map[string]*types.Package
}

// Import resolves stdlib packages from source and module-internal paths as
// empty stubs, so boundary fixtures can impersonate cmd/ packages without
// dragging the real engine into the type-check.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if strings.HasPrefix(path, "fogbuster/") {
		if p, ok := l.stub[path]; ok {
			return p, nil
		}
		p := types.NewPackage(path, path[strings.LastIndexByte(path, '/')+1:])
		p.MarkComplete()
		l.stub[path] = p
		return p, nil
	}
	return l.imp.Import(path)
}

// loadFixture parses and type-checks one fixture directory as pkgPath.
func loadFixture(t *testing.T, dir, pkgPath string) *Package {
	t.Helper()
	l := fixtureChecker()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.fset,
		IsTest:  make(map[*ast.File]bool),
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.IsTest[f] = strings.HasSuffix(e.Name(), "_test.go")
	}
	if len(pkg.Files) == 0 {
		t.Fatalf("fixture %s holds no Go files", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.fset, pkg.Files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg
}

var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// wantedFindings scans the fixture files for want annotations keyed by
// (file, line).
func wantedFindings(pkg *Package) map[string][]string {
	wants := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					key := posKey(pos.Filename, pos.Line)
					wants[key] = append(wants[key], strings.ReplaceAll(m[1], `\"`, `"`))
				}
			}
		}
	}
	return wants
}

func posKey(file string, line int) string {
	return filepath.Base(file) + ":" + strconv.Itoa(line)
}

// checkFixture runs the analyzer over the fixture and diffs findings
// against the want annotations.
func checkFixture(t *testing.T, a *Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := wantedFindings(pkg)
	matched := make(map[string][]bool)
	for key, subs := range wants {
		matched[key] = make([]bool, len(subs))
	}
	for _, d := range diags {
		key := posKey(d.Pos.Filename, d.Pos.Line)
		ok := false
		for i, sub := range wants[key] {
			if strings.Contains(d.Message, sub) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for i, sub := range wants[key] {
			if !matched[key][i] {
				t.Errorf("missing finding at %s: want message containing %q", key, sub)
			}
		}
	}
}
