package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded (and optionally type-checked) package ready for
// the analyzers. In-package test files ride along with the compiled files;
// external test packages (package foo_test) become their own Package with
// XTest set and the base package's import path.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	IsTest  map[*ast.File]bool
	XTest   bool
	// Types and TypesInfo are nil in syntax-only mode.
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir           string
	ImportPath    string
	Name          string
	GoFiles       []string
	CgoFiles      []string
	TestGoFiles   []string
	XTestGoFiles  []string
	Standard      bool
	ForTest       string
	DepOnly       bool
	Incomplete    bool
	Error         *listError
	InvalidGoFile string
}

type listError struct {
	Err string
}

// LoadMode selects how much work Load does per package.
type LoadMode int

const (
	// LoadSyntax parses files only; Types/TypesInfo stay nil. Enough for
	// the import-level and struct-tag analyzers, and fast enough to run in
	// a unit test.
	LoadSyntax LoadMode = iota
	// LoadTypes additionally type-checks every package (dependencies are
	// resolved from source through the stdlib importer, so the first call
	// pays for the whole dependency closure once per process).
	LoadTypes
)

// Load resolves the package patterns with `go list` from dir (the module
// root or below) and parses — and in LoadTypes mode type-checks — every
// matched package, in-package test files included.
func Load(dir string, mode LoadMode, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var imp types.Importer
	if mode == LoadTypes {
		imp = importer.ForCompiler(fset, "source", nil)
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by the lint loader", lp.ImportPath)
		}
		base, err := parseGroup(fset, lp.Dir, lp.GoFiles, lp.TestGoFiles)
		if err != nil {
			return nil, err
		}
		if len(base.files) > 0 {
			pkg := &Package{
				PkgPath: lp.ImportPath,
				Dir:     lp.Dir,
				Fset:    fset,
				Files:   base.files,
				IsTest:  base.isTest,
			}
			if mode == LoadTypes {
				if err := typeCheck(fset, pkg, imp); err != nil {
					return nil, err
				}
			}
			pkgs = append(pkgs, pkg)
		}
		if len(lp.XTestGoFiles) > 0 {
			xt, err := parseGroup(fset, lp.Dir, nil, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkg := &Package{
				PkgPath: lp.ImportPath,
				Dir:     lp.Dir,
				Fset:    fset,
				Files:   xt.files,
				IsTest:  xt.isTest,
				XTest:   true,
			}
			if mode == LoadTypes {
				if err := typeCheck(fset, pkg, imp); err != nil {
					return nil, err
				}
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// goList shells out to `go list -json` for the patterns. The go command is
// the one authority on build constraints, file lists, and module layout —
// reimplementing any of that is how import guards rot.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &lp)
	}
	return pkgs, nil
}

type parsedGroup struct {
	files  []*ast.File
	isTest map[*ast.File]bool
}

func parseGroup(fset *token.FileSet, dir string, compiled, test []string) (parsedGroup, error) {
	g := parsedGroup{isTest: make(map[*ast.File]bool)}
	parse := func(names []string, isTest bool) error {
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			g.files = append(g.files, f)
			g.isTest[f] = isTest
		}
		return nil
	}
	if err := parse(compiled, false); err != nil {
		return g, err
	}
	if err := parse(test, true); err != nil {
		return g, err
	}
	return g, nil
}

// typeCheck populates pkg.Types/TypesInfo. Dependencies resolve from
// source via imp; the checked package itself includes its test files, so
// the analyzers see what the test binary compiles.
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	path := pkg.PkgPath
	if pkg.XTest {
		path += "_test"
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %v", pkg.PkgPath, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return nil
}
