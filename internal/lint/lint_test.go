package lint

import (
	"strings"
	"testing"
)

// The fixture tests are the analysistest suite of DESIGN.md §13: every
// analyzer demonstrates at least one flagged and one allowed case against
// testdata packages that impersonate the real import paths.

func TestDeterminismFixtures(t *testing.T) {
	// The engine fixture is held to the rules; the same constructs in a
	// non-engine package pass untouched.
	checkFixture(t, DeterminismAnalyzer, "testdata/determinism/engine", "fogbuster/internal/tdgen")
	checkFixture(t, DeterminismAnalyzer, "testdata/determinism/outside", "fogbuster/cmd/tdatpg")
}

func TestOraclePairFixtures(t *testing.T) {
	checkFixture(t, OraclePairAnalyzer, "testdata/oraclepair/kernels", "fogbuster/internal/sim")
	// Outside the kernel packages the same file is no one's business.
	checkFixtureExpectNone(t, OraclePairAnalyzer, "testdata/oraclepair/kernels", "fogbuster/internal/netlist")
}

func TestCopyLockFixtures(t *testing.T) {
	checkFixture(t, CopyLockAnalyzer, "testdata/copylock/locks", "fogbuster/internal/core")
	checkFixture(t, CopyLockAnalyzer, "testdata/copylock/mixed", "fogbuster/internal/service")
}

func TestBoundaryFixtures(t *testing.T) {
	a := BoundaryAnalyzer
	checkFixture(t, a, "testdata/boundary/atpgd", "fogbuster/cmd/atpgd")
	checkFixture(t, a, "testdata/boundary/atpgcoord", "fogbuster/cmd/atpgcoord")
	checkFixture(t, a, "testdata/boundary/atpgcoord_nontest", "fogbuster/cmd/atpgcoord")
	checkFixture(t, a, "testdata/boundary/badcmd", "fogbuster/cmd/badcmd")
	checkFixture(t, a, "testdata/boundary/service", "fogbuster/internal/service")
	checkFixture(t, a, "testdata/boundary/example", "fogbuster/examples/quickstart")
}

// TestExemptionTableLoadBearing proves each shipped exemption is doing
// work: with the entry removed, the fixture that rides it is refused. This
// is the compile-time stand-in for deleting the entry and watching CI go
// red (acceptance criterion of ISSUE 10).
func TestExemptionTableLoadBearing(t *testing.T) {
	cases := []struct {
		name     string
		fixture  string
		pkgPath  string
		consumer string
		target   string
	}{
		{"atpgd", "testdata/boundary/atpgd", "fogbuster/cmd/atpgd", "fogbuster/cmd/atpgd", "fogbuster/internal/service"},
		{"atpgcoord-test", "testdata/boundary/atpgcoord", "fogbuster/cmd/atpgcoord", "fogbuster/cmd/atpgcoord", "fogbuster/internal/service"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var reduced []Exemption
			for _, e := range DefaultBoundaryExemptions {
				if e.Consumer == tc.consumer && e.Target == tc.target {
					continue
				}
				reduced = append(reduced, e)
			}
			pkg := loadFixture(t, tc.fixture, tc.pkgPath)

			full, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{NewBoundaryAnalyzer(DefaultBoundaryExemptions)})
			if err != nil {
				t.Fatal(err)
			}
			if len(full) != 0 {
				t.Fatalf("fixture %s should pass under the shipped table, got %v", tc.fixture, full)
			}

			cut, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{NewBoundaryAnalyzer(reduced)})
			if err != nil {
				t.Fatal(err)
			}
			if len(cut) == 0 {
				t.Fatalf("exemption %s -> %s is not load-bearing: fixture %s still passes without it", tc.consumer, tc.target, tc.fixture)
			}
			for _, d := range cut {
				if !strings.Contains(d.Message, tc.target) {
					t.Errorf("finding does not name the refused edge: %s", d.Message)
				}
			}
		})
	}
}

func TestJSONTagFixtures(t *testing.T) {
	checkFixture(t, JSONTagAnalyzer, "testdata/jsontag/atpg", "fogbuster/pkg/atpg")
	// The same file outside pkg/atpg carries no canonical-JSON contract.
	checkFixtureExpectNone(t, JSONTagAnalyzer, "testdata/jsontag/atpg", "fogbuster/internal/service")
}

func TestMalformedDirective(t *testing.T) {
	pkg := loadFixture(t, "testdata/allow/malformed", "fogbuster/internal/netlist")
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{DeterminismAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	var malformed int
	for _, d := range diags {
		if d.Analyzer == "allow" && strings.Contains(d.Message, "malformed //lint:allow directive") {
			malformed++
		} else {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	if malformed != 1 {
		t.Fatalf("want exactly 1 malformed-directive finding, got %d", malformed)
	}
}

// checkFixtureExpectNone runs the analyzer over a fixture under a package
// path where its rules do not apply and requires silence (ignoring want
// annotations, which target the in-scope run).
func checkFixtureExpectNone(t *testing.T, a *Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("analyzer %s should not apply to %s: %s", a.Name, pkgPath, d)
	}
}

// TestAnalyzersRegistry pins the suite composition the multichecker and CI
// rely on.
func TestAnalyzersRegistry(t *testing.T) {
	want := []string{"determinism", "oraclepair", "copylock", "apiboundary", "jsontag"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("want %d analyzers, got %d", len(want), len(got))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: want %s, got %s", i, want[i], a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
	}
}
