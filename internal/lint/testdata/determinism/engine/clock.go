// Fixture impersonating an engine package: wall-clock and RNG rules.
package engine

import (
	"math/rand"
	"time"
)

// Flagged: a bare wall-clock read on a result path.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in engine package"
}

func stamp() time.Time {
	return time.Now() // want "time.Now in engine package"
}

// Allowed: the annotated metadata site.
func runtimeMetadata() time.Time {
	return time.Now() //lint:allow determinism wall-clock metadata outside the canonical result
}

// Flagged: the process-wide source makes draws depend on unrelated code.
func globalDraw() int {
	return rand.Intn(6) // want "global rand.Intn shares process-wide RNG state"
}

// Flagged: a constant seed replays one fixed stream at every site.
func fixedStream() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want "rand.NewSource seeded with constant 42"
}

// Allowed: the seed carries provenance from an argument (the faultSeed
// discipline).
func perFaultStream(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(i)*17))
}

// Allowed: annotated placeholder, reseeded before use.
func placeholder() *rand.Rand {
	return rand.New(rand.NewSource(0)) //lint:allow determinism placeholder; caller reseeds before every draw
}
