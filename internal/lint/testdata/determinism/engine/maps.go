package engine

import "sort"

type emitterHost struct {
	OnEvent func(string)
}

func (h *emitterHost) emitProgress(name string) {
	if h.OnEvent != nil {
		h.OnEvent(name)
	}
}

// Flagged: the slice inherits randomized map order.
func keysLeak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append inside range over map m builds a slice in randomized map order"
	}
	return out
}

// Allowed: annotated because the result is sorted before anyone sees it.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) //lint:allow determinism sorted below before return
	}
	sort.Strings(out)
	return out
}

// Flagged: receivers observe randomized order.
func drain(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "send on a channel inside range over map m"
	}
}

// Flagged: events fire in randomized order.
func announce(h *emitterHost, m map[string]int) {
	for k := range m {
		h.emitProgress(k) // want "emitProgress called inside range over map m"
	}
}

// Allowed: order-insensitive aggregation over a map is fine.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Allowed: ranging a slice feeds the sink in a stable order.
func fromSlice(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
