// Fixture impersonating a non-engine package (cmd/tdatpg): the
// determinism rules do not apply outside the engine set, so none of this
// is flagged.
package outside

import (
	"math/rand"
	"time"
)

func clockOK() time.Time { return time.Now() }

func globalOK() int { return rand.Intn(6) }

func mapOK(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
