// Fixture for the mutex/atomic hygiene rules.
package locks

import (
	"sync"
	"sync/atomic"
)

type tracker struct {
	mu    sync.Mutex
	count int
}

type counters struct {
	hits atomic.Int64
}

// nested embeds a lock transitively.
type nested struct {
	inner tracker
}

func use(t tracker) int { // value receiver params are call-site findings, see below
	return t.count
}

func flagged() {
	var a tracker
	b := a // want "assignment copies tracker, which holds sync/atomic state"
	_ = b

	use(a) // want "call argument copies tracker, which holds sync/atomic state"

	var n nested
	m := n // want "assignment copies nested, which holds sync/atomic state"
	_ = m

	var c counters
	d := c // want "assignment copies counters, which holds sync/atomic state"
	_ = d

	list := []tracker{{}, {}}
	for _, item := range list { // want "range clause copies tracker, which holds sync/atomic state"
		_ = item
	}
}

func ret(t *tracker) tracker {
	return *t // want "return statement copies tracker, which holds sync/atomic state"
}

// Allowed shapes: fresh composite literals, pointers, and index-free use.
func allowed() *tracker {
	t := tracker{} // fresh literal: never shared, safe to place
	arr := make([]tracker, 4)
	arr[0] = tracker{count: 1} // fresh literal into a slot, the claimer idiom
	for i := range arr {       // index-only range copies nothing
		arr[i].count++
	}
	return &t
}

type valueReceiver struct {
	mu sync.Mutex
}

func (v valueReceiver) peek() int { // want "value receiver copies valueReceiver, which holds sync/atomic state"
	return 0
}
