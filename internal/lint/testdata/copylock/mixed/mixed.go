// Fixture for the mixed atomic/plain access rule.
package mixed

import "sync/atomic"

type stats struct {
	calls int64 // accessed through sync/atomic below
	other int64 // plain everywhere: fine
}

func (s *stats) bump() {
	atomic.AddInt64(&s.calls, 1)
	s.other++
}

func (s *stats) read() int64 {
	return atomic.LoadInt64(&s.calls)
}

// leak reads the atomically-written field without the atomic API: that
// read races every bump.
func (s *stats) leak() int64 {
	return s.calls // want "plain access to field calls, which is also accessed atomically"
}

func (s *stats) plainOther() int64 {
	return s.other
}
