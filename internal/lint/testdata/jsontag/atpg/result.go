// Fixture impersonating fogbuster/pkg/atpg: structs on the canonical JSON
// surface must tag every exported field.
package atpg

import "time"

// Result mirrors the real canonical document shape.
type Result struct {
	Circuit string        `json:"circuit"`
	Tested  int           `json:"tested"`
	Runtime time.Duration `json:"runtime_ns"`
	// Steals is deliberately outside the canonical bytes.
	Steals int `json:"-"`
	// Drift silently joins the document under its Go name.
	Drift int // want "exported field Result.Drift has no json tag"

	internalCursor int // unexported: not part of the encoding contract
}

// Options carries no json tags at all, so it is not a JSON-encoded struct
// and the rule stays quiet.
type Options struct {
	Workers int
	Verbose bool
}

// Summary has an embedded field joining the document untagged.
type Summary struct {
	Result        // want "exported field Summary.Result has no json tag"
	Order  string `json:"order"`
}
