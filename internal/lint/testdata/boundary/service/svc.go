// Fixture impersonating fogbuster/internal/service: among module packages
// only fogbuster/pkg/atpg is importable.
package service

import (
	_ "fogbuster/internal/core" // want "internal/service must consume the engine through fogbuster/pkg/atpg only"
	_ "fogbuster/pkg/atpg"
	_ "net/http"
)
