// Fixture impersonating a new fogbuster/cmd/badcmd: any cmd/* -> internal/*
// edge without a table entry is refused.
package main

import (
	_ "fogbuster/internal/core" // want "cmd/ and examples/ consume the engine through fogbuster/pkg/atpg only"
	_ "fogbuster/pkg/atpg"
)

func main() {}
