// Fixture impersonating fogbuster/cmd/atpgd: the exemption table allows
// the thin daemon shell to import internal/service in compiled files.
package main

import (
	_ "fogbuster/internal/service"
	_ "fogbuster/pkg/atpg"
)

func main() {}
