// Fixture impersonating fogbuster/examples/quickstart: the public API is
// the only module import an example may carry.
package main

import (
	_ "fogbuster/pkg/atpg"
)

func main() {}
