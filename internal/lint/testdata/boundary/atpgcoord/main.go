// Fixture impersonating fogbuster/cmd/atpgcoord: the binary is
// pkg/atpg-only; its tests may boot in-process service workers.
package main

import (
	_ "fogbuster/pkg/atpg"
)

func main() {}
