package main

import (
	_ "fogbuster/internal/service" // allowed: the atpgcoord exemption is TestOnly
	"testing"
)

func TestBootsInProcessWorkers(t *testing.T) {}
