// Fixture impersonating fogbuster/cmd/atpgcoord again, but with the
// service import in a compiled file: the exemption is TestOnly, so this
// edge is refused.
package main

import (
	_ "fogbuster/internal/service" // want "cmd/ and examples/ consume the engine through fogbuster/pkg/atpg only"
)

func main() {}
