// Fixture for the directive parser: an annotation without a reason is
// itself a finding — the escape hatch documents, it does not mute. The
// assertions live in TestMalformedDirective (no want annotations here: a
// want on the directive's own line would read as its reason).
package malformed

func noted() int {
	//lint:allow determinism
	return 1
}

func fine() int {
	//lint:allow determinism the reason clause makes the directive well-formed
	return 2
}
