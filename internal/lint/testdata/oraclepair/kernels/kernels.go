// Fixture impersonating fogbuster/internal/sim: exported batched kernels
// must be reachable from a *Matches* equivalence test.
package kernels

// Paired64 is covered: TestPaired64MatchesScalar reaches it through the
// compare helper.
func Paired64(words []uint64) uint64 {
	var acc uint64
	for _, w := range words {
		acc ^= w
	}
	return acc
}

// PairedScalar is the scalar oracle of Paired64.
func PairedScalar(words []uint64) uint64 {
	var acc uint64
	for _, w := range words {
		acc ^= w
	}
	return acc
}

// Orphan64 has no equivalence test anywhere.
func Orphan64(words []uint64) uint64 { // want "exported batched kernel Orphan64 is not reachable from any"
	var acc uint64
	for _, w := range words {
		acc += w
	}
	return acc
}

// OrphanBatch is equally uncovered.
func OrphanBatch(words []uint64) int { // want "exported batched kernel OrphanBatch is not reachable from any"
	return len(words)
}

//lint:allow oraclepair pure accessor over the batch, nothing to cross-check
func Accessor64(words []uint64) int {
	return len(words)
}

// helper64 is unexported: reachability is demanded of the exported
// surface only.
func helper64(words []uint64) uint64 {
	return Paired64(words)
}

// Mixer is a receiver type so the fixture exercises method kernels too.
type Mixer struct{ bias uint64 }

// Mix64 is covered through the test's direct method call.
func (m *Mixer) Mix64(w uint64) uint64 {
	return w ^ m.bias
}

// Lost64 is an uncovered method kernel.
func (m *Mixer) Lost64(w uint64) uint64 { // want "exported batched kernel Lost64 is not reachable from any"
	return w &^ m.bias
}
