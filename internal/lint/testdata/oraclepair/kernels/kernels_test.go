package kernels

import "testing"

// compare is a helper between the test and the kernel: reachability is
// transitive through any chain of same-package calls.
func compare(t *testing.T, words []uint64) {
	if Paired64(words) != PairedScalar(words) {
		t.Fatal("kernel disagrees with scalar oracle")
	}
}

func TestPaired64MatchesScalar(t *testing.T) {
	compare(t, []uint64{1, 2, 3})
}

func TestMix64MatchesScalar(t *testing.T) {
	m := &Mixer{bias: 7}
	if m.Mix64(5) != 5^7 {
		t.Fatal("mix kernel wrong")
	}
}

// TestOrphanishSum uses Orphan64, but its name does not mark it as an
// equivalence test, so Orphan64 stays uncovered.
func TestOrphanishSum(t *testing.T) {
	if Orphan64([]uint64{1}) != 1 {
		t.Fatal("unexpected sum")
	}
}

func BenchmarkOrphanBatch(b *testing.B) {
	// Benchmarks are not oracles either.
	for i := 0; i < b.N; i++ {
		OrphanBatch(nil)
	}
}
