// Package timing computes signal arrival and stabilization times, the
// analysis the paper's future-work section proposes: "the arrival and
// stabilization times of all signals are calculated, allowing a more
// precise indication of signal values at certain times. This will make
// the task of propagation of the fault effect easier, thereby making
// robustly untestable faults testable."
//
// Under a per-gate delay model, Earliest is the soonest a node can start
// changing after the launch edge and Latest the time by which it is
// guaranteed stable in the fault-free machine. The combined engine uses
// the slack against the fast clock period to decide which transitioning
// or hazardous PPO values may still be handed to the sequential engine as
// known state: a signal whose stabilization slack exceeds the assumed
// process-variation budget settles before the fast capture edge even in a
// pessimistic part, so its final value is trustworthy.
package timing

import "fogbuster/internal/netlist"

// Analysis holds per-node arrival windows in gate-delay units.
type Analysis struct {
	// Earliest is the shortest-path arrival time: before it the node
	// still holds its initial-frame value.
	Earliest []int32
	// Latest is the longest-path stabilization time: after it the
	// fault-free node holds its final value.
	Latest []int32
	// Period is the fast clock period implied by the critical path: the
	// largest Latest over all POs and PPOs (the capture points).
	Period int32
}

// UnitDelay assigns every gate one delay unit; buffers and inverters are
// cheaper in most libraries, so they cost 0 here and the analysis follows
// the usual technology-independent convention.
func UnitDelay(t netlist.GateType) int32 {
	switch t {
	case netlist.Buf, netlist.Not:
		return 0
	default:
		return 1
	}
}

// Analyze computes the windows under the given delay model (nil means
// UnitDelay).
func Analyze(c *netlist.Circuit, delay func(netlist.GateType) int32) *Analysis {
	if delay == nil {
		delay = UnitDelay
	}
	a := &Analysis{
		Earliest: make([]int32, len(c.Nodes)),
		Latest:   make([]int32, len(c.Nodes)),
	}
	for _, id := range c.GateOrder() {
		node := &c.Nodes[id]
		d := delay(node.Type)
		early, late := int32(1<<30), int32(0)
		for _, in := range node.Fanin {
			if a.Earliest[in] < early {
				early = a.Earliest[in]
			}
			if a.Latest[in] > late {
				late = a.Latest[in]
			}
		}
		a.Earliest[id] = early + d
		a.Latest[id] = late + d
	}
	for _, po := range c.POs {
		if a.Latest[po] > a.Period {
			a.Period = a.Latest[po]
		}
	}
	for _, ppo := range c.PPOs() {
		if a.Latest[ppo] > a.Period {
			a.Period = a.Latest[ppo]
		}
	}
	return a
}

// Slack returns how many delay units earlier than the fast capture edge
// the node is guaranteed stable.
func (a *Analysis) Slack(id netlist.NodeID) int32 {
	return a.Period - a.Latest[id]
}
