package timing

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/netlist"
)

func TestChainWindows(t *testing.T) {
	b := netlist.NewBuilder("chain")
	b.Input("a")
	b.Input("b")
	b.Gate("g1", netlist.And, "a", "b")
	b.Gate("g2", netlist.And, "g1", "b")
	b.Gate("g3", netlist.Not, "g2")
	b.Output("g3")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(c, nil)
	g1, g2, g3 := c.LookupID("g1"), c.LookupID("g2"), c.LookupID("g3")
	if a.Latest[g1] != 1 || a.Latest[g2] != 2 || a.Latest[g3] != 2 {
		t.Fatalf("latest: g1=%d g2=%d g3=%d", a.Latest[g1], a.Latest[g2], a.Latest[g3])
	}
	// g2's earliest path goes through input b directly: 1 unit.
	if a.Earliest[g2] != 1 {
		t.Fatalf("earliest g2 = %d, want 1", a.Earliest[g2])
	}
	if a.Period != 2 {
		t.Fatalf("period = %d, want 2", a.Period)
	}
	if a.Slack(g1) != 1 || a.Slack(g3) != 0 {
		t.Fatalf("slack: g1=%d g3=%d", a.Slack(g1), a.Slack(g3))
	}
}

func TestEarliestNeverExceedsLatest(t *testing.T) {
	for _, p := range bench.Profiles {
		c := p.Circuit()
		a := Analyze(c, nil)
		for i := range c.Nodes {
			if a.Earliest[i] > a.Latest[i] {
				t.Fatalf("%s node %s: earliest %d > latest %d", p.Name, c.Nodes[i].Name, a.Earliest[i], a.Latest[i])
			}
			if a.Latest[i] > a.Period && !c.Nodes[i].IsPO {
				// Dead-end internal nodes cannot exceed the period because
				// the period covers all capture points and every node
				// feeds one (no dead logic in the suite).
				onPath := false
				for _, f := range c.Nodes[i].Fanout {
					_ = f
					onPath = true
				}
				if onPath {
					t.Fatalf("%s node %s: latest %d beyond period %d", p.Name, c.Nodes[i].Name, a.Latest[i], a.Period)
				}
			}
		}
	}
}

func TestCustomDelayModel(t *testing.T) {
	c := bench.NewC17()
	heavy := func(netlist.GateType) int32 { return 3 }
	a := Analyze(c, heavy)
	// c17 is 3 NAND levels deep: period 9 under the uniform-3 model.
	if a.Period != 9 {
		t.Fatalf("period = %d, want 9", a.Period)
	}
	u := Analyze(c, nil)
	if u.Period != 3 {
		t.Fatalf("unit period = %d, want 3", u.Period)
	}
}
