package tdsim

import (
	"fogbuster/internal/faults"
	"fogbuster/internal/sim"
)

// FillBatch packs 64 fully specified X-fill completions of one candidate
// test, one lane per word bit: bit k of V1[i] is lane k's initial-frame
// value of PI i, and so on. Prop holds the propagation vectors that
// follow the fast frame, per frame per PI. Unlike ConfirmBatch (64
// faults of one frame), every lane here is a different frame of the SAME
// fault — the batched X-fill trial of the generation phase.
type FillBatch struct {
	V1, V2 []sim.Word   // per PI: the two fast-frame vectors
	S0, S1 []sim.Word   // per DFF: initial state, latched test state
	Prop   [][]sim.Word // per propagation frame, per PI
}

// fillScratch holds the lane-parallel confirmation buffers, built lazily
// so Sims that never batch fills pay nothing.
type fillScratch struct {
	rail           *sim.Rail64
	goodW, faultyW []sim.Word // fast-frame captured states, per DFF
	valsG, valsF   []sim.Word // replay frames, per node
	stateG, stateF []sim.Word // replay states, per DFF
	nextG, nextF   []sim.Word
}

func (s *Sim) fills() *fillScratch {
	if s.fill == nil {
		n := len(s.net.C.Nodes)
		d := len(s.net.C.DFFs)
		s.fill = &fillScratch{
			rail:  s.net.NewRail64(),
			goodW: make([]sim.Word, d), faultyW: make([]sim.Word, d),
			valsG: make([]sim.Word, n), valsF: make([]sim.Word, n),
			stateG: make([]sim.Word, d), stateF: make([]sim.Word, d),
			nextG: make([]sim.Word, d), nextF: make([]sim.Word, d),
		}
	}
	return s.fill
}

// ConfirmFills runs Confirm's exact decision for all 64 fill lanes of
// one fault in a single pass and returns the word of detecting lanes:
// one rail evaluation of the fast frame (sim.EvalFill64; the fault-free
// values are the plain rails, the faulty divergence lives in the carry
// rail), the lane-parallel capture rule, and — for the lanes whose
// effect was captured at a PPO but missed every PO — a 64-lane pure
// two-valued pair replay of the propagation frames (every input is
// binary after X-fill, so the three-valued simulation of the scalar
// PairDiff degenerates to Eval64, which is exact there). Bit k of the
// result equals the scalar Confirm verdict on lane k's FastFrame,
// pinned by TestConfirmFillsMatchesScalar.
func (s *Sim) ConfirmFills(fb *FillBatch, f faults.Delay) sim.Word {
	fs := s.fills()
	net := s.net
	c := net.C
	inj := &sim.InjectDelay{Line: f.Line, SlowToRise: f.Type == faults.SlowToRise}

	r := fs.rail
	for i, pi := range c.PIs {
		r.SetInput(pi, fb.V1[i], fb.V2[i])
	}
	for i, ff := range c.DFFs {
		r.SetInput(ff, fb.S0[i], fb.S1[i])
	}
	net.EvalFill64(s.alg, r, inj)

	// Robust observation at a PO in the fast frame.
	det := net.ObserveFill64(r)

	// Capture rule: a carrying PPO captures its initial value at the fast
	// edge, a fault-free one its final value.
	carried := net.NextStateFill64(r, inj, fs.goodW, fs.faultyW)
	need := carried &^ det
	if need == 0 || len(fb.Prop) == 0 {
		return det
	}

	// Pair replay under slow fault-free clocking, 64 lanes per pass. A
	// lane whose faulty state has collapsed onto the good one can never
	// diff later (fault-free replay is deterministic), mirroring the
	// scalar PairDiff early exit.
	t := net.T
	copy(fs.stateG, fs.goodW)
	copy(fs.stateF, fs.faultyW)
	for _, vec := range fb.Prop {
		var diverged sim.Word
		for i := range c.DFFs {
			diverged |= fs.stateG[i] ^ fs.stateF[i]
		}
		need &= diverged
		if need == 0 {
			break
		}
		for i, pi := range c.PIs {
			fs.valsG[pi] = vec[i]
			fs.valsF[pi] = vec[i]
		}
		for i, ff := range c.DFFs {
			fs.valsG[ff] = fs.stateG[i]
			fs.valsF[ff] = fs.stateF[i]
		}
		net.Eval64(fs.valsG)
		net.Eval64(fs.valsF)
		for _, po := range c.POs {
			diff := (fs.valsG[po] ^ fs.valsF[po]) & need
			det |= diff
			need &^= diff
		}
		if need == 0 {
			break
		}
		for i, ff := range c.DFFs {
			d := t.Fanin[t.FaninOff[ff]]
			fs.stateG[i] = fs.valsG[d]
			fs.stateF[i] = fs.valsF[d]
		}
	}
	return det
}
