package tdsim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// batchCircuits are the circuits the differential tests sweep: the exact
// paper benchmarks plus synthetic reconstructions with reconvergence,
// XOR-heavy logic and deep state.
func batchCircuits(t *testing.T) []*netlist.Circuit {
	t.Helper()
	cs := []*netlist.Circuit{bench.NewC17(), bench.NewS27()}
	for _, name := range []string{"s208", "s298", "s386"} {
		cs = append(cs, bench.ProfileByName(name).Circuit())
	}
	return cs
}

// TestConfirmBatchMatchesScalar is the differential property test of the
// word-parallel credit path: over random concrete two-frame situations
// on every test circuit, the batched verdict for EVERY delay fault of
// the universe (not only CPT candidates) must equal the scalar Confirm
// verdict, under both algebras. The scalar path is the reference oracle;
// any divergence is a bug in the batched encoding.
func TestConfirmBatchMatchesScalar(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for _, c := range batchCircuits(t) {
		net := sim.NewNet(c)
		all := faults.AllDelay(c)
		for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
			td := New(net, alg)
			rng := rand.New(rand.NewSource(int64(len(all))))
			out := make([]bool, len(all))
			for trial := 0; trial < trials; trial++ {
				ff := randomFrame(c, net, rng, trial%4)
				vals := td.Values(ff)
				goodS2 := make([]sim.V3, len(c.DFFs))
				for i, ppo := range c.PPOs() {
					goodS2[i] = sim.V3(vals[ppo].Final())
				}
				td.ConfirmBatch(ff, vals, goodS2, all, out)
				for i, f := range all {
					if want := td.Confirm(ff, vals, goodS2, f); out[i] != want {
						t.Fatalf("%s/%s trial %d fault %s: batched %v, scalar %v",
							c.Name, alg.Name(), trial, f.Name(c), out[i], want)
					}
				}
			}
		}
	}
}

// TestDetectMatchesDetectScalar pins the full credit sweep: the batched
// Detect must return exactly the scalar DetectScalar fault list (same
// faults, same order), with and without a skip filter.
func TestDetectMatchesDetectScalar(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 6
	}
	sawDetection := false
	for _, c := range batchCircuits(t) {
		net := sim.NewNet(c)
		td := New(net, logic.Robust)
		rng := rand.New(rand.NewSource(int64(len(c.Nodes))))
		for trial := 0; trial < trials; trial++ {
			ff := randomFrame(c, net, rng, 1+trial%3)
			var skip func(faults.Delay) bool
			if trial%2 == 1 {
				// Skip a deterministic pseudo-random half of the universe.
				skip = func(f faults.Delay) bool {
					return (int(f.Line.Node)+f.Line.Branch+int(f.Type))%2 == 0
				}
			}
			got := td.Detect(ff, skip)
			want := td.DetectScalar(ff, skip)
			if len(got) != len(want) {
				t.Fatalf("%s trial %d: batched %d faults, scalar %d", c.Name, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d position %d: batched %s, scalar %s",
						c.Name, trial, i, got[i].Name(c), want[i].Name(c))
				}
			}
			if len(got) > 0 {
				sawDetection = true
			}
		}
	}
	if !sawDetection {
		t.Error("no detections on any circuit; differential test inert")
	}
}
