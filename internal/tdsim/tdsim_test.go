package tdsim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// randomFrame builds a random concrete fast-frame situation for a circuit.
func randomFrame(c *netlist.Circuit, net *sim.Net, rng *rand.Rand, propFrames int) *FastFrame {
	bits := func(n int) []sim.V3 {
		out := make([]sim.V3, n)
		for i := range out {
			out[i] = sim.V3(rng.Intn(2))
		}
		return out
	}
	v1, v2, s0 := bits(len(c.PIs)), bits(len(c.PIs)), bits(len(c.DFFs))
	f1 := net.LoadFrame(v1, s0)
	net.Eval3(f1, nil)
	s1 := net.NextState3(f1, nil)
	ff := &FastFrame{V1: v1, V2: v2, S0: s0, S1: s1}
	for k := 0; k < propFrames; k++ {
		ff.Prop = append(ff.Prop, bits(len(c.PIs)))
	}
	return ff
}

// TestCPTMatchesExhaustiveInjection: on c17, critical path tracing plus
// confirmation must find exactly the faults that brute-force injection
// finds (combinational, so PO observation only).
func TestCPTMatchesExhaustiveInjection(t *testing.T) {
	c := bench.NewC17()
	net := sim.NewNet(c)
	td := New(net, logic.Robust)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		ff := randomFrame(c, net, rng, 0)
		got := make(map[faults.Delay]bool)
		for _, f := range td.Detect(ff, nil) {
			got[f] = true
		}
		// Brute force: inject every fault, check carrying POs.
		for _, f := range faults.AllDelay(c) {
			inj := &sim.InjectDelay{Line: f.Line, SlowToRise: f.Type == faults.SlowToRise}
			vals := net.LoadFrame8(ff.V1, ff.V2, ff.S0, ff.S1)
			net.Eval8(logic.Robust, vals, inj)
			want := false
			for _, po := range c.POs {
				if vals[po].Carrying() {
					want = true
				}
			}
			if got[f] != want {
				t.Fatalf("trial %d fault %s: CPT %v, injection %v", trial, f.Name(c), got[f], want)
			}
		}
	}
}

// TestDetectSequentialSoundness: every fault Detect reports on s27 must be
// confirmed by the exact injection-and-replay check.
func TestDetectSequentialSoundness(t *testing.T) {
	c := bench.NewS27()
	net := sim.NewNet(c)
	td := New(net, logic.Robust)
	rng := rand.New(rand.NewSource(27))
	total := 0
	for trial := 0; trial < 200; trial++ {
		ff := randomFrame(c, net, rng, 3)
		vals := td.Values(ff)
		goodS2 := make([]sim.V3, len(c.DFFs))
		nonSteady := make([]bool, len(c.DFFs))
		for i, ppo := range c.PPOs() {
			goodS2[i] = sim.V3(vals[ppo].Final())
			nonSteady[i] = !vals[ppo].Steady()
		}
		for _, f := range td.Detect(ff, nil) {
			total++
			if !td.Confirm(ff, vals, goodS2, f) {
				t.Fatalf("trial %d: Detect reported %s but Confirm rejects it", trial, f.Name(c))
			}
		}
	}
	if total == 0 {
		t.Fatal("no detections in 200 random trials; simulator inert")
	}
}

// TestInvalidationByStateCorruption reproduces the paper's invalidation
// scenario: a fault observed only through a PPO whose own side effect
// corrupts the state the propagation relies on must not be credited.
// Circuit: the fault effect reaches both FFs; through the XOR the two
// corruptions cancel, so the PO never sees a difference even though each
// captured bit individually carries the effect.
func TestInvalidationByStateCorruption(t *testing.T) {
	b := netlist.NewBuilder("invalidate")
	b.Input("a")
	b.Input("en")
	b.Gate("na", netlist.Not, "a")
	b.Gate("da", netlist.Buf, "na") // PPO A <- effect site cone
	b.DFF("qa", "da")
	b.Gate("db", netlist.Buf, "na") // PPO B shares the cone: side effect
	b.DFF("qb", "db")
	b.Gate("y", netlist.Xor, "qa", "qb")
	b.Output("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net := sim.NewNet(c)
	td := New(net, logic.Robust)

	// a falls, so na rises late under the StR fault at na; both FFs
	// capture the (late) rise. Propagation of the qa effect needs qb=1,
	// which the fault breaks in exactly the same cycle.
	ff := &FastFrame{
		V1: []sim.V3{sim.Hi, sim.Lo}, V2: []sim.V3{sim.Lo, sim.Lo},
		S0: []sim.V3{sim.Lo, sim.Lo}, S1: []sim.V3{sim.Lo, sim.Lo},
		Prop: [][]sim.V3{{sim.Lo, sim.Lo}},
	}
	vals := td.Values(ff)
	goodS2 := []sim.V3{sim.Hi, sim.Hi}
	for i, ppo := range c.PPOs() {
		if got := sim.V3(vals[ppo].Final()); got != goodS2[i] {
			t.Fatalf("PPO %d good capture = %v, want 1", i, got)
		}
	}
	f := faults.Delay{Line: netlist.Stem(c.LookupID("na")), Type: faults.SlowToRise}
	if td.Confirm(ff, vals, goodS2, f) {
		t.Fatal("fault credited although its side effect invalidates the propagation state")
	}
}

// TestNoFalseStR: a line that never transitions in the frame must not
// yield candidates.
func TestNoFalseCandidates(t *testing.T) {
	c := bench.NewC17()
	net := sim.NewNet(c)
	td := New(net, logic.Robust)
	same := []sim.V3{sim.Hi, sim.Hi, sim.Hi, sim.Hi, sim.Hi}
	ff := &FastFrame{V1: same, V2: same, S0: nil, S1: nil}
	if got := td.Detect(ff, nil); len(got) != 0 {
		t.Fatalf("static frame detected %d faults", len(got))
	}
}

// TestSkipFilter: the skip callback must suppress already-classified
// faults.
func TestSkipFilter(t *testing.T) {
	c := bench.NewC17()
	net := sim.NewNet(c)
	td := New(net, logic.Robust)
	rng := rand.New(rand.NewSource(3))
	ff := randomFrame(c, net, rng, 0)
	all := td.Detect(ff, nil)
	if len(all) == 0 {
		t.Skip("frame detects nothing; rng unlucky")
	}
	skip := all[0]
	rest := td.Detect(ff, func(f faults.Delay) bool { return f == skip })
	for _, f := range rest {
		if f == skip {
			t.Fatal("skip filter ignored")
		}
	}
	if len(rest) != len(all)-1 {
		t.Fatalf("rest = %d, want %d", len(rest), len(all)-1)
	}
}
