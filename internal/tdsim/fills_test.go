package tdsim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/sim"
)

// randomFillBatch builds 64 random fully specified lanes directly as
// packed words, plus the scalar lane extractor.
func randomFillBatch(nPI, nFF, propFrames int, rng *rand.Rand) *FillBatch {
	words := func(n int) []sim.Word {
		out := make([]sim.Word, n)
		for i := range out {
			out[i] = sim.Word(rng.Uint64())
		}
		return out
	}
	fb := &FillBatch{
		V1: words(nPI), V2: words(nPI),
		S0: words(nFF), S1: words(nFF),
	}
	for k := 0; k < propFrames; k++ {
		fb.Prop = append(fb.Prop, words(nPI))
	}
	return fb
}

// laneFrame extracts lane k of a FillBatch as a scalar FastFrame.
func laneFrame(fb *FillBatch, k uint) *FastFrame {
	bits := func(w []sim.Word) []sim.V3 {
		out := make([]sim.V3, len(w))
		for i := range w {
			out[i] = sim.V3(w[i] >> k & 1)
		}
		return out
	}
	ff := &FastFrame{V1: bits(fb.V1), V2: bits(fb.V2), S0: bits(fb.S0), S1: bits(fb.S1)}
	for _, vec := range fb.Prop {
		ff.Prop = append(ff.Prop, bits(vec))
	}
	return ff
}

// TestConfirmFillsMatchesScalar is the differential property test of the
// lane-parallel X-fill confirmation: over random 64-lane fill batches on
// every test circuit, bit k of ConfirmFills must equal the scalar
// Confirm verdict on lane k's frame, for every delay fault of the
// universe, under both algebras and both evaluation modes of the scalar
// oracle. Any divergence is a bug in the rail encoding or the replay.
func TestConfirmFillsMatchesScalar(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for _, c := range batchCircuits(t) {
		net := sim.NewNet(c)
		all := faults.AllDelay(c)
		for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
			td := New(net, alg)
			goodS2 := make([]sim.V3, len(c.DFFs))
			rng := rand.New(rand.NewSource(int64(len(all) + len(c.Nodes))))
			for trial := 0; trial < trials; trial++ {
				fb := randomFillBatch(len(c.PIs), len(c.DFFs), trial%4, rng)
				step := 1 + len(all)/24 // sample the universe, keep runtime sane
				for fi := 0; fi < len(all); fi += step {
					f := all[fi]
					det := td.ConfirmFills(fb, f)
					for k := uint(0); k < 64; k += 3 {
						ff := laneFrame(fb, k)
						vals := td.Values(ff)
						for i, ppo := range c.PPOs() {
							goodS2[i] = sim.V3(vals[ppo].Final())
						}
						want := td.Confirm(ff, vals, goodS2, f)
						if got := det>>k&1 != 0; got != want {
							t.Fatalf("%s/%s trial %d fault %s lane %d: batched %v, scalar %v",
								c.Name, alg.Name(), trial, f.Name(c), k, got, want)
						}
					}
				}
			}
		}
	}
}
