package tdsim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/sim"
)

// TestConfirmEventMatchesFullEval: the event-driven Confirm (copy of the
// good values plus a selective trace of the fault cone, overlay replay
// for PPO-observed effects) returns exactly the full-eval verdict for
// every fault of the universe, over random concrete frames, under both
// algebras.
func TestConfirmEventMatchesFullEval(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for _, c := range batchCircuits(t) {
		net := sim.NewNet(c)
		netRef := sim.NewNet(c)
		all := faults.AllDelay(c)
		for _, alg := range []*logic.Algebra{logic.Robust, logic.NonRobust} {
			evt := New(net, alg)
			full := New(netRef, alg)
			full.SetFullEval(true)
			rng := rand.New(rand.NewSource(int64(len(all))))
			for trial := 0; trial < trials; trial++ {
				ff := randomFrame(c, net, rng, trial%4)
				vals := evt.Values(ff)
				goodS2 := make([]sim.V3, len(c.DFFs))
				for i, ppo := range c.PPOs() {
					goodS2[i] = sim.V3(vals[ppo].Final())
				}
				for _, f := range all {
					got := evt.Confirm(ff, vals, goodS2, f)
					want := full.Confirm(ff, vals, goodS2, f)
					if got != want {
						t.Fatalf("%s/%s trial %d fault %s: event %v, full %v",
							c.Name, alg.Name(), trial, f.Name(c), got, want)
					}
				}
			}
		}
	}
}

// TestDetectEventMatchesFullEval: the whole per-test analysis — phase-2
// observability, CPT candidates, batched confirmation — returns the same
// fault list on the event-driven and full-eval paths.
func TestDetectEventMatchesFullEval(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	sawDetection := false
	for _, c := range batchCircuits(t) {
		net := sim.NewNet(c)
		netRef := sim.NewNet(c)
		evt := New(net, logic.Robust)
		full := New(netRef, logic.Robust)
		full.SetFullEval(true)
		rng := rand.New(rand.NewSource(int64(len(c.Nodes))))
		for trial := 0; trial < trials; trial++ {
			ff := randomFrame(c, net, rng, 1+trial%3)
			got := evt.Detect(ff, nil)
			want := full.Detect(ff, nil)
			if len(got) != len(want) {
				t.Fatalf("%s trial %d: event %d faults, full %d", c.Name, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d position %d: event %s, full %s",
						c.Name, trial, i, got[i].Name(c), want[i].Name(c))
				}
			}
			if len(got) > 0 {
				sawDetection = true
			}
		}
	}
	if !sawDetection {
		t.Error("no detections on any circuit; differential test inert")
	}
}
