// Package tdsim implements TDsim, the delay fault simulator integrated in
// TDgen (paper Section 5, phase 3): robust gate delay fault simulation of
// the fast time frame by critical path tracing (CPT) from all primary
// outputs and from the PPOs that FAUSIM found observable in the
// propagation phase, including the invalidation analysis for faults
// detected through a PPO.
//
// Critical path tracing yields candidate faults; each candidate is
// confirmed by exact fault injection in the eight-valued two-frame
// algebra, which handles reconvergent stems soundly. A candidate observed
// only at a PPO is finally confirmed by replaying the propagation frames
// with the corrupted captured state, which subsumes the paper's separate
// invalidation CPT: a side effect that destroys a state value the
// propagation relied on simply makes the replay lose the difference.
//
// Confirmation runs word-parallel by default: ConfirmBatch packs 64
// candidates per machine word through the carry-rail encoding of the
// eight-valued algebra (sim.EvalCarry64) and a batched dual-rail replay
// (fausim.PairDiffBatch), with verdicts bit-identical to the scalar
// Confirm, which remains the reference oracle (see DESIGN.md §6).
package tdsim

import (
	"fogbuster/internal/faults"
	"fogbuster/internal/fausim"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// Sim performs fast-frame delay fault simulation for one algebra. The
// per-candidate confirmation path reuses scratch buffers held on the Sim,
// so one Sim must not be shared between goroutines; the core engine
// builds one per worker.
type Sim struct {
	net *sim.Net
	alg *logic.Algebra
	fs  *fausim.Sim

	// fullEval forces the full levelized walks instead of the
	// event-driven selective-trace kernels. The two are bit-identical
	// (TestConfirmEventMatchesFullEval and the engine-level invariance
	// suite); the flag exists as the reference oracle.
	fullEval bool

	// Scratch reused across Confirm calls (one Eval8 pass per candidate
	// fault runs on these instead of fresh allocations).
	vals8    []logic.Value
	next8    []logic.Value
	faultyS2 []sim.V3

	// Scratch for the word-parallel credit path (ConfirmBatch): the
	// per-node carry rail, the per-FF faulty capture words, the 64-way
	// delay injector and the verdict buffer.
	carry    []sim.Word
	faultyV  []sim.Word
	injD     *sim.InjectDelay64
	verdicts []bool

	// Scratch for the lane-parallel X-fill confirmation (ConfirmFills),
	// built on first use.
	fill *fillScratch
}

// New builds the simulator.
func New(net *sim.Net, alg *logic.Algebra) *Sim {
	return &Sim{
		net:      net,
		alg:      alg,
		fs:       fausim.New(net),
		vals8:    make([]logic.Value, len(net.C.Nodes)),
		next8:    make([]logic.Value, len(net.C.DFFs)),
		faultyS2: make([]sim.V3, len(net.C.DFFs)),
		carry:    make([]sim.Word, len(net.C.Nodes)),
		faultyV:  make([]sim.Word, len(net.C.DFFs)),
		injD:     net.NewInjectDelay64(),
	}
}

// SetFullEval selects between the event-driven confirmation kernels
// (default) and the full levelized reference walks, for this Sim and its
// embedded sequence simulator. The carry rail is re-zeroed so the
// event path's all-zero baseline holds even when toggling mid-life.
func (s *Sim) SetFullEval(on bool) {
	s.fullEval = on
	s.fs.SetFullEval(on)
	for i := range s.carry {
		s.carry[i] = 0
	}
}

// FastFrame holds the concrete two-frame situation of one applied test:
// the two PI vectors, the state during the initial frame and the state
// latched for the test frame (all fully specified), plus the propagation
// vectors that follow the fast frame.
type FastFrame struct {
	V1, V2 []sim.V3
	S0, S1 []sim.V3
	Prop   [][]sim.V3
}

// Values computes the fault-free two-frame value of every node.
func (s *Sim) Values(ff *FastFrame) []logic.Value {
	vals := s.net.LoadFrame8(ff.V1, ff.V2, ff.S0, ff.S1)
	s.net.Eval8(s.alg, vals, nil)
	return vals
}

// Detect runs the phase-2/phase-3 analysis for one applied test and
// returns the set of delay faults the test detects robustly. skip filters
// faults that need no further simulation (already classified); it may be
// nil. Candidates are confirmed by the word-parallel credit path
// (ConfirmBatch, 64 candidates per machine word); the verdicts — and
// with them the returned fault list — are bit-identical to the scalar
// reference path DetectScalar.
func (s *Sim) Detect(ff *FastFrame, skip func(faults.Delay) bool) []faults.Delay {
	return s.detect(ff, skip, true)
}

// DetectScalar is the scalar reference path: identical analysis, but
// every candidate is confirmed by an individual Confirm call. It exists
// as the oracle for the differential tests and benchmarks of the batched
// path.
func (s *Sim) DetectScalar(ff *FastFrame, skip func(faults.Delay) bool) []faults.Delay {
	return s.detect(ff, skip, false)
}

func (s *Sim) detect(ff *FastFrame, skip func(faults.Delay) bool, batched bool) []faults.Delay {
	vals := s.Values(ff)

	// Phase 2 (FAUSIM): which PPOs with a potential fault effect are
	// observable at a PO through the propagation frames?
	goodS2 := make([]sim.V3, len(s.net.C.DFFs))
	nonSteady := make([]bool, len(s.net.C.DFFs))
	ppos := s.net.C.PPOs()
	for i, ppo := range ppos {
		goodS2[i] = sim.V3(vals[ppo].Final())
		nonSteady[i] = !vals[ppo].Steady()
	}
	obsPPO := s.fs.ObservablePPOs(goodS2, nonSteady, ff.Prop)

	// Phase 3 (TDsim): critical path tracing from the POs and from the
	// observable PPOs, then exact confirmation per candidate. The skip
	// filter runs before confirmation in both paths, preserving the
	// candidate order, so scalar and batched confirmation see the same
	// list.
	cands := s.candidates(vals, obsPPO)
	if skip != nil {
		kept := cands[:0]
		for _, f := range cands {
			if !skip(f) {
				kept = append(kept, f)
			}
		}
		cands = kept
	}
	var detected []faults.Delay
	if batched {
		if cap(s.verdicts) < len(cands) {
			s.verdicts = make([]bool, len(cands))
		}
		out := s.verdicts[:len(cands)]
		s.ConfirmBatch(ff, vals, goodS2, cands, out)
		for i, f := range cands {
			if out[i] {
				detected = append(detected, f)
			}
		}
		return detected
	}
	for _, f := range cands {
		if s.Confirm(ff, vals, goodS2, f) {
			detected = append(detected, f)
		}
	}
	return detected
}

// ConfirmBatch runs Confirm's exact decision for every candidate, 64
// machines per word: one carry-rail evaluation of the fast frame per
// batch (see sim.EvalCarry64 for the encoding), the batched capture
// rule, and one 64-way dual-rail replay of the propagation frames for
// the machines observed only at a PPO, against a good replay computed
// once per call. out[i] receives the verdict for cands[i] and must hold
// at least len(cands) entries; every verdict is bit-identical to the
// corresponding scalar Confirm call (pinned by
// TestConfirmBatchMatchesScalar).
func (s *Sim) ConfirmBatch(ff *FastFrame, goodVals []logic.Value, goodS2 []sim.V3, cands []faults.Delay, out []bool) {
	var goods *fausim.Replay
	for base := 0; base < len(cands); base += 64 {
		chunk := cands[base:]
		if len(chunk) > 64 {
			chunk = chunk[:64]
		}
		s.injD.Reset()
		for b, f := range chunk {
			s.injD.Add(uint(b), f.Line, f.Type == faults.SlowToRise)
		}
		if s.fullEval {
			s.net.EvalCarry64(s.alg, goodVals, s.carry, s.injD)
		} else {
			// Event-driven: the carry rail is zero outside the union of
			// the 64 injection sites' fanout cones, so only those cones
			// are folded; s.carry keeps an all-zero baseline between
			// chunks (restored below).
			s.net.EvalCarry64Cone(s.alg, goodVals, s.carry, s.injD)
		}

		// Robust observation at a PO in the fast frame.
		var det sim.Word
		for _, po := range s.net.C.POs {
			det |= s.carry[po]
		}
		// Observation through the state register: machines whose effect
		// was captured at a PPO but missed every PO replay the
		// propagation frames with their corrupted captured state, exactly
		// Confirm's invalidation rule. Machines without an injection
		// never set a carry bit, so the tail bits of a short final chunk
		// stay silent.
		carried := s.net.NextStateCarry64(goodVals, s.carry, s.injD, s.faultyV)
		if !s.fullEval {
			// The carry rail is consumed; restore the all-zero baseline
			// before the replay below reuses the Net's overlay kernel.
			s.net.ResetCarry64(s.carry)
		}
		if need := carried &^ det; need != 0 && len(ff.Prop) > 0 {
			if goods == nil {
				goods = s.fs.GoodReplay(goodS2, ff.Prop)
			}
			det |= s.fs.PairDiffBatch(goods, s.faultyV, need, ff.Prop)
		}
		for b := range chunk {
			out[base+b] = det&(sim.Word(1)<<uint(b)) != 0
		}
	}
}

// Confirm checks one fault exactly against the applied test: injection in
// the fast frame, direct PO observation, and otherwise replay of the
// propagation frames with the corrupted captured state. By default the
// faulty machine is derived from the good-machine values the caller
// already holds — one copy plus a selective trace of the fault site's
// fanout cone — instead of a full re-evaluation of the frame.
func (s *Sim) Confirm(ff *FastFrame, goodVals []logic.Value, goodS2 []sim.V3, f faults.Delay) bool {
	inj := &sim.InjectDelay{Line: f.Line, SlowToRise: f.Type == faults.SlowToRise}
	vals := s.vals8
	if s.fullEval {
		s.net.LoadFrame8Into(vals, ff.V1, ff.V2, ff.S0, ff.S1)
		s.net.Eval8(s.alg, vals, inj)
	} else {
		copy(vals, goodVals)
		s.net.Eval8Cone(s.alg, vals, inj)
	}

	// Robust observation at a PO in the fast frame.
	for _, po := range s.net.C.POs {
		if vals[po].Carrying() {
			return true
		}
	}
	// Observation through the state register: build the faulty captured
	// state (a carrying PPO captures its initial value at the fast edge;
	// fault-free signals settle) and replay the propagation frames with
	// the complete joint corruption. The replay sees every side effect of
	// the fault on the captured state, so a corrupted required value
	// invalidates the detection naturally, and effects captured at
	// several PPOs at once are judged together (a single-bit
	// observability analysis would wrongly reject them).
	carried := false
	faultyS2 := s.faultyS2[:len(goodS2)]
	next := s.next8
	s.net.NextState8Into(next, vals, inj)
	for i, w := range next {
		if w.Carrying() {
			faultyS2[i] = sim.V3(w.Initial())
			carried = true
		} else {
			faultyS2[i] = sim.V3(w.Final())
		}
	}
	if !carried || len(ff.Prop) == 0 {
		return false
	}
	frame, po := s.fs.PairDiff(goodS2, faultyS2, ff.Prop)
	return frame >= 0 && po >= 0
}

// candidates walks robust critical paths backwards from every observation
// point and then supplements the result with every other transitioning
// line in the observable input cones. The walk finds the single-path
// robust detections cheaply (the classic CPT result); the supplement
// covers multiple-path sensitization through reconvergent fanout, which
// single-path tracing provably misses (a late stem can delay an output
// even when no individual branch path is robust on its own). Every
// candidate is confirmed exactly afterwards, so over-generation is sound.
func (s *Sim) candidates(vals []logic.Value, obsPPO []bool) []faults.Delay {
	c := s.net.C
	seen := make(map[faults.Delay]bool)
	var out []faults.Delay
	add := func(l netlist.Line, v logic.Value) {
		var t faults.DelayType
		if v.Final() == 1 {
			t = faults.SlowToRise
		} else {
			t = faults.SlowToFall
		}
		f := faults.Delay{Line: l, Type: t}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}

	// The observable input cones.
	cone := make([]bool, len(c.Nodes))
	var mark func(id netlist.NodeID)
	mark = func(id netlist.NodeID) {
		if cone[id] {
			return
		}
		cone[id] = true
		for _, in := range c.Nodes[id].Fanin {
			mark(in)
		}
	}
	for _, po := range c.POs {
		mark(po)
	}
	for i, ppo := range c.PPOs() {
		if obsPPO[i] {
			mark(ppo)
		}
	}

	// Pass 1: robust single-path critical path tracing.
	visited := make(map[netlist.NodeID]bool)
	var trace func(id netlist.NodeID)
	trace = func(id netlist.NodeID) {
		if visited[id] {
			return
		}
		visited[id] = true
		v := vals[id]
		if !v.HasTransition() {
			return
		}
		add(netlist.Stem(id), v)
		node := &c.Nodes[id]
		if !node.Type.IsGate() {
			return
		}
		ins := make([]logic.Value, len(node.Fanin))
		for pos, in := range node.Fanin {
			ins[pos] = vals[in]
		}
		for pos, in := range node.Fanin {
			if !ins[pos].HasTransition() {
				continue
			}
			// The input lies on a robust path exactly when promoting it
			// to the fault-carrying value keeps the output carrying: the
			// algebra's side-input conditions decide.
			probe := append([]logic.Value(nil), ins...)
			probe[pos] = probe[pos].WithCarry()
			if !s.alg.Eval(node.Type, probe).Carrying() {
				continue
			}
			if c.GateFanout(in) >= 2 {
				add(netlist.Line{Node: in, Branch: s.net.BranchOf(id, pos)}, ins[pos])
			}
			trace(in)
		}
	}
	for _, po := range c.POs {
		trace(po)
	}
	for i, ppo := range c.PPOs() {
		if obsPPO[i] {
			trace(ppo)
		}
	}

	// Pass 2: all remaining transitioning lines in the cones.
	for i := range c.Nodes {
		id := netlist.NodeID(i)
		if !cone[id] || !vals[id].HasTransition() {
			continue
		}
		add(netlist.Stem(id), vals[id])
		if c.GateFanout(id) >= 2 {
			node := &c.Nodes[id]
			for b, consumer := range node.Fanout {
				if c.Nodes[consumer].Type != netlist.DFF && cone[consumer] {
					add(netlist.Line{Node: id, Branch: b}, vals[id])
				}
			}
		}
	}
	return out
}
