package tdgen

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/faults"
	"fogbuster/internal/sim"
	"fogbuster/internal/testability"
)

// TestProbeScalarMatchesBatched is the differential property test of the
// decision probe: with probing armed, the batched rail scoring and the
// per-lane scalar oracle must drive byte-identical searches — same
// status stream, same solutions, same backtrack counts — because the
// sampled frames are shared and the per-lane verdicts are pinned equal.
// Resumed enumeration (several Next calls per fault) is covered too,
// since later solutions sit behind more backtracks, exactly where the
// probe is active.
func TestProbeScalarMatchesBatched(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		net := sim.NewNet(c)
		meas := testability.Compute(c)
		for fi, f := range faults.AllDelay(c) {
			seed := int64(fi)*1000003 + 7
			gB := New(net, f, meas, Options{Probe: true, ProbeSeed: seed})
			gS := New(net, f, meas, Options{Probe: true, ScalarProbe: true, ProbeSeed: seed})
			for round := 0; round < 3; round++ {
				solB, stB := gB.Next()
				solS, stS := gS.Next()
				if stB != stS {
					t.Fatalf("%s/%s round %d: batched %v, scalar %v",
						name, f.Name(c), round, stB, stS)
				}
				if gB.Backtracks() != gS.Backtracks() {
					t.Fatalf("%s/%s round %d: batched spent %d backtracks, scalar %d",
						name, f.Name(c), round, gB.Backtracks(), gS.Backtracks())
				}
				if stB != Found {
					break
				}
				if solB.ObservePO != solS.ObservePO || solB.ObservePPO != solS.ObservePPO {
					t.Fatalf("%s/%s round %d: observation differs: PO %d/%d, PPO %d/%d",
						name, f.Name(c), round, solB.ObservePO, solS.ObservePO,
						solB.ObservePPO, solS.ObservePPO)
				}
				for i := range solB.V1 {
					if solB.V1[i] != solS.V1[i] || solB.V2[i] != solS.V2[i] {
						t.Fatalf("%s/%s round %d: PI %d differs: (%v,%v) vs (%v,%v)",
							name, f.Name(c), round, i, solB.V1[i], solB.V2[i], solS.V1[i], solS.V2[i])
					}
				}
				for i := range solB.State0 {
					if solB.State0[i] != solS.State0[i] || solB.PPOFinal[i] != solS.PPOFinal[i] {
						t.Fatalf("%s/%s round %d: FF %d differs", name, f.Name(c), round, i)
					}
				}
			}
		}
	}
}

// TestProbeOffIsStatic pins that an unarmed generator never probes: the
// search with Probe unset must match a probing generator whose scores
// never fire (nBack below the threshold is the common case, but the
// contract here is simpler — the zero Options value keeps the exact
// pre-probe search).
func TestProbeOffIsStatic(t *testing.T) {
	c := bench.NewC17()
	net := sim.NewNet(c)
	meas := testability.Compute(c)
	for _, f := range faults.AllDelay(c) {
		g := New(net, f, meas, Options{})
		if g.probe {
			t.Fatal("zero Options armed the probe")
		}
		if _, st := g.Next(); st != Found {
			t.Fatalf("%s: c17 fault not found", f.Name(c))
		}
		if g.probeEvents != 0 {
			t.Fatalf("%s: unarmed generator recorded %d probe events", f.Name(c), g.probeEvents)
		}
	}
}
