package tdgen

import (
	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
	"fogbuster/internal/testability"
)

// Next returns the next distinct robust local test for the fault, or the
// terminal status. After Found, calling Next again resumes the search
// behind the last solution; Untestable then means every alternative has
// been enumerated. The backtrack budget spans all Next calls of one
// generator, matching the paper's per-fault limit.
func (g *Generator) Next() (*Solution, Status) {
	if g.dead {
		return nil, Untestable
	}
	if g.nBack >= g.maxBack {
		g.dead = true
		return nil, Aborted
	}
	if g.lastGood {
		// Resume past the previous solution.
		g.lastGood = false
		if !g.backtrack() {
			g.dead = true
			return nil, Untestable
		}
	}
	g.started = true
	for {
		ok := g.propagate()
		if ok {
			if po, ppo := g.observation(); po >= 0 || ppo >= 0 {
				g.lastGood = true
				return g.extract(po, ppo), Found
			}
			node, options := g.decide()
			if node == netlist.None {
				// Everything relevant assigned without success.
				ok = false
			} else {
				g.push(node, g.orderByProbe(node, options))
				continue
			}
		}
		if !ok {
			if g.nBack >= g.maxBack {
				g.dead = true
				return nil, Aborted
			}
			if !g.backtrack() {
				g.dead = true
				return nil, Untestable
			}
		}
	}
}

// Backtracks returns the number of backtracks spent so far.
func (g *Generator) Backtracks() int { return g.nBack }

func (g *Generator) push(node netlist.NodeID, options []logic.Set) {
	g.stack = append(g.stack, decision{node: node, options: options})
	g.assign[node] = options[0]
}

// backtrack advances the deepest decision with untried values, undoing
// deeper ones, and reports whether the search can continue.
func (g *Generator) backtrack() bool {
	for len(g.stack) > 0 {
		top := &g.stack[len(g.stack)-1]
		top.next++
		if top.next < len(top.options) {
			g.nBack++
			g.assign[top.node] = top.options[top.next]
			return true
		}
		g.assign[top.node] = logic.PIDomain
		g.stack = g.stack[:len(g.stack)-1]
	}
	return false
}

// decide picks the next input to assign and its option order, guided by
// the current objective: activate the fault site first, then push the
// effect through the cheapest D-frontier gate toward an observable output.
// The value order comes from an eight-valued backtrace that carries the
// desired value set from the objective down to the input through the
// algebra's exact gate pruning.
func (g *Generator) decide() (netlist.NodeID, []logic.Set) {
	objective, want := g.objectiveNode()
	if objective != netlist.None {
		if node, order := g.backtraceWant(objective, want); node != netlist.None {
			return node, order
		}
		if node := g.pickConeInput(objective); node != netlist.None {
			return node, g.defaultOrder(node)
		}
	}
	// Fall back to any unassigned input so the search stays complete.
	for _, in := range g.inputs {
		if g.assign[in] == logic.PIDomain {
			return in, g.defaultOrder(in)
		}
	}
	return netlist.None, nil
}

// defaultOrder is the option order when no backtrace hint is available.
func (g *Generator) defaultOrder(node netlist.NodeID) []logic.Set {
	if g.net.C.Nodes[node].Type == netlist.DFF {
		if g.meas.CC0[node] <= g.meas.CC1[node] {
			return ppiInit0First
		}
		return ppiInit1First
	}
	if g.meas.CC1[node] <= g.meas.CC0[node] {
		return piOneFirst
	}
	return piZeroFirst
}

// backtraceWant descends from (node, want) through unpinned logic to an
// unassigned input, transforming the wanted value set at each gate with
// the exact pruning tables, and returns the input with an option order
// that tries want-compatible values first.
func (g *Generator) backtraceWant(node netlist.NodeID, want logic.Set) (netlist.NodeID, []logic.Set) {
	c := g.net.C
	for hop := 0; hop < len(c.Nodes)+2; hop++ {
		want &= g.sets[node]
		if want == logic.EmptySet {
			return netlist.None, nil
		}
		// Undo the fault-site conversion before interpreting the node.
		if g.fault.Line.IsStem() && g.fault.Line.Node == node {
			want = g.invSiteMap(want)
			if want == logic.EmptySet {
				return netlist.None, nil
			}
		}
		n := &c.Nodes[node]
		switch n.Type {
		case netlist.Input:
			if g.assign[node] != logic.PIDomain {
				return netlist.None, nil
			}
			return node, orderForWant(want, false)
		case netlist.DFF:
			if g.assign[node] != logic.PIDomain {
				return netlist.None, nil
			}
			return node, orderForWant(want, true)
		}
		// Transform the want through the gate: prune the current input
		// sets against it, then descend into the most promising fanin.
		ins := make([]logic.Set, len(n.Fanin))
		for pos := range n.Fanin {
			ins[pos] = g.readIn(node, pos)
		}
		if _, _, ok := g.alg.Prune(n.Type, ins, want); !ok {
			return netlist.None, nil
		}
		bestPos, bestCost := -1, testability.Inf*4
		for pos := range n.Fanin {
			cur := g.readIn(node, pos)
			if _, pinned := cur.Singleton(); pinned {
				continue
			}
			cost := g.meas.CC0[n.Fanin[pos]] + g.meas.CC1[n.Fanin[pos]]
			// Prefer fanins the objective actually constrains.
			if ins[pos] == cur {
				cost += testability.Inf / 2
			}
			if cost < bestCost {
				bestPos, bestCost = pos, cost
			}
		}
		if bestPos < 0 {
			return netlist.None, nil
		}
		nextWant := ins[bestPos]
		l := g.fault.Line
		if !l.IsStem() && n.Fanin[bestPos] == l.Node && g.net.OnLine(l, node, bestPos) {
			nextWant = g.invSiteMap(nextWant)
			if nextWant == logic.EmptySet {
				return netlist.None, nil
			}
		}
		node = n.Fanin[bestPos]
		want = nextWant
	}
	return netlist.None, nil
}

// invSiteMap undoes the fault-site conversion for a wanted set: asking for
// the carrying transition at the site means asking the driver for the
// clean transition.
func (g *Generator) invSiteMap(want logic.Set) logic.Set {
	if g.fault.Type == faults.SlowToRise {
		if want.Has(logic.RiseC) {
			want = want.Del(logic.RiseC).Add(logic.Rise)
		} else {
			want = want.Del(logic.Rise)
		}
		return want
	}
	if want.Has(logic.FallC) {
		want = want.Del(logic.FallC).Add(logic.Fall)
	} else {
		want = want.Del(logic.Fall)
	}
	return want
}

// orderForWant builds the option order for an input decision: options
// compatible with the wanted set first, cheapest-compatible leading.
func orderForWant(want logic.Set, isPPI bool) []logic.Set {
	if isPPI {
		var wantInit [2]bool
		for _, v := range want.Values() {
			wantInit[v.Initial()] = true
		}
		switch {
		case wantInit[0] && !wantInit[1]:
			return ppiInit0First
		case wantInit[1] && !wantInit[0]:
			return ppiInit1First
		default:
			return ppiInit0First
		}
	}
	var first, rest []logic.Set
	for _, v := range []logic.Value{logic.One, logic.Zero, logic.Rise, logic.Fall} {
		if want.Has(v) {
			first = append(first, logic.S(v))
		} else {
			rest = append(rest, logic.S(v))
		}
	}
	return append(first, rest...)
}

// objectiveNode returns the node the next decision should influence and
// the value set wanted there.
func (g *Generator) objectiveNode() (netlist.NodeID, logic.Set) {
	// Activation: the site's presented set must be pinned to the carrying
	// transition. For a stem fault the stored set is already converted;
	// for a branch fault the stem must be pinned to the clean transition.
	site := g.fault.Line.Node
	if v, ok := g.siteMap(g.sets[site]).Singleton(); !ok || !v.Carrying() {
		if g.fault.Line.IsStem() {
			if g.fault.Type == faults.SlowToRise {
				return site, logic.S(logic.RiseC)
			}
			return site, logic.S(logic.FallC)
		}
		if g.fault.Type == faults.SlowToRise {
			return site, logic.S(logic.Rise)
		}
		return site, logic.S(logic.Fall)
	}
	// D-frontier: a gate reading a pinned fault effect whose own output is
	// not pinned yet. Its side-input cones are the tightest useful
	// decision targets. Among frontier gates prefer the cheapest path to
	// an output.
	best, bestCost := netlist.None, testability.Inf+1
	c := g.net.C
	for _, id := range c.GateOrder() {
		if _, ok := g.sets[id].Singleton(); ok {
			continue
		}
		if g.sets[id]&logic.CarrySet == 0 {
			continue
		}
		node := &c.Nodes[id]
		for pos := range node.Fanin {
			if v, ok := g.readIn(id, pos).Singleton(); ok && v.Carrying() {
				if cost := g.meas.CO[id]; cost < bestCost {
					best, bestCost = id, cost
				}
				break
			}
		}
	}
	if best != netlist.None {
		return best, g.sets[best] & logic.CarrySet
	}
	// No pinned frontier: aim at the carrying-capable observable with the
	// cheapest observability.
	for _, po := range g.obsPO {
		if g.sets[po]&logic.CarrySet != 0 {
			if _, ok := g.sets[po].Singleton(); !ok {
				if cost := g.meas.CO[po]; cost < bestCost {
					best, bestCost = po, cost
				}
			}
		}
	}
	if best == netlist.None {
		for _, ppo := range g.ppoOfFF {
			if g.sets[ppo]&logic.CarrySet != 0 {
				if _, ok := g.sets[ppo].Singleton(); !ok {
					if cost := g.meas.CO[ppo]; cost < bestCost {
						best, bestCost = ppo, cost
					}
				}
			}
		}
	}
	if best == netlist.None {
		return netlist.None, logic.EmptySet
	}
	return best, g.sets[best] & logic.CarrySet
}

// pickConeInput returns the unassigned input in the transitive fanin cone
// of node (crossing the state register once) with the lowest SCOAP cost.
func (g *Generator) pickConeInput(node netlist.NodeID) netlist.NodeID {
	c := g.net.C
	seen := make(map[netlist.NodeID]bool)
	best, bestCost := netlist.None, testability.Inf+1
	var walk func(id netlist.NodeID, depth int)
	walk = func(id netlist.NodeID, depth int) {
		if seen[id] {
			return
		}
		seen[id] = true
		n := &c.Nodes[id]
		switch n.Type {
		case netlist.Input:
			if g.assign[id] == logic.PIDomain {
				if cost := g.meas.CC0[id] + g.meas.CC1[id]; cost < bestCost {
					best, bestCost = id, cost
				}
			}
		case netlist.DFF:
			if g.assign[id] == logic.PIDomain {
				// PPIs are costlier decisions: they must be synchronized.
				if cost := g.meas.CC0[id] + g.meas.CC1[id] + 2*testability.Inf/4; cost < bestCost {
					best, bestCost = id, cost
				}
			}
			// The PPI's final value is coupled to the PPO: influencing the
			// PPO influences the PPI. Cross the register once.
			if depth == 0 {
				walk(n.Fanin[0], depth+1)
			}
		default:
			for _, in := range n.Fanin {
				walk(in, depth)
			}
		}
	}
	walk(node, 0)
	return best
}

// extract builds the Solution from the current sets.
func (g *Generator) extract(po, ppo int) *Solution {
	c := g.net.C
	sol := &Solution{
		V1:         make([]sim.V3, len(c.PIs)),
		V2:         make([]sim.V3, len(c.PIs)),
		State0:     make([]sim.V3, len(c.DFFs)),
		ObservePO:  po,
		ObservePPO: ppo,
		PPOFinal:   make([]sim.V5, len(c.DFFs)),
		Sets:       append([]logic.Set(nil), g.sets...),
	}
	for i, pi := range c.PIs {
		sol.V1[i], sol.V2[i] = framePair(g.sets[pi])
	}
	for i, ff := range c.DFFs {
		v1, _ := framePair(g.sets[ff])
		sol.State0[i] = v1
		sol.PPOFinal[i] = g.ppoHandoff(g.sets[g.ppoOfFF[i]])
	}
	return sol
}

// framePair maps a value set to per-frame binary values; X when the frame
// value is not uniform across the set.
func framePair(s logic.Set) (sim.V3, sim.V3) {
	v1, v2 := sim.X, sim.X
	var init, fin [2]bool
	for _, v := range s.Values() {
		init[v.Initial()] = true
		fin[v.Final()] = true
	}
	if init[0] != init[1] {
		if init[1] {
			v1 = sim.Hi
		} else {
			v1 = sim.Lo
		}
	}
	if fin[0] != fin[1] {
		if fin[1] {
			v2 = sim.Hi
		} else {
			v2 = sim.Lo
		}
	}
	return v1, v2
}

// ppoHandoff maps a PPO value set to the state knowledge passed to the
// sequential engine. Under the robust model only a steady, hazard-free
// constant is specifiable (the paper's restriction); anything else is a
// fixed-but-unknown value, except the fault effect itself, which becomes
// D or D'. The non-robust relaxation assumes fault-free signals settle
// within the fast period, so any set with a uniform final value is known.
func (g *Generator) ppoHandoff(s logic.Set) sim.V5 {
	if v, ok := s.Singleton(); ok {
		switch v {
		case logic.Zero:
			return sim.Z5
		case logic.One:
			return sim.O5
		case logic.RiseC:
			return sim.D5 // good 1, faulty still 0 at the fast edge
		case logic.FallC:
			return sim.B5
		}
		if !g.alg.IsRobust() && !v.Carrying() {
			if v.Final() == 1 {
				return sim.O5
			}
			return sim.Z5
		}
		return sim.X5
	}
	if !g.alg.IsRobust() && s&logic.CarrySet == 0 {
		var fin [2]bool
		for _, v := range s.Values() {
			fin[v.Final()] = true
		}
		if fin[1] != fin[0] {
			if fin[1] {
				return sim.O5
			}
			return sim.Z5
		}
	}
	return sim.X5
}
