// Package tdgen implements TDgen, the paper's local test pattern generator
// for robust gate delay faults (Section 3). It works on the two-frame
// model of the combinational block: the initial (slow clock) frame and the
// fast test frame are handled simultaneously by the eight-valued algebra
// of package logic.
//
// The search is a PODEM-style branch-and-bound that is complete: decisions
// are made only at primary and pseudo primary inputs, whose domain is
// {0,1,R,F}; implications are exact forward set images through the
// circuit, coupled across the state register by the paper's "truth table
// for the state register" (the PPI's final value equals the PPO's
// initial-frame value). A fault is proven locally untestable when the
// decision tree is exhausted, and aborted when the backtrack budget (100
// in the paper) runs out.
//
// The generator is resumable: after a successful test, Next may be called
// again to enumerate the next distinct local test. The combined engine
// uses this for the paper's "backtracking between these steps" when
// sequential propagation or initialization fails.
package tdgen

import (
	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
	"fogbuster/internal/testability"
)

// Status is the outcome of a Next call.
type Status uint8

const (
	// Found means a robust local test was generated.
	Found Status = iota
	// Untestable means the search space is exhausted: no (further) robust
	// local test exists for the fault.
	Untestable
	// Aborted means the backtrack budget was exceeded.
	Aborted
)

// String returns the paper's vocabulary for the status.
func (s Status) String() string {
	switch s {
	case Found:
		return "found"
	case Untestable:
		return "untestable"
	default:
		return "aborted"
	}
}

// Options configures a Generator.
type Options struct {
	// Algebra selects the fault model; nil means logic.Robust.
	Algebra *logic.Algebra
	// MaxBacktracks is the backtrack budget; 0 means the paper's 100.
	MaxBacktracks int
	// Probe enables decision probing: once the search has spent a few
	// backtracks, each decision's option order is re-ranked by sampled
	// lane-parallel simulation (see orderByProbe). ProbeSeed seeds the
	// deterministic sampling; ScalarProbe switches the scoring to the
	// per-lane scalar reference oracle, which computes bit-identical
	// scores one frame at a time.
	Probe       bool
	ScalarProbe bool
	ProbeSeed   int64
}

// Solution is one robust local test: the two PI vectors of the time-frame
// pair, the required state during the initial frame, and the observation
// point of the fault effect.
type Solution struct {
	// V1 and V2 are the PI vectors of the initial and test frame; X
	// entries are don't-cares.
	V1, V2 []sim.V3
	// State0 is the state required during the initial frame (the init
	// state the synchronization phase must reach); X entries are
	// don't-cares.
	State0 []sim.V3
	// ObservePO is the PO index where the effect is observable, or -1.
	ObservePO int
	// ObservePPO is the FF index whose D input captures the effect at the
	// fast clock edge, or -1. Exactly one of the two observation fields
	// is set; a PO observation is preferred.
	ObservePPO int
	// PPOFinal is the state knowledge handed to the sequential engine for
	// the propagation phase, one value per FF: a known bit for PPOs the
	// robust model lets TDgen specify, D/D' at the faulty PPO, and X for
	// the paper's unjustifiable don't-cares (fixed but unknown values).
	PPOFinal []sim.V5
	// Sets are the final value sets per node, for diagnostics and tests.
	Sets []logic.Set
}

// Generator enumerates robust local tests for one delay fault.
type Generator struct {
	net   *sim.Net
	alg   *logic.Algebra
	fault faults.Delay
	meas  *testability.Measures

	inputs   []netlist.NodeID // PIs then FFs: the decision variables
	assign   []logic.Set      // per node: current input domain (inputs only)
	sets     []logic.Set      // per node: value sets from the last propagate
	inCone   []bool           // node may carry the fault effect
	siteDrv  bool             // fault site is a stem on a PI/PPI (no driving gate)
	obsPO    []netlist.NodeID // PO nodes
	ppoOfFF  []netlist.NodeID // D-driver node per FF
	maxBack  int
	nBack    int
	stack    []decision
	started  bool
	lastGood bool // last Next returned Found; resume must first backtrack
	dead     bool // search exhausted or aborted

	probe       bool
	scalarProbe bool
	probeSeed   int64
	probeEvents int
	ps          *probeScratch
}

// decision is one branch point of the search. For a primary input the
// options are the four singleton values {0},{1},{R},{F}: both frame values
// are freely applied. For a pseudo primary input only the initial-frame
// bit is controllable (it will be synchronized); the options are the two
// init-halves of the domain, {0,R} and {1,F}, and the final value is tied
// to the PPO by the state-register coupling.
type decision struct {
	node    netlist.NodeID
	options []logic.Set
	next    int
}

// Decision option orders. PI orders are value preferences; PPI orders pick
// the initial-frame bit.
var (
	piRiseFirst = []logic.Set{logic.S(logic.Rise), logic.S(logic.Fall), logic.S(logic.One), logic.S(logic.Zero)}
	piFallFirst = []logic.Set{logic.S(logic.Fall), logic.S(logic.Rise), logic.S(logic.Zero), logic.S(logic.One)}
	piOneFirst  = []logic.Set{logic.S(logic.One), logic.S(logic.Zero), logic.S(logic.Rise), logic.S(logic.Fall)}
	piZeroFirst = []logic.Set{logic.S(logic.Zero), logic.S(logic.One), logic.S(logic.Fall), logic.S(logic.Rise)}

	ppiInit0First = []logic.Set{logic.S(logic.Zero, logic.Rise), logic.S(logic.One, logic.Fall)}
	ppiInit1First = []logic.Set{logic.S(logic.One, logic.Fall), logic.S(logic.Zero, logic.Rise)}
)

// New prepares a generator for the fault. The testability measures may be
// shared across faults of the same circuit; nil computes them on demand.
func New(net *sim.Net, f faults.Delay, meas *testability.Measures, opts Options) *Generator {
	c := net.C
	alg := opts.Algebra
	if alg == nil {
		alg = logic.Robust
	}
	if meas == nil {
		meas = testability.Compute(c)
	}
	maxBack := opts.MaxBacktracks
	if maxBack == 0 {
		maxBack = 100
	}
	g := &Generator{
		net:         net,
		alg:         alg,
		fault:       f,
		meas:        meas,
		assign:      make([]logic.Set, len(c.Nodes)),
		sets:        make([]logic.Set, len(c.Nodes)),
		maxBack:     maxBack,
		probe:       opts.Probe,
		scalarProbe: opts.ScalarProbe,
		probeSeed:   opts.ProbeSeed,
	}
	for _, pi := range c.PIs {
		g.inputs = append(g.inputs, pi)
		g.assign[pi] = logic.PIDomain
	}
	for _, ff := range c.DFFs {
		g.inputs = append(g.inputs, ff)
		g.assign[ff] = logic.PIDomain
	}
	g.obsPO = append(g.obsPO, c.POs...)
	g.ppoOfFF = c.PPOs()
	st := c.Nodes[f.Line.Node].Type
	g.siteDrv = f.Line.IsStem() && (st == netlist.Input || st == netlist.DFF)
	g.computeCone()
	return g
}

// computeCone marks every node whose value may carry the fault effect:
// the forward closure of the site connection.
func (g *Generator) computeCone() {
	c := g.net.C
	g.inCone = make([]bool, len(c.Nodes))
	var mark func(id netlist.NodeID)
	mark = func(id netlist.NodeID) {
		if g.inCone[id] {
			return
		}
		g.inCone[id] = true
		for _, f := range c.Nodes[id].Fanout {
			if c.Nodes[f].Type != netlist.DFF {
				mark(f)
			}
		}
	}
	l := g.fault.Line
	if l.IsStem() {
		mark(l.Node)
		return
	}
	// Branch fault: only the branch's consumer cone carries; the stem
	// itself stays plain.
	consumer := c.Nodes[l.Node].Fanout[l.Branch]
	if c.Nodes[consumer].Type != netlist.DFF {
		mark(consumer)
	}
}

// siteMap converts the clean transition into the fault-carrying value, the
// paper's rule applied only at the fault location.
func (g *Generator) siteMap(s logic.Set) logic.Set {
	if g.fault.Type == faults.SlowToRise {
		if s.Has(logic.Rise) {
			return s.Del(logic.Rise).Add(logic.RiseC)
		}
		return s
	}
	if s.Has(logic.Fall) {
		return s.Del(logic.Fall).Add(logic.FallC)
	}
	return s
}

// readIn returns the value set presented to input position pos of node id,
// applying the site conversion on the faulty branch.
func (g *Generator) readIn(id netlist.NodeID, pos int) logic.Set {
	in := g.net.C.Nodes[id].Fanin[pos]
	s := g.sets[in]
	l := g.fault.Line
	if !l.IsStem() && in == l.Node && g.net.OnLine(l, id, pos) {
		s = g.siteMap(s)
	}
	return s
}

// propagate recomputes all value sets from the current input assignment to
// a fixpoint and reports consistency: false when some set is empty or the
// fault effect can no longer reach any observable output.
func (g *Generator) propagate() bool {
	c := g.net.C
	for i := range c.Nodes {
		switch c.Nodes[i].Type {
		case netlist.Input, netlist.DFF:
			s := g.assign[i]
			if g.siteDrv && g.fault.Line.Node == netlist.NodeID(i) {
				s = g.siteMap(s)
			}
			g.sets[i] = s
		default:
			if g.inCone[i] {
				g.sets[i] = logic.FullSet
			} else {
				g.sets[i] = logic.PlainSet
			}
		}
	}
	var ins [16]logic.Set
	for {
		changed := false
		for _, id := range c.GateOrder() {
			node := &c.Nodes[id]
			buf := ins[:0]
			if len(node.Fanin) > len(ins) {
				buf = make([]logic.Set, 0, len(node.Fanin))
			}
			for pos := range node.Fanin {
				buf = append(buf, g.readIn(id, pos))
			}
			img := g.alg.EvalSet(node.Type, buf)
			if g.fault.Line.IsStem() && g.fault.Line.Node == id {
				img = g.siteMap(img)
			}
			img &= g.sets[id]
			if img != g.sets[id] {
				g.sets[id] = img
				changed = true
			}
			if img == logic.EmptySet {
				return false
			}
		}
		// State register coupling: the PPI's final value is the PPO's
		// initial-frame value. The narrowing is strictly one-directional
		// (PPO image -> PPI): the latched value is whatever the circuit
		// produces in the initial frame, so the PPO set must remain a pure
		// forward image. Pinning a PPI's final value therefore requires
		// the search to justify the PPO's initial-frame value through
		// ordinary input decisions; anything else would assume state the
		// synchronizable machine cannot deliver.
		for i, ff := range c.DFFs {
			ppi, ppo := ff, g.ppoOfFF[i]
			var inits [2]bool
			for _, v := range g.sets[ppo].Values() {
				inits[v.Initial()] = true
			}
			newPPI := logic.EmptySet
			for _, v := range g.sets[ppi].Values() {
				if inits[v.Final()] {
					newPPI = newPPI.Add(v)
				}
			}
			if newPPI != g.sets[ppi] {
				changed = true
				g.sets[ppi] = newPPI
				if newPPI == logic.EmptySet {
					return false
				}
			}
		}
		if !changed {
			break
		}
	}
	// X-path check: the effect must still be able to reach a PO or PPO.
	for _, po := range g.obsPO {
		if g.sets[po]&logic.CarrySet != 0 {
			return true
		}
	}
	for _, ppo := range g.ppoOfFF {
		if g.sets[ppo]&logic.CarrySet != 0 {
			return true
		}
	}
	return false
}

// observation returns the achieved observation point, preferring POs:
// (poIndex, -1), (-1, ffIndex), or (-1, -1) when no output is guaranteed
// to carry the effect yet.
func (g *Generator) observation() (int, int) {
	for i, po := range g.obsPO {
		if v, ok := g.sets[po].Singleton(); ok && v.Carrying() {
			return i, -1
		}
	}
	for i, ppo := range g.ppoOfFF {
		if v, ok := g.sets[ppo].Singleton(); ok && v.Carrying() {
			return -1, i
		}
	}
	return -1, -1
}
