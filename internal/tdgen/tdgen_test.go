package tdgen

import (
	"math/rand"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
	"fogbuster/internal/testability"
)

// verifySolution independently checks a local test by concrete two-frame
// simulation: for several random completions of the don't-cares, the
// promised observation point must carry the fault effect. This is the
// robustness guarantee of the eight-valued algebra made executable.
func verifySolution(t *testing.T, net *sim.Net, f faults.Delay, sol *Solution, alg *logic.Algebra) {
	t.Helper()
	c := net.C
	rng := rand.New(rand.NewSource(int64(f.Line.Node)*31 + int64(f.Type)))
	for trial := 0; trial < 8; trial++ {
		v1 := sim.XFill(sol.V1, rng)
		v2 := sim.XFill(sol.V2, rng)
		s0 := sim.XFill(sol.State0, rng)

		// Physics: the state of the test frame is latched from frame 1.
		f1 := net.LoadFrame(v1, s0)
		net.Eval3(f1, nil)
		s1 := net.NextState3(f1, nil)
		for i, v := range s1 {
			if v == sim.X {
				s1[i] = sim.V3(rng.Intn(2)) // unknowable bit; any value
			}
		}

		vals := net.LoadFrame8(v1, v2, s0, s1)
		inj := &sim.InjectDelay{Line: f.Line, SlowToRise: f.Type == faults.SlowToRise}
		net.Eval8(alg, vals, inj)

		if sol.ObservePO >= 0 {
			got := vals[c.POs[sol.ObservePO]]
			if !got.Carrying() {
				t.Fatalf("%s trial %d: PO %d has %v, effect lost", f.Name(c), trial, sol.ObservePO, got)
			}
		} else {
			next := net.NextState8(vals, inj)
			if !next[sol.ObservePPO].Carrying() {
				t.Fatalf("%s trial %d: PPO %d has %v, effect lost", f.Name(c), trial, sol.ObservePPO, next[sol.ObservePPO])
			}
		}
	}
}

func generateAll(t *testing.T, c *netlist.Circuit, alg *logic.Algebra) (found, untestable, aborted int) {
	t.Helper()
	net := sim.NewNet(c)
	meas := testability.Compute(c)
	for _, f := range faults.AllDelay(c) {
		g := New(net, f, meas, Options{Algebra: alg})
		sol, st := g.Next()
		switch st {
		case Found:
			verifySolution(t, net, f, sol, alg)
			found++
		case Untestable:
			untestable++
		case Aborted:
			aborted++
		}
	}
	return
}

// TestC17AllFaultsLocallyTestable: c17 is combinational NAND logic; every
// one of its 34 delay faults has a robust test, observed at a PO.
func TestC17AllFaultsLocallyTestable(t *testing.T) {
	found, untestable, aborted := generateAll(t, bench.NewC17(), logic.Robust)
	if found != 34 || untestable != 0 || aborted != 0 {
		t.Fatalf("c17: found=%d untestable=%d aborted=%d, want 34/0/0", found, untestable, aborted)
	}
}

// TestS27LocalGeneration: local (two-frame) testability of s27. Every
// solution must verify by concrete simulation; local-untestable faults
// are allowed (robust redundancy), aborts are not at these sizes.
func TestS27LocalGeneration(t *testing.T) {
	found, untestable, aborted := generateAll(t, bench.NewS27(), logic.Robust)
	if aborted != 0 {
		t.Fatalf("s27: %d aborts with default budget", aborted)
	}
	if found < 30 {
		t.Fatalf("s27: only %d/50 locally testable; expected most (paper tests 39 end-to-end)", found)
	}
	t.Logf("s27 local: found=%d untestable=%d", found, untestable)
}

// TestRedundantFaultUntestable: y = AND(a, NOT(a)) is constant 0, so its
// output can never rise; the StR fault must be proven untestable, not
// aborted.
func TestRedundantFaultUntestable(t *testing.T) {
	b := netlist.NewBuilder("redundant")
	b.Input("a")
	b.Gate("na", netlist.Not, "a")
	b.Gate("y", netlist.And, "a", "na")
	b.Output("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net := sim.NewNet(c)
	y := c.LookupID("y")
	g := New(net, faults.Delay{Line: netlist.Stem(y), Type: faults.SlowToRise}, nil, Options{})
	if _, st := g.Next(); st != Untestable {
		t.Fatalf("status = %v, want untestable", st)
	}
}

// TestHazardBlocksRobustTest: through y = AND(a, b) with both inputs fed
// from the same PI through reconvergent paths of opposite polarity, a
// transition cannot pass robustly; with an extra steady side input it can.
func TestHazardBlocksRobustTest(t *testing.T) {
	// y = AND(x, c): x = OR(a, b). StR at x's stem is testable with c=1.
	b := netlist.NewBuilder("sides")
	b.Input("a")
	b.Input("b")
	b.Input("c")
	b.Gate("x", netlist.Or, "a", "b")
	b.Gate("y", netlist.And, "x", "c")
	b.Output("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net := sim.NewNet(c)
	x := c.LookupID("x")
	g := New(net, faults.Delay{Line: netlist.Stem(x), Type: faults.SlowToRise}, nil, Options{})
	sol, st := g.Next()
	if st != Found {
		t.Fatalf("status = %v, want found", st)
	}
	verifySolution(t, net, faults.Delay{Line: netlist.Stem(x), Type: faults.SlowToRise}, sol, logic.Robust)
	// The robust side-input rule: c must end at 1.
	if sol.V2[2] != sim.Hi {
		t.Errorf("side input final value = %v, want 1", sol.V2[2])
	}
}

// TestBranchFaultDistinctFromStem: on s27's G8 (fanout 2) the branch
// faults constrain only one consumer, so at least as many branch tests
// exist as stem tests.
func TestBranchFaultDistinctFromStem(t *testing.T) {
	c := bench.NewS27()
	net := sim.NewNet(c)
	g8 := c.LookupID("G8")
	stem := faults.Delay{Line: netlist.Stem(g8), Type: faults.SlowToRise}
	gs := New(net, stem, nil, Options{})
	solStem, stStem := gs.Next()
	for b := 0; b < 2; b++ {
		br := faults.Delay{Line: netlist.Line{Node: g8, Branch: b}, Type: faults.SlowToRise}
		gb := New(net, br, nil, Options{})
		sol, st := gb.Next()
		if st == Found {
			verifySolution(t, net, br, sol, logic.Robust)
		}
		if stStem == Found && st == Untestable {
			// A branch fault is weaker than the stem fault: any stem test
			// propagating through this branch would cover it, but it is
			// possible that propagation only works through the other
			// branch. Just document the outcome.
			t.Logf("branch %d untestable while stem testable", b)
		}
	}
	if stStem == Found {
		verifySolution(t, net, stem, solStem, logic.Robust)
	}
}

// TestResume: after Found, Next must yield a different assignment or
// terminate; enumeration must not repeat the same solution forever.
func TestResume(t *testing.T) {
	c := bench.NewC17()
	net := sim.NewNet(c)
	f := faults.Delay{Line: netlist.Stem(c.LookupID("N10")), Type: faults.SlowToRise}
	g := New(net, f, nil, Options{MaxBacktracks: 10000})
	type key struct{ v1, v2 string }
	seen := make(map[key]int)
	n := 0
	for ; n < 200; n++ {
		sol, st := g.Next()
		if st != Found {
			break
		}
		k := key{fmtVec(sol.V1), fmtVec(sol.V2)}
		seen[k]++
		if seen[k] > 1 {
			t.Fatalf("solution repeated: %+v", k)
		}
	}
	if n == 0 {
		t.Fatal("no solutions at all")
	}
	if n >= 200 {
		t.Fatal("enumeration did not terminate")
	}
	t.Logf("enumerated %d distinct local tests", n)
}

func fmtVec(v []sim.V3) string {
	s := make([]byte, len(v))
	for i, b := range v {
		s[i] = "01X"[b]
	}
	return string(s)
}

// TestAbort: with a budget of 1 backtrack, hard faults on a larger
// circuit must abort rather than spin.
func TestAbort(t *testing.T) {
	p := *bench.ProfileByName("s298")
	c := p.Circuit()
	net := sim.NewNet(c)
	meas := testability.Compute(c)
	aborted := 0
	for i, f := range faults.AllDelay(c) {
		if i >= 60 {
			break
		}
		g := New(net, f, meas, Options{MaxBacktracks: 1})
		if _, st := g.Next(); st == Aborted {
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("no aborts with a 1-backtrack budget; suspicious")
	}
}

// TestNonRobustFindsMoreLocalTests: the relaxed algebra can only help.
func TestNonRobustFindsMoreLocalTests(t *testing.T) {
	c := bench.NewS27()
	foundR, _, _ := generateAll(t, c, logic.Robust)
	foundN, _, _ := generateAll(t, c, logic.NonRobust)
	if foundN < foundR {
		t.Fatalf("non-robust found %d < robust %d", foundN, foundR)
	}
}

// TestPPOHandoffRestriction: the paper's rule that only steady hazard-free
// PPO values can be specified to SEMILET under the robust model.
func TestPPOHandoffRestriction(t *testing.T) {
	c := bench.NewS27()
	net := sim.NewNet(c)
	for _, f := range faults.AllDelay(c) {
		g := New(net, f, nil, Options{})
		sol, st := g.Next()
		if st != Found {
			continue
		}
		ppos := c.PPOs()
		for i, v := range sol.PPOFinal {
			set := sol.Sets[ppos[i]]
			switch v {
			case sim.Z5:
				if set != logic.S(logic.Zero) {
					t.Fatalf("%s: PPO %d handed 0 but set %v", f.Name(c), i, set)
				}
			case sim.O5:
				if set != logic.S(logic.One) {
					t.Fatalf("%s: PPO %d handed 1 but set %v", f.Name(c), i, set)
				}
			case sim.D5:
				if set != logic.S(logic.RiseC) {
					t.Fatalf("%s: PPO %d handed D but set %v", f.Name(c), i, set)
				}
			case sim.B5:
				if set != logic.S(logic.FallC) {
					t.Fatalf("%s: PPO %d handed D' but set %v", f.Name(c), i, set)
				}
			}
		}
	}
}
