package tdgen

import (
	"math/bits"

	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// probeAfter is the backtrack count after which decision probing kicks
// in: the static SCOAP-guided order is kept while it is working, and the
// sampled scores only pay for themselves on faults the static order is
// already failing.
const probeAfter = 4

// sm64 is a splitmix64 stream, the per-lane sampling PRNG of the
// decision probe. It is deliberately tiny and allocation-free: every
// probe event draws its 64 lane streams from (ProbeSeed, event, lane),
// so the sampling — and with it the whole search — is a pure function of
// the fault, independent of worker count and of the batched/scalar
// evaluation mode.
type sm64 struct{ s uint64 }

func seedSM64(seed int64, stream uint64) sm64 {
	return sm64{s: uint64(seed) + 0x9E3779B97F4A7C15*(stream+1)}
}

func (p *sm64) next() uint64 {
	p.s += 0x9E3779B97F4A7C15
	z := p.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// probeScratch holds the decision-probe buffers, built on first use so
// generators that never probe (short searches, unit tests) pay nothing.
type probeScratch struct {
	lanes   [64]sm64
	samples []logic.Value // per input × 64 lanes, input-major
	rail    *sim.Rail64
	goodW   []sim.Word // NextStateFill64 capture scratch
	faultyW []sim.Word
	vals8   []logic.Value // scalar oracle frame
	next8   []logic.Value
}

func (g *Generator) probeBuf() *probeScratch {
	if g.ps == nil {
		c := g.net.C
		g.ps = &probeScratch{
			samples: make([]logic.Value, 64*len(g.inputs)),
			rail:    g.net.NewRail64(),
			goodW:   make([]sim.Word, len(c.DFFs)),
			faultyW: make([]sim.Word, len(c.DFFs)),
			vals8:   make([]logic.Value, len(c.Nodes)),
			next8:   make([]logic.Value, len(c.DFFs)),
		}
	}
	return g.ps
}

// orderByProbe scores the candidate option order of a decision by
// sampled simulation and returns the options most-promising-first. Each
// option gets 64/len(options) lanes; every lane samples one concrete
// eight-valued input frame (the decision input from the option's value
// set, every other input from its current propagated set), evaluates it
// with the fault injected, and counts as a hit when the effect reaches a
// PO or is captured at a PPO. The reorder is a pure heuristic — options
// are never dropped, so Untestable completeness is untouched — and runs
// only after probeAfter backtracks (the static order wins when it wins).
//
// The default evaluation is one lane-parallel rail walk (sim.EvalFill64);
// the scalar oracle (Options.ScalarProbe) evaluates the identical 64
// sampled frames one Eval8 at a time. The sampling is shared, the
// per-lane verdicts are bit-identical (TestProbeScalarMatchesBatched),
// so the two modes order every decision the same way.
func (g *Generator) orderByProbe(node netlist.NodeID, options []logic.Set) []logic.Set {
	if !g.probe || g.nBack < probeAfter || len(options) < 2 {
		return options
	}
	event := g.probeEvents
	g.probeEvents++
	ps := g.probeBuf()
	for k := range ps.lanes {
		ps.lanes[k] = seedSM64(g.probeSeed, uint64(event)<<6|uint64(k))
	}
	nOpt := len(options)
	lanesPer := 64 / nOpt

	// Sample every lane's frame, input-major so batched and scalar paths
	// read the identical values. Lane k of the decision input draws from
	// option k/lanesPer's value set narrowed by the propagated set (the
	// raw option when the intersection is empty — the lane then scores
	// zero through simulation rather than through a special case).
	var vv [logic.NumValues]logic.Value
	decode := func(s logic.Set) int {
		n := 0
		for v := logic.Value(0); v < logic.NumValues; v++ {
			if s.Has(v) {
				vv[n] = v
				n++
			}
		}
		return n
	}
	for ii, in := range g.inputs {
		row := ps.samples[ii*64 : ii*64+64]
		if in != node {
			set := g.sets[in]
			if n := decode(set); n > 0 {
				for k := 0; k < 64; k++ {
					row[k] = vv[ps.lanes[k].next()%uint64(n)]
				}
			} else {
				for k := 0; k < 64; k++ {
					row[k] = logic.Zero
				}
			}
			continue
		}
		for o := 0; o < nOpt; o++ {
			set := options[o] & g.sets[node]
			if set == logic.EmptySet {
				set = options[o]
			}
			n := decode(set)
			for k := o * lanesPer; k < (o+1)*lanesPer; k++ {
				row[k] = vv[ps.lanes[k].next()%uint64(n)]
			}
		}
	}

	live := sim.Word(1)<<uint(nOpt*lanesPer) - 1
	var obs sim.Word
	if g.scalarProbe {
		obs = g.probeScalar(ps, nOpt*lanesPer)
	} else {
		obs = g.probeBatched(ps)
	}
	obs &= live

	// Stable insertion sort, descending by hit count: ties keep the
	// static order, so the probe can only ever override it with evidence.
	var scores [8]int
	for o := 0; o < nOpt; o++ {
		mask := (sim.Word(1)<<uint(lanesPer) - 1) << uint(o*lanesPer)
		scores[o] = bits.OnesCount64(obs & mask)
	}
	out := make([]logic.Set, nOpt)
	copy(out, options)
	for i := 1; i < nOpt; i++ {
		for j := i; j > 0 && scores[j] > scores[j-1]; j-- {
			scores[j], scores[j-1] = scores[j-1], scores[j]
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// probeInject is the injection applied to every probe frame. The sampled
// input values already carry the site conversion where the sets do (a
// stem fault on a PI/PPI), and InjectDelay.apply leaves carrying values
// unchanged, so injecting is idempotent there and required everywhere
// else.
func (g *Generator) probeInject() *sim.InjectDelay {
	return &sim.InjectDelay{Line: g.fault.Line, SlowToRise: g.fault.Type == faults.SlowToRise}
}

// probeBatched evaluates all 64 sampled frames in one rail walk and
// returns the observable-lane word.
func (g *Generator) probeBatched(ps *probeScratch) sim.Word {
	r := ps.rail
	for ii, in := range g.inputs {
		row := ps.samples[ii*64 : ii*64+64]
		var i, f, h, c sim.Word
		for k, v := range row {
			bit := sim.Word(1) << uint(k)
			if v.Initial() == 1 {
				i |= bit
			}
			if v.Final() == 1 {
				f |= bit
			}
			if v == logic.ZeroH || v == logic.OneH {
				h |= bit
			}
			if v.Carrying() {
				c |= bit
			}
		}
		r.I[in], r.F[in], r.H[in], r.C[in] = i, f, h, c
	}
	inj := g.probeInject()
	g.net.EvalFill64(g.alg, r, inj)
	return g.net.ObserveFill64(r) | g.net.NextStateFill64(r, inj, ps.goodW, ps.faultyW)
}

// probeScalar is the reference oracle: the identical sampled frames, one
// scalar eight-valued walk per lane.
func (g *Generator) probeScalar(ps *probeScratch, lanes int) sim.Word {
	inj := g.probeInject()
	var obs sim.Word
	for k := 0; k < lanes; k++ {
		for ii, in := range g.inputs {
			ps.vals8[in] = ps.samples[ii*64+k]
		}
		g.net.Eval8(g.alg, ps.vals8, inj)
		hit := false
		for _, po := range g.net.C.POs {
			if ps.vals8[po].Carrying() {
				hit = true
				break
			}
		}
		if !hit {
			g.net.NextState8Into(ps.next8, ps.vals8, inj)
			for _, v := range ps.next8 {
				if v.Carrying() {
					hit = true
					break
				}
			}
		}
		if hit {
			obs |= sim.Word(1) << uint(k)
		}
	}
	return obs
}
