package service

import (
	"bytes"
	"context"
	"sync"
	"time"

	"fogbuster/pkg/atpg"
)

// Job states exposed by the API. A job is queued until a runner picks
// it up, running while the session executes, and done afterwards —
// whether it completed, timed out, was cancelled, or failed (the Err
// field of the status distinguishes those).
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// job is one submitted ATPG run. The immutable fields are set at
// submission; the mutable tail is guarded by mu.
type job struct {
	id          string
	circuit     *atpg.Circuit
	circuitHash string
	cfg         atpg.Config // canonical, workers clamped
	cacheKey    string      // circuitHash + config cache key
	timeout     time.Duration
	events      *eventLog
	created     time.Time
	// resume, when non-nil, is the checkpoint this job continues from
	// (validated at admission); resumedFrom names the job it came from
	// when the resume endpoint created this one.
	resume      *atpg.Checkpoint
	resumedFrom string

	mu        sync.Mutex
	state     string
	cancel    context.CancelFunc
	cancelled bool
	fromCache bool
	result    []byte // canonical atpg.Result JSON (Runtime zeroed), nil until done
	runtime   time.Duration
	errMsg    string
	finished  time.Time
	// ckpt is the latest checkpoint snapshot (canonical JSON) and
	// ckptCursor its committed-prefix cursor; refreshed periodically
	// while the job runs and once more when it finishes.
	ckpt       []byte
	ckptCursor int
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID          string      `json:"id"`
	State       string      `json:"state"`
	Circuit     string      `json:"circuit"`
	CircuitHash string      `json:"circuit_hash"`
	Config      atpg.Config `json:"config"`
	TimeoutMS   int64       `json:"timeout_ms"`
	// Done/Total mirror the latest progress event: Done targeting
	// positions of Total are committed.
	Done  int `json:"done"`
	Total int `json:"total,omitempty"`
	// Events is the absolute count of streamed events so far.
	Events int `json:"events"`
	// Cached marks a result replayed from the results cache.
	Cached bool `json:"cached,omitempty"`
	// Cancelled marks a job that received DELETE before finishing.
	Cancelled bool `json:"cancelled,omitempty"`
	// Err is the terminal error, "context canceled" / "context deadline
	// exceeded" for cancelled and timed-out jobs (which still carry the
	// committed-prefix partial result).
	Err string `json:"err,omitempty"`
	// RuntimeNS is the engine wall clock of the run that produced the
	// result (the original run's, for cached replays).
	RuntimeNS int64 `json:"runtime_ns,omitempty"`
	// HasResult tells whether GET /v1/jobs/{id}/result will serve a
	// document.
	HasResult bool `json:"has_result"`
	// CheckpointCursor is the committed-prefix cursor of the latest
	// checkpoint snapshot (GET /v1/jobs/{id}/checkpoint); zero when no
	// snapshot exists yet.
	CheckpointCursor int `json:"checkpoint_cursor,omitempty"`
	// ResumedFrom names the job whose checkpoint this job resumed, when
	// it was created by POST /v1/jobs/{id}/resume.
	ResumedFrom string `json:"resumed_from,omitempty"`
}

// status snapshots the job for the API.
func (j *job) status() JobStatus {
	events, done, total := j.events.progress()
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:               j.id,
		State:            j.state,
		Circuit:          j.circuit.Name(),
		CircuitHash:      j.circuitHash,
		Config:           j.cfg,
		TimeoutMS:        j.timeout.Milliseconds(),
		Done:             done,
		Total:            total,
		Events:           events,
		Cached:           j.fromCache,
		Cancelled:        j.cancelled,
		Err:              j.errMsg,
		RuntimeNS:        int64(j.runtime),
		HasResult:        j.result != nil,
		CheckpointCursor: j.ckptCursor,
		ResumedFrom:      j.resumedFrom,
	}
}

// beginRun moves a queued job to running; it returns false when the job
// was cancelled while queued (in which case it is already done).
func (j *job) beginRun() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

// bindCancel installs the running job's context cancel; a cancellation
// that raced ahead of the bind fires immediately.
func (j *job) bindCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	fire := j.cancelled
	j.mu.Unlock()
	if fire {
		cancel()
	}
}

// requestCancel handles DELETE: a queued job finishes immediately with
// no result, a running one gets its context cancelled (the session then
// returns the coherent committed-prefix partial result), and a done job
// is left untouched.
func (j *job) requestCancel() {
	j.mu.Lock()
	var fire context.CancelFunc
	switch j.state {
	case StateDone:
	case StateQueued:
		j.cancelled = true
		j.state = StateDone
		j.errMsg = context.Canceled.Error()
		j.finished = time.Now() //lint:allow determinism job wall-clock metadata; never part of a canonical result
	case StateRunning:
		j.cancelled = true
		fire = j.cancel
	}
	state := j.state
	j.mu.Unlock()
	if fire != nil {
		fire()
	}
	if state == StateDone {
		j.events.finish()
	}
}

// finish records the terminal state. body may carry a partial result
// (runErr non-nil) or nil for a hard failure before any result existed.
func (j *job) finish(body []byte, runtime time.Duration, runErr error, fromCache bool) {
	j.mu.Lock()
	if j.state == StateDone { // lost the race against a queued-cancel
		j.mu.Unlock()
		return
	}
	j.state = StateDone
	j.result = body
	j.runtime = runtime
	j.fromCache = fromCache
	if runErr != nil {
		j.errMsg = runErr.Error()
	}
	j.finished = time.Now() //lint:allow determinism job wall-clock metadata; never part of a canonical result
	j.mu.Unlock()
	j.events.finish()
}

// resultBody returns the canonical result document, or nil while the
// job is unfinished (or finished without one).
func (j *job) resultBody() (body []byte, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// setCheckpoint publishes a checkpoint snapshot. Snapshots are
// monotone — the committed prefix only grows — so a stale writer (the
// periodic ticker racing the final post-run snapshot) never replaces a
// newer one.
func (j *job) setCheckpoint(ck *atpg.Checkpoint) {
	var buf bytes.Buffer
	if err := atpg.EncodeJSON(&buf, ck); err != nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ckpt != nil && ck.Cursor < j.ckptCursor {
		return
	}
	j.ckpt = buf.Bytes()
	j.ckptCursor = ck.Cursor
}

// checkpointBody returns the latest checkpoint snapshot, nil when none
// was taken.
func (j *job) checkpointBody() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckpt
}
