// Package service is the ATPG-as-a-service subsystem behind cmd/atpgd:
// a multi-tenant job scheduler, content-hash circuit and result caches,
// and the HTTP/SSE handlers that expose them.
//
// The package consumes the engine exclusively through the public
// fogbuster/pkg/atpg API — it is a client of the same surface external
// Go programs use, and the import guards enforce that it never reaches
// into the other internal packages. What it adds over pkg/atpg is the
// service layer:
//
//   - Jobs: POST /v1/jobs accepts a built-in benchmark name or an
//     uploaded ISCAS'89 .bench netlist plus an atpg.Config and an
//     optional deadline; GET /v1/jobs/{id} reports status, GET
//     /v1/jobs/{id}/result returns the canonical atpg.Result JSON
//     byte-exactly, and DELETE /v1/jobs/{id} cancels (yielding the
//     engine's coherent committed-prefix partial result).
//   - Streaming: GET /v1/jobs/{id}/events replays and then follows the
//     session's ordered per-fault commit events as server-sent events.
//     The runner drains Session.Events into a bounded per-job log, so a
//     slow or disconnected SSE client can never wedge the merge loop,
//     and a client disconnect never cancels the job.
//   - Scheduling: a bounded queue feeds a fixed pool of job runners;
//     each job runs under its own context.WithTimeout with the worker
//     count clamped to a per-job cap, sharing the machine across
//     tenants.
//   - Caching: parsed circuits are deduplicated by the SHA-256 of their
//     canonical .bench text (atpg.Circuit.ContentHash), so N clients
//     submitting the same hot circuit pay parsing and levelization once
//     (the memoized sim topology rides on the shared Circuit); complete
//     results are kept in a bounded LRU keyed by (circuit hash,
//     atpg.Config.CacheKey), and hits replay the stored canonical JSON
//     byte-identically.
//
// See DESIGN.md §10 for the architecture and the exact SSE contract.
package service
