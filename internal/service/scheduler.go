package service

import (
	"errors"
	"fmt"
	"sync"
)

// ErrQueueFull rejects a submission when the bounded job queue has no
// room; clients should retry later (the API maps it to 503).
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed rejects submissions to a server that is shutting down.
var ErrClosed = errors.New("service: server closed")

// scheduler owns the job registry and the bounded queue feeding a fixed
// pool of runner goroutines — the multi-tenant heart of the daemon: at
// most maxRunning jobs execute concurrently (each itself capped to the
// per-job worker limit by the server), the queue bounds admission, and
// finished jobs are retained up to maxJobs for status/result reads
// before the oldest are evicted.
type scheduler struct {
	queue   chan *job
	stop    chan struct{}
	wg      sync.WaitGroup
	runJob  func(*job)
	maxJobs int

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // insertion order, for eviction
	nextID int
	closed bool
}

func newScheduler(queueCap, runners, maxJobs int, runJob func(*job)) *scheduler {
	s := &scheduler{
		queue:   make(chan *job, queueCap),
		stop:    make(chan struct{}),
		runJob:  runJob,
		maxJobs: maxJobs,
		jobs:    make(map[string]*job),
	}
	for i := 0; i < runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

func (s *scheduler) runner() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// newID allocates the next job identifier.
func (s *scheduler) newID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("j%06d", s.nextID)
}

// submit registers the job and enqueues it. The registry is updated
// before the enqueue so a client that immediately GETs the returned id
// finds it; a full queue unregisters and reports ErrQueueFull.
func (s *scheduler) submit(j *job) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()

	select {
	case s.queue <- j:
		return nil
	default:
		s.mu.Lock()
		delete(s.jobs, j.id)
		if n := len(s.order); n > 0 && s.order[n-1] == j.id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		return ErrQueueFull
	}
}

// evictLocked trims the oldest finished jobs beyond the retention
// bound. Live (queued/running) jobs are never evicted, so the registry
// can transiently exceed maxJobs under extreme concurrency.
func (s *scheduler) evictLocked() {
	if len(s.jobs) <= s.maxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.maxJobs {
			j.mu.Lock()
			done := j.state == StateDone
			j.mu.Unlock()
			if done {
				delete(s.jobs, id)
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// lookup returns a registered job.
func (s *scheduler) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// counts tallies the registry by state.
func (s *scheduler) counts() (queued, running, done int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		default:
			done++
		}
		j.mu.Unlock()
	}
	return queued, running, done
}

// close stops admission, cancels every live job, and waits for the
// runners to drain. Queued jobs finish as cancelled without running.
func (s *scheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	// Walk the insertion-order slice, not the map: cancellation order is
	// observable (events, logs), and map order would shuffle it per run.
	jobs := make([]*job, 0, len(s.jobs))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()

	for _, j := range jobs {
		j.requestCancel()
	}
	close(s.stop)
	s.wg.Wait()
	// Anything still sitting in the queue was cancelled above; mark any
	// stragglers enqueued between the snapshot and the closed flag.
	for {
		select {
		case j := <-s.queue:
			j.requestCancel()
		default:
			return
		}
	}
}
