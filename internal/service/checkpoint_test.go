package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"fogbuster/pkg/atpg"
)

// cancelWhenRunning polls a job until some progress committed and then
// DELETEs it; it returns the terminal status. When the run outpaces the
// cancel the job finishes cleanly — callers must tolerate that (the
// resumable-checkpoint machinery handles a complete prefix too).
func cancelWhenRunning(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		st := getStatus(t, base, id)
		if st.State == StateDone {
			break
		}
		if st.Done >= 3 {
			req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s made no progress", id)
		}
		time.Sleep(time.Millisecond)
	}
	return waitDone(t, base, id)
}

// getCheckpoint fetches GET /v1/jobs/{id}/checkpoint, returning the body
// and status code.
func getCheckpoint(t *testing.T, base, id string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

// postResume POSTs /v1/jobs/{id}/resume with the given body and decodes
// the accepted JobStatus.
func postResume(t *testing.T, base, id string, body []byte) JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs/"+id+"/resume", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("resume returned %d: %s", resp.StatusCode, buf.String())
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCheckpointResumeEndToEnd is the service-level failure drill:
// cancel a job mid-run, resume it from its server-side checkpoint with
// an empty POST, and the resumed job's final document is byte-identical
// to an uninterrupted direct run of the same canonical config.
func TestCheckpointResumeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{CheckpointEvery: 2 * time.Millisecond})
	cfg := atpg.Config{Workers: 1, Seed: 42}
	st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s298", Config: cfg})

	fin := cancelWhenRunning(t, ts.URL, st.ID)
	if fin.Err == "" {
		t.Log("run finished before the cancel landed; resuming a complete checkpoint instead")
	}
	if fin.CheckpointCursor == 0 {
		t.Fatalf("finished job has no checkpoint snapshot: %+v", fin)
	}
	body, code := getCheckpoint(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("GET checkpoint = %d", code)
	}
	var ck atpg.Checkpoint
	if err := json.Unmarshal(body, &ck); err != nil {
		t.Fatalf("checkpoint body does not decode: %v", err)
	}
	if ck.Cursor != fin.CheckpointCursor {
		t.Fatalf("checkpoint cursor %d != status cursor %d", ck.Cursor, fin.CheckpointCursor)
	}

	re := postResume(t, ts.URL, st.ID, nil)
	if re.ResumedFrom != st.ID {
		t.Fatalf("resumed job's resumed_from = %q, want %q", re.ResumedFrom, st.ID)
	}
	if done := waitDone(t, ts.URL, re.ID); done.Err != "" {
		t.Fatalf("resumed job failed: %+v", done)
	}
	got := getResult(t, ts.URL, re.ID)
	want := directRunBytes(t, "s298", cfg)
	if !bytes.Equal(got, want) {
		t.Error("resumed job's result diverged from an uninterrupted direct run")
	}
}

// TestResumeWithClientCheckpoint resumes by shipping the checkpoint in
// the submission itself (SubmitRequest.Checkpoint) rather than through
// the resume endpoint — the cross-server handoff path the coordinator
// uses when a worker dies.
func TestResumeWithClientCheckpoint(t *testing.T) {
	// Separate servers: the origin produces the checkpoint, the target
	// has never seen the job (and has an empty results cache, so the
	// resumed run is live, not replayed).
	_, origin := newTestServer(t, Options{CheckpointEvery: 2 * time.Millisecond})
	_, target := newTestServer(t, Options{})
	cfg := atpg.Config{Workers: 1, Seed: 7, Order: atpg.OrderADI}
	st := postJob(t, origin.URL, SubmitRequest{Benchmark: "s298", Config: cfg})
	cancelWhenRunning(t, origin.URL, st.ID)

	body, code := getCheckpoint(t, origin.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("GET checkpoint = %d", code)
	}
	var ck atpg.Checkpoint
	if err := json.Unmarshal(body, &ck); err != nil {
		t.Fatal(err)
	}
	re := postJob(t, target.URL, SubmitRequest{Benchmark: "s298", Checkpoint: &ck})
	if done := waitDone(t, target.URL, re.ID); done.Err != "" {
		t.Fatalf("resumed job failed: %+v", done)
	}
	got := getResult(t, target.URL, re.ID)
	want := directRunBytes(t, "s298", cfg)
	if !bytes.Equal(got, want) {
		t.Error("checkpoint handed to a fresh server diverged from an uninterrupted direct run")
	}
}

// TestCheckpointMismatchedCircuitRejected: a checkpoint submitted with a
// different circuit is a 4xx error, not a crash or a silent wrong run.
func TestCheckpointMismatchedCircuitRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{CheckpointEvery: 2 * time.Millisecond})
	st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: atpg.Config{Workers: 1}})
	waitDone(t, ts.URL, st.ID)
	body, code := getCheckpoint(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("GET checkpoint = %d", code)
	}
	var ck atpg.Checkpoint
	if err := json.Unmarshal(body, &ck); err != nil {
		t.Fatal(err)
	}
	_, code = postJobCode(t, ts.URL, SubmitRequest{Benchmark: "s298", Checkpoint: &ck})
	if code < 400 || code >= 500 {
		t.Errorf("mismatched-circuit resume returned %d, want a 4xx", code)
	}
}

// TestCheckpointEndpointLifecycle pins the 409s: no snapshot before the
// run commits anything, and never one for a compacting job.
func TestCheckpointEndpointLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: atpg.Config{Workers: 1, Compact: true}})
	waitDone(t, ts.URL, st.ID)
	if _, code := getCheckpoint(t, ts.URL, st.ID); code != http.StatusConflict {
		t.Errorf("compacting job's checkpoint = %d, want 409", code)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs/"+st.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("resume of a compacting job = %d, want 409", resp.StatusCode)
	}
	if _, code := getCheckpoint(t, ts.URL, "nope"); code != http.StatusNotFound {
		t.Errorf("unknown job's checkpoint = %d, want 404", code)
	}
}

// TestShardedJobsMergeToDirect drives the shard-aware submission layer:
// N jobs submitted with config shards/shard_index, their stored shard
// documents merged client-side, reproduce the unsharded document
// byte for byte.
func TestShardedJobsMergeToDirect(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cfg := atpg.Config{Workers: 1, Seed: 42}
	const shards = 2

	parts := make([]*atpg.Result, shards)
	for i := range parts {
		scfg := cfg
		scfg.Shards, scfg.ShardIndex = shards, i
		st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: scfg})
		if st.Config.Shards != shards || st.Config.ShardIndex != i {
			t.Fatalf("shard fields lost in canonicalization: %+v", st.Config)
		}
		if done := waitDone(t, ts.URL, st.ID); done.Err != "" {
			t.Fatalf("shard %d failed: %+v", i, done)
		}
		var res atpg.Result
		if err := json.Unmarshal(getResult(t, ts.URL, st.ID), &res); err != nil {
			t.Fatalf("shard %d result does not decode: %v", i, err)
		}
		if res.Shard == nil || res.Shard.Index != i {
			t.Fatalf("shard %d document carries no shard descriptor", i)
		}
		parts[i] = &res
	}
	merged, err := atpg.MergeResults(parts...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := atpg.EncodeJSON(&buf, merged); err != nil {
		t.Fatal(err)
	}
	if want := directRunBytes(t, "s27", cfg); !bytes.Equal(buf.Bytes(), want) {
		t.Error("merge of service-run shards diverged from the unsharded direct run")
	}
}

// TestStatsCacheCounters is the cache-observability check: a repeat
// submission of an identical job increments the result-cache hit
// counter (and the circuit cache stops re-parsing).
func TestStatsCacheCounters(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	src := benchSource(t, "s27")
	req := SubmitRequest{Bench: src, Config: atpg.Config{Workers: 1, Seed: 9}}

	before := getStats(t, ts.URL)
	if before.ResultCache.Hits != 0 || before.ResultCache.Misses != 0 {
		t.Fatalf("fresh server has nonzero result-cache counters: %+v", before.ResultCache)
	}
	st := postJob(t, ts.URL, req)
	if done := waitDone(t, ts.URL, st.ID); done.Cached {
		t.Fatalf("first run claims a cache hit: %+v", done)
	}
	mid := getStats(t, ts.URL)
	if mid.ResultCache.Misses == 0 || mid.ResultCache.Hits != 0 {
		t.Fatalf("after first run: %+v, want >=1 miss and 0 hits", mid.ResultCache)
	}
	if mid.ResultCache.Entries == 0 {
		t.Fatalf("completed run not stored in the results cache: %+v", mid.ResultCache)
	}

	st2 := postJob(t, ts.URL, req)
	if done := waitDone(t, ts.URL, st2.ID); !done.Cached {
		t.Fatalf("repeat submission not served from cache: %+v", done)
	}
	after := getStats(t, ts.URL)
	if after.ResultCache.Hits != mid.ResultCache.Hits+1 {
		t.Errorf("result-cache hits = %d after repeat, want %d", after.ResultCache.Hits, mid.ResultCache.Hits+1)
	}
	if after.CircuitCache.Hits <= mid.CircuitCache.Hits-1 {
		t.Errorf("circuit-cache hits did not grow: %d -> %d", mid.CircuitCache.Hits, after.CircuitCache.Hits)
	}
	if after.CircuitCache.Parses != mid.CircuitCache.Parses {
		t.Errorf("repeat submission re-parsed the circuit: %d -> %d parses", mid.CircuitCache.Parses, after.CircuitCache.Parses)
	}
	if !bytes.Equal(getResult(t, ts.URL, st.ID), getResult(t, ts.URL, st2.ID)) {
		t.Error("cached replay served different bytes")
	}
}

// benchSource renders a built-in benchmark back to .bench text so tests
// can submit it by source (exercising the circuit cache's parse path).
func benchSource(t *testing.T, name string) string {
	t.Helper()
	c, err := atpg.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return c.Bench()
}
