package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"

	"fogbuster/pkg/atpg"
)

// Options tunes the daemon; every zero field takes the stated default.
type Options struct {
	// MaxQueue bounds the pending-job queue (default 64). Submissions
	// beyond it are rejected with 503.
	MaxQueue int
	// MaxRunningJobs is the number of concurrently executing jobs
	// (default 2): the job-level parallelism the machine is shared at.
	MaxRunningJobs int
	// MaxWorkersPerJob clamps Config.Workers (default runtime.NumCPU()).
	// A request asking for 0 (all CPUs) or more than the cap runs with
	// exactly the cap; the clamped value is what the canonical config —
	// and therefore the result document and the cache key — carries.
	MaxWorkersPerJob int
	// DefaultTimeout is the per-job deadline when the request omits one
	// (default 5m); MaxTimeout (default 30m) caps requested deadlines.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxUploadBytes bounds the request body, netlist included
	// (default 16 MiB).
	MaxUploadBytes int64
	// MaxJobs bounds the job registry; beyond it the oldest finished
	// jobs are evicted (default 1024).
	MaxJobs int
	// MaxEventsPerJob bounds each job's event log; older events fall out
	// of the SSE replay window with an explicit gap marker
	// (default 1<<17).
	MaxEventsPerJob int
	// ResultCacheEntries and CircuitCacheEntries bound the two LRUs
	// (defaults 256 and 64).
	ResultCacheEntries  int
	CircuitCacheEntries int
	// CheckpointEvery is the period of the per-job checkpoint snapshots
	// (default 250ms): how much committed work a killed daemon can lose
	// at most. Snapshots are skipped for compacting jobs (compacted runs
	// cannot be checkpointed).
	CheckpointEvery time.Duration
}

// withDefaults resolves the zero fields.
func (o Options) withDefaults() Options {
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.MaxRunningJobs <= 0 {
		o.MaxRunningJobs = 2
	}
	if o.MaxWorkersPerJob <= 0 {
		o.MaxWorkersPerJob = runtime.NumCPU()
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 5 * time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 30 * time.Minute
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 16 << 20
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.MaxEventsPerJob <= 0 {
		o.MaxEventsPerJob = 1 << 17
	}
	if o.ResultCacheEntries <= 0 {
		o.ResultCacheEntries = 256
	}
	if o.CircuitCacheEntries <= 0 {
		o.CircuitCacheEntries = 64
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 250 * time.Millisecond
	}
	return o
}

// Server is the ATPG service: scheduler, caches and HTTP handlers.
// Create with New, expose via Handler, stop with Close.
type Server struct {
	opts     Options
	sched    *scheduler
	circuits *circuitCache
	results  *resultCache
	mux      *http.ServeMux
}

// New builds a ready-to-serve ATPG service.
func New(opts Options) *Server {
	s := &Server{
		opts:     opts.withDefaults(),
		circuits: newCircuitCache(opts.withDefaults().CircuitCacheEntries),
		results:  newResultCache(opts.withDefaults().ResultCacheEntries),
		mux:      http.NewServeMux(),
	}
	s.sched = newScheduler(s.opts.MaxQueue, s.opts.MaxRunningJobs, s.opts.MaxJobs, s.runJob)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleResume)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops admission, cancels every live job and waits for the
// runners to drain.
func (s *Server) Close() { s.sched.close() }

// SubmitRequest is the POST /v1/jobs body: exactly one circuit source
// (a built-in benchmark name, or uploaded .bench netlist text) plus the
// run configuration and an optional deadline.
type SubmitRequest struct {
	// Benchmark names a built-in circuit (see GET /v1/benchmarks).
	Benchmark string `json:"benchmark,omitempty"`
	// Bench is ISCAS'89 .bench netlist text; Name labels it in results
	// (default "upload").
	Bench string `json:"bench,omitempty"`
	Name  string `json:"name,omitempty"`
	// Config is the run configuration; it is canonicalized (defaults
	// resolved, Workers clamped to the server's per-job cap) before the
	// run, and the canonical form is what the job status and the result
	// document echo.
	Config atpg.Config `json:"config"`
	// TimeoutMS overrides the server's default per-job deadline, capped
	// at its maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Checkpoint, when present, resumes a previous run from its
	// committed prefix instead of starting fresh. The circuit source is
	// still required and must match the checkpoint's content hash; the
	// run configuration comes from the checkpoint (Config is ignored).
	Checkpoint *atpg.Checkpoint `json:"checkpoint,omitempty"`
}

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) // nothing useful to do with a write error here
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit admits one job: resolve the circuit through the
// content-hash cache, canonicalize the config, bound the deadline, and
// enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	if (req.Benchmark == "") == (req.Bench == "") {
		writeError(w, http.StatusBadRequest, "exactly one of benchmark or bench is required")
		return
	}
	var rawKey string
	var build func() (*atpg.Circuit, error)
	if req.Benchmark != "" {
		name := req.Benchmark
		rawKey = "builtin\x00" + name
		build = func() (*atpg.Circuit, error) { return atpg.Benchmark(name) }
	} else {
		name := req.Name
		if name == "" {
			name = "upload"
		}
		if strings.ContainsAny(name, "\x00\n\r") || len(name) > 256 {
			writeError(w, http.StatusBadRequest, "invalid circuit name")
			return
		}
		sum := sha256.Sum256([]byte(req.Bench))
		rawKey = "bench\x00" + name + "\x00" + hex.EncodeToString(sum[:])
		text := req.Bench
		build = func() (*atpg.Circuit, error) { return atpg.ParseBench(name, text) }
	}
	circuit, err := s.circuits.get(rawKey, build)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if req.Checkpoint != nil {
		// Resume-from-checkpoint submission: the configuration lives in
		// the checkpoint, the circuit source above only re-establishes
		// the netlist (and must hash to what the checkpoint expects —
		// resumeJob verifies through atpg.Resume).
		j, code, err := s.resumeJob(circuit, req.Checkpoint, req.TimeoutMS, "")
		if err != nil {
			writeError(w, code, "%v", err)
			return
		}
		if err := s.sched.submit(j); err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}

	cfg, err := req.Config.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cfg.Workers == 0 || cfg.Workers > s.opts.MaxWorkersPerJob {
		cfg.Workers = s.opts.MaxWorkersPerJob
	}
	cfgKey, err := cfg.CacheKey()
	if err != nil { // unreachable after Canonical; surfaced defensively
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	timeout, err := s.timeoutFor(req.TimeoutMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	j := &job{
		id:          s.sched.newID(),
		circuit:     circuit,
		circuitHash: circuit.ContentHash(),
		cfg:         cfg,
		cacheKey:    circuit.ContentHash() + "\x00" + cfgKey,
		timeout:     timeout,
		events:      newEventLog(s.opts.MaxEventsPerJob),
		created:     time.Now(), //lint:allow determinism job wall-clock metadata; never part of a canonical result
		state:       StateQueued,
	}
	if err := s.sched.submit(j); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// timeoutFor resolves a requested per-job deadline against the server's
// default and cap.
func (s *Server) timeoutFor(ms int64) (time.Duration, error) {
	if ms < 0 {
		return 0, fmt.Errorf("negative timeout_ms %d", ms)
	}
	timeout := s.opts.DefaultTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > s.opts.MaxTimeout {
			timeout = s.opts.MaxTimeout
		}
	}
	return timeout, nil
}

// resumeJob builds (but does not submit) a job continuing from a
// checkpoint: the run configuration is decoded from the checkpoint's
// config key, Workers re-clamped to this server's cap (the rewritten
// key is what the job and its result echo), and the checkpoint fully
// validated against the circuit via atpg.Resume. The error return
// carries the HTTP status to report.
func (s *Server) resumeJob(circuit *atpg.Circuit, ckpt *atpg.Checkpoint, timeoutMS int64, from string) (*job, int, error) {
	timeout, err := s.timeoutFor(timeoutMS)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	var cfg atpg.Config
	if err := json.Unmarshal([]byte(ckpt.ConfigKey), &cfg); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("corrupt checkpoint config key: %v", err)
	}
	cfg, err = cfg.Canonical()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if cfg.Workers == 0 || cfg.Workers > s.opts.MaxWorkersPerJob {
		cfg.Workers = s.opts.MaxWorkersPerJob
	}
	cfgKey, err := cfg.CacheKey()
	if err != nil { // unreachable after Canonical; surfaced defensively
		return nil, http.StatusBadRequest, err
	}
	ck := *ckpt
	ck.ConfigKey = cfgKey
	if _, err := atpg.Resume(circuit, &ck); err != nil {
		return nil, http.StatusBadRequest, err
	}
	j := &job{
		id:          s.sched.newID(),
		circuit:     circuit,
		circuitHash: circuit.ContentHash(),
		cfg:         cfg,
		cacheKey:    circuit.ContentHash() + "\x00" + cfgKey,
		timeout:     timeout,
		events:      newEventLog(s.opts.MaxEventsPerJob),
		created:     time.Now(), //lint:allow determinism job wall-clock metadata; never part of a canonical result
		state:       StateQueued,
		resume:      &ck,
		resumedFrom: from,
	}
	return j, 0, nil
}

// resumeRequest is the POST /v1/jobs/{id}/resume body. Both fields are
// optional: with no checkpoint the job's own latest snapshot is used.
type resumeRequest struct {
	Checkpoint *atpg.Checkpoint `json:"checkpoint,omitempty"`
	TimeoutMS  int64            `json:"timeout_ms,omitempty"`
}

// handleResume serves POST /v1/jobs/{id}/resume: create a new job that
// continues the named job's run from a checkpoint — the one in the
// request body, or the job's latest snapshot. The new job is an
// ordinary job (own id, deadline, events, result); its status names the
// origin in resumed_from.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", s.opts.MaxUploadBytes)
		return
	}
	var req resumeRequest
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	ckpt := req.Checkpoint
	if ckpt == nil {
		b := j.checkpointBody()
		if b == nil {
			writeError(w, http.StatusConflict, "job %s has no checkpoint snapshot to resume from", j.id)
			return
		}
		ckpt = new(atpg.Checkpoint)
		if err := json.Unmarshal(b, ckpt); err != nil { // unreachable: we encoded it
			writeError(w, http.StatusInternalServerError, "corrupt stored checkpoint: %v", err)
			return
		}
	}
	nj, code, err := s.resumeJob(j.circuit, ckpt, req.TimeoutMS, j.id)
	if err != nil {
		writeError(w, code, "%v", err)
		return
	}
	if err := s.sched.submit(nj); err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, nj.status())
}

// handleCheckpoint serves GET /v1/jobs/{id}/checkpoint: the job's
// latest checkpoint snapshot as canonical JSON, refreshed periodically
// while the job runs and once more when it finishes.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	b := j.checkpointBody()
	if b == nil {
		writeError(w, http.StatusConflict, "job %s has no checkpoint snapshot yet", j.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

// runJob executes one admitted job on a scheduler runner: serve from
// the results cache when possible, otherwise run a session under the
// job's own deadline (decoupled from any client connection) while
// draining its event stream into the job log.
func (s *Server) runJob(j *job) {
	if !j.beginRun() {
		return // cancelled while queued; already finished
	}
	if body, origRuntime, ok := s.results.get(j.cacheKey); ok {
		j.finish(body, origRuntime, nil, true)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), j.timeout)
	defer cancel()
	j.bindCancel(cancel)

	var ses *atpg.Session
	var err error
	if j.resume != nil {
		ses, err = atpg.Resume(j.circuit, j.resume)
	} else {
		ses, err = atpg.New(j.circuit, j.cfg)
	}
	if err != nil { // unreachable: config and checkpoint validated at admission
		j.finish(nil, 0, err, false)
		return
	}
	events := ses.Events()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			j.events.append(ev)
		}
	}()
	// Periodic checkpoint snapshots: a killed daemon loses at most
	// CheckpointEvery of committed work. Compacting jobs cannot be
	// checkpointed (Session.Checkpoint refuses).
	snapStop := make(chan struct{})
	snapDone := make(chan struct{})
	if j.cfg.Compact {
		close(snapDone)
	} else {
		go func() {
			defer close(snapDone)
			tick := time.NewTicker(s.opts.CheckpointEvery)
			defer tick.Stop()
			for {
				select {
				case <-snapStop:
					return
				case <-tick.C:
					if ck, err := ses.Checkpoint(); err == nil {
						j.setCheckpoint(ck)
					}
				}
			}
		}()
	}
	res, runErr := ses.Run(ctx)
	cancel()
	<-drained
	close(snapStop)
	<-snapDone
	if !j.cfg.Compact {
		// Final snapshot off the finished session: the complete result,
		// or the committed prefix of a cancelled/timed-out run.
		if ck, err := ses.Checkpoint(); err == nil {
			j.setCheckpoint(ck)
		}
	}
	if res == nil {
		j.finish(nil, 0, runErr, false)
		return
	}

	// The stored document is the deterministic part of the run: the
	// wall clock moves to job metadata so responses — cache hits
	// included — are byte-identical functions of (circuit, config).
	wall := res.Runtime
	res.Runtime = 0
	var buf bytes.Buffer
	if err := atpg.EncodeJSON(&buf, res); err != nil {
		j.finish(nil, 0, err, false)
		return
	}
	body := buf.Bytes()
	if runErr == nil {
		s.results.put(j.cacheKey, body, wall)
	}
	j.finish(body, wall, runErr, false)
}

// handleStatus serves GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleResult serves the canonical atpg.Result JSON byte-exactly: what
// the encoder produced is what goes on the wire, so identical
// submissions are byte-identical responses.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	body, done := j.resultBody()
	switch {
	case !done:
		writeError(w, http.StatusConflict, "job %s is %s; result not ready", j.id, j.status().State)
	case body == nil:
		writeError(w, http.StatusGone, "job %s finished without a result: %s", j.id, j.status().Err)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}
}

// handleCancel serves DELETE /v1/jobs/{id}: cancel the job's own
// context. A running job returns the committed-prefix partial result;
// a queued one finishes immediately with none.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleEvents streams the job's commit events as server-sent events:
// the committed prefix replays from the log, then the stream follows
// live appends until the job finishes (terminal "done" event carrying
// the job status). A subscriber that outlived the bounded log window
// gets an explicit "dropped" gap event. Disconnecting never cancels the
// job — the runner, not this handler, drains the session.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	i := 0
	for {
		evs, next, dropped, finished, wait := j.events.from(i)
		if dropped > 0 {
			writeSSE(w, "dropped", struct {
				Dropped int `json:"dropped"`
			}{dropped})
		}
		for k, ev := range evs {
			w.Write([]byte(fmt.Sprintf("id: %d\n", i+k)))
			writeSSE(w, string(ev.Kind), ev)
		}
		i = next
		if len(evs) > 0 || dropped > 0 {
			flusher.Flush()
		}
		if finished {
			writeSSE(w, "done", j.status())
			flusher.Flush()
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return // client went away; the job keeps running
		}
	}
}

// writeSSE emits one SSE frame with a single-line JSON payload (HTML
// escaping off so fault names like "G10->G11/StR" stay literal).
func writeSSE(w http.ResponseWriter, event string, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, bytes.TrimRight(buf.Bytes(), "\n"))
}

// handleHealthz reports liveness and the registry tallies.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running, done := s.sched.counts()
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Queued  int    `json:"queued"`
		Running int    `json:"running"`
		Done    int    `json:"done"`
	}{"ok", queued, running, done})
}

// BenchmarkEntry is one row of GET /v1/benchmarks.
type BenchmarkEntry struct {
	Name string `json:"name"`
	// Exact is true only for circuits embedded verbatim; the rest are
	// profile-calibrated synthetic reconstructions (see pkg/atpg).
	Exact bool `json:"exact"`
	// Large marks the industrial-scale profiles beyond the paper's
	// Table 3.
	Large bool `json:"large,omitempty"`
}

// handleBenchmarks lists every built-in circuit a job can name.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	var out struct {
		Benchmarks []BenchmarkEntry `json:"benchmarks"`
		// Families are the parameterized didactic circuits: substitute a
		// size for N, e.g. rca8 or shift16.
		Families []string `json:"families"`
	}
	for _, b := range atpg.Benchmarks() {
		out.Benchmarks = append(out.Benchmarks, BenchmarkEntry{Name: b.Name, Exact: b.Exact})
	}
	for _, b := range atpg.LargeBenchmarks() {
		out.Benchmarks = append(out.Benchmarks, BenchmarkEntry{Name: b.Name, Exact: b.Exact, Large: true})
	}
	out.Benchmarks = append(out.Benchmarks, BenchmarkEntry{Name: "c17", Exact: true})
	out.Families = []string{"rca<N>", "shift<N>"}
	writeJSON(w, http.StatusOK, out)
}

// Stats is the GET /v1/stats document: the cache and scheduler counters
// the determinism tests (and operators) read.
type Stats struct {
	Jobs struct {
		Queued  int `json:"queued"`
		Running int `json:"running"`
		Done    int `json:"done"`
	} `json:"jobs"`
	CircuitCache struct {
		Entries int   `json:"entries"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Parses  int64 `json:"parses"`
	} `json:"circuit_cache"`
	ResultCache struct {
		Entries int   `json:"entries"`
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
	} `json:"result_cache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var st Stats
	st.Jobs.Queued, st.Jobs.Running, st.Jobs.Done = s.sched.counts()
	st.CircuitCache.Entries, st.CircuitCache.Hits, st.CircuitCache.Misses, st.CircuitCache.Parses = s.circuits.counters()
	st.ResultCache.Entries, st.ResultCache.Hits, st.ResultCache.Misses = s.results.counters()
	writeJSON(w, http.StatusOK, st)
}
