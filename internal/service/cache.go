package service

import (
	"container/list"
	"sync"
	"time"

	"fogbuster/pkg/atpg"
)

// circuitCache deduplicates parsed circuits by content. Lookups go
// through two keys: a cheap "raw" key derived from the request bytes
// (so a repeated upload skips parsing entirely) and the canonical
// content hash (so syntactic variants of one design converge on a
// single shared *atpg.Circuit — and with it one memoized simulation
// topology). Concurrent misses on the same raw key coalesce: exactly
// one caller parses, the rest wait for its result.
type circuitCache struct {
	mu       sync.Mutex
	capacity int
	byHash   map[string]*list.Element // content hash → *circuitEntry element
	byRaw    map[string]string        // raw key → content hash
	lru      *list.List               // front is most recently used
	inflight map[string]*parseCall    // raw key → in-flight build

	hits, misses, parses int64
}

// circuitEntry is one cached circuit plus the raw keys aliasing it
// (tracked so eviction removes the aliases too).
type circuitEntry struct {
	hash    string
	rawKeys []string
	circuit *atpg.Circuit
}

// parseCall coalesces concurrent builds of the same raw key.
type parseCall struct {
	done    chan struct{}
	circuit *atpg.Circuit
	err     error
}

func newCircuitCache(capacity int) *circuitCache {
	return &circuitCache{
		capacity: capacity,
		byHash:   make(map[string]*list.Element),
		byRaw:    make(map[string]string),
		lru:      list.New(),
		inflight: make(map[string]*parseCall),
	}
}

// get returns the cached circuit for rawKey, building (and caching) it
// via build on a miss. Builds for the same rawKey are single-flight;
// build errors are returned to every waiter and never cached.
func (cc *circuitCache) get(rawKey string, build func() (*atpg.Circuit, error)) (*atpg.Circuit, error) {
	cc.mu.Lock()
	if hash, ok := cc.byRaw[rawKey]; ok {
		if el, ok := cc.byHash[hash]; ok {
			cc.lru.MoveToFront(el)
			cc.hits++
			c := el.Value.(*circuitEntry).circuit
			cc.mu.Unlock()
			return c, nil
		}
		// The entry was evicted under the alias; fall through to rebuild.
		delete(cc.byRaw, rawKey)
	}
	if call, ok := cc.inflight[rawKey]; ok {
		cc.hits++ // coalesced onto another tenant's parse
		cc.mu.Unlock()
		<-call.done
		return call.circuit, call.err
	}
	call := &parseCall{done: make(chan struct{})}
	cc.inflight[rawKey] = call
	cc.misses++
	cc.mu.Unlock()

	c, err := build()

	cc.mu.Lock()
	delete(cc.inflight, rawKey)
	if err != nil {
		cc.mu.Unlock()
		call.err = err
		close(call.done)
		return nil, err
	}
	cc.parses++
	hash := c.ContentHash()
	if el, ok := cc.byHash[hash]; ok {
		// Another raw spelling of a design we already hold: alias onto
		// the existing circuit so its warm topology keeps being shared.
		entry := el.Value.(*circuitEntry)
		entry.rawKeys = append(entry.rawKeys, rawKey)
		cc.byRaw[rawKey] = hash
		cc.lru.MoveToFront(el)
		c = entry.circuit
	} else {
		entry := &circuitEntry{hash: hash, rawKeys: []string{rawKey}, circuit: c}
		cc.byHash[hash] = cc.lru.PushFront(entry)
		cc.byRaw[rawKey] = hash
		for cc.lru.Len() > cc.capacity {
			oldest := cc.lru.Back()
			cc.lru.Remove(oldest)
			old := oldest.Value.(*circuitEntry)
			delete(cc.byHash, old.hash)
			for _, rk := range old.rawKeys {
				delete(cc.byRaw, rk)
			}
		}
	}
	cc.mu.Unlock()
	call.circuit = c
	close(call.done)
	return c, nil
}

// counters returns a consistent snapshot of the cache statistics.
func (cc *circuitCache) counters() (entries int, hits, misses, parses int64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.lru.Len(), cc.hits, cc.misses, cc.parses
}

// resultCache is a bounded LRU of finished runs' canonical JSON bodies,
// keyed by (circuit content hash, config cache key). A hit replays the
// stored bytes untouched — byte-identical responses are the point — so
// only complete (never cancelled or partial) results are admitted.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	byKey    map[string]*list.Element
	lru      *list.List // *resultEntry

	hits, misses int64
}

type resultEntry struct {
	key     string
	body    []byte
	runtime time.Duration // wall clock of the run that produced the body
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		byKey:    make(map[string]*list.Element),
		lru:      list.New(),
	}
}

func (rc *resultCache) get(key string) (body []byte, runtime time.Duration, ok bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	el, found := rc.byKey[key]
	if !found {
		rc.misses++
		return nil, 0, false
	}
	rc.hits++
	rc.lru.MoveToFront(el)
	e := el.Value.(*resultEntry)
	return e.body, e.runtime, true
}

func (rc *resultCache) put(key string, body []byte, runtime time.Duration) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if el, ok := rc.byKey[key]; ok {
		rc.lru.MoveToFront(el)
		return // first write wins; identical by the determinism contract
	}
	rc.byKey[key] = rc.lru.PushFront(&resultEntry{key: key, body: body, runtime: runtime})
	for rc.lru.Len() > rc.capacity {
		oldest := rc.lru.Back()
		rc.lru.Remove(oldest)
		delete(rc.byKey, oldest.Value.(*resultEntry).key)
	}
}

func (rc *resultCache) counters() (entries int, hits, misses int64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.lru.Len(), rc.hits, rc.misses
}
