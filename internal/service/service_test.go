package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fogbuster/pkg/atpg"
)

// newTestServer starts an httptest server over a fresh service.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJob submits a job and decodes the accepted status.
func postJob(t *testing.T, base string, req SubmitRequest) JobStatus {
	t.Helper()
	st, code := postJobCode(t, base, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d: %+v", code, st)
	}
	return st
}

// postJobCode submits a job and returns whatever came back.
func postJobCode(t *testing.T, base string, req SubmitRequest) (JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// getStatus fetches a job's status.
func getStatus(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status returned %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone polls until the job reaches the done state.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.State == StateDone {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

// getResult fetches the canonical result document bytes.
func getResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result returned %d: %s", resp.StatusCode, body)
	}
	return body
}

// getStats fetches the cache/scheduler counters.
func getStats(t *testing.T, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// sseEvent is one parsed server-sent event frame.
type sseEvent struct {
	id    string
	event string
	data  []byte
}

// streamEvents consumes the SSE endpoint until the terminal "done"
// frame (or EOF) and returns every frame seen.
func streamEvents(t *testing.T, base, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var frames []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || len(cur.data) > 0 {
				frames = append(frames, cur)
				if cur.event == "done" {
					return frames
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[len("id: "):]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = append(cur.data, line[len("data: "):]...)
		}
	}
	return frames
}

// directRunBytes executes the same run through pkg/atpg directly and
// returns the canonical document the service stores: the result with
// the wall clock zeroed.
func directRunBytes(t *testing.T, name string, cfg atpg.Config) []byte {
	t.Helper()
	c, err := atpg.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := atpg.New(c, canon)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ses.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res.Runtime = 0
	var buf bytes.Buffer
	if err := atpg.EncodeJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSubmitStreamResultByteIdentical is the end-to-end acceptance run:
// submit a built-in benchmark, observe the ordered progress stream over
// SSE, and fetch a final document byte-identical to a direct pkg/atpg
// run of the same canonical config.
func TestSubmitStreamResultByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkersPerJob: 4})
	cfg := atpg.Config{Workers: 2, Seed: 42}
	st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: cfg})
	if st.CircuitHash == "" || st.Config.Workers != 2 || st.Config.Order != atpg.OrderNatural {
		t.Fatalf("accepted status not canonicalized: %+v", st)
	}

	frames := streamEvents(t, ts.URL, st.ID)
	if len(frames) == 0 || frames[len(frames)-1].event != "done" {
		t.Fatalf("stream did not terminate with done: %d frames", len(frames))
	}
	wantDone := 0
	for _, f := range frames {
		if f.event != string(atpg.EventProgress) {
			continue
		}
		var ev atpg.Event
		if err := json.Unmarshal(f.data, &ev); err != nil {
			t.Fatalf("progress frame does not decode: %v", err)
		}
		wantDone++
		if ev.Done != wantDone {
			t.Fatalf("progress out of order: got %d, want %d", ev.Done, wantDone)
		}
	}
	if wantDone == 0 {
		t.Fatal("no progress events streamed")
	}

	final := waitDone(t, ts.URL, st.ID)
	if final.Err != "" || !final.HasResult || final.Cached {
		t.Fatalf("final status unexpected: %+v", final)
	}
	if final.Done != wantDone || final.Done != final.Total {
		t.Fatalf("final progress %d/%d, streamed %d", final.Done, final.Total, wantDone)
	}
	got := getResult(t, ts.URL, st.ID)
	want := directRunBytes(t, "s27", cfg)
	if !bytes.Equal(got, want) {
		t.Fatalf("service result diverged from direct run:\n%s\nvs\n%s", got, want)
	}
	var res atpg.Result
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatal(err)
	}
	if res.Circuit != "s27" || res.Classified() != len(res.Faults) {
		t.Fatalf("result incoherent: %+v", res)
	}
}

// TestResultCacheReplayByteIdentical: a second identical submission is
// served from the results cache — hit counter moves, the job is marked
// cached, and the bytes are identical to the first response.
func TestResultCacheReplayByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkersPerJob: 4})
	req := SubmitRequest{Benchmark: "s27", Config: atpg.Config{Workers: 2}}

	first := postJob(t, ts.URL, req)
	waitDone(t, ts.URL, first.ID)
	firstBytes := getResult(t, ts.URL, first.ID)

	second := postJob(t, ts.URL, req)
	fin := waitDone(t, ts.URL, second.ID)
	if !fin.Cached {
		t.Fatalf("second identical submission not served from cache: %+v", fin)
	}
	if fin.RuntimeNS == 0 {
		t.Fatal("cached replay lost the original run's wall clock")
	}
	secondBytes := getResult(t, ts.URL, second.ID)
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatal("cache replay not byte-identical")
	}
	stats := getStats(t, ts.URL)
	if stats.ResultCache.Hits != 1 {
		t.Fatalf("result cache hits = %d, want 1", stats.ResultCache.Hits)
	}
	// A config spelled differently but canonically equal also hits.
	third := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: atpg.Config{
		Workers: 2, Algebra: atpg.AlgebraRobust, Order: atpg.OrderNatural,
		LocalBacktracks: 100, SeqBacktracks: 100, MaxFrames: 32,
		Broadcast: true, // pure scheduling: provably identical result
	}})
	waitDone(t, ts.URL, third.ID)
	if !bytes.Equal(getResult(t, ts.URL, third.ID), firstBytes) {
		t.Fatal("canonically equal config missed the cache or diverged")
	}
	if got := getStats(t, ts.URL).ResultCache.Hits; got != 2 {
		t.Fatalf("result cache hits = %d, want 2", got)
	}
}

// uploadText is a small sequential netlist for the upload tests, spelled
// with syntactic noise that must wash out of the content hash.
const uploadText = `# tiny machine
INPUT(A)
INPUT(B)
OUTPUT(Z)

S = DFF(N1)
N1 = nand( A , S )
Z  = AND(N1, B)
`

// TestConcurrentUploadsShareOneParse: N clients racing the same netlist
// upload coalesce onto a single parse (and thus one shared circuit and
// topology), and every response is byte-identical.
func TestConcurrentUploadsShareOneParse(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkersPerJob: 2, MaxRunningJobs: 4})
	req := SubmitRequest{Bench: uploadText, Name: "tiny", Config: atpg.Config{Workers: 1}}

	const clients = 4
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var first []byte
	for _, id := range ids {
		waitDone(t, ts.URL, id)
		body := getResult(t, ts.URL, id)
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Fatal("concurrent identical uploads returned different bytes")
		}
	}
	stats := getStats(t, ts.URL)
	if stats.CircuitCache.Parses != 1 {
		t.Fatalf("%d clients caused %d parses, want 1", clients, stats.CircuitCache.Parses)
	}
	if stats.CircuitCache.Hits < clients-1 {
		t.Fatalf("circuit cache hits = %d, want >= %d", stats.CircuitCache.Hits, clients-1)
	}

	// A syntactic variant of the same design aliases onto the cached
	// circuit: one more parse, but the same content hash.
	variant := SubmitRequest{
		Bench:  "INPUT(A)\nINPUT(B)\nOUTPUT(Z)\nS = DFF(N1)\nN1 = NAND(A, S)\nZ = AND(N1, B)\n",
		Name:   "tiny",
		Config: atpg.Config{Workers: 1},
	}
	st := postJob(t, ts.URL, variant)
	if want := getStatus(t, ts.URL, ids[0]).CircuitHash; st.CircuitHash != want {
		t.Fatalf("syntactic variant hashed differently: %s vs %s", st.CircuitHash, want)
	}
	waitDone(t, ts.URL, st.ID)
	if !bytes.Equal(getResult(t, ts.URL, st.ID), first) {
		t.Fatal("variant upload diverged (should have replayed the cached result)")
	}
}

// TestCancelMidRunYieldsCommittedPrefix: DELETE on a running job
// returns a coherent partial result whose classified prefix matches the
// uncancelled run fault for fault.
func TestCancelMidRunYieldsCommittedPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("full s641 reference run in -short mode")
	}
	_, ts := newTestServer(t, Options{MaxWorkersPerJob: 2})
	st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s641", Config: atpg.Config{Workers: 2}})

	// Wait until some progress committed, then cancel.
	deadline := time.Now().Add(time.Minute)
	for {
		cur := getStatus(t, ts.URL, st.ID)
		if cur.Done > 0 || cur.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress within a minute")
		}
		time.Sleep(5 * time.Millisecond)
	}
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE returned %d", delResp.StatusCode)
	}

	fin := waitDone(t, ts.URL, st.ID)
	if !fin.Cancelled {
		// The run outpaced the cancel. The result must then be the
		// complete uncancelled one — the prefix property degenerates to
		// full equality against the reference run.
		t.Log("run finished before the cancel landed; checking full equality")
		if !bytes.Equal(getResult(t, ts.URL, st.ID), directRunBytes(t, "s641", atpg.Config{Workers: 2})) {
			t.Fatal("uncancelled result diverged from the reference run")
		}
		return
	}
	var partial atpg.Result
	if err := json.Unmarshal(getResult(t, ts.URL, st.ID), &partial); err != nil {
		t.Fatal(err)
	}
	if fin.Err != context.Canceled.Error() || partial.Err != context.Canceled {
		t.Fatalf("cancelled job err = %q / %v", fin.Err, partial.Err)
	}
	if partial.Pending == 0 {
		t.Log("run finished before the cancel landed; prefix check degenerates to full equality")
	}

	var full atpg.Result
	if err := json.Unmarshal(directRunBytes(t, "s641", atpg.Config{Workers: 2}), &full); err != nil {
		t.Fatal(err)
	}
	for i, fr := range partial.Faults {
		if fr.Status == atpg.StatusPending {
			continue
		}
		if want := full.Faults[i]; fr.Status != want.Status {
			t.Fatalf("%s: partial says %s, full run says %s", fr.Fault, fr.Status, want.Status)
		}
	}
	// The cancelled partial must never poison the results cache.
	again := postJob(t, ts.URL, SubmitRequest{Benchmark: "s641", Config: atpg.Config{Workers: 2}})
	if fin := waitDone(t, ts.URL, again.ID); fin.Cached {
		t.Fatal("partial result was served from the results cache")
	}
}

// TestDeadlineExpiresJob: a tiny timeout_ms yields a done job carrying
// the deadline error and a coherent (possibly empty) committed prefix.
func TestDeadlineExpiresJob(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkersPerJob: 2})
	st := postJob(t, ts.URL, SubmitRequest{
		Benchmark: "s1238",
		Config:    atpg.Config{Workers: 1},
		TimeoutMS: 30,
	})
	fin := waitDone(t, ts.URL, st.ID)
	if fin.Err != context.DeadlineExceeded.Error() {
		t.Fatalf("err = %q, want deadline exceeded", fin.Err)
	}
	var partial atpg.Result
	if err := json.Unmarshal(getResult(t, ts.URL, st.ID), &partial); err != nil {
		t.Fatal(err)
	}
	if partial.Err != context.DeadlineExceeded {
		t.Fatalf("partial.Err = %v", partial.Err)
	}
	if partial.Pending == 0 {
		t.Fatal("30ms deadline on s1238 classified the whole universe — deadline untested")
	}
}

// TestSSEDisconnectDoesNotCancelJob: dropping the event stream leaves
// the job running to completion.
func TestSSEDisconnectDoesNotCancelJob(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkersPerJob: 2})
	st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s298", Config: atpg.Config{Workers: 1}})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	resp.Body.Read(buf) // ensure the stream is live, then drop it
	cancel()
	resp.Body.Close()

	fin := waitDone(t, ts.URL, st.ID)
	if fin.Err != "" || fin.Cancelled {
		t.Fatalf("client disconnect affected the job: %+v", fin)
	}
	var res atpg.Result
	if err := json.Unmarshal(getResult(t, ts.URL, st.ID), &res); err != nil {
		t.Fatal(err)
	}
	if res.Pending != 0 {
		t.Fatalf("job truncated after disconnect: %d pending", res.Pending)
	}
}

// TestLateSubscriberReplaysFullStream: an SSE subscriber arriving after
// completion replays the complete committed stream, then done.
func TestLateSubscriberReplaysFullStream(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkersPerJob: 2})
	st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: atpg.Config{Workers: 1}})
	fin := waitDone(t, ts.URL, st.ID)

	frames := streamEvents(t, ts.URL, st.ID)
	if len(frames) == 0 || frames[len(frames)-1].event != "done" {
		t.Fatal("late subscriber got no terminated stream")
	}
	if got := len(frames) - 1; got != fin.Events {
		t.Fatalf("late replay has %d events, status says %d", got, fin.Events)
	}
}

// TestQueueFullRejects: a single slow runner plus a bounded queue turns
// the next submission into 503.
func TestQueueFullRejects(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxRunningJobs: 1, MaxQueue: 1, MaxWorkersPerJob: 1})
	// One running (slow), one queued, then reject.
	running := postJob(t, ts.URL, SubmitRequest{Benchmark: "s641", Config: atpg.Config{Workers: 1}})
	queued := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: atpg.Config{Workers: 1}})
	if _, code := postJobCode(t, ts.URL, SubmitRequest{Benchmark: "s27"}); code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission returned %d, want 503", code)
	}
	// Cancel the slow job so cleanup is quick; the queued one completes.
	for _, id := range []string{running.ID, queued.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		waitDone(t, ts.URL, id)
	}
}

// TestAPIErrors pins the failure-shape contract: malformed requests are
// 400s with a JSON error, unknown jobs 404, early results 409.
func TestAPIErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkersPerJob: 1})
	for name, req := range map[string]SubmitRequest{
		"both sources":      {Benchmark: "s27", Bench: uploadText},
		"neither source":    {},
		"unknown benchmark": {Benchmark: "s9999"},
		"malformed netlist": {Bench: "Z = FROB(A)\n"},
		"bad config":        {Benchmark: "s27", Config: atpg.Config{Algebra: "bogus"}},
		"negative timeout":  {Benchmark: "s27", TimeoutMS: -1},
	} {
		if _, code := postJobCode(t, ts.URL, req); code != http.StatusBadRequest {
			t.Errorf("%s: returned %d, want 400", name, code)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %d", resp.StatusCode)
	}

	st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s641", Config: atpg.Config{Workers: 1}})
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("early result returned %d, want 409", rr.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	waitDone(t, ts.URL, st.ID)
}

// TestHealthzAndBenchmarks smoke the two discovery endpoints.
func TestHealthzAndBenchmarks(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil || hz.Status != "ok" {
		t.Fatalf("healthz = %+v (%v)", hz, err)
	}

	br, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Body.Close()
	var bl struct {
		Benchmarks []BenchmarkEntry `json:"benchmarks"`
		Families   []string         `json:"families"`
	}
	if err := json.NewDecoder(br.Body).Decode(&bl); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, b := range bl.Benchmarks {
		names[b.Name] = true
	}
	for _, want := range []string{"s27", "s1238", "c17"} {
		if !names[want] {
			t.Errorf("benchmark list missing %s", want)
		}
	}
	if len(bl.Families) == 0 {
		t.Error("no parameterized families listed")
	}
}

// TestQueuedCancelFinishesWithoutRunning: DELETE on a queued job
// finishes it immediately with no result and without occupying a
// runner.
func TestQueuedCancelFinishesWithoutRunning(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxRunningJobs: 1, MaxQueue: 4, MaxWorkersPerJob: 1})
	slow := postJob(t, ts.URL, SubmitRequest{Benchmark: "s641", Config: atpg.Config{Workers: 1}})
	queued := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: atpg.Config{Workers: 1}})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := getStatus(t, ts.URL, queued.ID)
	if fin.State != StateDone || !fin.Cancelled || fin.HasResult {
		t.Fatalf("queued cancel: %+v", fin)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusGone {
		t.Fatalf("result of never-ran job returned %d, want 410", rr.StatusCode)
	}

	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+slow.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitDone(t, ts.URL, slow.ID)
}

// TestEventLogBoundedWindow exercises the drop window directly: a log
// past its limit advances start and reports the gap to a slow reader.
func TestEventLogBoundedWindow(t *testing.T) {
	l := newEventLog(16)
	for i := 0; i < 100; i++ {
		l.append(atpg.Event{Kind: atpg.EventProgress, Done: i + 1, Total: 100})
	}
	l.finish()
	evs, next, dropped, finished, _ := l.from(0)
	if dropped == 0 || !finished {
		t.Fatalf("dropped=%d finished=%v, want gap and finished", dropped, finished)
	}
	if dropped+len(evs) != 100 || next != 100 {
		t.Fatalf("gap %d + window %d != 100 (next %d)", dropped, len(evs), next)
	}
	if last := evs[len(evs)-1]; last.Done != 100 {
		t.Fatalf("window lost the newest event: %+v", last)
	}
	count, done, total := l.progress()
	if count != 100 || done != 100 || total != 100 {
		t.Fatalf("progress = %d %d %d", count, done, total)
	}
}

// TestUploadTooLarge: the body bound turns an oversized netlist into
// 413, not an engine run.
func TestUploadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxUploadBytes: 512})
	big := SubmitRequest{Bench: strings.Repeat("# padding\n", 200) + uploadText}
	body, _ := json.Marshal(big)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload returned %d, want 413", resp.StatusCode)
	}
}

// TestWorkersClamped: Workers 0 (all CPUs) and beyond-cap requests run
// with exactly the per-job cap, visible in the canonical config.
func TestWorkersClamped(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxWorkersPerJob: 3})
	for _, workers := range []int{0, 64} {
		st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: atpg.Config{Workers: workers}})
		if st.Config.Workers != 3 {
			t.Errorf("Workers %d clamped to %d, want 3", workers, st.Config.Workers)
		}
		waitDone(t, ts.URL, st.ID)
	}
	// Negative (force single worker) passes through untouched.
	st := postJob(t, ts.URL, SubmitRequest{Benchmark: "s27", Config: atpg.Config{Workers: -1}})
	if st.Config.Workers != -1 {
		t.Errorf("Workers -1 rewritten to %d", st.Config.Workers)
	}
	waitDone(t, ts.URL, st.ID)
}

var _ = fmt.Sprintf // keep fmt for debugging edits
