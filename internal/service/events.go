package service

import (
	"sync"

	"fogbuster/pkg/atpg"
)

// eventLog is the per-job event buffer between the session drainer and
// any number of SSE subscribers. The drainer appends without ever
// blocking (this is what keeps a slow SSE client from wedging the
// engine's merge loop); subscribers poll by absolute index and park on
// a broadcast channel between appends, so they can simultaneously wait
// for new events and for their client to disconnect.
//
// The log is bounded: past limit events the oldest are discarded in
// chunks and start advances, so a subscriber that fell behind the
// window observes an explicit gap (dropped > 0) instead of silently
// missing events. Progress totals are tracked so job status can report
// done/total without scanning.
type eventLog struct {
	mu       sync.Mutex
	wait     chan struct{} // closed and replaced on every append/finish
	events   []atpg.Event
	start    int // absolute index of events[0]
	limit    int
	finished bool

	done, total int // latest progress event
}

func newEventLog(limit int) *eventLog {
	if limit < 16 {
		limit = 16
	}
	return &eventLog{wait: make(chan struct{}), limit: limit}
}

// append adds one event and wakes every parked subscriber.
func (l *eventLog) append(ev atpg.Event) {
	l.mu.Lock()
	if ev.Kind == atpg.EventProgress {
		l.done, l.total = ev.Done, ev.Total
	}
	l.events = append(l.events, ev)
	if len(l.events) > l.limit {
		// Drop a quarter of the window at once so the copy amortizes.
		drop := l.limit / 4
		if drop < 1 {
			drop = 1
		}
		l.start += drop
		l.events = append(l.events[:0:0], l.events[drop:]...)
	}
	close(l.wait)
	l.wait = make(chan struct{})
	l.mu.Unlock()
}

// finish marks the stream complete and wakes every parked subscriber.
func (l *eventLog) finish() {
	l.mu.Lock()
	l.finished = true
	close(l.wait)
	l.wait = make(chan struct{})
	l.mu.Unlock()
}

// from returns the events at absolute index i and later, the next index
// to resume from, how many events before i fell out of the bounded
// window (0 when none), whether the stream is complete, and the channel
// that closes on the next append/finish. The returned slice is a stable
// snapshot: elements already appended are never mutated.
func (l *eventLog) from(i int) (evs []atpg.Event, next int, dropped int, finished bool, wait <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < l.start {
		dropped = l.start - i
		i = l.start
	}
	end := l.start + len(l.events)
	if i < end {
		evs = l.events[i-l.start:]
	}
	return evs, end, dropped, l.finished, l.wait
}

// progress returns the absolute event count and the latest done/total.
func (l *eventLog) progress() (events, done, total int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.start + len(l.events), l.done, l.total
}
