package netlist

import "fmt"

// Builder constructs circuits programmatically. Signals may be referenced
// before they are defined; names are resolved in Build. The zero Builder is
// not usable; call NewBuilder.
type Builder struct {
	name    string
	inputs  []string
	outputs []string
	gates   []builderGate
	defined map[string]bool
	err     error
}

type builderGate struct {
	name  string
	typ   GateType
	fanin []string
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, defined: make(map[string]bool)}
}

// Input declares a primary input signal.
func (b *Builder) Input(name string) {
	b.define(name)
	b.inputs = append(b.inputs, name)
}

// Output marks an existing or future signal as a primary output.
func (b *Builder) Output(name string) {
	b.outputs = append(b.outputs, name)
}

// Gate defines a gate (or DFF) named name computing typ over fanin signals.
func (b *Builder) Gate(name string, typ GateType, fanin ...string) {
	if typ == Input {
		b.Input(name)
		return
	}
	b.define(name)
	b.gates = append(b.gates, builderGate{name: name, typ: typ, fanin: fanin})
}

// DFF defines a flip-flop whose output is name and whose D input is d.
func (b *Builder) DFF(name, d string) { b.Gate(name, DFF, d) }

func (b *Builder) define(name string) {
	if b.defined[name] {
		if b.err == nil {
			b.err = fmt.Errorf("netlist: %s: signal %q defined twice", b.name, name)
		}
		return
	}
	b.defined[name] = true
}

// Build resolves all names and returns the finished circuit.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	c := &Circuit{
		Name:   b.name,
		byName: make(map[string]NodeID, len(b.inputs)+len(b.gates)),
	}
	add := func(name string, typ GateType) NodeID {
		id := NodeID(len(c.Nodes))
		c.Nodes = append(c.Nodes, Node{ID: id, Name: name, Type: typ})
		c.byName[name] = id
		return id
	}
	for _, in := range b.inputs {
		c.PIs = append(c.PIs, add(in, Input))
	}
	for _, g := range b.gates {
		id := add(g.name, g.typ)
		if g.typ == DFF {
			c.DFFs = append(c.DFFs, id)
		}
	}
	for _, g := range b.gates {
		id := c.byName[g.name]
		for _, f := range g.fanin {
			fid, ok := c.byName[f]
			if !ok {
				return nil, fmt.Errorf("netlist: %s: %q uses undefined signal %q", b.name, g.name, f)
			}
			c.Nodes[id].Fanin = append(c.Nodes[id].Fanin, fid)
		}
	}
	for _, out := range b.outputs {
		id, ok := c.byName[out]
		if !ok {
			return nil, fmt.Errorf("netlist: %s: OUTPUT(%s) references undefined signal", b.name, out)
		}
		if !c.Nodes[id].IsPO {
			c.Nodes[id].IsPO = true
			c.POs = append(c.POs, id)
		}
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	return c, nil
}
