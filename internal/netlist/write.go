package netlist

import (
	"fmt"
	"strings"
)

// Bench renders the circuit back to ISCAS'89 .bench format. Parsing the
// result yields a structurally identical circuit.
func (c *Circuit) Bench() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", c.Name)
	fmt.Fprintf(&sb, "# %d inputs, %d outputs, %d flip-flops, %d gates\n",
		len(c.PIs), len(c.POs), len(c.DFFs), c.NumGates())
	for _, pi := range c.PIs {
		fmt.Fprintf(&sb, "INPUT(%s)\n", c.Nodes[pi].Name)
	}
	for _, po := range c.POs {
		fmt.Fprintf(&sb, "OUTPUT(%s)\n", c.Nodes[po].Name)
	}
	for _, ff := range c.DFFs {
		n := &c.Nodes[ff]
		fmt.Fprintf(&sb, "%s = DFF(%s)\n", n.Name, c.Nodes[n.Fanin[0]].Name)
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if !n.Type.IsGate() {
			continue
		}
		names := make([]string, len(n.Fanin))
		for j, f := range n.Fanin {
			names[j] = c.Nodes[f].Name
		}
		fmt.Fprintf(&sb, "%s = %s(%s)\n", n.Name, n.Type, strings.Join(names, ", "))
	}
	return sb.String()
}
