package netlist

import "fmt"

// Stats summarizes the size of a circuit, including the fault-universe
// quantities used by the paper's Table 3 (lines = stems + fanout branches;
// delay faults = 2 * lines).
type Stats struct {
	Name     string
	PIs      int
	POs      int
	DFFs     int
	Gates    int // combinational gates (incl. NOT/BUF)
	Stems    int
	Branches int
	Lines    int // Stems + Branches
	MaxLevel int
}

// NumGates returns the number of combinational gates.
func (c *Circuit) NumGates() int {
	n := 0
	for i := range c.Nodes {
		if c.Nodes[i].Type.IsGate() {
			n++
		}
	}
	return n
}

// Stats computes size statistics for the circuit.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Name:     c.Name,
		PIs:      len(c.PIs),
		POs:      len(c.POs),
		DFFs:     len(c.DFFs),
		Gates:    c.NumGates(),
		Stems:    len(c.Nodes),
		MaxLevel: int(c.MaxLevel()),
	}
	for i := range c.Nodes {
		if f := c.GateFanout(NodeID(i)); f >= 2 {
			s.Branches += f
		}
	}
	s.Lines = s.Stems + s.Branches
	return s
}

// String formats the statistics on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: pi=%d po=%d dff=%d gates=%d stems=%d branches=%d lines=%d depth=%d faults=%d",
		s.Name, s.PIs, s.POs, s.DFFs, s.Gates, s.Stems, s.Branches, s.Lines, s.MaxLevel, 2*s.Lines)
}
