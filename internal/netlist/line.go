package netlist

import "fmt"

// StemBranch marks a Line as the stem (the node output itself) rather than
// one of its fanout branches.
const StemBranch = -1

// Line identifies a physical circuit line: either the stem of a node's
// output signal, or one specific fanout branch of it. Under the paper's
// gate delay fault model every stem and every fanout branch of a stem with
// two or more fanouts is a distinct fault site.
type Line struct {
	Node   NodeID
	Branch int // StemBranch, or an index into Node.Fanout
}

// Stem returns the stem line of node id.
func Stem(id NodeID) Line { return Line{Node: id, Branch: StemBranch} }

// IsStem reports whether the line is a stem.
func (l Line) IsStem() bool { return l.Branch == StemBranch }

// String formats the line using circuit-independent IDs. Use
// Circuit.LineName for the named form.
func (l Line) String() string {
	if l.IsStem() {
		return fmt.Sprintf("n%d", l.Node)
	}
	return fmt.Sprintf("n%d.b%d", l.Node, l.Branch)
}

// LineName renders a line with signal names: "G8" for a stem, "G8->G15"
// for the branch of G8 that feeds G15.
func (c *Circuit) LineName(l Line) string {
	n := c.Node(l.Node)
	if l.IsStem() {
		return n.Name
	}
	if l.Branch < 0 || l.Branch >= len(n.Fanout) {
		return fmt.Sprintf("%s->?%d", n.Name, l.Branch)
	}
	return fmt.Sprintf("%s->%s", n.Name, c.Node(n.Fanout[l.Branch]).Name)
}

// GateFanout returns the node's consumers excluding flip-flops. Like
// primary outputs, flip-flop D inputs are observation ports rather than
// fanout branches: the paper's s27 fault total (50 = 2 x 25 lines) only
// works out if the G11->DFF connection is not a branch fault site.
func (c *Circuit) GateFanout(id NodeID) int {
	n := 0
	for _, f := range c.Nodes[id].Fanout {
		if c.Nodes[f].Type != DFF {
			n++
		}
	}
	return n
}

// Lines enumerates every fault site of the circuit: one stem per node,
// plus one branch per gate-feeding fanout connection for nodes driving two
// or more gate inputs. This reproduces the paper's fault universe; for s27
// it yields 25 lines (17 stems + 8 branches), i.e. 50 delay faults.
func (c *Circuit) Lines() []Line {
	var lines []Line
	for i := range c.Nodes {
		n := &c.Nodes[i]
		lines = append(lines, Stem(n.ID))
		if c.GateFanout(n.ID) >= 2 {
			for b, f := range n.Fanout {
				if c.Nodes[f].Type != DFF {
					lines = append(lines, Line{Node: n.ID, Branch: b})
				}
			}
		}
	}
	return lines
}

// NumLines returns len(c.Lines()) without allocating.
func (c *Circuit) NumLines() int {
	total := 0
	for i := range c.Nodes {
		total++
		if f := c.GateFanout(NodeID(i)); f >= 2 {
			total += f
		}
	}
	return total
}
