// Package netlist provides the structural circuit substrate for the
// delay-fault ATPG system: a gate-level netlist model of synchronous
// sequential circuits in the finite state machine form of the paper's
// Figure 1 (a combinational block plus a state register of D flip-flops),
// an ISCAS'89 .bench reader and writer, levelization, validation and
// line/branch enumeration.
//
// Terminology follows the paper: PI/PO are primary inputs/outputs, PPI is a
// pseudo primary input (a flip-flop output feeding the combinational block)
// and PPO is a pseudo primary output (the D input of a flip-flop).
package netlist

import (
	"fmt"
	"sort"
)

// NodeID identifies a node (signal) within a Circuit. IDs are dense indices
// into Circuit.Nodes.
type NodeID int32

// None is the invalid NodeID.
const None NodeID = -1

// GateType enumerates the node kinds of a .bench netlist. Input and DFF are
// structural (they have no combinational function); the rest are gates.
type GateType uint8

// Node kinds. The zero value is Input so that a zeroed Node is harmless.
const (
	Input GateType = iota // primary input
	DFF                   // D flip-flop; Fanin[0] is the D (PPO) signal
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
)

var gateNames = [...]string{
	Input: "INPUT", DFF: "DFF", Buf: "BUFF", Not: "NOT",
	And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
}

// String returns the .bench spelling of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// IsGate reports whether the type is a combinational gate (not Input/DFF).
func (t GateType) IsGate() bool { return t != Input && t != DFF }

// Inverting reports whether the gate type inverts its AND/OR/XOR core.
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// Node is one signal source in the circuit: a primary input, a flip-flop
// output, or a gate output. Its output signal carries the node's name.
type Node struct {
	ID     NodeID
	Name   string
	Type   GateType
	Fanin  []NodeID // driving nodes, in gate-input order
	Fanout []NodeID // consuming nodes; one entry per connection
	IsPO   bool     // the node's output is a primary output
	Level  int32    // combinational level; PIs and DFF outputs are level 0
}

// Circuit is an immutable gate-level netlist. Build one with Parse or
// Builder; do not mutate Nodes after construction.
type Circuit struct {
	Name  string
	Nodes []Node

	PIs  []NodeID // primary inputs, in declaration order
	POs  []NodeID // nodes whose output is a primary output
	DFFs []NodeID // flip-flops, in declaration order

	byName map[string]NodeID
	order  []NodeID // gates only, topologically sorted by Level
}

// Node returns the node with the given ID. It panics on an invalid ID,
// which always indicates a programming error.
func (c *Circuit) Node(id NodeID) *Node { return &c.Nodes[id] }

// Lookup returns the node named name, or nil.
func (c *Circuit) Lookup(name string) *Node {
	id, ok := c.byName[name]
	if !ok {
		return nil
	}
	return &c.Nodes[id]
}

// LookupID returns the NodeID for name, or None.
func (c *Circuit) LookupID(name string) NodeID {
	id, ok := c.byName[name]
	if !ok {
		return None
	}
	return id
}

// NumNodes returns the total node count (PIs + DFFs + gates).
func (c *Circuit) NumNodes() int { return len(c.Nodes) }

// GateOrder returns the combinational gates in topological order: every
// gate appears after all of its fanin gates. PIs and DFF outputs are the
// sources and do not appear.
func (c *Circuit) GateOrder() []NodeID { return c.order }

// PPIs returns the pseudo primary inputs (the DFF output nodes). In this
// model the DFF node itself is the PPI signal.
func (c *Circuit) PPIs() []NodeID { return c.DFFs }

// PPOs returns the pseudo primary outputs: the D-input signals of the DFFs,
// in DFF declaration order.
func (c *Circuit) PPOs() []NodeID {
	ppos := make([]NodeID, len(c.DFFs))
	for i, ff := range c.DFFs {
		ppos[i] = c.Nodes[ff].Fanin[0]
	}
	return ppos
}

// finish computes fanout lists, levels and the topological gate order, and
// validates structural sanity. It is called by Parse and Builder.Build.
func (c *Circuit) finish() error {
	// Fanout lists: one entry per connection, so a gate reading the same
	// signal twice contributes two branches.
	for i := range c.Nodes {
		c.Nodes[i].Fanout = c.Nodes[i].Fanout[:0]
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		for _, in := range n.Fanin {
			if in < 0 || int(in) >= len(c.Nodes) {
				return fmt.Errorf("netlist: %s: node %q has invalid fanin", c.Name, n.Name)
			}
			c.Nodes[in].Fanout = append(c.Nodes[in].Fanout, n.ID)
		}
	}
	// Arity checks.
	for i := range c.Nodes {
		n := &c.Nodes[i]
		switch n.Type {
		case Input:
			if len(n.Fanin) != 0 {
				return fmt.Errorf("netlist: %s: input %q has fanin", c.Name, n.Name)
			}
		case DFF, Buf, Not:
			if len(n.Fanin) != 1 {
				return fmt.Errorf("netlist: %s: %s %q needs exactly 1 fanin, has %d",
					c.Name, n.Type, n.Name, len(n.Fanin))
			}
		default:
			if len(n.Fanin) < 2 {
				return fmt.Errorf("netlist: %s: %s %q needs at least 2 fanins, has %d",
					c.Name, n.Type, n.Name, len(n.Fanin))
			}
		}
	}
	return c.levelize()
}

// levelize assigns combinational levels (sources at 0) and computes the
// topological gate order. It rejects combinational cycles.
func (c *Circuit) levelize() error {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]uint8, len(c.Nodes))
	c.order = c.order[:0]

	var visit func(id NodeID) error
	visit = func(id NodeID) error {
		n := &c.Nodes[id]
		if n.Type == Input || n.Type == DFF {
			// Sources break sequential cycles: a DFF's D input is justified
			// in the previous time frame, not combinationally.
			n.Level = 0
			state[id] = done
			return nil
		}
		switch state[id] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("netlist: %s: combinational cycle through %q", c.Name, n.Name)
		}
		state[id] = visiting
		lvl := int32(0)
		for _, in := range n.Fanin {
			if err := visit(in); err != nil {
				return err
			}
			if l := c.Nodes[in].Level; l+1 > lvl {
				lvl = l + 1
			}
		}
		n.Level = lvl
		state[id] = done
		c.order = append(c.order, id)
		return nil
	}
	for i := range c.Nodes {
		if err := visit(NodeID(i)); err != nil {
			return err
		}
	}
	// A DFS postorder is already topological; additionally sort by level to
	// make evaluation order deterministic and cache-friendly.
	sort.SliceStable(c.order, func(i, j int) bool {
		return c.Nodes[c.order[i]].Level < c.Nodes[c.order[j]].Level
	})
	return nil
}

// LevelOffsets returns the level-bucket boundaries of GateOrder: the
// gates at combinational level l (1-based; level 0 holds the sources,
// which are not in the order) are GateOrder()[off[l]:off[l+1]]. The
// returned slice has MaxLevel()+2 entries so the indexing is total.
// Event-driven simulation (internal/sim) uses the buckets as the
// worklist levels of its selective-trace kernel.
func (c *Circuit) LevelOffsets() []int32 {
	max := c.MaxLevel()
	off := make([]int32, max+2)
	for _, id := range c.order {
		off[c.Nodes[id].Level+1]++
	}
	for l := int32(1); l < max+2; l++ {
		off[l] += off[l-1]
	}
	return off
}

// MaxLevel returns the deepest combinational level in the circuit.
func (c *Circuit) MaxLevel() int32 {
	var m int32
	for i := range c.Nodes {
		if c.Nodes[i].Level > m {
			m = c.Nodes[i].Level
		}
	}
	return m
}
