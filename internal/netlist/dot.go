package netlist

import (
	"fmt"
	"strings"
)

// Dot renders the circuit in Graphviz dot format: inputs as triangles,
// flip-flops as boxes, gates as ellipses labelled with their function,
// primary outputs double-circled.
func (c *Circuit) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", c.Name)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		shape, label := "ellipse", fmt.Sprintf("%s\\n%s", n.Name, n.Type)
		switch n.Type {
		case Input:
			shape, label = "triangle", n.Name
		case DFF:
			shape = "box"
		}
		peripheries := 1
		if n.IsPO {
			peripheries = 2
		}
		fmt.Fprintf(&sb, "  n%d [shape=%s peripheries=%d label=\"%s\"];\n", n.ID, shape, peripheries, label)
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		for _, in := range n.Fanin {
			style := ""
			if n.Type == DFF {
				style = " [style=dashed]" // the sequential boundary
			}
			fmt.Fprintf(&sb, "  n%d -> n%d%s;\n", in, n.ID, style)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
