package netlist_test

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/netlist"
)

// TestBenchRoundTripStats pins the writer against the parser for every
// internal/bench circuit: rendering a circuit to .bench and parsing it
// back yields identical statistics (and therefore the identical fault
// universe), and the rendering is a fixpoint.
func TestBenchRoundTripStats(t *testing.T) {
	circuits := []*netlist.Circuit{bench.NewS27(), bench.NewC17(),
		bench.RippleCarryAdder(8), bench.ShiftRegister(16)}
	for _, p := range bench.Profiles {
		circuits = append(circuits, p.Circuit())
	}
	for _, c := range circuits {
		src := c.Bench()
		rt, err := netlist.Parse(c.Name, src)
		if err != nil {
			t.Errorf("%s: re-parse failed: %v", c.Name, err)
			continue
		}
		if got, want := rt.Stats(), c.Stats(); got != want {
			t.Errorf("%s: stats changed across Write -> parse:\n got %v\nwant %v", c.Name, got, want)
		}
		if again := rt.Bench(); again != src {
			t.Errorf("%s: Bench() is not a fixpoint across re-parse", c.Name)
		}
	}
}
