package netlist

import (
	"fmt"
	"strings"
)

// Parse reads a circuit in ISCAS'89 .bench format:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G5 = DFF(G10)
//	G8 = AND(G14, G6)
//
// Gate names are case-insensitive; BUF and BUFF are synonyms. Signals may
// be referenced before definition (two-pass resolution), as is usual for
// DFF feedback in the ISCAS'89 benchmarks.
func Parse(name, src string) (*Circuit, error) {
	b := NewBuilder(name)
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT"):
			arg, err := parseUnary(line, "INPUT")
			if err != nil {
				return nil, fmt.Errorf("netlist: %s:%d: %v", name, lineNo, err)
			}
			b.Input(arg)
		case hasPrefixFold(line, "OUTPUT"):
			arg, err := parseUnary(line, "OUTPUT")
			if err != nil {
				return nil, fmt.Errorf("netlist: %s:%d: %v", name, lineNo, err)
			}
			b.Output(arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("netlist: %s:%d: cannot parse %q", name, lineNo, raw)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.IndexByte(rhs, '(')
			close := strings.LastIndexByte(rhs, ')')
			if lhs == "" || open <= 0 || close < open {
				return nil, fmt.Errorf("netlist: %s:%d: cannot parse %q", name, lineNo, raw)
			}
			gt, ok := gateTypeByName(strings.TrimSpace(rhs[:open]))
			if !ok {
				return nil, fmt.Errorf("netlist: %s:%d: unknown gate type %q", name, lineNo, rhs[:open])
			}
			var fanin []string
			for _, f := range strings.Split(rhs[open+1:close], ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return nil, fmt.Errorf("netlist: %s:%d: empty fanin in %q", name, lineNo, raw)
				}
				fanin = append(fanin, f)
			}
			b.Gate(lhs, gt, fanin...)
		}
	}
	return b.Build()
}

func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	if !strings.EqualFold(s[:len(prefix)], prefix) {
		return false
	}
	rest := strings.TrimSpace(s[len(prefix):])
	return strings.HasPrefix(rest, "(")
}

func parseUnary(line, kw string) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", fmt.Errorf("malformed %s declaration %q", kw, line)
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", fmt.Errorf("empty %s declaration %q", kw, line)
	}
	return arg, nil
}

func gateTypeByName(s string) (GateType, bool) {
	switch strings.ToUpper(s) {
	case "DFF":
		return DFF, true
	case "BUF", "BUFF":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	}
	return 0, false
}
