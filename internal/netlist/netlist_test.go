package netlist

import (
	"strings"
	"testing"
)

const s27Src = `
# s27 (exact ISCAS'89 netlist)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func parseS27(t *testing.T) *Circuit {
	t.Helper()
	c, err := Parse("s27", s27Src)
	if err != nil {
		t.Fatalf("Parse(s27): %v", err)
	}
	return c
}

// TestS27Stats pins the fault-universe arithmetic against the paper: s27
// has 39 tested + 11 untestable = 50 delay faults, i.e. 25 lines.
func TestS27Stats(t *testing.T) {
	c := parseS27(t)
	s := c.Stats()
	if s.PIs != 4 || s.POs != 1 || s.DFFs != 3 || s.Gates != 10 {
		t.Fatalf("structure: %+v", s)
	}
	if s.Stems != 17 || s.Branches != 8 || s.Lines != 25 {
		t.Fatalf("lines: %+v (want 17 stems, 8 branches, 25 lines)", s)
	}
	if got := c.NumLines(); got != 25 {
		t.Fatalf("NumLines = %d, want 25", got)
	}
	if got := len(c.Lines()); got != 25 {
		t.Fatalf("len(Lines) = %d, want 25", got)
	}
}

func TestS27Structure(t *testing.T) {
	c := parseS27(t)
	g8 := c.Lookup("G8")
	if g8 == nil || g8.Type != And || len(g8.Fanin) != 2 {
		t.Fatalf("G8 malformed: %+v", g8)
	}
	if len(g8.Fanout) != 2 {
		t.Fatalf("G8 fanout = %d, want 2", len(g8.Fanout))
	}
	if c.Lookup("G5").Type != DFF {
		t.Fatal("G5 should be a DFF")
	}
	ppos := c.PPOs()
	if len(ppos) != 3 {
		t.Fatalf("PPOs = %d, want 3", len(ppos))
	}
	wantPPO := map[string]bool{"G10": true, "G11": true, "G13": true}
	for _, id := range ppos {
		if !wantPPO[c.Node(id).Name] {
			t.Errorf("unexpected PPO %s", c.Node(id).Name)
		}
	}
	// Levelization: G8 depends on G14 (level 1), so G8 is level 2.
	if l := c.Lookup("G14").Level; l != 1 {
		t.Errorf("G14 level = %d, want 1", l)
	}
	if l := g8.Level; l != 2 {
		t.Errorf("G8 level = %d, want 2", l)
	}
	// Topological order covers all 10 gates and respects fanin order.
	order := c.GateOrder()
	if len(order) != 10 {
		t.Fatalf("gate order has %d entries, want 10", len(order))
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range order {
		for _, in := range c.Node(id).Fanin {
			if inn := c.Node(in); inn.Type.IsGate() && pos[in] >= pos[id] {
				t.Errorf("order violation: %s before %s", c.Node(id).Name, inn.Name)
			}
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c := parseS27(t)
	c2, err := Parse("s27rt", c.Bench())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	s1, s2 := c.Stats(), c2.Stats()
	s1.Name, s2.Name = "", ""
	if s1 != s2 {
		t.Fatalf("round trip changed stats:\n%+v\n%+v", s1, s2)
	}
	for i := range c.Nodes {
		n := &c.Nodes[i]
		m := c2.Lookup(n.Name)
		if m == nil || m.Type != n.Type || len(m.Fanin) != len(n.Fanin) {
			t.Fatalf("node %s differs after round trip", n.Name)
		}
	}
}

func TestLineNames(t *testing.T) {
	c := parseS27(t)
	g8 := c.LookupID("G8")
	if got := c.LineName(Stem(g8)); got != "G8" {
		t.Errorf("stem name = %q", got)
	}
	branch := Line{Node: g8, Branch: 0}
	name := c.LineName(branch)
	if name != "G8->G15" && name != "G8->G16" {
		t.Errorf("branch name = %q", name)
	}
	if Stem(g8).IsStem() != true || branch.IsStem() {
		t.Error("IsStem broken")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown gate":  "a = FROB(b)\nINPUT(b)\n",
		"undefined sig": "INPUT(a)\nc = AND(a, b)\n",
		"redefined":     "INPUT(a)\na = NOT(a)\n",
		"bad arity not": "INPUT(a)\nINPUT(b)\nc = NOT(a, b)\n",
		"bad arity and": "INPUT(a)\nc = AND(a)\n",
		"garbage":       "this is not bench\n",
		"empty fanin":   "INPUT(a)\nc = AND(a, )\n",
		"bad output":    "INPUT(a)\nOUTPUT(zz)\nb = NOT(a)\n",
		"comb cycle":    "INPUT(a)\nx = AND(a, y)\ny = AND(a, x)\nOUTPUT(y)\n",
	}
	for name, src := range cases {
		if _, err := Parse(name, src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseTolerance(t *testing.T) {
	src := "  input ( a ) \n b=not( a )# trailing comment\nOUTPUT(b)\r\n"
	c, err := Parse("tolerant", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(c.PIs) != 1 || len(c.POs) != 1 || c.NumGates() != 1 {
		t.Fatalf("structure: %v", c.Stats())
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	// DFFs break cycles: a classic feedback latch structure must parse.
	src := `
INPUT(en)
OUTPUT(q)
s = DFF(d)
d = AND(en, nq)
nq = NOT(s)
q = BUFF(s)
`
	c, err := Parse("loop", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Lookup("s").Level != 0 {
		t.Error("DFF output should be level 0")
	}
}

func TestBuilderDuplicateFanin(t *testing.T) {
	b := NewBuilder("dup")
	b.Input("a")
	b.Gate("x", And, "a", "a")
	b.Output("x")
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The same signal used twice yields two fanout branches.
	if got := len(c.Lookup("a").Fanout); got != 2 {
		t.Fatalf("fanout of a = %d, want 2", got)
	}
	if s := c.Stats(); s.Branches != 2 || s.Lines != 4 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestStatsString(t *testing.T) {
	c := parseS27(t)
	s := c.Stats().String()
	for _, want := range []string{"pi=4", "dff=3", "lines=25", "faults=50"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String() = %q missing %q", s, want)
		}
	}
}

func TestDotExport(t *testing.T) {
	c := parseS27(t)
	dot := c.Dot()
	for _, want := range []string{"digraph \"s27\"", "rankdir=LR", "triangle", "shape=box", "peripheries=2", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// One edge per connection: total fanin count.
	edges := strings.Count(dot, " -> ")
	wantEdges := 0
	for i := range c.Nodes {
		wantEdges += len(c.Nodes[i].Fanin)
	}
	if edges != wantEdges {
		t.Errorf("dot edges = %d, want %d", edges, wantEdges)
	}
}
