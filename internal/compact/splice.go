package compact

import (
	"math/rand"

	"fogbuster/internal/core"
	"fogbuster/internal/faults"
	"fogbuster/internal/fausim"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
	"fogbuster/internal/tdsim"
)

// spliceAdjacent overlap-merges disjoint adjacent pairs of kept
// sequences: when the last k propagation frames of sequence A are
// three-valued-compatible with the first k synchronization frames of
// the next kept sequence B, the two sequences can share those frames if
// B is applied immediately after A. Each accepted splice shortens B's
// synchronization prefix by k vectors. Pairs are disjoint (an accepted
// splice consumes both sequences), so every confirmation is local to
// one pair and the walk stays deterministic.
func spliceAdjacent(c *netlist.Circuit, sum *core.Summary, kept []int, assigned map[int][]faults.Delay, opts Options, alg *logic.Algebra, stats *core.CompactionStats) {
	net := sim.NewNet(c)
	td := tdsim.New(net, alg)
	td.SetFullEval(opts.FullEval)
	ap := &applier{net: net, td: td}
	for k := 0; k+1 < len(kept); k++ {
		a := sum.Results[kept[k]].Seq
		b := sum.Results[kept[k+1]].Seq
		if saved := ap.trySplice(a, b, assigned[kept[k]], assigned[kept[k+1]], pairSeed(opts.Seed, k)); saved > 0 {
			stats.Splices++
			stats.SplicedFrames += saved
			k++
		}
	}
}

// pairSeed derives a deterministic confirmation-fill seed per pair
// (splitmix64 finalizer, like the engine's per-fault seed).
func pairSeed(seed int64, pair int) int64 {
	z := uint64(seed) ^ 0xC09DEAD5 ^ 0x9E3779B97F4A7C15*(uint64(pair)+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// applier replays candidate splices on the concrete simulators.
type applier struct {
	net      *sim.Net
	td       *tdsim.Sim
	verdicts []bool // ConfirmBatch scratch
}

// trySplice attempts the widest acceptable overlap between A's
// propagation tail and B's synchronization head, mutating both
// sequences on success and returning the number of vectors saved.
func (ap *applier) trySplice(a, b *core.TestSequence, coverA, coverB []faults.Delay, seed int64) int {
	max := len(a.Prop)
	if len(b.Sync) < max {
		max = len(b.Sync)
	}
	for k := max; k >= 1; k-- {
		merged, ok := mergeFrames(a.Prop[len(a.Prop)-k:], b.Sync[:k])
		if !ok {
			continue
		}
		if ap.confirmPair(a, b, merged, k, coverA, coverB, seed) {
			copy(a.Prop[len(a.Prop)-k:], merged)
			b.Sync = b.Sync[k:]
			fault := a.Fault
			b.Follows = &fault
			return k
		}
	}
	return 0
}

// mergeFrames merges two equally long frame windows position by
// position: values agree, or one side is X and adopts the other. A hard
// conflict rejects the window.
func mergeFrames(x, y [][]sim.V3) ([][]sim.V3, bool) {
	out := make([][]sim.V3, len(x))
	for i := range x {
		vec := make([]sim.V3, len(x[i]))
		for j := range vec {
			xv, yv := x[i][j], y[i][j]
			switch {
			case xv == yv:
				vec[j] = xv
			case xv == sim.X:
				vec[j] = yv
			case yv == sim.X:
				vec[j] = xv
			default:
				return nil, false
			}
		}
		out[i] = vec
	}
	return out, true
}

// confirmPair checks a candidate splice exactly: under one
// deterministic concrete fill, every fault assigned to A must still be
// detected with A's propagation tail replaced by the merged frames, and
// every fault assigned to B must be detected when B (with its
// synchronization prefix cut) runs from the machine state A leaves
// behind.
func (ap *applier) confirmPair(a, b *core.TestSequence, merged [][]sim.V3, k int, coverA, coverB []faults.Delay, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	propA := make([][]sim.V3, 0, len(a.Prop))
	propA = append(propA, a.Prop[:len(a.Prop)-k]...)
	propA = append(propA, merged...)
	ffA, after := ap.frame(a, a.Sync, nil, propA, rng)
	if !ap.confirmAll(ffA, coverA) {
		return false
	}
	ffB, _ := ap.frame(b, b.Sync[k:], after, b.Prop, rng)
	return ap.confirmAll(ffB, coverB)
}

// frame builds the concrete two-frame situation of one sequence the way
// the engine's fault simulation phase does (core.fastFrame), but from an
// explicit entry state when the sequence runs mid-program, and returns
// the good-machine state after the sequence's last frame as well.
func (ap *applier) frame(seq *core.TestSequence, syncFrames [][]sim.V3, entry []sim.V3, prop [][]sim.V3, rng *rand.Rand) (*tdsim.FastFrame, []sim.V3) {
	nFF := len(ap.net.C.DFFs)
	state := make([]sim.V3, nFF)
	if entry != nil {
		copy(state, entry)
	} else {
		for i := range state {
			if seq.Assumed != nil && seq.Assumed[i].Known() {
				state[i] = seq.Assumed[i]
			} else {
				state[i] = sim.V3(rng.Intn(2))
			}
		}
	}
	syncV := fausim.FillSequence(syncFrames, rng)
	if len(syncV) > 0 {
		steps := ap.net.SeqSim3(state, syncV)
		state = steps[len(steps)-1].State
	}
	fillState(state, rng)
	v1 := sim.XFill(seq.V1, rng)
	v2 := sim.XFill(seq.V2, rng)
	f1 := ap.net.LoadFrame(v1, state)
	ap.net.Eval3(f1, nil)
	s1 := ap.net.NextState3(f1, nil)
	fillState(s1, rng)
	ff := &tdsim.FastFrame{V1: v1, V2: v2, S0: state, S1: s1, Prop: fausim.FillSequence(prop, rng)}

	// Advance the good machine from the captured (filled) state s1
	// through the fast frame and the propagation frames for the state
	// handed to the next sequence.
	after := s1
	for _, vec := range append([][]sim.V3{v2}, ff.Prop...) {
		fv := ap.net.LoadFrame(vec, after)
		ap.net.Eval3(fv, nil)
		after = ap.net.NextState3(fv, nil)
	}
	fillState(after, rng)
	return ff, after
}

// fillState replaces X state bits with deterministic random values, the
// same treatment core.fastFrame applies before the fast frame.
func fillState(state []sim.V3, rng *rand.Rand) {
	for i, v := range state {
		if v == sim.X {
			state[i] = sim.V3(rng.Intn(2))
		}
	}
}

// confirmAll runs the exact eight-valued confirmation for every fault
// in the cover against the concrete frame, on the word-parallel path
// (64 faults per machine word; verdicts are bit-identical to scalar
// tdsim.Confirm, so acceptance decisions are unchanged).
func (ap *applier) confirmAll(ff *tdsim.FastFrame, cover []faults.Delay) bool {
	vals := ap.td.Values(ff)
	ppos := ap.net.C.PPOs()
	goodS2 := make([]sim.V3, len(ppos))
	for i, ppo := range ppos {
		goodS2[i] = sim.V3(vals[ppo].Final())
	}
	if cap(ap.verdicts) < len(cover) {
		ap.verdicts = make([]bool, len(cover))
	}
	out := ap.verdicts[:len(cover)]
	ap.td.ConfirmBatch(ff, vals, goodS2, cover, out)
	for _, ok := range out {
		if !ok {
			return false
		}
	}
	return true
}
