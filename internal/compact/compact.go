// Package compact performs test-set compaction over a finished core
// run. Two phases shrink the set without losing a single detected
// fault:
//
//  1. Reverse-order drop: the explicit sequences are re-examined in
//     reverse generation order against the detection sets the engine
//     recorded (TestSequence.Detects, written under Options.Compact). A
//     sequence whose every covered fault is already covered by a
//     later-kept sequence is dropped — the classic reverse-order fault
//     simulation argument: late sequences were generated for hard
//     faults and tend to detect the easy targets of early sequences.
//  2. Overlap merge: adjacent kept sequences are spliced pairwise where
//     the tail of the first sequence's propagation frames is
//     three-valued-compatible with the head of the second sequence's
//     synchronization frames. A splice is accepted only after exact
//     eight-valued re-confirmation (tdsim.Confirm) of every fault
//     assigned to either sequence under a deterministic concrete fill,
//     with the second sequence's frames evaluated from the machine
//     state the first sequence leaves behind.
//
// Both phases are deterministic functions of the Summary and the seed,
// so a compacted Summary inherits the engine's
// bit-identical-at-every-worker-count contract (§4 of DESIGN.md).
package compact

import (
	"fogbuster/internal/core"
	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
)

// Options configures Apply.
type Options struct {
	// Algebra must match the algebra of the run; nil means logic.Robust.
	Algebra *logic.Algebra
	// Seed drives the deterministic X-fill of the splice confirmations;
	// pass the run's Options.Seed.
	Seed int64
	// DisableSplice turns off the overlap-merge phase, leaving the
	// reverse-order drop only.
	DisableSplice bool
	// FullEval forces the splice re-confirmations onto the full
	// levelized walks (the reference oracle); pass the run's
	// Options.FullEval. Acceptance decisions are identical either way.
	FullEval bool
}

// Apply compacts the summary's test set in place: dropped sequences are
// flagged (TestSequence.Dropped), spliced sequences lose the
// overlapping synchronization frames, and the statistics are stored on
// sum.Compaction and returned. Fault statuses and Summary.Tested are
// never touched — compaction only reshapes how the detected faults are
// covered.
func Apply(c *netlist.Circuit, sum *core.Summary, opts Options) *core.CompactionStats {
	alg := opts.Algebra
	if alg == nil {
		alg = logic.Robust
	}
	stats := &core.CompactionStats{}
	sum.Compaction = stats

	index := make(map[faults.Delay]int, len(sum.Results))
	for i, r := range sum.Results {
		index[r.Fault] = i
	}
	seqs := sum.SeqOrder
	if seqs == nil {
		// Defensive fallback for hand-built summaries (the engine always
		// records SeqOrder): fault order is the commit order then.
		for i, r := range sum.Results {
			if r.Seq != nil {
				seqs = append(seqs, i)
			}
		}
	}
	stats.Sequences = len(seqs)
	for _, si := range seqs {
		stats.PatternsBefore += sum.Results[si].Seq.Len()
	}

	kept, assigned, complete := reverseDrop(sum, seqs, index, stats)
	stats.Complete = complete
	// Splicing rewrites frames and re-confirms only the faults assigned
	// to the pair, so it is sound only when the assignment covers every
	// detected fault. A summary produced without Options.Compact lacks
	// the recorded detection sets (simulation-credited faults are then
	// unassigned) and must keep its sequences untouched.
	if !opts.DisableSplice && complete {
		spliceAdjacent(c, sum, kept, assigned, opts, alg, stats)
	}

	stats.Kept = len(kept)
	for _, si := range kept {
		stats.PatternsAfter += sum.Results[si].Seq.Len()
	}
	return stats
}

// reverseDrop walks the sequences in reverse generation order, keeping a
// sequence only when it covers a detected fault no later-kept sequence
// covers. It returns the kept sequences in generation order plus, per
// kept sequence, the faults it is responsible for (each detected fault
// is assigned to exactly one kept sequence), and whether that
// assignment covers the complete detected universe. With recorded
// detection sets coverage is complete by construction: an explicit
// fault is covered by its own sequence, and a credited fault is listed
// in the Detects of the sequence whose credit classified it. Without
// them (a run made without Options.Compact) the credited faults stay
// unassigned and complete is false.
func reverseDrop(sum *core.Summary, seqs []int, index map[faults.Delay]int, stats *core.CompactionStats) ([]int, map[int][]faults.Delay, bool) {
	covered := make([]bool, len(sum.Results))
	assigned := make(map[int][]faults.Delay, len(seqs))
	var kept []int
	for k := len(seqs) - 1; k >= 0; k-- {
		si := seqs[k]
		seq := sum.Results[si].Seq
		var mine []faults.Delay
		take := func(f faults.Delay) {
			fi, ok := index[f]
			if ok && sum.Results[fi].Status.Detected() && !covered[fi] {
				covered[fi] = true
				mine = append(mine, f)
			}
		}
		take(seq.Fault)
		for _, f := range seq.Detects {
			take(f)
		}
		if len(mine) == 0 {
			seq.Dropped = true
			stats.Dropped++
			continue
		}
		kept = append(kept, si)
		assigned[si] = mine
	}
	// The reverse walk built the kept list back to front.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	complete := true
	for i := range sum.Results {
		if sum.Results[i].Status.Detected() && !covered[i] {
			complete = false
			break
		}
	}
	return kept, assigned, complete
}
