package compact

import (
	"fmt"
	"runtime"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/core"
	"fogbuster/internal/faults"
	"fogbuster/internal/sim"
)

func runCompacted(name string, workers int) (*core.Summary, *core.CompactionStats) {
	c := bench.ProfileByName(name).Circuit()
	sum := core.MustNew(c, core.Options{Compact: true, Workers: workers}).Run()
	return sum, Apply(c, sum, Options{})
}

// TestCompactionInvariants pins the acceptance contract on the bench
// circuits: compaction never changes a fault status (Tested stays
// explicit + credit), the pattern accounting is consistent, every
// detected fault stays covered by a kept sequence, and on circuits with
// redundant test sets the vector count strictly shrinks.
func TestCompactionInvariants(t *testing.T) {
	shrinks := map[string]bool{"s298": true, "s344": true, "s386": true}
	for _, name := range []string{"s27", "s208", "s298", "s344", "s386"} {
		base := core.MustNew(bench.ProfileByName(name).Circuit(), core.Options{}).Run()
		sum, st := runCompacted(name, 1)

		if sum.Tested != base.Tested || sum.Explicit != base.Explicit ||
			sum.Untestable != base.Untestable || sum.Aborted != base.Aborted {
			t.Errorf("%s: compact run changed the classification: %d/%d/%d/%d vs %d/%d/%d/%d",
				name, sum.Tested, sum.Explicit, sum.Untestable, sum.Aborted,
				base.Tested, base.Explicit, base.Untestable, base.Aborted)
		}
		for i := range sum.Results {
			if sum.Results[i].Status != base.Results[i].Status {
				t.Errorf("%s: fault %v status %v, want %v (Compact must not change credit)",
					name, sum.Results[i].Fault, sum.Results[i].Status, base.Results[i].Status)
			}
		}
		if st.PatternsBefore != base.Patterns || st.PatternsBefore != sum.Patterns {
			t.Errorf("%s: PatternsBefore %d, want %d", name, st.PatternsBefore, base.Patterns)
		}
		if st.Kept+st.Dropped != st.Sequences {
			t.Errorf("%s: kept %d + dropped %d != sequences %d", name, st.Kept, st.Dropped, st.Sequences)
		}
		if !st.Complete {
			t.Errorf("%s: recorded detection sets should cover every detected fault", name)
		}
		if st.PatternsAfter > st.PatternsBefore {
			t.Errorf("%s: compaction grew the test set: %d -> %d", name, st.PatternsBefore, st.PatternsAfter)
		}
		if shrinks[name] && st.PatternsAfter >= st.PatternsBefore {
			t.Errorf("%s: expected a strictly smaller test set, got %d -> %d",
				name, st.PatternsBefore, st.PatternsAfter)
		}
		follows := 0
		for _, r := range sum.Results {
			if r.Seq != nil && r.Seq.Follows != nil {
				follows++
			}
		}
		if follows != st.Splices {
			t.Errorf("%s: %d sequences marked Follows, stats count %d splices", name, follows, st.Splices)
		}
		checkCoverage(t, name, sum)
	}
}

// TestApplyWithoutRecordedDetects pins the conservative path: a summary
// produced without Options.Compact carries no detection sets, so the
// credited faults cannot be re-confirmed and Apply must leave every
// sequence untouched rather than splice unsoundly.
func TestApplyWithoutRecordedDetects(t *testing.T) {
	c := bench.ProfileByName("s386").Circuit()
	sum := core.MustNew(c, core.Options{}).Run()
	st := Apply(c, sum, Options{})
	if st.Dropped != 0 || st.Splices != 0 || st.PatternsAfter != st.PatternsBefore {
		t.Fatalf("summary without recorded detection sets was mutated: %+v", *st)
	}
	if st.Complete {
		t.Fatal("stats claim complete coverage without recorded detection sets (CLIs use this flag to exit non-zero)")
	}
}

// checkCoverage re-derives the cover from the kept sequences: every
// fault classified as detected must be the target of a kept sequence or
// appear in a kept sequence's recorded detection set.
func checkCoverage(t *testing.T, name string, sum *core.Summary) {
	t.Helper()
	covered := make(map[faults.Delay]bool)
	for _, r := range sum.Results {
		if r.Seq == nil || r.Seq.Dropped {
			continue
		}
		covered[r.Seq.Fault] = true
		for _, f := range r.Seq.Detects {
			covered[f] = true
		}
	}
	for _, r := range sum.Results {
		if r.Status.Detected() && !covered[r.Fault] {
			t.Errorf("%s: detected fault %v lost by compaction", name, r.Fault)
		}
	}
}

// summarize flattens everything compaction-relevant: statuses, kept and
// dropped flags, per-sequence vector counts (splices shorten them), the
// generation order and the aggregate statistics.
func summarize(sum *core.Summary, st *core.CompactionStats) string {
	out := fmt.Sprintf("tested=%d explicit=%d patterns=%d order=%v stats=%+v\n",
		sum.Tested, sum.Explicit, sum.Patterns, sum.SeqOrder, *st)
	for _, r := range sum.Results {
		n, dropped := 0, false
		if r.Seq != nil {
			n, dropped = r.Seq.Len(), r.Seq.Dropped
		}
		out += fmt.Sprintf("%v %s %d %v\n", r.Fault, r.Status, n, dropped)
	}
	return out
}

// TestCompactionWorkerInvariance extends the §4 determinism contract to
// the compacted result: the compacted Summary is bit-identical at one
// worker and at NumCPU workers (and an odd count in between), because
// the recorded detection sets are computed without the racy skip filter
// and compaction is a pure function of the Summary.
func TestCompactionWorkerInvariance(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s386"} {
		sum1, st1 := runCompacted(name, 1)
		base := summarize(sum1, st1)
		for _, workers := range []int{3, runtime.NumCPU()} {
			sum, st := runCompacted(name, workers)
			if got := summarize(sum, st); got != base {
				t.Errorf("%s: compacted summary diverged at Workers=%d:\n--- workers=1\n%s--- workers=%d\n%s",
					name, workers, base, workers, got)
			}
		}
	}
}

// TestCompactionFullEvalInvariance: the splice re-confirmations accept
// exactly the same overlaps on the event-driven kernels and the full
// levelized reference, end to end — including when the engine run
// itself switches paths.
func TestCompactionFullEvalInvariance(t *testing.T) {
	for _, name := range []string{"s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		sumEvt := core.MustNew(c, core.Options{Compact: true}).Run()
		stEvt := Apply(c, sumEvt, Options{})
		cRef := bench.ProfileByName(name).Circuit()
		sumRef := core.MustNew(cRef, core.Options{Compact: true, FullEval: true}).Run()
		stRef := Apply(cRef, sumRef, Options{FullEval: true})
		if got, want := summarize(sumEvt, stEvt), summarize(sumRef, stRef); got != want {
			t.Errorf("%s: compaction diverged between kernels:\n--- event\n%s--- full\n%s", name, got, want)
		}
	}
}

// TestMergeFrames covers the three-valued frame merge underlying the
// splice phase.
func TestMergeFrames(t *testing.T) {
	x, o, i := sim.X, sim.Lo, sim.Hi
	got, ok := mergeFrames(
		[][]sim.V3{{x, o, i}},
		[][]sim.V3{{i, x, i}},
	)
	if !ok || got[0][0] != i || got[0][1] != o || got[0][2] != i {
		t.Fatalf("merge = %v, %v", got, ok)
	}
	if _, ok := mergeFrames([][]sim.V3{{o}}, [][]sim.V3{{i}}); ok {
		t.Fatal("conflicting frames merged")
	}
}

// TestDroppedSequencesFlagged checks the in-place marking: dropped
// sequences stay in the Summary (their fault is still Tested) but carry
// the Dropped flag, and the kept count matches the unflagged count.
func TestDroppedSequencesFlagged(t *testing.T) {
	sum, st := runCompacted("s386", 1)
	kept, dropped := 0, 0
	for _, r := range sum.Results {
		if r.Seq == nil {
			continue
		}
		if r.Seq.Dropped {
			dropped++
			if r.Status != core.Tested {
				t.Errorf("dropped sequence for %v has status %v", r.Fault, r.Status)
			}
		} else {
			kept++
		}
	}
	if kept != st.Kept || dropped != st.Dropped {
		t.Fatalf("flag counts kept=%d dropped=%d, stats %d/%d", kept, dropped, st.Kept, st.Dropped)
	}
	if st.Dropped == 0 {
		t.Fatal("s386 is expected to drop sequences")
	}
}
