package bench

import (
	"fmt"
	"math/rand"

	"fogbuster/internal/netlist"
)

// Synthesize builds the deterministic synthetic reconstruction for a
// profile (or parses the embedded netlist for exact profiles). The result
// always has exactly the profile's PI, PO and FF counts and exactly
// TargetLines lines, so its delay fault universe matches the paper's
// Table 3 row (faults = 2 x lines); this is verified by the tests.
func Synthesize(p Profile) (*netlist.Circuit, error) {
	if p.Exact {
		switch p.Name {
		case "s27":
			return netlist.Parse(p.Name, S27)
		}
		return nil, fmt.Errorf("bench: no embedded netlist for exact profile %q", p.Name)
	}
	s := &synthesizer{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	return s.run()
}

// Circuit synthesizes the profile and panics on error; profiles are
// compile-time data, so failure is a bug.
func (p Profile) Circuit() *netlist.Circuit {
	c, err := Synthesize(p)
	if err != nil {
		panic("bench: " + err.Error())
	}
	return c
}

// Table3Circuits returns all Table 3 circuits in the paper's order.
func Table3Circuits() []*netlist.Circuit {
	cs := make([]*netlist.Circuit, len(Profiles))
	for i, p := range Profiles {
		cs[i] = p.Circuit()
	}
	return cs
}

// irGate is a gate under construction; fanins are signal indices.
type irGate struct {
	typ    netlist.GateType
	fanins []int
}

// synthesizer holds the construction state. Signals are indexed densely:
// PIs first, then FF outputs, then gate outputs in creation order. A gate
// may only read strictly smaller gate-signal indices (plus any PI or FF
// output), which guarantees combinational acyclicity by construction.
//
// Branch lines are tracked incrementally: connecting a gate to a source
// with no gate consumer yet is free; a second gate consumer turns the
// source into a fanout stem (+2 lines); further consumers cost +1 each.
// Flip-flop D connections never create branches (see netlist.GateFanout).
// The construction spends its branch budget (TargetLines minus stems)
// adaptively and a final calibration pass lands exactly on target.
type synthesizer struct {
	p   Profile
	rng *rand.Rand

	gates    []irGate
	gateFan  []int // non-DFF consumers per signal
	dffFan   []int // DFF consumers per signal
	ffD      []int // D-input signal index per FF, -1 until assigned
	poSigs   []int
	nSig     int // total signals so far: nPI + nFF + len(gates)
	branches int
	stageB0  int // Pipeline: first gate index allowed to read FF outputs
}

func (s *synthesizer) nPI() int { return s.p.PIs }
func (s *synthesizer) nFF() int { return s.p.FFs }

func (s *synthesizer) lines() int { return s.nSig + s.branches }

// connCost returns how many lines connecting a gate input to src adds.
func (s *synthesizer) connCost(src int) int {
	switch s.gateFan[src] {
	case 0:
		return 0
	case 1:
		return 2
	default:
		return 1
	}
}

func (s *synthesizer) connectGate(src int) {
	s.branches += s.connCost(src)
	s.gateFan[src]++
}

func (s *synthesizer) addGate(t netlist.GateType, fanins ...int) int {
	for _, f := range fanins {
		s.connectGate(f)
	}
	s.gates = append(s.gates, irGate{typ: t, fanins: fanins})
	s.gateFan = append(s.gateFan, 0)
	s.dffFan = append(s.dffFan, 0)
	s.nSig++
	return s.nSig - 1
}

func (s *synthesizer) attachFF(ff, src int) {
	s.ffD[ff] = src
	s.dffFan[src]++
}

func (s *synthesizer) run() (*netlist.Circuit, error) {
	s.nSig = s.nPI() + s.nFF()
	s.gateFan = make([]int, s.nSig)
	s.dffFan = make([]int, s.nSig)
	s.ffD = make([]int, s.nFF())
	for i := range s.ffD {
		s.ffD[i] = -1
	}

	switch s.p.Style {
	case Feedback:
		s.buildFeedback()
	case Pipeline:
		s.buildPipeline()
	default:
		s.buildRandom(s.p.Gates, ranges{{0, s.nSig}}, 0)
	}

	s.assignFFInputs()
	s.consumeDeadInputs()
	s.selectPOs()
	s.calibrateLines()
	return s.emit()
}

// ranges is a list of half-open signal index intervals a gate may read.
type ranges [][2]int

func (r ranges) size() int {
	n := 0
	for _, iv := range r {
		n += iv[1] - iv[0]
	}
	return n
}

func (r ranges) at(k int) int {
	for _, iv := range r {
		if w := iv[1] - iv[0]; k < w {
			return iv[0] + k
		} else {
			k -= w
		}
	}
	panic("bench: range index out of bounds")
}

func (s *synthesizer) randomGateType() netlist.GateType {
	switch r := s.rng.Intn(100); {
	case r < 24:
		return netlist.Nand
	case r < 40:
		return netlist.Nor
	case r < 54:
		return netlist.And
	case r < 68:
		return netlist.Or
	case r < 94:
		return netlist.Not
	default:
		return netlist.Buf
	}
}

func (s *synthesizer) randomArity(t netlist.GateType) int {
	if t == netlist.Not || t == netlist.Buf {
		return 1
	}
	switch r := s.rng.Intn(100); {
	case r < 84:
		return 2
	case r < 97:
		return 3
	default:
		return 4
	}
}

// pickSource chooses one fanin source within r, spending at most budget
// extra lines and preferring free (yet-unconsumed) sources when the budget
// is tight. It returns -1 only when r is empty.
func (s *synthesizer) pickSource(r ranges, used map[int]bool, budget int) int {
	n := r.size()
	if n == 0 {
		return -1
	}
	// Gather a small random sample and pick the best-priced candidate.
	const sample = 12
	best, bestCost := -1, 1<<30
	wantSpend := budget >= 2 && s.rng.Intn(100) < 60
	for k := 0; k < sample; k++ {
		idx := r.at(s.rng.Intn(n))
		if used[idx] {
			continue
		}
		cost := s.connCost(idx)
		if wantSpend {
			// Spend the budget: prefer the costliest affordable source.
			if cost <= budget && (best == -1 || cost > bestCost) {
				best, bestCost = idx, cost
			}
		} else if cost <= budget && cost < bestCost {
			best, bestCost = idx, cost
			if cost == 0 {
				break
			}
		}
	}
	if best >= 0 {
		return best
	}
	// Nothing affordable in the sample: a deterministic scan for a free
	// source, then the cheapest source seen at all.
	if idx := s.findFreeInRanges(r, used); idx >= 0 {
		return idx
	}
	for k := 0; k < 4*sample; k++ {
		idx := r.at(s.rng.Intn(n))
		if used[idx] {
			continue
		}
		if cost := s.connCost(idx); cost < bestCost {
			best, bestCost = idx, cost
			if cost == 0 {
				break
			}
		}
	}
	return best
}

// findFreeInRanges scans (from a random start) for a completely unconsumed
// source within r, returning -1 if none exists.
func (s *synthesizer) findFreeInRanges(r ranges, used map[int]bool) int {
	n := r.size()
	if n == 0 {
		return -1
	}
	start := s.rng.Intn(n)
	for k := 0; k < n; k++ {
		idx := r.at((start + k) % n)
		if !used[idx] && s.gateFan[idx] == 0 && s.dffFan[idx] == 0 {
			return idx
		}
	}
	return -1
}

// buildRandom creates n random gates whose fanins come from r plus the
// gates it creates itself. future is the number of gates other build
// phases will still add; their stems (plus a slack for PO funnelling) are
// reserved so the branch budget is never overspent — the final calibration
// pass only ever needs to grow, which it can do exactly.
func (s *synthesizer) buildRandom(n int, r ranges, future int) {
	firstNew := s.nSig
	slack := 12 + s.nFF()/4 + s.p.POs/4
	for built := 0; built < n; built++ {
		t := s.randomGateType()
		if s.p.TargetLines-s.lines()-(n-built)-future-slack <= 0 {
			// Branch budget exhausted: unary gates consume one signal and
			// produce one, keeping the free pool balanced, so the rest of
			// the construction stays branch-neutral. Real ISCAS circuits
			// are similarly inverter-heavy.
			if t != netlist.Buf || s.rng.Intn(100) < 85 {
				t = netlist.Not
			}
		}
		arity := s.randomArity(t)
		pool := append(ranges{}, r...)
		if s.nSig > firstNew {
			pool = append(pool, [2]int{firstNew, s.nSig})
		}
		used := make(map[int]bool, arity)
		fanins := make([]int, 0, arity)
		for len(fanins) < arity {
			budget := s.p.TargetLines - s.lines() - (n - built) - future - slack
			src := s.pickSource(pool, used, budget)
			if src < 0 {
				break
			}
			used[src] = true
			fanins = append(fanins, src)
		}
		if len(fanins) == 0 {
			continue
		}
		if len(fanins) == 1 && t != netlist.Not && t != netlist.Buf {
			t = netlist.Not
		}
		s.addGate(t, fanins...)
	}
}

// buildFeedback creates a synchronous counter with a carry chain and a
// synchronous clear (the s208/s420/s838 structure), plus random decode
// logic over the counter bits and the spare PIs.
func (s *synthesizer) buildFeedback() {
	en, clr := 0, 1 // I0 = enable, I1 = clear
	ffSig := func(i int) int { return s.nPI() + i }

	nclr := s.addGate(netlist.Not, clr)
	t := en
	for i := 0; i < s.nFF(); i++ {
		nt := s.addGate(netlist.Not, t)
		ns := s.addGate(netlist.Not, ffSig(i))
		a1 := s.addGate(netlist.And, ffSig(i), nt)
		a2 := s.addGate(netlist.And, ns, t)
		o := s.addGate(netlist.Or, a1, a2)
		d := s.addGate(netlist.And, o, nclr)
		s.attachFF(i, d)
		if i < s.nFF()-1 {
			t = s.addGate(netlist.And, t, ffSig(i))
		}
	}
	if rest := s.p.Gates - len(s.gates); rest > 0 {
		s.buildRandom(rest, ranges{{0, s.nSig}}, 0)
	}
}

// buildPipeline creates two combinational stages separated by the state
// register with no feedback: stage A reads only PIs and stage-A gates and
// feeds the flip-flops; stage B reads FF outputs, PIs and stage-B gates
// and feeds the POs.
func (s *synthesizer) buildPipeline() {
	nA := s.p.Gates * 45 / 100
	firstA := s.nSig
	s.buildRandom(nA, ranges{{0, s.nPI()}}, s.p.Gates-nA)
	// FF D-inputs from the stage-A frontier (free sources).
	for i := 0; i < s.nFF(); i++ {
		d := -1
		for idx := s.nSig - 1; idx >= firstA; idx-- {
			if s.gateFan[idx] == 0 && s.dffFan[idx] == 0 {
				d = idx
				break
			}
		}
		if d < 0 {
			d = firstA + s.rng.Intn(s.nSig-firstA)
		}
		s.attachFF(i, d)
	}
	s.stageB0 = len(s.gates)
	s.buildRandom(s.p.Gates-nA, ranges{{0, s.nSig}}, 0)
}

// assignFFInputs gives every still-unassigned flip-flop a D input,
// preferring unconsumed gate outputs.
func (s *synthesizer) assignFFInputs() {
	firstGate := s.nPI() + s.nFF()
	next := s.nSig - 1
	for i := range s.ffD {
		if s.ffD[i] >= 0 {
			continue
		}
		d := -1
		for ; next >= firstGate; next-- {
			if s.gateFan[next] == 0 && s.dffFan[next] == 0 {
				d = next
				next--
				break
			}
		}
		if d < 0 {
			d = firstGate + s.rng.Intn(s.nSig-firstGate)
		}
		s.attachFF(i, d)
	}
}

// consumeDeadInputs wires every unused primary input and flip-flop output
// into some gate so the circuit has no floating sources; the connection is
// free (no branch).
func (s *synthesizer) consumeDeadInputs() {
	for src := 0; src < s.nPI()+s.nFF(); src++ {
		if s.gateFan[src] > 0 || s.dffFan[src] > 0 {
			continue
		}
		if g := s.pickWideGateAfter(src); g >= 0 {
			s.gates[g].fanins = append(s.gates[g].fanins, src)
			s.connectGate(src)
		}
	}
}

// selectPOs chooses exactly p.POs outputs. Unconsumed gate outputs become
// POs first; an excess of them is funnelled through NAND pairs so no gate
// is left dead; a shortage is filled with random late gates.
func (s *synthesizer) selectPOs() {
	firstGate := s.nPI() + s.nFF()
	var cand []int
	for i := firstGate; i < s.nSig; i++ {
		if s.gateFan[i] == 0 && s.dffFan[i] == 0 {
			cand = append(cand, i)
		}
	}
	for len(cand) > s.p.POs {
		a, b := cand[0], cand[1]
		cand = cand[2:]
		cand = append(cand, s.addGate(netlist.Nand, a, b))
	}
	for len(cand) < s.p.POs {
		idx := firstGate + s.rng.Intn(s.nSig-firstGate)
		dup := false
		for _, c := range cand {
			if c == idx {
				dup = true
			}
		}
		if !dup {
			cand = append(cand, idx)
		}
	}
	s.poSigs = cand
}

// calibrateLines adds or removes fanout connections until the circuit has
// exactly TargetLines lines.
func (s *synthesizer) calibrateLines() {
	for guard := 0; s.lines() < s.p.TargetLines && guard < 1_000_000; guard++ {
		need := s.p.TargetLines - s.lines()
		src := -1
		if need == 1 {
			src = s.findSourceWithGateFan(2, 1<<30)
		}
		if src < 0 {
			src = s.findSourceWithGateFan(1, 1)
		}
		if src < 0 {
			src = s.findSourceWithGateFan(2, 1<<30)
		}
		if src < 0 {
			break
		}
		g := s.pickWideGateAfter(src)
		if g < 0 {
			continue
		}
		s.gates[g].fanins = append(s.gates[g].fanins, src)
		s.connectGate(src)
	}
	for guard := 0; s.lines() > s.p.TargetLines && guard < 1_000_000; guard++ {
		if !s.dropOneConnection(s.lines() - s.p.TargetLines) {
			break
		}
	}
}

// findSourceWithGateFan returns a random signal whose gate fanout lies in
// [lo, hi], or -1.
func (s *synthesizer) findSourceWithGateFan(lo, hi int) int {
	start := s.rng.Intn(s.nSig)
	for k := 0; k < s.nSig; k++ {
		i := (start + k) % s.nSig
		if s.gateFan[i] >= lo && s.gateFan[i] <= hi {
			return i
		}
	}
	return -1
}

// pickWideGateAfter returns a random AND/NAND/OR/NOR gate whose output
// signal index exceeds src (preserving acyclicity), or -1. In pipeline
// circuits a flip-flop output may only feed stage B, so adding fanout
// never creates feedback.
func (s *synthesizer) pickWideGateAfter(src int) int {
	firstGate := s.nPI() + s.nFF()
	loGate := 0
	if src >= firstGate {
		loGate = src - firstGate + 1
	} else if s.p.Style == Pipeline && src >= s.nPI() {
		loGate = s.stageB0
	}
	if loGate >= len(s.gates) {
		return -1
	}
	n := len(s.gates) - loGate
	start := s.rng.Intn(n)
	for k := 0; k < n; k++ {
		g := loGate + (start+k)%n
		switch s.gates[g].typ {
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			if len(s.gates[g].fanins) < 9 && !s.hasFanin(g, src) {
				return g
			}
		}
	}
	return -1
}

func (s *synthesizer) hasFanin(g, src int) bool {
	for _, f := range s.gates[g].fanins {
		if f == src {
			return true
		}
	}
	return false
}

// dropOneConnection removes one surplus fanin from a multi-input gate; the
// source keeps at least one gate consumer. Removing from a two-consumer
// source recovers two lines; from a wider one, one line. A 2-input gate
// that loses a fanin degenerates into a buffer or inverter.
func (s *synthesizer) dropOneConnection(need int) bool {
	try := func(wantTwo, allowDegenerate bool) bool {
		start := s.rng.Intn(len(s.gates))
		for k := 0; k < len(s.gates); k++ {
			g := (start + k) % len(s.gates)
			ir := &s.gates[g]
			minArity := 3
			if allowDegenerate {
				minArity = 2
			}
			if len(ir.fanins) < minArity {
				continue
			}
			switch ir.typ {
			case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			default:
				continue
			}
			for fi, src := range ir.fanins {
				if wantTwo && s.gateFan[src] != 2 {
					continue
				}
				if !wantTwo && s.gateFan[src] < 3 {
					continue
				}
				ir.fanins = append(ir.fanins[:fi], ir.fanins[fi+1:]...)
				s.gateFan[src]--
				if s.gateFan[src] == 1 {
					s.branches -= 2
				} else {
					s.branches--
				}
				if len(ir.fanins) == 1 {
					if ir.typ == netlist.Nand || ir.typ == netlist.Nor {
						ir.typ = netlist.Not
					} else {
						ir.typ = netlist.Buf
					}
				}
				return true
			}
		}
		return false
	}
	for _, degenerate := range []bool{false, true} {
		if need >= 2 && try(true, degenerate) {
			return true
		}
		if try(false, degenerate) {
			return true
		}
		if try(true, degenerate) {
			return true
		}
	}
	return false
}

// emit converts the IR into a netlist.Circuit.
func (s *synthesizer) emit() (*netlist.Circuit, error) {
	name := func(idx int) string {
		switch {
		case idx < s.nPI():
			return fmt.Sprintf("I%d", idx)
		case idx < s.nPI()+s.nFF():
			return fmt.Sprintf("S%d", idx-s.nPI())
		default:
			return fmt.Sprintf("n%d", idx-s.nPI()-s.nFF())
		}
	}
	b := netlist.NewBuilder(s.p.Name)
	for i := 0; i < s.nPI(); i++ {
		b.Input(name(i))
	}
	for i := 0; i < s.nFF(); i++ {
		b.DFF(name(s.nPI()+i), name(s.ffD[i]))
	}
	firstGate := s.nPI() + s.nFF()
	for gi, g := range s.gates {
		fanins := make([]string, len(g.fanins))
		for j, f := range g.fanins {
			fanins[j] = name(f)
		}
		b.Gate(name(firstGate+gi), g.typ, fanins...)
	}
	for _, po := range s.poSigs {
		b.Output(name(po))
	}
	return b.Build()
}
