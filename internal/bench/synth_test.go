package bench

import (
	"testing"

	"fogbuster/internal/netlist"
)

func TestEmbeddedCircuits(t *testing.T) {
	s27 := NewS27()
	if s := s27.Stats(); s.Lines != 25 || s.DFFs != 3 || s.PIs != 4 || s.POs != 1 {
		t.Fatalf("s27 stats: %+v", s)
	}
	c17 := NewC17()
	if s := c17.Stats(); s.Lines != 17 || s.DFFs != 0 || s.Gates != 6 {
		t.Fatalf("c17 stats: %+v", s)
	}
}

// TestProfilesMatchPaperFaultTotals checks the calibration table itself:
// TargetLines must equal the paper's fault total divided by two.
func TestProfilesMatchPaperFaultTotals(t *testing.T) {
	for _, p := range Profiles {
		if p.Paper.Faults() != 2*p.TargetLines {
			t.Errorf("%s: paper faults %d != 2*TargetLines %d", p.Name, p.Paper.Faults(), p.TargetLines)
		}
	}
}

// TestSynthesizedProfiles verifies that every synthetic circuit hits its
// profile exactly where it matters: PI/PO/FF counts and the line count
// that determines the fault universe of the paper's Table 3.
func TestSynthesizedProfiles(t *testing.T) {
	for _, p := range Profiles {
		c, err := Synthesize(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := c.Stats()
		if s.PIs != p.PIs || s.POs != p.POs || s.DFFs != p.FFs {
			t.Errorf("%s: pi/po/ff = %d/%d/%d, want %d/%d/%d",
				p.Name, s.PIs, s.POs, s.DFFs, p.PIs, p.POs, p.FFs)
		}
		if s.Lines != p.TargetLines {
			t.Errorf("%s: lines = %d, want %d", p.Name, s.Lines, p.TargetLines)
		}
		if !p.Exact {
			if dev := s.Gates - p.Gates; dev < -p.Gates/4 || dev > p.Gates/4 {
				t.Errorf("%s: gates = %d, too far from published %d", p.Name, s.Gates, p.Gates)
			}
		}
		if s.MaxLevel > 100 {
			t.Errorf("%s: depth %d unrealistically large", p.Name, s.MaxLevel)
		}
		// No dead logic: every non-PO signal must have a consumer.
		for i := range c.Nodes {
			n := &c.Nodes[i]
			if len(n.Fanout) == 0 && !n.IsPO {
				t.Errorf("%s: dead signal %s", p.Name, n.Name)
			}
		}
	}
}

// TestSynthesisDeterministic: the same profile must synthesize the same
// netlist every time, or Table 3 would not be reproducible.
func TestSynthesisDeterministic(t *testing.T) {
	for _, p := range Profiles {
		if p.Exact {
			continue
		}
		a := p.Circuit().Bench()
		b := p.Circuit().Bench()
		if a != b {
			t.Fatalf("%s: synthesis is not deterministic", p.Name)
		}
	}
}

// TestPipelineHasNoFeedback: pipeline-style circuits must have no path
// from a flip-flop output back into any flip-flop's D input.
func TestPipelineHasNoFeedback(t *testing.T) {
	for _, p := range Profiles {
		if p.Style != Pipeline || p.Exact {
			continue
		}
		c := p.Circuit()
		// Mark everything reachable from FF outputs going forward.
		reach := make([]bool, c.NumNodes())
		var mark func(id netlist.NodeID)
		mark = func(id netlist.NodeID) {
			if reach[id] {
				return
			}
			reach[id] = true
			for _, f := range c.Node(id).Fanout {
				if c.Node(f).Type != netlist.DFF {
					mark(f)
				}
			}
		}
		for _, ff := range c.DFFs {
			mark(ff)
		}
		for _, ppo := range c.PPOs() {
			if reach[ppo] {
				t.Errorf("%s: feedback path into PPO %s", p.Name, c.Node(ppo).Name)
			}
		}
	}
}

func TestGenerators(t *testing.T) {
	rca := RippleCarryAdder(4)
	if s := rca.Stats(); s.PIs != 9 || s.POs != 5 || s.Gates != 5*4 {
		t.Fatalf("rca4 stats: %+v", s)
	}
	sh := ShiftRegister(8)
	if s := sh.Stats(); s.DFFs != 8 || s.PIs != 1 || s.POs != 1 {
		t.Fatalf("shift8 stats: %+v", s)
	}
	if ProfileByName("s838") == nil || ProfileByName("nope") != nil {
		t.Fatal("ProfileByName broken")
	}
	if Feedback.String() != "feedback" || Pipeline.String() != "pipeline" || Mixed.String() != "mixed" {
		t.Fatal("Style.String broken")
	}
	if got := len(Table3Circuits()); got != len(Profiles) {
		t.Fatalf("Table3Circuits len = %d", got)
	}
}
