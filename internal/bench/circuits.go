// Package bench provides the evaluation workloads: the exact ISCAS'89 s27
// netlist, the classic combinational c17, parametric combinational
// generators, and deterministic synthetic reconstructions of the remaining
// ISCAS'89 circuits used in the paper's Table 3.
//
// The original ISCAS'89 netlists (beyond s27) are not redistributable
// inside this offline module, so every other Table 3 circuit is
// synthesized from its published size profile (PI/PO/FF/gate counts) and
// calibrated so that its line count — and therefore its delay fault
// universe, 2 lines per the paper — matches the paper's per-circuit fault
// totals. See profiles.go for the calibration table and DESIGN.md for the
// substitution rationale.
package bench

import (
	"fmt"

	"fogbuster/internal/netlist"
)

// S27 is the exact ISCAS'89 s27 benchmark: 4 PIs, 1 PO, 3 DFFs, 10 gates,
// 25 lines, 50 delay faults (the paper reports 39 tested + 11 untestable).
const S27 = `# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

// C17 is the classic ISCAS'85 combinational benchmark (6 NAND gates). It
// has no flip-flops, so TDgen alone tests it completely.
const C17 = `# c17
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
`

// MustParse parses an embedded benchmark source, panicking on error.
// Embedded sources are compile-time constants, so failure is a bug.
func MustParse(name, src string) *netlist.Circuit {
	c, err := netlist.Parse(name, src)
	if err != nil {
		panic(fmt.Sprintf("bench: embedded circuit %s: %v", name, err))
	}
	return c
}

// NewS27 returns a freshly parsed s27.
func NewS27() *netlist.Circuit { return MustParse("s27", S27) }

// NewC17 returns a freshly parsed c17.
func NewC17() *netlist.Circuit { return MustParse("c17", C17) }

// RippleCarryAdder builds an n-bit ripple-carry adder from AND/OR/XOR
// gates: a realistic combinational workload with long sensitizable paths,
// used by the combinational examples and tests.
func RippleCarryAdder(bits int) *netlist.Circuit {
	b := netlist.NewBuilder(fmt.Sprintf("rca%d", bits))
	b.Input("cin")
	carry := "cin"
	for i := 0; i < bits; i++ {
		a := fmt.Sprintf("a%d", i)
		x := fmt.Sprintf("b%d", i)
		b.Input(a)
		b.Input(x)
		axb := fmt.Sprintf("axb%d", i)
		b.Gate(axb, netlist.Xor, a, x)
		sum := fmt.Sprintf("s%d", i)
		b.Gate(sum, netlist.Xor, axb, carry)
		b.Output(sum)
		g1 := fmt.Sprintf("g1_%d", i)
		g2 := fmt.Sprintf("g2_%d", i)
		cout := fmt.Sprintf("c%d", i+1)
		b.Gate(g1, netlist.And, a, x)
		b.Gate(g2, netlist.And, axb, carry)
		b.Gate(cout, netlist.Or, g1, g2)
		carry = cout
	}
	b.Output(carry)
	c, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("bench: RippleCarryAdder(%d): %v", bits, err))
	}
	return c
}

// ShiftRegister builds an n-bit shift register with a serial input and a
// single output: the simplest fully initializable sequential workload.
func ShiftRegister(bits int) *netlist.Circuit {
	b := netlist.NewBuilder(fmt.Sprintf("shift%d", bits))
	b.Input("si")
	prev := "si"
	for i := 0; i < bits; i++ {
		d := fmt.Sprintf("d%d", i)
		ff := fmt.Sprintf("q%d", i)
		b.Gate(d, netlist.Buf, prev)
		b.DFF(ff, d)
		prev = ff
	}
	b.Output(prev)
	c, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("bench: ShiftRegister(%d): %v", bits, err))
	}
	return c
}
