package bench

// Style selects the structural class of a synthetic circuit, matching the
// known character of the original ISCAS'89 benchmark it stands in for.
type Style uint8

const (
	// Mixed is general random control/datapath logic with feedback.
	Mixed Style = iota
	// Feedback builds a synchronous counter core (toggle cells with a
	// carry chain and a synchronous clear) plus random decode logic; the
	// s208/s420/s838 family are counters of exactly this kind.
	Feedback
	// Pipeline builds two combinational stages separated by the state
	// register with no feedback, matching the nearly-combinational
	// s1196/s1238 family.
	Pipeline
)

func (s Style) String() string {
	switch s {
	case Feedback:
		return "feedback"
	case Pipeline:
		return "pipeline"
	default:
		return "mixed"
	}
}

// PaperRow holds one row of the paper's Table 3 for comparison.
type PaperRow struct {
	Tested     int
	Untestable int
	Aborted    int
	Patterns   int
	Seconds    float64 // "<1" is recorded as 0.5
}

// Faults returns the total fault count of the row.
func (r PaperRow) Faults() int { return r.Tested + r.Untestable + r.Aborted }

// Profile describes one Table 3 circuit: its published size profile and
// the paper's measured row. For all circuits except s27 the netlist is a
// deterministic synthetic reconstruction calibrated so that the line count
// (and therefore the fault universe, 2 faults per line) matches the paper.
type Profile struct {
	Name        string
	Exact       bool // true only for s27, which is embedded verbatim
	PIs         int
	POs         int
	FFs         int
	Gates       int // published gate count (approximate for synthesis)
	TargetLines int // paper faults / 2
	Style       Style
	Seed        int64
	Paper       PaperRow
}

// Profiles lists the paper's Table 3 circuits in presentation order.
// PI/PO/FF/gate counts are the published ISCAS'89 statistics; TargetLines
// is derived from the paper's fault totals (tested+untestable+aborted)/2.
var Profiles = []Profile{
	{Name: "s27", Exact: true, PIs: 4, POs: 1, FFs: 3, Gates: 10, TargetLines: 25,
		Style: Mixed, Seed: 27, Paper: PaperRow{39, 11, 0, 40, 0.5}},
	{Name: "s208", PIs: 10, POs: 1, FFs: 8, Gates: 96, TargetLines: 185,
		Style: Feedback, Seed: 208, Paper: PaperRow{112, 242, 16, 163, 90}},
	{Name: "s298", PIs: 3, POs: 6, FFs: 14, Gates: 119, TargetLines: 267,
		Style: Mixed, Seed: 298, Paper: PaperRow{164, 260, 110, 1148, 452}},
	{Name: "s344", PIs: 9, POs: 11, FFs: 15, Gates: 160, TargetLines: 306,
		Style: Mixed, Seed: 344, Paper: PaperRow{313, 199, 100, 494, 403}},
	{Name: "s349", PIs: 9, POs: 11, FFs: 15, Gates: 161, TargetLines: 312,
		Style: Mixed, Seed: 349, Paper: PaperRow{312, 211, 101, 500, 394}},
	{Name: "s386", PIs: 7, POs: 7, FFs: 6, Gates: 159, TargetLines: 372,
		Style: Mixed, Seed: 386, Paper: PaperRow{332, 335, 77, 390, 80}},
	{Name: "s420", PIs: 18, POs: 1, FFs: 16, Gates: 218, TargetLines: 370,
		Style: Feedback, Seed: 420, Paper: PaperRow{124, 584, 32, 166, 169}},
	{Name: "s641", PIs: 35, POs: 24, FFs: 19, Gates: 379, TargetLines: 577,
		Style: Pipeline, Seed: 641, Paper: PaperRow{807, 136, 211, 560, 310}},
	{Name: "s713", PIs: 35, POs: 23, FFs: 19, Gates: 393, TargetLines: 627,
		Style: Mixed, Seed: 713, Paper: PaperRow{427, 395, 432, 292, 795}},
	{Name: "s838", PIs: 34, POs: 1, FFs: 32, Gates: 446, TargetLines: 737,
		Style: Feedback, Seed: 838, Paper: PaperRow{113, 1277, 84, 152, 522}},
	{Name: "s1196", PIs: 14, POs: 14, FFs: 18, Gates: 529, TargetLines: 1098,
		Style: Pipeline, Seed: 1196, Paper: PaperRow{2114, 69, 13, 1533, 243}},
	{Name: "s1238", PIs: 14, POs: 14, FFs: 18, Gates: 508, TargetLines: 1165,
		Style: Pipeline, Seed: 1238, Paper: PaperRow{2181, 136, 13, 1524, 301}},
}

// LargeProfiles lists industrial-scale circuits beyond the paper's
// Table 3: the two biggest ISCAS'89 machines, reconstructed with the same
// calibrated synthesizer. The paper never ran them (its prototype was
// reported on circuits up to ~500 gates), so there is no PaperRow; they
// exist to exercise the scale-out machinery — memory-lean cone sets,
// broadcast, work stealing, budgeted runs — at realistic node counts.
// They are deliberately NOT part of Profiles: the Table 3 experiments and
// integration tests iterate that slice, and a full ATPG run over ~20k
// gates is a benchmark workload, not a test.
var LargeProfiles = []Profile{
	{Name: "s15850", PIs: 77, POs: 150, FFs: 534, Gates: 9772, TargetLines: 15850,
		Style: Mixed, Seed: 15850},
	{Name: "s38584", PIs: 38, POs: 304, FFs: 1426, Gates: 19253, TargetLines: 38584,
		Style: Mixed, Seed: 38584},
}

// ProfileByName returns the profile with the given name — Table 3 and
// large-scale profiles both resolve — or nil.
func ProfileByName(name string) *Profile {
	for i := range Profiles {
		if Profiles[i].Name == name {
			return &Profiles[i]
		}
	}
	for i := range LargeProfiles {
		if LargeProfiles[i].Name == name {
			return &LargeProfiles[i]
		}
	}
	return nil
}
