// Package fausim implements FAUSIM, the sequential fault simulator
// integrated in SEMILET (paper Section 5, phases 1 and 2): good machine
// simulation of a test sequence, and stuck-at-style observability analysis
// of the propagation phase, where a fault effect captured at a PPO at the
// end of the fast frame is treated as a state difference that must reach a
// primary output under slow, fault-free clocking.
package fausim

import (
	"math/rand"

	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// Sim wraps a circuit view for sequence-level simulation.
type Sim struct {
	net *sim.Net
}

// New builds a simulator for the circuit.
func New(net *sim.Net) *Sim { return &Sim{net: net} }

// Net returns the underlying circuit view.
func (s *Sim) Net() *sim.Net { return s.net }

// FillSequence replaces every X in every vector with a pseudo-random bit,
// the paper's phase-1 treatment of don't-cares left by test generation.
func FillSequence(vectors [][]sim.V3, rng *rand.Rand) [][]sim.V3 {
	out := make([][]sim.V3, len(vectors))
	for i, vec := range vectors {
		out[i] = sim.XFill(vec, rng)
	}
	return out
}

// GoodReplay simulates the good machine over the vectors from initState
// (nil for power-up) and returns the state after every frame.
func (s *Sim) GoodReplay(initState []sim.V3, vectors [][]sim.V3) []sim.Step {
	return s.net.SeqSim3(initState, vectors)
}

// PairDiff simulates the good and faulty machines (differing only in their
// starting states) over the vectors and returns the first frame and PO
// index where they provably differ, or (-1, -1). The machine logic is
// fault free in both runs: under the slow clock the delay fault cannot
// occur, exactly the paper's propagation-phase model.
func (s *Sim) PairDiff(goodState, faultyState []sim.V3, vectors [][]sim.V3) (int, int) {
	g, f := goodState, faultyState
	for frame, vec := range vectors {
		gv := s.net.LoadFrame(vec, g)
		s.net.Eval3(gv, nil)
		fv := s.net.LoadFrame(vec, f)
		s.net.Eval3(fv, nil)
		for i, po := range s.net.C.POs {
			a, b := gv[po], fv[po]
			if a.Known() && b.Known() && a != b {
				return frame, i
			}
		}
		g = s.net.NextState3(gv, nil)
		f = s.net.NextState3(fv, nil)
	}
	return -1, -1
}

// ObservablePPOs performs the paper's phase-2 analysis: for every flip-flop
// index whose captured value could carry a fault effect (nonSteady), a
// D is injected by flipping that state bit and the propagation vectors are
// replayed; the result marks the PPOs whose effects reach a primary
// output. The fault effect exists only at the observation point in the
// fast frame — later frames are fault free — which is exactly how FAUSIM
// treats it.
func (s *Sim) ObservablePPOs(goodState []sim.V3, nonSteady []bool, vectors [][]sim.V3) []bool {
	obs := make([]bool, len(goodState))
	for i, ns := range nonSteady {
		if !ns || !goodState[i].Known() {
			continue
		}
		faulty := append([]sim.V3(nil), goodState...)
		faulty[i] = sim.Not3(faulty[i])
		if frame, po := s.PairDiff(goodState, faulty, vectors); frame >= 0 && po >= 0 {
			obs[i] = true
		}
	}
	return obs
}

// StuckCoverage fault-simulates a sequence against a set of stuck-at
// faults by pair simulation from power-up, returning which are detected.
// It is used by the standalone static-fault flow and the examples.
func (s *Sim) StuckCoverage(vectors [][]sim.V3, lines []netlist.Line) map[netlist.Line][2]bool {
	out := make(map[netlist.Line][2]bool, len(lines))
	for _, l := range lines {
		var det [2]bool
		for v := 0; v < 2; v++ {
			inj := &sim.Inject3{Line: l, Value: sim.V3(v)}
			var g, f []sim.V3
			detected := false
			for _, vec := range vectors {
				gv := s.net.LoadFrame(vec, g)
				s.net.Eval3(gv, nil)
				fv := s.net.LoadFrame(vec, f)
				s.net.Eval3(fv, inj)
				for _, po := range s.net.C.POs {
					a, b := gv[po], fv[po]
					if a.Known() && b.Known() && a != b {
						detected = true
					}
				}
				if detected {
					break
				}
				g = s.net.NextState3(gv, nil)
				f = s.net.NextState3(fv, inj)
			}
			det[v] = detected
		}
		out[l] = det
	}
	return out
}
