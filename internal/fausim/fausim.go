// Package fausim implements FAUSIM, the sequential fault simulator
// integrated in SEMILET (paper Section 5, phases 1 and 2): good machine
// simulation of a test sequence, and stuck-at-style observability analysis
// of the propagation phase, where a fault effect captured at a PPO at the
// end of the fast frame is treated as a state difference that must reach a
// primary output under slow, fault-free clocking.
//
// The bulk entry points (ObservablePPOs, StuckCoverage) run on the 64-way
// dual-rail simulator: 64 faulty machines share one pass over the frame
// loop, one bit per machine, with exact three-valued semantics. Per-Sim
// scratch buffers make the passes allocation-free, so a Sim must not be
// shared between goroutines; build one per worker.
package fausim

import (
	"math/rand"
	"sort"

	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// Sim wraps a circuit view for sequence-level simulation.
type Sim struct {
	net *sim.Net

	// fullEval forces the full levelized walks instead of the
	// event-driven selective-trace paths (the reference oracle). The
	// stuck-at batch simulator always walks fully: its 64 machines carry
	// injections everywhere, so there is no shared fault-free baseline.
	fullEval bool

	// Reusable 64-way scratch (lazily built): one dual-rail frame, one
	// injector, and the dual-rail state rails carried between frames.
	frame64            *sim.Frame64
	inj64              *sim.Inject64
	stateV, stateK     []sim.Word
	scratchV, scratchK []sim.Word

	// Scalar scratch of the event-driven paths: the good and faulty
	// frame values and the states carried between frames.
	gv3, fv3       []sim.V3
	gstate, fstate []sim.V3
	seeds          []netlist.NodeID
}

// New builds a simulator for the circuit.
func New(net *sim.Net) *Sim { return &Sim{net: net} }

// Net returns the underlying circuit view.
func (s *Sim) Net() *sim.Net { return s.net }

// SetFullEval selects between the event-driven selective-trace paths
// (default) and the full levelized reference walks. Call it before the
// first simulation.
func (s *Sim) SetFullEval(on bool) { s.fullEval = on }

// scratch64 returns the lazily-built 64-way buffers.
func (s *Sim) scratch64() (*sim.Frame64, *sim.Inject64) {
	if s.frame64 == nil {
		s.frame64 = s.net.NewFrame64()
		s.inj64 = s.net.NewInject64()
		n := len(s.net.C.DFFs)
		s.stateV = make([]sim.Word, n)
		s.stateK = make([]sim.Word, n)
		s.scratchV = make([]sim.Word, n)
		s.scratchK = make([]sim.Word, n)
	}
	return s.frame64, s.inj64
}

// scratchScalar returns the lazily-built scalar frame buffers of the
// event-driven paths.
func (s *Sim) scratchScalar() ([]sim.V3, []sim.V3) {
	if s.gv3 == nil {
		s.gv3 = make([]sim.V3, len(s.net.C.Nodes))
		s.fv3 = make([]sim.V3, len(s.net.C.Nodes))
		s.gstate = make([]sim.V3, len(s.net.C.DFFs))
		s.fstate = make([]sim.V3, len(s.net.C.DFFs))
	}
	return s.gv3, s.fv3
}

// FillSequence replaces every X in every vector with a pseudo-random bit,
// the paper's phase-1 treatment of don't-cares left by test generation.
func FillSequence(vectors [][]sim.V3, rng *rand.Rand) [][]sim.V3 {
	out := make([][]sim.V3, len(vectors))
	for i, vec := range vectors {
		out[i] = sim.XFill(vec, rng)
	}
	return out
}

// Replay is the good machine's trace over a vector sequence: the
// per-frame observable Steps plus — on the event-driven path — the
// complete per-frame node values, which serve as the selective-trace
// baseline the batched pair simulation diffs against.
type Replay struct {
	Steps []sim.Step
	vals  [][]sim.V3 // full node values per frame; nil on the full-eval path
}

// GoodReplay simulates the good machine over the vectors from initState
// (nil for power-up) and returns the per-frame trace.
func (s *Sim) GoodReplay(initState []sim.V3, vectors [][]sim.V3) *Replay {
	if s.fullEval {
		return &Replay{Steps: s.net.SeqSim3(initState, vectors)}
	}
	r := &Replay{
		Steps: make([]sim.Step, 0, len(vectors)),
		vals:  make([][]sim.V3, 0, len(vectors)),
	}
	state := initState
	for _, vec := range vectors {
		vals := s.net.LoadFrame(vec, state)
		s.net.Eval3(vals, nil)
		st := sim.Step{Outputs: s.net.Outputs3(vals), State: s.net.NextState3(vals, nil)}
		r.Steps = append(r.Steps, st)
		r.vals = append(r.vals, vals)
		state = st.State
	}
	return r
}

// PairDiff simulates the good and faulty machines (differing only in their
// starting states) over the vectors and returns the first frame and PO
// index where they provably differ, or (-1, -1). The machine logic is
// fault free in both runs: under the slow clock the delay fault cannot
// occur, exactly the paper's propagation-phase model. The scan returns on
// the first provable difference; later POs and frames are never evaluated.
// By default the faulty machine is a selective trace over the good one:
// each frame copies the good values and re-evaluates only the cones of
// the state bits that still differ, and the replay stops as soon as the
// two states coincide (no later frame could distinguish them).
func (s *Sim) PairDiff(goodState, faultyState []sim.V3, vectors [][]sim.V3) (int, int) {
	if s.fullEval {
		g, f := goodState, faultyState
		for frame, vec := range vectors {
			gv := s.net.LoadFrame(vec, g)
			s.net.Eval3(gv, nil)
			fv := s.net.LoadFrame(vec, f)
			s.net.Eval3(fv, nil)
			for i, po := range s.net.C.POs {
				a, b := gv[po], fv[po]
				if a.Known() && b.Known() && a != b {
					return frame, i
				}
			}
			g = s.net.NextState3(gv, nil)
			f = s.net.NextState3(fv, nil)
		}
		return -1, -1
	}
	gv, fv := s.scratchScalar()
	c := s.net.C
	g := append(s.gstate[:0], goodState...)
	f := append(s.fstate[:0], faultyState...)
	for frame, vec := range vectors {
		s.net.LoadFrameInto(gv, vec, g)
		s.net.Eval3(gv, nil)
		copy(fv, gv)
		seeds := s.seeds[:0]
		for i, ff := range c.DFFs {
			if f[i] != g[i] {
				fv[ff] = f[i]
				seeds = append(seeds, ff)
			}
		}
		s.seeds = seeds
		if len(seeds) == 0 {
			return -1, -1
		}
		s.net.Eval3Cone(fv, seeds)
		for i, po := range c.POs {
			a, b := gv[po], fv[po]
			if a.Known() && b.Known() && a != b {
				return frame, i
			}
		}
		for i, ff := range c.DFFs {
			d := c.Nodes[ff].Fanin[0]
			g[i], f[i] = gv[d], fv[d]
		}
	}
	return -1, -1
}

// PairDiffBatch resolves up to 64 good/faulty state pairs in one replay
// of the propagation frames: machine k starts from the fully specified
// faulty state whose flip-flop i value is bit k of faultyV[i], and is
// compared frame by frame against the precomputed good replay (goods
// must be GoodReplay(goodState, vectors) for the shared good state).
// live selects the machines to resolve; the returned word marks the
// machines with a provable good/faulty PO difference in some frame —
// per machine exactly the PairDiff verdict (frame >= 0), because the
// dual-rail evaluation is bit-exact against the scalar three-valued
// simulation and a once-detected machine stays detected. The frame loop
// stops as soon as every live machine is resolved.
//
// When the replay carries the full good-machine values (the event-driven
// default), each frame evaluates only the dual-rail overlay of the state
// bits that still diverge from the good machine, and the loop exits as
// soon as every machine's state has collapsed onto the good one.
func (s *Sim) PairDiffBatch(goods *Replay, faultyV []sim.Word, live sim.Word, vectors [][]sim.V3) sim.Word {
	frame, _ := s.scratch64()
	net := s.net
	stateV, stateK := s.stateV, s.stateK
	for i := range net.C.DFFs {
		stateV[i], stateK[i] = faultyV[i], sim.AllOnes
	}
	event := !s.fullEval && goods.vals != nil
	var detected sim.Word
	for fi, vec := range vectors {
		if event {
			base := goods.vals[fi]
			seeded := false
			for i, ff := range net.C.DFFs {
				bv, bk := sim.Broadcast64(base[ff])
				if stateV[i] != bv || stateK[i] != bk {
					net.Overlay64Set(frame, ff, stateV[i], stateK[i])
					seeded = true
				}
			}
			if !seeded {
				// Every live machine's state coincides with the good
				// machine's: no later frame can distinguish them.
				return detected
			}
			net.Eval64DROverlay(frame, base)
		} else {
			net.LoadFrame64DR(frame, vec, nil)
			for i, ff := range net.C.DFFs {
				frame.V[ff], frame.K[ff] = stateV[i], stateK[i]
			}
			net.Eval64DR(frame, nil)
		}
		for p, po := range net.C.POs {
			if event && !net.Overlay64Marked(po) {
				continue // identical to the good machine: no provable diff
			}
			good := goods.Steps[fi].Outputs[p]
			if !good.Known() {
				continue
			}
			gw, _ := sim.Broadcast64(good)
			diff := (frame.V[po] ^ gw) & frame.K[po] & live
			if diff == 0 {
				continue
			}
			detected |= diff
			live &^= diff
			if live == 0 {
				if event {
					net.Overlay64Reset()
				}
				return detected
			}
		}
		if event {
			base := goods.vals[fi]
			for i, ff := range net.C.DFFs {
				d := net.C.Nodes[ff].Fanin[0]
				if net.Overlay64Marked(d) {
					s.scratchV[i], s.scratchK[i] = frame.V[d], frame.K[d]
				} else {
					s.scratchV[i], s.scratchK[i] = sim.Broadcast64(base[d])
				}
			}
			net.Overlay64Reset()
		} else {
			net.NextState64DR(frame, nil, s.scratchV, s.scratchK)
		}
		stateV, stateK = s.scratchV, s.scratchK
		s.scratchV, s.scratchK = s.stateV, s.stateK
		s.stateV, s.stateK = stateV, stateK
	}
	return detected
}

// ObservablePPOs performs the paper's phase-2 analysis: for every flip-flop
// index whose captured value could carry a fault effect (nonSteady), a
// D is injected by flipping that state bit and the propagation vectors are
// replayed; the result marks the PPOs whose effects reach a primary
// output. The fault effect exists only at the observation point in the
// fast frame — later frames are fault free — which is exactly how FAUSIM
// treats it.
//
// All candidate flips are simulated together, 63 faulty machines plus the
// good machine per 64-bit word, so the whole analysis costs a single
// replay of the propagation frames per batch instead of one per flip-flop.
func (s *Sim) ObservablePPOs(goodState []sim.V3, nonSteady []bool, vectors [][]sim.V3) []bool {
	obs := make([]bool, len(goodState))
	var cand []int
	for i, ns := range nonSteady {
		if ns && goodState[i].Known() {
			cand = append(cand, i)
		}
	}
	const goodBit = 63 // machine 63 is the fault-free reference
	for len(cand) > 0 {
		batch := cand
		if len(batch) > goodBit {
			batch = batch[:goodBit]
		}
		cand = cand[len(batch):]
		s.observeBatch(goodState, batch, vectors, obs)
	}
	return obs
}

// observeBatch replays the propagation frames once for up to 63 state
// flips: machine b starts from goodState with batch[b] flipped, machine 63
// is the unmodified good machine. A machine whose PO word provably differs
// from the good machine's is observable; the frame loop stops as soon as
// every machine in the batch is resolved or the vectors run out.
//
// On the event-driven path the good machine runs scalar and the flipped
// machines are a dual-rail overlay over it: only cones of still-diverging
// state bits are evaluated per frame, and the replay stops once every
// machine's state has collapsed onto the good one. The verdicts are
// bit-identical to the full walk, where machine 63's rails are exactly
// the broadcast of the scalar good values.
func (s *Sim) observeBatch(goodState []sim.V3, batch []int, vectors [][]sim.V3, obs []bool) {
	const goodBit = 63
	frame, _ := s.scratch64()
	net := s.net
	stateV, stateK := s.stateV, s.stateK
	for i, v := range goodState {
		stateV[i], stateK[i] = sim.Broadcast64(v)
	}
	for b, ffIdx := range batch {
		stateV[ffIdx] ^= sim.Word(1) << uint(b)
	}
	live := sim.Word(0)
	for b := range batch {
		live |= sim.Word(1) << uint(b)
	}
	if !s.fullEval {
		s.observeBatchEvent(goodState, batch, vectors, obs, live)
		return
	}
	for _, vec := range vectors {
		net.LoadFrame64DR(frame, vec, nil)
		for i, ff := range net.C.DFFs {
			frame.V[ff], frame.K[ff] = stateV[i], stateK[i]
		}
		net.Eval64DR(frame, nil)
		for _, po := range net.C.POs {
			v, k := frame.V[po], frame.K[po]
			if k&(1<<goodBit) == 0 {
				continue // good machine value unknown: no provable diff
			}
			good := sim.Word(0)
			if v&(1<<goodBit) != 0 {
				good = sim.AllOnes
			}
			diff := (v ^ good) & k & live
			if diff == 0 {
				continue
			}
			for b := range batch {
				if diff&(1<<uint(b)) != 0 {
					obs[batch[b]] = true
				}
			}
			live &^= diff
			if live == 0 {
				return
			}
		}
		net.NextState64DR(frame, nil, s.scratchV, s.scratchK)
		stateV, stateK = s.scratchV, s.scratchK
		s.scratchV, s.scratchK = s.stateV, s.stateK
		s.stateV, s.stateK = stateV, stateK
	}
}

// observeBatchEvent is observeBatch's selective-trace body. The flipped
// machines' rails were installed in s.stateV/s.stateK by the caller.
func (s *Sim) observeBatchEvent(goodState []sim.V3, batch []int, vectors [][]sim.V3, obs []bool, live sim.Word) {
	frame, _ := s.scratch64()
	net := s.net
	c := net.C
	gv, _ := s.scratchScalar()
	g := append(s.gstate[:0], goodState...)
	stateV, stateK := s.stateV, s.stateK
	for _, vec := range vectors {
		s.net.LoadFrameInto(gv, vec, g)
		net.Eval3(gv, nil)
		seeded := false
		for i, ff := range c.DFFs {
			bv, bk := sim.Broadcast64(gv[ff])
			if stateV[i] != bv || stateK[i] != bk {
				net.Overlay64Set(frame, ff, stateV[i], stateK[i])
				seeded = true
			}
		}
		if !seeded {
			return // every machine's state equals the good machine's
		}
		net.Eval64DROverlay(frame, gv)
		for _, po := range c.POs {
			if !net.Overlay64Marked(po) {
				continue
			}
			good := gv[po]
			if !good.Known() {
				continue // good machine value unknown: no provable diff
			}
			gw, _ := sim.Broadcast64(good)
			diff := (frame.V[po] ^ gw) & frame.K[po] & live
			if diff == 0 {
				continue
			}
			for b := range batch {
				if diff&(1<<uint(b)) != 0 {
					obs[batch[b]] = true
				}
			}
			live &^= diff
			if live == 0 {
				net.Overlay64Reset()
				return
			}
		}
		for i, ff := range c.DFFs {
			d := c.Nodes[ff].Fanin[0]
			if net.Overlay64Marked(d) {
				s.scratchV[i], s.scratchK[i] = frame.V[d], frame.K[d]
			} else {
				s.scratchV[i], s.scratchK[i] = sim.Broadcast64(gv[d])
			}
			g[i] = gv[d]
		}
		net.Overlay64Reset()
		stateV, stateK = s.scratchV, s.scratchK
		s.scratchV, s.scratchK = s.stateV, s.stateK
		s.stateV, s.stateK = stateV, stateK
	}
}

// stuck64 is one packed stuck-at fault instance.
type stuck64 struct {
	line netlist.Line
	val  sim.V3
}

// StuckCoverage fault-simulates a sequence against a set of stuck-at
// faults by pair simulation from power-up, returning which are detected.
// It is used by the standalone static-fault flow and the examples.
//
// The faults run 64 machines per word through the dual-rail simulator: one
// good-machine replay is shared by all batches, each faulty machine drops
// out of its batch on the first provable PO difference, and a batch whose
// machines are all detected stops before the frame loop ends.
func (s *Sim) StuckCoverage(vectors [][]sim.V3, lines []netlist.Line) map[netlist.Line][2]bool {
	out := make(map[netlist.Line][2]bool, len(lines))
	goods := s.net.SeqSim3(nil, vectors)

	all := make([]stuck64, 0, 2*len(lines))
	for _, l := range lines {
		all = append(all, stuck64{l, sim.Lo}, stuck64{l, sim.Hi})
	}
	for len(all) > 0 {
		batch := all
		if len(batch) > 64 {
			batch = batch[:64]
		}
		all = all[len(batch):]
		detected := s.stuckBatch(vectors, goods, batch)
		for b, f := range batch {
			det := out[f.line]
			if detected&(1<<uint(b)) != 0 {
				det[f.val] = true
			}
			out[f.line] = det
		}
	}
	return out
}

// Detection pairs one line with its stuck-at detection flags, the
// flattened form of one StuckCoverage entry. Det is indexed by the stuck
// value: Det[0] is stuck-at-0, Det[1] is stuck-at-1.
type Detection struct {
	Line netlist.Line
	Det  [2]bool
}

// SortedDetections flattens a StuckCoverage result into deterministic
// (Node, Branch) order, so reports, tests and heuristics never iterate
// the Go map directly.
func SortedDetections(cov map[netlist.Line][2]bool) []Detection {
	out := make([]Detection, 0, len(cov))
	for l, det := range cov {
		out = append(out, Detection{Line: l, Det: det}) //lint:allow determinism sorted into (Node, Branch) order below before return
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line.Node != out[j].Line.Node {
			return out[i].Line.Node < out[j].Line.Node
		}
		return out[i].Line.Branch < out[j].Line.Branch
	})
	return out
}

// stuckBatch pair-simulates up to 64 stuck-at machines against the
// precomputed good replay and returns the detected machine mask.
func (s *Sim) stuckBatch(vectors [][]sim.V3, goods []sim.Step, batch []stuck64) sim.Word {
	frame, inj := s.scratch64()
	inj.Reset()
	live := sim.Word(0)
	for b, f := range batch {
		inj.Add(uint(b), f.line, f.val)
		live |= sim.Word(1) << uint(b)
	}
	stateV, stateK := s.stateV, s.stateK
	for i := range stateV {
		stateV[i], stateK[i] = 0, 0 // power-up: all X
	}
	detected := sim.Word(0)
	for fi, vec := range vectors {
		s.net.LoadFrame64DR(frame, vec, nil)
		for i, ff := range s.net.C.DFFs {
			frame.V[ff], frame.K[ff] = stateV[i], stateK[i]
		}
		s.net.Eval64DR(frame, inj)
		for p, po := range s.net.C.POs {
			good := goods[fi].Outputs[p]
			if !good.Known() {
				continue
			}
			gw, _ := sim.Broadcast64(good)
			diff := (frame.V[po] ^ gw) & frame.K[po] & live
			if diff == 0 {
				continue
			}
			detected |= diff
			live &^= diff
			if live == 0 {
				return detected
			}
		}
		s.net.NextState64DR(frame, inj, s.scratchV, s.scratchK)
		stateV, stateK = s.scratchV, s.scratchK
		s.scratchV, s.scratchK = s.stateV, s.stateK
		s.stateV, s.stateK = stateV, stateK
	}
	return detected
}
