package fausim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

func TestFillSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := [][]sim.V3{{sim.X, sim.Hi}, {sim.Lo, sim.X}}
	out := FillSequence(in, rng)
	if out[0][1] != sim.Hi || out[1][0] != sim.Lo {
		t.Fatal("known values changed")
	}
	for _, vec := range out {
		for _, v := range vec {
			if !v.Known() {
				t.Fatal("X survived the fill")
			}
		}
	}
	if in[0][0] != sim.X {
		t.Fatal("input mutated")
	}
}

// TestSortedDetections pins the deterministic accessor: the flattened
// result is in (Node, Branch) order and agrees entry-for-entry with the
// underlying map.
func TestSortedDetections(t *testing.T) {
	c := bench.NewS27()
	net := sim.NewNet(c)
	s := New(net)
	rng := rand.New(rand.NewSource(7))
	vectors := make([][]sim.V3, 12)
	for i := range vectors {
		vec := make([]sim.V3, len(c.PIs))
		for j := range vec {
			vec[j] = sim.V3(rng.Intn(2))
		}
		vectors[i] = vec
	}
	cov := s.StuckCoverage(vectors, c.Lines())
	flat := SortedDetections(cov)
	if len(flat) != len(cov) {
		t.Fatalf("flattened %d entries, map has %d", len(flat), len(cov))
	}
	for i, d := range flat {
		if got, ok := cov[d.Line]; !ok || got != [2]bool(d.Det) {
			t.Errorf("entry %d (%v) disagrees with the map", i, d.Line)
		}
		if i == 0 {
			continue
		}
		prev := flat[i-1].Line
		if d.Line.Node < prev.Node || (d.Line.Node == prev.Node && d.Line.Branch <= prev.Branch) {
			t.Fatalf("entries out of order: %v after %v", d.Line, prev)
		}
	}
}

// TestPairDiffShiftRegister: a single flipped state bit in a shift
// register surfaces at the output after exactly the remaining stages.
func TestPairDiffShiftRegister(t *testing.T) {
	c := bench.ShiftRegister(4)
	s := New(sim.NewNet(c))
	good := []sim.V3{sim.Lo, sim.Lo, sim.Lo, sim.Lo}
	faulty := append([]sim.V3(nil), good...)
	faulty[0] = sim.Hi // flipped at the first stage: 3 more shifts to the PO
	vectors := [][]sim.V3{{sim.Lo}, {sim.Lo}, {sim.Lo}, {sim.Lo}}
	frame, po := s.PairDiff(good, faulty, vectors)
	if frame != 3 || po != 0 {
		t.Fatalf("diff at frame %d po %d, want frame 3 po 0", frame, po)
	}
	// Identical states never differ.
	if f, _ := s.PairDiff(good, good, vectors); f != -1 {
		t.Fatal("identical states reported different")
	}
}

// TestPairDiffBatchMatchesScalar cross-checks the 64-way pair replay
// against the scalar PairDiff verdict: 64 random fully specified faulty
// states against one shared good state, over random propagation vectors,
// on a sequential bench circuit.
func TestPairDiffBatchMatchesScalar(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	net := sim.NewNet(c)
	s := New(net)
	rng := rand.New(rand.NewSource(11))
	bits := func(n int) []sim.V3 {
		out := make([]sim.V3, n)
		for i := range out {
			out[i] = sim.V3(rng.Intn(2))
		}
		return out
	}
	for trial := 0; trial < 50; trial++ {
		good := bits(len(c.DFFs))
		var vectors [][]sim.V3
		for k := 0; k < 1+rng.Intn(4); k++ {
			vectors = append(vectors, bits(len(c.PIs)))
		}
		faulty := make([][]sim.V3, 64)
		faultyV := make([]sim.Word, len(c.DFFs))
		for m := 0; m < 64; m++ {
			faulty[m] = bits(len(c.DFFs))
			for i, v := range faulty[m] {
				if v == sim.Hi {
					faultyV[i] |= sim.Word(1) << uint(m)
				}
			}
		}
		goods := s.GoodReplay(good, vectors)
		detected := s.PairDiffBatch(goods, faultyV, sim.AllOnes, vectors)
		for m := 0; m < 64; m++ {
			frame, po := s.PairDiff(good, faulty[m], vectors)
			want := frame >= 0 && po >= 0
			if got := detected&(sim.Word(1)<<uint(m)) != 0; got != want {
				t.Fatalf("trial %d machine %d: batched %v, scalar %v (frame %d po %d)",
					trial, m, got, want, frame, po)
			}
		}
	}
}

// TestObservablePPOs: in the shift register every stage is observable
// given enough frames, and none is observable with too few.
func TestObservablePPOs(t *testing.T) {
	c := bench.ShiftRegister(4)
	s := New(sim.NewNet(c))
	good := []sim.V3{sim.Lo, sim.Lo, sim.Lo, sim.Lo}
	nonSteady := []bool{true, true, true, true}
	long := [][]sim.V3{{sim.Lo}, {sim.Lo}, {sim.Lo}, {sim.Lo}}
	obs := s.ObservablePPOs(good, nonSteady, long)
	for i, o := range obs {
		if !o {
			t.Errorf("stage %d not observable with 4 frames", i)
		}
	}
	short := [][]sim.V3{{sim.Lo}}
	obs = s.ObservablePPOs(good, nonSteady, short)
	if obs[0] || obs[1] || obs[2] {
		t.Error("early stages observable with one frame")
	}
	if !obs[3] {
		t.Error("last stage must be observable with one frame")
	}
	// The nonSteady mask suppresses analysis.
	none := s.ObservablePPOs(good, []bool{false, false, false, false}, long)
	for i, o := range none {
		if o {
			t.Errorf("stage %d observable despite steady mask", i)
		}
	}
}

// TestStuckCoverage: exhaustive input sequences detect the input stem
// stuck-at faults of c17... c17 has no DFFs, so use the shift register
// plus a gate.
func TestStuckCoverage(t *testing.T) {
	c := bench.ShiftRegister(2)
	s := New(sim.NewNet(c))
	vectors := [][]sim.V3{{sim.Hi}, {sim.Lo}, {sim.Hi}, {sim.Lo}, {sim.Hi}}
	si := c.LookupID("si")
	cov := s.StuckCoverage(vectors, []netlist.Line{netlist.Stem(si)})
	det := cov[netlist.Stem(si)]
	if !det[0] || !det[1] {
		t.Fatalf("serial-input stuck faults not detected: %v", det)
	}
}

// TestGoodReplayMatchesSeqSim: GoodReplay is SeqSim3 by another name; pin
// the equivalence on a random workload.
func TestGoodReplayMatchesSeqSim(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	net := sim.NewNet(c)
	s := New(net)
	rng := rand.New(rand.NewSource(9))
	var vectors [][]sim.V3
	for k := 0; k < 8; k++ {
		v := make([]sim.V3, len(c.PIs))
		for i := range v {
			v[i] = sim.V3(rng.Intn(2))
		}
		vectors = append(vectors, v)
	}
	a := s.GoodReplay(nil, vectors)
	b := net.SeqSim3(nil, vectors)
	if len(a.Steps) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a.Steps {
		for j := range a.Steps[i].State {
			if a.Steps[i].State[j] != b[i].State[j] {
				t.Fatalf("state mismatch at frame %d", i)
			}
		}
	}
	if s.Net() != net {
		t.Fatal("Net accessor broken")
	}
}
