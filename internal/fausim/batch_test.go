package fausim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// scalarStuckCoverage is the pre-batching reference implementation:
// pair simulation of one faulty machine at a time with Eval3.
func scalarStuckCoverage(net *sim.Net, vectors [][]sim.V3, lines []netlist.Line) map[netlist.Line][2]bool {
	out := make(map[netlist.Line][2]bool, len(lines))
	for _, l := range lines {
		var det [2]bool
		for v := 0; v < 2; v++ {
			inj := &sim.Inject3{Line: l, Value: sim.V3(v)}
			var g, f []sim.V3
			detected := false
			for _, vec := range vectors {
				gv := net.LoadFrame(vec, g)
				net.Eval3(gv, nil)
				fv := net.LoadFrame(vec, f)
				net.Eval3(fv, inj)
				for _, po := range net.C.POs {
					a, b := gv[po], fv[po]
					if a.Known() && b.Known() && a != b {
						detected = true
					}
				}
				if detected {
					break
				}
				g = net.NextState3(gv, nil)
				f = net.NextState3(fv, inj)
			}
			det[v] = detected
		}
		out[l] = det
	}
	return out
}

// TestStuckCoverageMatchesScalar cross-checks the 64-way batched
// StuckCoverage against the scalar reference over every stem and branch
// of a real benchmark, with don't-cares in the vectors so the dual-rail X
// semantics are on the line too. The fault count exceeds 64, so batch
// splitting is exercised as well.
func TestStuckCoverageMatchesScalar(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	net := sim.NewNet(c)
	s := New(net)
	rng := rand.New(rand.NewSource(5))

	var vectors [][]sim.V3
	for k := 0; k < 6; k++ {
		v := make([]sim.V3, len(c.PIs))
		for i := range v {
			v[i] = sim.V3(rng.Intn(3)) // includes X
		}
		vectors = append(vectors, v)
	}

	var lines []netlist.Line
	for i := range c.Nodes {
		id := netlist.NodeID(i)
		lines = append(lines, netlist.Stem(id))
		if c.GateFanout(id) >= 2 {
			for b := range c.Nodes[i].Fanout {
				lines = append(lines, netlist.Line{Node: id, Branch: b})
			}
		}
	}

	got := s.StuckCoverage(vectors, lines)
	want := scalarStuckCoverage(net, vectors, lines)
	if len(got) != len(want) {
		t.Fatalf("result size %d, want %d", len(got), len(want))
	}
	for l, w := range want {
		if got[l] != w {
			t.Errorf("line %s: batched %v, scalar %v", c.LineName(l), got[l], w)
		}
	}
}

// TestObservablePPOsMatchesScalar cross-checks the batched observability
// analysis against per-flip PairDiff replays on a real benchmark.
func TestObservablePPOsMatchesScalar(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	net := sim.NewNet(c)
	s := New(net)
	rng := rand.New(rand.NewSource(6))

	for round := 0; round < 10; round++ {
		good := make([]sim.V3, len(c.DFFs))
		nonSteady := make([]bool, len(c.DFFs))
		for i := range good {
			good[i] = sim.V3(rng.Intn(2))
			nonSteady[i] = rng.Intn(3) > 0
		}
		var vectors [][]sim.V3
		for k := 0; k < 4; k++ {
			v := make([]sim.V3, len(c.PIs))
			for i := range v {
				v[i] = sim.V3(rng.Intn(2))
			}
			vectors = append(vectors, v)
		}

		got := s.ObservablePPOs(good, nonSteady, vectors)
		for i, ns := range nonSteady {
			want := false
			if ns && good[i].Known() {
				faulty := append([]sim.V3(nil), good...)
				faulty[i] = sim.Not3(faulty[i])
				frame, po := s.PairDiff(good, faulty, vectors)
				want = frame >= 0 && po >= 0
			}
			if got[i] != want {
				t.Errorf("round %d ppo %d: batched %v, scalar %v", round, i, got[i], want)
			}
		}
	}
}
