package fausim

import (
	"math/rand"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/sim"
)

// TestPairDiffEventMatchesFull: the selective-trace pair replay returns
// exactly the full walk's (frame, PO) verdict — including the early exit
// when the faulty state collapses onto the good one.
func TestPairDiffEventMatchesFull(t *testing.T) {
	for _, name := range []string{"s298", "s641"} {
		c := bench.ProfileByName(name).Circuit()
		evt := New(sim.NewNet(c))
		full := New(sim.NewNet(c))
		full.SetFullEval(true)
		rng := rand.New(rand.NewSource(21))
		bits := func(n int) []sim.V3 {
			out := make([]sim.V3, n)
			for i := range out {
				out[i] = sim.V3(rng.Intn(2))
			}
			return out
		}
		for trial := 0; trial < 40; trial++ {
			good := bits(len(c.DFFs))
			faulty := append([]sim.V3(nil), good...)
			for flips := 1 + rng.Intn(3); flips > 0; flips-- {
				i := rng.Intn(len(faulty))
				faulty[i] = 1 - faulty[i]
			}
			var vectors [][]sim.V3
			for k := 0; k < 1+rng.Intn(5); k++ {
				vectors = append(vectors, bits(len(c.PIs)))
			}
			ef, ep := evt.PairDiff(good, faulty, vectors)
			ff, fp := full.PairDiff(good, faulty, vectors)
			if ef != ff || ep != fp {
				t.Fatalf("%s trial %d: event (%d,%d), full (%d,%d)", name, trial, ef, ep, ff, fp)
			}
		}
	}
}

// TestPairDiffBatchEventMatchesFull: the overlay replay resolves the
// same detected-machine word as the full dual-rail walk, for random
// 64-machine batches over random propagation frames.
func TestPairDiffBatchEventMatchesFull(t *testing.T) {
	for _, name := range []string{"s298", "s1196"} {
		c := bench.ProfileByName(name).Circuit()
		evt := New(sim.NewNet(c))
		full := New(sim.NewNet(c))
		full.SetFullEval(true)
		rng := rand.New(rand.NewSource(22))
		bits := func(n int) []sim.V3 {
			out := make([]sim.V3, n)
			for i := range out {
				out[i] = sim.V3(rng.Intn(2))
			}
			return out
		}
		for trial := 0; trial < 25; trial++ {
			good := bits(len(c.DFFs))
			faultyV := make([]sim.Word, len(c.DFFs))
			for i, v := range good {
				base := sim.Word(0)
				if v == sim.Hi {
					base = sim.AllOnes
				}
				// Most machines stay near the good state: flip each FF for
				// a sparse random machine subset, the shape ConfirmBatch
				// produces.
				faultyV[i] = base ^ (sim.Word(rng.Uint64()) & sim.Word(rng.Uint64()) & sim.Word(rng.Uint64()))
			}
			var vectors [][]sim.V3
			for k := 0; k < 1+rng.Intn(4); k++ {
				vectors = append(vectors, bits(len(c.PIs)))
			}
			live := sim.Word(rng.Uint64()) | 1
			eg := evt.GoodReplay(good, vectors)
			fg := full.GoodReplay(good, vectors)
			ed := evt.PairDiffBatch(eg, faultyV, live, vectors)
			fd := full.PairDiffBatch(fg, faultyV, live, vectors)
			if ed != fd {
				t.Fatalf("%s trial %d: event %x, full %x", name, trial, ed, fd)
			}
		}
	}
}

// TestObservablePPOsEventMatchesFull: phase-2 observability verdicts are
// identical on both paths, over random states, nonSteady masks and
// propagation vectors (X entries included).
func TestObservablePPOsEventMatchesFull(t *testing.T) {
	for _, name := range []string{"s298", "s641"} {
		c := bench.ProfileByName(name).Circuit()
		evt := New(sim.NewNet(c))
		full := New(sim.NewNet(c))
		full.SetFullEval(true)
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 25; trial++ {
			good := make([]sim.V3, len(c.DFFs))
			nonSteady := make([]bool, len(c.DFFs))
			for i := range good {
				good[i] = sim.V3(rng.Intn(3)) // X entries exercise the skip
				nonSteady[i] = rng.Intn(4) != 0
			}
			var vectors [][]sim.V3
			for k := 0; k < 1+rng.Intn(4); k++ {
				vec := make([]sim.V3, len(c.PIs))
				for i := range vec {
					vec[i] = sim.V3(rng.Intn(3))
				}
				vectors = append(vectors, vec)
			}
			eo := evt.ObservablePPOs(good, nonSteady, vectors)
			fo := full.ObservablePPOs(good, nonSteady, vectors)
			for i := range eo {
				if eo[i] != fo[i] {
					t.Fatalf("%s trial %d PPO %d: event %v, full %v", name, trial, i, eo[i], fo[i])
				}
			}
		}
	}
}
