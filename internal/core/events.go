package core

import "fogbuster/internal/faults"

// EventKind discriminates the merge-loop notifications.
type EventKind uint8

const (
	// EventFaultClassified reports the commit of an explicitly targeted
	// fault's final status (Tested, Untestable or Aborted).
	EventFaultClassified EventKind = iota
	// EventSequenceGenerated reports the commit of an explicit test
	// sequence; it follows the target's EventFaultClassified.
	EventSequenceGenerated
	// EventCreditApplied reports a fault classified TestedBySim because
	// the just-committed sequence (By) detects it.
	EventCreditApplied
	// EventProgress reports one targeting position committed: Done
	// positions of Total are final.
	EventProgress
)

// Event is one ordered notification emitted by the merge loop as it
// commits worker outcomes in targeting order. The stream is a
// deterministic function of the circuit and the options — independent of
// worker count and scheduling — except that a cancelled run truncates
// it; every event is delivered before the commit of the next targeting
// position, so consumers observe exactly the serial chronology.
type Event struct {
	Kind EventKind
	// Index is the Summary.Results index of the fault the event concerns
	// (classification, sequence and credit events).
	Index int
	// Fault is the fault at Index.
	Fault faults.Delay
	// Status is the committed classification (EventFaultClassified,
	// EventCreditApplied).
	Status Status
	// ValFail is the number of candidate sequences the independent
	// validator rejected while searching this fault
	// (EventFaultClassified only); summing it over the stream yields
	// Summary.ValidationFailures for the committed prefix.
	ValFail int
	// Seq is the committed sequence (EventSequenceGenerated only).
	Seq *TestSequence
	// By and ByIndex name the explicitly targeted fault whose sequence
	// produced the credit (EventCreditApplied only).
	By      faults.Delay
	ByIndex int
	// Done and Total carry the commit progress (EventProgress only).
	// Total is the number of positions this run will process — the whole
	// universe, or Options.MaxTargets on a budgeted run.
	Done, Total int
	// Skipped and Stolen carry the scheduling counters at this commit
	// (EventProgress only): net advisory broadcast skips (taken minus
	// regenerated) and range steals. Unlike every other Event field they
	// are scheduling-dependent; both stay zero unless the corresponding
	// option (Broadcast, Steal) is on, so the stream remains a
	// deterministic function of the options whenever the knobs are off.
	Skipped, Stolen int
}
