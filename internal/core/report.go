package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// Row returns the summary as one Table 3 row. A compacted summary
// additionally reports the post-compaction vector count.
func (s *Summary) Row() string {
	row := fmt.Sprintf("%s: tested=%d untestable=%d aborted=%d patterns=%d time=%v",
		s.Circuit, s.Tested, s.Untestable, s.Aborted, s.Patterns, s.Runtime)
	if s.Order != "" && s.Order != "natural" {
		row += fmt.Sprintf(" order=%s", s.Order)
	}
	if s.Compaction != nil {
		row += fmt.Sprintf(" compacted=%d", s.Compaction.PatternsAfter)
	}
	return row
}

// WriteReport prints a human-readable per-fault classification.
func (s *Summary) WriteReport(w io.Writer, c *netlist.Circuit) error {
	if _, err := fmt.Fprintf(w, "# %s (%s model)\n# %s\n", s.Circuit, s.Algebra, s.Row()); err != nil {
		return err
	}
	for _, r := range s.Results {
		line := fmt.Sprintf("%-28s %s", r.Fault.Name(c), r.Status)
		if r.Seq != nil {
			line += fmt.Sprintf("  [%d vectors, PO %d]", r.Seq.Len(), r.Seq.ObservePO)
			if r.Seq.Dropped {
				line += " [dropped by compaction]"
			}
			if r.Seq.Follows != nil {
				line += fmt.Sprintf(" [spliced: apply immediately after %s]", r.Seq.Follows.Name(c))
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the per-fault classification and the generated sequences
// in a machine-readable form: one row per fault with the flattened vector
// sequence (X for don't-cares, | between frames).
func (s *Summary) WriteCSV(w io.Writer, c *netlist.Circuit) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"fault", "status", "vectors", "observe_po", "sequence", "dropped", "follows"}); err != nil {
		return err
	}
	for _, r := range s.Results {
		rec := []string{r.Fault.Name(c), r.Status.String(), "", "", "", "", ""}
		if r.Seq != nil {
			rec[2] = strconv.Itoa(r.Seq.Len())
			rec[3] = strconv.Itoa(r.Seq.ObservePO)
			var frames []string
			for _, vec := range r.Seq.Vectors() {
				frames = append(frames, vecString(vec))
			}
			rec[4] = strings.Join(frames, "|")
			rec[5] = strconv.FormatBool(r.Seq.Dropped)
			if r.Seq.Follows != nil {
				rec[6] = r.Seq.Follows.Name(c)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func vecString(v []sim.V3) string {
	var sb strings.Builder
	for _, b := range v {
		sb.WriteString(b.String())
	}
	return sb.String()
}
