// Package core implements the combined gate delay fault ATPG system for
// non-scan sequential circuits: the paper's extended FOGBUSTER flow
// (Figure 4) coupling TDgen (local two-frame robust test generation) with
// SEMILET (forward fault effect propagation, reverse-time synchronization)
// and the fault simulators FAUSIM and TDsim.
//
// For every fault the engine runs the paper's steps: local test
// generation; propagation of the fault effect to a primary output when it
// only reached the state register; synchronization of the required initial
// state; with backtracking between the steps (a failed sequential phase
// demands the next local test from the resumable generator). After each
// successful generation the assembled sequence is fault simulated and all
// additionally detected faults are dropped from the target list.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/order"
	"fogbuster/internal/sim"
	"fogbuster/internal/testability"
	"fogbuster/internal/timing"
)

// Status classifies one fault at the end of the run, mirroring the
// columns of the paper's Table 3 (tested subsumes both explicit and
// simulation-credited detections).
type Status uint8

const (
	// Pending means the fault has not been processed yet.
	Pending Status = iota
	// Tested means a test sequence was explicitly generated.
	Tested
	// TestedBySim means fault simulation of another fault's sequence
	// detected this fault, so it was never explicitly targeted.
	TestedBySim
	// Untestable means the complete search space holds no robust test
	// (combinationally redundant or sequentially untestable).
	Untestable
	// Aborted means a backtrack budget ran out first.
	Aborted
)

// String returns a short label.
func (s Status) String() string {
	switch s {
	case Tested:
		return "tested"
	case TestedBySim:
		return "tested(sim)"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	default:
		return "pending"
	}
}

// Detected reports whether the status counts into the paper's "tested"
// column.
func (s Status) Detected() bool { return s == Tested || s == TestedBySim }

// Options configures an Engine. The zero value reproduces the paper's
// setup: robust algebra and 100+100 backtrack limits.
type Options struct {
	// Algebra selects the fault model; nil means logic.Robust.
	Algebra *logic.Algebra
	// LocalBacktracks is TDgen's per-fault budget; 0 means 100.
	LocalBacktracks int
	// SeqBacktracks is SEMILET's per-fault budget, shared by propagation
	// and synchronization across all local alternatives; 0 means 100.
	SeqBacktracks int
	// MaxFrames bounds propagation and synchronization depth; 0 means 32.
	MaxFrames int
	// DisableFaultSim turns off the post-generation fault simulation
	// credit (every fault is then explicitly targeted).
	DisableFaultSim bool
	// DisableValidation skips the independent end-to-end check of each
	// generated sequence.
	DisableValidation bool
	// StrictInit demands true synchronizing sequences from the all-X
	// power-up state. The default (optimistic) policy follows the 1990s
	// convention the paper's s27 numbers imply: state bits that no input
	// sequence can force are assumed as power-up values. Several ISCAS'89
	// machines have such bits (s27's G7=0 is reachable only from G7=0),
	// and under the strict policy their robust delay fault coverage
	// collapses; see EXPERIMENTS.md for the analysis.
	StrictInit bool
	// VariationBudget enables the paper's future-work timing refinement
	// (arrival and stabilization time analysis). Zero (the default) keeps
	// the pure robust handoff: transitioning or hazardous PPO values are
	// never passed to the sequential engine. A value v > 0 allows handing
	// over the final value of any PPO whose stabilization slack against
	// the fast clock period is at least v delay units: such a signal
	// settles before the fast capture edge even when fault-free paths run
	// almost v units slower than nominal. Small v approaches the
	// non-robust handoff.
	VariationBudget int
	// Seed drives the random X-fill; the default 0 is a fixed seed. The
	// X-fill stream is derived per fault from Seed and the fault index,
	// so a given Seed produces the same Summary at every worker count.
	Seed int64
	// Workers is the number of ATPG workers sharding the fault universe.
	// 0 (the default) uses runtime.NumCPU(); a negative value forces a
	// single worker. Results are bit-identical for every worker count.
	Workers int
	// Order selects the fault-targeting order (see internal/order): the
	// zero value and order.Natural keep the canonical line order;
	// order.Topological, order.SCOAP and order.ADI reorder the universe.
	// The ordering changes which faults end up explicitly targeted
	// versus credited by fault simulation, never the per-fault search
	// itself (each fault keeps the X-fill stream of its canonical
	// index), and results remain bit-identical at every worker count for
	// a given ordering.
	Order order.Heuristic
	// ScalarCredit runs the post-generation credit sweep on the scalar
	// reference path (one eight-valued confirmation per candidate)
	// instead of the word-parallel default (64 candidates per machine
	// word, see tdsim.ConfirmBatch). The two paths produce bit-identical
	// summaries — TestBatchedCreditInvariance pins it — so the knob
	// exists only for differential testing and benchmarking.
	ScalarCredit bool
	// ScalarSearch runs the generation-phase search on the scalar
	// reference path: X-fill trials are confirmed one frame at a time in
	// the exact lane order of the batched default (64 completions per
	// machine word, see tdsim.ConfirmFills), and decision-probe scores
	// are computed by per-lane scalar simulation instead of one
	// lane-parallel pass. The two paths enumerate identical candidates,
	// fills and decision orders, so Summaries are bit-identical —
	// TestBatchedSearchInvariance pins it — and the knob exists only for
	// differential testing and benchmarking.
	ScalarSearch bool
	// FullEval forces every simulation pass — confirmation, credit
	// sweep, propagation-phase search, splice re-confirmation — onto the
	// full levelized walk instead of the event-driven selective-trace
	// kernel that re-evaluates only fault-site fanout cones. The two
	// paths produce bit-identical Summaries (Detects included) at every
	// worker count, pinned by TestEventDrivenInvariance; the knob exists
	// as the reference oracle for differential tests and benchmarks.
	FullEval bool
	// ConeSets selects the representation of the shared topology's lazy
	// per-stem cone membership sets: "" or "auto" (pick per stem), "dense"
	// (bitsets, the pre-compression oracle), "compressed" (interval
	// lists). Purely a memory/speed trade — every policy answers cone
	// queries identically — so results never depend on it.
	ConeSets string
	// Broadcast enables the cross-worker detected-set broadcast: workers
	// publish the detection list of every completed sequence before its
	// commit turn, and other workers consult that advisory snapshot before
	// claiming a fault and between local alternatives, skipping faults a
	// finished sequence already covers. The merge loop stays the sole
	// authority — an advisory skip whose coverer is discarded at commit is
	// regenerated inline, deterministically — so the Summary remains
	// bit-identical to a run without the broadcast, at every worker count.
	// Only Runtime and the observability counters (Summary.BroadcastSkips,
	// Summary.BroadcastMisses) change.
	Broadcast bool
	// Steal replaces the shared claim counter with per-worker striped
	// position ranges plus work-stealing: a worker whose range runs dry
	// takes the back half of the largest remaining range. Claim order is
	// pure scheduling — commits still follow the canonical targeting
	// permutation — so the Summary is bit-identical to the stock claimer;
	// only Runtime and Summary.Steals change.
	Steal bool
	// MaxTargets, when positive, caps the run at the first MaxTargets
	// positions of the targeting permutation; every later fault is left
	// Pending (it may still be credited TestedBySim by an in-budget
	// sequence). The processed prefix is bit-identical to the same prefix
	// of an unbudgeted run — the semantics of a deterministic
	// cancellation — which makes budgeted runs on industrial-scale
	// circuits reproducible.
	MaxTargets int
	// ShardLo and ShardHi restrict the run to targeting positions
	// [ShardLo, ShardHi) of the ordering permutation: claiming, striping
	// and stealing stay inside the window and every position outside it
	// is left as preloaded (Pending by default). ShardHi == 0 means the
	// end of the targeted prefix, so the zero values keep the ordinary
	// whole-universe run; both bounds are clamped to the prefix. A
	// mid-universe shard almost always wants DeferCredit too — the in-run
	// credit of positions [0, ShardLo) is unknowable here — which is why
	// the public façade couples the two.
	ShardLo, ShardHi int
	// DeferCredit turns off the merge loop's in-run simulation credit:
	// every position in the window is explicitly processed, each
	// committed sequence records its complete detection set
	// (TestSequence.Detects, exactly as under Compact), and no fault is
	// ever classified TestedBySim during the run. A later merge across
	// shard windows replays the credit chronology from the recorded sets
	// and reproduces the ordinary run bit for bit; see pkg/atpg
	// MergeResults. The advisory broadcast is forced off (its skips
	// assume in-run credit) and Compact is rejected (compaction needs the
	// in-run chronology).
	DeferCredit bool
	// Preload seeds the authoritative status array before the run with
	// the committed statuses of a checkpoint being resumed; positions the
	// run's window covers are then typically all Pending. Its length must
	// be zero (no preload) or the fault-universe size.
	Preload []Status
	// Compact records the full detection set of every generated sequence
	// (TestSequence.Detects) and the generation order (Summary.SeqOrder)
	// so that internal/compact can drop and splice sequences after the
	// run. It changes no fault status: the skip filter the credit pass
	// drops here only ever excludes faults the merge loop would refuse
	// to credit anyway.
	Compact bool
	// OnEvent, when non-nil, receives the merge loop's commit
	// notifications (see Event) synchronously on the RunContext
	// goroutine, strictly in targeting order. The callback must not call
	// back into the engine; it never changes the Summary — the stream is
	// pure observation of the commits.
	OnEvent func(Event)
	// Topology, when non-nil, is a prebuilt simulation topology for the
	// circuit, letting many engines over the same circuit share one CSR
	// view and its lazily built cone sets instead of re-levelizing per
	// run (the Topology is immutable once built and already shared by
	// all workers of a run). It must have been built from the same
	// *netlist.Circuit handed to New; New rejects a mismatch. The cone
	// policy of a shared topology is fixed by its first user —
	// SetConePolicy is a no-op once cone sets exist — which never
	// changes results (the policy is purely a memory/speed trade).
	Topology *sim.Topology
}

// workerCount resolves the Workers option.
func (o Options) workerCount() int {
	switch {
	case o.Workers > 0:
		return o.Workers
	case o.Workers < 0:
		return 1
	default:
		return runtime.NumCPU()
	}
}

// TestSequence is one complete delay fault test in the paper's time-frame
// model (Figure 2): initialization vectors under the slow clock, the
// two-pattern local test V1 (slow) and V2 (fast), and the propagation
// vectors under the slow clock. X entries are don't-cares.
type TestSequence struct {
	Fault      faults.Delay
	Sync       [][]sim.V3
	V1, V2     []sim.V3
	Prop       [][]sim.V3
	ObservePO  int // PO index observing the effect, or -1
	ObservePPO int // FF index capturing the effect, or -1
	// Assumed holds power-up state bits the optimistic initialization
	// policy committed to; nil for strictly synchronized tests.
	Assumed []sim.V3
	// Detects is the full set of faults this sequence detects under the
	// engine's concrete fill, recorded only when Options.Compact is set.
	// It is a superset of the faults the merge loop credited to the
	// sequence and need not contain Fault itself (the target's detection
	// is witnessed by the independent validator under a different fill).
	Detects []faults.Delay
	// Dropped marks a sequence removed by test-set compaction
	// (internal/compact): every fault it covered is detected by a kept
	// sequence.
	Dropped bool
	// Follows, when non-nil, names the sequence this one was spliced
	// after: the overlap merge cut this sequence's synchronization
	// prefix, so it is valid only applied immediately after the test for
	// the named fault.
	Follows *faults.Delay
}

// Len returns the vector count, the paper's per-test pattern cost
// (initialization and propagation included).
func (t *TestSequence) Len() int { return len(t.Sync) + 2 + len(t.Prop) }

// Vectors flattens the sequence in application order.
func (t *TestSequence) Vectors() [][]sim.V3 {
	out := make([][]sim.V3, 0, t.Len())
	out = append(out, t.Sync...)
	out = append(out, t.V1, t.V2)
	out = append(out, t.Prop...)
	return out
}

// FaultResult is the outcome for one fault.
type FaultResult struct {
	Fault  faults.Delay
	Status Status
	Seq    *TestSequence // non-nil only for explicitly tested faults
}

// Summary aggregates one run in the shape of a Table 3 row.
type Summary struct {
	Circuit    string
	Algebra    string
	Order      string // fault-ordering heuristic (internal/order)
	Results    []FaultResult
	Tested     int // explicit + simulation credit
	Explicit   int
	Untestable int
	Aborted    int
	Patterns   int // total vectors over all generated sequences
	Runtime    time.Duration
	// ValidationFailures counts generated sequences the independent
	// checker rejected; it must be zero and exists as a self-check.
	ValidationFailures int
	// BroadcastSkips counts the advisory skips workers took under
	// Options.Broadcast; BroadcastMisses is the subset the merge loop had
	// to take back by regenerating inline (the skipped fault was still
	// pending when its position committed). Steals counts range-stealing
	// operations under Options.Steal. All three are scheduling-dependent
	// observability counters, like Runtime: they vary run to run and are
	// excluded from canonical results.
	BroadcastSkips  int
	BroadcastMisses int
	Steals          int
	// SeqOrder lists the Results indices of explicitly tested faults in
	// generation (commit) order; test-set compaction replays it in
	// reverse.
	SeqOrder []int
	// Lo, Hi and Cursor expose the run's committed-prefix window:
	// targeting positions [Lo, Hi) were in range and [Lo, Cursor) are
	// committed. Cursor is the next position the merge loop would have
	// committed — Hi for a complete run, less for a cancelled one — and
	// is what a checkpoint resumes from: the chronology up to Cursor is
	// final and bit-identical to the same prefix of an uninterrupted run.
	Lo, Hi, Cursor int
	// Perm is the slice of the targeting permutation covering [Lo, Hi)
	// (the fault index at each window position), recorded only under
	// Options.DeferCredit so a partial shard result carries enough to be
	// merged without recomputing the ordering.
	Perm []int
	// Compaction is filled by internal/compact when the test set was
	// compacted; nil otherwise.
	Compaction *CompactionStats
}

// CompactionStats summarizes what internal/compact did to the test set.
type CompactionStats struct {
	Sequences      int // explicit sequences before compaction
	Kept           int // sequences surviving the reverse-order drop
	Dropped        int // sequences whose covered faults later tests detect
	PatternsBefore int // total vectors before compaction
	PatternsAfter  int // total vectors after dropping and splicing
	Splices        int // adjacent sequence pairs overlap-merged
	SplicedFrames  int // vectors saved by the overlap merges
	// Complete reports whether the recorded detection sets covered every
	// detected fault. On a summary produced without Options.Compact the
	// sets are absent, coverage is incomplete, and compact.Apply refuses
	// to splice (the reverse-order drop still ran); callers should treat
	// false as a refusal.
	Complete bool
}

// Engine runs the combined flow over a circuit. The per-fault search
// state (circuit view, sequential engine, simulators, X-fill stream)
// lives on workers cloned from the engine, so Run can shard the fault
// universe across any number of goroutines without sharing mutable
// state; the Engine itself holds only read-only inputs.
type Engine struct {
	c    *netlist.Circuit
	opts Options
	alg  *logic.Algebra
	meas *testability.Measures
	tim  *timing.Analysis // nil unless VariationBudget > 0
	topo *sim.Topology    // immutable CSR topology shared by all workers

	index map[faults.Delay]int
}

// New prepares an engine for the circuit, rejecting options no run
// should silently reinterpret: an unrecognized Options.Order (falling
// back to the natural order would let an experiment report a heuristic
// it never ran) and negative budgets or depths (the zero value already
// means "default"; a negative one is always a caller bug). The public
// façade (pkg/atpg) surfaces these as construction errors.
func New(c *netlist.Circuit, opts Options) (*Engine, error) {
	h, err := order.Parse(string(opts.Order))
	if err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	opts.Order = h
	switch {
	case opts.LocalBacktracks < 0:
		return nil, fmt.Errorf("core: negative LocalBacktracks %d", opts.LocalBacktracks)
	case opts.SeqBacktracks < 0:
		return nil, fmt.Errorf("core: negative SeqBacktracks %d", opts.SeqBacktracks)
	case opts.MaxFrames < 0:
		return nil, fmt.Errorf("core: negative MaxFrames %d", opts.MaxFrames)
	case opts.VariationBudget < 0:
		return nil, fmt.Errorf("core: negative VariationBudget %d", opts.VariationBudget)
	case opts.MaxTargets < 0:
		return nil, fmt.Errorf("core: negative MaxTargets %d", opts.MaxTargets)
	case opts.ShardLo < 0:
		return nil, fmt.Errorf("core: negative ShardLo %d", opts.ShardLo)
	case opts.ShardHi < 0:
		return nil, fmt.Errorf("core: negative ShardHi %d", opts.ShardHi)
	case opts.ShardHi > 0 && opts.ShardLo > opts.ShardHi:
		return nil, fmt.Errorf("core: shard window [%d,%d) is inverted", opts.ShardLo, opts.ShardHi)
	case opts.DeferCredit && opts.Compact:
		return nil, fmt.Errorf("core: DeferCredit is incompatible with Compact (compaction needs the in-run credit chronology)")
	}
	if n := len(opts.Preload); n != 0 && n != 2*len(c.Lines()) {
		return nil, fmt.Errorf("core: Preload holds %d statuses, fault universe has %d", n, 2*len(c.Lines()))
	}
	conePolicy, err := sim.ParseConePolicy(opts.ConeSets)
	if err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	if opts.Algebra == nil {
		opts.Algebra = logic.Robust
	}
	if opts.LocalBacktracks == 0 {
		opts.LocalBacktracks = 100
	}
	if opts.SeqBacktracks == 0 {
		opts.SeqBacktracks = 100
	}
	topo := opts.Topology
	if topo == nil {
		topo = sim.NewTopology(c)
	} else if topo.C != c {
		return nil, fmt.Errorf("core: shared topology was built for circuit %q, not %q", topo.C.Name, c.Name)
	}
	e := &Engine{
		c:    c,
		opts: opts,
		alg:  opts.Algebra,
		meas: testability.Compute(c),
		topo: topo,
	}
	e.topo.SetConePolicy(conePolicy)
	if opts.VariationBudget > 0 {
		e.tim = timing.Analyze(c, nil)
	}
	return e, nil
}

// MustNew is New for callers whose options are compile-time constants
// (tests, benchmarks); it panics on the errors New reports.
func MustNew(c *netlist.Circuit, opts Options) *Engine {
	e, err := New(c, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// faultOutcome is one worker's result for one claimed targeting
// position (a fault index when no ordering permutation is active). An
// outcome with status Pending marks a fault the worker skipped: because
// the merge loop had already credited it (authoritative, always safe),
// or — advisory set — because the cross-worker broadcast claimed a
// completed sequence covers it. The merge loop re-checks advisory skips
// and regenerates the fault inline when the claim did not hold.
type faultOutcome struct {
	idx      int
	status   Status
	seq      *TestSequence
	detected []faults.Delay // faults the sequence additionally detects
	valFail  int
	advisory bool
}

// Run processes the complete delay fault universe and returns the
// summary. The universe is sharded over Options.Workers goroutines; each
// worker owns a full clone of the mutable ATPG state and an X-fill RNG
// reseeded per fault from Options.Seed and the fault's canonical index,
// and the merge loop commits outcomes strictly in targeting order,
// reconciling the post-generation simulation credit exactly as the
// serial flow would. The summary is therefore bit-identical for every
// worker count.
//
// When Options.Order names a heuristic, targeting order is the
// deterministic permutation internal/order computes; the canonical
// index still seeds each fault's X-fill stream, so a fault's search is
// the same under every ordering and only the credit chronology moves.
func (e *Engine) Run() *Summary {
	sum, _ := e.RunContext(context.Background())
	return sum
}

// RunContext is Run under a caller-controlled context. Cancelling the
// context stops the run promptly: workers give up their searches between
// decision alternatives, the merge loop commits no further positions,
// and RunContext returns the partial summary together with ctx's error.
// Every unprocessed fault is left Pending; the committed prefix is
// bit-identical to the same prefix of an uncancelled run, because
// cancellation only truncates the deterministic commit chronology, never
// reorders it.
func (e *Engine) RunContext(ctx context.Context) (*Summary, error) {
	start := time.Now() //lint:allow determinism Summary.Runtime is the one wall-clock field; canonical JSON zeroes it
	all := faults.AllDelay(e.c)
	n := len(all)
	e.index = make(map[faults.Delay]int, n)
	for i, f := range all {
		e.index[f] = i
	}
	perm := order.Permutation(e.c, all, e.opts.Order, e.opts.Seed)

	sum := &Summary{Circuit: e.c.Name, Algebra: e.alg.Name(), Order: e.opts.Order.Name()}
	sum.Results = make([]FaultResult, n)
	for i, f := range all {
		sum.Results[i].Fault = f
	}

	// nEff is the targeted prefix of the permutation: all of it, or the
	// first MaxTargets positions of a budgeted run. The run's window
	// [lo, hi) is that whole prefix, or the shard sub-range clamped to
	// it.
	nEff := n
	if e.opts.MaxTargets > 0 && e.opts.MaxTargets < n {
		nEff = e.opts.MaxTargets
	}
	lo, hi := e.opts.ShardLo, nEff
	if e.opts.ShardHi > 0 && e.opts.ShardHi < nEff {
		hi = e.opts.ShardHi
	}
	if lo > hi {
		lo = hi
	}
	sum.Lo, sum.Hi = lo, hi
	if e.opts.DeferCredit {
		// Natural order has no materialized permutation (nil means
		// identity); a shard result still records its window's slice.
		sum.Perm = make([]int, hi-lo)
		for i := range sum.Perm {
			sum.Perm[i] = lo + i
			if perm != nil {
				sum.Perm[i] = perm[lo+i]
			}
		}
	}

	// status is written only by the merge loop; workers read it to skip
	// faults that are already classified (a racy read can only cause a
	// harmless speculative generation, never a wrong result, because the
	// merge loop re-checks before committing). A resumed run seeds it
	// with the checkpoint's committed statuses.
	status := make([]atomic.Uint32, n)
	for i, st := range e.opts.Preload {
		if st != Pending {
			status[i].Store(uint32(st))
		}
	}
	committed := hi
	if hi > lo {
		workers := e.opts.workerCount()
		if workers > hi-lo {
			workers = hi - lo
		}
		var claims claimer
		if e.opts.Steal {
			claims = newStealClaimer(lo, hi, workers)
		} else {
			claims = newCounterClaimer(lo, hi)
		}
		var bcast *broadcast
		if e.opts.Broadcast && !e.opts.DeferCredit {
			bcast = newBroadcast(n)
		}
		rs := &runState{
			all:     all,
			perm:    perm,
			status:  status,
			claims:  claims,
			bcast:   bcast,
			results: make(chan faultOutcome, workers),
		}
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(self int) {
				defer wg.Done()
				e.newWorker().run(ctx, rs, self)
			}(i)
		}
		committed = e.merge(ctx, sum, rs, lo, hi)
		wg.Wait()
		sum.Steals = int(claims.steals())
		if bcast != nil {
			sum.BroadcastSkips = int(bcast.skips.Load())
			sum.BroadcastMisses = int(bcast.misses.Load())
		}
	}
	sum.Cursor = committed

	for i := range all {
		st := Status(status[i].Load())
		sum.Results[i].Status = st
		switch st {
		case Tested:
			sum.Tested++
			sum.Explicit++
		case TestedBySim:
			sum.Tested++
		case Untestable:
			sum.Untestable++
		case Aborted:
			sum.Aborted++
		}
	}
	sum.Runtime = time.Since(start) //lint:allow determinism Summary.Runtime is the one wall-clock field; canonical JSON zeroes it
	if committed < hi {
		// Only a done context makes the merge loop stop short.
		return sum, ctx.Err()
	}
	return sum, nil
}

// merge commits worker outcomes strictly in targeting order (positions
// in the ordering permutation; fault order when perm is nil) over the
// window [lo, hi) and returns the final cursor — the next position it
// would have committed. Out-of-order arrivals wait in a reorder buffer;
// a committed Tested outcome applies its simulation credit to every
// still-pending fault (unless Options.DeferCredit moves that replay to
// merge time across shards), and an outcome for a fault that an earlier
// commit credited is discarded, exactly reproducing the serial
// processing order. An advisory skip (broadcast) whose fault is still
// pending at its commit turn is a mis-speculation: the loop regenerates
// it inline on a lazily created worker, producing bit for bit the
// outcome the skipping worker would have — process is a pure function of
// the fault index — so the commit chronology never deviates from the
// broadcast-free run. Options.OnEvent observes every commit in that
// order. A done context stops the loop before the next commit.
func (e *Engine) merge(ctx context.Context, sum *Summary, rs *runState, lo, hi int) int {
	emit := e.opts.OnEvent
	var mw *worker // lazy; only advisory mis-speculations need it
	reorder := make(map[int]faultOutcome)
	cursor := lo
	for cursor < hi {
		var o faultOutcome
		select {
		case o = <-rs.results:
		case <-ctx.Done():
			return cursor
		}
		reorder[o.idx] = o
		for {
			cur, ok := reorder[cursor]
			if !ok {
				break
			}
			delete(reorder, cursor)
			fi := rs.faultAt(cursor)
			if Status(rs.status[fi].Load()) == Pending {
				if cur.advisory {
					// The skipped fault is still pending: the sequence the
					// broadcast promised was discarded at its own commit.
					// Regenerate here, deterministically.
					rs.bcast.misses.Add(1)
					var interrupted bool
					if mw == nil {
						mw = e.newWorker()
					}
					cur, interrupted = mw.process(ctx, rs, cursor, fi, false)
					if interrupted {
						return cursor
					}
				}
				rs.status[fi].Store(uint32(cur.status))
				sum.ValidationFailures += cur.valFail
				if emit != nil && cur.status != Pending {
					emit(Event{Kind: EventFaultClassified, Index: fi, Fault: sum.Results[fi].Fault, Status: cur.status, ValFail: cur.valFail})
				}
				if cur.status == Tested {
					sum.Results[fi].Seq = cur.seq
					sum.Patterns += cur.seq.Len()
					sum.SeqOrder = append(sum.SeqOrder, fi)
					if e.opts.Compact || e.opts.DeferCredit {
						cur.seq.Detects = cur.detected
					}
					if emit != nil {
						emit(Event{Kind: EventSequenceGenerated, Index: fi, Fault: sum.Results[fi].Fault, Seq: cur.seq})
					}
					if !e.opts.DeferCredit {
						for _, f := range cur.detected {
							if j, ok := e.index[f]; ok && Status(rs.status[j].Load()) == Pending {
								rs.status[j].Store(uint32(TestedBySim))
								if emit != nil {
									emit(Event{Kind: EventCreditApplied, Index: j, Fault: f, Status: TestedBySim, By: sum.Results[fi].Fault, ByIndex: fi})
								}
							}
						}
					}
				}
			}
			cursor++
			if emit != nil {
				ev := Event{Kind: EventProgress, Done: cursor, Total: hi}
				if rs.bcast != nil {
					// Net useful skips: advisory skips minus the subset
					// regenerated here.
					ev.Skipped = int(rs.bcast.skips.Load() - rs.bcast.misses.Load())
				}
				ev.Stolen = int(rs.claims.steals())
				emit(ev)
			}
		}
	}
	return cursor
}
