// Package core implements the combined gate delay fault ATPG system for
// non-scan sequential circuits: the paper's extended FOGBUSTER flow
// (Figure 4) coupling TDgen (local two-frame robust test generation) with
// SEMILET (forward fault effect propagation, reverse-time synchronization)
// and the fault simulators FAUSIM and TDsim.
//
// For every fault the engine runs the paper's steps: local test
// generation; propagation of the fault effect to a primary output when it
// only reached the state register; synchronization of the required initial
// state; with backtracking between the steps (a failed sequential phase
// demands the next local test from the resumable generator). After each
// successful generation the assembled sequence is fault simulated and all
// additionally detected faults are dropped from the target list.
package core

import (
	"math/rand"
	"time"

	"fogbuster/internal/faults"
	"fogbuster/internal/fausim"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/semilet"
	"fogbuster/internal/sim"
	"fogbuster/internal/tdsim"
	"fogbuster/internal/testability"
	"fogbuster/internal/timing"
)

// Status classifies one fault at the end of the run, mirroring the
// columns of the paper's Table 3 (tested subsumes both explicit and
// simulation-credited detections).
type Status uint8

const (
	// Pending means the fault has not been processed yet.
	Pending Status = iota
	// Tested means a test sequence was explicitly generated.
	Tested
	// TestedBySim means fault simulation of another fault's sequence
	// detected this fault, so it was never explicitly targeted.
	TestedBySim
	// Untestable means the complete search space holds no robust test
	// (combinationally redundant or sequentially untestable).
	Untestable
	// Aborted means a backtrack budget ran out first.
	Aborted
)

// String returns a short label.
func (s Status) String() string {
	switch s {
	case Tested:
		return "tested"
	case TestedBySim:
		return "tested(sim)"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	default:
		return "pending"
	}
}

// Detected reports whether the status counts into the paper's "tested"
// column.
func (s Status) Detected() bool { return s == Tested || s == TestedBySim }

// Options configures an Engine. The zero value reproduces the paper's
// setup: robust algebra and 100+100 backtrack limits.
type Options struct {
	// Algebra selects the fault model; nil means logic.Robust.
	Algebra *logic.Algebra
	// LocalBacktracks is TDgen's per-fault budget; 0 means 100.
	LocalBacktracks int
	// SeqBacktracks is SEMILET's per-fault budget, shared by propagation
	// and synchronization across all local alternatives; 0 means 100.
	SeqBacktracks int
	// MaxFrames bounds propagation and synchronization depth; 0 means 32.
	MaxFrames int
	// DisableFaultSim turns off the post-generation fault simulation
	// credit (every fault is then explicitly targeted).
	DisableFaultSim bool
	// DisableValidation skips the independent end-to-end check of each
	// generated sequence.
	DisableValidation bool
	// StrictInit demands true synchronizing sequences from the all-X
	// power-up state. The default (optimistic) policy follows the 1990s
	// convention the paper's s27 numbers imply: state bits that no input
	// sequence can force are assumed as power-up values. Several ISCAS'89
	// machines have such bits (s27's G7=0 is reachable only from G7=0),
	// and under the strict policy their robust delay fault coverage
	// collapses; see EXPERIMENTS.md for the analysis.
	StrictInit bool
	// VariationBudget enables the paper's future-work timing refinement
	// (arrival and stabilization time analysis). Zero (the default) keeps
	// the pure robust handoff: transitioning or hazardous PPO values are
	// never passed to the sequential engine. A value v > 0 allows handing
	// over the final value of any PPO whose stabilization slack against
	// the fast clock period is at least v delay units: such a signal
	// settles before the fast capture edge even when fault-free paths run
	// almost v units slower than nominal. Small v approaches the
	// non-robust handoff.
	VariationBudget int
	// Seed drives the random X-fill; the default 0 is a fixed seed.
	Seed int64
}

// TestSequence is one complete delay fault test in the paper's time-frame
// model (Figure 2): initialization vectors under the slow clock, the
// two-pattern local test V1 (slow) and V2 (fast), and the propagation
// vectors under the slow clock. X entries are don't-cares.
type TestSequence struct {
	Fault      faults.Delay
	Sync       [][]sim.V3
	V1, V2     []sim.V3
	Prop       [][]sim.V3
	ObservePO  int // PO index observing the effect, or -1
	ObservePPO int // FF index capturing the effect, or -1
	// Assumed holds power-up state bits the optimistic initialization
	// policy committed to; nil for strictly synchronized tests.
	Assumed []sim.V3
}

// Len returns the vector count, the paper's per-test pattern cost
// (initialization and propagation included).
func (t *TestSequence) Len() int { return len(t.Sync) + 2 + len(t.Prop) }

// Vectors flattens the sequence in application order.
func (t *TestSequence) Vectors() [][]sim.V3 {
	out := make([][]sim.V3, 0, t.Len())
	out = append(out, t.Sync...)
	out = append(out, t.V1, t.V2)
	out = append(out, t.Prop...)
	return out
}

// FaultResult is the outcome for one fault.
type FaultResult struct {
	Fault  faults.Delay
	Status Status
	Seq    *TestSequence // non-nil only for explicitly tested faults
}

// Summary aggregates one run in the shape of a Table 3 row.
type Summary struct {
	Circuit    string
	Algebra    string
	Results    []FaultResult
	Tested     int // explicit + simulation credit
	Explicit   int
	Untestable int
	Aborted    int
	Patterns   int // total vectors over all generated sequences
	Runtime    time.Duration
	// ValidationFailures counts generated sequences the independent
	// checker rejected; it must be zero and exists as a self-check.
	ValidationFailures int
}

// Engine runs the combined flow over a circuit.
type Engine struct {
	c    *netlist.Circuit
	net  *sim.Net
	opts Options
	alg  *logic.Algebra
	meas *testability.Measures
	sem  *semilet.Engine
	td   *tdsim.Sim
	fs   *fausim.Sim
	rng  *rand.Rand
	tim  *timing.Analysis // nil unless VariationBudget >= 0

	status  []Status
	index   map[faults.Delay]int
	valFail int
}

// New prepares an engine for the circuit.
func New(c *netlist.Circuit, opts Options) *Engine {
	if opts.Algebra == nil {
		opts.Algebra = logic.Robust
	}
	if opts.LocalBacktracks == 0 {
		opts.LocalBacktracks = 100
	}
	if opts.SeqBacktracks == 0 {
		opts.SeqBacktracks = 100
	}
	net := sim.NewNet(c)
	meas := testability.Compute(c)
	e := &Engine{
		c:    c,
		net:  net,
		opts: opts,
		alg:  opts.Algebra,
		meas: meas,
		sem:  semilet.NewEngine(net, semilet.Options{MaxFrames: opts.MaxFrames, Meas: meas}),
		td:   tdsim.New(net, opts.Algebra),
		fs:   fausim.New(net),
		rng:  rand.New(rand.NewSource(opts.Seed + 1)),
	}
	if opts.VariationBudget > 0 {
		e.tim = timing.Analyze(c, nil)
	}
	return e
}

// Run processes the complete delay fault universe in line order and
// returns the summary.
func (e *Engine) Run() *Summary {
	start := time.Now()
	all := faults.AllDelay(e.c)
	e.status = make([]Status, len(all))
	e.index = make(map[faults.Delay]int, len(all))
	for i, f := range all {
		e.index[f] = i
	}

	sum := &Summary{Circuit: e.c.Name, Algebra: e.alg.Name()}
	sum.Results = make([]FaultResult, len(all))
	for i, f := range all {
		sum.Results[i].Fault = f
	}

	for i, f := range all {
		if e.status[i] != Pending {
			continue
		}
		seq, st := e.generate(f)
		e.status[i] = st
		if st == Tested {
			sum.Results[i].Seq = seq
			sum.Patterns += seq.Len()
			if !e.opts.DisableFaultSim {
				e.credit(seq)
			}
		}
	}

	for i := range all {
		sum.Results[i].Status = e.status[i]
		switch e.status[i] {
		case Tested:
			sum.Tested++
			sum.Explicit++
		case TestedBySim:
			sum.Tested++
		case Untestable:
			sum.Untestable++
		case Aborted:
			sum.Aborted++
		}
	}
	sum.ValidationFailures = e.valFail
	sum.Runtime = time.Since(start)
	return sum
}
