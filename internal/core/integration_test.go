package core

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/logic"
)

// TestTable3Integration runs the complete flow over every Table 3 circuit
// and checks the invariants that make the results meaningful: full fault
// classification, zero validation failures, and the qualitative shape of
// the paper's evaluation. Skipped with -short (about 20s total).
func TestTable3Integration(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 3 run")
	}
	type row struct{ tested, untestable, aborted int }
	got := make(map[string]row)
	for _, p := range bench.Profiles {
		c := p.Circuit()
		sum := MustNew(c, Options{}).Run()
		if sum.ValidationFailures != 0 {
			t.Errorf("%s: %d validation failures", p.Name, sum.ValidationFailures)
		}
		if n := sum.Tested + sum.Untestable + sum.Aborted; n != p.Paper.Faults() {
			t.Errorf("%s: classified %d faults, want %d", p.Name, n, p.Paper.Faults())
		}
		got[p.Name] = row{sum.Tested, sum.Untestable, sum.Aborted}
		t.Logf("%-7s tested=%4d untestable=%4d aborted=%4d (paper %d/%d/%d)",
			p.Name, sum.Tested, sum.Untestable, sum.Aborted,
			p.Paper.Tested, p.Paper.Untestable, p.Paper.Aborted)
	}
	// Shape checks, mirroring the paper's observations:
	// the counter family is untestable-heavy under the robust model...
	for _, name := range []string{"s208", "s420", "s838"} {
		r := got[name]
		if r.untestable <= r.tested {
			t.Errorf("%s: expected untestable (%d) to dominate tested (%d)", name, r.untestable, r.tested)
		}
	}
	// ...while the pipeline family is tested-heavy.
	for _, name := range []string{"s641", "s1196", "s1238"} {
		r := got[name]
		if r.tested <= r.untestable {
			t.Errorf("%s: expected tested (%d) to dominate untestable (%d)", name, r.tested, r.untestable)
		}
	}
}

// TestNonRobustShape verifies the paper's concluding prediction across
// several circuits: the non-robust model never increases the untestable
// count and reduces it overall. Skipped with -short.
func TestNonRobustShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-circuit ablation")
	}
	totalRob, totalNon := 0, 0
	for _, name := range []string{"s27", "s298", "s344", "s386", "s641"} {
		c := bench.ProfileByName(name).Circuit()
		rob := MustNew(c, Options{}).Run()
		non := MustNew(c, Options{Algebra: logic.NonRobust}).Run()
		if non.ValidationFailures != 0 {
			t.Errorf("%s: non-robust validation failures: %d", name, non.ValidationFailures)
		}
		totalRob += rob.Untestable
		totalNon += non.Untestable
		t.Logf("%-6s untestable robust=%d non-robust=%d", name, rob.Untestable, non.Untestable)
	}
	if totalNon >= totalRob {
		t.Errorf("non-robust untestable total %d did not drop below robust %d", totalNon, totalRob)
	}
}

// TestStrictInitS27 pins the reachability analysis documented in
// EXPERIMENTS.md: under strict all-X synchronization, s27's synchronizable
// state space (G7 stuck at 1, G6 at 0) leaves no robustly testable fault.
func TestStrictInitS27(t *testing.T) {
	sum := MustNew(bench.NewS27(), Options{StrictInit: true}).Run()
	if sum.Tested != 0 {
		t.Fatalf("strict-init s27 tested = %d; the G7=0 unreachability argument says 0", sum.Tested)
	}
}
