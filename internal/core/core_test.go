package core

import (
	"encoding/csv"
	"strings"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/logic"
)

// TestRunS27 runs the full flow on the exact s27 benchmark, the one
// circuit where the paper's Table 3 row (39 tested, 11 untestable, 0
// aborted, 40 patterns) is directly comparable.
func TestRunS27(t *testing.T) {
	sum := MustNew(bench.NewS27(), Options{}).Run()
	t.Logf("s27: tested=%d (explicit %d) untestable=%d aborted=%d patterns=%d",
		sum.Tested, sum.Explicit, sum.Untestable, sum.Aborted, sum.Patterns)
	if sum.ValidationFailures != 0 {
		t.Fatalf("%d generated sequences failed independent validation", sum.ValidationFailures)
	}
	if got := sum.Tested + sum.Untestable + sum.Aborted; got != 50 {
		t.Fatalf("classified %d faults, want 50", got)
	}
	if sum.Tested < 20 {
		t.Fatalf("tested only %d/50; expected the majority (paper: 39)", sum.Tested)
	}
	if sum.Aborted > 5 {
		t.Fatalf("%d aborts (paper: 0)", sum.Aborted)
	}
}

// TestRunC17 exercises the combinational path: no state register, so no
// propagation or synchronization is ever needed and everything is tested.
func TestRunC17(t *testing.T) {
	sum := MustNew(bench.NewC17(), Options{}).Run()
	if sum.Tested != 34 || sum.Untestable != 0 || sum.Aborted != 0 {
		t.Fatalf("c17: tested=%d untestable=%d aborted=%d, want 34/0/0", sum.Tested, sum.Untestable, sum.Aborted)
	}
	if sum.ValidationFailures != 0 {
		t.Fatal("validation failures on c17")
	}
}

// TestNonRobustReducesUntestable reproduces the paper's concluding claim:
// a non-robust fault model decreases the number of untestable faults.
func TestNonRobustReducesUntestable(t *testing.T) {
	rob := MustNew(bench.NewS27(), Options{}).Run()
	non := MustNew(bench.NewS27(), Options{Algebra: logic.NonRobust}).Run()
	t.Logf("robust: tested=%d untestable=%d; non-robust: tested=%d untestable=%d",
		rob.Tested, rob.Untestable, non.Tested, non.Untestable)
	if non.Untestable > rob.Untestable {
		t.Fatalf("non-robust untestable %d > robust %d", non.Untestable, rob.Untestable)
	}
}

// TestFaultSimCredit: with fault simulation off, every tested fault is
// explicit; with it on, pattern counts can only shrink.
func TestFaultSimCredit(t *testing.T) {
	with := MustNew(bench.NewS27(), Options{}).Run()
	without := MustNew(bench.NewS27(), Options{DisableFaultSim: true}).Run()
	if with.Explicit > without.Explicit {
		t.Fatalf("fault sim increased explicit targets: %d > %d", with.Explicit, without.Explicit)
	}
	if without.Explicit != without.Tested {
		t.Fatalf("without fault sim, explicit %d != tested %d", without.Explicit, without.Tested)
	}
	if with.Patterns > without.Patterns {
		t.Fatalf("fault sim increased patterns: %d > %d", with.Patterns, without.Patterns)
	}
}

// TestTimedHandoff exercises the paper's future-work extension: computing
// arrival and stabilization times so that more PPO values can be handed
// to the sequential engine. A small variation budget may only help, a
// huge one must degenerate to the pure robust behaviour.
func TestTimedHandoff(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	robust := MustNew(c, Options{}).Run()
	timed := MustNew(c, Options{VariationBudget: 1}).Run()
	huge := MustNew(c, Options{VariationBudget: 1 << 20}).Run()
	t.Logf("tested: robust=%d timed(v=1)=%d timed(v=huge)=%d", robust.Tested, timed.Tested, huge.Tested)
	if timed.ValidationFailures != 0 {
		t.Fatalf("timed handoff produced %d validation failures", timed.ValidationFailures)
	}
	if timed.Untestable > robust.Untestable {
		t.Fatalf("timing refinement increased untestable: %d > %d", timed.Untestable, robust.Untestable)
	}
	if huge.Tested != robust.Tested || huge.Untestable != robust.Untestable {
		t.Fatalf("huge budget should match robust: %d/%d vs %d/%d",
			huge.Tested, huge.Untestable, robust.Tested, robust.Untestable)
	}
}

// TestReportWriters smoke-checks both report formats for shape and
// internal consistency with the summary counts.
func TestReportWriters(t *testing.T) {
	c := bench.NewS27()
	sum := MustNew(c, Options{}).Run()

	var txt strings.Builder
	if err := sum.WriteReport(&txt, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "tested=") || !strings.Contains(txt.String(), "G17/") {
		t.Fatalf("report missing content:\n%s", txt.String())
	}

	var buf strings.Builder
	if err := sum.WriteCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(strings.NewReader(buf.String()))
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(sum.Results) {
		t.Fatalf("csv rows = %d, want %d", len(rows), 1+len(sum.Results))
	}
	explicit := 0
	for _, row := range rows[1:] {
		if row[1] == "tested" {
			explicit++
			if row[4] == "" {
				t.Fatalf("tested fault %s lacks a sequence", row[0])
			}
		}
	}
	if explicit != sum.Explicit {
		t.Fatalf("csv explicit %d != summary %d", explicit, sum.Explicit)
	}
}
