package core_test

// External test package: it exercises the CSV report of a compacted run
// through internal/compact, which imports core.

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/compact"
	"fogbuster/internal/core"
)

// TestCSVRoundTripCompacted pins the machine-readable report of a
// compacted run: the dropped and follows columns written for a summary
// with dropped and spliced sequences must parse back to exactly the
// summary's drop set and Follows markers.
func TestCSVRoundTripCompacted(t *testing.T) {
	c := bench.ProfileByName("s386").Circuit()
	sum := core.MustNew(c, core.Options{Compact: true}).Run()
	st := compact.Apply(c, sum, compact.Options{})
	if !st.Complete {
		t.Fatal("compaction refused despite Options.Compact")
	}
	if st.Dropped == 0 {
		t.Fatal("no dropped sequences on s386; round-trip test has no signal")
	}
	if st.Splices == 0 {
		t.Log("no splices accepted on s386; follows round-trip covers the empty case only")
	}

	var buf bytes.Buffer
	if err := sum.WriteCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sum.Results)+1 {
		t.Fatalf("CSV has %d rows, want %d faults + header", len(rows), len(sum.Results))
	}
	col := make(map[string]int, len(rows[0]))
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, name := range []string{"fault", "dropped", "follows"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("CSV header misses %q: %v", name, rows[0])
		}
	}

	gotDropped := make(map[string]bool)
	gotFollows := make(map[string]string)
	for _, rec := range rows[1:] {
		fault := rec[col["fault"]]
		if d := rec[col["dropped"]]; d != "" {
			v, err := strconv.ParseBool(d)
			if err != nil {
				t.Fatalf("fault %s: unparsable dropped column %q", fault, d)
			}
			if v {
				gotDropped[fault] = true
			}
		}
		if f := rec[col["follows"]]; f != "" {
			gotFollows[fault] = f
		}
	}

	wantDropped, wantFollows, splices := 0, 0, 0
	for _, r := range sum.Results {
		if r.Seq == nil {
			continue
		}
		name := r.Fault.Name(c)
		if r.Seq.Dropped {
			wantDropped++
			if !gotDropped[name] {
				t.Errorf("dropped sequence %s not marked in the CSV", name)
			}
		} else if gotDropped[name] {
			t.Errorf("kept sequence %s marked dropped in the CSV", name)
		}
		if r.Seq.Follows != nil {
			wantFollows++
			splices++
			if got := gotFollows[name]; got != r.Seq.Follows.Name(c) {
				t.Errorf("spliced sequence %s: CSV follows %q, want %q", name, got, r.Seq.Follows.Name(c))
			}
		} else if _, ok := gotFollows[name]; ok {
			t.Errorf("unspliced sequence %s has a follows marker in the CSV", name)
		}
	}
	if len(gotDropped) != wantDropped {
		t.Errorf("CSV marks %d dropped sequences, summary has %d", len(gotDropped), wantDropped)
	}
	if len(gotFollows) != wantFollows {
		t.Errorf("CSV marks %d spliced sequences, summary has %d", len(gotFollows), wantFollows)
	}
	if splices != st.Splices {
		t.Errorf("summary carries %d Follows markers, stats report %d splices", splices, st.Splices)
	}
	if st.Dropped != wantDropped {
		t.Errorf("stats report %d drops, summary carries %d", st.Dropped, wantDropped)
	}
}
