package core

import (
	"context"
	"sync/atomic"
	"testing"

	"fogbuster/internal/bench"
)

// TestBroadcastStealInvariance pins the tentpole contract of the
// scale-out layer: the advisory detected-set broadcast and the
// work-stealing claimer — separately and combined — leave the Summary
// bit-identical to the stock run at every worker count. Only Runtime and
// the observability counters may differ, and summarize() excludes those.
func TestBroadcastStealInvariance(t *testing.T) {
	circuits := []string{"s27", "s298", "s386"}
	workerCounts := []int{1, 4, 16}
	if testing.Short() {
		// The race job runs with -short: keep the 16-worker stress on a
		// non-trivial circuit, trim the sweep.
		circuits = []string{"s27", "s298"}
		workerCounts = []int{4, 16}
	}
	for _, name := range circuits {
		c := bench.ProfileByName(name).Circuit()
		base := summarize(MustNew(c, Options{Workers: 1}).Run())
		for _, workers := range workerCounts {
			for _, opt := range []Options{
				{Workers: workers, Broadcast: true},
				{Workers: workers, Steal: true},
				{Workers: workers, Broadcast: true, Steal: true},
			} {
				got := summarize(MustNew(c, opt).Run())
				if got != base {
					t.Errorf("%s: Workers=%d Broadcast=%v Steal=%v diverged from stock serial run:\n--- stock\n%s--- got\n%s",
						name, workers, opt.Broadcast, opt.Steal, base, got)
				}
			}
		}
	}
}

// TestBroadcastStealOrderingInvariance extends the contract to a
// non-trivial targeting permutation: under the ADI ordering the
// broadcast+steal run still reproduces the stock Summary bit for bit.
func TestBroadcastStealOrderingInvariance(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	base := summarize(MustNew(c, Options{Workers: 1, Order: "adi"}).Run())
	for _, workers := range []int{4, 16} {
		got := summarize(MustNew(c, Options{Workers: workers, Order: "adi", Broadcast: true, Steal: true}).Run())
		if got != base {
			t.Errorf("adi: Workers=%d broadcast+steal diverged from stock serial run", workers)
		}
	}
}

// TestMaxTargetsPrefix pins the budgeted-run semantics: MaxTargets=K
// processes exactly the first K positions of the targeting permutation,
// their outcomes bit-identical to the full run's (a budget is a
// deterministic cancellation), every later fault Pending unless an
// in-budget sequence credited it, and the whole budgeted Summary
// invariant across worker counts and the scale-out knobs.
func TestMaxTargetsPrefix(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	full := MustNew(c, Options{Workers: 1}).Run()
	n := len(full.Results)
	k := n / 3

	budget := MustNew(c, Options{Workers: 1, MaxTargets: k}).Run()
	// Positions 0..k-1 (natural order: fault indices 0..k-1) must match
	// the full run exactly; beyond the budget only Pending and
	// TestedBySim may appear.
	pending := 0
	for i, r := range budget.Results {
		if i < k {
			if r.Status != full.Results[i].Status {
				t.Errorf("fault %d (in budget): status %v, full run says %v", i, r.Status, full.Results[i].Status)
			}
			continue
		}
		switch r.Status {
		case Pending:
			pending++
		case TestedBySim:
		default:
			t.Errorf("fault %d (beyond budget): status %v", i, r.Status)
		}
	}
	if pending == 0 {
		t.Fatalf("MaxTargets=%d of %d left no fault pending; budget not exercised", k, n)
	}
	if len(budget.SeqOrder) == 0 {
		t.Fatal("budgeted run generated no sequences")
	}

	base := summarize(budget)
	for _, workers := range []int{4, 16} {
		got := summarize(MustNew(c, Options{Workers: workers, MaxTargets: k, Broadcast: true, Steal: true}).Run())
		if got != base {
			t.Errorf("MaxTargets=%d: Workers=%d broadcast+steal diverged from serial budgeted run", k, workers)
		}
	}
}

// TestStealClaimerExhaustive pins the claimer contract directly: every
// position in [0, n) is handed out exactly once, under heavy concurrent
// claiming and stealing.
func TestStealClaimerExhaustive(t *testing.T) {
	const n, workers = 1000, 16
	c := newStealClaimer(0, n, workers)
	var seen [n]atomic.Int32
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			for {
				p, ok := c.claim(self)
				if !ok {
					done <- struct{}{}
					return
				}
				seen[p].Add(1)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for p := range seen {
		if got := seen[p].Load(); got != 1 {
			t.Fatalf("position %d claimed %d times", p, got)
		}
	}
}

// TestCancelMidStealCoherent checks cancellation coherence under the
// scale-out knobs: a context cancelled mid-run leaves a committed prefix
// that is bit-identical to the same prefix of an uncancelled run —
// stealing and advisory skips never let a wrong or out-of-order outcome
// commit, even while ranges are being carved up.
func TestCancelMidStealCoherent(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	full := MustNew(c, Options{Workers: 1}).Run()

	for _, cut := range []int{1, 7, 25} {
		ctx, cancel := context.WithCancel(context.Background())
		committed := 0
		e := MustNew(c, Options{
			Workers:   16,
			Broadcast: true,
			Steal:     true,
			OnEvent: func(ev Event) {
				if ev.Kind == EventProgress {
					committed = ev.Done
					if ev.Done == cut {
						cancel()
					}
				}
			},
		})
		sum, err := e.RunContext(ctx)
		cancel()
		if err == nil {
			t.Fatalf("cut=%d: cancelled run reported no error", cut)
		}
		if committed < cut {
			t.Fatalf("cut=%d: only %d positions committed", cut, committed)
		}
		// Every fault the truncated run classified explicitly must carry
		// the status the full run assigned it. (Credit chronology can
		// differ in the tail — a cancelled run may miss credits — so only
		// explicit statuses are compared.)
		for i, r := range sum.Results {
			if r.Status == Pending || r.Status == TestedBySim {
				continue
			}
			if want := full.Results[i].Status; r.Status != want {
				t.Errorf("cut=%d: fault %d committed %v, full run says %v", cut, i, r.Status, want)
			}
			if r.Seq != nil && full.Results[i].Seq != nil && r.Seq.Len() != full.Results[i].Seq.Len() {
				t.Errorf("cut=%d: fault %d sequence length %d, full run says %d", cut, i, r.Seq.Len(), full.Results[i].Seq.Len())
			}
		}
	}
}

// TestBroadcastCountersObservable makes sure the observability counters
// actually observe something: on a circuit with substantial simulation
// credit the broadcast must record skips (misses stay a subset) and a
// 16-worker steal run on a single stripe-starved universe must record
// steals. The counters are scheduling-dependent, so only coarse
// properties are pinned.
func TestBroadcastCountersObservable(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	sum := MustNew(c, Options{Workers: 16, Broadcast: true, Steal: true}).Run()
	if sum.BroadcastMisses > sum.BroadcastSkips {
		t.Errorf("misses %d exceed skips %d", sum.BroadcastMisses, sum.BroadcastSkips)
	}
	if sum.BroadcastSkips < 0 || sum.Steals < 0 {
		t.Errorf("negative counters: skips=%d steals=%d", sum.BroadcastSkips, sum.Steals)
	}
	stock := MustNew(c, Options{Workers: 16}).Run()
	if stock.BroadcastSkips != 0 || stock.BroadcastMisses != 0 || stock.Steals != 0 {
		t.Errorf("stock run reported scale-out counters: %+v", stock)
	}
}
