package core

import (
	"fmt"
	"runtime"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/order"
)

// summarize flattens the determinism-relevant part of a Summary: the
// per-fault status and per-fault pattern cost (the sequence length for
// explicit tests, 0 otherwise), plus the aggregate counters and the
// generation order.
func summarize(s *Summary) string {
	out := fmt.Sprintf("order=%s tested=%d explicit=%d untestable=%d aborted=%d patterns=%d valfail=%d seqorder=%v\n",
		s.Order, s.Tested, s.Explicit, s.Untestable, s.Aborted, s.Patterns, s.ValidationFailures, s.SeqOrder)
	for _, r := range s.Results {
		n := 0
		if r.Seq != nil {
			n = r.Seq.Len()
		}
		out += fmt.Sprintf("%v %s %d\n", r.Fault, r.Status, n)
	}
	return out
}

// TestSeedDeterminism pins the reproducibility contract: the same
// Options.Seed yields an identical Summary across two independent runs.
func TestSeedDeterminism(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		a := MustNew(c, Options{Seed: 42}).Run()
		b := MustNew(c, Options{Seed: 42}).Run()
		if sa, sb := summarize(a), summarize(b); sa != sb {
			t.Errorf("%s: two runs with the same seed disagree:\n--- run 1\n%s--- run 2\n%s", name, sa, sb)
		}
	}
}

// TestWorkerCountInvariance pins the sharding contract: per-fault
// statuses and pattern counts are bit-identical regardless of the worker
// count, because every fault's X-fill stream is derived from the seed and
// the fault index and the merge loop commits in fault order.
func TestWorkerCountInvariance(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		base := summarize(MustNew(c, Options{Workers: 1}).Run())
		for _, workers := range []int{2, 7, 64} {
			got := summarize(MustNew(c, Options{Workers: workers}).Run())
			if got != base {
				t.Errorf("%s: Workers=%d diverged from Workers=1:\n--- serial\n%s--- workers=%d\n%s",
					name, workers, base, workers, got)
			}
		}
	}
}

// TestOrderingWorkerInvariance extends the contract to every fault
// ordering: for a fixed heuristic the Summary stays bit-identical from
// one worker to NumCPU, because the permutation is a pure function of
// (circuit, heuristic, seed), the merge loop commits in permutation
// order, and X-fill streams stay keyed to canonical fault indices.
func TestOrderingWorkerInvariance(t *testing.T) {
	for _, name := range []string{"s27", "s298"} {
		c := bench.ProfileByName(name).Circuit()
		for _, h := range []order.Heuristic{order.Topological, order.SCOAP, order.ADI} {
			base := summarize(MustNew(c, Options{Workers: 1, Order: h}).Run())
			for _, workers := range []int{4, runtime.NumCPU()} {
				got := summarize(MustNew(c, Options{Workers: workers, Order: h}).Run())
				if got != base {
					t.Errorf("%s/%s: Workers=%d diverged:\n--- serial\n%s--- workers=%d\n%s",
						name, h, workers, base, workers, got)
				}
			}
		}
	}
}

// TestBatchedCreditInvariance pins the word-parallel credit sweep into
// the determinism contract: the batched path (the default) must produce
// a Summary bit-identical to the scalar reference path
// (Options.ScalarCredit) at every worker count, so batching — like
// sharding — is purely an execution detail.
func TestBatchedCreditInvariance(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		ref := summarize(MustNew(c, Options{ScalarCredit: true, Workers: 1}).Run())
		for _, workers := range []int{1, 4} {
			got := summarize(MustNew(c, Options{Workers: workers}).Run())
			if got != ref {
				t.Errorf("%s: batched credit (Workers=%d) diverged from the scalar reference:\n--- scalar\n%s--- batched\n%s",
					name, workers, ref, got)
			}
		}
		// Compact drops the skip filter and records full detection sets;
		// the equivalence must hold there too, Detects included.
		refC := MustNew(c, Options{ScalarCredit: true, Workers: 1, Compact: true}).Run()
		gotC := MustNew(c, Options{Compact: true}).Run()
		if a, b := summarize(refC), summarize(gotC); a != b {
			t.Errorf("%s: batched credit diverged under Compact:\n--- scalar\n%s--- batched\n%s", name, a, b)
			continue
		}
		for i := range refC.Results {
			ra, rb := refC.Results[i].Seq, gotC.Results[i].Seq
			if (ra == nil) != (rb == nil) {
				t.Fatalf("%s: sequence presence differs at fault %d", name, i)
			}
			if ra == nil {
				continue
			}
			if len(ra.Detects) != len(rb.Detects) {
				t.Errorf("%s fault %d: scalar recorded %d detections, batched %d",
					name, i, len(ra.Detects), len(rb.Detects))
				continue
			}
			for j := range ra.Detects {
				if ra.Detects[j] != rb.Detects[j] {
					t.Errorf("%s fault %d: detection %d differs: scalar %v, batched %v",
						name, i, j, ra.Detects[j], rb.Detects[j])
					break
				}
			}
		}
	}
}

// TestEventDrivenInvariance pins the selective-trace substrate into the
// determinism contract: the event-driven kernels (the default) must
// produce a Summary bit-identical to the full-eval reference
// (Options.FullEval) at every worker count — Detects included, because
// Compact drops the credit skip filter and records the complete
// detection sets the compactor replays.
func TestEventDrivenInvariance(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		ref := MustNew(c, Options{FullEval: true, Workers: 1, Compact: true}).Run()
		refS := summarize(ref)
		for _, workers := range []int{1, 4} {
			got := MustNew(c, Options{Workers: workers, Compact: true}).Run()
			if gotS := summarize(got); gotS != refS {
				t.Errorf("%s: event-driven (Workers=%d) diverged from full-eval:\n--- full\n%s--- event\n%s",
					name, workers, refS, gotS)
				continue
			}
			for i := range ref.Results {
				ra, rb := ref.Results[i].Seq, got.Results[i].Seq
				if (ra == nil) != (rb == nil) {
					t.Fatalf("%s: sequence presence differs at fault %d", name, i)
				}
				if ra == nil {
					continue
				}
				if len(ra.Detects) != len(rb.Detects) {
					t.Errorf("%s fault %d: full-eval recorded %d detections, event %d",
						name, i, len(ra.Detects), len(rb.Detects))
					continue
				}
				for j := range ra.Detects {
					if ra.Detects[j] != rb.Detects[j] {
						t.Errorf("%s fault %d: detection %d differs: full %v, event %v",
							name, i, j, ra.Detects[j], rb.Detects[j])
						break
					}
				}
			}
		}
	}
}

// TestNewRejectsUnknownOrder pins the fail-fast contract: a
// misspelled heuristic must not silently run the natural order under
// the wrong label — New reports it as a construction error (no panic;
// pkg/atpg surfaces it to API consumers).
func TestNewRejectsUnknownOrder(t *testing.T) {
	if _, err := New(bench.NewS27(), Options{Order: "bogus"}); err == nil {
		t.Fatal("New accepted an unknown ordering heuristic")
	}
}

// TestNewRejectsNegativeBudgets pins the other construction errors: a
// negative budget or depth is always a caller bug (zero already means
// "default") and must never be silently reinterpreted.
func TestNewRejectsNegativeBudgets(t *testing.T) {
	c := bench.NewS27()
	for name, opts := range map[string]Options{
		"LocalBacktracks": {LocalBacktracks: -1},
		"SeqBacktracks":   {SeqBacktracks: -5},
		"MaxFrames":       {MaxFrames: -2},
		"VariationBudget": {VariationBudget: -3},
	} {
		if _, err := New(c, opts); err == nil {
			t.Errorf("New accepted negative %s", name)
		}
	}
}

// TestOrderingClassifiesEverything checks that a reordered run still
// classifies the complete universe and never invents validation
// failures: ordering moves the credit chronology, not the search.
func TestOrderingClassifiesEverything(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	total := len(bench.ProfileByName("s298").Circuit().Lines()) * 2
	for _, h := range []order.Heuristic{order.Natural, order.Topological, order.SCOAP, order.ADI} {
		sum := MustNew(c, Options{Order: h}).Run()
		if n := sum.Tested + sum.Untestable + sum.Aborted; n != total {
			t.Errorf("%s: classified %d of %d faults", h, n, total)
		}
		if sum.ValidationFailures != 0 {
			t.Errorf("%s: %d validation failures", h, sum.ValidationFailures)
		}
		if sum.Order != h.Name() {
			t.Errorf("Summary.Order = %q, want %q", sum.Order, h.Name())
		}
	}
}

// TestBatchedSearchInvariance pins the generation-phase batching into
// the determinism contract: the lane-parallel X-fill trials and
// decision probes (the default) must produce a Summary bit-identical to
// the scalar reference path (Options.ScalarSearch) — which enumerates
// the identical fill lanes and probe frames one at a time — at every
// worker count. Like ScalarCredit, the knob must be purely an execution
// detail.
func TestBatchedSearchInvariance(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		ref := summarize(MustNew(c, Options{ScalarSearch: true, Workers: 1}).Run())
		for _, workers := range []int{1, 4, 16} {
			if got := summarize(MustNew(c, Options{Workers: workers}).Run()); got != ref {
				t.Errorf("%s: batched search (Workers=%d) diverged from the scalar reference:\n--- scalar\n%s--- batched\n%s",
					name, workers, ref, got)
			}
		}
		if got := summarize(MustNew(c, Options{ScalarSearch: true, Workers: 16}).Run()); got != ref {
			t.Errorf("%s: scalar search itself is worker-count dependent", name)
		}
	}
}
