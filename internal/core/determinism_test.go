package core

import (
	"fmt"
	"testing"

	"fogbuster/internal/bench"
)

// summarize flattens the determinism-relevant part of a Summary: the
// per-fault status and per-fault pattern cost (the sequence length for
// explicit tests, 0 otherwise), plus the aggregate counters.
func summarize(s *Summary) string {
	out := fmt.Sprintf("tested=%d explicit=%d untestable=%d aborted=%d patterns=%d valfail=%d\n",
		s.Tested, s.Explicit, s.Untestable, s.Aborted, s.Patterns, s.ValidationFailures)
	for _, r := range s.Results {
		n := 0
		if r.Seq != nil {
			n = r.Seq.Len()
		}
		out += fmt.Sprintf("%v %s %d\n", r.Fault, r.Status, n)
	}
	return out
}

// TestSeedDeterminism pins the reproducibility contract: the same
// Options.Seed yields an identical Summary across two independent runs.
func TestSeedDeterminism(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		a := New(c, Options{Seed: 42}).Run()
		b := New(c, Options{Seed: 42}).Run()
		if sa, sb := summarize(a), summarize(b); sa != sb {
			t.Errorf("%s: two runs with the same seed disagree:\n--- run 1\n%s--- run 2\n%s", name, sa, sb)
		}
	}
}

// TestWorkerCountInvariance pins the sharding contract: per-fault
// statuses and pattern counts are bit-identical regardless of the worker
// count, because every fault's X-fill stream is derived from the seed and
// the fault index and the merge loop commits in fault order.
func TestWorkerCountInvariance(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		base := summarize(New(c, Options{Workers: 1}).Run())
		for _, workers := range []int{2, 7, 64} {
			got := summarize(New(c, Options{Workers: workers}).Run())
			if got != base {
				t.Errorf("%s: Workers=%d diverged from Workers=1:\n--- serial\n%s--- workers=%d\n%s",
					name, workers, base, workers, got)
			}
		}
	}
}
