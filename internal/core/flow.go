package core

import (
	"context"
	"math/rand"
	"sync/atomic"

	"fogbuster/internal/faults"
	"fogbuster/internal/fausim"
	"fogbuster/internal/logic"
	"fogbuster/internal/semilet"
	"fogbuster/internal/sim"
	"fogbuster/internal/tdgen"
	"fogbuster/internal/tdsim"
)

// worker owns one full clone of the mutable per-fault ATPG state: its own
// circuit view (the simulators keep scratch buffers on it), sequential
// engine, fault simulators and X-fill RNG. Workers share only read-only
// inputs (circuit, testability measures, timing analysis, options) and
// the run's coordination state (runState).
type worker struct {
	e   *Engine
	net *sim.Net
	sem *semilet.Engine
	td  *tdsim.Sim
	rng *rand.Rand
}

// newWorker clones the mutable engine state for one worker goroutine:
// the Net (simulator scratch) is private, the CSR topology behind it is
// the engine's shared immutable one.
func (e *Engine) newWorker() *worker {
	net := sim.NewNetOn(e.topo)
	td := tdsim.New(net, e.alg)
	td.SetFullEval(e.opts.FullEval)
	return &worker{
		e:   e,
		net: net,
		sem: semilet.NewEngine(net, semilet.Options{MaxFrames: e.opts.MaxFrames, Meas: e.meas, FullEval: e.opts.FullEval}),
		td:  td,
	}
}

// faultSeed derives the per-fault X-fill seed from the run seed and the
// fault index (splitmix64 finalizer). Reseeding per fault is what makes
// the fill stream — and with it the whole Summary — independent of the
// order in which workers claim faults.
func faultSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*(uint64(i)+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// runState bundles the shared coordination state of one RunContext
// execution: the fault universe, the targeting permutation, the
// authoritative status array (written only by the merge loop), the
// position claimer, the optional advisory broadcast, and the outcome
// channel into the merge loop.
type runState struct {
	all     []faults.Delay
	perm    []int
	status  []atomic.Uint32
	claims  claimer
	bcast   *broadcast
	results chan faultOutcome
}

// faultAt maps a targeting position to its fault index.
func (rs *runState) faultAt(p int) int {
	if rs.perm != nil {
		return rs.perm[p]
	}
	return p
}

// stopReason classifies why a search ended early.
type stopReason uint8

const (
	// stopNone: the search ran to its natural conclusion.
	stopNone stopReason = iota
	// stopInterrupted: a done context; the outcome must not be committed.
	stopInterrupted
	// stopCovered: the authoritative status array classified the fault
	// mid-search (the merge loop committed a crediting sequence); an
	// empty outcome is safe because status never returns to Pending.
	stopCovered
	// stopAdvisory: the advisory broadcast claims a completed-but-not-yet
	// committed sequence detects the fault; the merge loop re-checks and
	// regenerates if the claim does not hold at commit time.
	stopAdvisory
)

// run claims targeting positions from the claimer until the universe is
// exhausted, sending exactly one outcome per claimed position. A fault
// the merge loop has already credited is skipped with an empty outcome;
// that check is advisory (a stale read costs a wasted generation that
// the merge loop discards), so no lock is ever held. With the broadcast
// enabled the worker also consults the cross-worker detected-set
// snapshot — before starting a search and between local alternatives —
// and skips with an advisory outcome the merge loop knows how to take
// back (see merge).
//
// A done context makes the worker return without completing its claimed
// position: the merge loop has already stopped committing, so a missing
// outcome can never stall it, and an interrupted search never produces a
// (possibly truncated, therefore wrong) outcome.
func (w *worker) run(ctx context.Context, rs *runState, self int) {
	done := ctx.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		p, ok := rs.claims.claim(self)
		if !ok {
			return
		}
		i := rs.faultAt(p)
		o := faultOutcome{idx: p}
		switch {
		case Status(rs.status[i].Load()) != Pending:
			// Already classified by the merge loop: safe empty skip.
		case rs.bcast.hit(i):
			rs.bcast.skips.Add(1)
			o.advisory = true
		default:
			var interrupted bool
			o, interrupted = w.process(ctx, rs, p, i, true)
			if interrupted {
				return
			}
			if rs.bcast != nil && o.status == Tested {
				// Publish the detected set before the outcome enters the
				// reorder buffer, so other workers stop targeting these
				// faults while the sequence waits for its commit turn.
				for _, f := range o.detected {
					if j, ok := w.e.index[f]; ok {
						rs.bcast.mark(j)
					}
				}
			}
		}
		select {
		case rs.results <- o:
		case <-done:
			return
		}
	}
}

// process runs the complete per-fault pipeline — seeded X-fill stream,
// generation, post-generation credit sweep — for the fault at targeting
// position p (fault index i) and returns the outcome, or interrupted
// when a done context cut the search short (the outcome is then
// meaningless and must not be sent or committed). It is deterministic in
// (engine, fault index): the merge loop calls it to regenerate an
// advisory skip that did not hold, and gets bit for bit the outcome the
// skipping worker would have produced. advisory enables the mid-search
// broadcast checks; the merge loop's regeneration disables them (it is
// the authority the checks would consult).
func (w *worker) process(ctx context.Context, rs *runState, p, i int, advisory bool) (faultOutcome, bool) {
	w.rng = rand.New(rand.NewSource(faultSeed(w.e.opts.Seed, i)))
	o := faultOutcome{idx: p}
	var check func() stopReason
	if advisory && w.e.opts.Broadcast {
		check = func() stopReason {
			if Status(rs.status[i].Load()) != Pending {
				return stopCovered
			}
			if rs.bcast.hit(i) {
				return stopAdvisory
			}
			return stopNone
		}
	}
	var stop stopReason
	o.seq, o.status, o.valFail, stop = w.generate(ctx, rs.all[i], check)
	switch stop {
	case stopInterrupted:
		// An outcome sent to the merge loop must always be the complete
		// deterministic one — the loop may commit it even after
		// cancellation — so a worker that noticed the done context bails
		// out entirely rather than, say, skipping the credit sweep.
		return o, true
	case stopCovered:
		return faultOutcome{idx: p}, false
	case stopAdvisory:
		rs.bcast.skips.Add(1)
		return faultOutcome{idx: p, advisory: true}, false
	}
	if ctx.Err() != nil {
		return o, true
	}
	if o.status == Tested && !w.e.opts.DisableFaultSim {
		// Post-generation fault simulation runs here, on the worker,
		// so the expensive CPT and confirmation work parallelizes;
		// only the status bookkeeping happens on the merge loop. The
		// skip filter reads racy status snapshots purely to save
		// work: the merge loop re-checks every detected fault. With
		// Compact or DeferCredit the filter is dropped so the
		// recorded detection set is complete and independent of
		// claim timing; that changes no credit decision, because a
		// fault still pending at commit time was also pending at
		// detect time and is in the filtered list either way. The
		// deferred-credit merge (pkg/atpg MergeResults) additionally
		// needs the complete set because the globally-pending faults
		// of other shards are unknowable here. The advisory broadcast never
		// enters this filter: a broadcast-covered fault whose coverer is
		// later discarded must still appear in detection lists, or its
		// credit would depend on claim timing.
		skip := func(f faults.Delay) bool {
			j, ok := w.e.index[f]
			return !ok || Status(rs.status[j].Load()) != Pending
		}
		if w.e.opts.Compact || w.e.opts.DeferCredit {
			skip = nil
		}
		ff := w.fastFrame(o.seq)
		if w.e.opts.ScalarCredit {
			o.detected = w.td.DetectScalar(ff, skip)
		} else {
			o.detected = w.td.Detect(ff, skip)
		}
	}
	return o, false
}

// generate runs the extended FOGBUSTER flow (Figure 4) for one fault:
// local test generation, then — if the effect only reached the state
// register — forward propagation to a PO, then synchronization of the
// required initial state. A failure in a sequential phase backtracks into
// the local generator for the next distinct local test. It also returns
// how many candidate sequences the independent validator rejected, and a
// stopReason when the search ended early (the other return values are
// then meaningless and must not be committed). check, when non-nil, is
// consulted once per local alternative — the same granularity as
// cancellation — and aborts the search with its verdict.
func (w *worker) generate(ctx context.Context, f faults.Delay, check func() stopReason) (*TestSequence, Status, int, stopReason) {
	gen := tdgen.New(w.net, f, w.e.meas, tdgen.Options{
		Algebra:       w.e.alg,
		MaxBacktracks: w.e.opts.LocalBacktracks,
	})
	budget := semilet.NewBudget(w.e.opts.SeqBacktracks)
	valFail := 0

	for {
		// Checked once per local alternative: each tdgen/semilet phase is
		// budget-bounded, so this is the promptness granularity of
		// cancellation and of the broadcast skip.
		if ctx.Err() != nil {
			return nil, Pending, valFail, stopInterrupted
		}
		if check != nil {
			if r := check(); r != stopNone {
				return nil, Pending, valFail, r
			}
		}
		sol, st := gen.Next()
		switch st {
		case tdgen.Untestable:
			return nil, Untestable, valFail, stopNone
		case tdgen.Aborted:
			return nil, Aborted, valFail, stopNone
		}

		seq := &TestSequence{
			Fault:      f,
			V1:         sol.V1,
			V2:         sol.V2,
			ObservePO:  sol.ObservePO,
			ObservePPO: sol.ObservePPO,
		}

		// Forward propagation phase: only needed when the local test
		// observes the effect at a PPO.
		if sol.ObservePO < 0 {
			prop, pst := w.sem.Propagate(w.handoff(sol), budget)
			if pst == semilet.Aborted {
				return nil, Aborted, valFail, stopNone
			}
			if pst != semilet.Success {
				continue // backtrack into the local generator
			}
			seq.Prop = prop.Vectors
			seq.ObservePO = prop.PO
		}

		// Initialization phase: a synchronizing sequence to the required
		// state of the local test.
		sync, sst := w.sem.SynchronizeWith(sol.State0, budget, !w.e.opts.StrictInit)
		if sst == semilet.Aborted {
			return nil, Aborted, valFail, stopNone
		}
		if sst != semilet.Success {
			continue
		}
		seq.Sync = sync.Vectors
		seq.Assumed = sync.Assumed

		if !w.e.opts.DisableValidation && !w.validate(seq) {
			valFail++
			continue
		}
		return seq, Tested, valFail, stopNone
	}
}

// handoff returns the state knowledge passed to the propagation phase.
// With the timing refinement enabled (the paper's future work), PPOs the
// robust model could not specify are lifted to known final values when
// they are fault-free, settle to a uniform value, and stabilize with at
// least VariationBudget delay units of slack before the fast capture
// edge.
func (w *worker) handoff(sol *tdgen.Solution) []sim.V5 {
	if w.e.tim == nil {
		return sol.PPOFinal
	}
	lifted := append([]sim.V5(nil), sol.PPOFinal...)
	for i, ppo := range w.e.c.PPOs() {
		if lifted[i] != sim.X5 {
			continue
		}
		set := sol.Sets[ppo]
		if set.Empty() || set&logic.CarrySet != 0 {
			continue
		}
		if w.e.tim.Slack(ppo) < int32(w.e.opts.VariationBudget) {
			continue
		}
		var fin [2]bool
		for _, v := range set.Values() {
			fin[v.Final()] = true
		}
		switch {
		case fin[1] && !fin[0]:
			lifted[i] = sim.O5
		case fin[0] && !fin[1]:
			lifted[i] = sim.Z5
		}
	}
	return lifted
}

// fastFrame fills the sequence's don't-cares and derives the concrete
// two-frame situation of the fast clock cycle, simulating the good
// machine from a random power-up state through the initialization and the
// initial time frame (the paper's fault simulation phase 1).
func (w *worker) fastFrame(seq *TestSequence) *tdsim.FastFrame {
	state := make([]sim.V3, len(w.e.c.DFFs))
	for i := range state {
		if seq.Assumed != nil && seq.Assumed[i].Known() {
			state[i] = seq.Assumed[i]
		} else {
			state[i] = sim.V3(w.rng.Intn(2))
		}
	}
	syncV := fausim.FillSequence(seq.Sync, w.rng)
	if len(syncV) > 0 {
		steps := w.net.SeqSim3(state, syncV)
		state = steps[len(steps)-1].State
	}
	for i := range state {
		if state[i] == sim.X {
			state[i] = sim.V3(w.rng.Intn(2))
		}
	}
	v1 := sim.XFill(seq.V1, w.rng)
	v2 := sim.XFill(seq.V2, w.rng)
	f1 := w.net.LoadFrame(v1, state)
	w.net.Eval3(f1, nil)
	s1 := w.net.NextState3(f1, nil)
	for i := range s1 {
		if s1[i] == sim.X {
			s1[i] = sim.V3(w.rng.Intn(2))
		}
	}
	return &tdsim.FastFrame{
		V1: v1, V2: v2,
		S0: state, S1: s1,
		Prop: fausim.FillSequence(seq.Prop, w.rng),
	}
}

// validate replays the generated sequence with the fault injected and
// checks that the promised observation really happens: robust carrying at
// a PO in the fast frame, or a good/faulty difference at a PO after the
// propagation frames. The checker shares no code with the generator's
// search (it uses the concrete simulators), so it is an independent
// witness.
func (w *worker) validate(seq *TestSequence) bool {
	ff := w.fastFrame(seq)
	goodS2 := make([]sim.V3, len(w.e.c.DFFs))
	vals := w.td.Values(ff)
	for i, ppo := range w.e.c.PPOs() {
		goodS2[i] = sim.V3(vals[ppo].Final())
	}
	return w.td.Confirm(ff, vals, goodS2, seq.Fault)
}
