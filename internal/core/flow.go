package core

import (
	"context"
	"math/bits"
	"math/rand"
	"sync/atomic"

	"fogbuster/internal/faults"
	"fogbuster/internal/fausim"
	"fogbuster/internal/logic"
	"fogbuster/internal/netlist"
	"fogbuster/internal/semilet"
	"fogbuster/internal/sim"
	"fogbuster/internal/tdgen"
	"fogbuster/internal/tdsim"
)

// worker owns one full clone of the mutable per-fault ATPG state: its own
// circuit view (the simulators keep scratch buffers on it), sequential
// engine, fault simulators and X-fill RNGs. Workers share only read-only
// inputs (circuit, testability measures, timing analysis, options) and
// the run's coordination state (runState).
type worker struct {
	e   *Engine
	net *sim.Net
	sem *semilet.Engine
	td  *tdsim.Sim
	rng *rand.Rand

	// Per-fault search state. fseed is the fault's master seed; every
	// random stream of the search (fill lanes, decision probes) is derived
	// from it, so the whole per-fault outcome is a pure function of
	// (engine, fault index) — the worker-count invariance contract.
	// attempts counts validated candidates of the current fault; each one
	// consumes 64 fill-lane streams.
	fseed    int64
	attempts int
	lanes    [64]*rand.Rand

	// Hoisted fill scratch: the fast-frame derivation runs once per
	// candidate (and 64 more times, lane-parallel, when the first fill
	// misses), so its buffers live on the worker instead of the heap. At
	// most one FastFrame per worker is alive at a time; its slices alias
	// these buffers.
	ppos   []netlist.NodeID
	ffS0   []sim.V3
	ffS1   []sim.V3
	ffV1   []sim.V3
	ffV2   []sim.V3
	frame3 []sim.V3
	vals8  []logic.Value
	goodS2 []sim.V3
	ff     tdsim.FastFrame

	// Lane-parallel fill scratch (confirmLanes).
	fb       tdsim.FillBatch
	vals64   []sim.Word
	state64  []sim.Word
	propRows [][]sim.Word
}

// Derived-stream tags for the per-fault probe seeds. Fill lanes use
// attempt<<6|lane, so any tag ≥ 1<<30 is collision-free until an
// absurd 2^24 attempts.
const (
	probeStreamGen  = 1 << 30
	probeStreamProp = 1<<30 | 1
)

// newWorker clones the mutable engine state for one worker goroutine:
// the Net (simulator scratch) is private, the CSR topology behind it is
// the engine's shared immutable one.
func (e *Engine) newWorker() *worker {
	net := sim.NewNetOn(e.topo)
	td := tdsim.New(net, e.alg)
	td.SetFullEval(e.opts.FullEval)
	c := e.c
	w := &worker{
		e:   e,
		net: net,
		sem: semilet.NewEngine(net, semilet.Options{MaxFrames: e.opts.MaxFrames, Meas: e.meas, FullEval: e.opts.FullEval}),
		td:  td,

		ppos:   c.PPOs(),
		ffS0:   make([]sim.V3, len(c.DFFs)),
		ffS1:   make([]sim.V3, len(c.DFFs)),
		ffV1:   make([]sim.V3, len(c.PIs)),
		ffV2:   make([]sim.V3, len(c.PIs)),
		frame3: make([]sim.V3, len(c.Nodes)),
		vals8:  make([]logic.Value, len(c.Nodes)),
		goodS2: make([]sim.V3, len(c.DFFs)),

		fb: tdsim.FillBatch{
			V1: make([]sim.Word, len(c.PIs)),
			V2: make([]sim.Word, len(c.PIs)),
			S0: make([]sim.Word, len(c.DFFs)),
			S1: make([]sim.Word, len(c.DFFs)),
		},
		vals64:  make([]sim.Word, len(c.Nodes)),
		state64: make([]sim.Word, len(c.DFFs)),
	}
	for i := range w.lanes {
		w.lanes[i] = rand.New(rand.NewSource(0)) //lint:allow determinism placeholder stream; seedLane reseeds per (attempt,lane) before every draw
	}
	return w
}

// faultSeed derives the per-fault X-fill seed from the run seed and the
// fault index (splitmix64 finalizer). Reseeding per fault is what makes
// the fill stream — and with it the whole Summary — independent of the
// order in which workers claim faults.
func faultSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*(uint64(i)+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// seedLane reseeds and returns lane's RNG for the given fill attempt.
// Every (attempt, lane) pair gets its own derived stream, which is the
// keystone of the batched/scalar equivalence: the lane-parallel fill can
// draw site-major (one draw per lane at each X site) while the scalar
// reference draws lane-major (one full frame per lane), and both read
// the identical per-lane subsequences.
func (w *worker) seedLane(attempt, lane int) *rand.Rand {
	r := w.lanes[lane&63]
	r.Seed(faultSeed(w.fseed, attempt<<6|lane))
	return r
}

// runState bundles the shared coordination state of one RunContext
// execution: the fault universe, the targeting permutation, the
// authoritative status array (written only by the merge loop), the
// position claimer, the optional advisory broadcast, and the outcome
// channel into the merge loop.
type runState struct {
	all     []faults.Delay
	perm    []int
	status  []atomic.Uint32
	claims  claimer
	bcast   *broadcast
	results chan faultOutcome
}

// faultAt maps a targeting position to its fault index.
func (rs *runState) faultAt(p int) int {
	if rs.perm != nil {
		return rs.perm[p]
	}
	return p
}

// stopReason classifies why a search ended early.
type stopReason uint8

const (
	// stopNone: the search ran to its natural conclusion.
	stopNone stopReason = iota
	// stopInterrupted: a done context; the outcome must not be committed.
	stopInterrupted
	// stopCovered: the authoritative status array classified the fault
	// mid-search (the merge loop committed a crediting sequence); an
	// empty outcome is safe because status never returns to Pending.
	stopCovered
	// stopAdvisory: the advisory broadcast claims a completed-but-not-yet
	// committed sequence detects the fault; the merge loop re-checks and
	// regenerates if the claim does not hold at commit time.
	stopAdvisory
)

// run claims targeting positions from the claimer until the universe is
// exhausted, sending exactly one outcome per claimed position. A fault
// the merge loop has already credited is skipped with an empty outcome;
// that check is advisory (a stale read costs a wasted generation that
// the merge loop discards), so no lock is ever held. With the broadcast
// enabled the worker also consults the cross-worker detected-set
// snapshot — before starting a search and between local alternatives —
// and skips with an advisory outcome the merge loop knows how to take
// back (see merge).
//
// A done context makes the worker return without completing its claimed
// position: the merge loop has already stopped committing, so a missing
// outcome can never stall it, and an interrupted search never produces a
// (possibly truncated, therefore wrong) outcome.
func (w *worker) run(ctx context.Context, rs *runState, self int) {
	done := ctx.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		p, ok := rs.claims.claim(self)
		if !ok {
			return
		}
		i := rs.faultAt(p)
		o := faultOutcome{idx: p}
		switch {
		case Status(rs.status[i].Load()) != Pending:
			// Already classified by the merge loop: safe empty skip.
		case rs.bcast.hit(i):
			rs.bcast.skips.Add(1)
			o.advisory = true
		default:
			var interrupted bool
			o, interrupted = w.process(ctx, rs, p, i, true)
			if interrupted {
				return
			}
			if rs.bcast != nil && o.status == Tested {
				// Publish the detected set before the outcome enters the
				// reorder buffer, so other workers stop targeting these
				// faults while the sequence waits for its commit turn.
				for _, f := range o.detected {
					if j, ok := w.e.index[f]; ok {
						rs.bcast.mark(j)
					}
				}
			}
		}
		select {
		case rs.results <- o:
		case <-done:
			return
		}
	}
}

// process runs the complete per-fault pipeline — seeded X-fill stream,
// generation, post-generation credit sweep — for the fault at targeting
// position p (fault index i) and returns the outcome, or interrupted
// when a done context cut the search short (the outcome is then
// meaningless and must not be sent or committed). It is deterministic in
// (engine, fault index): the merge loop calls it to regenerate an
// advisory skip that did not hold, and gets bit for bit the outcome the
// skipping worker would have produced. advisory enables the mid-search
// broadcast checks; the merge loop's regeneration disables them (it is
// the authority the checks would consult).
func (w *worker) process(ctx context.Context, rs *runState, p, i int, advisory bool) (faultOutcome, bool) {
	w.fseed = faultSeed(w.e.opts.Seed, i)
	w.attempts = 0
	w.rng = rand.New(rand.NewSource(w.fseed))
	o := faultOutcome{idx: p}
	var check func() stopReason
	if advisory && w.e.opts.Broadcast {
		check = func() stopReason {
			if Status(rs.status[i].Load()) != Pending {
				return stopCovered
			}
			if rs.bcast.hit(i) {
				return stopAdvisory
			}
			return stopNone
		}
	}
	var stop stopReason
	var ff *tdsim.FastFrame
	o.seq, ff, o.status, o.valFail, stop = w.generate(ctx, rs.all[i], check)
	switch stop {
	case stopInterrupted:
		// An outcome sent to the merge loop must always be the complete
		// deterministic one — the loop may commit it even after
		// cancellation — so a worker that noticed the done context bails
		// out entirely rather than, say, skipping the credit sweep.
		return o, true
	case stopCovered:
		return faultOutcome{idx: p}, false
	case stopAdvisory:
		rs.bcast.skips.Add(1)
		return faultOutcome{idx: p, advisory: true}, false
	}
	if ctx.Err() != nil {
		return o, true
	}
	if o.status == Tested && !w.e.opts.DisableFaultSim {
		// Post-generation fault simulation runs here, on the worker,
		// so the expensive CPT and confirmation work parallelizes;
		// only the status bookkeeping happens on the merge loop. The
		// skip filter reads racy status snapshots purely to save
		// work: the merge loop re-checks every detected fault. With
		// Compact or DeferCredit the filter is dropped so the
		// recorded detection set is complete and independent of
		// claim timing; that changes no credit decision, because a
		// fault still pending at commit time was also pending at
		// detect time and is in the filtered list either way. The
		// deferred-credit merge (pkg/atpg MergeResults) additionally
		// needs the complete set because the globally-pending faults
		// of other shards are unknowable here. The advisory broadcast never
		// enters this filter: a broadcast-covered fault whose coverer is
		// later discarded must still appear in detection lists, or its
		// credit would depend on claim timing.
		skip := func(f faults.Delay) bool {
			j, ok := w.e.index[f]
			return !ok || Status(rs.status[j].Load()) != Pending
		}
		if w.e.opts.Compact || w.e.opts.DeferCredit {
			skip = nil
		}
		if ff == nil {
			// Validation disabled: the winning frame was never derived.
			ff = w.fastFrame(o.seq)
		}
		if w.e.opts.ScalarCredit {
			o.detected = w.td.DetectScalar(ff, skip)
		} else {
			o.detected = w.td.Detect(ff, skip)
		}
	}
	return o, false
}

// generate runs the extended FOGBUSTER flow (Figure 4) for one fault:
// local test generation, then — if the effect only reached the state
// register — forward propagation to a PO, then synchronization of the
// required initial state. A failure in a sequential phase backtracks into
// the local generator for the next distinct local test. On Tested it also
// returns the validated fast frame (the winning X-fill completion), so
// the credit sweep never re-derives it. It also returns how many
// candidate sequences the independent validator rejected, and a
// stopReason when the search ended early (the other return values are
// then meaningless and must not be committed). check, when non-nil, is
// consulted once per local alternative — the same granularity as
// cancellation — and aborts the search with its verdict.
func (w *worker) generate(ctx context.Context, f faults.Delay, check func() stopReason) (*TestSequence, *tdsim.FastFrame, Status, int, stopReason) {
	gen := tdgen.New(w.net, f, w.e.meas, tdgen.Options{
		Algebra:       w.e.alg,
		MaxBacktracks: w.e.opts.LocalBacktracks,
		Probe:         true,
		ScalarProbe:   w.e.opts.ScalarSearch,
		ProbeSeed:     faultSeed(w.fseed, probeStreamGen),
	})
	w.sem.SetProbe(faultSeed(w.fseed, probeStreamProp), w.e.opts.ScalarSearch)
	budget := semilet.NewBudget(w.e.opts.SeqBacktracks)
	valFail := 0

	for {
		// Checked once per local alternative: each tdgen/semilet phase is
		// budget-bounded, so this is the promptness granularity of
		// cancellation and of the broadcast skip.
		if ctx.Err() != nil {
			return nil, nil, Pending, valFail, stopInterrupted
		}
		if check != nil {
			if r := check(); r != stopNone {
				return nil, nil, Pending, valFail, r
			}
		}
		sol, st := gen.Next()
		switch st {
		case tdgen.Untestable:
			return nil, nil, Untestable, valFail, stopNone
		case tdgen.Aborted:
			return nil, nil, Aborted, valFail, stopNone
		}

		seq := &TestSequence{
			Fault:      f,
			V1:         sol.V1,
			V2:         sol.V2,
			ObservePO:  sol.ObservePO,
			ObservePPO: sol.ObservePPO,
		}

		// Forward propagation phase: only needed when the local test
		// observes the effect at a PPO.
		if sol.ObservePO < 0 {
			prop, pst := w.sem.Propagate(w.handoff(sol), budget)
			if pst == semilet.Aborted {
				return nil, nil, Aborted, valFail, stopNone
			}
			if pst != semilet.Success {
				continue // backtrack into the local generator
			}
			seq.Prop = prop.Vectors
			seq.ObservePO = prop.PO
		}

		// Initialization phase: a synchronizing sequence to the required
		// state of the local test.
		sync, sst := w.sem.SynchronizeWith(sol.State0, budget, !w.e.opts.StrictInit)
		if sst == semilet.Aborted {
			return nil, nil, Aborted, valFail, stopNone
		}
		if sst != semilet.Success {
			continue
		}
		seq.Sync = sync.Vectors
		seq.Assumed = sync.Assumed

		if !w.e.opts.DisableValidation {
			ff, ok := w.validate(seq)
			if !ok {
				valFail++
				continue
			}
			return seq, ff, Tested, valFail, stopNone
		}
		return seq, nil, Tested, valFail, stopNone
	}
}

// handoff returns the state knowledge passed to the propagation phase.
// With the timing refinement enabled (the paper's future work), PPOs the
// robust model could not specify are lifted to known final values when
// they are fault-free, settle to a uniform value, and stabilize with at
// least VariationBudget delay units of slack before the fast capture
// edge.
func (w *worker) handoff(sol *tdgen.Solution) []sim.V5 {
	if w.e.tim == nil {
		return sol.PPOFinal
	}
	lifted := append([]sim.V5(nil), sol.PPOFinal...)
	for i, ppo := range w.e.c.PPOs() {
		if lifted[i] != sim.X5 {
			continue
		}
		set := sol.Sets[ppo]
		if set.Empty() || set&logic.CarrySet != 0 {
			continue
		}
		if w.e.tim.Slack(ppo) < int32(w.e.opts.VariationBudget) {
			continue
		}
		var fin [2]bool
		for _, v := range set.Values() {
			fin[v.Final()] = true
		}
		switch {
		case fin[1] && !fin[0]:
			lifted[i] = sim.O5
		case fin[0] && !fin[1]:
			lifted[i] = sim.Z5
		}
	}
	return lifted
}

// fastFrame fills the sequence's don't-cares from the worker's per-fault
// stream; it backs the validation-disabled path, where no lane structure
// exists and the fill draws straight from the fault's master RNG.
func (w *worker) fastFrame(seq *TestSequence) *tdsim.FastFrame {
	return w.fastFrameWith(seq, w.rng)
}

// fillInto is XFill into a caller-owned buffer.
func fillInto(dst, vec []sim.V3, rng *rand.Rand) {
	for i, v := range vec {
		if v == sim.X {
			dst[i] = sim.V3(rng.Intn(2))
		} else {
			dst[i] = v
		}
	}
}

// fastFrameWith fills the sequence's don't-cares from rng and derives the
// concrete two-frame situation of the fast clock cycle, simulating the
// good machine from a random power-up state through the initialization
// and the initial time frame (the paper's fault simulation phase 1). The
// returned frame aliases worker-owned scratch: it is valid until the next
// fastFrameWith call on this worker.
func (w *worker) fastFrameWith(seq *TestSequence, rng *rand.Rand) *tdsim.FastFrame {
	state := w.ffS0
	for i := range state {
		if seq.Assumed != nil && seq.Assumed[i].Known() {
			state[i] = seq.Assumed[i]
		} else {
			state[i] = sim.V3(rng.Intn(2))
		}
	}
	syncV := fausim.FillSequence(seq.Sync, rng)
	if len(syncV) > 0 {
		steps := w.net.SeqSim3(state, syncV)
		copy(state, steps[len(steps)-1].State)
	}
	for i := range state {
		if state[i] == sim.X {
			state[i] = sim.V3(rng.Intn(2))
		}
	}
	fillInto(w.ffV1, seq.V1, rng)
	fillInto(w.ffV2, seq.V2, rng)
	w.net.LoadFrameInto(w.frame3, w.ffV1, state)
	w.net.Eval3(w.frame3, nil)
	t := w.net.T
	for i, ff := range w.e.c.DFFs {
		v := w.frame3[t.Fanin[t.FaninOff[ff]]]
		if v == sim.X {
			v = sim.V3(rng.Intn(2))
		}
		w.ffS1[i] = v
	}
	w.ff = tdsim.FastFrame{
		V1: w.ffV1, V2: w.ffV2,
		S0: state, S1: w.ffS1,
		Prop: fausim.FillSequence(seq.Prop, rng),
	}
	return &w.ff
}

// confirm checks one concrete fast frame: fault-free two-frame values,
// the good captured state, then the full Confirm decision.
func (w *worker) confirm(ff *tdsim.FastFrame, f faults.Delay) bool {
	w.net.LoadFrame8Into(w.vals8, ff.V1, ff.V2, ff.S0, ff.S1)
	w.net.Eval8(w.e.alg, w.vals8, nil)
	for i, ppo := range w.ppos {
		w.goodS2[i] = sim.V3(w.vals8[ppo].Final())
	}
	return w.td.Confirm(ff, w.vals8, w.goodS2, f)
}

// confirmLanes derives 64 deterministic X-fill completions of the
// candidate — lane k drawing exactly the per-lane stream seedLane(attempt,
// k) — and confirms all of them in one lane-parallel pass
// (tdsim.ConfirmFills), returning the word of detecting lanes.
//
// The derivation mirrors fastFrameWith site by site on packed words: the
// power-up state, the synchronization replay (all inputs are binary per
// lane, so the three-valued good simulation degenerates to Eval64, which
// is exact), the two fast-frame vectors, the latched test state and the
// propagation vectors. At every X site one bit is drawn per lane, in the
// scalar visit order, so each lane's draw subsequence is identical to a
// scalar fastFrameWith on that lane's RNG — site-major and lane-major
// enumeration commute because the streams are independent.
func (w *worker) confirmLanes(seq *TestSequence, attempt int) sim.Word {
	for lane := 0; lane < 64; lane++ {
		w.seedLane(attempt, lane)
	}
	draw := func() sim.Word {
		var wd sim.Word
		for k := 0; k < 64; k++ {
			wd |= sim.Word(w.lanes[k].Intn(2)) << uint(k)
		}
		return wd
	}
	wordFor := func(v sim.V3) sim.Word {
		switch v {
		case sim.Hi:
			return ^sim.Word(0)
		case sim.Lo:
			return 0
		}
		return draw()
	}
	c := w.e.c
	t := w.net.T
	fb := &w.fb

	// Power-up state.
	state := w.state64
	for i := range c.DFFs {
		if seq.Assumed != nil && seq.Assumed[i].Known() {
			state[i] = wordFor(seq.Assumed[i])
		} else {
			state[i] = draw()
		}
	}
	// Synchronization replay, 64 lanes per pass.
	for _, vec := range seq.Sync {
		for i, pi := range c.PIs {
			w.vals64[pi] = wordFor(vec[i])
		}
		for i, ffn := range c.DFFs {
			w.vals64[ffn] = state[i]
		}
		w.net.Eval64(w.vals64)
		for i, ffn := range c.DFFs {
			state[i] = w.vals64[t.Fanin[t.FaninOff[ffn]]]
		}
	}
	copy(fb.S0, state)
	for i, v := range seq.V1 {
		fb.V1[i] = wordFor(v)
	}
	for i, v := range seq.V2 {
		fb.V2[i] = wordFor(v)
	}
	// Latched test state: the initial frame is fully binary in every lane,
	// so the capture draws nothing.
	for i, pi := range c.PIs {
		w.vals64[pi] = fb.V1[i]
	}
	for i, ffn := range c.DFFs {
		w.vals64[ffn] = fb.S0[i]
	}
	w.net.Eval64(w.vals64)
	for i, ffn := range c.DFFs {
		fb.S1[i] = w.vals64[t.Fanin[t.FaninOff[ffn]]]
	}
	// Propagation vectors.
	fb.Prop = fb.Prop[:0]
	for _, vec := range seq.Prop {
		var row []sim.Word
		if len(fb.Prop) < len(w.propRows) {
			row = w.propRows[len(fb.Prop)]
		} else {
			row = make([]sim.Word, len(c.PIs))
			w.propRows = append(w.propRows, row)
		}
		for i, v := range vec {
			row[i] = wordFor(v)
		}
		fb.Prop = append(fb.Prop, row)
	}
	return w.td.ConfirmFills(fb, seq.Fault)
}

// validate replays the generated sequence with the fault injected and
// checks that the promised observation really happens: robust carrying at
// a PO in the fast frame, or a good/faulty difference at a PO after the
// propagation frames. The checker shares no code with the generator's
// search (it uses the concrete simulators), so it is an independent
// witness.
//
// Each candidate gets 64 X-fill trials instead of one: a candidate that
// dies on an unlucky fill is salvaged by any of 63 alternate completions.
// The first lane is checked scalar — the common case, a candidate whose
// first fill confirms, costs exactly one frame — and the remaining 63
// in one lane-parallel pass, committing the lowest-index detecting lane.
// The scalar reference (Options.ScalarSearch) enumerates the identical
// lanes one frame at a time, first detect wins; both paths pick the same
// lane and return bit-identical frames, so every downstream artifact
// (Summary, canonical JSON) is invariant under the knob.
func (w *worker) validate(seq *TestSequence) (*tdsim.FastFrame, bool) {
	attempt := w.attempts
	w.attempts++
	ff := w.fastFrameWith(seq, w.seedLane(attempt, 0))
	if w.confirm(ff, seq.Fault) {
		return ff, true
	}
	if w.e.opts.ScalarSearch {
		for lane := 1; lane < 64; lane++ {
			ff = w.fastFrameWith(seq, w.seedLane(attempt, lane))
			if w.confirm(ff, seq.Fault) {
				return ff, true
			}
		}
		return nil, false
	}
	// Lane 0 is re-derived inside the batch (identical stream, identical
	// verdict) but masked out: its scalar verdict above is authoritative.
	det := w.confirmLanes(seq, attempt) &^ 1
	if det == 0 {
		return nil, false
	}
	return w.fastFrameWith(seq, w.seedLane(attempt, bits.TrailingZeros64(uint64(det)))), true
}
