package core

import (
	"fogbuster/internal/faults"
	"fogbuster/internal/fausim"
	"fogbuster/internal/logic"
	"fogbuster/internal/semilet"
	"fogbuster/internal/sim"
	"fogbuster/internal/tdgen"
	"fogbuster/internal/tdsim"
)

// generate runs the extended FOGBUSTER flow (Figure 4) for one fault:
// local test generation, then — if the effect only reached the state
// register — forward propagation to a PO, then synchronization of the
// required initial state. A failure in a sequential phase backtracks into
// the local generator for the next distinct local test.
func (e *Engine) generate(f faults.Delay) (*TestSequence, Status) {
	gen := tdgen.New(e.net, f, e.meas, tdgen.Options{
		Algebra:       e.alg,
		MaxBacktracks: e.opts.LocalBacktracks,
	})
	budget := semilet.NewBudget(e.opts.SeqBacktracks)

	for {
		sol, st := gen.Next()
		switch st {
		case tdgen.Untestable:
			return nil, Untestable
		case tdgen.Aborted:
			return nil, Aborted
		}

		seq := &TestSequence{
			Fault:      f,
			V1:         sol.V1,
			V2:         sol.V2,
			ObservePO:  sol.ObservePO,
			ObservePPO: sol.ObservePPO,
		}

		// Forward propagation phase: only needed when the local test
		// observes the effect at a PPO.
		if sol.ObservePO < 0 {
			prop, pst := e.sem.Propagate(e.handoff(sol), budget)
			if pst == semilet.Aborted {
				return nil, Aborted
			}
			if pst != semilet.Success {
				continue // backtrack into the local generator
			}
			seq.Prop = prop.Vectors
			seq.ObservePO = prop.PO
		}

		// Initialization phase: a synchronizing sequence to the required
		// state of the local test.
		sync, sst := e.sem.SynchronizeWith(sol.State0, budget, !e.opts.StrictInit)
		if sst == semilet.Aborted {
			return nil, Aborted
		}
		if sst != semilet.Success {
			continue
		}
		seq.Sync = sync.Vectors
		seq.Assumed = sync.Assumed

		if !e.opts.DisableValidation && !e.validate(seq) {
			e.valFail++
			continue
		}
		return seq, Tested
	}
}

// handoff returns the state knowledge passed to the propagation phase.
// With the timing refinement enabled (the paper's future work), PPOs the
// robust model could not specify are lifted to known final values when
// they are fault-free, settle to a uniform value, and stabilize with at
// least VariationBudget delay units of slack before the fast capture
// edge.
func (e *Engine) handoff(sol *tdgen.Solution) []sim.V5 {
	if e.tim == nil {
		return sol.PPOFinal
	}
	lifted := append([]sim.V5(nil), sol.PPOFinal...)
	for i, ppo := range e.c.PPOs() {
		if lifted[i] != sim.X5 {
			continue
		}
		set := sol.Sets[ppo]
		if set.Empty() || set&logic.CarrySet != 0 {
			continue
		}
		if e.tim.Slack(ppo) < int32(e.opts.VariationBudget) {
			continue
		}
		var fin [2]bool
		for _, v := range set.Values() {
			fin[v.Final()] = true
		}
		switch {
		case fin[1] && !fin[0]:
			lifted[i] = sim.O5
		case fin[0] && !fin[1]:
			lifted[i] = sim.Z5
		}
	}
	return lifted
}

// fastFrame fills the sequence's don't-cares and derives the concrete
// two-frame situation of the fast clock cycle, simulating the good
// machine from a random power-up state through the initialization and the
// initial time frame (the paper's fault simulation phase 1).
func (e *Engine) fastFrame(seq *TestSequence) *tdsim.FastFrame {
	state := make([]sim.V3, len(e.c.DFFs))
	for i := range state {
		if seq.Assumed != nil && seq.Assumed[i].Known() {
			state[i] = seq.Assumed[i]
		} else {
			state[i] = sim.V3(e.rng.Intn(2))
		}
	}
	syncV := fausim.FillSequence(seq.Sync, e.rng)
	if len(syncV) > 0 {
		steps := e.net.SeqSim3(state, syncV)
		state = steps[len(steps)-1].State
	}
	for i := range state {
		if state[i] == sim.X {
			state[i] = sim.V3(e.rng.Intn(2))
		}
	}
	v1 := sim.XFill(seq.V1, e.rng)
	v2 := sim.XFill(seq.V2, e.rng)
	f1 := e.net.LoadFrame(v1, state)
	e.net.Eval3(f1, nil)
	s1 := e.net.NextState3(f1, nil)
	for i := range s1 {
		if s1[i] == sim.X {
			s1[i] = sim.V3(e.rng.Intn(2))
		}
	}
	return &tdsim.FastFrame{
		V1: v1, V2: v2,
		S0: state, S1: s1,
		Prop: fausim.FillSequence(seq.Prop, e.rng),
	}
}

// validate replays the generated sequence with the fault injected and
// checks that the promised observation really happens: robust carrying at
// a PO in the fast frame, or a good/faulty difference at a PO after the
// propagation frames. The checker shares no code with the generator's
// search (it uses the concrete simulators), so it is an independent
// witness.
func (e *Engine) validate(seq *TestSequence) bool {
	ff := e.fastFrame(seq)
	goodS2 := make([]sim.V3, len(e.c.DFFs))
	vals := e.td.Values(ff)
	for i, ppo := range e.c.PPOs() {
		goodS2[i] = sim.V3(vals[ppo].Final())
	}
	return e.td.Confirm(ff, vals, goodS2, seq.Fault)
}

// credit fault-simulates a fresh concrete instance of the sequence and
// marks every additionally detected, still-pending fault, the paper's
// post-generation fault simulation.
func (e *Engine) credit(seq *TestSequence) {
	ff := e.fastFrame(seq)
	detected := e.td.Detect(ff, func(f faults.Delay) bool {
		i, ok := e.index[f]
		return !ok || e.status[i] != Pending
	})
	for _, f := range detected {
		if i, ok := e.index[f]; ok && e.status[i] == Pending {
			e.status[i] = TestedBySim
		}
	}
}
