package core

import (
	"sync"
	"sync/atomic"
)

// claimer hands targeting positions to workers. Claim order is pure
// scheduling — the merge loop commits outcomes in canonical permutation
// order whatever the claimer does — so implementations only guarantee
// that every position in the run's [lo, hi) window is handed out exactly
// once. The window is the whole targeted prefix for an ordinary run and
// a sub-range of it for a shard (Options.ShardLo/ShardHi); striping and
// stealing never leave the window.
type claimer interface {
	// claim returns the next position for worker self, or ok=false when
	// no work remains anywhere.
	claim(self int) (p int, ok bool)
	// steals reports how many range-stealing operations happened.
	steals() int64
}

// counterClaimer is the stock monotone claim counter: one shared atomic,
// positions handed out globally in ascending order from lo. Its claim
// order tracks the commit cursor closely, which keeps the merge loop's
// reorder buffer at O(workers).
type counterClaimer struct {
	next   atomic.Int64
	lo, hi int
}

func newCounterClaimer(lo, hi int) *counterClaimer { return &counterClaimer{lo: lo, hi: hi} }

func (c *counterClaimer) claim(int) (int, bool) {
	p := c.lo + int(c.next.Add(1)) - 1
	return p, p < c.hi
}

func (c *counterClaimer) steals() int64 { return 0 }

// stealClaimer gives every worker a private striped position range —
// worker k starts on positions lo+k, lo+k+W, lo+k+2W, … — and lets a
// worker whose range ran dry steal the back half of the largest
// remaining range. The stripes keep every worker's claims interleaved
// around the commit cursor (a contiguous split would park worker W-1's
// outcomes in the reorder buffer until the whole front of the window
// committed), while the private ranges remove the shared counter from
// the claim fast path and keep each worker walking adjacent faults of
// its own stripe.
type stealClaimer struct {
	stride int
	ranges []stripe
	count  atomic.Int64
}

// stripe is one worker's current claim range: positions next, next+W, …
// strictly below end. Both fields move only under mu; the mutex is
// uncontended except during a steal.
type stripe struct {
	mu        sync.Mutex
	next, end int
}

// remaining counts the positions left in the stripe; callers hold mu.
func (s *stripe) remaining(stride int) int {
	if s.next >= s.end {
		return 0
	}
	return (s.end - s.next + stride - 1) / stride
}

// newStealClaimer stripes [lo, hi) across the workers.
func newStealClaimer(lo, hi, workers int) *stealClaimer {
	c := &stealClaimer{stride: workers, ranges: make([]stripe, workers)}
	for i := range c.ranges {
		c.ranges[i] = stripe{next: lo + i, end: hi}
	}
	return c
}

func (c *stealClaimer) claim(self int) (int, bool) {
	r := &c.ranges[self]
	for {
		r.mu.Lock()
		if r.next < r.end {
			p := r.next
			r.next += c.stride
			r.mu.Unlock()
			return p, true
		}
		r.mu.Unlock()
		if !c.steal(self) {
			return 0, false
		}
	}
}

// steal moves the back half of the largest remaining range into self's
// stripe. Singleton ranges are left alone — their owner claims the last
// position on its next call, and splitting work the victim is about to
// take would only bounce it between mutexes. Returns false when no range
// holds two or more positions, which is the worker's signal to exit.
func (c *stealClaimer) steal(self int) bool {
	for {
		victim, best := -1, 1
		for i := range c.ranges {
			if i == self {
				continue
			}
			v := &c.ranges[i]
			v.mu.Lock()
			rem := v.remaining(c.stride)
			v.mu.Unlock()
			if rem > best {
				victim, best = i, rem
			}
		}
		if victim < 0 {
			return false
		}
		v := &c.ranges[victim]
		v.mu.Lock()
		rem := v.remaining(c.stride)
		if rem < 2 {
			// Raced with the victim (or another thief); rescan.
			v.mu.Unlock()
			continue
		}
		keep := (rem + 1) / 2
		cut := v.next + keep*c.stride
		start, end := cut, v.end
		v.end = cut
		v.mu.Unlock()

		r := &c.ranges[self]
		r.mu.Lock()
		r.next, r.end = start, end
		r.mu.Unlock()
		c.count.Add(1)
		return true
	}
}

func (c *stealClaimer) steals() int64 { return c.count.Load() }

// broadcast is the cross-worker detected-set snapshot: workers mark
// every fault their just-generated sequence detects the moment the
// credit sweep finishes — before the outcome reaches the merge loop — so
// other workers stop burning propagation searches on faults a completed
// sequence already covers while that sequence waits in the reorder
// buffer for its commit turn.
//
// The set is advisory, never authoritative: a marked fault's covering
// sequence may itself be discarded at commit (its own target was already
// credited), in which case the merge loop regenerates the skipped fault
// inline (see merge). The authoritative status array stays the merge
// loop's alone, which is what keeps Summaries bit-identical at every
// worker count.
type broadcast struct {
	covered []atomic.Uint32
	// skips counts advisory skips workers took; misses counts the subset
	// the merge loop had to take back by regenerating. Both are
	// scheduling-dependent observability counters (like Runtime), never
	// part of the canonical result.
	skips, misses atomic.Int64
}

func newBroadcast(n int) *broadcast { return &broadcast{covered: make([]atomic.Uint32, n)} }

// hit reports whether some completed sequence claims to detect fault i;
// nil-safe (broadcast disabled).
func (b *broadcast) hit(i int) bool { return b != nil && b.covered[i].Load() != 0 }

// mark records that a completed sequence detects fault i.
func (b *broadcast) mark(i int) { b.covered[i].Store(1) }
