// Package faults enumerates fault universes over a circuit: the paper's
// gate delay fault model (a slow-to-rise and a slow-to-fall fault on every
// stem and every fanout branch) and the classic single stuck-at model used
// by SEMILET for static-fault test generation.
package faults

import (
	"fmt"

	"fogbuster/internal/netlist"
)

// DelayType distinguishes the two gate delay fault polarities.
type DelayType uint8

const (
	// SlowToRise delays the 0->1 transition at the fault site.
	SlowToRise DelayType = iota
	// SlowToFall delays the 1->0 transition at the fault site.
	SlowToFall
)

// String returns "StR" or "StF", the paper's notation.
func (t DelayType) String() string {
	if t == SlowToRise {
		return "StR"
	}
	return "StF"
}

// Delay is one gate delay fault: a site line and a polarity.
type Delay struct {
	Line netlist.Line
	Type DelayType
}

// String formats the fault with circuit-independent IDs.
func (d Delay) String() string { return fmt.Sprintf("%v/%v", d.Line, d.Type) }

// Name formats the fault with signal names from the circuit.
func (d Delay) Name(c *netlist.Circuit) string {
	return fmt.Sprintf("%s/%v", c.LineName(d.Line), d.Type)
}

// AllDelay returns the complete gate delay fault universe of the circuit:
// for every line (stem or fanout branch) a slow-to-rise and a slow-to-fall
// fault, in line order. Its size is twice Circuit.NumLines, matching the
// per-circuit fault totals of the paper's Table 3.
func AllDelay(c *netlist.Circuit) []Delay {
	lines := c.Lines()
	out := make([]Delay, 0, 2*len(lines))
	for _, l := range lines {
		out = append(out, Delay{Line: l, Type: SlowToRise}, Delay{Line: l, Type: SlowToFall})
	}
	return out
}

// Stuck is one single stuck-at fault.
type Stuck struct {
	Line netlist.Line
	One  bool // true for stuck-at-1
}

// String formats the fault with circuit-independent IDs.
func (s Stuck) String() string {
	v := 0
	if s.One {
		v = 1
	}
	return fmt.Sprintf("%v/sa%d", s.Line, v)
}

// Name formats the fault with signal names from the circuit.
func (s Stuck) Name(c *netlist.Circuit) string {
	v := 0
	if s.One {
		v = 1
	}
	return fmt.Sprintf("%s/sa%d", c.LineName(s.Line), v)
}

// AllStuck returns the uncollapsed single stuck-at universe over the same
// line set as the delay model.
func AllStuck(c *netlist.Circuit) []Stuck {
	lines := c.Lines()
	out := make([]Stuck, 0, 2*len(lines))
	for _, l := range lines {
		out = append(out, Stuck{Line: l, One: false}, Stuck{Line: l, One: true})
	}
	return out
}

// One2V3 returns the stuck value as a simulation bit (0 or 1) encoded in a
// byte, for callers building injections.
func (s Stuck) One2V3() uint8 {
	if s.One {
		return 1
	}
	return 0
}
