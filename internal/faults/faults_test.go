package faults

import (
	"strings"
	"testing"

	"fogbuster/internal/bench"
)

func TestDelayUniverseS27(t *testing.T) {
	c := bench.NewS27()
	all := AllDelay(c)
	if len(all) != 50 {
		t.Fatalf("s27 delay faults = %d, want 50 (the paper's 39+11)", len(all))
	}
	// Every line appears exactly twice, once per polarity.
	seen := make(map[string]int)
	for _, f := range all {
		seen[c.LineName(f.Line)]++
	}
	for name, n := range seen {
		if n != 2 {
			t.Errorf("line %s has %d faults, want 2", name, n)
		}
	}
	if len(seen) != 25 {
		t.Errorf("distinct lines = %d, want 25", len(seen))
	}
}

func TestFaultNames(t *testing.T) {
	c := bench.NewS27()
	all := AllDelay(c)
	foundBranch := false
	for _, f := range all {
		name := f.Name(c)
		if strings.Contains(name, "->") {
			foundBranch = true
		}
		if !strings.HasSuffix(name, "/StR") && !strings.HasSuffix(name, "/StF") {
			t.Errorf("bad fault name %q", name)
		}
	}
	if !foundBranch {
		t.Error("no branch fault names generated")
	}
	if SlowToRise.String() != "StR" || SlowToFall.String() != "StF" {
		t.Error("DelayType names wrong")
	}
	st := AllStuck(c)
	if len(st) != 50 {
		t.Fatalf("stuck universe = %d, want 50", len(st))
	}
	if !strings.HasSuffix(st[0].Name(c), "/sa0") || !strings.HasSuffix(st[1].Name(c), "/sa1") {
		t.Errorf("stuck names wrong: %s %s", st[0].Name(c), st[1].Name(c))
	}
}

func TestDelayUniverseMatchesPaperTotals(t *testing.T) {
	for _, p := range bench.Profiles {
		c := p.Circuit()
		if got, want := len(AllDelay(c)), p.Paper.Faults(); got != want {
			t.Errorf("%s: %d faults, want %d", p.Name, got, want)
		}
	}
}
