package semilet

import (
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
	"fogbuster/internal/testability"
)

// PropResult is a successful fault effect propagation: one PI vector per
// slow-clock frame (X entries are don't-cares) that drives the effect from
// the state register to primary output PO in the final frame.
type PropResult struct {
	Vectors [][]sim.V3
	PO      int
	// RequiredPPIs lists the FF indices whose known initial value the
	// propagation actually relies on; the fault simulator's invalidation
	// check must ensure the fault cannot corrupt them as a side effect.
	RequiredPPIs []int
}

// Propagate drives the fault effect in state (D/D' entries, known bits and
// fixed-but-unknown X entries as handed over by TDgen) to a primary
// output using forward time processing. The machine is fault free during
// these frames (slow clock), so the five-valued composite state is the
// only good/faulty difference. X state entries are the paper's
// unjustifiable don't-cares: they can never be assigned, only PIs can.
func (e *Engine) Propagate(state []sim.V5, budget *Budget) (*PropResult, Status) {
	if !hasD5(state) {
		return nil, Exhausted
	}
	p := &propSearch{e: e, budget: budget}
	p.frames = append(p.frames, propFrame{state: state, assign: newAssign(len(e.net.C.PIs))})
	return p.run()
}

func hasD5(state []sim.V5) bool {
	for _, v := range state {
		if v.IsD() {
			return true
		}
	}
	return false
}

type propFrame struct {
	state    []sim.V5 // PPI values entering this frame
	assign   []sim.V5 // PI assignments (X5 = unassigned)
	decision []propDecision
	advanced bool // a deeper frame has been pushed from here

	// vals caches the frame's evaluation; dirty lists the PI indices
	// whose assignment changed since, so the next eval re-evaluates only
	// their fanout cones (nil vals forces a full evaluation).
	vals  []sim.V5
	dirty []int
}

type propDecision struct {
	pi    int
	order [2]sim.V5
	next  int
}

type propSearch struct {
	e      *Engine
	budget *Budget
	frames []propFrame
	// inject keeps a stuck-at fault active in every frame; it is nil for
	// the delay-fault flow, where the slow clock makes the machine fault
	// free and the composite state carries the only good/faulty difference.
	inject *sim.InjectStuck
	// seeds is the scratch of the event-driven delta evaluation.
	seeds []netlist.NodeID
}

func newAssign(n int) []sim.V5 {
	a := make([]sim.V5, n)
	for i := range a {
		a[i] = sim.X5
	}
	return a
}

func (p *propSearch) run() (*PropResult, Status) {
	for {
		f := &p.frames[len(p.frames)-1]
		vals := p.eval(f)
		if po := p.observedPO(vals); po >= 0 {
			return p.extract(po), Success
		}
		switch p.step(f, vals) {
		case stepAssigned:
			continue
		case stepAdvance:
			next := p.e.net.NextState5(vals, p.inject)
			f.advanced = true
			p.frames = append(p.frames, propFrame{state: next, assign: newAssign(len(f.assign))})
		case stepFail:
			if !p.backtrack() {
				if p.budget.Exceeded() {
					return nil, Aborted
				}
				return nil, Exhausted
			}
		}
	}
}

// eval brings the frame's cached evaluation up to date with its
// assignment. The first evaluation of a frame walks the full circuit;
// afterwards only the fanout cones of the PIs recorded in dirty are
// re-evaluated — bit-identical to a fresh full walk, because a changed
// PI can only affect its cone. The stuck-at flow (p.inject non-nil) and
// the FullEval oracle stay on the full walk.
func (p *propSearch) eval(f *propFrame) []sim.V5 {
	if p.e.opts.FullEval || p.inject != nil || f.vals == nil {
		f.vals = p.e.net.LoadFrame5(f.assign, f.state)
		p.e.net.Eval5(f.vals, p.inject)
		f.dirty = f.dirty[:0]
		return f.vals
	}
	if len(f.dirty) > 0 {
		p.seeds = p.seeds[:0]
		for _, pi := range f.dirty {
			id := p.e.net.C.PIs[pi]
			if f.vals[id] != f.assign[pi] {
				f.vals[id] = f.assign[pi]
				p.seeds = append(p.seeds, id)
			}
		}
		p.e.net.Eval5Cone(f.vals, p.seeds)
		f.dirty = f.dirty[:0]
	}
	return f.vals
}

func (p *propSearch) observedPO(vals []sim.V5) int {
	for i, po := range p.e.net.C.POs {
		if vals[po].IsD() {
			return i
		}
	}
	return -1
}

type stepKind uint8

const (
	stepAssigned stepKind = iota
	stepAdvance
	stepFail
)

// step makes one unit of progress in the current frame: either assigns a
// PI toward pushing the D-frontier, or decides to advance a frame, or
// reports that the frame is a dead end.
func (p *propSearch) step(f *propFrame, vals []sim.V5) stepKind {
	c := p.e.net.C
	if p.xPathToPO(vals) {
		if pi, val := p.frontierObjective(f, vals); pi >= 0 {
			order := p.probeOrder(f, pi, val)
			f.decision = append(f.decision, propDecision{pi: pi, order: order})
			f.assign[pi] = order[0]
			f.dirty = append(f.dirty, pi)
			return stepAssigned
		}
	}
	// No way to a PO in this frame: advance if the effect survives in the
	// next state, depth remains and the state is new — revisiting a state
	// can never observe anything a shorter sequence could not.
	if !f.advanced && len(p.frames) < p.e.opts.maxFrames() {
		next := p.e.net.NextState5(vals, p.inject)
		if hasD5(next) && !p.stateSeen(next) {
			return stepAdvance
		}
	}
	_ = c
	return stepFail
}

// stateSeen reports whether an identical composite state is already on the
// frame stack.
func (p *propSearch) stateSeen(state []sim.V5) bool {
	for i := range p.frames {
		same := true
		for j, v := range p.frames[i].state {
			if v != state[j] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

func invert5(v sim.V5) sim.V5 {
	switch v {
	case sim.Z5:
		return sim.O5
	case sim.O5:
		return sim.Z5
	}
	return v
}

// xPathToPO reports whether some fault effect can still reach a PO through
// X-valued logic in this frame.
func (p *propSearch) xPathToPO(vals []sim.V5) bool {
	c := p.e.net.C
	potential := make([]bool, len(c.Nodes))
	for i := range c.Nodes {
		if vals[i].IsD() {
			potential[i] = true
		}
	}
	for _, id := range c.GateOrder() {
		if vals[id] != sim.X5 {
			continue
		}
		for _, in := range c.Nodes[id].Fanin {
			if potential[in] {
				potential[id] = true
				break
			}
		}
	}
	for _, po := range c.POs {
		if potential[po] {
			return true
		}
	}
	return false
}

// frontierObjective picks a D-frontier gate and backtraces one side-input
// objective to an unassigned PI, returning (-1, _) when no frontier can be
// served by the assignable inputs.
func (p *propSearch) frontierObjective(f *propFrame, vals []sim.V5) (int, sim.V5) {
	c := p.e.net.C
	bestGate, bestCost := netlist.None, testability.Inf+1
	for _, id := range c.GateOrder() {
		if vals[id] != sim.X5 {
			continue
		}
		hasD := false
		for _, in := range c.Nodes[id].Fanin {
			if vals[in].IsD() {
				hasD = true
				break
			}
		}
		if hasD && p.e.meas.CO[id] < bestCost {
			bestGate, bestCost = id, p.e.meas.CO[id]
		}
	}
	if bestGate == netlist.None {
		return -1, sim.X5
	}
	// Objective: set an X side input of the frontier gate to the
	// non-controlling value, backtraced to a PI of this frame.
	node := &c.Nodes[bestGate]
	want := nonControlling5(node.Type)
	for _, in := range node.Fanin {
		if vals[in] != sim.X5 {
			continue
		}
		if pi, val := p.backtrace(f, vals, in, want); pi >= 0 {
			return pi, val
		}
	}
	return -1, sim.X5
}

// nonControlling5 is the side-input value that lets an effect through.
func nonControlling5(t netlist.GateType) sim.V5 {
	switch t {
	case netlist.And, netlist.Nand:
		return sim.O5
	case netlist.Or, netlist.Nor:
		return sim.Z5
	default:
		// XOR propagates with any known side value; NOT/BUF have no side.
		return sim.Z5
	}
}

// backtrace follows X-valued logic from the objective toward an
// unassigned PI of this frame. Fixed-unknown PPIs are dead ends: the
// paper's unjustifiable don't-cares cannot be assigned.
func (p *propSearch) backtrace(f *propFrame, vals []sim.V5, id netlist.NodeID, want sim.V5) (int, sim.V5) {
	c := p.e.net.C
	for {
		node := &c.Nodes[id]
		switch node.Type {
		case netlist.Input:
			for i, pi := range c.PIs {
				if pi == id {
					if f.assign[i] == sim.X5 {
						return i, want
					}
					return -1, sim.X5
				}
			}
			return -1, sim.X5
		case netlist.DFF:
			return -1, sim.X5
		}
		if invertsObjective(node.Type) {
			want = invert5(want)
		}
		next := netlist.None
		bestCost := testability.Inf + 1
		for _, in := range node.Fanin {
			if vals[in] != sim.X5 {
				continue
			}
			cost := p.e.meas.CC1[in]
			if want == sim.Z5 {
				cost = p.e.meas.CC0[in]
			}
			if cost < bestCost {
				next, bestCost = in, cost
			}
		}
		if next == netlist.None {
			return -1, sim.X5
		}
		id = next
	}
}

func invertsObjective(t netlist.GateType) bool {
	switch t {
	case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
		return true
	}
	return false
}

// backtrack flips the deepest untried decision, popping exhausted
// decisions and frames, and reports whether the search can continue.
func (p *propSearch) backtrack() bool {
	for len(p.frames) > 0 {
		f := &p.frames[len(p.frames)-1]
		for len(f.decision) > 0 {
			d := &f.decision[len(f.decision)-1]
			d.next++
			if d.next < len(d.order) {
				if !p.budget.Spend() {
					return false
				}
				f.assign[d.pi] = d.order[d.next]
				f.dirty = append(f.dirty, d.pi)
				// The new assignment yields a new next state, so this
				// frame may advance again.
				f.advanced = false
				return true
			}
			f.assign[d.pi] = sim.X5
			f.dirty = append(f.dirty, d.pi)
			f.decision = f.decision[:len(f.decision)-1]
		}
		if len(p.frames) == 1 {
			p.frames = p.frames[:0]
			return false
		}
		p.frames = p.frames[:len(p.frames)-1]
	}
	return false
}

// extract records the solution and computes which known initial state bits
// the propagation actually relies on, by re-simulating with each one
// masked to X.
func (p *propSearch) extract(po int) *PropResult {
	res := &PropResult{PO: po}
	for i := range p.frames {
		vec := make([]sim.V3, len(p.frames[i].assign))
		for j, v := range p.frames[i].assign {
			vec[j] = v.Good()
		}
		res.Vectors = append(res.Vectors, vec)
	}
	initial := p.frames[0].state
	for ffIdx, v := range initial {
		if v == sim.X5 || v.IsD() {
			continue
		}
		masked := append([]sim.V5(nil), initial...)
		masked[ffIdx] = sim.X5
		if !p.replayObserves(masked, res.Vectors, po) {
			res.RequiredPPIs = append(res.RequiredPPIs, ffIdx)
		}
	}
	return res
}

// replayObserves re-simulates the recorded vectors from the given initial
// state and reports whether the PO still carries the effect in the final
// frame.
func (p *propSearch) replayObserves(state []sim.V5, vectors [][]sim.V3, po int) bool {
	cur := state
	var vals []sim.V5
	for _, vec := range vectors {
		v5 := make([]sim.V5, len(vec))
		for i, b := range vec {
			v5[i] = sim.FromV3(b)
		}
		vals = p.e.net.LoadFrame5(v5, cur)
		p.e.net.Eval5(vals, p.inject)
		cur = p.e.net.NextState5(vals, p.inject)
	}
	return vals[p.e.net.C.POs[po]].IsD()
}
