package semilet

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/sim"
)

// probeStates enumerates the handed-over state vectors the probe test
// drives through Propagate: a lone effect per FF position, with the
// remaining registers all-unknown or alternating known values (the
// side-value situations that force frontier decisions).
func probeStates(nFF int) [][]sim.V5 {
	var out [][]sim.V5
	for ffIdx := 0; ffIdx < nFF; ffIdx++ {
		for _, dv := range []sim.V5{sim.D5, sim.B5} {
			allX := make([]sim.V5, nFF)
			known := make([]sim.V5, nFF)
			for i := range allX {
				allX[i] = sim.X5
				if i%2 == 0 {
					known[i] = sim.Z5
				} else {
					known[i] = sim.O5
				}
			}
			allX[ffIdx] = dv
			known[ffIdx] = dv
			out = append(out, allX, known)
		}
	}
	return out
}

// TestProbeScalarMatchesBatched is the differential property test of the
// propagation-phase decision probe: with probing armed, the batched
// two-valued lane scoring and the per-lane scalar three-valued oracle
// must drive byte-identical searches — same status, same vectors, same
// budget use — because the sampled lane words are shared and a
// two-valued lane equals a three-valued walk of its binary frame.
func TestProbeScalarMatchesBatched(t *testing.T) {
	for _, name := range []string{"s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		eB := NewEngine(sim.NewNet(c), Options{})
		eS := NewEngine(sim.NewNet(c), Options{})
		for si, state := range probeStates(len(c.DFFs)) {
			seed := int64(si)*998244353 + 11
			eB.SetProbe(seed, false)
			eS.SetProbe(seed, true)
			bB, bS := NewBudget(100), NewBudget(100)
			rB, stB := eB.Propagate(append([]sim.V5(nil), state...), bB)
			rS, stS := eS.Propagate(append([]sim.V5(nil), state...), bS)
			if stB != stS || bB.Used != bS.Used {
				t.Fatalf("%s state %d: batched (%v, %d backtracks), scalar (%v, %d)",
					name, si, stB, bB.Used, stS, bS.Used)
			}
			if stB != Success {
				continue
			}
			if rB.PO != rS.PO || len(rB.Vectors) != len(rS.Vectors) {
				t.Fatalf("%s state %d: PO %d/%d, frames %d/%d",
					name, si, rB.PO, rS.PO, len(rB.Vectors), len(rS.Vectors))
			}
			for fi := range rB.Vectors {
				for i := range rB.Vectors[fi] {
					if rB.Vectors[fi][i] != rS.Vectors[fi][i] {
						t.Fatalf("%s state %d frame %d PI %d: batched %v, scalar %v",
							name, si, fi, i, rB.Vectors[fi][i], rS.Vectors[fi][i])
					}
				}
			}
		}
	}
}

// TestProbeOffIsStatic pins that an engine without SetProbe never
// probes, keeping the exact pre-probe search.
func TestProbeOffIsStatic(t *testing.T) {
	c := bench.ProfileByName("s298").Circuit()
	e := NewEngine(sim.NewNet(c), Options{})
	state := make([]sim.V5, len(c.DFFs))
	for i := range state {
		state[i] = sim.X5
	}
	state[0] = sim.D5
	e.Propagate(state, NewBudget(100))
	if e.probe || e.probeEvents != 0 {
		t.Fatal("unarmed engine probed")
	}
}
