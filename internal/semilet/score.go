package semilet

import (
	"math/bits"

	"fogbuster/internal/sim"
)

// probeAfter is the backtrack count after which decision probing starts:
// the SCOAP-guided backtrace order is kept while it is working, and the
// sampled scores only pay for themselves on faults it is failing.
const probeAfter = 4

// sm64 is a splitmix64 stream, the sampling PRNG of the decision probe.
// Each probe event derives one stream from (probeSeed, event), so the
// sampling — and with it the whole propagation search — is a pure
// function of the fault, independent of worker count and of the
// batched/scalar scoring mode.
type sm64 struct{ s uint64 }

func seedSM64(seed int64, stream uint64) sm64 {
	return sm64{s: uint64(seed) + 0x9E3779B97F4A7C15*(stream+1)}
}

func (p *sm64) next() uint64 {
	p.s += 0x9E3779B97F4A7C15
	z := p.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// SetProbe enables decision probing for the engine's next Propagate
// calls and resets the probe event counter, making the probe sampling a
// pure function of the supplied seed. Callers pass a per-fault seed so
// the search stays invariant under worker count. scalar selects the
// per-lane scalar reference oracle, which computes bit-identical scores
// one frame at a time.
func (e *Engine) SetProbe(seed int64, scalar bool) {
	e.probe = true
	e.probeSeed = seed
	e.scalarProbe = scalar
	e.probeEvents = 0
}

// probeScratch holds the probe's lane buffers, built on first use so
// engines that never probe pay nothing.
type probeScratch struct {
	valsG, valsF []sim.Word // good / faulty machine, one lane per bit
	v3G, v3F     []sim.V3   // scalar oracle frames
}

func (e *Engine) probeBuf() *probeScratch {
	if e.psc == nil {
		n := len(e.net.C.Nodes)
		e.psc = &probeScratch{
			valsG: make([]sim.Word, n), valsF: make([]sim.Word, n),
			v3G: make([]sim.V3, n), v3F: make([]sim.V3, n),
		}
	}
	return e.psc
}

// probeOrder scores both branches of a PI decision by sampled
// simulation and returns the order most-promising-first. Lanes 0..31
// try the backtraced value, lanes 32..63 its inversion; every lane
// samples one concrete completion of the frame (assigned PIs and known
// state broadcast, every X drawn once and shared between the good and
// faulty machine, D/D' split between them), simulates good and faulty
// machines two-valued — exact, since the sampled frames are fully
// binary — and scores a lane 2 when the machines differ at a PO and 1
// when they differ only at a PPO. The inverted branch is promoted only
// when strictly ahead, so ties keep the backtrace order. Ordering only:
// both branches remain enumerated, completeness is untouched.
//
// The default scoring is one lane-parallel pass per machine
// (sim.Eval64); the scalar oracle replays the identical 64 sampled
// frames one three-valued walk at a time. TestProbeScalarMatchesBatched
// pins the two modes to identical swap decisions.
func (p *propSearch) probeOrder(f *propFrame, pi int, val sim.V5) [2]sim.V5 {
	order := [2]sim.V5{val, invert5(val)}
	e := p.e
	if !e.probe || p.inject != nil || p.budget.Used < probeAfter || order[0] == order[1] {
		return order
	}
	event := e.probeEvents
	e.probeEvents++
	ps := e.probeBuf()
	rng := seedSM64(e.probeSeed, uint64(event))
	c := e.net.C

	const lo = sim.Word(0xFFFFFFFF) // lanes of order[0]
	ones := ^sim.Word(0)
	for i, id := range c.PIs {
		var g sim.Word
		switch {
		case i == pi:
			if order[0] == sim.O5 {
				g |= lo
			}
			if order[1] == sim.O5 {
				g |= ^lo
			}
		case f.assign[i] == sim.O5:
			g = ones
		case f.assign[i] == sim.Z5:
			g = 0
		default: // X5: one shared draw per lane
			g = sim.Word(rng.next())
		}
		ps.valsG[id], ps.valsF[id] = g, g
	}
	for i, ff := range c.DFFs {
		var g, fw sim.Word
		switch f.state[i] {
		case sim.O5:
			g, fw = ones, ones
		case sim.Z5:
			g, fw = 0, 0
		case sim.D5: // good 1, faulty 0
			g, fw = ones, 0
		case sim.B5: // good 0, faulty 1
			g, fw = 0, ones
		default: // X5: fixed but unknown, identical in both machines
			w := sim.Word(rng.next())
			g, fw = w, w
		}
		ps.valsG[ff], ps.valsF[ff] = g, fw
	}

	var diffPO, diffPPO sim.Word
	if e.scalarProbe {
		diffPO, diffPPO = p.probeScalar(ps)
	} else {
		diffPO, diffPPO = p.probeBatched(ps)
	}
	s0 := 2*bits.OnesCount64(uint64(diffPO&lo)) + bits.OnesCount64(uint64(diffPPO&lo))
	s1 := 2*bits.OnesCount64(uint64(diffPO&^lo)) + bits.OnesCount64(uint64(diffPPO&^lo))
	if s1 > s0 {
		order[0], order[1] = order[1], order[0]
	}
	return order
}

// probeBatched evaluates all 64 sampled lane pairs in two two-valued
// passes and returns the PO and PPO divergence words.
func (p *propSearch) probeBatched(ps *probeScratch) (diffPO, diffPPO sim.Word) {
	e := p.e
	c := e.net.C
	e.net.Eval64(ps.valsG)
	e.net.Eval64(ps.valsF)
	for _, po := range c.POs {
		diffPO |= ps.valsG[po] ^ ps.valsF[po]
	}
	t := e.net.T
	for _, ff := range c.DFFs {
		d := t.Fanin[t.FaninOff[ff]]
		diffPPO |= ps.valsG[d] ^ ps.valsF[d]
	}
	return diffPO, diffPPO
}

// probeScalar is the reference oracle: the identical sampled frames, one
// scalar three-valued pair walk per lane.
func (p *propSearch) probeScalar(ps *probeScratch) (diffPO, diffPPO sim.Word) {
	e := p.e
	c := e.net.C
	t := e.net.T
	for k := uint(0); k < 64; k++ {
		for _, id := range c.PIs {
			ps.v3G[id] = sim.V3(ps.valsG[id] >> k & 1)
			ps.v3F[id] = sim.V3(ps.valsF[id] >> k & 1)
		}
		for _, id := range c.DFFs {
			ps.v3G[id] = sim.V3(ps.valsG[id] >> k & 1)
			ps.v3F[id] = sim.V3(ps.valsF[id] >> k & 1)
		}
		e.net.Eval3(ps.v3G, nil)
		e.net.Eval3(ps.v3F, nil)
		bit := sim.Word(1) << k
		for _, po := range c.POs {
			if ps.v3G[po] != ps.v3F[po] {
				diffPO |= bit
				break
			}
		}
		for _, ff := range c.DFFs {
			d := t.Fanin[t.FaninOff[ff]]
			if ps.v3G[d] != ps.v3F[d] {
				diffPPO |= bit
				break
			}
		}
	}
	return diffPO, diffPPO
}
