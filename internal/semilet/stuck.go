package semilet

import (
	"math/rand"

	"fogbuster/internal/faults"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

// StuckResult is a complete sequential stuck-at test: an initializing
// prefix, the activation vector and the propagation suffix, validated by
// independent good/faulty pair simulation.
type StuckResult struct {
	Vectors [][]sim.V3
	PO      int // observing PO index
	Frame   int // frame (0-based within Vectors) where the PO observes
}

// GenerateStuck runs the full FOGBUSTER flow for a single stuck-at fault:
// activation with decisions on PIs and PPIs, forward propagation with the
// fault active in every frame, reverse-time synchronization of the
// required activation state, and a final validation by pair simulation.
// This is SEMILET's original task as a static-fault sequential ATPG.
func (e *Engine) GenerateStuck(f faults.Stuck, budget *Budget) (*StuckResult, Status) {
	inj := &sim.InjectStuck{Line: f.Line, Stuck: sim.V3(b2u(f.One))}
	a := &actSearch{e: e, budget: budget, inj: inj}
	a.reset()
	// Activation alternatives often demand the same unreachable state;
	// remember targets synchronization has already refuted.
	failedSync := make(map[string]bool)
	for {
		po, state, ok := a.next()
		if !ok {
			if budget.Exceeded() {
				return nil, Aborted
			}
			return nil, Exhausted
		}
		vectors := [][]sim.V3{a.piVector()}
		okProp := true
		if po < 0 {
			// The effect only reached the state register: propagate it
			// with the fault still active under the slow clock.
			p := &propSearch{e: e, budget: budget, inject: inj}
			p.frames = append(p.frames, propFrame{state: state, assign: newAssign(len(e.net.C.PIs))})
			res, st := p.run()
			if st == Aborted {
				return nil, Aborted
			}
			if st != Success {
				okProp = false
			} else {
				po = res.PO
				vectors = append(vectors, res.Vectors...)
			}
		}
		if okProp && !failedSync[targetKey(a.ppiVector())] {
			sync, st := e.Synchronize(a.ppiVector(), budget)
			if st == Aborted {
				return nil, Aborted
			}
			if st == Exhausted {
				failedSync[targetKey(a.ppiVector())] = true
			}
			if st == Success {
				full := append(append([][]sim.V3{}, sync.Vectors...), vectors...)
				// Try a few random completions of the don't-cares; the
				// paper fills X values at random before fault simulation.
				rng := rand.New(rand.NewSource(int64(inj.Line.Node)*17 + int64(inj.Stuck)))
				for fill := 0; fill < 4; fill++ {
					filled := make([][]sim.V3, len(full))
					for i, vec := range full {
						filled[i] = sim.XFill(vec, rng)
					}
					if frame, obs := e.validateStuck(inj, filled); obs >= 0 {
						return &StuckResult{Vectors: filled, PO: obs, Frame: frame}, Success
					}
				}
			}
		}
		// This activation failed downstream: enumerate the next one.
		if !a.backtrack() {
			if budget.Exceeded() {
				return nil, Aborted
			}
			return nil, Exhausted
		}
	}
}

// validateStuck pair-simulates the sequence and returns the first frame
// and PO index where the good and faulty machines provably differ, or
// (-1, -1).
func (e *Engine) validateStuck(inj *sim.InjectStuck, vectors [][]sim.V3) (int, int) {
	inj3 := &sim.Inject3{Line: inj.Line, Value: inj.Stuck}
	var goodState, badState []sim.V3
	for frame, vec := range vectors {
		gv := e.net.LoadFrame(vec, goodState)
		e.net.Eval3(gv, nil)
		bv := e.net.LoadFrame(vec, badState)
		e.net.Eval3(bv, inj3)
		for i, po := range e.net.C.POs {
			g, b := gv[po], bv[po]
			if g.Known() && b.Known() && g != b {
				return frame, i
			}
		}
		goodState = e.net.NextState3(gv, nil)
		badState = e.net.NextState3(bv, inj3)
	}
	return -1, -1
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// actSearch is the activation-frame DFS: a 5-valued PODEM with the fault
// injected, deciding both PIs and PPIs; assigned PPIs become the required
// state that synchronization must establish.
type actSearch struct {
	e      *Engine
	budget *Budget
	inj    *sim.InjectStuck

	assignPI  []sim.V5
	assignPPI []sim.V5
	decisions []actDecision
}

type actDecision struct {
	isPPI bool
	idx   int
	order [2]sim.V5
	next  int
}

func (a *actSearch) reset() {
	a.assignPI = newAssign(len(a.e.net.C.PIs))
	a.assignPPI = newAssign(len(a.e.net.C.DFFs))
	a.decisions = nil
}

func (a *actSearch) piVector() []sim.V3 {
	out := make([]sim.V3, len(a.assignPI))
	for i, v := range a.assignPI {
		out[i] = v.Good()
	}
	return out
}

func (a *actSearch) ppiVector() []sim.V3 {
	out := make([]sim.V3, len(a.assignPPI))
	for i, v := range a.assignPPI {
		out[i] = v.Good()
	}
	return out
}

// next finds the next activation assignment whose effect reaches a PO
// (returned as po >= 0) or the state register (po == -1 with the captured
// next state). ok is false when the space or budget is exhausted.
func (a *actSearch) next() (po int, state []sim.V5, ok bool) {
	c := a.e.net.C
	site := a.inj.Line.Node
	for {
		vals := a.e.net.LoadFrame5(a.assignPI, a.assignPPI)
		a.e.net.Eval5(vals, a.inj)
		conflict := false
		siteVal := a.siteValue(vals)
		if !siteVal.IsD() {
			if siteVal != sim.X5 {
				conflict = true // the site is pinned to the stuck value
			} else if !a.objective(vals, site, wantGood(a.inj)) {
				conflict = true
			}
		} else {
			for i, poID := range c.POs {
				if vals[poID].IsD() {
					return i, nil, true
				}
			}
			next := a.e.net.NextState5(vals, a.inj)
			if !a.pushFrontier(vals) {
				if hasD5(next) {
					return -1, next, true
				}
				conflict = true
			}
		}
		if conflict {
			if !a.backtrack() {
				return 0, nil, false
			}
		}
	}
}

// siteValue reads the value at the fault site after injection. For a
// branch fault the stem itself stays clean, so the effect is read at the
// injected connection via its consumer; the composite of (good stem
// value, stuck) stands in.
func (a *actSearch) siteValue(vals []sim.V5) sim.V5 {
	v := vals[a.inj.Line.Node]
	if !a.inj.Line.IsStem() {
		return sim.FromPair(v.Good(), a.inj.Stuck)
	}
	return v
}

func wantGood(inj *sim.InjectStuck) sim.V5 {
	if inj.Stuck == sim.Lo {
		return sim.O5
	}
	return sim.Z5
}

// objective backtraces (node, want) through X logic and pushes a decision;
// false when no assignable input supports it. Unlike a single-path walk it
// explores alternative fanins depth-first, so a blocked path does not hide
// a viable one.
func (a *actSearch) objective(vals []sim.V5, id netlist.NodeID, want sim.V5) bool {
	c := a.e.net.C
	visited := make(map[netlist.NodeID]bool)
	var try func(id netlist.NodeID, want sim.V5) bool
	try = func(id netlist.NodeID, want sim.V5) bool {
		if visited[id] {
			return false
		}
		visited[id] = true
		node := &c.Nodes[id]
		switch node.Type {
		case netlist.Input:
			for i, pi := range c.PIs {
				if pi == id && a.assignPI[i] == sim.X5 {
					a.push(actDecision{idx: i, order: [2]sim.V5{want, invert5(want)}})
					return true
				}
			}
			return false
		case netlist.DFF:
			for i, ff := range c.DFFs {
				if ff == id && a.assignPPI[i] == sim.X5 {
					a.push(actDecision{isPPI: true, idx: i, order: [2]sim.V5{want, invert5(want)}})
					return true
				}
			}
			return false
		}
		if invertsObjective(node.Type) {
			want = invert5(want)
		}
		// X fanins ordered by controllability cost for the wanted value.
		type cand struct {
			in   netlist.NodeID
			cost int32
		}
		var cands []cand
		for _, in := range node.Fanin {
			if vals[in] != sim.X5 {
				continue
			}
			cost := a.e.meas.CC1[in]
			if want == sim.Z5 {
				cost = a.e.meas.CC0[in]
			}
			cands = append(cands, cand{in, cost})
		}
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].cost < cands[j-1].cost; j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		for _, cd := range cands {
			if try(cd.in, want) {
				return true
			}
		}
		return false
	}
	return try(id, want)
}

// pushFrontier serves the D-frontier toward any observation point, trying
// frontier gates in increasing observability cost.
func (a *actSearch) pushFrontier(vals []sim.V5) bool {
	c := a.e.net.C
	type cand struct {
		id   netlist.NodeID
		cost int32
	}
	var frontier []cand
	for _, id := range c.GateOrder() {
		if vals[id] != sim.X5 {
			continue
		}
		for _, in := range c.Nodes[id].Fanin {
			if vals[in].IsD() {
				frontier = append(frontier, cand{id, a.e.meas.CO[id]})
				break
			}
		}
	}
	for i := 1; i < len(frontier); i++ {
		for j := i; j > 0 && frontier[j].cost < frontier[j-1].cost; j-- {
			frontier[j], frontier[j-1] = frontier[j-1], frontier[j]
		}
	}
	for _, fg := range frontier {
		node := &c.Nodes[fg.id]
		want := nonControlling5(node.Type)
		for _, in := range node.Fanin {
			if vals[in] == sim.X5 {
				if a.objective(vals, in, want) {
					return true
				}
			}
		}
	}
	return false
}

func (a *actSearch) push(d actDecision) {
	a.decisions = append(a.decisions, d)
	if d.isPPI {
		a.assignPPI[d.idx] = d.order[0]
	} else {
		a.assignPI[d.idx] = d.order[0]
	}
}

func (a *actSearch) backtrack() bool {
	for len(a.decisions) > 0 {
		d := &a.decisions[len(a.decisions)-1]
		d.next++
		if d.next < len(d.order) {
			if !a.budget.Spend() {
				return false
			}
			if d.isPPI {
				a.assignPPI[d.idx] = d.order[d.next]
			} else {
				a.assignPI[d.idx] = d.order[d.next]
			}
			return true
		}
		if d.isPPI {
			a.assignPPI[d.idx] = sim.X5
		} else {
			a.assignPI[d.idx] = sim.X5
		}
		a.decisions = a.decisions[:len(a.decisions)-1]
	}
	return false
}
