package semilet

import (
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
	"fogbuster/internal/testability"
)

// SyncResult is a successful synchronization: PI vectors (X entries are
// don't-cares) that drive the machine into a state satisfying every
// required bit. When the optimistic initialization policy is in effect,
// Assumed holds state bits the justification could not force from the
// unknown power-up state and therefore assumes the machine powers up
// with; a strict synchronizing sequence has a nil Assumed.
type SyncResult struct {
	Vectors [][]sim.V3
	Assumed []sim.V3
}

// Synchronize computes an initializing sequence to the partial state
// target (X entries are don't-cares) using reverse time processing: the
// requirement is justified frame by frame backwards until no state
// requirement remains, so the sequence works from any power-up state. The
// machine is fault free during initialization (slow clock).
func (e *Engine) Synchronize(target []sim.V3, budget *Budget) (*SyncResult, Status) {
	return e.SynchronizeWith(target, budget, false)
}

// SynchronizeWith adds the initialization policy choice. With assume set,
// requirements that are provably unjustifiable from the all-X power-up
// state terminate the reverse recursion as assumed power-up values instead
// of failing, the optimistic convention of 1990s sequential ATPG. Several
// ISCAS'89 machines have state bits that no input sequence can force (in
// s27, G7=0 is reachable only from G7=0), so the strict policy leaves
// their fault classes untestable; see EXPERIMENTS.md.
func (e *Engine) SynchronizeWith(target []sim.V3, budget *Budget, assume bool) (*SyncResult, Status) {
	if sim.KnownCount(target) == 0 {
		return &SyncResult{}, Success
	}
	s := &syncSearch{e: e, budget: budget, assume: assume}
	st := s.justify(target, e.opts.maxFrames())
	if st != Success {
		if st == Exhausted && assume {
			// Nothing was justifiable; assume the whole target.
			return &SyncResult{Assumed: append([]sim.V3(nil), target...)}, Success
		}
		return nil, st
	}
	// Frames were collected deepest-first; the deepest frame is applied
	// first in real time.
	res := &SyncResult{Vectors: make([][]sim.V3, len(s.vectors)), Assumed: s.assumed}
	for i := range s.vectors {
		res.Vectors[i] = s.vectors[len(s.vectors)-1-i]
	}
	return res, Success
}

type syncSearch struct {
	e       *Engine
	budget  *Budget
	vectors [][]sim.V3 // collected in reverse time order (latest first)

	// failed memoizes requirements proven unjustifiable, keyed by the
	// target vector, with the depth that was available when they failed.
	// State requirements recur naturally in reverse time processing
	// (a bit that needs itself one frame earlier), and without the memo
	// such regressions burn the whole backtrack budget.
	failed map[string]int
	// active holds the requirements currently on the recursion stack: a
	// requirement that needs itself in an earlier frame is an infinite
	// regress from the all-X power-up state and is pruned immediately.
	active map[string]bool
	// assume enables the optimistic initialization policy; assumed holds
	// the power-up state it committed to, if any.
	assume  bool
	assumed []sim.V3
}

// syncFrameState is the per-frame justification state: assignable PIs and
// PPIs; assigned PPIs become the previous frame's requirement.
type syncFrameState struct {
	piAssign  []sim.V3
	ppiAssign []sim.V3
	decisions []syncDecision
}

type syncDecision struct {
	isPPI bool
	idx   int
	order [2]sim.V3
	next  int
}

// justify solves one reverse-time frame for the target and recurses on the
// requirement it creates. depth bounds the remaining frames.
func (s *syncSearch) justify(target []sim.V3, depth int) Status {
	if sim.KnownCount(target) == 0 {
		return Success
	}
	if depth <= 0 {
		return Exhausted
	}
	key := targetKey(target)
	if s.failed == nil {
		s.failed = make(map[string]int)
		s.active = make(map[string]bool)
	}
	if failedDepth, ok := s.failed[key]; ok && failedDepth >= depth {
		return Exhausted
	}
	if s.active[key] {
		return Exhausted
	}
	s.active[key] = true
	defer delete(s.active, key)
	c := s.e.net.C
	f := &syncFrameState{
		piAssign:  make([]sim.V3, len(c.PIs)),
		ppiAssign: make([]sim.V3, len(c.DFFs)),
	}
	for i := range f.piAssign {
		f.piAssign[i] = sim.X
	}
	for i := range f.ppiAssign {
		f.ppiAssign[i] = sim.X
	}
	for {
		vals := s.e.net.LoadFrame(f.piAssign, f.ppiAssign)
		s.e.net.Eval3(vals, nil)
		next := s.e.net.NextState3(vals, nil)
		switch s.checkTargets(target, next) {
		case targetsMet:
			s.vectors = append(s.vectors, append([]sim.V3(nil), f.piAssign...))
			req := s.requirement(f)
			sub := s.justify(req, depth-1)
			if sub == Exhausted && s.assume {
				// The requirement cannot be forced from the unknown
				// state; commit to it as the assumed power-up state.
				s.assumed = req
				sub = Success
			}
			if sub == Success {
				return Success
			}
			if sub == Aborted {
				return Aborted
			}
			// The deeper requirement is unsatisfiable: drop the recorded
			// vector and look for a different justification here.
			s.vectors = s.vectors[:len(s.vectors)-1]
			if !s.backtrackFrame(f) {
				return s.fail(key, depth)
			}
		case targetsOpen:
			if !s.assignForTargets(f, target, vals, next) {
				if !s.backtrackFrame(f) {
					return s.fail(key, depth)
				}
			}
		case targetsDead:
			if !s.backtrackFrame(f) {
				return s.fail(key, depth)
			}
		}
	}
}

// fail records a proven-unjustifiable requirement and classifies the exit.
func (s *syncSearch) fail(key string, depth int) Status {
	if s.budget.Exceeded() {
		return Aborted
	}
	if old, ok := s.failed[key]; !ok || depth > old {
		s.failed[key] = depth
	}
	return Exhausted
}

// targetKey canonicalizes a requirement vector for memoization.
func targetKey(target []sim.V3) string {
	b := make([]byte, len(target))
	for i, v := range target {
		b[i] = byte(v)
	}
	return string(b)
}

type targetCheck uint8

const (
	targetsMet targetCheck = iota
	targetsOpen
	targetsDead
)

func (s *syncSearch) checkTargets(target, next []sim.V3) targetCheck {
	open := false
	for i, want := range target {
		if want == sim.X {
			continue
		}
		switch next[i] {
		case want:
		case sim.X:
			open = true
		default:
			return targetsDead
		}
	}
	if open {
		return targetsOpen
	}
	return targetsMet
}

// requirement extracts the previous-frame state requirement: exactly the
// PPI values this frame's justification assigned.
func (s *syncSearch) requirement(f *syncFrameState) []sim.V3 {
	return append([]sim.V3(nil), f.ppiAssign...)
}

// assignForTargets makes one justification decision toward the first open
// target and reports whether any assignment was possible.
func (s *syncSearch) assignForTargets(f *syncFrameState, target, vals, next []sim.V3) bool {
	c := s.e.net.C
	for i, want := range target {
		if want == sim.X || next[i] == want {
			continue
		}
		d := c.Nodes[c.DFFs[i]].Fanin[0]
		if dec, ok := s.backtrace(f, vals, d, want); ok {
			s.applyDecision(f, dec)
			return true
		}
	}
	return false
}

func (s *syncSearch) applyDecision(f *syncFrameState, dec syncDecision) {
	f.decisions = append(f.decisions, dec)
	if dec.isPPI {
		f.ppiAssign[dec.idx] = dec.order[0]
	} else {
		f.piAssign[dec.idx] = dec.order[0]
	}
}

// backtrace walks from an objective (node, value) through X-valued logic
// to an assignable PI or PPI. PIs are preferred; assigning a PPI creates a
// requirement for the previous frame.
func (s *syncSearch) backtrace(f *syncFrameState, vals []sim.V3, id netlist.NodeID, want sim.V3) (syncDecision, bool) {
	c := s.e.net.C
	for hop := 0; hop < len(c.Nodes)+2; hop++ {
		node := &c.Nodes[id]
		switch node.Type {
		case netlist.Input:
			for i, pi := range c.PIs {
				if pi == id && f.piAssign[i] == sim.X {
					return syncDecision{idx: i, order: [2]sim.V3{want, sim.Not3(want)}}, true
				}
			}
			return syncDecision{}, false
		case netlist.DFF:
			for i, ff := range c.DFFs {
				if ff == id && f.ppiAssign[i] == sim.X {
					return syncDecision{isPPI: true, idx: i, order: [2]sim.V3{want, sim.Not3(want)}}, true
				}
			}
			return syncDecision{}, false
		}
		if invertsObjective(node.Type) {
			want = sim.Not3(want)
		}
		next := netlist.None
		bestCost := testability.Inf + 1
		for _, in := range node.Fanin {
			if vals[in] != sim.X {
				continue
			}
			cost := s.e.meas.CC1[in]
			if want == sim.Lo {
				cost = s.e.meas.CC0[in]
			}
			// Prefer staying out of the state register.
			if c.Nodes[in].Type == netlist.DFF {
				cost = cost + testability.Inf/4
			}
			if cost < bestCost {
				next, bestCost = in, cost
			}
		}
		if next == netlist.None {
			return syncDecision{}, false
		}
		id = next
	}
	return syncDecision{}, false
}

// backtrackFrame flips the deepest untried decision of the frame.
func (s *syncSearch) backtrackFrame(f *syncFrameState) bool {
	for len(f.decisions) > 0 {
		d := &f.decisions[len(f.decisions)-1]
		d.next++
		if d.next < len(d.order) {
			if !s.budget.Spend() {
				return false
			}
			if d.isPPI {
				f.ppiAssign[d.idx] = d.order[d.next]
			} else {
				f.piAssign[d.idx] = d.order[d.next]
			}
			return true
		}
		if d.isPPI {
			f.ppiAssign[d.idx] = sim.X
		} else {
			f.piAssign[d.idx] = sim.X
		}
		f.decisions = f.decisions[:len(f.decisions)-1]
	}
	return false
}
