// Package semilet implements SEMILET, the sequential test generation
// engine of the paper (Section 4), built on the FOGBUSTER technique:
// forward time processing for fault effect propagation and reverse time
// processing for justification and synchronization.
//
// For the delay-fault flow the engine performs two tasks. Propagate drives
// a fault effect captured in the state register (a D or D' at a PPO of the
// fast test frame) to a primary output across slow-clock frames, during
// which the machine is fault free. Synchronize computes an initializing
// input sequence that brings the machine from the unknown power-up state
// into the state the local test generator requires. The package also
// provides a standalone FOGBUSTER-style sequential stuck-at generator,
// SEMILET's original role ("a sequential test pattern generator for
// several static fault models").
package semilet

import (
	"fogbuster/internal/sim"
	"fogbuster/internal/testability"
)

// Status is the outcome of a SEMILET task.
type Status uint8

const (
	// Success means the task produced a sequence.
	Success Status = iota
	// Exhausted means the bounded search space holds no solution.
	Exhausted
	// Aborted means the backtrack budget ran out.
	Aborted
)

// String returns a short name for the status.
func (s Status) String() string {
	switch s {
	case Success:
		return "success"
	case Exhausted:
		return "exhausted"
	default:
		return "aborted"
	}
}

// Budget is a backtrack budget shared by the sequential phases of one
// fault, mirroring the paper's "100 backtracks for the sequential test
// pattern generator".
type Budget struct {
	Used, Max int
}

// NewBudget returns a budget of n backtracks (the paper's default is 100).
func NewBudget(n int) *Budget { return &Budget{Max: n} }

// Spend consumes one backtrack and reports whether the budget still holds.
func (b *Budget) Spend() bool {
	b.Used++
	return b.Used <= b.Max
}

// Exceeded reports whether the budget has run out.
func (b *Budget) Exceeded() bool { return b.Used > b.Max }

// Options configures the sequential engine.
type Options struct {
	// MaxFrames bounds the forward propagation depth and the reverse
	// synchronization depth; 0 means 32.
	MaxFrames int
	// Meas supplies shared testability measures; nil computes them.
	Meas *testability.Measures
	// FullEval forces the propagation search to re-evaluate every frame
	// with the full levelized walk instead of the event-driven update of
	// the changed PI's fanout cone. The searches are identical step for
	// step (the delta evaluation is bit-identical by construction); the
	// knob exists as the reference oracle.
	FullEval bool
}

func (o Options) maxFrames() int {
	if o.MaxFrames == 0 {
		return 32
	}
	return o.MaxFrames
}

// Engine bundles the circuit view and heuristics for SEMILET tasks.
type Engine struct {
	net  *sim.Net
	meas *testability.Measures
	opts Options

	// Decision-probe state, armed per fault via SetProbe.
	probe       bool
	scalarProbe bool
	probeSeed   int64
	probeEvents int
	psc         *probeScratch
}

// NewEngine builds an engine for the circuit.
func NewEngine(net *sim.Net, opts Options) *Engine {
	meas := opts.Meas
	if meas == nil {
		meas = testability.Compute(net.C)
	}
	return &Engine{net: net, meas: meas, opts: opts}
}
