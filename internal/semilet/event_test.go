package semilet

import (
	"math/rand"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/sim"
)

// TestPropagateEventMatchesFullEval: the propagation search's delta
// evaluation (only the changed PI's cone per decision) must walk exactly
// the same search tree as the full-eval oracle — same status, same
// vectors, same observing PO, same required PPIs, same backtrack count —
// over random composite handoff states on sequential bench circuits.
func TestPropagateEventMatchesFullEval(t *testing.T) {
	vals5 := []sim.V5{sim.Z5, sim.O5, sim.X5, sim.D5, sim.B5}
	for _, name := range []string{"s298", "s641"} {
		c := bench.ProfileByName(name).Circuit()
		evt := NewEngine(sim.NewNet(c), Options{})
		full := NewEngine(sim.NewNet(c), Options{FullEval: true})
		rng := rand.New(rand.NewSource(31))
		for trial := 0; trial < 30; trial++ {
			state := make([]sim.V5, len(c.DFFs))
			for i := range state {
				state[i] = vals5[rng.Intn(len(vals5))]
			}
			state[rng.Intn(len(state))] = sim.D5 // ensure an effect to drive
			be, bf := NewBudget(100), NewBudget(100)
			re, se := evt.Propagate(append([]sim.V5(nil), state...), be)
			rf, sf := full.Propagate(append([]sim.V5(nil), state...), bf)
			if se != sf || be.Used != bf.Used {
				t.Fatalf("%s trial %d: event (%v, %d backtracks), full (%v, %d backtracks)",
					name, trial, se, be.Used, sf, bf.Used)
			}
			if se != Success {
				continue
			}
			if re.PO != rf.PO || len(re.Vectors) != len(rf.Vectors) {
				t.Fatalf("%s trial %d: event PO %d/%d frames, full PO %d/%d frames",
					name, trial, re.PO, len(re.Vectors), rf.PO, len(rf.Vectors))
			}
			for k := range re.Vectors {
				for j := range re.Vectors[k] {
					if re.Vectors[k][j] != rf.Vectors[k][j] {
						t.Fatalf("%s trial %d: vectors diverge at frame %d bit %d", name, trial, k, j)
					}
				}
			}
			if len(re.RequiredPPIs) != len(rf.RequiredPPIs) {
				t.Fatalf("%s trial %d: required PPIs differ", name, trial)
			}
		}
	}
}
