package semilet

import (
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/faults"
	"fogbuster/internal/netlist"
	"fogbuster/internal/sim"
)

func shiftEngine(bits int) (*Engine, *sim.Net) {
	net := sim.NewNet(bench.ShiftRegister(bits))
	return NewEngine(net, Options{}), net
}

// TestPropagateShiftRegister: a D in the first stage of a shift register
// must march to the output in exactly bits-1 more frames.
func TestPropagateShiftRegister(t *testing.T) {
	e, net := shiftEngine(4)
	state := []sim.V5{sim.D5, sim.Z5, sim.Z5, sim.Z5}
	res, st := e.Propagate(state, NewBudget(100))
	if st != Success {
		t.Fatalf("status %v", st)
	}
	if res.PO != 0 {
		t.Fatalf("PO = %d", res.PO)
	}
	// q3 is the output; D sits at q0 and needs 3 more clocks (frames 2..4
	// observe it). Frame count = 4: the D appears at the PO in frame 4.
	if len(res.Vectors) != 4 {
		t.Fatalf("frames = %d, want 4", len(res.Vectors))
	}
	_ = net
}

// TestPropagateRequiresSideValues: propagation through an AND gate whose
// other input is a fixed-unknown state bit must fail (the paper's
// unjustifiable don't-care), and succeed when the bit is known 1.
func TestPropagateRequiresSideValues(t *testing.T) {
	b := netlist.NewBuilder("gated")
	b.Input("in")
	b.Gate("d0", netlist.Buf, "in")
	b.DFF("q0", "d0")
	b.Gate("d1", netlist.Buf, "in")
	b.DFF("q1", "d1")
	b.Gate("y", netlist.And, "q0", "q1")
	b.Output("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sim.NewNet(c), Options{})

	// q1 unknown: the D at q0 cannot pass the AND robustly.
	if _, st := e.Propagate([]sim.V5{sim.D5, sim.X5}, NewBudget(100)); st != Exhausted {
		t.Fatalf("fixed-unknown side input: status %v, want exhausted", st)
	}
	// q1 known 1: immediate observation.
	res, st := e.Propagate([]sim.V5{sim.D5, sim.O5}, NewBudget(100))
	if st != Success {
		t.Fatalf("known side input: status %v", st)
	}
	if len(res.Vectors) != 1 {
		t.Fatalf("frames = %d, want 1", len(res.Vectors))
	}
	// The known q1 bit must be reported as required.
	if len(res.RequiredPPIs) != 1 || res.RequiredPPIs[0] != 1 {
		t.Fatalf("required PPIs = %v, want [1]", res.RequiredPPIs)
	}
}

// TestPropagateNeedsPIAssignment: the effect passes an AND gate gated by a
// primary input; the engine must assign that PI to 1.
func TestPropagateNeedsPIAssignment(t *testing.T) {
	b := netlist.NewBuilder("pigate")
	b.Input("in")
	b.Input("en")
	b.Gate("d0", netlist.Buf, "in")
	b.DFF("q0", "d0")
	b.Gate("y", netlist.And, "q0", "en")
	b.Output("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sim.NewNet(c), Options{})
	res, st := e.Propagate([]sim.V5{sim.D5}, NewBudget(100))
	if st != Success {
		t.Fatalf("status %v", st)
	}
	if res.Vectors[0][1] != sim.Hi {
		t.Fatalf("en = %v, want 1", res.Vectors[0][1])
	}
}

// TestPropagateNoEffect: a state without any D is immediately exhausted.
func TestPropagateNoEffect(t *testing.T) {
	e, _ := shiftEngine(3)
	if _, st := e.Propagate([]sim.V5{sim.Z5, sim.X5, sim.O5}, NewBudget(10)); st != Exhausted {
		t.Fatalf("status %v, want exhausted", st)
	}
}

// TestSynchronizeShiftRegister: any full state of a shift register is
// reachable from the unknown state by feeding the bits serially.
func TestSynchronizeShiftRegister(t *testing.T) {
	e, net := shiftEngine(4)
	target := []sim.V3{sim.Hi, sim.Lo, sim.Hi, sim.Hi}
	res, st := e.Synchronize(target, NewBudget(100))
	if st != Success {
		t.Fatalf("status %v", st)
	}
	// Validate by simulation from the all-X state.
	steps := net.SeqSim3(nil, res.Vectors)
	final := steps[len(steps)-1].State
	for i, want := range target {
		if final[i] != want {
			t.Fatalf("bit %d = %v, want %v (sequence %v)", i, final[i], want, res.Vectors)
		}
	}
}

// TestSynchronizePartialTarget: X target bits are don't-cares; an all-X
// target needs no vectors at all.
func TestSynchronizePartialTarget(t *testing.T) {
	e, net := shiftEngine(4)
	res, st := e.Synchronize([]sim.V3{sim.X, sim.X, sim.X, sim.X}, NewBudget(10))
	if st != Success || len(res.Vectors) != 0 {
		t.Fatalf("all-X target: %v, %d vectors", st, len(res.Vectors))
	}
	res, st = e.Synchronize([]sim.V3{sim.X, sim.Hi, sim.X, sim.X}, NewBudget(100))
	if st != Success {
		t.Fatalf("partial target: %v", st)
	}
	steps := net.SeqSim3(nil, res.Vectors)
	if got := steps[len(steps)-1].State[1]; got != sim.Hi {
		t.Fatalf("bit 1 = %v, want 1", got)
	}
}

// TestSynchronizeCounter: the feedback-style counter clears synchronously,
// so the all-zero state must be synchronizable.
func TestSynchronizeCounter(t *testing.T) {
	p := *bench.ProfileByName("s208")
	c := p.Circuit()
	e := NewEngine(sim.NewNet(c), Options{})
	target := make([]sim.V3, len(c.DFFs))
	for i := range target {
		target[i] = sim.Lo
	}
	res, st := e.Synchronize(target, NewBudget(100))
	if st != Success {
		t.Fatalf("status %v after %d backtracks", st, 0)
	}
	net := sim.NewNet(c)
	steps := net.SeqSim3(nil, res.Vectors)
	final := steps[len(steps)-1].State
	for i := range target {
		if final[i] != sim.Lo {
			t.Fatalf("bit %d = %v, want 0", i, final[i])
		}
	}
}

// TestSynchronizeImpossible: a state violating an invariant of the
// machine must be exhausted, not looped forever. In a shift register fed
// by one serial input, FFs q0 and q1 cannot... they can hold any
// combination; instead use a machine where two FFs share the same D
// signal and require them to differ.
func TestSynchronizeImpossible(t *testing.T) {
	b := netlist.NewBuilder("twins")
	b.Input("in")
	b.Gate("d", netlist.Buf, "in")
	b.DFF("qa", "d")
	b.DFF("qb", "d")
	b.Gate("y", netlist.And, "qa", "qb")
	b.Output("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sim.NewNet(c), Options{})
	_, st := e.Synchronize([]sim.V3{sim.Hi, sim.Lo}, NewBudget(100))
	if st == Success {
		t.Fatal("synchronized an impossible state")
	}
}

// TestGenerateStuckShiftRegister: every stuck-at fault in a shift register
// is sequentially testable; the validated sequences must check out.
func TestGenerateStuckShiftRegister(t *testing.T) {
	c := bench.ShiftRegister(3)
	e := NewEngine(sim.NewNet(c), Options{})
	found := 0
	for _, f := range faults.AllStuck(c) {
		res, st := e.GenerateStuck(f, NewBudget(100))
		if st == Success {
			found++
			if len(res.Vectors) == 0 {
				t.Fatalf("%s: empty sequence", f.Name(c))
			}
		}
	}
	if total := len(faults.AllStuck(c)); found != total {
		t.Fatalf("stuck coverage %d/%d", found, total)
	}
}

// TestGenerateStuckS27: sequential stuck-at generation on s27. Note the
// ceiling is well below 50: many s27 faults need state bits that no
// synchronizing sequence can force from the all-X power-up state (G7=0
// requires G7=0 one frame earlier), which is why published sequential
// ATPG systems report roughly 32 detected faults for s27.
func TestGenerateStuckS27(t *testing.T) {
	c := bench.NewS27()
	e := NewEngine(sim.NewNet(c), Options{})
	found, exhausted, aborted := 0, 0, 0
	for _, f := range faults.AllStuck(c) {
		switch _, st := e.GenerateStuck(f, NewBudget(100)); st {
		case Success:
			found++
		case Exhausted:
			exhausted++
		default:
			aborted++
		}
	}
	t.Logf("s27 stuck: found=%d exhausted=%d aborted=%d", found, exhausted, aborted)
	if found < 10 {
		t.Fatalf("only %d/50 stuck faults tested", found)
	}
	if aborted > 25 {
		t.Fatalf("%d aborts is excessive for s27", aborted)
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(2)
	if !b.Spend() || !b.Spend() {
		t.Fatal("budget should allow 2 spends")
	}
	if b.Spend() {
		t.Fatal("third spend should fail")
	}
	if !b.Exceeded() {
		t.Fatal("budget should be exceeded")
	}
	if Success.String() != "success" || Exhausted.String() != "exhausted" || Aborted.String() != "aborted" {
		t.Fatal("status names wrong")
	}
}
