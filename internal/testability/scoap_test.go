package testability

import (
	"testing"

	"fogbuster/internal/bench"
)

func TestScoapC17(t *testing.T) {
	c := bench.NewC17()
	m := Compute(c)
	for _, pi := range c.PIs {
		if m.CC0[pi] != 1 || m.CC1[pi] != 1 {
			t.Errorf("PI %s controllability not 1", c.Node(pi).Name)
		}
	}
	for _, po := range c.POs {
		if m.CO[po] != 0 {
			t.Errorf("PO %s observability not 0", c.Node(po).Name)
		}
	}
	// N10 = NAND(N1, N3): setting it to 0 needs both inputs 1 (cost 3);
	// setting it to 1 needs one input 0 (cost 2).
	n10 := c.LookupID("N10")
	if m.CC0[n10] != 3 || m.CC1[n10] != 2 {
		t.Errorf("N10 CC = %d/%d, want 3/2", m.CC0[n10], m.CC1[n10])
	}
	// Deeper nodes are harder to observe than shallower ones on average.
	n11 := c.LookupID("N11")
	if m.CO[n11] >= Inf {
		t.Error("N11 should be observable")
	}
}

func TestScoapSequential(t *testing.T) {
	c := bench.NewS27()
	m := Compute(c)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if m.CC0[i] >= Inf || m.CC1[i] >= Inf {
			t.Errorf("%s not controllable", n.Name)
		}
		if m.CO[i] >= Inf {
			t.Errorf("%s not observable", n.Name)
		}
	}
	// PPIs must be costlier to control than PIs.
	pi, ff := c.PIs[0], c.DFFs[0]
	if m.CC0[ff] <= m.CC0[pi] {
		t.Errorf("PPI CC0 %d should exceed PI CC0 %d", m.CC0[ff], m.CC0[pi])
	}
}

func TestScoapXor(t *testing.T) {
	c := bench.RippleCarryAdder(2)
	m := Compute(c)
	for i := range c.Nodes {
		if m.CC0[i] >= Inf || m.CC1[i] >= Inf {
			t.Errorf("%s not controllable", c.Nodes[i].Name)
		}
	}
}
