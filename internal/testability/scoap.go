// Package testability computes SCOAP-style controllability and
// observability measures. The ATPG engines use them only as decision
// ordering heuristics (which input to assign first, which D-frontier gate
// to push), never for correctness.
package testability

import "fogbuster/internal/netlist"

// Inf is the cost of an unreachable objective. Costs saturate at Inf.
const Inf = int32(1 << 28)

// ppiCost is the extra cost of controlling or observing through the state
// register: a pseudo primary input is harder to set than a primary input,
// and a pseudo primary output is harder to observe than a primary output.
const ppiCost = 20

// Measures holds per-node SCOAP values.
type Measures struct {
	CC0 []int32 // cost of setting the node to 0
	CC1 []int32 // cost of setting the node to 1
	CO  []int32 // cost of observing the node at a PO (or PPO, with penalty)
}

// Compute derives the measures for a circuit. Flip-flop outputs cost
// ppiCost plus the controllability of their D input in the previous frame
// (approximated by one fixpoint sweep, which is exact for pipelines and a
// sound upper-estimate with feedback).
func Compute(c *netlist.Circuit) *Measures {
	n := len(c.Nodes)
	m := &Measures{CC0: make([]int32, n), CC1: make([]int32, n), CO: make([]int32, n)}
	for i := range m.CC0 {
		m.CC0[i], m.CC1[i], m.CO[i] = Inf, Inf, Inf
	}
	for _, pi := range c.PIs {
		m.CC0[pi], m.CC1[pi] = 1, 1
	}
	for _, ff := range c.DFFs {
		m.CC0[ff], m.CC1[ff] = ppiCost, ppiCost
	}
	// Two controllability sweeps: the second lets FF costs reflect their
	// D-input cones once.
	for pass := 0; pass < 2; pass++ {
		for _, id := range c.GateOrder() {
			m.gateControllability(c, id)
		}
		for _, ff := range c.DFFs {
			d := c.Nodes[ff].Fanin[0]
			m.CC0[ff] = satAdd(m.CC0[d], ppiCost)
			m.CC1[ff] = satAdd(m.CC1[d], ppiCost)
		}
	}
	// Observability, from the outputs backwards.
	for _, po := range c.POs {
		m.CO[po] = 0
	}
	for _, ff := range c.DFFs {
		d := c.Nodes[ff].Fanin[0]
		if v := int32(ppiCost); v < m.CO[d] {
			m.CO[d] = v
		}
	}
	order := c.GateOrder()
	for k := len(order) - 1; k >= 0; k-- {
		m.gateObservability(c, order[k])
	}
	return m
}

func satAdd(a, b int32) int32 {
	s := a + b
	if s > Inf || s < 0 {
		return Inf
	}
	return s
}

func (m *Measures) gateControllability(c *netlist.Circuit, id netlist.NodeID) {
	node := &c.Nodes[id]
	var c0, c1 int32
	switch node.Type {
	case netlist.Buf:
		c0, c1 = m.CC0[node.Fanin[0]], m.CC1[node.Fanin[0]]
	case netlist.Not:
		c0, c1 = m.CC1[node.Fanin[0]], m.CC0[node.Fanin[0]]
	case netlist.And, netlist.Nand:
		// Output 1 needs all inputs 1; output 0 needs the cheapest 0.
		all1, min0 := int32(0), Inf
		for _, in := range node.Fanin {
			all1 = satAdd(all1, m.CC1[in])
			if m.CC0[in] < min0 {
				min0 = m.CC0[in]
			}
		}
		c0, c1 = satAdd(min0, 1), satAdd(all1, 1)
		if node.Type == netlist.Nand {
			c0, c1 = c1, c0
		}
	case netlist.Or, netlist.Nor:
		all0, min1 := int32(0), Inf
		for _, in := range node.Fanin {
			all0 = satAdd(all0, m.CC0[in])
			if m.CC1[in] < min1 {
				min1 = m.CC1[in]
			}
		}
		c0, c1 = satAdd(all0, 1), satAdd(min1, 1)
		if node.Type == netlist.Nor {
			c0, c1 = c1, c0
		}
	case netlist.Xor, netlist.Xnor:
		// Fold pairwise: parity of input choices.
		c0, c1 = m.CC0[node.Fanin[0]], m.CC1[node.Fanin[0]]
		for _, in := range node.Fanin[1:] {
			even := minInt32(satAdd(c0, m.CC0[in]), satAdd(c1, m.CC1[in]))
			odd := minInt32(satAdd(c0, m.CC1[in]), satAdd(c1, m.CC0[in]))
			c0, c1 = even, odd
		}
		c0, c1 = satAdd(c0, 1), satAdd(c1, 1)
		if node.Type == netlist.Xnor {
			c0, c1 = c1, c0
		}
	default:
		return
	}
	m.CC0[id], m.CC1[id] = c0, c1
}

func (m *Measures) gateObservability(c *netlist.Circuit, id netlist.NodeID) {
	node := &c.Nodes[id]
	co := m.CO[id]
	if co >= Inf {
		return
	}
	for i, in := range node.Fanin {
		var side int32
		switch node.Type {
		case netlist.Buf, netlist.Not:
			side = 0
		case netlist.And, netlist.Nand:
			for j, other := range node.Fanin {
				if j != i {
					side = satAdd(side, m.CC1[other])
				}
			}
		case netlist.Or, netlist.Nor:
			for j, other := range node.Fanin {
				if j != i {
					side = satAdd(side, m.CC0[other])
				}
			}
		case netlist.Xor, netlist.Xnor:
			for j, other := range node.Fanin {
				if j != i {
					side = satAdd(side, minInt32(m.CC0[other], m.CC1[other]))
				}
			}
		}
		if v := satAdd(satAdd(co, side), 1); v < m.CO[in] {
			m.CO[in] = v
		}
	}
}

func minInt32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
