// Benchmarks regenerating every table and figure of the paper's
// evaluation; see DESIGN.md §3 for the experiment index.
//
//	Table 1/2  -> BenchmarkTable1AndAlgebra, BenchmarkTable2NotAlgebra
//	Table 3    -> BenchmarkTable3/<circuit> (full flow, 100+100 limits)
//	Figure 1   -> BenchmarkGoodMachineSim (FSM model simulation)
//	Figure 2   -> BenchmarkTimeFrameSim (two-frame fast-cycle evaluation)
//	Figure 3   -> BenchmarkTDgenLocal/<circuit> (local generation flow)
//	Figure 4   -> BenchmarkFOGBUSTER/<circuit> (all phases, per fault)
//	Sec. 6     -> BenchmarkAblationNonRobust, BenchmarkAblationStrictInit
package fogbuster

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"fogbuster/internal/bench"
	"fogbuster/internal/compact"
	"fogbuster/internal/core"
	"fogbuster/internal/faults"
	"fogbuster/internal/logic"
	"fogbuster/internal/order"
	"fogbuster/internal/semilet"
	"fogbuster/internal/sim"
	"fogbuster/internal/tdgen"
	"fogbuster/internal/tdsim"
	"fogbuster/internal/testability"
)

// table3Set is the subset run by default; the big pipeline circuits take
// seconds per iteration and run only with -timeout headroom.
var table3Set = []string{"s27", "s208", "s298", "s344", "s349", "s386", "s420", "s641", "s713", "s838", "s1196", "s1238"}

// BenchmarkTable1AndAlgebra measures the eight-valued AND table (the
// innermost operation of every implication in TDgen).
func BenchmarkTable1AndAlgebra(b *testing.B) {
	alg := logic.Robust
	var sink logic.Value
	for i := 0; i < b.N; i++ {
		x := logic.Value(i & 7)
		y := logic.Value((i >> 3) & 7)
		sink = alg.And(x, y)
	}
	_ = sink
}

// BenchmarkTable2NotAlgebra measures the inverter table.
func BenchmarkTable2NotAlgebra(b *testing.B) {
	alg := logic.Robust
	var sink logic.Value
	for i := 0; i < b.N; i++ {
		sink = alg.Not(logic.Value(i & 7))
	}
	_ = sink
}

// BenchmarkTable3 regenerates one Table 3 row per iteration: the complete
// delay-fault ATPG run (local generation, propagation, synchronization,
// fault simulation) over the whole fault universe with the paper's
// backtrack limits.
func BenchmarkTable3(b *testing.B) {
	for _, name := range table3Set {
		p := *bench.ProfileByName(name)
		c := p.Circuit()
		b.Run(name, func(b *testing.B) {
			var tested int
			for i := 0; i < b.N; i++ {
				sum := core.MustNew(c, core.Options{}).Run()
				tested = sum.Tested
			}
			b.ReportMetric(float64(tested), "tested")
			b.ReportMetric(float64(p.Paper.Tested), "paper-tested")
		})
	}
}

// BenchmarkTable3Parallel contrasts the sharded ATPG pipeline against the
// single-worker baseline on the Table 3 set: one full run per iteration
// at each worker count. The per-fault results are bit-identical at every
// count (see internal/core determinism tests); only wall-clock differs.
func BenchmarkTable3Parallel(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, name := range table3Set {
					c := bench.ProfileByName(name).Circuit()
					core.MustNew(c, core.Options{Workers: workers}).Run()
				}
			}
		})
	}
}

// BenchmarkGenerate isolates the generation-phase search — local
// generation, propagation and synchronization with fault-simulation
// credit disabled, so every fault is targeted explicitly. This is the
// ~84% slice the word-parallel search (batched X-fill trials plus
// decision probes, DESIGN.md §12) accelerates; BenchmarkTable3 keeps
// measuring the full flow.
func BenchmarkGenerate(b *testing.B) {
	for _, name := range table3Set {
		c := bench.ProfileByName(name).Circuit()
		b.Run(name, func(b *testing.B) {
			var tested int
			for i := 0; i < b.N; i++ {
				tested = core.MustNew(c, core.Options{DisableFaultSim: true}).Run().Tested
			}
			b.ReportMetric(float64(tested), "tested")
		})
	}
}

// BenchmarkGenerateScalar is the reference-oracle row for
// BenchmarkGenerate: the same generation-phase run on the scalar search
// path (one X-fill completion and one probe lane at a time). The
// results are bit-identical (TestBatchedSearchInvariance); the ratio of
// the two benchmarks is the word-parallel speedup reported in
// EXPERIMENTS.md.
func BenchmarkGenerateScalar(b *testing.B) {
	for _, name := range []string{"s298", "s386", "s641", "s1196"} {
		c := bench.ProfileByName(name).Circuit()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustNew(c, core.Options{DisableFaultSim: true, ScalarSearch: true}).Run()
			}
		})
	}
}

// BenchmarkGoodMachineSim measures the finite state machine model of
// Figure 1: one full sequential frame (combinational block + state
// register update) of the largest benchmark.
func BenchmarkGoodMachineSim(b *testing.B) {
	c := bench.ProfileByName("s1238").Circuit()
	net := sim.NewNet(c)
	rng := rand.New(rand.NewSource(1))
	vec := make([]sim.V3, len(c.PIs))
	for i := range vec {
		vec[i] = sim.V3(rng.Intn(2))
	}
	state := make([]sim.V3, len(c.DFFs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := net.LoadFrame(vec, state)
		net.Eval3(vals, nil)
		state = net.NextState3(vals, nil)
	}
}

// BenchmarkTimeFrameSim measures the two-frame (slow V1 / fast V2) model
// of Figure 2: the eight-valued evaluation of one fast test cycle.
func BenchmarkTimeFrameSim(b *testing.B) {
	c := bench.ProfileByName("s1238").Circuit()
	net := sim.NewNet(c)
	rng := rand.New(rand.NewSource(2))
	bits := func(n int) []sim.V3 {
		out := make([]sim.V3, n)
		for i := range out {
			out[i] = sim.V3(rng.Intn(2))
		}
		return out
	}
	v1, v2, s0 := bits(len(c.PIs)), bits(len(c.PIs)), bits(len(c.DFFs))
	f1 := net.LoadFrame(v1, s0)
	net.Eval3(f1, nil)
	s1 := net.NextState3(f1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := net.LoadFrame8(v1, v2, s0, s1)
		net.Eval8(logic.Robust, vals, nil)
	}
}

// BenchmarkTDgenLocal measures Figure 3, the local test generation flow:
// one TDgen run per fault over the circuit's fault universe.
func BenchmarkTDgenLocal(b *testing.B) {
	for _, name := range []string{"s27", "s298", "s1238"} {
		c := bench.ProfileByName(name).Circuit()
		net := sim.NewNet(c)
		meas := testability.Compute(c)
		all := faults.AllDelay(c)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := all[i%len(all)]
				g := tdgen.New(net, f, meas, tdgen.Options{})
				g.Next()
			}
		})
	}
}

// BenchmarkFOGBUSTER measures Figure 4, the extended FOGBUSTER flow per
// fault: local generation plus propagation plus synchronization (fault
// simulation excluded to isolate the generation path).
func BenchmarkFOGBUSTER(b *testing.B) {
	for _, name := range []string{"s27", "s298", "s838"} {
		c := bench.ProfileByName(name).Circuit()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustNew(c, core.Options{DisableFaultSim: true}).Run()
			}
		})
	}
}

// BenchmarkFOGBUSTERParallel is the sharded variant of BenchmarkFOGBUSTER:
// the generation path (fault simulation credit off) at one worker versus
// all CPUs.
func BenchmarkFOGBUSTERParallel(b *testing.B) {
	for _, name := range []string{"s27", "s298", "s838"} {
		c := bench.ProfileByName(name).Circuit()
		for _, workers := range []int{1, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("%s/workers-%d", name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.MustNew(c, core.Options{DisableFaultSim: true, Workers: workers}).Run()
				}
			})
		}
	}
}

// BenchmarkOrderingPermutation measures the ordering heuristics
// themselves on the largest benchmark: the ADI row includes the random
// fault-simulation campaign over the full line universe (64-way
// batched), the others are pure sorts over static measures.
func BenchmarkOrderingPermutation(b *testing.B) {
	c := bench.ProfileByName("s1238").Circuit()
	all := faults.AllDelay(c)
	for _, h := range []order.Heuristic{order.Topological, order.SCOAP, order.ADI} {
		b.Run(string(h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				order.Permutation(c, all, h, 0)
			}
		})
	}
}

// BenchmarkOrderingATPG contrasts the full flow under each fault
// order. The reported metrics are the explicit-target count and the
// total vector count: a good order front-loads simulation credit, so
// fewer faults are explicitly targeted and the test set shrinks.
func BenchmarkOrderingATPG(b *testing.B) {
	for _, name := range []string{"s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		for _, h := range []order.Heuristic{order.Natural, order.Topological, order.SCOAP, order.ADI} {
			b.Run(name+"/"+h.Name(), func(b *testing.B) {
				var explicit, patterns int
				for i := 0; i < b.N; i++ {
					sum := core.MustNew(c, core.Options{Order: h}).Run()
					explicit, patterns = sum.Explicit, sum.Patterns
				}
				b.ReportMetric(float64(explicit), "explicit")
				b.ReportMetric(float64(patterns), "patterns")
			})
		}
	}
}

// BenchmarkCompactionATPG measures the full generate-then-compact
// pipeline (reverse-order drop plus overlap merge) and reports the
// vector counts on both sides of the compaction.
func BenchmarkCompactionATPG(b *testing.B) {
	for _, name := range []string{"s298", "s344", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		b.Run(name, func(b *testing.B) {
			var before, after int
			for i := 0; i < b.N; i++ {
				sum := core.MustNew(c, core.Options{Compact: true}).Run()
				st := compact.Apply(c, sum, compact.Options{})
				before, after = st.PatternsBefore, st.PatternsAfter
			}
			b.ReportMetric(float64(before), "vectors-before")
			b.ReportMetric(float64(after), "vectors-after")
		})
	}
}

// BenchmarkCompactionApply isolates the compaction pass itself: the ATPG
// run happens once outside the timer and Apply works on a fresh summary
// each iteration.
func BenchmarkCompactionApply(b *testing.B) {
	c := bench.ProfileByName("s386").Circuit()
	b.Run("s386", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sum := core.MustNew(c, core.Options{Compact: true}).Run()
			b.StartTimer()
			compact.Apply(c, sum, compact.Options{})
		}
	})
}

// BenchmarkAblationNonRobust reproduces the paper's concluding claim: the
// non-robust model reduces the untestable count. The reported metrics are
// the untestable faults under each model.
func BenchmarkAblationNonRobust(b *testing.B) {
	for _, name := range []string{"s27", "s298", "s386"} {
		c := bench.ProfileByName(name).Circuit()
		b.Run(name, func(b *testing.B) {
			var rob, non int
			for i := 0; i < b.N; i++ {
				rob = core.MustNew(c, core.Options{}).Run().Untestable
				non = core.MustNew(c, core.Options{Algebra: logic.NonRobust}).Run().Untestable
			}
			b.ReportMetric(float64(rob), "untestable-robust")
			b.ReportMetric(float64(non), "untestable-nonrobust")
		})
	}
}

// BenchmarkAblationStrictInit contrasts the two initialization policies:
// assumed power-up (the paper's implied convention) versus provable
// synchronizing sequences from the all-X state. On s27 the strict policy
// collapses coverage because G7=0 is unreachable (see EXPERIMENTS.md).
func BenchmarkAblationStrictInit(b *testing.B) {
	for _, name := range []string{"s27", "s208"} {
		c := bench.ProfileByName(name).Circuit()
		b.Run(name, func(b *testing.B) {
			var assume, strict int
			for i := 0; i < b.N; i++ {
				assume = core.MustNew(c, core.Options{}).Run().Tested
				strict = core.MustNew(c, core.Options{StrictInit: true}).Run().Tested
			}
			b.ReportMetric(float64(assume), "tested-assumed")
			b.ReportMetric(float64(strict), "tested-strict")
		})
	}
}

// BenchmarkFaultSimCPT measures the paper's Section 5 fault simulation
// (critical path tracing plus exact confirmation) for one applied test.
func BenchmarkFaultSimCPT(b *testing.B) {
	c := bench.ProfileByName("s1196").Circuit()
	net := sim.NewNet(c)
	td := tdsim.New(net, logic.Robust)
	rng := rand.New(rand.NewSource(3))
	bits := func(n int) []sim.V3 {
		out := make([]sim.V3, n)
		for i := range out {
			out[i] = sim.V3(rng.Intn(2))
		}
		return out
	}
	v1, s0 := bits(len(c.PIs)), bits(len(c.DFFs))
	f1 := net.LoadFrame(v1, s0)
	net.Eval3(f1, nil)
	ff := &tdsim.FastFrame{
		V1: v1, V2: bits(len(c.PIs)), S0: s0, S1: net.NextState3(f1, nil),
		Prop: [][]sim.V3{bits(len(c.PIs)), bits(len(c.PIs))},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		td.Detect(ff, nil)
	}
}

// BenchmarkCreditSweep contrasts the credit-sweep execution paths: one
// full Detect pass (CPT candidate generation plus exact confirmation of
// every candidate, including the PPO-replay invalidation) for one
// applied test, along two axes. scalar/batched is the word-parallel axis
// (64 candidates per machine word, DESIGN.md §6); the -fulleval suffix
// is the evaluation-substrate axis (full levelized walks instead of the
// event-driven cone kernels, DESIGN.md §7). All four variants return
// bit-identical fault lists; only wall-clock differs.
func BenchmarkCreditSweep(b *testing.B) {
	for _, name := range []string{"s386", "s641", "s1196", "s1238"} {
		c := bench.ProfileByName(name).Circuit()
		net := sim.NewNet(c)
		td := tdsim.New(net, logic.Robust)
		netFull := sim.NewNet(c)
		tdFull := tdsim.New(netFull, logic.Robust)
		tdFull.SetFullEval(true)
		rng := rand.New(rand.NewSource(6))
		bits := func(n int) []sim.V3 {
			out := make([]sim.V3, n)
			for i := range out {
				out[i] = sim.V3(rng.Intn(2))
			}
			return out
		}
		v1, s0 := bits(len(c.PIs)), bits(len(c.DFFs))
		f1 := net.LoadFrame(v1, s0)
		net.Eval3(f1, nil)
		ff := &tdsim.FastFrame{
			V1: v1, V2: bits(len(c.PIs)), S0: s0, S1: net.NextState3(f1, nil),
			Prop: [][]sim.V3{bits(len(c.PIs)), bits(len(c.PIs)), bits(len(c.PIs))},
		}
		counts := map[string]int{}
		variants := []struct {
			label string
			sweep func() int
		}{
			{"scalar", func() int { return len(td.DetectScalar(ff, nil)) }},
			{"batched", func() int { return len(td.Detect(ff, nil)) }},
			{"scalar-fulleval", func() int { return len(tdFull.DetectScalar(ff, nil)) }},
			{"batched-fulleval", func() int { return len(tdFull.Detect(ff, nil)) }},
		}
		for _, v := range variants {
			v := v
			b.Run(name+"/"+v.label, func(b *testing.B) {
				n := 0
				for i := 0; i < b.N; i++ {
					n = v.sweep()
				}
				counts[v.label] = n
				b.ReportMetric(float64(n), "detected")
			})
		}
		// Only cross-check the variants a -bench filter actually ran.
		want := -1
		for _, v := range variants {
			n, ok := counts[v.label]
			if !ok {
				continue
			}
			if want == -1 {
				want = n
			} else if n != want {
				b.Fatalf("%s: variant %s detected %d, others %d", name, v.label, n, want)
			}
		}
	}
}

// BenchmarkConfirm isolates one exact scalar confirmation — the unit the
// credit sweep, the validator and the splice re-confirmation all pay per
// candidate. The event-driven path copies the good-machine values and
// re-evaluates only the fault cone; the full path re-evaluates the whole
// frame. The sampled fault rotates through the universe so both paths
// average over shallow and deep cones.
func BenchmarkConfirm(b *testing.B) {
	for _, name := range []string{"s641", "s1238"} {
		c := bench.ProfileByName(name).Circuit()
		all := faults.AllDelay(c)
		for _, mode := range []string{"event", "fulleval"} {
			net := sim.NewNet(c)
			td := tdsim.New(net, logic.Robust)
			td.SetFullEval(mode == "fulleval")
			rng := rand.New(rand.NewSource(7))
			bits := func(n int) []sim.V3 {
				out := make([]sim.V3, n)
				for i := range out {
					out[i] = sim.V3(rng.Intn(2))
				}
				return out
			}
			v1, s0 := bits(len(c.PIs)), bits(len(c.DFFs))
			f1 := net.LoadFrame(v1, s0)
			net.Eval3(f1, nil)
			ff := &tdsim.FastFrame{
				V1: v1, V2: bits(len(c.PIs)), S0: s0, S1: net.NextState3(f1, nil),
				Prop: [][]sim.V3{bits(len(c.PIs)), bits(len(c.PIs))},
			}
			vals := td.Values(ff)
			goodS2 := make([]sim.V3, len(c.DFFs))
			for i, ppo := range c.PPOs() {
				goodS2[i] = sim.V3(vals[ppo].Final())
			}
			b.Run(name+"/"+mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					td.Confirm(ff, vals, goodS2, all[i%len(all)])
				}
			})
		}
	}
}

// BenchmarkSynchronize measures SEMILET's reverse time processing: a full
// synchronizing sequence for the counter's cleared state.
func BenchmarkSynchronize(b *testing.B) {
	c := bench.ProfileByName("s420").Circuit()
	eng := semilet.NewEngine(sim.NewNet(c), semilet.Options{})
	target := make([]sim.V3, len(c.DFFs))
	for i := range target {
		target[i] = sim.Lo
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st := eng.Synchronize(target, semilet.NewBudget(100)); st != semilet.Success {
			b.Fatal("synchronization failed")
		}
	}
}

// BenchmarkAblationTimedHandoff measures the paper's future-work
// extension (arrival/stabilization time analysis): untestable counts as
// the variation budget tightens from the robust extreme toward the
// non-robust limit of the state handoff.
func BenchmarkAblationTimedHandoff(b *testing.B) {
	c := bench.ProfileByName("s298").Circuit()
	b.Run("s298", func(b *testing.B) {
		var rob, timed int
		for i := 0; i < b.N; i++ {
			rob = core.MustNew(c, core.Options{}).Run().Untestable
			timed = core.MustNew(c, core.Options{VariationBudget: 1}).Run().Untestable
		}
		b.ReportMetric(float64(rob), "untestable-robust")
		b.ReportMetric(float64(timed), "untestable-timed")
	})
}

// BenchmarkScaleOut measures the scale-out layer end to end: a budgeted
// run on the industrial s15850-class profile at 16 workers, stock
// against the broadcast and stealing knobs, plus the full-flow effect on
// the explicit-generation-heavy s1196. Results are bit-identical across
// all variants (pinned by TestBroadcastStealInvariance); the benchmark
// exists for the wall clock. On a single-CPU host the broadcast's win is
// avoided speculative generation; with real cores it also removes
// cross-worker duplication.
func BenchmarkScaleOut(b *testing.B) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"stock", core.Options{Workers: 16}},
		{"broadcast", core.Options{Workers: 16, Broadcast: true}},
		{"broadcast-steal", core.Options{Workers: 16, Broadcast: true, Steal: true}},
	}
	b.Run("s15850-mt32", func(b *testing.B) {
		c := bench.ProfileByName("s15850").Circuit()
		for _, v := range variants {
			opts := v.opts
			opts.MaxTargets = 32
			b.Run(v.name, func(b *testing.B) {
				var skips, steals int
				for i := 0; i < b.N; i++ {
					sum := core.MustNew(c, opts).Run()
					skips, steals = sum.BroadcastSkips, sum.Steals
				}
				b.ReportMetric(float64(skips), "skips")
				b.ReportMetric(float64(steals), "steals")
			})
		}
	})
	b.Run("s1196", func(b *testing.B) {
		c := bench.ProfileByName("s1196").Circuit()
		for _, v := range variants {
			b.Run(v.name, func(b *testing.B) {
				var skips, steals int
				for i := 0; i < b.N; i++ {
					sum := core.MustNew(c, v.opts).Run()
					skips, steals = sum.BroadcastSkips, sum.Steals
				}
				b.ReportMetric(float64(skips), "skips")
				b.ReportMetric(float64(steals), "steals")
			})
		}
	})
}

// BenchmarkConeMemory measures lazy cone-set construction — the full
// all-stems build that replaced the O(nodes²/8) dense matrix — on the
// industrial profiles, reporting the dense and actual footprints.
func BenchmarkConeMemory(b *testing.B) {
	for _, name := range []string{"s1238", "s15850", "s38584"} {
		c := bench.ProfileByName(name).Circuit()
		b.Run(name, func(b *testing.B) {
			var dense, actual int64
			for i := 0; i < b.N; i++ {
				topo := sim.NewTopology(c)
				dense, actual = topo.ConeFootprint()
			}
			b.ReportMetric(float64(dense), "dense-bytes")
			b.ReportMetric(float64(actual), "actual-bytes")
		})
	}
}
