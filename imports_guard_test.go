package fogbuster

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestPublicConsumersNeverImportInternal guards the API boundary: every
// package under cmd/ and examples/ (tests included) must consume the
// engine exclusively through fogbuster/pkg/atpg — no direct import of
// anything under fogbuster/internal/. This is the compile-time face of
// the stability contract in DESIGN.md §8; CI runs the same check via
// `go list` so the guard cannot rot with the test tags.
func TestPublicConsumersNeverImportInternal(t *testing.T) {
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				val, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if strings.HasPrefix(val, "fogbuster/internal/") {
					t.Errorf("%s imports %s; public consumers must use fogbuster/pkg/atpg only", path, val)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
