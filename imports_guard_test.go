package fogbuster

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// walkImports parses every .go file under root and reports each import
// path to visit as (file, import).
func walkImports(t *testing.T, root string, visit func(path, imp string)) {
	t.Helper()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			val, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			visit(path, val)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPublicConsumersNeverImportInternal guards the API boundary: every
// package under cmd/ and examples/ (tests included) must consume the
// engine exclusively through fogbuster/pkg/atpg — no direct import of
// anything under fogbuster/internal/. This is the compile-time face of
// the stability contract in DESIGN.md §8; CI runs the same check via
// `go list` so the guard cannot rot with the test tags.
//
// One deliberate exemption: cmd/atpgd is the thin shell over
// internal/service (the daemon's scheduler/cache/HTTP layer, which is
// not public API precisely because its options and wire helpers may
// still move). That edge is allowed; service itself is held to the
// same pkg/atpg-only rule by the test below, so the engine boundary is
// unchanged — atpgd reaches the engine through service through pkg/atpg.
func TestPublicConsumersNeverImportInternal(t *testing.T) {
	for _, root := range []string{"cmd", "examples"} {
		walkImports(t, root, func(path, val string) {
			if !strings.HasPrefix(val, "fogbuster/internal/") {
				return
			}
			if val == "fogbuster/internal/service" && strings.HasPrefix(filepath.ToSlash(path), "cmd/atpgd/") {
				return
			}
			// atpgcoord's tests boot in-process workers from the service
			// package instead of shelling out to atpgd binaries; the
			// coordinator binary itself stays pkg/atpg-only.
			if val == "fogbuster/internal/service" && strings.HasPrefix(filepath.ToSlash(path), "cmd/atpgcoord/") && strings.HasSuffix(path, "_test.go") {
				return
			}
			t.Errorf("%s imports %s; public consumers must use fogbuster/pkg/atpg only", path, val)
		})
	}
}

// TestServiceConsumesPublicAPIOnly holds internal/service to the same
// contract as external consumers: among module packages it may import
// only fogbuster/pkg/atpg. The service is the reference multi-tenant
// harness around the engine — if it needed private hooks, the public
// API would be lying about being sufficient.
func TestServiceConsumesPublicAPIOnly(t *testing.T) {
	walkImports(t, filepath.Join("internal", "service"), func(path, val string) {
		if !strings.HasPrefix(val, "fogbuster/") {
			return
		}
		if val != "fogbuster/pkg/atpg" {
			t.Errorf("%s imports %s; internal/service must consume the engine through fogbuster/pkg/atpg only", path, val)
		}
	})
}
