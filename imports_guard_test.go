package fogbuster

import (
	"strings"
	"testing"

	"fogbuster/internal/lint"
)

// TestAPIBoundary guards the import contracts of DESIGN.md §8/§10 by
// running the apiboundary analyzer (internal/lint) over the live tree:
//
//   - every package under cmd/ and examples/ (tests included) consumes
//     the engine exclusively through fogbuster/pkg/atpg, with the
//     deliberate edges listed — with their reasons — in
//     lint.DefaultBoundaryExemptions (atpgd → service, atpgcoord's tests
//     → service, atpglint → lint);
//   - internal/service imports no module package other than
//     fogbuster/pkg/atpg: the reference multi-tenant harness must prove
//     the public API sufficient.
//
// Until ISSUE 10 this file carried its own go/parser walk and CI carried
// a `go list | grep` pipeline encoding the same rules with their own
// copies of the exemption list; both now delegate to the analyzer, so the
// exemption table has exactly one home. CI runs the identical check via
// `go run ./cmd/atpglint ./...`; this test keeps it inside `go test ./...`
// where every developer already is. The table's entries are proven
// load-bearing (deleting one flags the fixture that rides it) by
// TestExemptionTableLoadBearing in internal/lint.
func TestAPIBoundary(t *testing.T) {
	pkgs, err := lint.Load(".", lint.LoadSyntax, "./cmd/...", "./examples/...", "./internal/service/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages; the guard is not guarding")
	}
	var sawCmd, sawService bool
	for _, p := range pkgs {
		sawCmd = sawCmd || strings.HasPrefix(p.PkgPath, "fogbuster/cmd/")
		sawService = sawService || p.PkgPath == "fogbuster/internal/service"
	}
	if !sawCmd || !sawService {
		t.Fatalf("loader missed a guarded subtree (cmd: %v, service: %v)", sawCmd, sawService)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{lint.BoundaryAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
